module wym

go 1.22
