package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"wym"
	"wym/internal/audit"
)

// auditFilter narrows an audit query; zero fields pass everything.
type auditFilter struct {
	model    string // exact registry-name/artifact match
	decision int    // wym.Match, wym.NonMatch, or -1 for both
	since    int64  // unix nanos, inclusive; 0 = open
	until    int64  // unix nanos, exclusive; 0 = open
}

func (f auditFilter) keep(r audit.Record) bool {
	if f.model != "" && r.Model != f.model {
		return false
	}
	if f.decision >= 0 && r.Prediction != f.decision {
		return false
	}
	if f.since != 0 && r.TimeNanos < f.since {
		return false
	}
	if f.until != 0 && r.TimeNanos >= f.until {
		return false
	}
	return true
}

// runAuditCmd implements `wym audit <list|show|stats>`: querying the
// append-only decision log written by wym-server -audit-dir and
// wym match/dedup -audit. The reader is the tolerant one — a log with a
// torn tail still lists its valid prefix.
func runAuditCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: wym audit <list|show|stats> -dir <audit-dir> [filters]")
	}
	sub := args[0]
	args = args[1:]
	// `wym audit show <id> -dir d` and `wym audit show -dir d <id>` both
	// read naturally; lift a leading positional before flag parsing.
	var showID string
	if sub == "show" && len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		showID, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("wym audit "+sub, flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "audit log directory")
		model    = fs.String("model", "", "only records from this model name/path")
		decision = fs.String("decision", "", "only this decision: match or nomatch")
		since    = fs.String("since", "", "only records at or after this RFC3339 time")
		until    = fs.String("until", "", "only records before this RFC3339 time")
		limit    = fs.Int("limit", 0, "stop after this many records (0 = all)")
	)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("pass -dir <audit-dir>")
	}
	filter := auditFilter{model: *model, decision: -1}
	switch *decision {
	case "":
	case "match":
		filter.decision = wym.Match
	case "nomatch":
		filter.decision = wym.NonMatch
	default:
		return fmt.Errorf("-decision must be match or nomatch, not %q", *decision)
	}
	var err error
	if filter.since, err = parseAuditTime(*since); err != nil {
		return fmt.Errorf("-since: %w", err)
	}
	if filter.until, err = parseAuditTime(*until); err != nil {
		return fmt.Errorf("-until: %w", err)
	}

	switch sub {
	case "list":
		return auditList(*dir, filter, *limit)
	case "show":
		if showID == "" {
			showID = fs.Arg(0)
		}
		if showID == "" {
			return fmt.Errorf("usage: wym audit show <request-id> -dir <audit-dir>")
		}
		return auditShow(*dir, showID)
	case "stats":
		return auditStats(*dir, filter)
	default:
		return fmt.Errorf("unknown audit subcommand %q (want list, show, or stats)", sub)
	}
}

func parseAuditTime(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return 0, err
	}
	return t.UnixNano(), nil
}

func auditTime(nanos int64) string {
	return time.Unix(0, nanos).UTC().Format(time.RFC3339)
}

func auditDecision(pred int) string {
	if pred == wym.Match {
		return "match"
	}
	return "nomatch"
}

// auditList prints one line per matching record, in append order.
func auditList(dir string, filter auditFilter, limit int) error {
	fmt.Printf("%-24s  %-20s  %-12s  %-8s  %6s  %s\n",
		"REQUEST", "TIME", "ROUTE", "DECISION", "PROBA", "LATENCY")
	shown, total := 0, 0
	stats, err := audit.Scan(dir, func(r audit.Record) error {
		if !filter.keep(r) {
			return nil
		}
		total++
		if limit > 0 && shown >= limit {
			return nil
		}
		shown++
		fmt.Printf("%-24s  %-20s  %-12s  %-8s  %.4f  %v\n",
			r.RequestID, auditTime(r.TimeNanos), r.Route,
			auditDecision(r.Prediction), r.Proba,
			time.Duration(r.LatencyNanos).Round(time.Microsecond))
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d of %d matching records shown (%d segments", shown, total, stats.Segments)
	if stats.Truncated > 0 {
		fmt.Printf(", %d with a truncated tail", stats.Truncated)
	}
	fmt.Printf(")\n")
	return nil
}

// auditShow re-renders one stored decision, explanation included, in
// the same format a live `wym explain` prints.
func auditShow(dir, id string) error {
	var rec audit.Record
	found := false
	_, err := audit.Scan(dir, func(r audit.Record) error {
		if r.RequestID == id {
			rec, found = r, true // last write wins, like the log itself
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("no audit record with request ID %q under %s", id, dir)
	}
	fmt.Printf("request  : %s\n", rec.RequestID)
	fmt.Printf("time     : %s\n", auditTime(rec.TimeNanos))
	fmt.Printf("route    : %s\n", rec.Route)
	fmt.Printf("model    : %s\n", rec.Model)
	fmt.Printf("artifact : %s\n", rec.ArtifactFP)
	if rec.FeedbackFP != "" {
		fmt.Printf("feedback : %s\n", rec.FeedbackFP)
	}
	fmt.Printf("threshold: %.2f\n", rec.Threshold)
	fmt.Printf("latency  : %v\n", time.Duration(rec.LatencyNanos).Round(time.Microsecond))
	renderDecision(rec.Explanation(), rec.Left, rec.Right, "")
	return nil
}

// auditStats aggregates the matching records: decisions, time range,
// latency percentiles, and per-model/per-route counts.
func auditStats(dir string, filter auditFilter) error {
	var (
		latencies []int64
		matches   int
		first     int64
		last      int64
		models    = map[string]int{}
		routes    = map[string]int{}
	)
	stats, err := audit.Scan(dir, func(r audit.Record) error {
		if !filter.keep(r) {
			return nil
		}
		latencies = append(latencies, r.LatencyNanos)
		if r.Prediction == wym.Match {
			matches++
		}
		if first == 0 || r.TimeNanos < first {
			first = r.TimeNanos
		}
		if r.TimeNanos > last {
			last = r.TimeNanos
		}
		models[r.Model]++
		routes[r.Route]++
		return nil
	})
	if err != nil {
		return err
	}
	n := len(latencies)
	fmt.Printf("records  : %d (%d segments", n, stats.Segments)
	if stats.Truncated > 0 {
		fmt.Printf(", %d with a truncated tail", stats.Truncated)
	}
	fmt.Printf(")\n")
	if n == 0 {
		return nil
	}
	fmt.Printf("time     : %s .. %s\n", auditTime(first), auditTime(last))
	fmt.Printf("decisions: %d match, %d nomatch\n", matches, n-matches)
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return time.Duration(latencies[i]).Round(time.Microsecond)
	}
	fmt.Printf("latency  : p50=%v p95=%v p99=%v\n", pct(0.50), pct(0.95), pct(0.99))
	for _, group := range []struct {
		header string
		counts map[string]int
	}{{"models", models}, {"routes", routes}} {
		keys := make([]string, 0, len(group.counts))
		for k := range group.counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("%s:\n", group.header)
		for _, k := range keys {
			fmt.Printf("  %-24s %d\n", k, group.counts[k])
		}
	}
	return nil
}
