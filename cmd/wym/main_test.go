package main

import (
	"path/filepath"
	"testing"
)

func TestRunOnSyntheticDataset(t *testing.T) {
	if err := run("", "S-BR", 1.0, 1, false, 1, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaveThenLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := run("", "S-BR", 1.0, 0, false, 1, path, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", "S-BR", 1.0, 0, false, 1, "", path); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 1.0, 0, false, 1, "", ""); err == nil {
		t.Fatal("expected usage error")
	}
	if err := run("", "NOPE", 1.0, 0, false, 1, "", ""); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
	if err := run("/does/not/exist.csv", "", 1.0, 0, false, 1, "", ""); err == nil {
		t.Fatal("expected missing-file error")
	}
}
