package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestRunOnSyntheticDataset(t *testing.T) {
	if err := run(context.Background(), options{datasetID: "S-BR", scale: 1.0, explainN: 1, seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaveThenLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := run(context.Background(), options{datasetID: "S-BR", scale: 1.0, seed: 1, savePath: path}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), options{datasetID: "S-BR", scale: 1.0, seed: 1, loadPath: path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), options{}); err == nil {
		t.Fatal("expected usage error")
	}
	if err := run(context.Background(), options{datasetID: "NOPE"}); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
	if err := run(context.Background(), options{dataPath: "/does/not/exist.csv"}); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestRunCheckpointThenResume(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), options{datasetID: "S-BR", scale: 1.0, seed: 1, checkpoint: dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoints written: %v (%d entries)", err, len(entries))
	}
	if err := run(context.Background(), options{datasetID: "S-BR", scale: 1.0, seed: 1, resume: dir, verbose: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, options{datasetID: "S-BR", scale: 1.0, seed: 1}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestRunLenientVsStrictIngest(t *testing.T) {
	// One bad label row: lenient quarantines it and trains on the rest;
	// strict refuses the file.
	path := filepath.Join(t.TempDir(), "dirty.csv")
	csv := "label,left_a,right_a\n"
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			csv += fmt.Sprintf("1,widget alpha %d,widget alpha %d\n", i, i)
		} else {
			csv += fmt.Sprintf("0,widget alpha %d,gadget beta %d\n", i, i+1000)
		}
	}
	csv += "7,broken,row\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), options{dataPath: path, seed: 1}); err != nil {
		t.Fatalf("lenient ingest failed: %v", err)
	}
	if err := run(context.Background(), options{dataPath: path, seed: 1, strict: true}); err == nil {
		t.Fatal("strict ingest accepted a bad label row")
	}
}
