package main

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"wym"
	"wym/internal/data"
	"wym/internal/datagen"
)

// matchFixture is the shared test fixture for the match/dedup tests: one
// trained model plus a small deterministic table pair, built once per
// test binary (training dominates the cost).
type matchFixture struct {
	dir        string // holds matcher.gob, left.csv, right.csv, truth.csv
	modelPath  string
	leftPath   string
	rightPath  string
	truthPath  string
	buildError error
}

var (
	fixtureOnce sync.Once
	fixture     matchFixture
)

// matchTestFixture trains an S-BR model, saves it, and writes the S-BR
// table pair the match tests run against.
func matchTestFixture(t *testing.T) *matchFixture {
	t.Helper()
	fixtureOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wym-match-fixture-*")
		if err != nil {
			fixture.buildError = err
			return
		}
		fixture.dir = dir
		d, ok := wym.DatasetByKey("S-BR", 1.0)
		if !ok {
			fixture.buildError = os.ErrNotExist
			return
		}
		train, valid, _, err := d.Split(0.6, 0.2, 1)
		if err != nil {
			fixture.buildError = err
			return
		}
		cfg := wym.DefaultConfig()
		cfg.Seed = 1
		sys, err := wym.Train(train, valid, cfg)
		if err != nil {
			fixture.buildError = err
			return
		}
		fixture.modelPath = filepath.Join(dir, "matcher.gob")
		if err := sys.SaveFile(fixture.modelPath); err != nil {
			fixture.buildError = err
			return
		}
		p, _ := datagen.ProfileByKey("S-BR")
		tp := datagen.GenerateTables(p, 80, 0.3)
		fixture.leftPath = filepath.Join(dir, "left.csv")
		fixture.rightPath = filepath.Join(dir, "right.csv")
		fixture.truthPath = filepath.Join(dir, "truth.csv")
		if err := data.SaveTableFile(fixture.leftPath, &data.Table{Schema: tp.Schema, Rows: tp.Left}); err != nil {
			fixture.buildError = err
			return
		}
		if err := data.SaveTableFile(fixture.rightPath, &data.Table{Schema: tp.Schema, Rows: tp.Right}); err != nil {
			fixture.buildError = err
			return
		}
		fixture.buildError = data.SaveTruthFile(fixture.truthPath, tp.Truth)
	})
	if fixture.buildError != nil {
		t.Fatalf("building match fixture: %v", fixture.buildError)
	}
	return &fixture
}

// inFixtureDir runs fn with the working directory switched to the fixture
// directory so the transcript contains only relative, deterministic paths.
func inFixtureDir(t *testing.T, fx *matchFixture, fn func() error) string {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(fx.dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	return captureStdout(t, fn)
}

// checkGolden compares a normalized transcript against a golden file,
// honoring the package-level -update flag.
func checkGolden(t *testing.T, golden, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/wym -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("CLI output diverged from %s (re-run with -update if intentional)\n%s",
			golden, diffLines(string(want), got))
	}
}

// TestGoldenMatch locks the complete `wym match` transcript — table
// banners, job plan, match counts, blocking stats, truth scoring, and the
// output line — against a golden file. The byte-stable summary is itself
// part of the contract: a resumed job must reproduce it exactly.
func TestGoldenMatch(t *testing.T) {
	fx := matchTestFixture(t)
	goldenPath, err := filepath.Abs(filepath.Join("testdata", "match_sbr.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out := inFixtureDir(t, fx, func() error {
		outDir := t.TempDir()
		return runMatchCmd(context.Background(), "match", []string{
			"-left", "left.csv", "-right", "right.csv",
			"-model", "matcher.gob",
			"-out", filepath.Join(outDir, "matches.csv"),
			"-job", filepath.Join(outDir, "matches.csv.job"),
			"-chunk", "20", "-max-df", "0.2", "-truth", "truth.csv", "-v",
		})
	})
	got := normalizeDurations(normalizeTempPaths(out))
	for _, want := range []string{
		"left table left: 80 rows",
		"job: 4 chunks of 20 rows",
		"recall of blocking:",
		"pair quality: precision",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("transcript missing %q:\n%s", want, got)
		}
	}
	checkGolden(t, goldenPath, got)
}

// TestGoldenDedup locks the `wym dedup` transcript.
func TestGoldenDedup(t *testing.T) {
	fx := matchTestFixture(t)
	goldenPath, err := filepath.Abs(filepath.Join("testdata", "dedup_sbr.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out := inFixtureDir(t, fx, func() error {
		outDir := t.TempDir()
		return runMatchCmd(context.Background(), "dedup", []string{
			"-in", "left.csv",
			"-model", "matcher.gob",
			"-out", filepath.Join(outDir, "dups.csv"),
			"-job", filepath.Join(outDir, "dups.csv.job"),
			"-chunk", "32", "-max-df", "0.3",
		})
	})
	got := normalizeDurations(normalizeTempPaths(out))
	if !strings.Contains(got, "matched: ") {
		t.Fatalf("transcript missing match summary:\n%s", got)
	}
	checkGolden(t, goldenPath, got)
}

// tempPathRE matches the per-run temp directories that carry the output
// and job paths in test transcripts.
var tempPathRE = regexp.MustCompile(`/[^ ]*/(matches|dups)\.csv`)

func normalizeTempPaths(s string) string {
	return tempPathRE.ReplaceAllString(s, "<TMP>/$1.csv")
}
