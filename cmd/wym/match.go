package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"time"

	"wym"
	"wym/internal/audit"
	"wym/internal/blocking"
	"wym/internal/data"
	"wym/internal/eval"
	"wym/internal/matchjob"
)

// matchOptions carries the parsed command line of `wym match` / `wym dedup`.
type matchOptions struct {
	left, right string // match mode
	in          string // dedup mode
	model       string
	out         string
	job         string
	resume      bool
	chunk       int
	topK        int
	indexMemMB  int
	maxDF       float64
	minShared   int
	jaccard     float64
	attrs       string
	all         bool
	throttle    time.Duration
	truth       string
	verbose     bool
	auditDir    string
}

// runMatchCmd implements both table-matching subcommands. name is "match"
// (two tables) or "dedup" (one table against itself).
func runMatchCmd(ctx context.Context, name string, args []string) error {
	fs := flag.NewFlagSet("wym "+name, flag.ExitOnError)
	var o matchOptions
	if name == "dedup" {
		fs.StringVar(&o.in, "in", "", "entity table CSV to deduplicate (header = attribute names)")
	} else {
		fs.StringVar(&o.left, "left", "", "left entity table CSV (header = attribute names)")
		fs.StringVar(&o.right, "right", "", "right entity table CSV")
	}
	fs.StringVar(&o.model, "model", "", "trained model file (wym train -save)")
	fs.StringVar(&o.out, "out", "matches.csv", "merged output CSV (left,right,label,proba)")
	fs.StringVar(&o.job, "job", "", "job directory for the manifest and chunk segments (default <out>.job)")
	fs.BoolVar(&o.resume, "resume", false, "resume an interrupted job from its manifest, skipping verified chunks")
	fs.IntVar(&o.chunk, "chunk", 1000, "left rows per chunk (the unit of checkpointing)")
	fs.IntVar(&o.topK, "topk", 50, "keep at most k candidates per left row (0 = unlimited)")
	fs.IntVar(&o.indexMemMB, "index-mem-mb", 64, "blocking index memory budget in MiB (0 = unbounded)")
	fs.Float64Var(&o.maxDF, "max-df", 0.1, "prune tokens appearing in more than this fraction of either table")
	fs.IntVar(&o.minShared, "min-shared", 1, "shared index tokens required for a candidate pair")
	fs.Float64Var(&o.jaccard, "jaccard", 0, "drop candidates with whole-record Jaccard below this floor (0 = off)")
	fs.StringVar(&o.attrs, "attrs", "", "comma-separated attribute indices to index (default all)")
	fs.BoolVar(&o.all, "all", false, "emit every scored candidate, not only match decisions")
	fs.DurationVar(&o.throttle, "throttle", 0, "pause after each chunk (pacing; never invalidates a resume)")
	fs.StringVar(&o.truth, "truth", "", "ground-truth pair CSV (left,right) to score the run against")
	fs.StringVar(&o.auditDir, "audit", "", "record every emitted decision (with its explanation) into this audit log directory; query with wym audit")
	fs.BoolVar(&o.verbose, "v", false, "report each chunk as it completes")
	fs.Parse(args)

	if o.model == "" {
		return fmt.Errorf("pass -model <file> (train one with: wym train -dataset S-FZ -save matcher.gob)")
	}
	if o.job == "" {
		o.job = o.out + ".job"
	}

	var left, right *wym.Table
	var err error
	if name == "dedup" {
		if o.in == "" {
			return fmt.Errorf("pass -in <table.csv>")
		}
		if left, err = wym.LoadTable(o.in); err != nil {
			return err
		}
		right = left
	} else {
		if o.left == "" || o.right == "" {
			return fmt.Errorf("pass -left <table.csv> and -right <table.csv>")
		}
		if left, err = wym.LoadTable(o.left); err != nil {
			return err
		}
		if right, err = wym.LoadTable(o.right); err != nil {
			return err
		}
	}
	fmt.Printf("left table %s: %d rows, schema %v\n", left.Name, len(left.Rows), left.Schema)
	if name != "dedup" {
		fmt.Printf("right table %s: %d rows, schema %v\n", right.Name, len(right.Rows), right.Schema)
	}

	sys, err := wym.LoadSystem(o.model)
	if err != nil {
		return err
	}
	modelSum, err := fileFNV(o.model)
	if err != nil {
		return err
	}
	fmt.Printf("model %s (classifier %s)\n", o.model, sys.ModelName())

	bcfg, err := o.blockingConfig(name == "dedup")
	if err != nil {
		return err
	}
	cfg := matchjob.Config{
		ChunkSize: o.chunk,
		Blocking:  bcfg,
		Dedup:     name == "dedup",
		All:       o.all,
		Dir:       o.job,
		Out:       o.out,
		Resume:    o.resume,
		ModelSum:  modelSum,
		Throttle:  o.throttle,
	}
	if o.auditDir != "" {
		alog, err := audit.Open(o.auditDir, audit.Options{})
		if err != nil {
			return err
		}
		defer alog.Close()
		cfg.Audit = alog
		cfg.AuditMeta = matchjob.AuditMeta{
			Model:      o.model,
			ArtifactFP: fmt.Sprintf("fnv64:%016x", modelSum),
			FeedbackFP: sys.FeedbackFingerprint(),
			Threshold:  sys.DecisionThreshold(),
			Route:      name,
		}
		fmt.Printf("audit: recording decisions under %s\n", o.auditDir)
	}
	runner, err := matchjob.New(sys.Engine(), left.Rows, right.Rows, cfg)
	if err != nil {
		return err
	}
	totalChunks := (len(left.Rows) + o.chunk - 1) / o.chunk
	fmt.Printf("job: %d chunks of %d rows (index budget %d MiB, top-k %d)\n",
		totalChunks, o.chunk, o.indexMemMB, o.topK)

	start := time.Now()
	sum, err := runner.Run(ctx)
	if err != nil {
		return err
	}
	if o.verbose {
		fmt.Printf("chunks: %d done, %d resumed, %d retried (%v)\n",
			sum.ChunksDone, sum.ChunksResumed, sum.ChunksRetried, time.Since(start).Round(time.Millisecond))
	}
	if sum.Interrupted {
		fmt.Printf("interrupted: %d/%d chunks done — resumable with -resume\n",
			sum.ChunksDone+sum.ChunksResumed, sum.TotalChunks)
		return nil
	}

	fmt.Printf("matched: %d pairs from %d candidates (%d row errors)\n",
		sum.Matches, sum.Candidates, sum.RowErrors)
	for _, re := range sum.RowErrorSamples {
		fmt.Fprintf(os.Stderr, "wym: chunk %d pair (%d,%d) quarantined: %s\n", re.Chunk, re.Left, re.Right, re.Err)
	}
	fmt.Printf("blocking: peak index %d bytes, %d candidates pruned by top-k\n",
		sum.PeakIndexBytes, sum.Pruned)
	if o.auditDir != "" {
		fmt.Printf("audit: %d decisions recorded under %s\n", sum.AuditRecords, o.auditDir)
	}

	if o.truth != "" {
		if err := reportQuality(o, bcfg, left.Rows, right.Rows); err != nil {
			return err
		}
	}
	fmt.Printf("output: %s (job dir %s)\n", o.out, o.job)
	return nil
}

// blockingConfig assembles the stream configuration from the flags.
func (o matchOptions) blockingConfig(self bool) (blocking.StreamConfig, error) {
	cfg := blocking.StreamConfig{
		Config: blocking.Config{
			MaxDF:        o.maxDF,
			MinShared:    o.minShared,
			JaccardFloor: o.jaccard,
		},
		MemoryBudget: int64(o.indexMemMB) << 20,
		TopK:         o.topK,
		Self:         self,
	}
	if o.attrs != "" {
		for _, f := range strings.Split(o.attrs, ",") {
			a, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return cfg, fmt.Errorf("bad -attrs entry %q: %w", f, err)
			}
			cfg.Attrs = append(cfg.Attrs, a)
		}
	}
	return cfg, nil
}

// reportQuality scores the finished run against a ground-truth pair list:
// recall of blocking (the candidate ceiling) and pair quality of the
// emitted matches.
func reportQuality(o matchOptions, bcfg blocking.StreamConfig, left, right []data.Entity) error {
	truth, err := wym.LoadTruth(o.truth)
	if err != nil {
		return err
	}
	// One extra streaming pass over the tables recovers the candidate
	// set for recall-of-blocking without the job having to retain it.
	s, err := blocking.NewStreamer(left, right, bcfg)
	if err != nil {
		return err
	}
	truthSet := make(map[[2]int]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	var hits [][2]int
	for startRow := 0; startRow < len(left); startRow += o.chunk {
		end := startRow + o.chunk
		if end > len(left) {
			end = len(left)
		}
		cs, err := s.Chunk(startRow, end)
		if err != nil {
			return err
		}
		for {
			c, ok := cs.Next()
			if !ok {
				break
			}
			if truthSet[[2]int{c.Left, c.Right}] {
				hits = append(hits, [2]int{c.Left, c.Right})
			}
		}
	}
	fmt.Printf("recall of blocking: %.3f (%d truth pairs)\n",
		eval.BlockingRecall(hits, truth), len(truth))

	matches, err := matchjob.ReadMatches(o.out)
	if err != nil {
		return err
	}
	q := eval.NewPairQuality(matches, truth)
	fmt.Printf("pair quality: precision %.3f recall %.3f F1 %.3f\n",
		q.Precision(), q.Recall(), q.F1())
	return nil
}

// fileFNV fingerprints a file's contents (FNV-64a) — the model identity
// recorded in the job manifest.
func fileFNV(path string) (uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64(), nil
}
