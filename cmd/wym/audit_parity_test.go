package main

import (
	"strings"
	"testing"

	"wym"
	"wym/internal/audit"
)

// TestAuditExplainParity is the tentpole acceptance property: for the
// same pair and model, the decision block `wym audit show` re-renders
// from a stored record is byte-identical to what a live `wym explain`
// prints — the explanation survives compaction, the journal, and
// recovery without drifting from the engine's own rendering.
func TestAuditExplainParity(t *testing.T) {
	dir := t.TempDir()
	model := trainModelFile(t, dir)
	sys, err := wym.LoadSystem(model)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := wym.DatasetByKey("S-BR", 1.0)
	_, _, test := d.MustSplit(0.6, 0.2, 1)

	for i, p := range test.Pairs[:5] {
		p := p
		live := captureStdout(t, func() error {
			return runExplainCmd([]string{
				"-model", model,
				"-left", strings.Join(p.Left, "|"),
				"-right", strings.Join(p.Right, "|"),
			})
		})

		ex := sys.Engine().Explain(wym.Pair{Left: p.Left, Right: p.Right})
		alog, err := audit.Open(dir+"/audit", audit.Options{})
		if err != nil {
			t.Fatal(err)
		}
		id := "parity-" + itoa(i)
		if err := alog.Append(audit.Record{
			RequestID: id, Route: "/predict", Model: model,
			Left: p.Left, Right: p.Right,
			Prediction: ex.Prediction, Proba: ex.Proba, Threshold: sys.DecisionThreshold(),
			Units: audit.CompactUnits(ex),
		}); err != nil {
			t.Fatal(err)
		}
		if err := alog.Close(); err != nil {
			t.Fatal(err)
		}
		stored := captureStdout(t, func() error {
			return runAuditCmd([]string{"show", id, "-dir", dir + "/audit"})
		})

		// The decision block starts at the first blank line; everything
		// before it is command-specific header (model banner vs record
		// provenance).
		liveBlock := live[strings.Index(live, "\n\n"):]
		storedBlock := stored[strings.Index(stored, "\n\n"):]
		if liveBlock != storedBlock {
			t.Fatalf("pair %d: stored rendering diverged from live explain\n%s",
				i, diffLines(liveBlock, storedBlock))
		}
	}
}
