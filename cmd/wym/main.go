// Command wym trains an interpretable entity matcher on a CSV dataset and
// prints predictions with decision-unit explanations.
//
// Usage:
//
//	wym [train] -data pairs.csv [-explain N] [-code-exact] [-seed 1]
//	wym [train] -dataset S-AG -scale 0.05 [-explain N]
//	wym train -data pairs.csv -checkpoint run1/   # checkpoint each stage
//	wym train -data pairs.csv -resume run1/       # resume an interrupted run
//	wym model convert -in m.gob -out m.wyma [-int8]  # compile the serving arena
//	wym model info -model m.wyma                     # inspect a model file
//	wym label -model m.gob -dataset S-BR -auto -save m2.gob  # active labeling + feedback fold
//	wym explain -model m.gob -left "a|b|c" -right "a|b|d"    # explain one pair
//	wym audit list -dir audit/                               # query the prediction audit trail
//
// The CSV layout is label, left_<attr>..., right_<attr>... (the Magellan
// benchmark layout). With -dataset, a synthetic benchmark dataset is
// generated instead. The tool splits 60-20-20, trains, reports test F1 and
// the classifier-pool ranking, and renders explanations for the first N
// test records.
//
// Training is fault tolerant: SIGINT/SIGTERM stops the run cleanly at the
// next stage boundary, -checkpoint persists each completed stage, and
// -resume picks an interrupted run back up from its last valid checkpoint.
// CSV ingest is lenient by default — malformed rows are quarantined and
// reported with their line numbers, up to -error-budget of them; -strict
// fails on the first bad row instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"wym"
	"wym/internal/eval"
)

// options carries the parsed command line.
type options struct {
	dataPath    string
	datasetID   string
	scale       float64
	explainN    int
	codeExact   bool
	seed        int64
	savePath    string
	loadPath    string
	checkpoint  string
	resume      string
	strict      bool
	errorBudget int
	verbose     bool
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "model" {
		if err := runModel(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "wym:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && args[0] == "audit" {
		if err := runAuditCmd(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "wym:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && args[0] == "explain" {
		if err := runExplainCmd(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "wym:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && args[0] == "label" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runLabelCmd(ctx, args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "wym:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && (args[0] == "match" || args[0] == "dedup") {
		// SIGINT/SIGTERM drain the in-flight chunk and stop at the next
		// boundary; the job stays resumable, so a clean interrupt exits 0.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runMatchCmd(ctx, args[0], args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "wym:", err)
			os.Exit(1)
		}
		return
	}
	// Accept an optional leading "train" subcommand: `wym train -resume d`
	// reads naturally in scripts and docs, and the flag package would stop
	// parsing at the bare word otherwise.
	if len(args) > 0 && args[0] == "train" {
		args = args[1:]
	}
	fs := flag.NewFlagSet("wym", flag.ExitOnError)
	var o options
	fs.StringVar(&o.dataPath, "data", "", "CSV dataset path (label, left_*, right_* columns)")
	fs.StringVar(&o.datasetID, "dataset", "", "generate a synthetic benchmark dataset (e.g. S-AG) instead of reading CSV")
	fs.Float64Var(&o.scale, "scale", 0.05, "synthetic dataset scale (1.0 = paper size)")
	fs.IntVar(&o.explainN, "explain", 3, "number of test records to explain")
	fs.BoolVar(&o.codeExact, "code-exact", false, "enable the product-code exact-pairing heuristic (§5.1.1)")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.StringVar(&o.savePath, "save", "", "save the trained system to this file")
	fs.StringVar(&o.loadPath, "load", "", "skip training and load a system saved with -save")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "write a stage checkpoint to this directory after each pipeline stage")
	fs.StringVar(&o.resume, "resume", "", "resume an interrupted run from this checkpoint directory (implies -checkpoint)")
	fs.BoolVar(&o.strict, "strict", false, "fail on the first malformed CSV row instead of quarantining it")
	fs.IntVar(&o.errorBudget, "error-budget", 0, "max quarantined CSV rows before aborting (0 = default, negative = unlimited)")
	fs.BoolVar(&o.verbose, "v", false, "report each pipeline stage as it completes")
	fs.Parse(args)

	// SIGINT/SIGTERM cancel the training context: the run stops cleanly at
	// the next stage boundary (checkpoints already written stay valid, so
	// -resume continues where the signal landed).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "wym:", err)
		os.Exit(1)
	}
}

// loadData reads or generates the dataset per the command line.
func loadData(o options) (*wym.Dataset, error) {
	switch {
	case o.dataPath != "":
		if o.strict {
			return wym.LoadDataset(o.dataPath)
		}
		d, report, err := wym.LoadDatasetLenient(o.dataPath,
			wym.LoadOptions{ErrorBudget: o.errorBudget})
		if report != nil && !report.Clean() {
			for _, q := range report.Quarantined {
				fmt.Fprintf(os.Stderr, "wym: quarantined %v\n", q)
			}
			fmt.Fprintln(os.Stderr, "wym:", report)
		}
		return d, err
	case o.datasetID != "":
		d, ok := wym.DatasetByKey(o.datasetID, o.scale)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q (try S-DG, S-DA, S-AG, ...)", o.datasetID)
		}
		return d, nil
	default:
		return nil, fmt.Errorf("pass -data <csv> or -dataset <key>")
	}
}

func run(ctx context.Context, o options) error {
	d, err := loadData(o)
	if err != nil {
		return err
	}

	fmt.Printf("dataset %s: %d pairs, %.1f%% matches, schema %v\n",
		d.Name, d.Size(), 100*d.MatchRate(), d.Schema)

	train, valid, test, err := d.Split(0.6, 0.2, o.seed)
	if err != nil {
		return err
	}
	var sys *wym.System
	if o.loadPath != "" {
		sys, err = wym.LoadSystem(o.loadPath)
		if err != nil {
			return err
		}
		fmt.Printf("\nloaded system from %s (classifier %s)\n", o.loadPath, sys.ModelName())
	} else {
		cfg := wym.DefaultConfig()
		cfg.CodeExact = o.codeExact
		cfg.Seed = o.seed
		topts := wym.TrainOptions{CheckpointDir: o.checkpoint, Resume: o.resume != ""}
		if o.resume != "" {
			topts.CheckpointDir = o.resume
		}
		var tracer *wym.Tracer
		if o.verbose {
			tracer = wym.NewTracer()
			topts.Tracer = tracer
			topts.OnStage = func(st wym.TrainStage, took time.Duration, resumed bool) {
				how := "trained"
				if resumed {
					how = "resumed from checkpoint"
				}
				fmt.Printf("stage %-10s %s (%v)\n", st, how, took.Round(time.Millisecond))
			}
		}
		var report *wym.TrainReport
		sys, report, err = wym.TrainWithOptions(ctx, train, valid, cfg, topts)
		if err != nil {
			return err
		}
		if tracer != nil {
			if table := tracer.Table(); table != "" {
				fmt.Printf("\nstage timing:\n%s", table)
			}
		}
		for _, w := range report.CheckpointWarnings {
			fmt.Fprintln(os.Stderr, "wym: checkpoint:", w)
		}
		if len(report.Resumed) > 0 {
			fmt.Printf("resumed %d stage(s) from %s\n", len(report.Resumed), topts.CheckpointDir)
		}
		if n := report.Quarantined(); n > 0 {
			fmt.Fprintf(os.Stderr, "wym: quarantined %d record(s) during training\n", n)
		}
		fmt.Printf("\nselected classifier: %s (validation ranking below)\n", sys.ModelName())
		for _, s := range sys.Report() {
			fmt.Printf("  %-4s F1=%.3f P=%.3f R=%.3f\n", s.Name, s.F1, s.Precision, s.Recall)
		}
	}
	if o.savePath != "" {
		if err := sys.SaveFile(o.savePath); err != nil {
			return err
		}
		fmt.Printf("saved trained system to %s\n", o.savePath)
	}

	eng := sys.Engine()
	pred := eng.PredictAll(test)
	c := eval.NewConfusion(pred, test.Labels())
	fmt.Printf("\ntest: F1=%.3f precision=%.3f recall=%.3f accuracy=%.3f (%d records)\n",
		c.F1(), c.Precision(), c.Recall(), c.Accuracy(), test.Size())

	for i := 0; i < o.explainN && i < test.Size(); i++ {
		printExplanation(eng, test.Pairs[i])
	}
	return nil
}

// printExplanation renders one pair's decision. The pair is processed
// once and the record reused for both the prediction and the explanation
// — the record-level engine API exists exactly so callers never pay for
// tokenization and embedding twice.
func printExplanation(eng *wym.Engine, p wym.Pair) {
	rec := eng.Process(p)
	ex := eng.ExplainRecord(rec)
	truth := "no match"
	if p.Label == wym.Match {
		truth = "match"
	}
	renderDecision(ex, p.Left, p.Right, truth)
}

// renderDecision is the one rendering path for a decision-unit
// explanation: live explains (wym train, wym explain) and stored audit
// records (wym audit show) all print through it, so an audited decision
// re-renders exactly as it would have live. truth == "" omits the truth
// clause (serving-time decisions have no label).
func renderDecision(ex wym.Explanation, left, right wym.Entity, truth string) {
	verdict := "NO MATCH"
	if ex.Prediction == wym.Match {
		verdict = "MATCH"
	}
	if truth == "" {
		fmt.Printf("\n%s (p=%.2f)\n", verdict, ex.Proba)
	} else {
		fmt.Printf("\n%s (p=%.2f, truth: %s)\n", verdict, ex.Proba, truth)
	}
	fmt.Printf("  left : %v\n  right: %v\n", left, right)

	// Highest |impact| first: the order a user reads the explanation.
	unitsCopy := append([]wym.UnitExplanation{}, ex.Units...)
	sort.SliceStable(unitsCopy, func(a, b int) bool {
		return abs(unitsCopy[a].Impact) > abs(unitsCopy[b].Impact)
	})
	for _, u := range unitsCopy {
		l, r := u.Left, u.Right
		if l == "" {
			l = "—"
		}
		if r == "" {
			r = "—"
		}
		fmt.Printf("  %+7.3f  (%s, %s)  rel=%+.2f\n", u.Impact, l, r, u.Relevance)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
