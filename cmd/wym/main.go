// Command wym trains an interpretable entity matcher on a CSV dataset and
// prints predictions with decision-unit explanations.
//
// Usage:
//
//	wym -data pairs.csv [-explain N] [-code-exact] [-seed 1]
//	wym -dataset S-AG -scale 0.05 [-explain N]
//
// The CSV layout is label, left_<attr>..., right_<attr>... (the Magellan
// benchmark layout). With -dataset, a synthetic benchmark dataset is
// generated instead. The tool splits 60-20-20, trains, reports test F1 and
// the classifier-pool ranking, and renders explanations for the first N
// test records.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"wym"
	"wym/internal/eval"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV dataset path (label, left_*, right_* columns)")
		datasetID = flag.String("dataset", "", "generate a synthetic benchmark dataset (e.g. S-AG) instead of reading CSV")
		scale     = flag.Float64("scale", 0.05, "synthetic dataset scale (1.0 = paper size)")
		explainN  = flag.Int("explain", 3, "number of test records to explain")
		codeExact = flag.Bool("code-exact", false, "enable the product-code exact-pairing heuristic (§5.1.1)")
		seed      = flag.Int64("seed", 1, "random seed")
		savePath  = flag.String("save", "", "save the trained system to this file")
		loadPath  = flag.String("load", "", "skip training and load a system saved with -save")
	)
	flag.Parse()

	if err := run(*dataPath, *datasetID, *scale, *explainN, *codeExact, *seed, *savePath, *loadPath); err != nil {
		fmt.Fprintln(os.Stderr, "wym:", err)
		os.Exit(1)
	}
}

func run(dataPath, datasetID string, scale float64, explainN int, codeExact bool, seed int64, savePath, loadPath string) error {
	var d *wym.Dataset
	switch {
	case dataPath != "":
		var err error
		d, err = wym.LoadDataset(dataPath)
		if err != nil {
			return err
		}
	case datasetID != "":
		var ok bool
		d, ok = wym.DatasetByKey(datasetID, scale)
		if !ok {
			return fmt.Errorf("unknown dataset %q (try S-DG, S-DA, S-AG, ...)", datasetID)
		}
	default:
		return fmt.Errorf("pass -data <csv> or -dataset <key>")
	}

	fmt.Printf("dataset %s: %d pairs, %.1f%% matches, schema %v\n",
		d.Name, d.Size(), 100*d.MatchRate(), d.Schema)

	train, valid, test := d.Split(0.6, 0.2, seed)
	var sys *wym.System
	if loadPath != "" {
		var err error
		sys, err = wym.LoadSystem(loadPath)
		if err != nil {
			return err
		}
		fmt.Printf("\nloaded system from %s (classifier %s)\n", loadPath, sys.ModelName())
	} else {
		cfg := wym.DefaultConfig()
		cfg.CodeExact = codeExact
		cfg.Seed = seed
		var err error
		sys, err = wym.Train(train, valid, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("\nselected classifier: %s (validation ranking below)\n", sys.ModelName())
		for _, s := range sys.Report() {
			fmt.Printf("  %-4s F1=%.3f P=%.3f R=%.3f\n", s.Name, s.F1, s.Precision, s.Recall)
		}
	}
	if savePath != "" {
		if err := sys.SaveFile(savePath); err != nil {
			return err
		}
		fmt.Printf("saved trained system to %s\n", savePath)
	}

	pred := sys.PredictAll(test)
	c := eval.NewConfusion(pred, test.Labels())
	fmt.Printf("\ntest: F1=%.3f precision=%.3f recall=%.3f accuracy=%.3f (%d records)\n",
		c.F1(), c.Precision(), c.Recall(), c.Accuracy(), test.Size())

	for i := 0; i < explainN && i < test.Size(); i++ {
		printExplanation(sys, test.Pairs[i])
	}
	return nil
}

func printExplanation(sys *wym.System, p wym.Pair) {
	ex := sys.Explain(p)
	verdict := "NO MATCH"
	if ex.Prediction == wym.Match {
		verdict = "MATCH"
	}
	truth := "no match"
	if p.Label == wym.Match {
		truth = "match"
	}
	fmt.Printf("\n%s (p=%.2f, truth: %s)\n", verdict, ex.Proba, truth)
	fmt.Printf("  left : %v\n  right: %v\n", p.Left, p.Right)

	// Highest |impact| first: the order a user reads the explanation.
	unitsCopy := append([]wym.UnitExplanation{}, ex.Units...)
	sort.SliceStable(unitsCopy, func(a, b int) bool {
		return abs(unitsCopy[a].Impact) > abs(unitsCopy[b].Impact)
	})
	for _, u := range unitsCopy {
		left, right := u.Left, u.Right
		if left == "" {
			left = "—"
		}
		if right == "" {
			right = "—"
		}
		fmt.Printf("  %+7.3f  (%s, %s)  rel=%+.2f\n", u.Impact, left, right, u.Relevance)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
