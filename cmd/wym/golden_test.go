package main

import (
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./cmd/wym -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// durationRE matches Go duration strings ("1.2ms", "980µs", "1m2.5s", …).
// Wall-clock timings are the only run-to-run nondeterminism in the CLI
// output, so normalizing them to a placeholder makes the full stdout —
// including the -v stage-timing table — byte-comparable across runs.
// Longer unit names come first so "ms" is not split into "m"+"s".
var durationRE = regexp.MustCompile(`\d+(\.\d+)?(h|ms|s|m|µs|us|ns)`)

func normalizeDurations(s string) string {
	return durationRE.ReplaceAllString(s, "<DUR>")
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		out, _ := io.ReadAll(r)
		done <- string(out)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", runErr, out)
	}
	return out
}

// TestGoldenTrainExplain locks the complete end-to-end CLI transcript of
// a verbose training run — dataset banner, per-stage progress lines, the
// stage-timing table, classifier ranking, test metrics, and the
// explanation rendering — against a checked-in golden file. Any change to
// the user-visible output shape must be made deliberately via -update.
func TestGoldenTrainExplain(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(context.Background(), options{
			datasetID: "S-BR", scale: 1.0, explainN: 2, seed: 1, verbose: true,
		})
	})
	got := normalizeDurations(out)

	// Structural checks independent of the golden bytes, so a careless
	// -update cannot silently drop the stage-timing table.
	if !strings.Contains(got, "stage timing:") {
		t.Fatalf("verbose run printed no stage-timing table:\n%s", got)
	}
	for _, stage := range []string{
		"embeddings/cooc", "units/train", "scorer/train", "features", "model/select", "total",
	} {
		if !regexp.MustCompile(`(?m)^  ` + regexp.QuoteMeta(stage) + ` +<DUR>$`).MatchString(got) {
			t.Fatalf("stage-timing table missing row for %q:\n%s", stage, got)
		}
	}
	if !strings.Contains(got, "test: F1=") {
		t.Fatalf("missing test-metrics line:\n%s", got)
	}

	golden := filepath.Join("testdata", "train_sbr.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/wym -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("CLI output diverged from %s (re-run with -update if intentional)\n%s",
			golden, diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff: the first divergent line with a
// little context from each side.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return "first divergence at line " + itoa(i+1) +
				":\n  want: " + w[i] + "\n  got:  " + g[i]
		}
	}
	return "line counts differ: want " + itoa(len(w)) + ", got " + itoa(len(g))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
