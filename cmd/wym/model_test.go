package main

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"wym"
)

// Model-file sizes and checksums vary with float noise across
// architectures, so the golden transcript normalizes them alongside
// durations. Paths under t.TempDir() are rewritten to stable tokens.
var (
	sizeRE = regexp.MustCompile(`\b\d+ bytes\b`)
	crcRE  = regexp.MustCompile(`\b0x[0-9a-f]{8}\b`)
)

func normalizeModelOutput(s, dir string) string {
	s = strings.ReplaceAll(s, dir, "<DIR>")
	s = normalizeDurations(s)
	s = sizeRE.ReplaceAllString(s, "<SIZE> bytes")
	s = crcRE.ReplaceAllString(s, "<CRC>")
	return s
}

// trainModelFile materializes the shared S-BR gob artifact into dir.
// Training runs once per test binary (it dominates wall-clock under
// -race); later calls just copy the cached bytes.
var (
	trainGobOnce  sync.Once
	trainGobBytes []byte
	trainGobErr   error
)

func trainModelFile(t *testing.T, dir string) string {
	t.Helper()
	trainGobOnce.Do(func() {
		path := filepath.Join(t.TempDir(), "matcher.gob")
		if trainGobErr = run(context.Background(), options{
			datasetID: "S-BR", scale: 1.0, seed: 1, savePath: path,
		}); trainGobErr != nil {
			return
		}
		trainGobBytes, trainGobErr = os.ReadFile(path)
	})
	if trainGobErr != nil {
		t.Fatal(trainGobErr)
	}
	gobPath := filepath.Join(dir, "matcher.gob")
	if err := os.WriteFile(gobPath, trainGobBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	return gobPath
}

// TestGoldenModelConvertInfo locks the `wym model convert` + `wym model
// info` transcript — the operator-facing view of the arena format —
// against a golden file, for gob, float32-arena and int8-arena inputs.
func TestGoldenModelConvertInfo(t *testing.T) {
	dir := t.TempDir()
	var gobPath string
	// Train outside the captured region: the training transcript is
	// already locked by train_sbr.golden.
	gobPath = trainModelFile(t, dir)
	f32Path := filepath.Join(dir, "matcher.wyma")
	int8Path := filepath.Join(dir, "matcher.int8.wyma")

	out := captureStdout(t, func() error {
		if err := runModel([]string{"convert", "-in", gobPath, "-out", f32Path}); err != nil {
			return err
		}
		if err := runModel([]string{"convert", "-in", gobPath, "-out", int8Path, "-int8"}); err != nil {
			return err
		}
		for _, p := range []string{gobPath, f32Path, int8Path} {
			if err := runModel([]string{"info", "-model", p}); err != nil {
				return err
			}
		}
		return nil
	})
	got := normalizeModelOutput(out, dir)

	// Structural checks that survive -update.
	for _, want := range []string{
		"format: gob", "format: arena-f32", "format: arena-int8",
		"quantization: none (float32)", "quantization: int8, per-vector scales",
		"payload crc32c: <CRC>", "scorer: nn (arena fast path)",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("transcript missing %q:\n%s", want, got)
		}
	}

	golden := filepath.Join("testdata", "model_info.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/wym -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("model CLI output diverged from %s (re-run with -update if intentional)\n%s",
			golden, diffLines(string(want), got))
	}
}

func TestModelSubcommandErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"convert"},
		{"convert", "-in", "nope.gob"},
		{"info"},
		{"info", "-model", filepath.Join(t.TempDir(), "missing.wyma")},
	} {
		if err := runModel(args); err == nil {
			t.Fatalf("runModel(%v) succeeded, want error", args)
		}
	}
}

// TestLoadTrainedArenaServes drives the end-to-end operator flow: train
// -save gob, convert, then `-load model.wyma` serves predictions.
func TestLoadTrainedArenaServes(t *testing.T) {
	dir := t.TempDir()
	gobPath := trainModelFile(t, dir)
	arenaPath := filepath.Join(dir, "m.wyma")
	if err := runModel([]string{"convert", "-in", gobPath, "-out", arenaPath}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), options{
		datasetID: "S-BR", scale: 1.0, seed: 1, loadPath: arenaPath, explainN: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sys, err := wym.LoadSystem(arenaPath)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Format() != wym.FormatArenaF32 {
		t.Fatalf("Format() = %q", sys.Format())
	}
}
