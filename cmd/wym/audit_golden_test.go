package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wym/internal/audit"
)

// fixedAuditLog writes a deterministic audit log: pinned timestamps,
// latencies, and explanations, spanning two models, both decision
// labels, and a batch-job route.
func fixedAuditLog(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, err := audit.Open(dir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC).UnixNano()
	recs := []audit.Record{
		{
			RequestID: "req-0001", TimeNanos: base, Route: "/predict",
			Model: "default", ArtifactFP: "fnv64:00000000deadbeef", FeedbackFP: "fnv64:0000000000000001",
			Left: []string{"sony", "tv", "499"}, Right: []string{"sony", "tv", "489"},
			Prediction: 1, Proba: 0.91, Threshold: 0.5,
			Units: []audit.Unit{
				{Left: "sony", Right: "sony", Kind: 0, Attr: 0, Relevance: 0.9, Impact: 0.81},
				{Left: "499", Right: "", Kind: 1, Attr: 2, Relevance: 0.4, Impact: -0.12},
			},
			LatencyNanos: int64(1500 * time.Microsecond),
		},
		{
			RequestID: "req-0002", TimeNanos: base + int64(90*time.Second), Route: "/predict",
			Model: "default", ArtifactFP: "fnv64:00000000deadbeef", FeedbackFP: "fnv64:0000000000000001",
			Left: []string{"café", "crème", "12"}, Right: []string{"teapot", "steel", "80"},
			Prediction: 0, Proba: 0.08, Threshold: 0.5,
			Units: []audit.Unit{
				{Left: "café", Right: "", Kind: 1, Attr: 0, Relevance: 0.7, Impact: -0.55},
			},
			LatencyNanos: int64(900 * time.Microsecond),
		},
		{
			RequestID: "req-0003", TimeNanos: base + int64(5*time.Minute), Route: "/models/{name}/explain",
			Model: "alt", ArtifactFP: "fnv64:00000000cafef00d", FeedbackFP: "",
			Left: []string{"acme", "kit", "5"}, Right: []string{"acme", "kit", "5"},
			Prediction: 1, Proba: 0.99, Threshold: 0.5,
			LatencyNanos: int64(2 * time.Millisecond),
		},
		{
			RequestID: "c000000:p0-7", TimeNanos: base + int64(10*time.Minute), Route: "dedup",
			Model: "m.gob", ArtifactFP: "fnv64:0000000012345678", FeedbackFP: "",
			Left: []string{"zeta", "box", "1"}, Right: []string{"zeta", "box", "2"},
			Prediction: 1, Proba: 0.77, Threshold: 0.5,
			LatencyNanos: int64(4200 * time.Microsecond),
		},
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestGoldenAuditCLI locks the complete `wym audit` query transcript —
// list (plain, filtered, limited), show with its re-rendered
// explanation, and stats — against a checked-in golden file.
func TestGoldenAuditCLI(t *testing.T) {
	dir := fixedAuditLog(t)
	cmds := [][]string{
		{"list", "-dir", dir},
		{"list", "-dir", dir, "-decision", "match", "-limit", "2"},
		{"list", "-dir", dir, "-model", "default", "-since", "2026-03-01T12:01:00Z"},
		{"show", "req-0001", "-dir", dir},
		{"show", "-dir", dir, "c000000:p0-7"},
		{"stats", "-dir", dir},
		{"stats", "-dir", dir, "-until", "2026-03-01T12:04:00Z"},
	}
	var got string
	for _, cmd := range cmds {
		got += "$ wym audit"
		for _, a := range cmd {
			arg := a
			if a == dir {
				arg = "<DIR>"
			}
			got += " " + arg
		}
		got += "\n"
		got += captureStdout(t, func() error { return runAuditCmd(cmd) })
		got += "\n"
	}

	golden := filepath.Join("testdata", "audit_cli.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/wym -run GoldenAudit -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("audit CLI output diverged from %s (re-run with -update if intentional)\n%s",
			golden, diffLines(string(want), got))
	}
}

// TestAuditShowMissing: a request ID absent from the log is a clean
// error naming the ID, not an empty render.
func TestAuditShowMissing(t *testing.T) {
	dir := fixedAuditLog(t)
	if err := runAuditCmd([]string{"show", "nope", "-dir", dir}); err == nil {
		t.Fatal("show of a missing request ID succeeded")
	}
}
