package main

import (
	"flag"
	"fmt"
	"strings"

	"wym"
)

// runExplainCmd implements `wym explain`: predict and explain one
// ad-hoc pair against a trained model, rendering the same decision
// block `wym train -explain` and `wym audit show` print.
func runExplainCmd(args []string) error {
	fs := flag.NewFlagSet("wym explain", flag.ExitOnError)
	var (
		model = fs.String("model", "", "trained model file (wym train -save)")
		left  = fs.String("left", "", "left entity: attribute values joined by -sep, in schema order")
		right = fs.String("right", "", "right entity: attribute values joined by -sep, in schema order")
		sep   = fs.String("sep", "|", "attribute separator for -left and -right")
	)
	fs.Parse(args)
	if *model == "" || *left == "" || *right == "" {
		return fmt.Errorf("usage: wym explain -model <file> -left \"a|b|c\" -right \"a|b|c\" [-sep \"|\"]")
	}
	sys, err := wym.LoadSystem(*model)
	if err != nil {
		return err
	}
	schema := sys.Schema()
	l := strings.Split(*left, *sep)
	r := strings.Split(*right, *sep)
	for _, side := range []struct {
		flag string
		vals []string
	}{{"-left", l}, {"-right", r}} {
		if len(side.vals) != len(schema) {
			return fmt.Errorf("%s has %d attributes, model schema %v wants %d",
				side.flag, len(side.vals), schema, len(schema))
		}
	}
	ex := sys.Engine().Explain(wym.Pair{Left: l, Right: r})
	fmt.Printf("model %s (classifier %s, threshold %.2f)\n", *model, sys.ModelName(), sys.DecisionThreshold())
	renderDecision(ex, l, r, "")
	return nil
}
