package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wym"
	"wym/internal/blocking"
	"wym/internal/datagen"
)

// labelOptions carries the parsed command line of `wym label`.
type labelOptions struct {
	model      string
	candidates string // labeled pair CSV (label, left_*, right_*)
	left       string // table pair: blocking generates the candidates
	right      string
	datasetID  string // synthetic benchmark pool (test split)
	scale      float64
	drift      float64 // simulated post-train vocabulary drift on the right side
	driftSeed  int64
	seed       int64
	k          int
	topK       int // blocking top-k per left row
	auto       bool
	journalDir string
	save       string
}

// runLabelCmd implements `wym label`: an active-labeling session that
// presents the candidate pairs the model is least sure about (lowest
// margin to the decision threshold) first, so each adjudication moves
// the decision boundary as much as possible. Adjudicated labels can be
// appended to a feedback journal (-journal, the same format wym-server
// replays) and folded into the model on the spot (-save).
//
//	wym label -model m.gob -candidates pairs.csv -k 10 -journal fb/
//	wym label -model m.gob -left a.csv -right b.csv -save m2.gob
//	wym label -model m.gob -dataset S-BR -drift 0.6 -auto -save m2.gob
//
// Interactive mode prompts y/n per pair; -auto adjudicates from the
// ground truth in the candidate source (labeled CSV or synthetic
// dataset) — the batch mode scripts and the golden transcript use.
func runLabelCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wym label", flag.ExitOnError)
	var o labelOptions
	fs.StringVar(&o.model, "model", "", "trained model file (wym train -save); must be gob to fold feedback in")
	fs.StringVar(&o.candidates, "candidates", "", "candidate pair CSV (label, left_*, right_* — the training layout)")
	fs.StringVar(&o.left, "left", "", "left entity table CSV (candidates come from blocking)")
	fs.StringVar(&o.right, "right", "", "right entity table CSV")
	fs.StringVar(&o.datasetID, "dataset", "", "synthetic benchmark pool (e.g. S-BR): labels the test split")
	fs.Float64Var(&o.scale, "scale", 1.0, "synthetic dataset scale")
	fs.Float64Var(&o.drift, "drift", 0, "drift rate applied to the right side of -dataset pairs (simulates post-train vocabulary shift)")
	fs.Int64Var(&o.driftSeed, "drift-seed", 23, "drift seed")
	fs.Int64Var(&o.seed, "seed", 1, "dataset split seed")
	fs.IntVar(&o.k, "k", 10, "labeling budget: how many lowest-margin pairs to present")
	fs.IntVar(&o.topK, "topk", 50, "blocking: candidates kept per left row (table mode)")
	fs.BoolVar(&o.auto, "auto", false, "adjudicate from ground truth instead of prompting (requires a labeled source)")
	fs.StringVar(&o.journalDir, "journal", "", "append adjudicated labels to the feedback journal in this directory")
	fs.StringVar(&o.save, "save", "", "fold the labels into the model and save the updated system here")
	fs.Parse(args)
	if o.model == "" {
		return fmt.Errorf("pass -model <file>")
	}
	return runLabel(ctx, o, os.Stdin)
}

// labelPool returns the candidate pairs and whether they carry ground
// truth (required by -auto).
func labelPool(o labelOptions) ([]wym.Pair, bool, error) {
	switch {
	case o.candidates != "":
		d, err := wym.LoadDataset(o.candidates)
		if err != nil {
			return nil, false, err
		}
		return d.Pairs, true, nil
	case o.left != "" && o.right != "":
		pairs, err := blockedPairs(o)
		return pairs, false, err
	case o.datasetID != "":
		d, ok := wym.DatasetByKey(o.datasetID, o.scale)
		if !ok {
			return nil, false, fmt.Errorf("unknown dataset %q (try S-DG, S-DA, S-AG, ...)", o.datasetID)
		}
		// The test split: pairs disjoint from what a model trained on the
		// same dataset and seed ever saw.
		_, _, test := d.MustSplit(0.6, 0.2, o.seed)
		pairs := test.Pairs
		if o.drift > 0 {
			drifted := make([]wym.Pair, len(pairs))
			for i, p := range pairs {
				drifted[i] = p
				drifted[i].Right = datagen.DriftEntity(p.Right, o.drift, o.driftSeed)
			}
			pairs = drifted
		}
		return pairs, true, nil
	default:
		return nil, false, fmt.Errorf("pass -candidates <csv>, -left/-right <csv>, or -dataset <key>")
	}
}

// blockedPairs generates unlabeled candidates from a table pair via the
// streaming blocker — the same candidate generation `wym match` scores.
func blockedPairs(o labelOptions) ([]wym.Pair, error) {
	left, err := wym.LoadTable(o.left)
	if err != nil {
		return nil, err
	}
	right, err := wym.LoadTable(o.right)
	if err != nil {
		return nil, err
	}
	s, err := blocking.NewStreamer(left.Rows, right.Rows, blocking.StreamConfig{
		Config: blocking.Config{MaxDF: 0.1, MinShared: 1},
		TopK:   o.topK,
	})
	if err != nil {
		return nil, err
	}
	cs, err := s.Chunk(0, len(left.Rows))
	if err != nil {
		return nil, err
	}
	var pairs []wym.Pair
	for {
		c, ok := cs.Next()
		if !ok {
			break
		}
		pairs = append(pairs, wym.Pair{Left: left.Rows[c.Left], Right: right.Rows[c.Right]})
	}
	return pairs, nil
}

func runLabel(ctx context.Context, o labelOptions, in io.Reader) error {
	sys, err := wym.LoadSystem(o.model)
	if err != nil {
		return err
	}
	pool, hasTruth, err := labelPool(o)
	if err != nil {
		return err
	}
	if len(pool) == 0 {
		return fmt.Errorf("no candidate pairs to label")
	}
	if o.auto && !hasTruth {
		return fmt.Errorf("-auto needs a labeled source (-candidates or -dataset); table mode is interactive only")
	}
	if o.save != "" && !sys.SupportsFeedback() {
		return fmt.Errorf("model %s (%s) cannot fold feedback; pass the gob artifact trained with SBERT/BERT fine-tuning", o.model, sys.Format())
	}

	fmt.Printf("model %s (classifier %s, threshold %.4f)\n", o.model, sys.ModelName(), sys.DecisionThreshold())
	scores := make([]float64, len(pool))
	for i, p := range pool {
		_, scores[i] = sys.Predict(p)
	}
	sel := wym.FeedbackSelector{Theta: sys.DecisionThreshold()}
	ranked := sel.TopK(scores, o.k)
	fmt.Printf("pool: %d candidates, presenting the %d lowest-margin\n", len(pool), len(ranked))

	var labels []wym.FeedbackLabel
	var skipped int
	sc := bufio.NewScanner(in)
adjudicate:
	for i, r := range ranked {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := pool[r.Index]
		fmt.Printf("\n[%d/%d] p=%.4f margin=%.4f\n  left : %v\n  right: %v\n",
			i+1, len(ranked), r.Score, r.Margin, p.Left, p.Right)
		var match bool
		if o.auto {
			match = p.Label == wym.Match
			verdict := "non-match"
			if match {
				verdict = "match"
			}
			fmt.Printf("  auto: %s (ground truth)\n", verdict)
		} else {
			switch answer(sc) {
			case "y":
				match = true
			case "n":
				match = false
			case "q":
				break adjudicate
			default:
				skipped++
				continue
			}
		}
		labels = append(labels, wym.FeedbackLabel{Left: p.Left, Right: p.Right, Match: match})
	}

	pos := 0
	for _, lb := range labels {
		if lb.Match {
			pos++
		}
	}
	fmt.Printf("\nlabeled %d pairs (%d match, %d non-match, %d skipped)\n",
		len(labels), pos, len(labels)-pos, skipped)
	if len(labels) == 0 {
		return nil
	}

	if o.journalDir != "" {
		j, existing, err := wym.OpenFeedbackJournal(o.journalDir)
		if err != nil {
			return err
		}
		defer j.Close()
		if err := j.Append(labels); err != nil {
			return err
		}
		fmt.Printf("journaled %d labels to %s (%d total)\n",
			len(labels), o.journalDir, len(existing)+len(labels))
	}
	if o.save != "" {
		upd, err := sys.ApplyFeedback(ctx, labels)
		if err != nil {
			return err
		}
		fmt.Printf("feedback folded: %d labels, fingerprint %s, threshold %.4f\n",
			upd.FeedbackCount(), upd.FeedbackFingerprint(), upd.DecisionThreshold())
		if err := upd.SaveFile(o.save); err != nil {
			return err
		}
		fmt.Printf("saved updated model to %s\n", o.save)
	}
	return nil
}

// answer reads one adjudication: y(es) / n(o) / s(kip) / q(uit). EOF
// quits the session (remaining candidates are skipped).
func answer(sc *bufio.Scanner) string {
	fmt.Print("  match? [y/n/s/q] ")
	if !sc.Scan() {
		return "q"
	}
	switch strings.ToLower(strings.TrimSpace(sc.Text())) {
	case "y", "yes":
		return "y"
	case "n", "no":
		return "n"
	case "q", "quit":
		return "q"
	default:
		return "s"
	}
}
