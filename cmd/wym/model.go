package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wym"
	"wym/internal/relevance"
)

// runModel dispatches the `wym model` subcommands:
//
//	wym model convert -in matcher.gob -out matcher.wyma [-int8]
//	wym model info -model matcher.wyma
//
// convert compiles a trained artifact (gob or arena) into the flat
// zero-copy .wyma serving format; info prints a model file's format,
// shape and integrity summary without fully deserializing it.
func runModel(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: wym model <convert|info> [flags]")
	}
	switch args[0] {
	case "convert":
		return runModelConvert(args[1:])
	case "info":
		return runModelInfo(args[1:])
	default:
		return fmt.Errorf("unknown model subcommand %q (want convert or info)", args[0])
	}
}

func runModelConvert(args []string) error {
	fs := flag.NewFlagSet("wym model convert", flag.ExitOnError)
	in := fs.String("in", "", "trained model to convert (gob or .wyma)")
	out := fs.String("out", "", "output .wyma path")
	int8Flag := fs.Bool("int8", false, "quantize vectors to int8 with per-vector scales (4x smaller)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("pass -in <model> and -out <model.wyma>")
	}
	start := time.Now()
	sys, err := wym.LoadSystem(*in)
	if err != nil {
		return err
	}
	loadTook := time.Since(start)
	start = time.Now()
	if err := sys.SaveArenaFile(*out, wym.ArenaOptions{Int8: *int8Flag}); err != nil {
		return err
	}
	compileTook := time.Since(start)

	re, err := wym.LoadSystem(*out)
	if err != nil {
		return fmt.Errorf("verifying converted model: %w", err)
	}
	f := re.ArenaFile()
	fmt.Printf("converted %s (%s) -> %s (%s)\n", *in, sys.Format(), *out, re.Format())
	fmt.Printf("  vocab %d vectors, dim %d, %d bytes on disk\n", f.VocabN, f.Dim, f.Size())
	fmt.Printf("  load %v, compile %v\n", loadTook.Round(time.Millisecond), compileTook.Round(time.Millisecond))
	return nil
}

func runModelInfo(args []string) error {
	fs := flag.NewFlagSet("wym model info", flag.ExitOnError)
	path := fs.String("model", "", "model file to inspect (gob or .wyma)")
	fs.Parse(args)
	if *path == "" {
		// Accept a bare positional path: `wym model info matcher.wyma`.
		if fs.NArg() == 1 {
			*path = fs.Arg(0)
		} else {
			return fmt.Errorf("pass -model <file>")
		}
	}
	st, err := os.Stat(*path)
	if err != nil {
		return err
	}
	sys, err := wym.LoadSystem(*path)
	if err != nil {
		return err
	}
	fmt.Printf("model: %s\n", *path)
	fmt.Printf("format: %s\n", sys.Format())
	fmt.Printf("file size: %d bytes\n", st.Size())
	if f := sys.ArenaFile(); f != nil {
		quant := "none (float32)"
		if f.Int8() {
			quant = "int8, per-vector scales"
		}
		fmt.Printf("vocab: %d vectors, dim %d (hash %d)\n", f.VocabN, f.Dim, f.HashDim)
		fmt.Printf("quantization: %s\n", quant)
		fmt.Printf("payload crc32c: 0x%08x\n", f.CRC)
	}
	fmt.Printf("classifier: %s\n", sys.ModelName())
	fmt.Printf("scorer: %s\n", scorerName(sys))
	fmt.Printf("schema: %v\n", sys.Schema())
	if n := sys.FeedbackCount(); n > 0 {
		fmt.Printf("feedback: %d labels folded in (fingerprint %s)\n", n, sys.FeedbackFingerprint())
		fmt.Printf("decision threshold: %.4f\n", sys.DecisionThreshold())
	}
	return nil
}

func scorerName(sys *wym.System) string {
	switch sys.Scorer().(type) {
	case *relevance.NN:
		return "nn"
	case *relevance.FastNN:
		return "nn (arena fast path)"
	case relevance.Binary:
		return "binary"
	case relevance.Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("%T", sys.Scorer())
	}
}
