package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBlockingConfigFlags pins the flag → StreamConfig assembly,
// including the -attrs list parsing and its error path.
func TestBlockingConfigFlags(t *testing.T) {
	o := matchOptions{maxDF: 0.2, minShared: 2, jaccard: 0.1, indexMemMB: 8, topK: 7, attrs: " 0, 2 "}
	cfg, err := o.blockingConfig(true)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxDF != 0.2 || cfg.MinShared != 2 || cfg.JaccardFloor != 0.1 {
		t.Fatalf("filters not carried: %+v", cfg)
	}
	if cfg.MemoryBudget != 8<<20 || cfg.TopK != 7 || !cfg.Self {
		t.Fatalf("stream knobs not carried: %+v", cfg)
	}
	if len(cfg.Attrs) != 2 || cfg.Attrs[0] != 0 || cfg.Attrs[1] != 2 {
		t.Fatalf("attrs = %v", cfg.Attrs)
	}

	o.attrs = "0,x"
	if _, err := o.blockingConfig(false); err == nil {
		t.Fatal("bad -attrs entry accepted")
	}
}

// TestFileFNV checks the model fingerprint is content-derived and that
// a missing file reports an error rather than fingerprint zero.
func TestFileFNV(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	if err := os.WriteFile(a, []byte("model bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("model bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	fa, err := fileFNV(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fileFNV(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("same content, different fingerprints: %x vs %x", fa, fb)
	}
	if err := os.WriteFile(b, []byte("other bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fb, _ = fileFNV(b); fa == fb {
		t.Fatal("different content, same fingerprint")
	}
	if _, err := fileFNV(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file fingerprinted without error")
	}
}
