package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"wym/internal/data"
	"wym/internal/datagen"
)

// buildWymBinary compiles the CLI once for the subprocess tests.
func buildWymBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "wym")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building wym binary: %v\n%s", err, out)
	}
	return bin
}

// manifestChunkCount parses the job manifest and returns how many chunks
// it records (-1 when the manifest is absent or torn mid-read).
func manifestChunkCount(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		return -1
	}
	var m struct {
		Chunks []struct {
			ID int `json:"id"`
		} `json:"chunks"`
	}
	if json.Unmarshal(raw, &m) != nil {
		return -1
	}
	return len(m.Chunks)
}

// TestMatchKillResume is the crash-safety acceptance test: SIGKILL a
// `wym match` subprocess mid-job, resume it, and require the merged
// output to be byte-identical to an uninterrupted run. SIGKILL (not
// SIGTERM) is the point — the process gets no chance to clean up, so
// only the atomic manifest/segment discipline protects the job state.
func TestMatchKillResume(t *testing.T) {
	fx := matchTestFixture(t)
	workDir := t.TempDir()
	bin := buildWymBinary(t, workDir)

	// A bigger table pair than the golden fixture, so the throttled job
	// reliably outlives the kill window.
	p, _ := datagen.ProfileByKey("S-BR")
	tp := datagen.GenerateTables(p, 200, 0.3)
	leftPath := filepath.Join(workDir, "left.csv")
	rightPath := filepath.Join(workDir, "right.csv")
	if err := data.SaveTableFile(leftPath, &data.Table{Schema: tp.Schema, Rows: tp.Left}); err != nil {
		t.Fatal(err)
	}
	if err := data.SaveTableFile(rightPath, &data.Table{Schema: tp.Schema, Rows: tp.Right}); err != nil {
		t.Fatal(err)
	}

	jobArgs := func(out, job string, extra ...string) []string {
		args := []string{"match",
			"-left", leftPath, "-right", rightPath,
			"-model", fx.modelPath,
			"-out", out, "-job", job,
			"-chunk", "20", "-topk", "20",
		}
		return append(args, extra...)
	}

	// Reference: one uninterrupted run.
	refOut := filepath.Join(workDir, "ref.csv")
	if out, err := exec.Command(bin, jobArgs(refOut, refOut+".job")...).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: throttle paces the chunks so the manifest poll can
	// catch the job mid-flight, then SIGKILL.
	out := filepath.Join(workDir, "matches.csv")
	job := filepath.Join(workDir, "matches.csv.job")
	cmd := exec.Command(bin, jobArgs(out, job, "-throttle", "400ms")...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(job, "job.json")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if n := manifestChunkCount(manifest); n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("job never recorded 2 chunks")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	if err == nil {
		t.Fatal("SIGKILLed process exited cleanly — kill landed after completion, widen the throttle")
	}
	done := manifestChunkCount(manifest)
	if done >= 10 {
		t.Fatalf("job finished all %d chunks before the kill", done)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("killed job left a merged output file")
	}

	// Resume (throttle dropped: pacing must not invalidate the manifest)
	// and require byte-identical output.
	res, err := exec.Command(bin, jobArgs(out, job, "-resume")...).CombinedOutput()
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, res)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestMatchSigtermDrains verifies the graceful path: SIGTERM lets the
// in-flight chunk drain, prints the resumable notice, and exits 0.
func TestMatchSigtermDrains(t *testing.T) {
	fx := matchTestFixture(t)
	workDir := t.TempDir()
	bin := buildWymBinary(t, workDir)

	out := filepath.Join(workDir, "dups.csv")
	job := filepath.Join(workDir, "dups.csv.job")
	cmd := exec.Command(bin, "dedup",
		"-in", fx.leftPath, "-model", fx.modelPath,
		"-out", out, "-job", job,
		"-chunk", "10", "-max-df", "0.3", "-throttle", "500ms")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(job, "job.json")
	deadline := time.Now().Add(2 * time.Minute)
	for manifestChunkCount(manifest) < 1 {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("job never recorded a chunk")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM should exit 0, got %v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("resumable with -resume")) {
		t.Fatalf("missing resumable notice:\n%s", buf.String())
	}
	// The drained run is resumable to completion.
	if res, err := exec.Command(bin, "dedup",
		"-in", fx.leftPath, "-model", fx.modelPath,
		"-out", out, "-job", job,
		"-chunk", "10", "-max-df", "0.3", "-resume").CombinedOutput(); err != nil {
		t.Fatalf("resume after SIGTERM: %v\n%s", err, res)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("resumed dedup wrote no output: %v", err)
	}
}
