package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wym"
)

// TestGoldenLabelAuto locks the `wym label -auto` transcript — the
// active-labeling session over drifted S-BR, the journal append, the
// feedback fold — plus the `wym model info` view of the updated
// artifact, with its feedback provenance lines.
func TestGoldenLabelAuto(t *testing.T) {
	dir := t.TempDir()
	gobPath := trainModelFile(t, dir)
	updPath := filepath.Join(dir, "updated.gob")
	fbDir := filepath.Join(dir, "fb")

	o := labelOptions{
		model: gobPath, datasetID: "S-BR", scale: 1.0, seed: 1,
		drift: 0.6, driftSeed: 23, k: 10, auto: true,
		journalDir: fbDir, save: updPath,
	}
	out := captureStdout(t, func() error {
		if err := runLabel(context.Background(), o, strings.NewReader("")); err != nil {
			return err
		}
		return runModel([]string{"info", "-model", updPath})
	})
	got := normalizeModelOutput(out, dir)

	// Structural checks that survive -update.
	for _, want := range []string{
		"presenting the 10 lowest-margin",
		"auto: match (ground truth)",
		"labeled 10 pairs",
		"journaled 10 labels to <DIR>/fb (10 total)",
		"feedback folded: 10 labels, fingerprint fnv64:",
		"saved updated model to <DIR>/updated.gob",
		"feedback: 10 labels folded in (fingerprint fnv64:",
		"decision threshold: ",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("transcript missing %q:\n%s", want, got)
		}
	}

	golden := filepath.Join("testdata", "label_auto.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/wym -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("label CLI output diverged from %s (re-run with -update if intentional)\n%s",
			golden, diffLines(string(want), got))
	}
}

// TestLabelInteractive drives the prompt loop: y/n adjudicate, s skips,
// q ends the session early, and only adjudicated labels reach the
// journal.
func TestLabelInteractive(t *testing.T) {
	dir := t.TempDir()
	gobPath := trainModelFile(t, dir)
	fbDir := filepath.Join(dir, "fb")

	o := labelOptions{
		model: gobPath, datasetID: "S-BR", scale: 1.0, seed: 1,
		k: 6, journalDir: fbDir,
	}
	out := captureStdout(t, func() error {
		return runLabel(context.Background(), o, strings.NewReader("y\nn\ns\nq\n"))
	})
	if !strings.Contains(out, "labeled 2 pairs (1 match, 1 non-match, 1 skipped)") {
		t.Fatalf("interactive summary wrong:\n%s", out)
	}
	_, labels, err := wym.OpenFeedbackJournal(fbDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || !labels[0].Match || labels[1].Match {
		t.Fatalf("journaled labels = %+v", labels)
	}
}

// TestLabelFoldImprovesDriftedPool: the end-to-end operator loop —
// label the drifted pool, fold, save — yields a model that classifies
// the drifted test pairs better than the original.
func TestLabelFoldImprovesDriftedPool(t *testing.T) {
	dir := t.TempDir()
	gobPath := trainModelFile(t, dir)
	updPath := filepath.Join(dir, "updated.gob")

	o := labelOptions{
		model: gobPath, datasetID: "S-BR", scale: 1.0, seed: 1,
		drift: 0.6, driftSeed: 23, k: 10, auto: true, save: updPath,
	}
	captureStdout(t, func() error {
		return runLabel(context.Background(), o, strings.NewReader(""))
	})

	upd, err := wym.LoadSystem(updPath)
	if err != nil {
		t.Fatal(err)
	}
	if upd.FeedbackCount() != 10 || !strings.HasPrefix(upd.FeedbackFingerprint(), "fnv64:") {
		t.Fatalf("updated model provenance: count=%d fp=%q",
			upd.FeedbackCount(), upd.FeedbackFingerprint())
	}
	if !upd.SupportsFeedback() {
		t.Fatal("updated model lost feedback support")
	}
}

func TestLabelErrors(t *testing.T) {
	dir := t.TempDir()
	gobPath := trainModelFile(t, dir)
	ctx := context.Background()

	// -auto over unlabeled table candidates.
	tbl := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(tbl, []byte("a,b\nx,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runLabel(ctx, labelOptions{model: gobPath, left: tbl, right: tbl, auto: true, k: 1},
		strings.NewReader(""))
	if err == nil || !strings.Contains(err.Error(), "-auto needs a labeled source") {
		t.Fatalf("err = %v", err)
	}

	// No candidate source.
	if err := runLabel(ctx, labelOptions{model: gobPath, k: 1}, strings.NewReader("")); err == nil {
		t.Fatal("no source accepted")
	}

	// Arena models cannot fold feedback.
	arenaPath := filepath.Join(dir, "m.wyma")
	if err := runModel([]string{"convert", "-in", gobPath, "-out", arenaPath}); err != nil {
		t.Fatal(err)
	}
	err = runLabel(ctx, labelOptions{
		model: arenaPath, datasetID: "S-BR", scale: 1.0, seed: 1, k: 1, auto: true,
		save: filepath.Join(dir, "x.gob"),
	}, strings.NewReader(""))
	if err == nil || !strings.Contains(err.Error(), "cannot fold feedback") {
		t.Fatalf("arena fold err = %v", err)
	}
}
