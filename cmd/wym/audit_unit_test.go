package main

import (
	"strings"
	"testing"
	"time"

	"wym"
	"wym/internal/audit"
)

func TestParseAuditTime(t *testing.T) {
	if n, err := parseAuditTime(""); err != nil || n != 0 {
		t.Fatalf("empty time: %d, %v", n, err)
	}
	want := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	n, err := parseAuditTime("2026-08-01T12:00:00Z")
	if err != nil || n != want.UnixNano() {
		t.Fatalf("RFC3339 parse: %d, %v", n, err)
	}
	if _, err := parseAuditTime("yesterday"); err == nil {
		t.Fatal("non-RFC3339 time accepted")
	}
}

func TestAuditFilterKeep(t *testing.T) {
	rec := audit.Record{Model: "m1", Prediction: wym.Match, TimeNanos: 100}
	cases := []struct {
		f    auditFilter
		keep bool
	}{
		{auditFilter{decision: -1}, true},
		{auditFilter{decision: wym.Match}, true},
		{auditFilter{decision: wym.NonMatch}, false},
		{auditFilter{model: "m1", decision: -1}, true},
		{auditFilter{model: "other", decision: -1}, false},
		{auditFilter{decision: -1, since: 100}, true},
		{auditFilter{decision: -1, since: 101}, false},
		{auditFilter{decision: -1, until: 100}, false},
		{auditFilter{decision: -1, until: 101}, true},
	}
	for i, c := range cases {
		if got := c.f.keep(rec); got != c.keep {
			t.Errorf("case %d: keep = %v, want %v", i, got, c.keep)
		}
	}
}

func TestRunAuditCmdUsageErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		args []string
		want string // substring of the error
	}{
		{nil, "usage"},
		{[]string{"list"}, "-dir"},
		{[]string{"frobnicate", "-dir", dir}, "unknown audit subcommand"},
		{[]string{"show", "-dir", dir}, "usage: wym audit show"},
		{[]string{"list", "-dir", dir, "-decision", "maybe"}, "-decision"},
		{[]string{"list", "-dir", dir, "-since", "noon"}, "-since"},
		{[]string{"list", "-dir", dir, "-until", "midnight"}, "-until"},
	}
	for _, c := range cases {
		err := runAuditCmd(c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: err = %v, want substring %q", c.args, err, c.want)
		}
	}
}
