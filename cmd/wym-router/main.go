// Command wym-router fronts a fleet of wym-server replicas with a
// consistent-hash routing layer: requests for the same pair always land
// on the same replica while it is healthy, failures fail over along the
// ring, and a dead replica degrades batches per-item instead of turning
// them into whole-request errors.
//
// Usage:
//
//	wym-router -replicas http://10.0.0.1:8080,http://10.0.0.2:8080 -addr :8090
//
// Endpoints (mirrors wym-server, so clients cannot tell them apart):
//
//	POST /predict, /explain, /predict/batch
//	POST /models/{name}/predict[,/batch], /models/{name}/explain
//	GET  /schema    -> forwarded to any healthy replica
//	GET  /healthz   -> 200 ok (router liveness)
//	GET  /readyz    -> per-replica fleet detail; 503 when the ring is empty
//
// Resilience model:
//
//   - Active health probing: every replica's /readyz is polled; after
//     -eject-after consecutive failures the replica leaves the ring, and
//     one successful probe re-admits it with a fresh breaker.
//   - Per-replica circuit breakers (closed/open/half-open) trip on
//     transport errors and 5xx, so an in-request failure stops traffic
//     before the prober notices.
//   - Retries with exponential backoff and full jitter on idempotent
//     predict/explain calls; deadlines propagate from the inbound
//     request, so a client cancel is never retried.
//   - 429 sheds honor the replica's Retry-After instead of tripping the
//     breaker: saturated is not broken.
//   - /predict/batch scatter-gathers by shard; items on a downed shard
//     come back as per-item errors, never a whole-batch 5xx.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wym/internal/cluster"
	"wym/internal/obs"
	"wym/internal/serve"
)

func main() {
	var (
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		addr     = flag.String("addr", ":8090", "listen address")

		vnodes        = flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "replica /readyz probe cadence")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "per-probe budget")
		ejectAfter    = flag.Int("eject-after", 2, "consecutive failed probes before a replica leaves the ring")

		breakerThreshold = flag.Int("breaker-threshold", 3, "consecutive request failures that open a replica's breaker")
		breakerOpen      = flag.Duration("breaker-open", 5*time.Second, "how long an open breaker waits before a half-open probe")

		tryTimeout  = flag.Duration("try-timeout", 10*time.Second, "per-attempt forward budget")
		retries     = flag.Int("retries", 2, "failover rounds after the first (0 disables retries)")
		backoffBase = flag.Duration("backoff-base", 25*time.Millisecond, "base retry delay (doubles per round, full jitter)")
		backoffMax  = flag.Duration("backoff-max", time.Second, "retry delay cap")

		maxBody  = flag.Int64("max-body", 1<<20, "inbound request body cap in bytes (413 past it)")
		maxBatch = flag.Int("max-batch", 1024, "maximum pairs per /predict/batch request")

		readTimeout   = flag.Duration("read-timeout", 15*time.Second, "full-request read deadline")
		writeTimeout  = flag.Duration("write-timeout", 60*time.Second, "response write deadline")
		idleTimeout   = flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle deadline")
		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "drain budget on SIGINT/SIGTERM")

		adminAddr = flag.String("admin-addr", "", "admin listen address for GET /metrics (and pprof); empty disables")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof on the admin address")
	)
	flag.Parse()
	endpoints := splitEndpoints(*replicas)
	if len(endpoints) == 0 {
		fmt.Fprintln(os.Stderr, "wym-router: -replicas is required")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "wym-router: ", log.LstdFlags)
	reg := obs.NewRegistry()
	metrics := cluster.NewMetrics(reg)

	// Negative -retries means "no retries"; the config's 0-means-default
	// convention would resurrect them.
	effRetries := *retries
	if effRetries == 0 {
		effRetries = -1
	}

	pool := cluster.NewPool(endpoints, cluster.PoolConfig{
		VirtualNodes:  *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		EjectAfter:    *ejectAfter,
		Breaker: cluster.BreakerConfig{
			Threshold: *breakerThreshold,
			OpenFor:   *breakerOpen,
		},
		Logger:  logger,
		Metrics: metrics,
	})
	router := cluster.NewRouter(pool, cluster.RouterConfig{
		TryTimeout: *tryTimeout,
		Retries:    effRetries,
		Backoff:    cluster.NewBackoff(*backoffBase, *backoffMax, 0),
		MaxBody:    *maxBody,
		MaxBatch:   *maxBatch,
		Logger:     logger,
		Metrics:    metrics,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Verify the fleet before taking traffic, then keep probing.
	pool.ProbeAll(ctx)
	pool.Start(ctx)
	logger.Printf("fronting %d replicas (%d admitted) on %s",
		len(pool.Replicas()), pool.Ring().Len(), *addr)

	if *adminAddr != "" {
		adminSrv := serve.New(serve.Config{
			Addr:          *adminAddr,
			ShutdownGrace: *shutdownGrace,
			ErrorLog:      logger,
		}, adminHandler(reg, logger, *pprofOn))
		go func() {
			if err := adminSrv.Run(ctx); err != nil {
				logger.Printf("admin server: %v", err)
			}
		}()
		logger.Printf("admin surface (GET /metrics, pprof=%v) on %s", *pprofOn, *adminAddr)
	}

	srv := serve.New(serve.Config{
		Addr:          *addr,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		IdleTimeout:   *idleTimeout,
		ShutdownGrace: *shutdownGrace,
		ErrorLog:      logger,
	}, serve.Recover(logger, router.Handler()))
	if err := srv.Run(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly, bye")
}

// splitEndpoints parses the -replicas flag: comma-separated, blanks
// dropped (the pool normalizes and dedupes further).
func splitEndpoints(flagVal string) []string {
	var out []string
	for _, ep := range strings.Split(flagVal, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			out = append(out, ep)
		}
	}
	return out
}

func adminHandler(reg *obs.Registry, logger *log.Logger, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return serve.Recover(logger, mux)
}
