package main

// Chaos harness: three in-process replicas behind a real
// cluster.Router, with faults injected mid-load — hard kills, stalls,
// panics, rolling readiness flips. The invariant under every fault:
// clients never see a 5xx from a batch, and single predicts fail over
// while any replica lives. Run under the race detector (make
// router-race); the load generators are deliberately concurrent.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wym/internal/cluster"
	"wym/internal/obs"
)

// chaosReplica is a minimal protocol-faithful wym-server stand-in with
// fault switches the chaos tests flip mid-load.
type chaosReplica struct {
	srv    *httptest.Server
	ready  atomic.Bool
	stall  atomic.Int64 // nanoseconds to sleep before answering
	panics atomic.Bool
	served atomic.Int64 // pairs answered (single=1, batch=len)
}

func newChaosReplica() *chaosReplica {
	c := &chaosReplica{}
	c.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !c.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ready","models":[{"name":"default","format":"gob"}]}`)
	})
	gate := func(r *http.Request) bool {
		if d := c.stall.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return false
			}
		}
		if c.panics.Load() {
			panic("chaos: injected panic")
		}
		return true
	}
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		if !gate(r) {
			return
		}
		c.served.Add(1)
		fmt.Fprintln(w, `{"match":true,"probability":0.9}`)
	})
	mux.HandleFunc("POST /predict/batch", func(w http.ResponseWriter, r *http.Request) {
		if !gate(r) {
			return
		}
		var req struct {
			Pairs []json.RawMessage `json:"pairs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		c.served.Add(int64(len(req.Pairs)))
		results := make([]json.RawMessage, len(req.Pairs))
		for i := range results {
			results[i] = json.RawMessage(`{"match":true,"probability":0.9}`)
		}
		json.NewEncoder(w).Encode(struct {
			Results []json.RawMessage `json:"results"`
			Errors  int               `json:"errors"`
		}{results, 0})
	})
	// Recover injected panics into 500s, like the real server's
	// middleware, so the fault reaches the router as a status code.
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if recover() != nil {
				w.WriteHeader(http.StatusInternalServerError)
			}
		}()
		mux.ServeHTTP(w, r)
	}))
	return c
}

// fleet is the harness: replicas, pool, router, and its HTTP front.
type fleet struct {
	replicas []*chaosReplica
	pool     *cluster.Pool
	front    *httptest.Server
	reg      *obs.Registry
	cancel   func()
}

func newFleet(t *testing.T, n int) *fleet {
	t.Helper()
	f := &fleet{reg: obs.NewRegistry()}
	eps := make([]string, n)
	for i := 0; i < n; i++ {
		rep := newChaosReplica()
		f.replicas = append(f.replicas, rep)
		eps[i] = rep.srv.URL
	}
	metrics := cluster.NewMetrics(f.reg)
	f.pool = cluster.NewPool(eps, cluster.PoolConfig{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		EjectAfter:    2,
		Breaker:       cluster.BreakerConfig{Threshold: 2, OpenFor: 50 * time.Millisecond},
		Metrics:       metrics,
	})
	router := cluster.NewRouter(f.pool, cluster.RouterConfig{
		TryTimeout: 500 * time.Millisecond,
		Retries:    2,
		Backoff:    cluster.NewBackoff(time.Millisecond, 10*time.Millisecond, 1),
		Metrics:    metrics,
		Logger:     log.New(io.Discard, "", 0),
	})
	f.front = httptest.NewServer(router.Handler())
	ctx := t.Context()
	f.pool.Start(ctx)
	t.Cleanup(f.Close)
	return f
}

func (f *fleet) Close() {
	f.front.Close()
	for _, r := range f.replicas {
		r.srv.Close()
	}
}

// waitSweeps blocks until at least n more full probe sweeps complete.
func (f *fleet) waitSweeps(t *testing.T, n int64) {
	t.Helper()
	target := f.pool.ProbeSweeps() + n
	deadline := time.After(10 * time.Second)
	for f.pool.ProbeSweeps() < target {
		select {
		case <-deadline:
			t.Fatal("probe loop stalled")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// batchBody builds a batch whose pairs vary, so shards spread across
// the ring.
func batchBody(t *testing.T, tag string, n int) []byte {
	t.Helper()
	pairs := make([]json.RawMessage, n)
	for i := range pairs {
		pairs[i] = json.RawMessage(fmt.Sprintf(`{"left":["%s-%d"],"right":["x"]}`, tag, i))
	}
	buf, err := json.Marshal(map[string]any{"pairs": pairs})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

type batchReply struct {
	Results []json.RawMessage `json:"results"`
	Errors  int               `json:"errors"`
}

// TestChaosReplicaKillMidLoad is the headline invariant: hard-killing
// one of three replicas in the middle of sustained batch load produces
// zero 5xx responses — every batch keeps answering 200 with failover
// absorbing the dead shard — and the ring drops the corpse within a
// probe interval.
func TestChaosReplicaKillMidLoad(t *testing.T) {
	f := newFleet(t, 3)

	const (
		workers    = 8
		perWorker  = 30
		batchSize  = 8
		killAtIter = 5 // worker 0 kills replica 2 after this many batches
	)
	var (
		non200     atomic.Int64
		itemErrors atomic.Int64
		badBatches atomic.Int64
		killOnce   sync.Once
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == killAtIter {
					killOnce.Do(func() {
						f.replicas[2].srv.CloseClientConnections()
						f.replicas[2].srv.Close()
					})
				}
				body := batchBody(t, fmt.Sprintf("w%d-i%d", w, i), batchSize)
				resp, err := http.Post(f.front.URL+"/predict/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					non200.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					non200.Add(1)
					continue
				}
				var reply batchReply
				if json.Unmarshal(raw, &reply) != nil || len(reply.Results) != batchSize {
					badBatches.Add(1)
					continue
				}
				itemErrors.Add(int64(reply.Errors))
			}
		}(w)
	}
	wg.Wait()

	if n := non200.Load(); n != 0 {
		t.Errorf("%d batch requests got a non-200 during the kill, want 0", n)
	}
	if n := badBatches.Load(); n != 0 {
		t.Errorf("%d malformed batch replies", n)
	}
	// Two live replicas remain, so failover should absorb everything:
	// the acceptance bar is per-item errors at worst, never 5xx.
	if n := itemErrors.Load(); n != 0 {
		t.Logf("note: %d items degraded to per-item errors during failover", n)
	}

	// The prober notices the corpse within EjectAfter sweeps.
	f.waitSweeps(t, 3)
	if f.pool.Ring().Len() != 2 {
		t.Fatalf("ring has %d members after the kill, want 2", f.pool.Ring().Len())
	}
	if f.pool.Ring().Has(f.replicas[2].srv.URL) {
		t.Fatal("killed replica still admitted to the ring")
	}
	// Survivors carried the load.
	if f.replicas[0].served.Load()+f.replicas[1].served.Load() == 0 {
		t.Fatal("surviving replicas served nothing")
	}
}

// TestChaosSlowReplicaTimesOutAndFailsOver: a stalled replica must not
// stall the client — the per-try deadline fires and the walk moves on.
func TestChaosSlowReplicaTimesOutAndFailsOver(t *testing.T) {
	f := newFleet(t, 3)
	f.replicas[1].stall.Store(int64(10 * time.Second)) // way past TryTimeout

	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"left":["slow-%d"],"right":["x"]}`, i)
		start := time.Now()
		resp, err := http.Post(f.front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d status = %d, want 200 via failover", i, resp.StatusCode)
		}
		if took := time.Since(start); took > 5*time.Second {
			t.Fatalf("predict %d took %v — the slow replica stalled the client", i, took)
		}
	}
	// The stalled replica's breaker took the timeouts as failures and
	// opened, if any requests hashed to it first.
	st := f.pool.Replica(f.replicas[1].srv.URL).Breaker().State()
	t.Logf("slow replica breaker: %v", st)
}

// TestChaosPanicRecovery: a replica that panics per-request answers 500
// (its recovery middleware), and the router fails the request over to a
// healthy peer instead of relaying the 500.
func TestChaosPanicRecovery(t *testing.T) {
	f := newFleet(t, 3)
	f.replicas[0].panics.Store(true)

	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"left":["boom-%d"],"right":["x"]}`, i)
		resp, err := http.Post(f.front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d status = %d, want 200 via failover past the panicking replica", i, resp.StatusCode)
		}
	}
	if f.replicas[0].served.Load() != 0 {
		t.Fatal("panicking replica claims to have served requests")
	}
}

// TestChaosRollingReload walks a readiness flip across the fleet — each
// replica drains (readyz 503), gets ejected, recovers, and is
// re-admitted with a fresh breaker — while a client keeps predicting.
// No request may fail: a rolling reload is invisible at the front door.
func TestChaosRollingReload(t *testing.T) {
	f := newFleet(t, 3)

	stop := make(chan struct{})
	var loadErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"left":["roll-%d"],"right":["x"]}`, i)
			resp, err := http.Post(f.front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				loadErr.Store(fmt.Sprintf("predict %d: %v", i, err))
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				loadErr.Store(fmt.Sprintf("predict %d status = %d", i, resp.StatusCode))
				return
			}
		}
	}()

	for idx, rep := range f.replicas {
		rep.ready.Store(false)
		f.waitSweeps(t, 3) // ejected within EjectAfter=2 sweeps
		if f.pool.Ring().Has(rep.srv.URL) {
			t.Fatalf("replica %d still admitted while draining", idx)
		}
		rep.ready.Store(true)
		f.waitSweeps(t, 2) // one good probe re-admits
		if !f.pool.Ring().Has(rep.srv.URL) {
			t.Fatalf("replica %d not re-admitted after recovery", idx)
		}
		if st := f.pool.Replica(rep.srv.URL).Breaker().State(); st != cluster.Closed {
			t.Fatalf("replica %d breaker %v after re-admission, want Closed", idx, st)
		}
	}
	close(stop)
	wg.Wait()
	if msg := loadErr.Load(); msg != nil {
		t.Fatalf("load failed during rolling reload: %s", msg)
	}
	if f.pool.Ring().Len() != 3 {
		t.Fatalf("ring has %d members after the roll, want 3", f.pool.Ring().Len())
	}
}

// TestChaosRouterReadyzTracksFleet: the router's own readiness surface
// reflects ejections, and goes 503 only when the whole fleet is gone.
func TestChaosRouterReadyzTracksFleet(t *testing.T) {
	f := newFleet(t, 2)

	readyz := func() (int, map[string]bool) {
		resp, err := http.Get(f.front.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Replicas []struct {
				Endpoint string `json:"endpoint"`
				Admitted bool   `json:"admitted"`
			} `json:"replicas"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		admitted := map[string]bool{}
		for _, r := range body.Replicas {
			admitted[r.Endpoint] = r.Admitted
		}
		return resp.StatusCode, admitted
	}

	if code, admitted := readyz(); code != http.StatusOK || !admitted[f.replicas[0].srv.URL] {
		t.Fatalf("healthy fleet readyz = %d %v", code, admitted)
	}
	f.replicas[0].ready.Store(false)
	f.waitSweeps(t, 3)
	if code, admitted := readyz(); code != http.StatusOK || admitted[f.replicas[0].srv.URL] {
		t.Fatalf("one-down fleet readyz = %d %v, want 200 with the drained replica unadmitted", code, admitted)
	}
	f.replicas[1].ready.Store(false)
	f.waitSweeps(t, 3)
	if code, _ := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("empty-fleet readyz = %d, want 503", code)
	}
}

func TestSplitEndpoints(t *testing.T) {
	got := splitEndpoints(" http://a:1 ,, http://b:2,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitEndpoints = %v", got)
	}
	if got := splitEndpoints(""); got != nil {
		t.Fatalf("splitEndpoints(\"\") = %v, want nil", got)
	}
}
