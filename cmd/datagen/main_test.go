package main

import (
	"path/filepath"
	"testing"

	"wym"
	"wym/internal/data"
)

func TestRunWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.01, "S-BR,S-IA"); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"S-BR", "S-IA"} {
		d, err := wym.LoadDataset(filepath.Join(dir, key+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if d.Size() == 0 {
			t.Fatalf("%s: empty dataset", key)
		}
	}
}

func TestRunUnknownFilterWritesNothing(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.01, "NOPE"); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.csv"))
	if len(matches) != 0 {
		t.Fatalf("unexpected files: %v", matches)
	}
}

func TestRunTablesWritesTablePair(t *testing.T) {
	dir := t.TempDir()
	if err := runTables(dir, 120, 0.25, "S-FZ"); err != nil {
		t.Fatal(err)
	}
	left, err := data.LoadTableFile(filepath.Join(dir, "S-FZ_left.csv"))
	if err != nil {
		t.Fatal(err)
	}
	right, err := data.LoadTableFile(filepath.Join(dir, "S-FZ_right.csv"))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := data.LoadTruthFile(filepath.Join(dir, "S-FZ_truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left.Rows) != 120 || len(right.Rows) != 120 {
		t.Fatalf("tables %dx%d, want 120x120", len(left.Rows), len(right.Rows))
	}
	if len(truth) != 30 {
		t.Fatalf("truth has %d pairs, want 30", len(truth))
	}
	for _, p := range truth {
		if p[0] >= len(left.Rows) || p[1] >= len(right.Rows) {
			t.Fatalf("truth pair out of range: %v", p)
		}
	}
}
