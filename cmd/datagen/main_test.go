package main

import (
	"path/filepath"
	"testing"

	"wym"
)

func TestRunWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.01, "S-BR,S-IA"); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"S-BR", "S-IA"} {
		d, err := wym.LoadDataset(filepath.Join(dir, key+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if d.Size() == 0 {
			t.Fatalf("%s: empty dataset", key)
		}
	}
}

func TestRunUnknownFilterWritesNothing(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.01, "NOPE"); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.csv"))
	if len(matches) != 0 {
		t.Fatalf("unexpected files: %v", matches)
	}
}
