package main

import (
	"os"
	"path/filepath"
	"testing"

	"wym"
	"wym/internal/data"
)

func TestRunWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.01, "S-BR,S-IA", 0, 23); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"S-BR", "S-IA"} {
		d, err := wym.LoadDataset(filepath.Join(dir, key+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if d.Size() == 0 {
			t.Fatalf("%s: empty dataset", key)
		}
	}
}

func TestRunUnknownFilterWritesNothing(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.01, "NOPE", 0, 23); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.csv"))
	if len(matches) != 0 {
		t.Fatalf("unexpected files: %v", matches)
	}
}

// TestRunDriftPerturbsRightSide: with -drift, the right side of the
// labeled pairs is perturbed while the left side and the labels are
// untouched — the output is a valid feedback pool.
func TestRunDriftPerturbsRightSide(t *testing.T) {
	clean, drifted := t.TempDir(), t.TempDir()
	if err := run(clean, 0.02, "S-BR", 0, 23); err != nil {
		t.Fatal(err)
	}
	if err := run(drifted, 0.02, "S-BR", 0.9, 23); err != nil {
		t.Fatal(err)
	}
	dc, err := wym.LoadDataset(filepath.Join(clean, "S-BR.csv"))
	if err != nil {
		t.Fatal(err)
	}
	dd, err := wym.LoadDataset(filepath.Join(drifted, "S-BR.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if dc.Size() != dd.Size() {
		t.Fatalf("sizes diverged: %d vs %d", dc.Size(), dd.Size())
	}
	changed := 0
	for i := range dc.Pairs {
		c, d := dc.Pairs[i], dd.Pairs[i]
		if c.Label != d.Label {
			t.Fatalf("pair %d label changed", i)
		}
		for a := range c.Left {
			if c.Left[a] != d.Left[a] {
				t.Fatalf("pair %d left side drifted", i)
			}
		}
		for a := range c.Right {
			if c.Right[a] != d.Right[a] {
				changed++
				break
			}
		}
	}
	if changed == 0 {
		t.Fatal("drift 0.9 changed no right-side entity")
	}
}

// TestRunScenariosWritesPacks: -scenario all writes one loadable CSV
// per pack, and the same seed reproduces it byte-for-byte.
func TestRunScenariosWritesPacks(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	if err := runScenarios(a, "all", 150, 7); err != nil {
		t.Fatal(err)
	}
	if err := runScenarios(b, "unicode,customer360", 150, 7); err != nil {
		t.Fatal(err)
	}
	for _, key := range wym.ScenarioKeys() {
		d, err := wym.LoadDataset(filepath.Join(a, key+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if d.Size() != 150 {
			t.Fatalf("%s: %d pairs, want 150", key, d.Size())
		}
	}
	for _, key := range []string{"unicode", "customer360"} {
		ra, err := os.ReadFile(filepath.Join(a, key+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := os.ReadFile(filepath.Join(b, key+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if string(ra) != string(rb) {
			t.Fatalf("%s: same seed produced different CSV bytes", key)
		}
	}
	if err := runScenarios(t.TempDir(), "nope", 100, 1); err == nil {
		t.Fatal("unknown scenario key succeeded")
	}
}

func TestRunTablesWritesTablePair(t *testing.T) {
	dir := t.TempDir()
	if err := runTables(dir, 120, 0.25, "S-FZ", 0, 23); err != nil {
		t.Fatal(err)
	}
	left, err := data.LoadTableFile(filepath.Join(dir, "S-FZ_left.csv"))
	if err != nil {
		t.Fatal(err)
	}
	right, err := data.LoadTableFile(filepath.Join(dir, "S-FZ_right.csv"))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := data.LoadTruthFile(filepath.Join(dir, "S-FZ_truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left.Rows) != 120 || len(right.Rows) != 120 {
		t.Fatalf("tables %dx%d, want 120x120", len(left.Rows), len(right.Rows))
	}
	if len(truth) != 30 {
		t.Fatalf("truth has %d pairs, want 30", len(truth))
	}
	for _, p := range truth {
		if p[0] >= len(left.Rows) || p[1] >= len(right.Rows) {
			t.Fatalf("truth pair out of range: %v", p)
		}
	}
}
