// Command datagen emits the synthetic benchmark as Magellan-layout CSV
// files, one per dataset.
//
// Usage:
//
//	datagen -out ./datasets -scale 0.05
//	datagen -out ./datasets -datasets S-AG,T-AB -scale 1.0
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wym"
)

func main() {
	var (
		out      = flag.String("out", "datasets", "output directory")
		scale    = flag.Float64("scale", 0.05, "dataset scale (1.0 = Table-2 sizes)")
		datasets = flag.String("datasets", "", "comma-separated keys (default: all 12)")
	)
	flag.Parse()

	if err := run(*out, *scale, *datasets); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, datasets string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	keys := map[string]bool{}
	if datasets != "" {
		for _, k := range strings.Split(datasets, ",") {
			keys[strings.TrimSpace(k)] = true
		}
	}
	for _, p := range wym.BenchmarkProfiles() {
		if len(keys) > 0 && !keys[p.Key] {
			continue
		}
		d := wym.GenerateDataset(p, scale)
		path := filepath.Join(out, p.Key+".csv")
		if err := wym.SaveDataset(path, d); err != nil {
			return err
		}
		fmt.Printf("%-6s %6d pairs  %5.2f%% match  -> %s\n",
			p.Key, d.Size(), 100*d.MatchRate(), path)
	}
	return nil
}
