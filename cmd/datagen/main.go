// Command datagen emits the synthetic benchmark as Magellan-layout CSV
// files, one per dataset, or — with -tables — a pair of unlabeled entity
// tables plus ground truth for full-table matching jobs.
//
// Usage:
//
//	datagen -out ./datasets -scale 0.05
//	datagen -out ./datasets -datasets S-AG,T-AB -scale 1.0
//	datagen -out ./tables -tables -datasets S-FZ -rows 1000000 -match-rate 0.2
//	datagen -out ./drifted -datasets S-BR -drift 0.6        # post-train drift scenario
//	datagen -out ./packs -scenario all -scenario-rows 2000  # stress-scenario packs
//	datagen -out ./packs -scenario unicode,customer360 -seed 7
//
// -drift perturbs the right-side vocabulary after generation (the same
// deterministic token edits `wym label -drift` demos): labeled pair
// files keep their truth labels, so the output is a ready-made feedback
// pool for `wym label -candidates`.
//
// -scenario emits the stress packs instead of the Magellan reproduction:
// unicode (multilingual text), hetero-schema (free-text feed vs columnar
// source), drift-temporal (vocabulary shift in arrival order — do not
// shuffle before splitting), customer360 (multi-source identity
// resolution). Output is deterministic in (-scenario, -scenario-rows,
// -seed); each pack has a committed quality floor enforced by the root
// scenario regression test.
//
// Table mode writes <key>_left.csv, <key>_right.csv (header = attribute
// names) and <key>_truth.csv ("left,right" 0-based match indices).
// Generation is a single linear pass, so million-row tables are cheap.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wym"
	"wym/internal/data"
	"wym/internal/datagen"
)

func main() {
	var (
		out       = flag.String("out", "datasets", "output directory")
		scale     = flag.Float64("scale", 0.05, "dataset scale (1.0 = Table-2 sizes)")
		datasets  = flag.String("datasets", "", "comma-separated keys (default: all 12)")
		tables    = flag.Bool("tables", false, "emit unlabeled entity-table pairs with ground truth instead of labeled pair datasets")
		rows      = flag.Int("rows", 10000, "rows per table in -tables mode")
		matchRate = flag.Float64("match-rate", 0.2, "fraction of left rows with a true match in -tables mode")
		drift     = flag.Float64("drift", 0, "drift this fraction of the right-side vocabulary (post-train shift scenario for the feedback loop)")
		driftSeed = flag.Int64("drift-seed", 23, "drift selection seed")
		scenario  = flag.String("scenario", "", "emit stress-scenario packs instead: comma-separated keys or 'all' (unicode, hetero-schema, drift-temporal, customer360)")
		scRows    = flag.Int("scenario-rows", 2000, "labeled pairs per scenario pack")
		seed      = flag.Int64("seed", 1, "scenario pack generation seed")
	)
	flag.Parse()

	var err error
	switch {
	case *scenario != "":
		err = runScenarios(*out, *scenario, *scRows, *seed)
	case *tables:
		err = runTables(*out, *rows, *matchRate, *datasets, *drift, *driftSeed)
	default:
		err = run(*out, *scale, *datasets, *drift, *driftSeed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// keyFilter parses the -datasets flag into a set (empty = all).
func keyFilter(datasets string) map[string]bool {
	keys := map[string]bool{}
	if datasets != "" {
		for _, k := range strings.Split(datasets, ",") {
			keys[strings.TrimSpace(k)] = true
		}
	}
	return keys
}

func run(out string, scale float64, datasets string, drift float64, driftSeed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	keys := keyFilter(datasets)
	for _, p := range wym.BenchmarkProfiles() {
		if len(keys) > 0 && !keys[p.Key] {
			continue
		}
		d := wym.GenerateDataset(p, scale)
		if drift > 0 {
			for i := range d.Pairs {
				d.Pairs[i].Right = datagen.DriftEntity(d.Pairs[i].Right, drift, driftSeed)
			}
		}
		path := filepath.Join(out, p.Key+".csv")
		if err := wym.SaveDataset(path, d); err != nil {
			return err
		}
		fmt.Printf("%-6s %6d pairs  %5.2f%% match  -> %s\n",
			p.Key, d.Size(), 100*d.MatchRate(), path)
	}
	return nil
}

func runScenarios(out, scenario string, rows int, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	keys := wym.ScenarioKeys()
	if scenario != "all" {
		keys = strings.Split(scenario, ",")
	}
	for _, key := range keys {
		key = strings.TrimSpace(key)
		d, err := wym.GenerateScenario(key, rows, seed)
		if err != nil {
			return err
		}
		path := filepath.Join(out, key+".csv")
		if err := wym.SaveDataset(path, d); err != nil {
			return err
		}
		fmt.Printf("%-14s %6d pairs  %5.2f%% match  seed %d  -> %s\n",
			key, d.Size(), 100*d.MatchRate(), seed, path)
	}
	return nil
}

func runTables(out string, rows int, matchRate float64, datasets string, drift float64, driftSeed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	keys := keyFilter(datasets)
	for _, p := range datagen.Benchmark() {
		if len(keys) > 0 && !keys[p.Key] {
			continue
		}
		tp := datagen.GenerateTables(p, rows, matchRate)
		if drift > 0 {
			tp.Right = datagen.DriftTable(tp.Right, drift, driftSeed)
		}
		leftPath := filepath.Join(out, p.Key+"_left.csv")
		rightPath := filepath.Join(out, p.Key+"_right.csv")
		truthPath := filepath.Join(out, p.Key+"_truth.csv")
		if err := data.SaveTableFile(leftPath, &data.Table{Schema: tp.Schema, Rows: tp.Left}); err != nil {
			return err
		}
		if err := data.SaveTableFile(rightPath, &data.Table{Schema: tp.Schema, Rows: tp.Right}); err != nil {
			return err
		}
		if err := data.SaveTruthFile(truthPath, tp.Truth); err != nil {
			return err
		}
		fmt.Printf("%-6s %d x %d rows  %d true matches  -> %s, %s, %s\n",
			p.Key, len(tp.Left), len(tp.Right), len(tp.Truth), leftPath, rightPath, truthPath)
	}
	return nil
}
