// Command benchmark regenerates the paper's tables and figures on the
// synthetic benchmark.
//
// Usage:
//
//	benchmark -experiment all -scale 0.05
//	benchmark -experiment table3 -datasets S-AG,S-FZ -scale 0.15
//
// Experiments: table2, figure4, table3, figure5, table4, table5, figure6,
// figure7, figure8, figure9, timing (§5.3), userstudy (§5.4), or all.
//
// The -bench-json flag switches to the performance-snapshot mode instead:
//
//	benchmark -bench-json BENCH_baseline.json
//
// which times the hot pipeline paths and writes machine-readable metrics
// (see perf.go and the Performance section of README.md). The companion
// -bench-guard mode re-times those paths and fails (exit 1) when any of
// them regressed past -bench-threshold against a committed baseline:
//
//	benchmark -bench-guard BENCH_baseline.json -bench-threshold 0.25
//
// Either perf mode (and -metrics-json on its own) can additionally dump
// the engine observability metrics accumulated during the timed run:
//
//	benchmark -metrics-json metrics.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wym/internal/experiments"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "which experiment to run")
		scale       = flag.Float64("scale", 0.05, "dataset scale (1.0 = Table-2 sizes)")
		datasets    = flag.String("datasets", "", "comma-separated dataset keys (default: all 12)")
		seed        = flag.Int64("seed", 1, "random seed")
		sample      = flag.Int("sample", 100, "records sampled for the per-record experiments")
		benchJSON   = flag.String("bench-json", "", "write a perf snapshot to this path (\"-\" = stdout) instead of running experiments")
		benchGuard  = flag.String("bench-guard", "", "re-time the hot paths and fail if they regressed past -bench-threshold vs this baseline snapshot")
		benchThres  = flag.Float64("bench-threshold", 0.25, "fractional ns/op or allocs/op growth tolerated by -bench-guard")
		metricsJSON = flag.String("metrics-json", "", "also dump the engine obs metrics accumulated during the perf run as JSON (\"-\" = stdout)")
	)
	flag.Parse()

	if *benchGuard != "" {
		if err := runBenchGuard(*benchGuard, *benchThres); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		return
	}

	// -metrics-json without -bench-json still runs the perf workload,
	// writing only the metrics dump.
	if *benchJSON != "" || *metricsJSON != "" {
		ds := "S-FZ"
		if *datasets != "" {
			ds = strings.Split(*datasets, ",")[0]
		}
		// The experiments default to a 0.05 scale; the perf snapshot wants
		// full-size records unless the user asked for a specific scale.
		benchScale := 1.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				benchScale = *scale
			}
		})
		if err := runBenchJSON(*benchJSON, *metricsJSON, ds, benchScale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.RunConfig{Scale: *scale, Seed: *seed, SampleRecords: *sample}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	if err := run(*experiment, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}

func run(which string, cfg experiments.RunConfig) error {
	runners := map[string]func(experiments.RunConfig) (string, error){
		"table2":              runTable2,
		"figure4":             runFigure4,
		"table3":              runTable3,
		"figure5":             runFigure5,
		"table4":              runTable4,
		"table5":              runTable5,
		"figure6":             runFigure6,
		"figure7":             runFigure7,
		"figure8":             runFigure8,
		"figure9":             runFigure9,
		"timing":              runTiming,
		"userstudy":           runUserStudy,
		"ablation-thresholds": runAblationThresholds,
		"ablation-context":    runAblationContext,
		"extension-rules":     runExtensionRules,
	}
	order := []string{
		"table2", "figure4", "table3", "figure5", "table4", "table5",
		"figure6", "figure7", "figure8", "figure9", "timing", "userstudy",
		"ablation-thresholds", "ablation-context", "extension-rules",
	}
	if which != "all" {
		r, ok := runners[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s, all)", which, strings.Join(order, ", "))
		}
		out, err := r(cfg)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	for _, name := range order {
		out, err := runners[name](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
	}
	return nil
}

func runTable2(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatTable2(rows), nil
}

func runFigure4(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Figure4(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatFigure4(rows), nil
}

func runTable3(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Table3(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatTable3(rows), nil
}

func runFigure5(cfg experiments.RunConfig) (string, error) {
	series, err := experiments.Figure5(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatFigure5(series), nil
}

func runTable4(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Table4(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatTable4(rows), nil
}

func runTable5(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Table5(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatTable5(rows), nil
}

func runFigure6(cfg experiments.RunConfig) (string, error) {
	series, err := experiments.Figure6(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatFigure6(series), nil
}

func runFigure7(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Figure7(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatFigure7(rows), nil
}

func runFigure8(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Figure8(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatFigure8(rows), nil
}

func runFigure9(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Figure9(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatFigure9(rows), nil
}

func runTiming(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.Section53(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatSection53(rows), nil
}

func runUserStudy(cfg experiments.RunConfig) (string, error) {
	return experiments.FormatSection54(experiments.Section54(cfg)), nil
}

func runAblationThresholds(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.AblationThresholds(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatAblation("Ablation: θ/η/ε similarity thresholds (F1).", rows), nil
}

func runExtensionRules(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.ExtensionRules(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatExtensionRules(rows), nil
}

func runAblationContext(cfg experiments.RunConfig) (string, error) {
	rows, err := experiments.AblationContext(cfg)
	if err != nil {
		return "", err
	}
	return experiments.FormatAblation("Ablation: record-context mixing weight γ (F1).", rows), nil
}
