package main

import (
	"strings"
	"testing"

	"wym/internal/experiments"
)

func tinyCfg() experiments.RunConfig {
	return experiments.RunConfig{Scale: 0.05, Datasets: []string{"S-FZ"}, Seed: 1, SampleRecords: 10}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run("table2", tinyCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run("nope", tinyCfg())
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunnersProduceOutput(t *testing.T) {
	// The cheap drivers cover the CLI glue; the expensive ones are
	// exercised by the bench harness and internal/experiments tests.
	cfg := tinyCfg()
	for _, runner := range []func(experiments.RunConfig) (string, error){
		runTable2, runFigure4, runUserStudy,
	} {
		out, err := runner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out == "" {
			t.Fatal("empty output")
		}
	}
}
