package main

// guard.go implements the -bench-guard mode: a performance regression
// gate. It re-times the hot pipeline paths, compares them against a
// committed baseline snapshot (BENCH_baseline.json), and exits non-zero
// when any benchmark's ns/op or allocs/op grew past the threshold. The
// guard reruns on the baseline's recorded dataset, scale, and seed so the
// two snapshots measure the same workload; absolute wall-clock numbers
// still depend on the machine, which is why the gate is a ratio, not a
// bound.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// regression is one over-threshold metric in a guard run.
type regression struct {
	Bench  string  // benchmark name, e.g. "ProcessAll"
	Metric string  // "ns/op" or "allocs/op"
	Base   float64 // baseline value
	Got    float64 // fresh value
}

// ratio reports the relative growth (0.25 = 25% slower/bigger).
func (r regression) ratio() float64 {
	if r.Base == 0 {
		return 0
	}
	return r.Got/r.Base - 1
}

func (r regression) String() string {
	return fmt.Sprintf("%s %s regressed %.1f%%: %.0f -> %.0f",
		r.Bench, r.Metric, 100*r.ratio(), r.Base, r.Got)
}

// compareSnapshots diffs a fresh run against the baseline: any benchmark
// whose ns/op or allocs/op grew by more than threshold (fractional, 0.25
// = 25%) is a regression, as is a baseline benchmark missing from the
// fresh run (a silently dropped bench must not pass the gate). Results
// are sorted by benchmark name so output and tests are deterministic.
// Benchmarks only present in the fresh run are ignored — adding coverage
// is not a regression.
func compareSnapshots(base, got map[string]benchResult, threshold float64) []regression {
	var regs []regression
	for name, b := range base {
		g, ok := got[name]
		if !ok {
			regs = append(regs, regression{Bench: name, Metric: "missing", Base: b.NsPerOp})
			continue
		}
		if exceeds(b.NsPerOp, g.NsPerOp, threshold) {
			regs = append(regs, regression{Bench: name, Metric: "ns/op", Base: b.NsPerOp, Got: g.NsPerOp})
		}
		if exceeds(float64(b.AllocsPerOp), float64(g.AllocsPerOp), threshold) {
			regs = append(regs, regression{Bench: name, Metric: "allocs/op",
				Base: float64(b.AllocsPerOp), Got: float64(g.AllocsPerOp)})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Bench != regs[j].Bench {
			return regs[i].Bench < regs[j].Bench
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// exceeds reports whether got grew past base by more than threshold. A
// zero baseline only regresses if the fresh value is non-zero.
func exceeds(base, got, threshold float64) bool {
	if base == 0 {
		return got > 0 && threshold < 1
	}
	return got > base*(1+threshold)
}

// crossGate is one intra-snapshot performance contract: the fast series
// must beat the slow series by at least the given speedup factor. These
// gates run on the *fresh* snapshot, so they hold on every machine —
// unlike the baseline comparison, a ratio between two series timed in
// the same run does not depend on absolute hardware speed.
type crossGate struct {
	fast, slow string
	speedup    float64
}

// crossGates encodes the arena format's performance contract (DESIGN
// §10): serving predicts through the zero-copy arena at least 2x faster
// than through the gob-decoded stack, and cold-starts at least 10x
// faster than a gob decode. The audit gate (DESIGN §14) bounds the full
// audited serve path — process, predict, explain, compact, append — to
// 1.25x the bare predict (speedup 0.8 means the "fast" series may be up
// to 1/0.8 of the slow one), so decision logging can stay on in
// production without renegotiating the latency budget.
var crossGates = []crossGate{
	{fast: "ArenaPredict", slow: "Predict", speedup: 2},
	{fast: "ModelLoadArena", slow: "ModelLoadGob", speedup: 10},
	{fast: "PredictAudited", slow: "Predict", speedup: 0.8},
}

// checkCrossGates verifies every cross-series gate against one
// snapshot, returning a violation message per failed gate. A gate whose
// series are absent (an old baseline) is skipped — the missing-bench
// check in compareSnapshots already covers dropped series.
func checkCrossGates(benchmarks map[string]benchResult, gates []crossGate) []string {
	var violations []string
	for _, g := range gates {
		fast, okF := benchmarks[g.fast]
		slow, okS := benchmarks[g.slow]
		if !okF || !okS {
			continue
		}
		if fast.NsPerOp*g.speedup > slow.NsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s must be >=%.0fx faster than %s: %.0f ns/op vs %.0f ns/op (%.1fx)",
				g.fast, g.speedup, g.slow, fast.NsPerOp, slow.NsPerOp, slow.NsPerOp/fast.NsPerOp))
		}
	}
	return violations
}

// runBenchGuard loads the baseline, re-times the same workload, and
// reports. A regression returns an error (the caller exits non-zero).
func runBenchGuard(baselinePath string, threshold float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base perfSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("baseline %s has no benchmarks", baselinePath)
	}
	fmt.Printf("bench-guard: baseline %s (%s, scale %g, seed %d), threshold %.0f%%\n",
		baselinePath, base.Dataset, base.Scale, base.Seed, 100*threshold)
	fresh, _, err := collectSnapshot(base.Dataset, base.Scale, base.Seed)
	if err != nil {
		return err
	}
	for _, name := range sortedBenchNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		if g, ok := fresh.Benchmarks[name]; ok {
			fmt.Printf("  %-14s ns/op %12.0f -> %12.0f (%+.1f%%)   allocs/op %7d -> %7d (%+.1f%%)\n",
				name, b.NsPerOp, g.NsPerOp, 100*delta(b.NsPerOp, g.NsPerOp),
				b.AllocsPerOp, g.AllocsPerOp,
				100*delta(float64(b.AllocsPerOp), float64(g.AllocsPerOp)))
		}
	}
	regs := compareSnapshots(base.Benchmarks, fresh.Benchmarks, threshold)
	violations := checkCrossGates(fresh.Benchmarks, crossGates)
	if len(regs) == 0 && len(violations) == 0 {
		fmt.Println("bench-guard: ok, no regressions, cross-series gates hold")
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "bench-guard:", r)
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "bench-guard: gate:", v)
	}
	if len(regs) > 0 {
		return fmt.Errorf("%d benchmark metric(s) regressed more than %.0f%% (plus %d gate violations)",
			len(regs), 100*threshold, len(violations))
	}
	return fmt.Errorf("%d cross-series gate(s) violated", len(violations))
}

func delta(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return got/base - 1
}

func sortedBenchNames(m map[string]benchResult) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
