package main

import (
	"strings"
	"testing"
)

func bench(ns float64, allocs int64) benchResult {
	return benchResult{NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareSnapshotsClean(t *testing.T) {
	base := map[string]benchResult{
		"ProcessAll": bench(1000, 100),
		"Predict":    bench(500, 50),
	}
	// Within threshold: 20% slower and fewer allocs.
	got := map[string]benchResult{
		"ProcessAll": bench(1200, 90),
		"Predict":    bench(400, 50),
	}
	if regs := compareSnapshots(base, got, 0.25); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
}

func TestCompareSnapshotsRegressions(t *testing.T) {
	base := map[string]benchResult{
		"ProcessAll": bench(1000, 100),
		"Predict":    bench(500, 50),
		"Explain":    bench(800, 80),
	}
	got := map[string]benchResult{
		"ProcessAll": bench(1300, 100), // ns/op +30%
		"Predict":    bench(500, 70),   // allocs/op +40%
		"Explain":    bench(790, 80),   // fine
	}
	regs := compareSnapshots(base, got, 0.25)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
	// Sorted by benchmark name: Predict < ProcessAll.
	if regs[0].Bench != "Predict" || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs[0] = %+v, want Predict allocs/op", regs[0])
	}
	if regs[1].Bench != "ProcessAll" || regs[1].Metric != "ns/op" {
		t.Fatalf("regs[1] = %+v, want ProcessAll ns/op", regs[1])
	}
	if r := regs[1].ratio(); r < 0.29 || r > 0.31 {
		t.Fatalf("ProcessAll ratio = %v, want ~0.30", r)
	}
}

func TestCompareSnapshotsBoundary(t *testing.T) {
	base := map[string]benchResult{"B": bench(1000, 100)}
	// Exactly at threshold passes; just past it fails.
	at := map[string]benchResult{"B": bench(1250, 125)}
	if regs := compareSnapshots(base, at, 0.25); len(regs) != 0 {
		t.Fatalf("exactly-at-threshold flagged: %v", regs)
	}
	past := map[string]benchResult{"B": bench(1251, 100)}
	if regs := compareSnapshots(base, past, 0.25); len(regs) != 1 {
		t.Fatalf("past-threshold regressions = %v, want 1", regs)
	}
}

func TestCompareSnapshotsMissingBench(t *testing.T) {
	base := map[string]benchResult{"Gone": bench(1000, 100)}
	regs := compareSnapshots(base, map[string]benchResult{}, 0.25)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("regressions = %v, want one missing-bench entry", regs)
	}
}

func TestCompareSnapshotsNewBenchIgnored(t *testing.T) {
	base := map[string]benchResult{"Old": bench(1000, 100)}
	got := map[string]benchResult{
		"Old": bench(1000, 100),
		"New": bench(1, 1),
	}
	if regs := compareSnapshots(base, got, 0.25); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
}

func TestCompareSnapshotsZeroBaseline(t *testing.T) {
	base := map[string]benchResult{"Z": bench(0, 0)}
	// Zero stays zero: fine.
	if regs := compareSnapshots(base, map[string]benchResult{"Z": bench(0, 0)}, 0.25); len(regs) != 0 {
		t.Fatalf("zero-to-zero flagged: %v", regs)
	}
	// Zero grows: a regression no finite ratio can excuse.
	regs := compareSnapshots(base, map[string]benchResult{"Z": bench(10, 0)}, 0.25)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("zero-to-nonzero regressions = %v, want one ns/op entry", regs)
	}
}

func TestCheckCrossGates(t *testing.T) {
	gates := []crossGate{
		{fast: "ArenaPredict", slow: "Predict", speedup: 2},
		{fast: "ModelLoadArena", slow: "ModelLoadGob", speedup: 10},
	}
	// Gates hold: arena predict 3x faster, arena load 20x faster.
	ok := map[string]benchResult{
		"Predict":        bench(900_000, 100),
		"ArenaPredict":   bench(300_000, 100),
		"ModelLoadGob":   bench(4_000_000, 100),
		"ModelLoadArena": bench(200_000, 100),
	}
	if v := checkCrossGates(ok, gates); len(v) != 0 {
		t.Fatalf("gates violated on a passing snapshot: %v", v)
	}
	// Arena predict only 1.5x faster: the 2x gate must fire.
	slow := map[string]benchResult{
		"Predict":        bench(900_000, 100),
		"ArenaPredict":   bench(600_000, 100),
		"ModelLoadGob":   bench(4_000_000, 100),
		"ModelLoadArena": bench(200_000, 100),
	}
	v := checkCrossGates(slow, gates)
	if len(v) != 1 || !strings.Contains(v[0], "ArenaPredict") {
		t.Fatalf("violations = %v, want one ArenaPredict entry", v)
	}
	// Both gates violated.
	if v := checkCrossGates(map[string]benchResult{
		"Predict":        bench(900_000, 100),
		"ArenaPredict":   bench(899_000, 100),
		"ModelLoadGob":   bench(4_000_000, 100),
		"ModelLoadArena": bench(3_999_000, 100),
	}, gates); len(v) != 2 {
		t.Fatalf("violations = %v, want two", v)
	}
	// Missing series are skipped (old baselines), not violated.
	if v := checkCrossGates(map[string]benchResult{"Predict": bench(1, 1)}, gates); len(v) != 0 {
		t.Fatalf("missing series flagged: %v", v)
	}
}

// TestCheckCrossGatesFractionalSpeedup: a sub-1 speedup bounds an
// overhead series — the audit gate allows PredictAudited up to 1.25x
// the bare Predict and fires beyond that.
func TestCheckCrossGatesFractionalSpeedup(t *testing.T) {
	gates := []crossGate{{fast: "PredictAudited", slow: "Predict", speedup: 0.8}}
	within := map[string]benchResult{
		"Predict":        bench(1_000_000, 100),
		"PredictAudited": bench(1_200_000, 120),
	}
	if v := checkCrossGates(within, gates); len(v) != 0 {
		t.Fatalf("1.2x overhead flagged under a 1.25x budget: %v", v)
	}
	over := map[string]benchResult{
		"Predict":        bench(1_000_000, 100),
		"PredictAudited": bench(1_300_000, 120),
	}
	if v := checkCrossGates(over, gates); len(v) != 1 || !strings.Contains(v[0], "PredictAudited") {
		t.Fatalf("violations = %v, want one PredictAudited entry", v)
	}
}
