package main

// perf.go implements the -bench-json mode: a machine-readable performance
// snapshot of the hot pipeline paths (tokenize→embed→Discover→score). The
// committed BENCH_baseline.json at the repo root is generated with
//
//	go run ./cmd/benchmark -bench-json BENCH_baseline.json
//
// so future performance work has a fixed reference point. Each entry is a
// standard testing.Benchmark result (ns/op, allocs/op, B/op); regenerate on
// the same machine as the baseline when comparing.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"wym"
	"wym/internal/audit"
	"wym/internal/blocking"
	"wym/internal/datagen"
	"wym/internal/embed"
	"wym/internal/matchjob"
	"wym/internal/obs"
	"wym/internal/pipeline"
	"wym/internal/tokenize"
	"wym/internal/units"
)

// benchResult is one benchmark's metrics.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// perfSnapshot is the on-disk shape of a -bench-json run.
type perfSnapshot struct {
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Dataset    string                 `json:"dataset"`
	Scale      float64                `json:"scale"`
	Seed       int64                  `json:"seed"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// runBenchJSON collects a snapshot and writes it as JSON; "-" writes to
// stdout. An empty path skips the perf snapshot output (the
// -metrics-json-only mode). metricsPath, when non-empty, additionally
// dumps the obs registry accumulated during the run — the engine metrics
// of every timed operation — in the registry's JSON rendering.
func runBenchJSON(path, metricsPath, dataset string, scale float64, seed int64) error {
	snap, reg, err := collectSnapshot(dataset, scale, seed)
	if err != nil {
		return err
	}
	if path != "" {
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if path == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(path, out, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%s, scale %g, %d benchmarks)\n", path, snap.Dataset, snap.Scale, len(snap.Benchmarks))
		}
	}
	return writeMetricsJSON(metricsPath, reg)
}

// writeMetricsJSON dumps the registry as JSON to path ("-" = stdout, ""
// = skip).
func writeMetricsJSON(path string, reg *obs.Registry) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d metric families)\n", path, len(reg.Snapshot()))
	return nil
}

// collectSnapshot trains one system on the named benchmark dataset and
// times the deployment-relevant paths: batch unit generation (ProcessAll),
// single record prediction and explanation, plus the Contextualize and
// Discover micro-paths that dominate them.
func collectSnapshot(dataset string, scale float64, seed int64) (perfSnapshot, *obs.Registry, error) {
	var snap perfSnapshot
	reg := obs.NewRegistry()
	if dataset == "" {
		dataset = "S-FZ"
	}
	d, ok := wym.DatasetByKey(dataset, scale)
	if !ok {
		return snap, reg, fmt.Errorf("unknown dataset %q", dataset)
	}
	train, valid, test, err := d.Split(0.6, 0.2, seed)
	if err != nil {
		return snap, reg, err
	}
	sys, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		return snap, reg, err
	}

	snap = perfSnapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset:    dataset,
		Scale:      scale,
		Seed:       seed,
		Benchmarks: map[string]benchResult{},
	}
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		snap.Benchmarks[name] = benchResult{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	// The deployment paths are timed through the pipeline engine — the
	// surface every binary serves from — so the numbers measure what
	// production code actually runs. The engine is instrumented with the
	// full metrics bundle on purpose: the committed baseline then times
	// the observed hot path, and -bench-guard holds the instrumentation
	// overhead to the same regression budget as any other change.
	eng := sys.Engine()
	eng.SetMetrics(pipeline.NewMetrics(reg))
	record("ProcessAll", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.ProcessAll(test)
		}
	})
	record("Predict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Predict(test.Pairs[i%test.Size()])
		}
	})
	record("Explain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Explain(test.Pairs[i%test.Size()])
		}
	})

	// Audited predict: the serve-side audit path — process once, predict
	// and explain from the same record, compact the decision units and
	// append to a batched-fsync audit log. The cross-series gate in
	// guard.go holds the audit overhead inside the serving budget
	// (PredictAudited within 1.25x of the bare Predict).
	adir, err := os.MkdirTemp("", "wym-bench-audit")
	if err != nil {
		return snap, reg, err
	}
	defer os.RemoveAll(adir)
	alog, err := audit.Open(adir, audit.Options{FlushEvery: 200 * time.Millisecond})
	if err != nil {
		return snap, reg, err
	}
	defer alog.Close()
	record("PredictAudited", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := test.Pairs[i%test.Size()]
			start := time.Now()
			// One scoring pass: the explanation carries the prediction, so
			// the audited server answers from ExplainRecord directly.
			ex := eng.ExplainRecord(eng.Process(p))
			if err := alog.Append(audit.Record{
				RequestID: "bench-" + strconv.Itoa(i), TimeNanos: start.UnixNano(),
				Route: "/predict", Model: "bench",
				Left: p.Left, Right: p.Right,
				Prediction: ex.Prediction, Proba: ex.Proba, Threshold: sys.DecisionThreshold(),
				Units:        audit.CompactUnits(ex),
				LatencyNanos: int64(time.Since(start)),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Model-format paths: cold-start load of the gob snapshot vs the
	// mmap-able arena, and the serving predict path on the arena-backed
	// system (zero-copy vectors + the float32 FastNN scorer). The
	// cross-series gates in guard.go hold the arena to its contract —
	// load ≥10x faster than gob, predict ≥2x faster than the gob-backed
	// engine — so the ratios are enforced, not just recorded.
	dir, err := os.MkdirTemp("", "wym-bench-model")
	if err != nil {
		return snap, reg, err
	}
	defer os.RemoveAll(dir)
	gobPath := filepath.Join(dir, "model.gob")
	arenaPath := filepath.Join(dir, "model.wyma")
	if err := sys.SaveFile(gobPath); err != nil {
		return snap, reg, err
	}
	if err := sys.SaveArenaFile(arenaPath, wym.ArenaOptions{}); err != nil {
		return snap, reg, err
	}
	record("ModelLoadGob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wym.LoadSystem(gobPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("ModelLoadArena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wym.LoadSystem(arenaPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	arenaSys, err := wym.LoadSystem(arenaPath)
	if err != nil {
		return snap, reg, err
	}
	arenaEng := arenaSys.Engine()
	arenaEng.SetMetrics(pipeline.NewMetrics(reg))
	record("ArenaPredict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			arenaEng.Predict(test.Pairs[i%test.Size()])
		}
	})

	// Table-scale matching paths: the streaming blocking index (shard
	// build + probe over a full table pair) and a complete chunked match
	// job — blocking, batch prediction, segment writes, and the manifest
	// discipline — on tables generated from the same profile the system
	// was trained on.
	profile, ok := datagen.ProfileByKey(dataset)
	if !ok {
		return snap, reg, fmt.Errorf("unknown dataset %q", dataset)
	}
	tables := datagen.GenerateTables(profile, 300, 0.2)
	scfg := blocking.DefaultStreamConfig()
	scfg.MaxDF = 0.05
	scfg.MemoryBudget = 1 << 20
	scfg.TopK = 20
	record("BlockingIndex", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := blocking.NewStreamer(tables.Left, tables.Right, scfg)
			if err != nil {
				b.Fatal(err)
			}
			for start := 0; start < len(tables.Left); start += 100 {
				end := start + 100
				if end > len(tables.Left) {
					end = len(tables.Left)
				}
				cs, err := s.Chunk(start, end)
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, ok := cs.Next(); !ok {
						break
					}
				}
			}
		}
	})
	jobTables := datagen.GenerateTables(profile, 150, 0.2)
	record("MatchJob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			jdir, err := os.MkdirTemp(dir, "job")
			if err != nil {
				b.Fatal(err)
			}
			r, err := matchjob.New(eng, jobTables.Left, jobTables.Right, matchjob.Config{
				ChunkSize: 50,
				Blocking:  scfg,
				Dir:       jdir,
				Out:       filepath.Join(jdir, "out.csv"),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Micro-paths, on a self-contained embedding stack so the numbers do
	// not depend on the trained system's internals.
	var corpus [][]string
	for _, p := range train.Pairs {
		corpus = append(corpus,
			tokenize.Texts(tokenize.Entity(p.Left, tokenize.Default)),
			tokenize.Texts(tokenize.Entity(p.Right, tokenize.Default)))
	}
	src := embed.NewCache(embed.NewConcat(embed.NewHash(), embed.TrainCooc(corpus, embed.DefaultCoocConfig())))
	pair := widestPair(test)
	lt := tokenize.Entity(pair.Left, tokenize.Default)
	rt := tokenize.Entity(pair.Right, tokenize.Default)
	ltexts, rtexts := tokenize.Texts(lt), tokenize.Texts(rt)

	record("Contextualize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			embed.Contextualize(src, ltexts, 0.15)
		}
	})
	in := units.Input{
		Left: lt, Right: rt,
		LeftVecs:  embed.Contextualize(src, ltexts, 0.15),
		RightVecs: embed.Contextualize(src, rtexts, 0.15),
		NumAttrs:  len(d.Schema),
	}
	record("Discover", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			units.Discover(in, units.PaperThresholds)
		}
	})
	return snap, reg, nil
}

// widestPair returns the record pair with the most tokens, the
// representative load for the per-record micro benchmarks.
func widestPair(d *wym.Dataset) wym.Pair {
	best, bestN := d.Pairs[0], -1
	for _, p := range d.Pairs {
		n := len(tokenize.Entity(p.Left, tokenize.Default)) +
			len(tokenize.Entity(p.Right, tokenize.Default))
		if n > bestN {
			best, bestN = p, n
		}
	}
	return best
}
