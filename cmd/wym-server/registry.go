package main

// Multi-model registry: several named models resident in one server
// process, each behind its own reload-safe wym.ModelRef, addressed via
// /models/{name}/predict[/batch|/explain]. The registry is LRU-bounded
// by a bytes budget (artifact file size as the residency proxy): when
// a load pushes the total past the budget, the least-recently-used
// non-default models are evicted until it fits. The default model (the
// -model flag) is pinned — it is what /predict serves and what the
// fleet router's health view keys on — and is never evicted.

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wym"
	"wym/internal/obs"
)

// defaultModelName is the registry name of the -model artifact; the
// bare /predict routes serve it.
const defaultModelName = "default"

// modelStatus is one registry row as /readyz and GET /models report
// it: enough for the router and operators to see what a replica is
// actually serving — name, on-disk format, and an artifact
// fingerprint that changes whenever the bytes do.
type modelStatus struct {
	Name        string `json:"name"`
	Format      string `json:"format"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Path        string `json:"path,omitempty"`
	Bytes       int64  `json:"bytes,omitempty"`
	Reloads     int64  `json:"reloads"`
}

// modelEntry is one resident model: a hot-reload-safe ref plus the
// artifact metadata the status surfaces report.
type modelEntry struct {
	name string
	ref  *wym.ModelRef

	mu          sync.Mutex // guards the metadata below across reloads
	path        string
	format      string
	fingerprint string
	bytes       int64

	lastUsed atomic.Int64 // unix nanos of the last predict through it
	reloads  atomic.Int64
}

// System returns the entry's current model snapshot.
func (e *modelEntry) System() *wym.System { return e.ref.Get() }

func (e *modelEntry) touch(now time.Time) { e.lastUsed.Store(now.UnixNano()) }

func (e *modelEntry) status() modelStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return modelStatus{
		Name:        e.name,
		Format:      e.format,
		Fingerprint: e.fingerprint,
		Path:        e.path,
		Bytes:       e.bytes,
		Reloads:     e.reloads.Load(),
	}
}

// modelRegistry holds every resident model. All mutations take the
// registry lock; the predict hot path only does a map read under
// RLock plus the entry's atomic ref load.
type modelRegistry struct {
	mu       sync.RWMutex
	entries  map[string]*modelEntry
	maxBytes int64 // 0 = unlimited
	// onLoad validates, instruments, and optionally transforms a candidate
	// before publish (the server re-folds the model's feedback journal
	// here, so a reloaded artifact serves the same decisions the previous
	// generation acked). Returning an error keeps the previous model.
	onLoad func(name string, sys *wym.System) (*wym.System, error)
	now    func() time.Time

	evictions      *obs.Counter
	residentModels *obs.Gauge
	residentBytes  *obs.Gauge
}

func newModelRegistry(maxBytes int64, reg *obs.Registry, onLoad func(name string, sys *wym.System) (*wym.System, error)) *modelRegistry {
	g := &modelRegistry{
		entries:  make(map[string]*modelEntry),
		maxBytes: maxBytes,
		onLoad:   onLoad,
		now:      time.Now,
	}
	// The metric types are nil-safe, so an unmetered registry (tests)
	// just leaves them nil.
	if reg != nil {
		g.evictions = reg.Counter("wym_server_model_evictions_total",
			"Models evicted by the registry's LRU bytes budget.")
		g.residentModels = reg.Gauge("wym_server_models_resident",
			"Models currently resident in the registry.")
		g.residentBytes = reg.Gauge("wym_server_model_bytes_resident",
			"Total artifact bytes resident in the registry.")
	}
	return g
}

// validModelName gates registry names: path-segment-safe, bounded, and
// never empty, so /models/{name} routing and metrics stay sane.
func validModelName(name string) error {
	if name == "" {
		return fmt.Errorf("model name is empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("model name exceeds 128 bytes")
	}
	if strings.ContainsAny(name, "/\\ \t\n") {
		return fmt.Errorf("model name %q contains a separator or space", name)
	}
	return nil
}

// fingerprintFile hashes the artifact bytes (FNV-64a, streamed) so two
// artifacts compare by content, not path or mtime. Empty on error or
// an empty path — the fingerprint is advisory, never load-blocking.
func fingerprintFile(path string) string {
	if path == "" {
		return ""
	}
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	return fmt.Sprintf("fnv64:%016x", h.Sum64())
}

func fileBytes(path string) int64 {
	if path == "" {
		return 0
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

// Install publishes an already-loaded system under name — the startup
// path for the -model flag (the artifact was just loaded and
// validated by main). It does not trigger eviction.
func (g *modelRegistry) Install(name, path string, sys *wym.System) *modelEntry {
	e := &modelEntry{
		name:        name,
		ref:         wym.NewModelRef(sys),
		path:        path,
		format:      sys.Format(),
		fingerprint: fingerprintFile(path),
		bytes:       fileBytes(path),
	}
	e.touch(g.now())
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[name] = e
	g.publishGaugesLocked()
	return e
}

// Load loads, validates, and publishes the artifact at path under
// name, reusing the existing entry's ref when the name is already
// resident (hot reload: in-flight requests keep the old snapshot, new
// requests see the new one). On any failure the registry is unchanged
// — the previous model, if any, keeps serving.
func (g *modelRegistry) Load(name, path string) (*modelEntry, error) {
	if err := validModelName(name); err != nil {
		return nil, err
	}
	if path == "" {
		return nil, fmt.Errorf("model %s: load path is empty", name)
	}
	sys, err := wym.LoadSystem(path)
	if err != nil {
		return nil, err
	}
	if g.onLoad != nil {
		sys, err = g.onLoad(name, sys)
		if err != nil {
			return nil, fmt.Errorf("model %s failed validation: %w", path, err)
		}
	}
	fingerprint := fingerprintFile(path)
	bytes := fileBytes(path)

	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.entries[name]
	if e == nil {
		e = &modelEntry{name: name, ref: wym.NewModelRef(sys)}
		g.entries[name] = e
	} else {
		e.ref.Set(sys)
	}
	e.mu.Lock()
	e.path, e.format, e.fingerprint, e.bytes = path, sys.Format(), fingerprint, bytes
	e.mu.Unlock()
	e.reloads.Add(1)
	e.touch(g.now())
	g.evictOverBudgetLocked(name)
	g.publishGaugesLocked()
	return e, nil
}

// Get returns the entry for name, nil when absent.
func (g *modelRegistry) Get(name string) *modelEntry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.entries[name]
}

// Remove unloads a named model. The default model is pinned.
func (g *modelRegistry) Remove(name string) error {
	if name == defaultModelName {
		return fmt.Errorf("the default model cannot be unloaded")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.entries[name]; !ok {
		return fmt.Errorf("unknown model %q", name)
	}
	delete(g.entries, name)
	g.publishGaugesLocked()
	return nil
}

// List snapshots every resident model, sorted by name.
func (g *modelRegistry) List() []modelStatus {
	g.mu.RLock()
	entries := make([]*modelEntry, 0, len(g.entries))
	for _, e := range g.entries {
		entries = append(entries, e)
	}
	g.mu.RUnlock()
	out := make([]modelStatus, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (g *modelRegistry) totalBytesLocked() int64 {
	var total int64
	for _, e := range g.entries {
		e.mu.Lock()
		total += e.bytes
		e.mu.Unlock()
	}
	return total
}

// evictOverBudgetLocked drops least-recently-used models until the
// byte total fits the budget. The default model and the entry just
// touched (keep) are never evicted, so a single oversized artifact
// can exceed the budget — the budget bounds the *extra* residents,
// it never makes the server modelless.
func (g *modelRegistry) evictOverBudgetLocked(keep string) {
	if g.maxBytes <= 0 {
		return
	}
	for g.totalBytesLocked() > g.maxBytes {
		var victim *modelEntry
		for name, e := range g.entries {
			if name == defaultModelName || name == keep {
				continue
			}
			if victim == nil || e.lastUsed.Load() < victim.lastUsed.Load() {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(g.entries, victim.name)
		g.evictions.Inc()
	}
}

func (g *modelRegistry) publishGaugesLocked() {
	g.residentModels.Set(int64(len(g.entries)))
	g.residentBytes.Set(g.totalBytesLocked())
}
