package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"wym"
	"wym/internal/audit"
	"wym/internal/obs"
	"wym/internal/pipeline"
)

// auditedRoutes is the fixed set of routes the auditor records —
// counter series are pre-registered against it so /metrics cardinality
// never depends on traffic.
var auditedRoutes = []string{
	"/predict", "/predict/batch", "/explain",
	"/models/{name}/predict", "/models/{name}/predict/batch", "/models/{name}/explain",
}

// auditor records sampled prediction decisions into the append-only
// audit log. Sampling is a pure function of the request ID
// (audit.Sampled), so every replica in a fleet makes the same verdict
// for the same request; the record is appended after the response is
// written, and an append failure drops the record (counted), never the
// request. A zero-value auditor (no -audit-dir) is fully disabled.
type auditor struct {
	log     *audit.Log
	defRate float64
	rates   map[string]float64 // per-route overrides
	logger  *log.Logger

	records    map[string]*obs.Counter // wym_audit_records_total{route}
	sampledOut map[string]*obs.Counter // wym_audit_sampled_out_total{route}
	dropped    *obs.Counter            // wym_audit_dropped_total
}

func newAuditor(opts options, reg *obs.Registry, logger *log.Logger) (*auditor, error) {
	if opts.auditDir == "" {
		return &auditor{}, nil
	}
	def, rates, err := parseSampleSpec(opts.auditSample)
	if err != nil {
		return nil, fmt.Errorf("-audit-sample: %w", err)
	}
	l, err := audit.Open(opts.auditDir, audit.Options{
		SegmentBytes: opts.auditSegmentBytes,
		RetainBytes:  opts.auditRetainBytes,
		FlushEvery:   opts.auditFlush,
	})
	if err != nil {
		return nil, fmt.Errorf("opening audit log: %w", err)
	}
	au := &auditor{
		log: l, defRate: def, rates: rates, logger: logger,
		records:    make(map[string]*obs.Counter, len(auditedRoutes)),
		sampledOut: make(map[string]*obs.Counter, len(auditedRoutes)),
		dropped: reg.Counter("wym_audit_dropped_total",
			"Sampled decisions whose audit append failed and were dropped."),
	}
	for _, route := range auditedRoutes {
		au.records[route] = reg.Counter("wym_audit_records_total",
			"Decisions recorded into the audit log.", obs.L("route", route))
		au.sampledOut[route] = reg.Counter("wym_audit_sampled_out_total",
			"Decisions skipped by the audit sampler.", obs.L("route", route))
	}
	return au, nil
}

func (au *auditor) enabled() bool { return au != nil && au.log != nil }

func (au *auditor) Close() error {
	if !au.enabled() {
		return nil
	}
	return au.log.Close()
}

// requestID resolves this request's audit identity — the client's
// X-Request-ID when present, a fresh random ID otherwise — and echoes
// it on the response so callers can correlate `wym audit show` with
// their own logs. Returns "" when auditing is disabled.
func (au *auditor) requestID(w http.ResponseWriter, r *http.Request) string {
	if !au.enabled() {
		return ""
	}
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		var b [8]byte
		rand.Read(b[:])
		id = hex.EncodeToString(b[:])
	}
	w.Header().Set("X-Request-ID", id)
	return id
}

// sample is the deterministic per-route sampling verdict for one
// request ID, counting skips.
func (au *auditor) sample(route, id string) bool {
	if !au.enabled() {
		return false
	}
	rate := au.defRate
	if r, ok := au.rates[route]; ok {
		rate = r
	}
	if !audit.Sampled(id, rate) {
		au.sampledOut[route].Inc()
		return false
	}
	return true
}

// record appends one audited decision. Called after the response is
// written: auditing adds explain+append latency to the connection tail,
// never to the served result, and an append failure only bumps the
// dropped counter.
func (au *auditor) record(route, id, model string, e *modelEntry, sys *wym.System,
	p wym.Pair, ex pipeline.Explanation, latency time.Duration) {
	rec := audit.Record{
		RequestID:    id,
		TimeNanos:    time.Now().UnixNano(),
		Route:        route,
		Model:        model,
		ArtifactFP:   e.status().Fingerprint,
		FeedbackFP:   sys.FeedbackFingerprint(),
		Left:         p.Left,
		Right:        p.Right,
		Prediction:   ex.Prediction,
		Proba:        ex.Proba,
		Threshold:    sys.DecisionThreshold(),
		Units:        audit.CompactUnits(ex),
		LatencyNanos: int64(latency),
	}
	if err := au.log.Append(rec); err != nil {
		au.dropped.Inc()
		au.logger.Printf("audit: dropping record %s: %v", id, err)
		return
	}
	au.records[route].Inc()
}

// parseSampleSpec parses the -audit-sample flag: either a bare rate in
// [0,1] applied to every route, or a comma list of default=R and
// /route=R overrides ("default=0.1,/predict=1").
func parseSampleSpec(spec string) (def float64, rates map[string]float64, err error) {
	def, rates = 1, map[string]float64{}
	parse := func(s string) (float64, error) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f < 0 || f > 1 {
			return 0, fmt.Errorf("rate %q is not in [0,1]", s)
		}
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			if def, err = parse(part); err != nil {
				return 0, nil, err
			}
			continue
		}
		f, err := parse(val)
		if err != nil {
			return 0, nil, err
		}
		if key == "default" {
			def = f
		} else {
			rates[key] = f
		}
	}
	return def, rates, nil
}
