package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"wym"
	"wym/internal/nn"
	"wym/internal/relevance"
)

var (
	trainOnce  sync.Once
	trainedSys *wym.System
	trainedEx  wym.Pair // a known matching pair from the test split
)

func server(t *testing.T) (*httptest.Server, *wym.System) {
	t.Helper()
	trainOnce.Do(func() {
		d, _ := wym.DatasetByKey("S-BR", 1.0)
		train, valid, test := d.Split(0.6, 0.2, 1)
		cfg := wym.DefaultConfig()
		cfg.ScorerNN = relevance.NNConfig{
			Hidden: []int{16},
			Train:  nn.Config{Epochs: 8, BatchSize: 32, LR: 1e-3, Seed: 1},
			Seed:   1,
		}
		sys, err := wym.Train(train, valid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		trainedSys = sys
		for _, p := range test.Pairs {
			if p.Label == wym.Match {
				trainedEx = p
				break
			}
		}
	})
	return httptest.NewServer(newHandler(trainedSys)), trainedSys
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var schema []string
	if err := json.NewDecoder(resp.Body).Decode(&schema); err != nil {
		t.Fatal(err)
	}
	if len(schema) != len(sys.Schema()) {
		t.Fatalf("schema = %v", schema)
	}
}

func TestPredictEndpoint(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	resp := post(t, srv.URL+"/predict", pairRequest{Left: trainedEx.Left, Right: trainedEx.Right})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	wantLabel, wantProba := sys.Predict(trainedEx)
	if out.Match != (wantLabel == wym.Match) || out.Probability != wantProba {
		t.Fatalf("response %+v, want %d/%v", out, wantLabel, wantProba)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	resp := post(t, srv.URL+"/explain", pairRequest{Left: trainedEx.Left, Right: trainedEx.Right})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out explainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Units) == 0 {
		t.Fatal("no units in explanation")
	}
	schema := sys.Schema()
	for _, u := range out.Units {
		if u.Left == "" && u.Right == "" {
			t.Fatalf("empty unit: %+v", u)
		}
		if u.Paired != (u.Left != "" && u.Right != "") {
			t.Fatalf("paired flag inconsistent: %+v", u)
		}
		if u.Attribute == "" {
			t.Fatalf("missing attribute name (schema %v): %+v", schema, u)
		}
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()

	// Wrong arity.
	resp := post(t, srv.URL+"/predict", pairRequest{Left: []string{"x"}, Right: []string{"y"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("arity status = %d", resp.StatusCode)
	}

	// Invalid JSON.
	r, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", r.StatusCode)
	}

	// Wrong method.
	g, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", g.StatusCode)
	}
}
