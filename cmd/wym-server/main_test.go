package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wym"
	"wym/internal/nn"
	"wym/internal/relevance"
)

var (
	trainOnce  sync.Once
	trainedSys *wym.System
	trainedEx  wym.Pair // a known matching pair from the test split
)

// trained returns the shared fitted system (trained once per package).
func trained(t *testing.T) *wym.System {
	t.Helper()
	trainOnce.Do(func() {
		d, _ := wym.DatasetByKey("S-BR", 1.0)
		train, valid, test := d.MustSplit(0.6, 0.2, 1)
		cfg := wym.DefaultConfig()
		cfg.ScorerNN = relevance.NNConfig{
			Hidden: []int{16},
			Train:  nn.Config{Epochs: 8, BatchSize: 32, LR: 1e-3, Seed: 1},
			Seed:   1,
		}
		sys, err := wym.Train(train, valid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		trainedSys = sys
		for _, p := range test.Pairs {
			if p.Label == wym.Match {
				trainedEx = p
				break
			}
		}
	})
	return trainedSys
}

func quietOptions() options {
	return options{logger: log.New(io.Discard, "", 0)}
}

// testApp builds an app over the shared trained system.
func testApp(t *testing.T, opts options) *app {
	t.Helper()
	sys := trained(t)
	if opts.logger == nil {
		opts.logger = log.New(io.Discard, "", 0)
	}
	a, err := newApp(sys, "", opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func server(t *testing.T) (*httptest.Server, *wym.System) {
	t.Helper()
	a := testApp(t, quietOptions())
	return httptest.NewServer(a.handler()), trainedSys
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var schema []string
	if err := json.NewDecoder(resp.Body).Decode(&schema); err != nil {
		t.Fatal(err)
	}
	if len(schema) != len(sys.Schema()) {
		t.Fatalf("schema = %v", schema)
	}
}

func TestPredictEndpoint(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	resp := post(t, srv.URL+"/predict", pairRequest{Left: trainedEx.Left, Right: trainedEx.Right})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	wantLabel, wantProba := sys.Predict(trainedEx)
	if out.Match != (wantLabel == wym.Match) || out.Probability != wantProba {
		t.Fatalf("response %+v, want %d/%v", out, wantLabel, wantProba)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	resp := post(t, srv.URL+"/explain", pairRequest{Left: trainedEx.Left, Right: trainedEx.Right})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out explainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Units) == 0 {
		t.Fatal("no units in explanation")
	}
	schema := sys.Schema()
	for _, u := range out.Units {
		if u.Left == "" && u.Right == "" {
			t.Fatalf("empty unit: %+v", u)
		}
		if u.Paired != (u.Left != "" && u.Right != "") {
			t.Fatalf("paired flag inconsistent: %+v", u)
		}
		if u.Attribute == "" {
			t.Fatalf("missing attribute name (schema %v): %+v", schema, u)
		}
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()

	// Wrong arity.
	resp := post(t, srv.URL+"/predict", pairRequest{Left: []string{"x"}, Right: []string{"y"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("arity status = %d", resp.StatusCode)
	}

	// Invalid JSON.
	r, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", r.StatusCode)
	}

	// Wrong method.
	g, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", g.StatusCode)
	}
}

func TestPredictGoldenResponse(t *testing.T) {
	// The happy-path body must match the canonical encoding of the
	// model's own prediction, byte for byte.
	srv, sys := server(t)
	defer srv.Close()
	resp := post(t, srv.URL+"/predict", pairRequest{Left: trainedEx.Left, Right: trainedEx.Right})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	wantLabel, wantProba := sys.Predict(trainedEx)
	want, err := json.Marshal(predictResponse{
		Match:       wantLabel == wym.Match,
		Probability: wantProba,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(string(body), "\n"); got != string(want) {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestDecodeHardening(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"empty body", "", "empty request body"},
		{"whitespace body", "   ", "empty request body"},
		{"unknown field", `{"left":["a"],"right":["b"],"wat":1}`, "wat"},
		{"trailing garbage", `{"left":["a"],"right":["b"]} trailing`, "trailing data"},
		{"second JSON value", `{"left":["a"],"right":["b"]}{"x":1}`, "trailing data"},
		{"not JSON", `{nope`, "invalid JSON"},
	}
	for _, endpoint := range []string{"/predict", "/explain"} {
		for _, tc := range cases {
			t.Run(endpoint+" "+tc.name, func(t *testing.T) {
				resp, err := http.Post(srv.URL+endpoint, "application/json", strings.NewReader(tc.body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("status = %d, want 400", resp.StatusCode)
				}
				var e errorResponse
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
					t.Fatalf("error body is not JSON: %v", err)
				}
				if !strings.Contains(e.Error, tc.want) {
					t.Fatalf("error %q does not mention %q", e.Error, tc.want)
				}
			})
		}
	}
}

func TestArityErrorNamesTheBadSide(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	n := len(sys.Schema())

	// Only the left side is wrong.
	good := make([]string, n)
	resp := post(t, srv.URL+"/predict", pairRequest{Left: []string{"just-one"}, Right: good})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if len(e.BadSides) != 1 || e.BadSides[0].Side != "left" ||
		e.BadSides[0].Want != n || e.BadSides[0].Got != 1 {
		t.Fatalf("bad_sides = %+v, want one left-side entry (want=%d got=1)", e.BadSides, n)
	}

	// Both sides wrong -> both reported.
	resp2 := post(t, srv.URL+"/predict", pairRequest{Left: []string{"x"}, Right: []string{"y", "z"}})
	defer resp2.Body.Close()
	var e2 errorResponse
	if err := json.NewDecoder(resp2.Body).Decode(&e2); err != nil {
		t.Fatal(err)
	}
	if len(e2.BadSides) != 2 || e2.BadSides[0].Side != "left" || e2.BadSides[1].Side != "right" {
		t.Fatalf("bad_sides = %+v, want left and right entries", e2.BadSides)
	}
}

func TestMaxBodyLimit(t *testing.T) {
	a := testApp(t, options{maxBody: 128, logger: log.New(io.Discard, "", 0)})
	srv := httptest.NewServer(a.handler())
	defer srv.Close()
	huge := `{"left":["` + strings.Repeat("x", 4096) + `"],"right":["y"]}`
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestPredictBatch(t *testing.T) {
	srv, sys := server(t)
	defer srv.Close()
	n := len(sys.Schema())
	good := pairRequest{Left: trainedEx.Left, Right: trainedEx.Right}
	bad := pairRequest{Left: []string{"short"}, Right: make([]string, n)}
	resp := post(t, srv.URL+"/predict/batch", batchRequest{Pairs: []pairRequest{good, bad, good}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (bad items must not fail the batch)", resp.StatusCode)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	if out.Errors != 1 {
		t.Fatalf("errors = %d, want 1", out.Errors)
	}
	wantLabel, wantProba := sys.Predict(trainedEx)
	for _, i := range []int{0, 2} {
		it := out.Results[i]
		if it.Error != "" || it.Match == nil || it.Probability == nil {
			t.Fatalf("item %d = %+v, want a prediction", i, it)
		}
		if *it.Match != (wantLabel == wym.Match) || *it.Probability != wantProba {
			t.Fatalf("item %d = %+v, want %v/%v", i, it, wantLabel == wym.Match, wantProba)
		}
	}
	mid := out.Results[1]
	if mid.Error == "" || mid.Match != nil || mid.Probability != nil {
		t.Fatalf("item 1 = %+v, want an item-level error", mid)
	}
	if len(mid.BadSides) != 1 || mid.BadSides[0].Side != "left" {
		t.Fatalf("item 1 bad_sides = %+v, want the left side flagged", mid.BadSides)
	}
}

func TestPredictBatchLimits(t *testing.T) {
	a := testApp(t, options{maxBatch: 2, logger: log.New(io.Discard, "", 0)})
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	// Empty batch.
	r1 := post(t, srv.URL+"/predict/batch", batchRequest{})
	r1.Body.Close()
	if r1.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", r1.StatusCode)
	}

	// Over the cap.
	p := pairRequest{Left: trainedEx.Left, Right: trainedEx.Right}
	r2 := post(t, srv.URL+"/predict/batch", batchRequest{Pairs: []pairRequest{p, p, p}})
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d, want 400", r2.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(r2.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "limit is 2") {
		t.Fatalf("error = %q, want the cap named", e.Error)
	}
}

func TestReadyz(t *testing.T) {
	a := testApp(t, quietOptions())
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready status = %d, want 200", resp.StatusCode)
	}

	// Draining flips readiness to 503 while liveness stays 200.
	a.drainFn = func() bool { return true }
	r2, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status = %d, want 503", r2.StatusCode)
	}
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", h.StatusCode)
	}
}
