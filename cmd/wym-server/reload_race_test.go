package main

import (
	"bytes"
	"sync"
	"testing"

	"wym"
)

// TestModelRefSwapDuringPredictAll hammers the hot-reload invariant under
// the race detector: ModelRef.Set may swap in a new model (and with it a
// new pipeline engine) while other goroutines are mid-way through batch
// predictions on the old one. Each batch must run entirely on whichever
// engine it started with — readers take the reference once, so a swap
// never splits one batch across two models and never races with the
// engine's worker fan-out. `make serve-race` runs this package with
// -race.
func TestModelRefSwapDuringPredictAll(t *testing.T) {
	sysA := trained(t)

	// A second, distinct system with its own engine: round-trip the fitted
	// system through its gob form instead of training twice.
	var buf bytes.Buffer
	if err := sysA.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sysB, err := wym.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	d, _ := wym.DatasetByKey("S-BR", 1.0)
	_, _, test := d.MustSplit(0.6, 0.2, 1)
	want := sysA.PredictAll(test)

	ref := wym.NewModelRef(sysA)
	const (
		readers = 4
		batches = 8
		swaps   = 64
	)
	var wg sync.WaitGroup
	wg.Add(readers + 1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				ref.Set(sysB)
			} else {
				ref.Set(sysA)
			}
		}
	}()
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				eng := ref.Get().Engine() // one read per batch
				got := eng.PredictAll(test)
				// Both systems are the same fitted model, so every batch
				// must reproduce the reference labels no matter which
				// engine served it or when the swap landed.
				for i := range got {
					if got[i] != want[i] {
						errs <- "prediction diverged during reload"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
