package main

import (
	"bytes"
	"io"
	"log"
	"path/filepath"
	"sync"
	"testing"

	"wym"
	"wym/internal/obs"
)

// TestModelRefSwapDuringPredictAll hammers the hot-reload invariant under
// the race detector: ModelRef.Set may swap in a new model (and with it a
// new pipeline engine) while other goroutines are mid-way through batch
// predictions on the old one. Each batch must run entirely on whichever
// engine it started with — readers take the reference once, so a swap
// never splits one batch across two models and never races with the
// engine's worker fan-out. `make serve-race` runs this package with
// -race.
func TestModelRefSwapDuringPredictAll(t *testing.T) {
	sysA := trained(t)

	// A second, distinct system with its own engine: round-trip the fitted
	// system through its gob form instead of training twice.
	var buf bytes.Buffer
	if err := sysA.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sysB, err := wym.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	d, _ := wym.DatasetByKey("S-BR", 1.0)
	_, _, test := d.MustSplit(0.6, 0.2, 1)
	want := sysA.PredictAll(test)

	ref := wym.NewModelRef(sysA)
	const (
		readers = 4
		batches = 8
		swaps   = 64
	)
	var wg sync.WaitGroup
	wg.Add(readers + 1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				ref.Set(sysB)
			} else {
				ref.Set(sysA)
			}
		}
	}()
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				eng := ref.Get().Engine() // one read per batch
				got := eng.PredictAll(test)
				// Both systems are the same fitted model, so every batch
				// must reproduce the reference labels no matter which
				// engine served it or when the swap landed.
				for i := range got {
					if got[i] != want[i] {
						errs <- "prediction diverged during reload"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestArenaHotReloadUnderLoad is the mmap-safety race test behind `make
// model-race`: the server hot-swaps between a float32 and an int8 arena
// artifact while readers run batch predictions. Replaced arenas are
// unmapped only by their finalizer, never while a published engine can
// still reach them — a use-after-munmap here is a SIGSEGV, and a
// reference leak shows up as -race/GC pressure. The decisions must stay
// byte-stable across every swap (the equivalence goldens guarantee both
// precisions agree on this dataset).
func TestArenaHotReloadUnderLoad(t *testing.T) {
	sys := trained(t)
	dir := t.TempDir()
	f32Path := filepath.Join(dir, "m.f32.wyma")
	int8Path := filepath.Join(dir, "m.int8.wyma")
	if err := sys.SaveArenaFile(f32Path, wym.ArenaOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveArenaFile(int8Path, wym.ArenaOptions{Int8: true}); err != nil {
		t.Fatal(err)
	}
	first, err := wym.LoadSystem(f32Path)
	if err != nil {
		t.Fatal(err)
	}

	d, _ := wym.DatasetByKey("S-BR", 1.0)
	_, _, test := d.MustSplit(0.6, 0.2, 1)
	want := first.PredictAll(test)

	reg := obs.NewRegistry()
	a, err := newApp(first, f32Path, options{logger: log.New(io.Discard, "", 0), registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		batches = 6
		swaps   = 24
	)
	var wg sync.WaitGroup
	wg.Add(readers + 1)
	errs := make(chan string, readers+1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			path := f32Path
			if i%2 == 0 {
				path = int8Path
			}
			if _, err := a.reload(path); err != nil {
				errs <- "reload failed: " + err.Error()
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				eng := a.ref.Get().Engine()
				got := eng.PredictAll(test)
				for i := range got {
					if got[i] != want[i] {
						errs <- "prediction diverged during arena hot reload"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if n := a.Reloads(); n != swaps {
		t.Fatalf("reloads = %d, want %d", n, swaps)
	}

	// The observability contract: per-format load histograms and the
	// resident-format gauge tracking the last swap (swaps is even, so the
	// final artifact is the float32 one).
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scraped := buf.String()
	for _, want := range []string{
		`wym_server_model_load_seconds_count{format="arena-f32"}`,
		`wym_server_model_load_seconds_count{format="arena-int8"}`,
		`wym_server_model_format{format="arena-f32"} 1`,
		`wym_server_model_format{format="arena-int8"} 0`,
	} {
		if !contains(scraped, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, scraped)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
