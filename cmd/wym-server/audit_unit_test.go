package main

import (
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"wym/internal/obs"
)

func TestParseSampleSpec(t *testing.T) {
	cases := []struct {
		spec    string
		def     float64
		rates   map[string]float64
		wantErr bool
	}{
		{spec: "", def: 1, rates: map[string]float64{}},
		{spec: "0.25", def: 0.25, rates: map[string]float64{}},
		{spec: "default=0.1,/predict=1", def: 0.1,
			rates: map[string]float64{"/predict": 1}},
		{spec: " default=0.5 , /explain=0 ,", def: 0.5,
			rates: map[string]float64{"/explain": 0}},
		{spec: "2", wantErr: true},
		{spec: "-0.1", wantErr: true},
		{spec: "abc", wantErr: true},
		{spec: "default=nope", wantErr: true},
		{spec: "/predict=1.5", wantErr: true},
	}
	for _, c := range cases {
		def, rates, err := parseSampleSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("spec %q: accepted, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("spec %q: %v", c.spec, err)
			continue
		}
		if def != c.def {
			t.Errorf("spec %q: default = %v, want %v", c.spec, def, c.def)
		}
		if len(rates) != len(c.rates) {
			t.Errorf("spec %q: rates = %v, want %v", c.spec, rates, c.rates)
			continue
		}
		for route, want := range c.rates {
			if rates[route] != want {
				t.Errorf("spec %q: rates[%q] = %v, want %v",
					c.spec, route, rates[route], want)
			}
		}
	}
}

func TestNewAuditorErrors(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	reg := obs.NewRegistry()

	opts := options{auditDir: t.TempDir(), auditSample: "bogus"}
	if _, err := newAuditor(opts, reg, logger); err == nil {
		t.Fatal("bad -audit-sample accepted")
	}

	// A plain file where the audit dir should go makes Open fail.
	blocked := filepath.Join(t.TempDir(), "audit")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts = options{auditDir: blocked, auditSample: "1"}
	if _, err := newAuditor(opts, reg, logger); err == nil {
		t.Fatal("blocked audit dir accepted")
	}
}

// A zero-value auditor (no -audit-dir) must be inert: no IDs issued, no
// sampling, Close a no-op.
func TestAuditorDisabled(t *testing.T) {
	au, err := newAuditor(options{}, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	if au.enabled() {
		t.Fatal("auditor with no dir reports enabled")
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/predict", nil)
	r.Header.Set("X-Request-ID", "should-be-ignored")
	if id := au.requestID(w, r); id != "" {
		t.Fatalf("disabled auditor issued request ID %q", id)
	}
	if w.Header().Get("X-Request-ID") != "" {
		t.Fatal("disabled auditor echoed a request ID header")
	}
	if au.sample("/predict", "any") {
		t.Fatal("disabled auditor sampled a request in")
	}
	if err := au.Close(); err != nil {
		t.Fatalf("disabled Close: %v", err)
	}
}
