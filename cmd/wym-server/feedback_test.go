package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"wym"
	"wym/internal/datagen"
)

// driftedLabels builds adjudicated labels over test-split pairs with the
// right side's vocabulary drifted — the post-train shift the feedback
// loop exists to repair (identical aligned tokens carry no signal).
func driftedLabels(t *testing.T, n int) []feedbackLabel {
	t.Helper()
	d, _ := wym.DatasetByKey("S-BR", 1.0)
	_, _, test := d.MustSplit(0.6, 0.2, 1)
	if test.Size() < n {
		t.Fatalf("test split too small: %d", test.Size())
	}
	out := make([]feedbackLabel, n)
	for i, p := range test.Pairs[:n] {
		out[i] = feedbackLabel{
			Left:  p.Left,
			Right: datagen.DriftEntity(p.Right, 0.8, 11),
			Match: p.Label == wym.Match,
		}
	}
	return out
}

func postFeedback(t *testing.T, url string, labels []feedbackLabel) *http.Response {
	t.Helper()
	return post(t, url, feedbackRequest{Labels: labels})
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFeedbackDisabledWithoutDir(t *testing.T) {
	srv, _ := server(t) // quietOptions: no feedbackDir
	defer srv.Close()

	resp := postFeedback(t, srv.URL+"/admin/feedback", driftedLabels(t, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	r2, err := http.Get(srv.URL + "/admin/feedback")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[feedbackStatus](t, r2)
	if st.Enabled || st.SupportsFeedback {
		t.Fatalf("status with feedback disabled = %+v", st)
	}
}

func TestFeedbackApplyJournalsAndSwaps(t *testing.T) {
	dir := t.TempDir()
	opts := quietOptions()
	opts.feedbackDir = dir
	a := testApp(t, opts)
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	labels := driftedLabels(t, 8)

	// Batch 1.
	resp := postFeedback(t, srv.URL+"/admin/feedback", labels[:5])
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	ack := decodeBody[feedbackResponse](t, resp)
	if ack.Applied != 5 || ack.LabelsTotal != 5 || !strings.HasPrefix(ack.Fingerprint, "fnv64:") {
		t.Fatalf("ack = %+v", ack)
	}

	// The swap must be visible: the served system now carries feedback.
	if got := a.ref.Get().FeedbackCount(); got != 5 {
		t.Fatalf("served FeedbackCount = %d, want 5", got)
	}
	// The original trained system is untouched (copy-on-write).
	if trainedSys.FeedbackCount() != 0 {
		t.Fatal("feedback mutated the shared trained system")
	}

	// The journal is on disk under the model's name.
	if _, err := os.Stat(filepath.Join(dir, "default", "000000.wymfbk")); err != nil {
		t.Fatalf("journal segment missing: %v", err)
	}

	// Batch 2 accumulates.
	resp = postFeedback(t, srv.URL+"/admin/feedback", labels[5:])
	ack2 := decodeBody[feedbackResponse](t, resp)
	if ack2.LabelsTotal != 8 || ack2.Fingerprint == ack.Fingerprint {
		t.Fatalf("second ack = %+v (first fingerprint %s)", ack2, ack.Fingerprint)
	}

	// Status reflects the served provenance and the open journal.
	r, err := http.Get(srv.URL + "/admin/feedback")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[feedbackStatus](t, r)
	if !st.Enabled || !st.SupportsFeedback || st.LabelsTotal != 8 ||
		st.Fingerprint != ack2.Fingerprint || st.JournalRecords != 2 {
		t.Fatalf("status = %+v", st)
	}

	// Metrics moved.
	if got := a.fbLabels.Value(); got != 8 {
		t.Fatalf("wym_feedback_labels_total = %d, want 8", got)
	}
	if got := a.fbApplies.Value(); got != 2 {
		t.Fatalf("wym_feedback_applies_total = %d, want 2", got)
	}
}

func TestFeedbackRejectsBadBatches(t *testing.T) {
	dir := t.TempDir()
	opts := quietOptions()
	opts.feedbackDir = dir
	a := testApp(t, opts)
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	// Empty batch.
	resp := postFeedback(t, srv.URL+"/admin/feedback", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Wrong attribute arity.
	resp = postFeedback(t, srv.URL+"/admin/feedback",
		[]feedbackLabel{{Left: []string{"just-one"}, Right: []string{"also-one"}, Match: true}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad arity status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown model.
	resp = postFeedback(t, srv.URL+"/admin/models/nope/feedback", driftedLabels(t, 1))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	if got := a.fbRejected.Value(); got != 1 {
		t.Fatalf("wym_feedback_rejected_total = %d, want 1 (arity reject only)", got)
	}
	// Nothing journaled, nothing swapped.
	if a.ref.Get().FeedbackCount() != 0 {
		t.Fatal("rejected batches reached the served model")
	}
}

// TestFeedbackReplayOnStartup pins the serving durability contract
// in-process: a new app over the same journal directory must come up
// serving the exact feedback state the previous generation acked.
func TestFeedbackReplayOnStartup(t *testing.T) {
	dir := t.TempDir()
	opts := quietOptions()
	opts.feedbackDir = dir
	a1 := testApp(t, opts)
	srv := httptest.NewServer(a1.handler())

	resp := postFeedback(t, srv.URL+"/admin/feedback", driftedLabels(t, 6))
	ack := decodeBody[feedbackResponse](t, resp)
	if !strings.HasPrefix(ack.Fingerprint, "fnv64:") {
		t.Fatalf("ack = %+v", ack)
	}
	srv.Close()
	a1.feedback.Close()

	// "Restart": a fresh app over the same directory and the same
	// (feedback-free) trained artifact.
	opts2 := quietOptions()
	opts2.feedbackDir = dir
	a2 := testApp(t, opts2)
	defer a2.feedback.Close()
	sys := a2.ref.Get()
	if sys.FeedbackCount() != 6 || sys.FeedbackFingerprint() != ack.Fingerprint {
		t.Fatalf("replayed state: count=%d fp=%q, want 6 / %q",
			sys.FeedbackCount(), sys.FeedbackFingerprint(), ack.Fingerprint)
	}
	if sys.DecisionThreshold() != ack.Threshold {
		t.Fatalf("replayed threshold %.17g != acked %.17g", sys.DecisionThreshold(), ack.Threshold)
	}
}

// --- subprocess crash e2e -------------------------------------------------

func buildServerBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "wym-server")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building wym-server: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string, proc *exec.Cmd) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if proc.ProcessState != nil {
			t.Fatalf("server exited before becoming healthy: %v", proc.ProcessState)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("server did not become healthy in 30s")
}

// TestFeedbackKillReplay is the label-race acceptance e2e: POST feedback
// batches into a live server while predict load runs, SIGKILL the
// process (no cleanup chance — only the journal fsync discipline
// protects the acked labels), restart on the same journal directory, and
// require the served feedback fingerprint to match the last ack.
func TestFeedbackKillReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	workDir := t.TempDir()
	bin := buildServerBinary(t, workDir)
	modelPath := savedModel(t)
	fbDir := filepath.Join(workDir, "feedback")
	addr := freeAddr(t)
	base := "http://" + addr

	serverArgs := []string{"-model", modelPath, "-addr", addr, "-feedback-dir", fbDir}
	start := func() *exec.Cmd {
		cmd := exec.Command(bin, serverArgs...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	proc := start()
	defer proc.Process.Kill()
	waitHealthy(t, base, proc)

	// Background predict load for the duration of the feedback batches,
	// so the kill lands while the hot path is racing the swaps.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	body, _ := json.Marshal(pairRequest{Left: trainedEx.Left, Right: trainedEx.Right})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/predict", "application/json", strings.NewReader(string(body)))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	labels := driftedLabels(t, 9)
	var lastAck feedbackResponse
	for i := 0; i < len(labels); i += 3 {
		buf, _ := json.Marshal(feedbackRequest{Labels: labels[i : i+3]})
		resp, err := http.Post(base+"/admin/feedback", "application/json", strings.NewReader(string(buf)))
		if err != nil {
			t.Fatalf("feedback batch %d: %v", i/3, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback batch %d: status %d, body %s", i/3, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &lastAck); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if lastAck.LabelsTotal != len(labels) || lastAck.Fingerprint == "" {
		t.Fatalf("last ack = %+v", lastAck)
	}

	// SIGKILL: the process gets no chance to flush or clean up.
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	// Restart on the same journal directory: startup replay must
	// reproduce the acked feedback state exactly.
	proc2 := start()
	defer proc2.Process.Kill()
	waitHealthy(t, base, proc2)

	resp, err := http.Get(base + "/admin/feedback")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[feedbackStatus](t, resp)
	if st.Fingerprint != lastAck.Fingerprint {
		t.Fatalf("post-crash fingerprint %q != acked %q", st.Fingerprint, lastAck.Fingerprint)
	}
	if st.LabelsTotal != lastAck.LabelsTotal {
		t.Fatalf("post-crash labels %d != acked %d", st.LabelsTotal, lastAck.LabelsTotal)
	}
	if st.Threshold != lastAck.Threshold {
		t.Fatalf("post-crash threshold %.17g != acked %.17g", st.Threshold, lastAck.Threshold)
	}
	if st.JournalRecords != 3 {
		t.Fatalf("journal records = %d, want 3", st.JournalRecords)
	}

	proc2.Process.Signal(syscall.SIGTERM)
	proc2.Wait()
}

// TestModelLoadRacesFeedback hammers a named model with concurrent
// admin loads and feedback batches. Both paths touch the model's
// journal (load replays it via registry onLoad, feedback appends to
// it) and both publish via ref.Set, so they must serialize on
// reloadMu — the race detector catches any regression, and the final
// reload must surface every acknowledged label.
func TestModelLoadRacesFeedback(t *testing.T) {
	opts := quietOptions()
	opts.feedbackDir = t.TempDir()
	a := testApp(t, opts)
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	path := savedModel(t)
	loadModel(t, srv, "alt", path)

	labels := driftedLabels(t, 4)
	const rounds = 6
	var (
		wg      sync.WaitGroup
		acked   int64
		loadErr error
		fbErr   error
	)
	postJSON := func(url string, body any) (*http.Response, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return http.Post(url, "application/json", bytes.NewReader(buf))
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			lb := labels[i%len(labels)]
			resp, err := postJSON(srv.URL+"/admin/models/alt/feedback",
				feedbackRequest{Labels: []feedbackLabel{lb}})
			if err != nil {
				fbErr = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				atomic.AddInt64(&acked, 1)
			} else if resp.StatusCode != http.StatusNotFound {
				// 404 can happen if a concurrent unload-style eviction
				// raced us out; anything else is a real failure.
				fbErr = fmt.Errorf("feedback status %d", resp.StatusCode)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := postJSON(srv.URL+"/admin/models/alt/load", reloadRequest{Path: path})
			if err != nil {
				loadErr = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				loadErr = fmt.Errorf("load status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	if fbErr != nil {
		t.Fatalf("feedback goroutine: %v", fbErr)
	}
	if loadErr != nil {
		t.Fatalf("load goroutine: %v", loadErr)
	}
	if acked == 0 {
		t.Fatal("no feedback batch was acknowledged")
	}

	// A fresh load replays the journal: every acked label must be there.
	loadModel(t, srv, "alt", path)
	resp, err := http.Get(srv.URL + "/admin/models/alt/feedback")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[feedbackStatus](t, resp)
	if int64(st.LabelsTotal) != acked {
		t.Fatalf("replayed labels = %d, acked = %d", st.LabelsTotal, acked)
	}
}

// TestAdminModelOpsSerializeOnReloadMu pins the serialization contract
// deterministically: while reloadMu is held (as feedbackWith holds it
// for its apply-journal-swap sequence), named-model load and unload
// must block rather than proceed — a load that slips through would
// replay the journal concurrently with an in-flight Append and could
// publish a model missing an acked batch.
func TestAdminModelOpsSerializeOnReloadMu(t *testing.T) {
	a := testApp(t, quietOptions())
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	path := savedModel(t)
	loadModel(t, srv, "alt", path)

	// Measure an uncontended hot reload to scale the blocking window.
	t0 := time.Now()
	loadModel(t, srv, "alt", path)
	uncontended := time.Since(t0)

	postJSON := func(url string, body any) (int, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	a.reloadMu.Lock()
	type result struct {
		op   string
		code int
		err  error
	}
	done := make(chan result, 2)
	go func() {
		code, err := postJSON(srv.URL+"/admin/models/alt/load", reloadRequest{Path: path})
		done <- result{"load", code, err}
	}()
	go func() {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/admin/models/alt", nil)
		if err != nil {
			done <- result{"unload", 0, err}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{"unload", 0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{"unload", resp.StatusCode, nil}
	}()

	// Neither op may finish while the mutex is held. The window is 4x an
	// uncontended load (plus a second of slack), so a handler that skips
	// the mutex finishes well inside it.
	select {
	case r := <-done:
		a.reloadMu.Unlock()
		t.Fatalf("%s completed (code %d, err %v) while reloadMu was held", r.op, r.code, r.err)
	case <-time.After(4*uncontended + time.Second):
	}
	a.reloadMu.Unlock()

	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if r.err != nil || r.code != http.StatusOK {
				t.Fatalf("%s after release: code %d, err %v", r.op, r.code, r.err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("admin op never completed after reloadMu release")
		}
	}
}
