package main

// Fault-injection end-to-end tests: prove the server survives handler
// panics, sheds load past the in-flight cap, drains cleanly on SIGTERM,
// and keeps serving the old model when a reload fails — the acceptance
// bar for production serving. The serve.Injector drives each failure
// deterministically; run with -race to also exercise the reload/predict
// concurrency (Makefile `serve-race`).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wym/internal/serve"
)

// savedModel writes the shared trained system to a gob in a temp dir.
func savedModel(t *testing.T) string {
	t.Helper()
	sys := trained(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func goodBody(t *testing.T) string {
	t.Helper()
	buf, err := json.Marshal(pairRequest{Left: trainedEx.Left, Right: trainedEx.Right})
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestInjectedPanicReturns500AndServerSurvives(t *testing.T) {
	inj := serve.NewInjector(serve.Faults{PanicEvery: 2})
	opts := quietOptions()
	opts.faults = inj
	a := testApp(t, opts)
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	body := goodBody(t)
	// Requests 1, 3 succeed; request 2 hits the injected panic.
	want := []int{http.StatusOK, http.StatusInternalServerError, http.StatusOK}
	for i, ws := range want {
		resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("request %d: transport error %v (server died?)", i+1, err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != ws {
			t.Fatalf("request %d status = %d, want %d (body %s)", i+1, resp.StatusCode, ws, got)
		}
		if ws == http.StatusInternalServerError && !strings.Contains(string(got), "internal server error") {
			t.Fatalf("request %d error body = %s", i+1, got)
		}
	}
}

func TestLoadSheddingReturns429WithRetryAfter(t *testing.T) {
	// Cap two in-flight requests and stall each admitted one, so a
	// concurrent burst must overflow into 429s.
	inj := serve.NewInjector(serve.Faults{LatencyEvery: 1, Latency: 400 * time.Millisecond})
	opts := quietOptions()
	opts.faults = inj
	opts.maxInFlight = 2
	opts.retryAfter = 3 * time.Second
	opts.reqTimeout = 10 * time.Second
	a := testApp(t, opts)
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	const burst = 8
	body := goodBody(t)
	statuses := make([]int, burst)
	retryAfters := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfters[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, s := range statuses {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfters[i] != "3" {
				t.Fatalf("request %d Retry-After = %q, want \"3\"", i, retryAfters[i])
			}
		default:
			t.Fatalf("request %d status = %d, want 200 or 429", i, s)
		}
	}
	if ok < 2 {
		t.Fatalf("only %d requests admitted, cap is 2", ok)
	}
	if shed == 0 {
		t.Fatal("no requests were shed despite saturating the cap")
	}

	// Health checks bypass the limiter even at saturation, and the
	// server accepts normal traffic once the burst drains.
	inj.SetEnabled(false)
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz after burst = %d", h.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst predict = %d, want 200", resp.StatusCode)
	}
}

func TestSIGTERMDrainsInFlightRequests(t *testing.T) {
	// Full production wiring: serve.Server + signal.NotifyContext, a
	// stalled in-flight request, then a real SIGTERM to this process.
	inj := serve.NewInjector(serve.Faults{LatencyEvery: 1, Latency: 500 * time.Millisecond})
	opts := quietOptions()
	opts.faults = inj
	opts.reqTimeout = 10 * time.Second
	a := testApp(t, opts)
	srv := serve.New(serve.Config{
		Addr:          "127.0.0.1:0",
		ShutdownGrace: 10 * time.Second,
		ErrorLog:      log.New(io.Discard, "", 0),
	}, a.handler())
	a.drainFn = srv.Draining
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()

	type result struct {
		status int
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+srv.Addr()+"/predict", "application/json",
			strings.NewReader(goodBody(t)))
		if err != nil {
			got <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- result{status: resp.StatusCode}
	}()

	// Let the request get admitted (it then stalls 500ms in the
	// injector), then deliver SIGTERM mid-flight.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight request failed during SIGTERM drain: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request status = %d, want 200", r.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if !srv.Draining() {
		t.Fatal("server does not report draining after SIGTERM")
	}
}

func TestFailedReloadKeepsOldModelUnderConcurrentPredicts(t *testing.T) {
	goodPath := savedModel(t)
	badPath := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(badPath, []byte("definitely not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := quietOptions()
	a := testApp(t, opts)
	a.modelPath = goodPath
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	body := goodBody(t)
	stopHammer := make(chan struct{})
	hammerErr := make(chan error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopHammer:
					return
				default:
				}
				resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
				if err != nil {
					hammerErr <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					hammerErr <- fmt.Errorf("predict status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	// A reload pointed at garbage must fail with 500 and leave the old
	// model serving.
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/admin/reload", "application/json",
			strings.NewReader(`{"path":"`+badPath+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("bad reload status = %d, want 500 (body %s)", resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), badPath) {
			t.Fatalf("reload error %s does not name the bad artifact", raw)
		}
	}
	if got := a.Reloads(); got != 0 {
		t.Fatalf("failed reloads were counted as swaps: %d", got)
	}

	// A valid artifact swaps in cleanly while predicts continue.
	resp, err := http.Post(srv.URL+"/admin/reload", "application/json",
		strings.NewReader(`{"path":"`+goodPath+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rl reloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rl.Status != "ok" || rl.Path != goodPath {
		t.Fatalf("good reload = %d %+v", resp.StatusCode, rl)
	}
	if got := a.Reloads(); got != 1 {
		t.Fatalf("reload count = %d, want 1", got)
	}

	close(stopHammer)
	wg.Wait()
	select {
	case err := <-hammerErr:
		t.Fatalf("concurrent predict failed during reloads: %v", err)
	default:
	}

	// And the model still predicts correctly after the churn.
	final, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	final.Body.Close()
	if final.StatusCode != http.StatusOK {
		t.Fatalf("post-reload predict = %d", final.StatusCode)
	}
}

func TestSIGHUPReloadsModelInPlace(t *testing.T) {
	path := savedModel(t)
	a := testApp(t, quietOptions())
	a.modelPath = path
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a.watchHUP(ctx)
	// Give the signal handler a beat to install before raising SIGHUP
	// (Notify is synchronous, but the goroutine must be receiving).
	time.Sleep(20 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for a.Reloads() == 0 {
		select {
		case <-deadline:
			t.Fatal("SIGHUP did not trigger a reload")
		case <-time.After(10 * time.Millisecond):
		}
	}
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(goodBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after SIGHUP reload = %d", resp.StatusCode)
	}
}

func TestAdminReloadWithEmptyBodyReloadsInPlace(t *testing.T) {
	path := savedModel(t)
	a := testApp(t, quietOptions())
	a.modelPath = path
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rl reloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rl.Path != path || rl.Reloads != 1 {
		t.Fatalf("in-place reload = %d %+v", resp.StatusCode, rl)
	}
}
