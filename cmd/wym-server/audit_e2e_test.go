package main

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wym/internal/audit"
)

// auditOptions returns serving options with auditing into dir at the
// given rate.
func auditOptions(dir string, rate float64, flush time.Duration) options {
	opts := quietOptions()
	opts.auditDir = dir
	opts.auditSample = strconv.FormatFloat(rate, 'g', -1, 64)
	opts.auditFlush = flush
	return opts
}

// TestAuditRecordsMatchCounters drives concurrent predicts with known
// request IDs through an audited in-process server and holds the
// accounting exact: every sent ID lands in exactly one of
// {recorded, sampled-out} per the deterministic sampler, the recovered
// log matches the recorded set, and the wym_audit_* counters agree.
func TestAuditRecordsMatchCounters(t *testing.T) {
	dir := t.TempDir()
	const rate = 0.5
	a := testApp(t, auditOptions(dir, rate, 5*time.Millisecond))
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	const n = 120
	body := goodBody(t)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest("POST", srv.URL+"/predict", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			id := fmt.Sprintf("e2e-%04d", i)
			req.Header.Set("X-Request-ID", id)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("predict %s: status %d", id, resp.StatusCode)
			}
			if echo := resp.Header.Get("X-Request-ID"); echo != id {
				t.Errorf("request ID echoed as %q, want %q", echo, id)
			}
		}(i)
	}
	wg.Wait()
	// The audit append runs after the response hits the wire, so the
	// last clients can return before their records land: wait for the
	// accounting to converge before closing the log.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		sum := a.audit.records["/predict"].Value() + a.audit.sampledOut["/predict"].Value() + a.audit.dropped.Value()
		if sum >= n {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := a.audit.Close(); err != nil {
		t.Fatal(err)
	}

	wantSampled := map[string]bool{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("e2e-%04d", i)
		if audit.Sampled(id, rate) {
			wantSampled[id] = true
		}
	}
	got := map[string]bool{}
	recs, stats, err := audit.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated != 0 {
		t.Fatalf("cleanly closed log has %d truncated segments", stats.Truncated)
	}
	for _, r := range recs {
		if got[r.RequestID] {
			t.Fatalf("request %s recorded twice", r.RequestID)
		}
		got[r.RequestID] = true
		if !wantSampled[r.RequestID] {
			t.Fatalf("request %s recorded but the sampler says skip at rate %g", r.RequestID, rate)
		}
		if r.Route != "/predict" || r.Model != defaultModelName {
			t.Fatalf("record %s has route=%q model=%q", r.RequestID, r.Route, r.Model)
		}
		if len(r.Units) == 0 {
			t.Fatalf("record %s stored no explanation units", r.RequestID)
		}
		// ArtifactFP is "" here only because testApp installs the model
		// without an artifact path; the subprocess e2e covers it.
		if r.LatencyNanos <= 0 {
			t.Fatalf("record %s has no latency: %+v", r.RequestID, r)
		}
	}
	if len(got) != len(wantSampled) {
		t.Fatalf("recovered %d records, sampler wanted %d", len(got), len(wantSampled))
	}
	recorded := a.audit.records["/predict"].Value()
	skipped := a.audit.sampledOut["/predict"].Value()
	dropped := a.audit.dropped.Value()
	if recorded != uint64(len(wantSampled)) || skipped != uint64(n-len(wantSampled)) || dropped != 0 {
		t.Fatalf("counters recorded=%d skipped=%d dropped=%d, want %d/%d/0",
			recorded, skipped, dropped, len(wantSampled), n-len(wantSampled))
	}
}

// TestAuditBatchAndExplainRoutes: the other hot routes record under
// their own derived IDs and route labels.
func TestAuditBatchAndExplainRoutes(t *testing.T) {
	dir := t.TempDir()
	a := testApp(t, auditOptions(dir, 1, 0))
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	req, _ := http.NewRequest("POST", srv.URL+"/predict/batch",
		strings.NewReader(`{"pairs": [`+goodBody(t)+`,`+goodBody(t)+`]}`))
	req.Header.Set("X-Request-ID", "batch-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ = http.NewRequest("POST", srv.URL+"/explain", strings.NewReader(goodBody(t)))
	req.Header.Set("X-Request-ID", "explain-1")
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if a.audit.records["/predict/batch"].Value()+a.audit.records["/explain"].Value() >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := a.audit.Close(); err != nil {
		t.Fatal(err)
	}

	recs, _, err := audit.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]audit.Record{}
	for _, r := range recs {
		byID[r.RequestID] = r
	}
	for id, route := range map[string]string{
		"batch-1#0": "/predict/batch", "batch-1#1": "/predict/batch", "explain-1": "/explain",
	} {
		r, ok := byID[id]
		if !ok {
			t.Fatalf("no record for %s (have %v)", id, keysOf(byID))
		}
		if r.Route != route {
			t.Fatalf("record %s has route %q, want %q", id, r.Route, route)
		}
	}
}

func keysOf(m map[string]audit.Record) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// scrapeAuditCounters sums wym_audit_records_total and
// wym_audit_sampled_out_total across routes from a /metrics exposition.
func scrapeAuditCounters(t *testing.T, adminBase string) (recorded, skipped uint64) {
	t.Helper()
	resp, err := http.Get(adminBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], "wym_audit_records_total"):
			recorded += v
		case strings.HasPrefix(fields[0], "wym_audit_sampled_out_total"):
			skipped += v
		}
	}
	return recorded, skipped
}

// TestAuditKillRecovery is the audit-race acceptance e2e: SIGKILL a
// real wym-server mid-predict-load with auditing on, then assert the
// crash contract — the log recovers with no torn records, everything
// the counters acknowledged before the storm survives, every recovered
// ID passes the sampler, and a restarted server appends cleanly to the
// same directory.
func TestAuditKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	dir := t.TempDir()
	bin := buildServerBinary(t, dir)
	model := savedModel(t)
	auditDir := dir + "/audit"
	addr, adminAddr := freeAddr(t), freeAddr(t)
	const rate = 0.5

	start := func() *exec.Cmd {
		proc := exec.Command(bin, "-model", model, "-addr", addr, "-admin-addr", adminAddr,
			"-audit-dir", auditDir, "-audit-sample", fmt.Sprint(rate), "-audit-flush", "50ms")
		proc.Stderr = os.Stderr
		if err := proc.Start(); err != nil {
			t.Fatal(err)
		}
		return proc
	}
	proc := start()
	defer proc.Process.Kill()
	base, adminBase := "http://"+addr, "http://"+adminAddr
	waitHealthy(t, base, proc)

	body := goodBody(t)
	send := func(id string) {
		req, err := http.NewRequest("POST", base+"/predict", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s: status %d", id, resp.StatusCode)
		}
	}

	// Phase 1: acknowledged traffic, flushed before the crash.
	const acked = 40
	for i := 0; i < acked; i++ {
		send(fmt.Sprintf("acked-%04d", i))
	}
	// The append trails the response, so poll the counters until the
	// accounting converges.
	var recorded, skipped uint64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if recorded, skipped = scrapeAuditCounters(t, adminBase); recorded+skipped >= acked {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if recorded+skipped != acked {
		t.Fatalf("counters recorded=%d skipped=%d, want sum %d", recorded, skipped, acked)
	}
	time.Sleep(300 * time.Millisecond) // > -audit-flush: phase-1 records are durable

	// Phase 2: a concurrent storm with the kill landing inside it.
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest("POST", base+"/predict", strings.NewReader(body))
			req.Header.Set("X-Request-ID", fmt.Sprintf("storm-%04d", i))
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}(i)
		if i == 100 {
			proc.Process.Kill() // SIGKILL: no flush, no deferred Close
		}
	}
	wg.Wait()
	proc.Wait()

	// Recovery: the tolerant reader loses at most the unflushed tail.
	recs, _, err := audit.ReadAll(auditDir)
	if err != nil {
		t.Fatalf("scanning audit dir after SIGKILL: %v", err)
	}
	var gotAcked int
	for _, r := range recs {
		if !audit.Sampled(r.RequestID, rate) {
			t.Fatalf("recovered record %s that the sampler says skip", r.RequestID)
		}
		if strings.HasPrefix(r.RequestID, "acked-") {
			gotAcked++
		}
	}
	if uint64(gotAcked) != recorded {
		t.Fatalf("recovered %d acked records, counters acknowledged %d", gotAcked, recorded)
	}

	// Restart on the same directory: Open repairs any torn tail and the
	// log accepts new records.
	proc = start()
	defer proc.Process.Kill()
	waitHealthy(t, base, proc)
	send("post-restart")
	time.Sleep(300 * time.Millisecond)
	proc.Process.Signal(os.Interrupt)
	proc.Wait()
	recs, stats, err := audit.ReadAll(auditDir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.RequestID == "post-restart" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-restart record missing from recovered log (%d records, %d truncated segments)",
			len(recs), stats.Truncated)
	}
}
