package main

// Real-fleet chaos e2e: three actual wym-server apps (sharing the
// trained system) behind a real cluster.Router. Unlike the stub-based
// suite in cmd/wym-router, every forwarded request exercises the full
// predict path — decode, engine, explain-capable model — so protocol
// drift between router and server shows up here. Run under the race
// detector via make router-race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wym/internal/cluster"
	"wym/internal/obs"
)

// fleetReplica is one real app behind its own listener, with a
// flippable drain switch standing in for SIGTERM draining.
type fleetReplica struct {
	app      *app
	srv      *httptest.Server
	draining atomic.Bool
}

// testFleet stands up n real replicas behind a router with fast probe
// and failover settings.
func testFleet(t *testing.T, n int) ([]*fleetReplica, *cluster.Pool, *httptest.Server) {
	t.Helper()
	replicas := make([]*fleetReplica, n)
	eps := make([]string, n)
	for i := range replicas {
		rep := &fleetReplica{app: testApp(t, quietOptions())}
		rep.app.drainFn = rep.draining.Load
		rep.srv = httptest.NewServer(rep.app.handler())
		t.Cleanup(rep.srv.Close)
		replicas[i] = rep
		eps[i] = rep.srv.URL
	}
	metrics := cluster.NewMetrics(obs.NewRegistry())
	pool := cluster.NewPool(eps, cluster.PoolConfig{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		EjectAfter:    2,
		Breaker:       cluster.BreakerConfig{Threshold: 2, OpenFor: 50 * time.Millisecond},
		Metrics:       metrics,
	})
	router := cluster.NewRouter(pool, cluster.RouterConfig{
		TryTimeout: 2 * time.Second,
		Retries:    2,
		Backoff:    cluster.NewBackoff(time.Millisecond, 10*time.Millisecond, 1),
		Metrics:    metrics,
		Logger:     log.New(io.Discard, "", 0),
	})
	front := httptest.NewServer(router.Handler())
	t.Cleanup(front.Close)
	pool.Start(t.Context())
	return replicas, pool, front
}

func waitFleetSweeps(t *testing.T, pool *cluster.Pool, n int64) {
	t.Helper()
	target := pool.ProbeSweeps() + n
	deadline := time.After(10 * time.Second)
	for pool.ProbeSweeps() < target {
		select {
		case <-deadline:
			t.Fatal("probe loop stalled")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestFleetKillReplicaMidBatchLoad drives real batch predictions
// through the router while one replica is hard-killed: zero 5xx, every
// batch fully answered with real predictions, the corpse off the ring
// within a probe interval.
func TestFleetKillReplicaMidBatchLoad(t *testing.T) {
	replicas, pool, front := testFleet(t, 3)
	trained(t) // ensure trainedEx is populated

	// Vary the pairs so shards spread: real schema values, mutated left
	// names per request.
	makeBatch := func(tag string, size int) []byte {
		pairs := make([]pairRequest, size)
		for i := range pairs {
			left := append([]string(nil), trainedEx.Left...)
			left[0] = fmt.Sprintf("%s %s-%d", left[0], tag, i)
			pairs[i] = pairRequest{Left: left, Right: trainedEx.Right}
		}
		buf, err := json.Marshal(map[string]any{"pairs": pairs})
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	const (
		workers   = 6
		perWorker = 12
		batchSize = 6
	)
	var (
		non200     atomic.Int64
		badReplies atomic.Int64
		itemErrors atomic.Int64
		killOnce   sync.Once
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == 3 {
					killOnce.Do(func() {
						replicas[2].srv.CloseClientConnections()
						replicas[2].srv.Close()
					})
				}
				body := makeBatch(fmt.Sprintf("w%d-i%d", w, i), batchSize)
				resp, err := http.Post(front.URL+"/predict/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					non200.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					non200.Add(1)
					continue
				}
				var reply struct {
					Results []struct {
						Match       *bool   `json:"match"`
						Probability float64 `json:"probability"`
						Error       string  `json:"error"`
					} `json:"results"`
					Errors int `json:"errors"`
				}
				if json.Unmarshal(raw, &reply) != nil || len(reply.Results) != batchSize {
					badReplies.Add(1)
					continue
				}
				itemErrors.Add(int64(reply.Errors))
				for _, res := range reply.Results {
					if res.Error == "" && res.Match == nil {
						badReplies.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if n := non200.Load(); n != 0 {
		t.Errorf("%d batches hit a non-200 during the kill, want 0 (per-item degradation only)", n)
	}
	if n := badReplies.Load(); n != 0 {
		t.Errorf("%d malformed batch replies from real replicas", n)
	}
	if n := itemErrors.Load(); n != 0 {
		t.Logf("note: %d items degraded to per-item errors while failing over", n)
	}
	waitFleetSweeps(t, pool, 3)
	if pool.Ring().Has(replicas[2].srv.URL) {
		t.Fatal("killed replica still admitted to the ring")
	}
}

// TestFleetDrainEjectsAndReadmits flips a real replica's readiness (as
// SIGTERM draining does), proving the router stops sending to it and
// welcomes it back — breaker reset included — once it reports ready.
func TestFleetDrainEjectsAndReadmits(t *testing.T) {
	replicas, pool, front := testFleet(t, 3)
	target := replicas[1]

	target.draining.Store(true)
	waitFleetSweeps(t, pool, 3)
	if pool.Ring().Has(target.srv.URL) {
		t.Fatal("draining replica still admitted")
	}

	// Traffic keeps flowing on the remaining two.
	body := goodBody(t)
	for i := 0; i < 10; i++ {
		resp, err := http.Post(front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict during drain status = %d", resp.StatusCode)
		}
	}

	target.draining.Store(false)
	waitFleetSweeps(t, pool, 2)
	if !pool.Ring().Has(target.srv.URL) {
		t.Fatal("recovered replica not re-admitted")
	}
	if st := pool.Replica(target.srv.URL).Breaker().State(); st != cluster.Closed {
		t.Fatalf("re-admitted replica breaker = %v, want Closed", st)
	}
}

// TestFleetRouterSeesReplicaModels: the router's probe reads the real
// server's /readyz model list, format and fingerprint included — the
// fleet view is built from real protocol, not stub JSON.
func TestFleetRouterSeesReplicaModels(t *testing.T) {
	replicas, pool, _ := testFleet(t, 2)
	waitFleetSweeps(t, pool, 2)
	for i, rep := range replicas {
		models := pool.Replica(rep.srv.URL).Models()
		if len(models) != 1 || models[0].Name != defaultModelName {
			t.Fatalf("replica %d models = %+v, want the default entry", i, models)
		}
		if models[0].Format != trained(t).Format() {
			t.Fatalf("replica %d model format = %q, want %q", i, models[0].Format, trained(t).Format())
		}
	}
}

// TestFleetScopedRoutesEndToEnd: a named model loaded on every replica
// is reachable through the router's model-scoped routes.
func TestFleetScopedRoutesEndToEnd(t *testing.T) {
	replicas, _, front := testFleet(t, 2)
	path := savedModel(t)
	for _, rep := range replicas {
		if _, err := rep.app.models.Load("alt", path); err != nil {
			t.Fatal(err)
		}
	}
	body := goodBody(t)
	resp, err := http.Post(front.URL+"/models/alt/predict", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scoped predict through router = %d, body %s", resp.StatusCode, raw)
	}
	var out struct {
		Match *bool `json:"match"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.Match == nil {
		t.Fatalf("scoped predict body %s (err %v)", raw, err)
	}
	// A model resident nowhere 404s — and the router relays the
	// replica's verdict instead of retrying a non-5xx.
	resp, err = http.Post(front.URL+"/models/nope/predict", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scoped model through router = %d, want 404 relayed", resp.StatusCode)
	}
}
