// Command wym-server serves a trained WYM matcher over HTTP: train once
// with `wym -save matcher.gob`, then serve predictions and decision-unit
// explanations as JSON.
//
// Usage:
//
//	wym-server -model matcher.gob -addr :8080
//
// Endpoints:
//
//	POST /predict        {"left": [...], "right": [...]}
//	    -> {"match": bool, "probability": float}
//	POST /predict/batch  {"pairs": [{"left": [...], "right": [...]}, ...]}
//	    -> {"results": [...], "errors": n}   (per-item error semantics)
//	POST /explain        {"left": [...], "right": [...]}
//	    -> prediction plus the decision units with relevance and impact
//	POST /models/{name}/predict        -> predict against a named model
//	POST /models/{name}/predict/batch  -> batch against a named model
//	POST /models/{name}/explain        -> explain against a named model
//	GET  /models         -> the resident model registry (names, formats, fingerprints)
//	GET  /schema         -> the attribute names the model was trained with
//	GET  /healthz        -> 200 ok (liveness)
//	GET  /readyz         -> 200 while serving (with the resident-model
//	                        list), 503 while draining (readiness)
//	POST /admin/reload   {"path": "..."}? -> atomically swap the default model
//	POST   /admin/models/{name}/load {"path": "..."} -> load/replace a named model
//	DELETE /admin/models/{name}                      -> unload a named model
//	POST /admin/feedback {"labels": [{"left": [...], "right": [...], "match": bool}, ...]}
//	    -> fold adjudicated labels into the default model (journal + atomic swap)
//	GET  /admin/feedback -> feedback provenance (label count, fingerprint, threshold)
//	POST /admin/models/{name}/feedback, GET /admin/models/{name}/feedback
//	    -> the same against a named model
//
// The left/right arrays hold one string per schema attribute, in the
// order the model was trained with (reported by GET /schema).
//
// Several models can be resident at once: the -model artifact is the
// pinned "default" (served by the bare routes), -models preloads more,
// and the registry evicts least-recently-used extras past the
// -max-model-bytes budget. Every model keeps the same hot-reload,
// metrics, and drain semantics the single-model server had.
//
// The process reloads its default model on SIGHUP and drains
// gracefully on SIGINT/SIGTERM; see the serve package for the
// resilience middleware (panic recovery, per-request timeouts, body
// caps, load shedding).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"wym"
	"wym/internal/audit"
	"wym/internal/obs"
	"wym/internal/pipeline"
	"wym/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "path to a system saved with wym -save")
		addr      = flag.String("addr", ":8080", "listen address")

		readTimeout   = flag.Duration("read-timeout", 15*time.Second, "full-request read deadline")
		writeTimeout  = flag.Duration("write-timeout", 60*time.Second, "response write deadline")
		idleTimeout   = flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle deadline")
		reqTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-request handling budget (503 past it)")
		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "drain budget on SIGINT/SIGTERM")

		maxBody     = flag.Int64("max-body", 1<<20, "request body cap in bytes (413 past it)")
		maxInFlight = flag.Int("max-inflight", 64, "concurrent predict/explain cap (429 past it, 0 = unlimited)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
		maxBatch    = flag.Int("max-batch", 256, "maximum pairs per /predict/batch request")

		preload       = flag.String("models", "", "extra named models to preload, as name=path[,name=path...]")
		feedbackDir   = flag.String("feedback-dir", "", "root directory for per-model feedback label journals; empty disables the feedback endpoints")
		maxModelBytes = flag.Int64("max-model-bytes", 0, "registry bytes budget; LRU-evicts non-default models past it (0 = unlimited)")

		adminAddr = flag.String("admin-addr", "", "admin listen address for GET /metrics (and pprof); empty disables")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof on the admin address")

		auditDir      = flag.String("audit-dir", "", "prediction audit log directory; empty disables auditing")
		auditSample   = flag.String("audit-sample", "1", "audit sampling: a rate in [0,1], or default=R,/route=R,... per-route overrides")
		auditFlush    = flag.Duration("audit-flush", 200*time.Millisecond, "audit fsync batching interval (0 = fsync every record)")
		auditSegBytes = flag.Int64("audit-segment-bytes", audit.DefaultSegmentBytes, "audit segment rotation size in bytes")
		auditRetain   = flag.Int64("audit-retain-bytes", 0, "audit retention cap across segments (0 = unbounded; otherwise >= 2x segment size)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "wym-server: -model is required")
		os.Exit(2)
	}
	loadStart := time.Now()
	sys, err := wym.LoadSystem(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wym-server:", err)
		os.Exit(1)
	}
	loadTook := time.Since(loadStart)

	logger := log.New(os.Stderr, "wym-server: ", log.LstdFlags)
	a, err := newApp(sys, *modelPath, options{
		logger:        logger,
		maxInFlight:   *maxInFlight,
		retryAfter:    *retryAfter,
		reqTimeout:    *reqTimeout,
		maxBody:       *maxBody,
		maxBatch:      *maxBatch,
		maxModelBytes: *maxModelBytes,
		feedbackDir:   *feedbackDir,

		auditDir:          *auditDir,
		auditSample:       *auditSample,
		auditFlush:        *auditFlush,
		auditSegmentBytes: *auditSegBytes,
		auditRetainBytes:  *auditRetain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wym-server:", err)
		os.Exit(1)
	}
	defer a.feedback.Close()
	defer a.audit.Close()
	a.observeModelLoad(sys.Format(), loadTook)
	logger.Printf("loaded %s (%s) in %v", *modelPath, sys.Format(), loadTook.Round(time.Millisecond))
	if a.feedback.enabled() {
		logger.Printf("feedback enabled, journaling under %s", *feedbackDir)
	}
	if a.audit.enabled() {
		logger.Printf("audit enabled, recording under %s (sample %s)", *auditDir, *auditSample)
	}
	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			name, path, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok || name == "" || path == "" {
				fmt.Fprintf(os.Stderr, "wym-server: -models entry %q is not name=path\n", spec)
				os.Exit(2)
			}
			start := time.Now()
			entry, err := a.models.Load(name, path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wym-server: preloading model %s: %v\n", name, err)
				os.Exit(1)
			}
			a.observeModelLoad(entry.status().Format, time.Since(start))
			logger.Printf("preloaded model %s from %s (%s)", name, path, entry.status().Format)
		}
	}
	srv := serve.New(serve.Config{
		Addr:          *addr,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		IdleTimeout:   *idleTimeout,
		ShutdownGrace: *shutdownGrace,
		ErrorLog:      logger,
	}, a.handler())
	a.drainFn = srv.Draining

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	a.watchHUP(ctx)

	if *adminAddr != "" {
		adminSrv := serve.New(serve.Config{
			Addr:          *adminAddr,
			ShutdownGrace: *shutdownGrace,
			ErrorLog:      logger,
		}, a.adminHandler(*pprofOn))
		go func() {
			if err := adminSrv.Run(ctx); err != nil {
				logger.Printf("admin server: %v", err)
			}
		}()
		logger.Printf("admin surface (GET /metrics, pprof=%v) on %s", *pprofOn, *adminAddr)
	}

	logger.Printf("serving %s (classifier %s, schema %v) on %s",
		*modelPath, sys.ModelName(), sys.Schema(), *addr)
	if err := srv.Run(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly, bye")
}

// options tunes the request-handling stack; zero values are filled with
// serving defaults by newApp.
type options struct {
	logger        *log.Logger
	maxInFlight   int
	retryAfter    time.Duration
	reqTimeout    time.Duration
	maxBody       int64
	maxBatch      int
	maxModelBytes int64           // model-registry bytes budget (0 = unlimited)
	feedbackDir   string          // feedback journal root ("" disables feedback)
	registry      *obs.Registry   // metrics registry; newApp creates one when nil
	faults        *serve.Injector // test-only fault injection, nil in production

	// Prediction auditing; see audit.go. auditDir == "" disables it.
	auditDir          string
	auditSample       string // sampling spec for parseSampleSpec
	auditFlush        time.Duration
	auditSegmentBytes int64
	auditRetainBytes  int64
}

// app is the serving state: the model registry (with the pinned
// default model's reload-safe handle) plus the middleware
// configuration. All request handlers resolve a model snapshot exactly
// once, so a concurrent reload never splits one request across two
// models.
type app struct {
	ref            *wym.ModelRef // the default registry entry's ref
	defaultEntry   *modelEntry   // the pinned default entry (stable across reloads)
	models         *modelRegistry
	audit          *auditor
	logger         *log.Logger
	limiter        *serve.Limiter
	opts           options
	drainFn        func() bool // wired to serve.Server.Draining
	reloadMu       sync.Mutex  // serializes reloads, named-model load/unload, and feedback; never held on the predict path
	modelPath      string      // guarded by reloadMu
	residentFormat string      // guarded by reloadMu
	reloads        atomic.Int64

	// Online learning: per-model label journals plus the feedback
	// counters; see feedback.go.
	feedback       *feedbackStore
	fbLabels       *obs.Counter
	fbApplies      *obs.Counter
	fbRejected     *obs.Counter
	fbApplySeconds *obs.Histogram

	// Observability: one registry for the process; the engine bundle is
	// re-attached to every reloaded model so counters survive swaps.
	reg           *obs.Registry
	engineMetrics *pipeline.Metrics
	httpMetrics   *serve.HTTPMetrics
	reloadsTotal  *obs.Counter
}

func newApp(sys *wym.System, modelPath string, opts options) (*app, error) {
	if opts.logger == nil {
		opts.logger = log.Default()
	}
	if opts.maxBatch <= 0 {
		opts.maxBatch = 256
	}
	if opts.retryAfter <= 0 {
		opts.retryAfter = time.Second
	}
	if opts.registry == nil {
		opts.registry = obs.NewRegistry()
	}
	a := &app{
		logger:    opts.logger,
		limiter:   serve.NewLimiter(opts.maxInFlight, opts.retryAfter),
		opts:      opts,
		drainFn:   func() bool { return false },
		modelPath: modelPath,

		reg:         opts.registry,
		httpMetrics: serve.NewHTTPMetrics(opts.registry),
		reloadsTotal: opts.registry.Counter("wym_server_reloads_total",
			"Successful model hot reloads."),
	}
	a.engineMetrics = pipeline.NewMetrics(a.reg)
	a.limiter.CountSheds(a.reg.Counter("wym_server_shed_total",
		"Requests shed with 429 by the in-flight limiter."))
	a.feedback = newFeedbackStore(opts.feedbackDir)
	a.registerFeedbackMetrics()
	au, err := newAuditor(opts, a.reg, opts.logger)
	if err != nil {
		return nil, err
	}
	a.audit = au
	// The registry validates, instruments, and journal-replays every
	// model before publishing it: handlers must never observe an
	// uninstrumented engine, a broken artifact must never displace a
	// serving one, and a (re)loaded model must carry every acked
	// feedback label.
	a.models = newModelRegistry(opts.maxModelBytes, a.reg, func(name string, sys *wym.System) (*wym.System, error) {
		if err := validateSystem(sys); err != nil {
			return nil, err
		}
		upd, err := a.replayFeedback(name, sys)
		if err != nil {
			return nil, err
		}
		upd.Engine().SetMetrics(a.engineMetrics)
		return upd, nil
	})
	// The startup artifact was already validated by loading successfully
	// in main; replay its journal and instrument before publishing, as
	// above.
	sys, err = a.replayFeedback(defaultModelName, sys)
	if err != nil {
		return nil, fmt.Errorf("model %s: %w", modelPath, err)
	}
	sys.Engine().SetMetrics(a.engineMetrics)
	a.defaultEntry = a.models.Install(defaultModelName, modelPath, sys)
	a.ref = a.defaultEntry.ref
	a.setResidentFormat(sys.Format())
	return a, nil
}

// setResidentFormat flips the wym_server_model_format gauge family: the
// serving format's series reads 1, every previously seen format 0 — so
// a scrape identifies the resident model representation (gob vs arena)
// across hot swaps. Called at startup and from reload (which holds
// reloadMu).
func (a *app) setResidentFormat(format string) {
	const name = "wym_server_model_format"
	const help = "1 for the model format currently serving, 0 for formats it replaced."
	if prev := a.residentFormat; prev != "" && prev != format {
		a.reg.Gauge(name, help, obs.L("format", prev)).Set(0)
	}
	a.reg.Gauge(name, help, obs.L("format", format)).Set(1)
	a.residentFormat = format
}

// observeModelLoad records one model artifact load into the per-format
// load-duration histogram and updates the resident-format gauge. Arena
// loads are mmap + header validation and land in the sub-millisecond
// buckets; gob loads decode the full snapshot.
func (a *app) observeModelLoad(format string, took time.Duration) {
	a.reg.Histogram("wym_server_model_load_seconds",
		"Model artifact load+validate latency, labeled by on-disk format.",
		obs.DefaultLatencyBuckets, obs.L("format", format)).Observe(took.Seconds())
	a.setResidentFormat(format)
}

// handler assembles the full middleware stack. The hot endpoints shed
// load and respect the request budget; health and admin endpoints skip
// the limiter so probes and operators get through even at saturation.
// Recovery and access logging wrap everything.
func (a *app) handler() http.Handler {
	mux := http.NewServeMux()
	// Metrics wrap each route outermost (inside the mux) so the route
	// label is the registered pattern and shed 429s are counted too.
	hot := func(route string, h http.HandlerFunc) http.Handler {
		var inner http.Handler = h
		inner = a.opts.faults.Middleware(inner) // no-op when nil
		inner = serve.MaxBytes(a.opts.maxBody, inner)
		inner = serve.Timeout(a.opts.reqTimeout, inner)
		inner = a.limiter.Middleware(inner)
		return a.httpMetrics.Route(route, inner)
	}
	admin := func(route string, h http.HandlerFunc) http.Handler {
		inner := serve.Timeout(a.opts.reqTimeout, serve.MaxBytes(a.opts.maxBody, h))
		return a.httpMetrics.Route(route, inner)
	}
	mux.Handle("GET /healthz", a.httpMetrics.Route("/healthz",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})))
	mux.Handle("GET /readyz", a.httpMetrics.Route("/readyz", http.HandlerFunc(a.handleReadyz)))
	mux.Handle("GET /schema", a.httpMetrics.Route("/schema",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, a.ref.Get().Schema())
		})))
	// Handlers receive their registered route pattern explicitly (for
	// the audit trail and per-route sampling) alongside the resolved
	// registry entry, so one request never re-resolves its model.
	mux.Handle("POST /predict", hot("/predict", a.defaultScoped("/predict", a.predictWith)))
	mux.Handle("POST /predict/batch",
		hot("/predict/batch", a.defaultScoped("/predict/batch", a.predictBatchWith)))
	mux.Handle("POST /explain", hot("/explain", a.defaultScoped("/explain", a.explainWith)))
	// Model-scoped routes: the metric label is the route pattern, not
	// the expanded name, so series cardinality stays fixed however many
	// models churn through the registry.
	mux.Handle("POST /models/{name}/predict",
		hot("/models/{name}/predict", a.modelScoped("/models/{name}/predict", a.predictWith)))
	mux.Handle("POST /models/{name}/predict/batch",
		hot("/models/{name}/predict/batch", a.modelScoped("/models/{name}/predict/batch", a.predictBatchWith)))
	mux.Handle("POST /models/{name}/explain",
		hot("/models/{name}/explain", a.modelScoped("/models/{name}/explain", a.explainWith)))
	mux.Handle("GET /models", a.httpMetrics.Route("/models",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, a.models.List())
		})))
	mux.Handle("POST /admin/reload", admin("/admin/reload", a.handleReload))
	mux.Handle("POST /admin/feedback", admin("/admin/feedback", a.handleFeedback))
	mux.Handle("GET /admin/feedback", admin("/admin/feedback", a.handleFeedbackStatus))
	mux.Handle("POST /admin/models/{name}/feedback",
		admin("/admin/models/{name}/feedback", a.handleModelFeedback))
	mux.Handle("GET /admin/models/{name}/feedback",
		admin("/admin/models/{name}/feedback", a.handleModelFeedbackStatus))
	mux.Handle("POST /admin/models/{name}/load",
		admin("/admin/models/{name}/load", a.handleModelLoad))
	mux.Handle("DELETE /admin/models/{name}",
		admin("/admin/models/{name}", a.handleModelUnload))
	return serve.AccessLog(a.logger, a.limiter.InFlight, serve.Recover(a.logger, mux))
}

// adminHandler is the admin-surface mux: GET /metrics always, the
// net/http/pprof handlers when enabled. It is served on its own listener
// (-admin-addr) so profiling and scraping never contend with, or leak
// onto, the public predict routes.
func (a *app) adminHandler(pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", a.reg.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return serve.Recover(a.logger, mux)
}

// watchHUP reloads the model from its current path on SIGHUP until ctx
// ends — the classic "promote the retrained artifact in place" signal.
func (a *app) watchHUP(ctx context.Context) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		defer signal.Stop(hup)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if path, err := a.reload(""); err != nil {
					a.logger.Printf("SIGHUP reload of %s failed, keeping current model: %v", path, err)
				} else {
					a.logger.Printf("SIGHUP reload: now serving %s", path)
				}
			}
		}
	}()
}

// reload loads and validates a replacement default model, publishing
// it only after it passes (the registry validates and re-attaches the
// process-lifetime engine metrics before the swap, so counters
// accumulate across model generations). On any failure the previous
// model keeps serving — rollback is the default, not an action. An
// empty path means "reload the current artifact in place".
func (a *app) reload(path string) (string, error) {
	a.reloadMu.Lock()
	defer a.reloadMu.Unlock()
	if path == "" {
		path = a.modelPath
	}
	start := time.Now()
	entry, err := a.models.Load(defaultModelName, path)
	if err != nil {
		return path, err
	}
	a.observeModelLoad(entry.status().Format, time.Since(start))
	a.modelPath = path
	a.reloads.Add(1)
	a.reloadsTotal.Inc()
	return path, nil
}

// Reloads returns the number of successful model swaps (exposed on
// /readyz; tests use it to observe SIGHUP handling).
func (a *app) Reloads() int64 { return a.reloads.Load() }

// validateSystem smoke-tests a candidate model before it is allowed to
// serve: the schema must be usable and a probe predict must complete
// without tripping an invariant panic anywhere in the pipeline.
func validateSystem(sys *wym.System) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe predict panicked: %v", r)
		}
	}()
	schema := sys.Schema()
	if len(schema) == 0 {
		return errors.New("empty schema")
	}
	probe := make([]string, len(schema))
	for i := range probe {
		probe[i] = "probe"
	}
	sys.Predict(wym.Pair{Left: probe, Right: probe})
	return nil
}

// pairRequest is the JSON body of /predict and /explain, and one batch
// item.
type pairRequest struct {
	Left  []string `json:"left"`
	Right []string `json:"right"`
}

// predictResponse is the /predict reply.
type predictResponse struct {
	Match       bool    `json:"match"`
	Probability float64 `json:"probability"`
}

// sideError pinpoints which side of a pair has the wrong attribute
// count.
type sideError struct {
	Side string `json:"side"` // "left" or "right"
	Want int    `json:"want"`
	Got  int    `json:"got"`
}

// errorResponse is the structured error body for request failures.
type errorResponse struct {
	Error    string      `json:"error"`
	BadSides []sideError `json:"bad_sides,omitempty"`
}

// batchRequest is the /predict/batch body.
type batchRequest struct {
	Pairs []pairRequest `json:"pairs"`
}

// batchItem is one /predict/batch result: either a prediction or an
// item-level error, never both.
type batchItem struct {
	Match       *bool       `json:"match,omitempty"`
	Probability *float64    `json:"probability,omitempty"`
	Error       string      `json:"error,omitempty"`
	BadSides    []sideError `json:"bad_sides,omitempty"`
}

// batchResponse is the /predict/batch reply; Errors counts failed items.
type batchResponse struct {
	Results []batchItem `json:"results"`
	Errors  int         `json:"errors"`
}

// unitResponse is one decision unit in the /explain reply.
type unitResponse struct {
	Left      string  `json:"left,omitempty"`
	Right     string  `json:"right,omitempty"`
	Paired    bool    `json:"paired"`
	Attribute string  `json:"attribute"`
	Relevance float64 `json:"relevance"`
	Impact    float64 `json:"impact"`
}

// explainResponse is the /explain reply.
type explainResponse struct {
	Match       bool           `json:"match"`
	Probability float64        `json:"probability"`
	Units       []unitResponse `json:"units"`
}

// reloadRequest is the optional /admin/reload body; an omitted or empty
// path reloads the artifact the server is already pointed at.
type reloadRequest struct {
	Path string `json:"path"`
}

// reloadResponse reports a successful swap.
type reloadResponse struct {
	Status  string   `json:"status"`
	Path    string   `json:"path"`
	Model   string   `json:"model"`
	Schema  []string `json:"schema"`
	Reloads int64    `json:"reloads"`
}

// handleReadyz reports readiness plus what this replica is actually
// serving: every resident model's name, format, and artifact
// fingerprint — the router's health prober and operators key on it.
func (a *app) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if a.drainFn() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	sys := a.ref.Get()
	if sys == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ready",
		"model":   sys.ModelName(),
		"reloads": a.Reloads(),
		"models":  a.models.List(),
	})
}

// scopedHandler is a request handler bound to a resolved model: the
// registered route pattern (audit/metrics label), the registry name,
// and the entry to serve from.
type scopedHandler func(route, name string, e *modelEntry, w http.ResponseWriter, r *http.Request)

// defaultScoped binds a handler to the pinned default model.
func (a *app) defaultScoped(route string, h scopedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(route, defaultModelName, a.defaultEntry, w, r)
	}
}

// modelScoped resolves the {name} route segment against the registry
// and hands the request to the shared handler body; unknown names are
// a 404, never a panic.
func (a *app) modelScoped(route string, h scopedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		entry := a.models.Get(name)
		if entry == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
			return
		}
		entry.touch(time.Now())
		h(route, name, entry, w, r)
	}
}

func (a *app) predictWith(route, name string, e *modelEntry, w http.ResponseWriter, r *http.Request) {
	sys := e.System()
	start := time.Now()
	p, ok := decodePair(w, r, sys)
	if !ok {
		return
	}
	eng := sys.Engine()
	id := a.audit.requestID(w, r)
	if !a.audit.sample(route, id) {
		label, proba := eng.Predict(p)
		writeJSON(w, http.StatusOK, predictResponse{
			Match:       label == wym.Match,
			Probability: proba,
		})
		return
	}
	// Audited path: process and explain once, and answer from the
	// explanation itself — it carries the same prediction and probability
	// the matcher would return, at the cost of one scoring pass instead
	// of the two a separate PredictRecord + ExplainRecord would spend
	// (the scorer dominates both; see the PredictAudited bench gate).
	ex := eng.ExplainRecord(eng.Process(p))
	latency := time.Since(start)
	writeJSON(w, http.StatusOK, predictResponse{
		Match:       ex.Prediction == wym.Match,
		Probability: ex.Proba,
	})
	a.audit.record(route, id, name, e, sys, p, ex, latency)
}

// handlePredictBatch serves a batch with per-item error semantics: items
// with the wrong attribute count are rejected up front, and the rest run
// through Engine.PredictBatch, whose worker fan-out quarantines any item
// whose processing panics (that item fails alone, never the batch or the
// process). The batch runs under the request context, so a client
// disconnect or timeout stops the remaining items.
func (a *app) predictBatchWith(route, name string, e *modelEntry, w http.ResponseWriter, r *http.Request) {
	sys := e.System()
	start := time.Now()
	var req batchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no pairs")
		return
	}
	if len(req.Pairs) > a.opts.maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d pairs, limit is %d", len(req.Pairs), a.opts.maxBatch))
		return
	}
	resp := batchResponse{Results: make([]batchItem, len(req.Pairs))}
	var (
		pairs   []wym.Pair // arity-valid items, in request order
		indices []int      // their positions in the response
	)
	for i, pr := range req.Pairs {
		if bad := checkArity(sys, pr); len(bad) > 0 {
			resp.Results[i] = batchItem{Error: "wrong attribute count", BadSides: bad}
			resp.Errors++
			continue
		}
		pairs = append(pairs, wym.Pair{Left: pr.Left, Right: pr.Right})
		indices = append(indices, i)
	}
	id := a.audit.requestID(w, r)
	okItems := make([]bool, len(pairs)) // batch positions that produced a prediction
	for k, pred := range sys.Engine().PredictBatch(r.Context(), pairs) {
		i := indices[k]
		if pred.Err != "" {
			a.logger.Printf("batch item %d failed: %s", i, pred.Err)
			resp.Results[i] = batchItem{Error: "internal error: " + strings.TrimPrefix(pred.Err, "panic: ")}
			resp.Errors++
			continue
		}
		match := pred.Label == wym.Match
		proba := pred.Proba
		resp.Results[i] = batchItem{Match: &match, Probability: &proba}
		okItems[k] = true
	}
	latency := time.Since(start)
	writeJSON(w, http.StatusOK, resp)
	if id == "" {
		return
	}
	// Each batch item samples under its own derived ID (base#index), so
	// a sampled batch doesn't flood the log with every item. Sampled
	// items are re-explained after the response is written; the stored
	// latency is the whole batch's, which is what the client observed.
	eng := sys.Engine()
	for k, served := range okItems {
		if !served {
			continue
		}
		itemID := id + "#" + strconv.Itoa(indices[k])
		if !a.audit.sample(route, itemID) {
			continue
		}
		a.audit.record(route, itemID, name, e, sys, pairs[k], eng.Explain(pairs[k]), latency)
	}
}

func (a *app) explainWith(route, name string, e *modelEntry, w http.ResponseWriter, r *http.Request) {
	sys := e.System()
	start := time.Now()
	p, ok := decodePair(w, r, sys)
	if !ok {
		return
	}
	id := a.audit.requestID(w, r)
	ex := sys.Engine().Explain(p)
	latency := time.Since(start)
	resp := explainResponse{
		Match:       ex.Prediction == wym.Match,
		Probability: ex.Proba,
	}
	schema := sys.Schema()
	for _, u := range ex.Units {
		attr := ""
		if u.Attr >= 0 && u.Attr < len(schema) {
			attr = schema[u.Attr]
		}
		resp.Units = append(resp.Units, unitResponse{
			Left: u.Left, Right: u.Right,
			Paired:    u.Left != "" && u.Right != "",
			Attribute: attr,
			Relevance: u.Relevance,
			Impact:    u.Impact,
		})
	}
	writeJSON(w, http.StatusOK, resp)
	if a.audit.sample(route, id) {
		a.audit.record(route, id, name, e, sys, p, ex, latency)
	}
}

func (a *app) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(body) > 0 { // body is optional; empty means reload in place
		if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
			writeDecodeError(w, err)
			return
		}
	}
	path, err := a.reload(req.Path)
	if err != nil {
		a.logger.Printf("reload of %s failed, keeping current model: %v", path, err)
		writeError(w, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	sys := a.ref.Get()
	a.logger.Printf("reload: now serving %s (classifier %s)", path, sys.ModelName())
	writeJSON(w, http.StatusOK, reloadResponse{
		Status:  "ok",
		Path:    path,
		Model:   sys.ModelName(),
		Schema:  sys.Schema(),
		Reloads: a.Reloads(),
	})
}

// handleModelLoad loads (or hot-replaces) a named model from an
// artifact path. The same validate-then-swap rules as /admin/reload
// apply: a bad artifact never displaces a serving model.
func (a *app) handleModelLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req reloadRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "path is required")
		return
	}
	if err := validModelName(name); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	// reloadMu serializes this load against feedback ingestion: the
	// registry's onLoad replays the model's journal (Journal.All) and
	// publishes via ref.Set, both of which feedbackWith assumes cannot
	// interleave with its own Append+Set sequence.
	a.reloadMu.Lock()
	entry, err := a.models.Load(name, req.Path)
	a.reloadMu.Unlock()
	if err != nil {
		a.logger.Printf("load of model %s from %s failed: %v", name, req.Path, err)
		writeError(w, http.StatusInternalServerError, "load failed: "+err.Error())
		return
	}
	st := entry.status()
	a.observeModelLoad(st.Format, time.Since(start))
	a.logger.Printf("model %s: now serving %s (%s, %s)", name, st.Path, st.Format, st.Fingerprint)
	writeJSON(w, http.StatusOK, struct {
		Status string      `json:"status"`
		Model  modelStatus `json:"model"`
		Schema []string    `json:"schema"`
	}{Status: "ok", Model: st, Schema: entry.System().Schema()})
}

// handleModelUnload evicts a named model; the default is pinned.
func (a *app) handleModelUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Same serialization as handleModelLoad: an eviction must not land
	// in the middle of feedbackWith's apply-journal-swap sequence.
	a.reloadMu.Lock()
	err := a.models.Remove(name)
	a.reloadMu.Unlock()
	if err != nil {
		status := http.StatusNotFound
		if name == defaultModelName {
			status = http.StatusBadRequest
		}
		writeError(w, status, err.Error())
		return
	}
	a.logger.Printf("model %s unloaded", name)
	writeJSON(w, http.StatusOK, map[string]string{"status": "unloaded", "name": name})
}

// errEmptyBody distinguishes a missing body from malformed JSON.
var errEmptyBody = errors.New("empty request body")

// decodeStrict decodes exactly one JSON value from r into v: unknown
// fields and trailing garbage are errors, as is an empty body.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return errEmptyBody
		}
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// checkArity validates both sides against the model schema and reports
// each offending side.
func checkArity(sys *wym.System, req pairRequest) []sideError {
	n := len(sys.Schema())
	var bad []sideError
	if len(req.Left) != n {
		bad = append(bad, sideError{Side: "left", Want: n, Got: len(req.Left)})
	}
	if len(req.Right) != n {
		bad = append(bad, sideError{Side: "right", Want: n, Got: len(req.Right)})
	}
	return bad
}

// decodePair parses and validates a pair request; on failure it writes
// the error response and returns ok=false.
func decodePair(w http.ResponseWriter, r *http.Request, sys *wym.System) (wym.Pair, bool) {
	var req pairRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return wym.Pair{}, false
	}
	if bad := checkArity(sys, req); len(bad) > 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error:    fmt.Sprintf("wrong attribute count (schema %v)", sys.Schema()),
			BadSides: bad,
		})
		return wym.Pair{}, false
	}
	return wym.Pair{Left: req.Left, Right: req.Right}, true
}

// writeDecodeError maps body-decoding failures to statuses: an
// over-limit body is 413, everything else 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		return
	}
	if errors.Is(err, errEmptyBody) {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
}

// writeJSON delegates to serve.WriteJSON, which buffers the encoding so
// a marshal failure yields a clean 500 rather than a 200 status line
// with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	serve.WriteJSON(w, status, v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	serve.WriteError(w, status, msg)
}
