// Command wym-server serves a trained WYM matcher over HTTP: train once
// with `wym -save matcher.gob`, then serve predictions and decision-unit
// explanations as JSON.
//
// Usage:
//
//	wym-server -model matcher.gob -addr :8080
//
// Endpoints:
//
//	POST /predict  {"left": [...], "right": [...]}
//	    -> {"match": bool, "probability": float}
//	POST /explain  {"left": [...], "right": [...]}
//	    -> prediction plus the decision units with relevance and impact
//	GET  /healthz  -> 200 ok
//
// The left/right arrays hold one string per schema attribute, in the
// order the model was trained with (reported by GET /schema).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"wym"
)

func main() {
	var (
		modelPath = flag.String("model", "", "path to a system saved with wym -save")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "wym-server: -model is required")
		os.Exit(2)
	}
	sys, err := wym.LoadSystem(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wym-server:", err)
		os.Exit(1)
	}
	log.Printf("serving %s (classifier %s, schema %v) on %s",
		*modelPath, sys.ModelName(), sys.Schema(), *addr)
	log.Fatal(http.ListenAndServe(*addr, newHandler(sys)))
}

// pairRequest is the JSON body of /predict and /explain.
type pairRequest struct {
	Left  []string `json:"left"`
	Right []string `json:"right"`
}

// predictResponse is the /predict reply.
type predictResponse struct {
	Match       bool    `json:"match"`
	Probability float64 `json:"probability"`
}

// unitResponse is one decision unit in the /explain reply.
type unitResponse struct {
	Left      string  `json:"left,omitempty"`
	Right     string  `json:"right,omitempty"`
	Paired    bool    `json:"paired"`
	Attribute string  `json:"attribute"`
	Relevance float64 `json:"relevance"`
	Impact    float64 `json:"impact"`
}

// explainResponse is the /explain reply.
type explainResponse struct {
	Match       bool           `json:"match"`
	Probability float64        `json:"probability"`
	Units       []unitResponse `json:"units"`
}

// newHandler builds the HTTP mux over a loaded system.
func newHandler(sys *wym.System) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /schema", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sys.Schema())
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		p, ok := decodePair(w, r, sys)
		if !ok {
			return
		}
		label, proba := sys.Predict(p)
		writeJSON(w, http.StatusOK, predictResponse{
			Match:       label == wym.Match,
			Probability: proba,
		})
	})
	mux.HandleFunc("POST /explain", func(w http.ResponseWriter, r *http.Request) {
		p, ok := decodePair(w, r, sys)
		if !ok {
			return
		}
		ex := sys.Explain(p)
		resp := explainResponse{
			Match:       ex.Prediction == wym.Match,
			Probability: ex.Proba,
		}
		schema := sys.Schema()
		for _, u := range ex.Units {
			attr := ""
			if u.Attr >= 0 && u.Attr < len(schema) {
				attr = schema[u.Attr]
			}
			resp.Units = append(resp.Units, unitResponse{
				Left: u.Left, Right: u.Right,
				Paired:    u.Left != "" && u.Right != "",
				Attribute: attr,
				Relevance: u.Relevance,
				Impact:    u.Impact,
			})
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// decodePair parses and validates a pair request; on failure it writes the
// error response and returns ok=false.
func decodePair(w http.ResponseWriter, r *http.Request, sys *wym.System) (wym.Pair, bool) {
	var req pairRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return wym.Pair{}, false
	}
	n := len(sys.Schema())
	if len(req.Left) != n || len(req.Right) != n {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("left and right must each have %d attribute values (schema %v)",
				n, sys.Schema()))
		return wym.Pair{}, false
	}
	return wym.Pair{Left: req.Left, Right: req.Right}, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("wym-server: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
