package main

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"wym/internal/obs"
)

// scrape fetches the admin /metrics text and returns the body.
func scrape(t *testing.T, adminURL string) string {
	t.Helper()
	resp, err := http.Get(adminURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndToEnd drives the public surface (predicts, a bad
// request, a hot reload) and asserts the admin /metrics scrape reflects
// all of it: per-route request counts by status class, engine record
// counters that survive the model swap, and the reload counter.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	a := testApp(t, options{logger: log.New(io.Discard, "", 0), registry: reg})
	srv := httptest.NewServer(a.handler())
	defer srv.Close()
	admin := httptest.NewServer(a.adminHandler(true))
	defer admin.Close()

	sys := trained(t)
	good := pairRequest{Left: trainedEx.Left, Right: trainedEx.Right}
	for i := 0; i < 2; i++ {
		resp := post(t, srv.URL+"/predict", good)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status = %d", resp.StatusCode)
		}
	}
	resp := post(t, srv.URL+"/predict", pairRequest{Left: []string{"only-one"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad predict status = %d", resp.StatusCode)
	}

	// Hot reload from a saved artifact, then predict again: the engine
	// bundle must keep accumulating across the swap.
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	resp = post(t, srv.URL+"/admin/reload", reloadRequest{Path: path})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/predict", good)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload predict status = %d", resp.StatusCode)
	}

	text := scrape(t, admin.URL)
	for _, want := range []string{
		`wym_http_requests_total{route="/predict",code="2xx"} 3`,
		`wym_http_requests_total{route="/predict",code="4xx"} 1`,
		`wym_http_requests_total{route="/admin/reload",code="2xx"} 1`,
		`wym_engine_records_processed_total 3`,
		`wym_engine_predict_seconds_count 3`,
		`wym_server_reloads_total 1`,
		`wym_engine_inflight_records 0`,
		"# TYPE wym_http_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}

	// The JSON rendering is served from the same registry.
	jresp, err := http.Get(admin.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	jbody, err := io.ReadAll(jresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jresp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("json Content-Type = %q", jresp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(jbody), `"wym_server_reloads_total"`) {
		t.Fatalf("json scrape missing reload counter:\n%s", jbody)
	}
}

// TestAdminPprofOptIn checks the pprof handlers are present only when
// enabled.
func TestAdminPprofOptIn(t *testing.T) {
	a := testApp(t, quietOptions())

	on := httptest.NewServer(a.adminHandler(true))
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof-on cmdline status = %d, want 200", resp.StatusCode)
	}

	off := httptest.NewServer(a.adminHandler(false))
	defer off.Close()
	resp, err = http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof-off cmdline status = %d, want 404", resp.StatusCode)
	}

	// /metrics is always on the admin surface, never the public one.
	mresp, err := http.Get(off.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("admin /metrics status = %d", mresp.StatusCode)
	}
	pub := httptest.NewServer(a.handler())
	defer pub.Close()
	presp, err := http.Get(pub.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Fatalf("public /metrics status = %d, want 404", presp.StatusCode)
	}
}
