package main

// Tests for the multi-model registry: named-model routes, admin
// load/unload, readyz model reporting, and the LRU bytes budget.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// loadModel loads the artifact under name through the admin route and
// fails the test on a non-2xx answer.
func loadModel(t *testing.T, srv *httptest.Server, name, path string) {
	t.Helper()
	resp := post(t, srv.URL+"/admin/models/"+name+"/load", reloadRequest{Path: path})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("load %s: status = %d, body %s", name, resp.StatusCode, body)
	}
}

func TestModelScopedPredict(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	loadModel(t, srv, "alt", savedModel(t))

	for _, name := range []string{"default", "alt"} {
		resp, err := http.Post(srv.URL+"/models/"+name+"/predict",
			"application/json", strings.NewReader(goodBody(t)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model %s predict status = %d, body %s", name, resp.StatusCode, body)
		}
		var out struct {
			Match       *bool   `json:"match"`
			Probability float64 `json:"probability"`
		}
		if err := json.Unmarshal(body, &out); err != nil || out.Match == nil {
			t.Fatalf("model %s predict body %s (err %v)", name, body, err)
		}
	}

	// The scoped batch and explain routes resolve the same way.
	pair := json.RawMessage(goodBody(t))
	resp := post(t, srv.URL+"/models/alt/predict/batch",
		map[string]any{"pairs": []json.RawMessage{pair, pair}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scoped batch status = %d", resp.StatusCode)
	}
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil || len(batch.Results) != 2 {
		t.Fatalf("scoped batch results = %d (err %v), want 2", len(batch.Results), err)
	}
}

func TestModelScopedUnknownModelIs404(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/models/nope/predict",
		"application/json", strings.NewReader(goodBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("unknown model")) {
		t.Fatalf("unknown model body %s should name the problem", body)
	}
}

func TestAdminModelLoadValidation(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()

	// Missing path.
	resp := post(t, srv.URL+"/admin/models/alt/load", map[string]any{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty path status = %d, want 400", resp.StatusCode)
	}
	// Bad artifact path: load fails, registry unchanged.
	resp = post(t, srv.URL+"/admin/models/alt/load", reloadRequest{Path: "/nonexistent/m.gob"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad path status = %d, want 500", resp.StatusCode)
	}
	r2, err := http.Post(srv.URL+"/models/alt/predict",
		"application/json", strings.NewReader(goodBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("failed load left a resident model (predict status %d)", r2.StatusCode)
	}
}

func TestAdminModelUnload(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	loadModel(t, srv, "alt", savedModel(t))

	del := func(name string) int {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/admin/models/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := del("alt"); got != http.StatusOK {
		t.Fatalf("unload alt status = %d, want 200", got)
	}
	if got := del("alt"); got != http.StatusNotFound {
		t.Fatalf("unload of absent model status = %d, want 404", got)
	}
	if got := del("default"); got != http.StatusBadRequest {
		t.Fatalf("unload of pinned default status = %d, want 400", got)
	}
	resp, err := http.Post(srv.URL+"/models/alt/predict",
		"application/json", strings.NewReader(goodBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict after unload status = %d, want 404", resp.StatusCode)
	}
}

func TestReadyzReportsResidentModels(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	loadModel(t, srv, "alt", savedModel(t))

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready struct {
		Status string        `json:"status"`
		Models []modelStatus `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if len(ready.Models) != 2 {
		t.Fatalf("readyz models = %+v, want default and alt", ready.Models)
	}
	// Sorted by name: alt before default.
	if ready.Models[0].Name != "alt" || ready.Models[1].Name != "default" {
		t.Fatalf("readyz model names = %q, %q", ready.Models[0].Name, ready.Models[1].Name)
	}
	alt := ready.Models[0]
	if alt.Format == "" {
		t.Fatal("readyz model entry has no format")
	}
	if !strings.HasPrefix(alt.Fingerprint, "fnv64:") {
		t.Fatalf("readyz fingerprint = %q, want an fnv64 hash", alt.Fingerprint)
	}
}

func TestModelsListingAndHotReloadBumpsReloads(t *testing.T) {
	srv, _ := server(t)
	defer srv.Close()
	path := savedModel(t)
	loadModel(t, srv, "alt", path)
	loadModel(t, srv, "alt", path) // hot reload of the same name

	resp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []modelStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("GET /models = %+v, want 2 entries", list)
	}
	if list[0].Name != "alt" || list[0].Reloads != 2 {
		t.Fatalf("alt entry = %+v, want 2 reloads", list[0])
	}
	if list[0].Path != path {
		t.Fatalf("alt path = %q, want %q", list[0].Path, path)
	}
}

func TestValidModelName(t *testing.T) {
	for _, name := range []string{"a", "default", "v2.1_prod-eu"} {
		if err := validModelName(name); err != nil {
			t.Fatalf("validModelName(%q) = %v, want nil", name, err)
		}
	}
	bad := []string{"", "a/b", `a\b`, "a b", "a\tb", "a\nb", strings.Repeat("x", 129)}
	for _, name := range bad {
		if err := validModelName(name); err == nil {
			t.Fatalf("validModelName(%q) accepted a bad name", name)
		}
	}
}

func TestRegistryEvictsLRUOverBytesBudget(t *testing.T) {
	path := savedModel(t)
	size := fileBytes(path)
	if size <= 0 {
		t.Fatalf("savedModel size = %d", size)
	}

	// Budget fits the default plus two extras, not three.
	reg := newModelRegistry(3*size, nil, nil)
	clock := time.Unix(1000, 0)
	reg.now = func() time.Time { clock = clock.Add(time.Second); return clock }

	sys := trained(t)
	reg.Install(defaultModelName, path, sys)
	for _, name := range []string{"a", "b", "c"} {
		if _, err := reg.Load(name, path); err != nil {
			t.Fatal(err)
		}
	}
	// "a" is the least recently used extra; loading "c" evicted it.
	if reg.Get("a") != nil {
		t.Fatal("LRU model survived past the bytes budget")
	}
	for _, name := range []string{defaultModelName, "b", "c"} {
		if reg.Get(name) == nil {
			t.Fatalf("model %s was evicted, want resident", name)
		}
	}

	// Touching "b" then loading "d" makes "c" the LRU victim.
	reg.Get("b").touch(reg.now())
	if _, err := reg.Load("d", path); err != nil {
		t.Fatal(err)
	}
	if reg.Get("c") != nil {
		t.Fatal("recently-touched model evicted before the LRU one")
	}
	if reg.Get("b") == nil || reg.Get("d") == nil {
		t.Fatal("eviction removed the wrong model")
	}
	// The pinned default never goes, even under an impossible budget.
	reg.maxBytes = 1
	if _, err := reg.Load("e", path); err != nil {
		t.Fatal(err)
	}
	if reg.Get(defaultModelName) == nil {
		t.Fatal("default model was evicted")
	}
	if reg.Get("e") == nil {
		t.Fatal("just-loaded model was evicted by its own load")
	}
	if got := len(reg.List()); got != 2 {
		t.Fatalf("registry holds %d models under a 1-byte budget, want default + newest", got)
	}
}
