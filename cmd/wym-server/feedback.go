package main

// Online-learning surface: POST feedback labels into the serving model.
//
// Durability order (the crash-safety contract the label-race e2e pins):
// validate -> ApplyFeedback on the current snapshot -> journal
// Append+fsync -> ModelRef.Set -> ack. A batch is acknowledged only
// after it is durable AND visible; a crash between Append and Set is
// repaired at the next startup, because every model (re)load re-folds
// its journal before publishing (registry onLoad). The served state is
// therefore always artifact ⊕ journal, and replaying the journal after
// a SIGKILL reproduces the pre-crash feedback fingerprint exactly.
//
// Feedback is enabled by -feedback-dir; each model journals into the
// subdirectory named after it (names are path-segment-safe by
// validModelName). Without the flag the endpoints report 503: accepting
// a label that would not survive a restart would silently violate the
// contract above.

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"wym"
	"wym/internal/obs"
)

// feedbackStore owns the per-model label journals. Journals open lazily
// (first replay or first POST) and stay open for the process lifetime.
type feedbackStore struct {
	dir string // root directory; "" = feedback disabled

	mu       sync.Mutex
	journals map[string]*wym.FeedbackJournal
}

func newFeedbackStore(dir string) *feedbackStore {
	return &feedbackStore{dir: dir, journals: make(map[string]*wym.FeedbackJournal)}
}

func (f *feedbackStore) enabled() bool { return f.dir != "" }

// journal returns (opening if needed) the journal for a model name.
func (f *feedbackStore) journal(name string) (*wym.FeedbackJournal, error) {
	if !f.enabled() {
		return nil, fmt.Errorf("feedback is disabled (start with -feedback-dir)")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if j, ok := f.journals[name]; ok {
		return j, nil
	}
	j, _, err := wym.OpenFeedbackJournal(filepath.Join(f.dir, name))
	if err != nil {
		return nil, err
	}
	f.journals[name] = j
	return j, nil
}

// Close releases every open journal (shutdown tidiness; appended
// batches are already durable).
func (f *feedbackStore) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, j := range f.journals {
		j.Close()
	}
}

// replayFeedback re-folds a model's journal into a freshly loaded
// system. With no journal (or an empty one) the system passes through
// unchanged; with labels, the returned system carries them all, so its
// feedback fingerprint matches whatever a previous process generation
// acked.
func (a *app) replayFeedback(name string, sys *wym.System) (*wym.System, error) {
	if !a.feedback.enabled() {
		return sys, nil
	}
	j, err := a.feedback.journal(name)
	if err != nil {
		return nil, err
	}
	labels := j.All()
	if len(labels) == 0 {
		return sys, nil
	}
	upd, err := sys.ApplyFeedback(context.Background(), labels)
	if err != nil {
		return nil, fmt.Errorf("replaying %d journaled feedback labels: %w", len(labels), err)
	}
	a.logger.Printf("model %s: replayed %d feedback labels (fingerprint %s, threshold %.4f)",
		name, len(labels), upd.FeedbackFingerprint(), upd.DecisionThreshold())
	return upd, nil
}

// feedbackLabel is one adjudicated pair in the request body.
type feedbackLabel struct {
	Left  []string `json:"left"`
	Right []string `json:"right"`
	Match bool     `json:"match"`
}

// feedbackRequest is the POST /admin/feedback body.
type feedbackRequest struct {
	Labels []feedbackLabel `json:"labels"`
}

// feedbackResponse acknowledges a durably applied batch.
type feedbackResponse struct {
	Status      string  `json:"status"`
	Applied     int     `json:"applied"`
	LabelsTotal int     `json:"labels_total"`
	Fingerprint string  `json:"fingerprint"`
	Threshold   float64 `json:"threshold"`
}

// feedbackStatus is the GET /admin/feedback reply.
type feedbackStatus struct {
	Enabled          bool    `json:"enabled"`
	SupportsFeedback bool    `json:"supports_feedback"`
	LabelsTotal      int     `json:"labels_total"`
	Fingerprint      string  `json:"fingerprint,omitempty"`
	Threshold        float64 `json:"threshold"`
	JournalDir       string  `json:"journal_dir,omitempty"`
	JournalRecords   int     `json:"journal_records,omitempty"`
}

func (a *app) handleFeedback(w http.ResponseWriter, r *http.Request) {
	a.feedbackWith(defaultModelName, w, r)
}

func (a *app) handleModelFeedback(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if a.models.Get(name) == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return
	}
	a.feedbackWith(name, w, r)
}

// feedbackWith runs the full durability sequence for one batch. It
// serializes against model reloads (reloadMu): a reload re-folds the
// journal, so whichever order the two land in, the published model
// carries every acked label.
func (a *app) feedbackWith(name string, w http.ResponseWriter, r *http.Request) {
	if !a.feedback.enabled() {
		writeError(w, http.StatusServiceUnavailable, "feedback is disabled (start with -feedback-dir)")
		return
	}
	var req feedbackRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Labels) == 0 {
		writeError(w, http.StatusBadRequest, "no labels in batch")
		return
	}

	a.reloadMu.Lock()
	defer a.reloadMu.Unlock()
	entry := a.models.Get(name)
	if entry == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return
	}
	sys := entry.System()
	labels := make([]wym.FeedbackLabel, len(req.Labels))
	for i, lb := range req.Labels {
		if bad := checkArity(sys, pairRequest{Left: lb.Left, Right: lb.Right}); len(bad) > 0 {
			a.fbRejected.Inc()
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error:    fmt.Sprintf("label %d: wrong attribute count (schema %v)", i, sys.Schema()),
				BadSides: bad,
			})
			return
		}
		labels[i] = wym.FeedbackLabel{Left: lb.Left, Right: lb.Right, Match: lb.Match}
	}
	if !sys.SupportsFeedback() {
		a.fbRejected.Inc()
		writeError(w, http.StatusConflict,
			fmt.Sprintf("model %q (%s) cannot accept feedback", name, sys.Format()))
		return
	}
	j, err := a.feedback.journal(name)
	if err != nil {
		a.fbRejected.Inc()
		writeError(w, http.StatusInternalServerError, "feedback journal: "+err.Error())
		return
	}

	start := time.Now()
	upd, err := sys.ApplyFeedback(r.Context(), labels)
	if err != nil {
		a.fbRejected.Inc()
		writeError(w, http.StatusUnprocessableEntity, "apply failed: "+err.Error())
		return
	}
	// Durable before visible: a batch the journal did not accept must
	// not serve, or a restart would silently lose it.
	if err := j.Append(labels); err != nil {
		a.fbRejected.Inc()
		a.logger.Printf("feedback journal append failed for model %s: %v", name, err)
		writeError(w, http.StatusInternalServerError, "journal append failed: "+err.Error())
		return
	}
	entry.ref.Set(upd)
	took := time.Since(start)

	a.fbLabels.Add(uint64(len(labels)))
	a.fbApplies.Inc()
	a.fbApplySeconds.Observe(took.Seconds())
	a.logger.Printf("model %s: applied %d feedback labels in %v (total %d, fingerprint %s, threshold %.4f)",
		name, len(labels), took.Round(time.Millisecond), upd.FeedbackCount(),
		upd.FeedbackFingerprint(), upd.DecisionThreshold())
	writeJSON(w, http.StatusOK, feedbackResponse{
		Status:      "ok",
		Applied:     len(labels),
		LabelsTotal: upd.FeedbackCount(),
		Fingerprint: upd.FeedbackFingerprint(),
		Threshold:   upd.DecisionThreshold(),
	})
}

func (a *app) handleFeedbackStatus(w http.ResponseWriter, r *http.Request) {
	a.feedbackStatusWith(defaultModelName, w, r)
}

func (a *app) handleModelFeedbackStatus(w http.ResponseWriter, r *http.Request) {
	a.feedbackStatusWith(r.PathValue("name"), w, r)
}

func (a *app) feedbackStatusWith(name string, w http.ResponseWriter, _ *http.Request) {
	entry := a.models.Get(name)
	if entry == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return
	}
	sys := entry.System()
	st := feedbackStatus{
		Enabled:          a.feedback.enabled(),
		SupportsFeedback: a.feedback.enabled() && sys.SupportsFeedback(),
		LabelsTotal:      sys.FeedbackCount(),
		Fingerprint:      sys.FeedbackFingerprint(),
		Threshold:        sys.DecisionThreshold(),
	}
	if a.feedback.enabled() {
		// Report the journal only if already open; opening here would
		// create directories on a read-only status probe.
		a.feedback.mu.Lock()
		if j, ok := a.feedback.journals[name]; ok {
			st.JournalDir, st.JournalRecords = j.Dir(), j.Records()
		}
		a.feedback.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, st)
}

// registerFeedbackMetrics creates the wym_feedback_* series on the
// process registry (all zero until the first batch, so dashboards see
// the series immediately).
func (a *app) registerFeedbackMetrics() {
	a.fbLabels = a.reg.Counter("wym_feedback_labels_total",
		"Feedback labels durably journaled and folded into a serving model.")
	a.fbApplies = a.reg.Counter("wym_feedback_applies_total",
		"Successful feedback batches (apply + journal + swap).")
	a.fbRejected = a.reg.Counter("wym_feedback_rejected_total",
		"Feedback batches rejected by validation, apply, or journal errors.")
	a.fbApplySeconds = a.reg.Histogram("wym_feedback_apply_seconds",
		"Latency of ApplyFeedback + journal fsync + swap per accepted batch.",
		obs.DefaultLatencyBuckets)
}
