// Package wym is an intrinsically interpretable entity-matching system, a
// Go reproduction of "An Intrinsically Interpretable Entity Matching
// System" (Baraldi et al., EDBT 2023).
//
// WYM (Why do You Match?) decides whether two entity descriptions refer to
// the same real-world entity and explains each decision through *decision
// units*: pairs of semantically similar tokens drawn from the two
// descriptions, or single tokens with no counterpart. Every unit carries a
// relevance score (its isolated pull toward match or non-match) and an
// impact score (its contribution to the actual decision); positive impacts
// push toward match, negative toward non-match.
//
// Quick start:
//
//	train, valid, test := dataset.MustSplit(0.6, 0.2, 1)
//	sys, err := wym.Train(train, valid, wym.DefaultConfig())
//	if err != nil { ... }
//	label, proba := sys.Predict(test.Pairs[0])
//	explanation := sys.Explain(test.Pairs[0])
//	for _, u := range explanation.Units {
//		fmt.Printf("(%s, %s) impact %+.3f\n", u.Left, u.Right, u.Impact)
//	}
//
// The architecture follows the paper's template: a decision-unit generator
// (BERT-substitute embeddings + relaxed stable marriage, Algorithm 1), a
// relevance scorer (feed-forward network over symmetric unit features,
// Equations 2-3), and an explainable matcher (statistical feature
// engineering + a pool of ten interpretable classifiers with an invertible
// coefficient-to-impact transformation). See DESIGN.md for the full system
// inventory and the substitutions made for the offline Go build.
package wym

import (
	"context"
	"io"
	"sync/atomic"

	"wym/internal/blocking"
	"wym/internal/core"
	"wym/internal/data"
	"wym/internal/datagen"
	"wym/internal/explain"
	"wym/internal/feedback"
	"wym/internal/obs"
	"wym/internal/pipeline"
	"wym/internal/rules"
	"wym/internal/units"
)

// Model format identifiers reported by System.Format: "gob" for the
// training/interchange format, "arena-f32"/"arena-int8" for the mmap-able
// serving format. LoadSystem auto-detects the format from the file.
const (
	FormatGob       = core.FormatGob
	FormatArenaF32  = core.FormatArenaF32
	FormatArenaInt8 = core.FormatArenaInt8
)

// Core types, re-exported from the implementation packages. The aliases
// keep a single source of truth while giving downstream users a flat API.
type (
	// System is a fitted WYM matcher.
	System = core.System
	// Config assembles a WYM variant; start from DefaultConfig.
	Config = core.Config
	// Explanation is the interpretable output for one record pair.
	Explanation = pipeline.Explanation
	// UnitExplanation is one decision unit with its scores.
	UnitExplanation = pipeline.UnitExplanation
	// Timing is the training-pipeline breakdown.
	Timing = core.Timing
	// ArenaOptions configures System.SaveArenaFile, the compiler from a
	// fitted system to the flat zero-copy .wyma serving format.
	ArenaOptions = core.ArenaOptions

	// Engine is the pluggable pipeline engine every instantiation of the
	// paper's architecture template (WYM itself, the simulated baselines)
	// serves through. A fitted System exposes its engine via
	// System.Engine(); all batch and single-pair prediction paths run
	// through it.
	Engine = pipeline.Engine
	// ProcessedRecord is a record pair after unit generation: tokens,
	// contextual embeddings and decision units. Callers that need both a
	// prediction and an explanation for the same pair should Process once
	// and reuse the record — see System.Process below.
	ProcessedRecord = pipeline.Record
	// BatchPrediction is one item's outcome in Engine.PredictBatch: a
	// label and probability, or the quarantined item's error.
	BatchPrediction = pipeline.Prediction

	// Dataset is a named collection of labeled record pairs.
	Dataset = data.Dataset
	// Pair is one EM record: two entity descriptions and a label.
	Pair = data.Pair
	// Entity is one entity description (one value per schema attribute).
	Entity = data.Entity
	// Schema is the ordered attribute names shared by both descriptions.
	Schema = data.Schema

	// Thresholds are the θ/η/ε similarity thresholds of Algorithm 1.
	Thresholds = units.Thresholds

	// DatasetProfile describes a synthetic benchmark dataset.
	DatasetProfile = datagen.Profile
)

// Label values.
const (
	NonMatch = data.NonMatch
	Match    = data.Match
)

// Embedding variants for Config.Embedding (Table 4 of the paper).
const (
	EmbeddingSBERT          = core.SBERT
	EmbeddingBERTPretrained = core.BERTPretrained
	EmbeddingBERTFinetuned  = core.BERTFinetuned
	EmbeddingJaroWinkler    = core.JaroWinkler
)

// Scorer variants for Config.Scorer.
const (
	RelevanceScorerNN     = core.ScorerNN
	RelevanceScorerBinary = core.ScorerBinary
	RelevanceScorerCosine = core.ScorerCosine
)

// Feature-space variants for Config.Features.
const (
	FeaturesFull       = core.FeaturesFull
	FeaturesSimplified = core.FeaturesSimplified
)

// PaperThresholds are the values used in the paper's experiments:
// θ = 0.6, η = 0.65, ε = 0.7.
var PaperThresholds = units.PaperThresholds

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Train fits the full WYM pipeline on the training split, selecting the
// explainable classifier by F1 on the validation split.
func Train(train, valid *Dataset, cfg Config) (*System, error) {
	return core.Train(train, valid, cfg)
}

// Fault-tolerant training: the pipeline honors context cancellation at
// stage boundaries (and inside its long loops), persists integrity-checked
// stage checkpoints, and quarantines records whose processing panics
// instead of failing the run.
type (
	// TrainOptions configures checkpointing and resume; see TrainWithOptions.
	TrainOptions = core.TrainOptions
	// TrainReport describes resumed stages, rejected checkpoints and
	// quarantined records of a TrainWithOptions run.
	TrainReport = core.TrainReport
	// TrainStage identifies one pipeline stage (embeddings, units, scorer,
	// features, model).
	TrainStage = core.Stage
	// TrainRecordError is one record pair quarantined during training.
	TrainRecordError = core.RecordError
	// Tracer collects named wall-clock spans; pass one in
	// TrainOptions.Tracer to watch stage timings live, or render a loaded
	// system's spans with Import + Table.
	Tracer = obs.Tracer
	// Span is one completed named span of a traced run.
	Span = obs.Span
)

// NewTracer returns an empty span tracer for TrainOptions.Tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// Pipeline stages, in execution order.
const (
	StageEmbeddings = core.StageEmbeddings
	StageUnits      = core.StageUnits
	StageScorer     = core.StageScorer
	StageFeatures   = core.StageFeatures
	StageModel      = core.StageModel
)

// TrainContext is Train honoring a context: cancel it (e.g. from a signal
// handler) and the run stops cleanly at the next stage boundary.
func TrainContext(ctx context.Context, train, valid *Dataset, cfg Config) (*System, error) {
	return core.TrainContext(ctx, train, valid, cfg)
}

// TrainWithOptions is the fault-tolerant trainer: TrainContext plus stage
// checkpoints written to opts.CheckpointDir and, with opts.Resume, resume
// from the longest valid checkpoint prefix. A resumed run produces
// predictions byte-identical to an uninterrupted run with the same seed.
func TrainWithOptions(ctx context.Context, train, valid *Dataset, cfg Config, opts TrainOptions) (*System, *TrainReport, error) {
	return core.TrainWithOptions(ctx, train, valid, cfg, opts)
}

// LoadDataset reads a dataset from a Magellan-style CSV file
// (label, left_*, right_* columns).
func LoadDataset(path string) (*Dataset, error) { return data.LoadFile(path) }

// Lenient ingest: quarantine malformed CSV rows instead of failing on the
// first one.
type (
	// LoadOptions configures LoadDatasetLenient (strict mode, error budget).
	LoadOptions = data.LoadOptions
	// LoadReport summarizes a lenient load, listing every quarantined row.
	LoadReport = data.LoadReport
	// RowError is one quarantined input row with its line number.
	RowError = data.RowError
	// RowErrorKind classifies why a row was quarantined.
	RowErrorKind = data.RowErrorKind
)

// ErrBudgetExceeded wraps the abort when quarantined rows exceed the
// configured error budget.
var ErrBudgetExceeded = data.ErrBudgetExceeded

// LoadDatasetLenient reads a Magellan-style CSV file, quarantining
// malformed rows (wrong arity, invalid labels, empty entities, duplicates,
// CSV syntax errors) into the report instead of aborting, up to
// opts.ErrorBudget of them. The report is non-nil whenever the header
// parsed, even when an error is returned.
func LoadDatasetLenient(path string, opts LoadOptions) (*Dataset, *LoadReport, error) {
	return data.LoadFileLenient(path, opts)
}

// SaveDataset writes a dataset as CSV.
func SaveDataset(path string, d *Dataset) error { return data.SaveFile(path, d) }

// BenchmarkProfiles returns the 12 synthetic dataset profiles mirroring
// the paper's Magellan benchmark (Table 2).
func BenchmarkProfiles() []DatasetProfile { return datagen.Benchmark() }

// GenerateDataset materializes a benchmark profile at the given scale
// (1.0 = the paper's Table-2 sizes).
func GenerateDataset(p DatasetProfile, scale float64) *Dataset {
	return datagen.Generate(p, scale)
}

// DatasetByKey generates one benchmark dataset by key (e.g. "S-AG").
// It returns false when the key is unknown.
func DatasetByKey(key string, scale float64) (*Dataset, bool) {
	p, ok := datagen.ProfileByKey(key)
	if !ok {
		return nil, false
	}
	return datagen.Generate(p, scale), true
}

// ScenarioKeys lists the stress-scenario packs beyond the Magellan
// reproduction: "unicode", "hetero-schema", "drift-temporal",
// "customer360". Each ships with a committed quality floor
// (testdata/scenario_floors.json) enforced by a regression test.
func ScenarioKeys() []string { return datagen.ScenarioKeys() }

// GenerateScenario materializes one scenario pack with n labeled pairs,
// deterministic in (key, n, seed). It errors on an unknown key.
func GenerateScenario(key string, n int, seed int64) (*Dataset, error) {
	return datagen.GenerateScenario(key, n, seed)
}

// Attribution is one token's weight in a post-hoc explanation (positive
// pushes toward match). See ExplainLIME.
type Attribution = explain.Attribution

// ExplainLIME computes a post-hoc LIME explanation of an arbitrary matcher
// probability function on one record pair, for comparison against WYM's
// intrinsic impact scores (§5.2 of the paper). samples controls the number
// of perturbations (100 is a reasonable default).
func ExplainLIME(proba func(Pair) float64, p Pair, samples int, seed int64) []Attribution {
	cfg := explain.DefaultConfig()
	if samples > 0 {
		cfg.Samples = samples
	}
	cfg.Seed = seed
	return explain.LIME(explain.ProbaFunc(proba), p, cfg)
}

// Rule engine: the paper's future-work extension — external knowledge as
// rules over decision units (§6). Rules inspect a record's explanation and
// may override the model's decision with a documented reason.
type (
	// Rule evaluates one explained record; see the built-in rules.
	Rule = rules.Rule
	// RuleEngine applies rules in order; the first firing rule wins.
	RuleEngine = rules.Engine
	// RuleDecision is the engine's final, possibly overridden decision.
	RuleDecision = rules.Decision

	// CodeConflictRule forces non-match on disagreeing product codes.
	CodeConflictRule = rules.CodeConflict
	// CodeAgreementRule forces match on shared codes when the model is
	// undecided.
	CodeAgreementRule = rules.CodeAgreement
	// AttributeMismatchRule forces non-match when a key attribute pairs
	// no tokens.
	AttributeMismatchRule = rules.AttributeMismatch
	// MinPairedRatioRule forces non-match below a paired-unit ratio.
	MinPairedRatioRule = rules.MinPairedRatio
)

// NewRuleEngine builds an engine over the given rules.
func NewRuleEngine(rs ...Rule) *RuleEngine { return rules.NewEngine(rs...) }

// PredictWithRules explains the pair, applies the rule engine, and returns
// the final decision together with the explanation that produced it.
func PredictWithRules(sys *System, engine *RuleEngine, p Pair) (RuleDecision, Explanation) {
	ex := sys.Explain(p)
	return engine.Apply(p, ex), ex
}

// Blocking: candidate generation for table-scale matching. The benchmark
// ships pre-paired records, but deployments must first cut the cross
// product of two entity tables down to candidate pairs.
type (
	// BlockingConfig tunes the token-based blocker.
	BlockingConfig = blocking.Config
	// BlockingCandidate is one generated candidate pair.
	BlockingCandidate = blocking.Candidate
	// BlockingStats summarizes a blocking run.
	BlockingStats = blocking.Stats
)

// DefaultBlockingConfig returns practical blocker defaults.
func DefaultBlockingConfig() BlockingConfig { return blocking.DefaultConfig() }

// BlockCandidates blocks two entity tables (each a slice of entities over
// the same schema) and returns candidate pairs. An invalid configuration
// returns an error wrapping blocking.ErrInvalidConfig.
func BlockCandidates(left, right []Entity, cfg BlockingConfig) ([]BlockingCandidate, error) {
	return blocking.Candidates(left, right, cfg)
}

// BlockPairs materializes candidates as unlabeled record pairs ready for
// System.Predict.
func BlockPairs(left, right []Entity, cands []BlockingCandidate) []Pair {
	return blocking.Pairs(left, right, cands)
}

// BlockingSummary computes the comparison-reduction statistics of a run.
func BlockingSummary(left, right []Entity, cands []BlockingCandidate) BlockingStats {
	return blocking.Summarize(left, right, cands)
}

// Table is a plain entity table (rows over a schema) — the input side of
// full-table matching, as opposed to the pre-paired Dataset.
type Table = data.Table

// LoadTable reads an entity table from a CSV file whose header names the
// attributes.
func LoadTable(path string) (*Table, error) { return data.LoadTableFile(path) }

// SaveTable writes an entity table to path as CSV.
func SaveTable(path string, t *Table) error { return data.SaveTableFile(path, t) }

// LoadTruth reads a ground-truth match-pair list ("left,right" header,
// 0-based row indices) for scoring a matching run.
func LoadTruth(path string) ([][2]int, error) { return data.LoadTruthFile(path) }

// SaveTruth writes a ground-truth match-pair list to path.
func SaveTruth(path string, pairs [][2]int) error { return data.SaveTruthFile(path, pairs) }

// LoadSystem restores a fitted system saved with System.SaveFile. Train
// once, serve from many processes:
//
//	sys.SaveFile("matcher.gob")
//	sys, err := wym.LoadSystem("matcher.gob")
//
// Decode failures (truncated files, garbage, a gob of the wrong type)
// come back wrapped with the file path.
func LoadSystem(path string) (*System, error) { return core.LoadFile(path) }

// Load restores a fitted system from a reader holding the gob stream
// System.Save wrote.
func Load(r io.Reader) (*System, error) { return core.Load(r) }

// ModelRef is a reload-safe handle to the System currently being
// served. Readers call Get per request and keep using the snapshot they
// got; a reloader validates a replacement off to the side and publishes
// it with Set in one atomic step. In-flight requests finish on the
// model they started with — no locks on the predict path, safe under
// the race detector with concurrent Get/Set.
type ModelRef struct {
	p atomic.Pointer[System]
}

// NewModelRef builds a handle serving sys (which may be nil until the
// first successful load).
func NewModelRef(sys *System) *ModelRef {
	r := &ModelRef{}
	r.p.Store(sys)
	return r
}

// Get returns the current model. Callers must not assume a second Get
// returns the same snapshot.
func (r *ModelRef) Get() *System { return r.p.Load() }

// Set atomically publishes sys as the current model and returns the
// one it replaced.
func (r *ModelRef) Set(sys *System) (old *System) { return r.p.Swap(sys) }

// Online learning (DESIGN §13): a fitted system folds human-adjudicated
// pair labels in after training — System.ApplyFeedback derives
// contrastive token pairs, recompiles the fine-tuned embedding map, and
// recalibrates the decision threshold, returning a new System (the
// receiver keeps serving; swap via ModelRef.Set). The update is a pure
// function of the accumulated label multiset, so replaying a journal
// reproduces a served model fingerprint-for-fingerprint after a crash.
type (
	// FeedbackLabel is one adjudicated record pair: the two entity
	// descriptions and whether they match.
	FeedbackLabel = feedback.Label
	// FeedbackJournal is the append-only fsync'd label log
	// (directory of CRC-checked segments) behind `wym label` and the
	// server's feedback endpoints.
	FeedbackJournal = feedback.Journal
	// FeedbackSelector ranks candidate pairs for active labeling by
	// margin (closeness of the match probability to the decision
	// threshold).
	FeedbackSelector = feedback.Selector
	// FeedbackRanked is one ranked candidate from FeedbackSelector.
	FeedbackRanked = feedback.Ranked
)

// OpenFeedbackJournal opens (creating if needed) the label journal in
// dir, repairing a torn tail, and returns it with every durable label
// in append order.
func OpenFeedbackJournal(dir string) (*FeedbackJournal, []FeedbackLabel, error) {
	return feedback.Open(dir)
}

// TuneResult is one grid point of a threshold sweep; see TuneThresholds.
type TuneResult = core.TuneResult

// TuneThresholds trains one system per θ/η/ε triple (core's default grid
// when grid is nil) and returns the system with the best validation F1
// together with the full sweep — the paper's "experimentally determined
// thresholds" automated.
func TuneThresholds(train, valid *Dataset, cfg Config, grid []Thresholds) (*System, []TuneResult, error) {
	return core.TuneThresholds(train, valid, cfg, grid)
}

// AttributeImpact aggregates an explanation's unit impacts per schema
// attribute, giving the CERTA-style attribute-level view. (One
// implementation lives in the pipeline layer; core and this facade both
// alias it.)
func AttributeImpact(schema Schema, ex Explanation) []float64 {
	return pipeline.AttributeImpact(schema, ex)
}

// Record-level API: a System also exposes the processing step on its own,
// so callers can tokenize, embed and discover units once per pair and
// reuse the result —
//
//	rec := sys.Process(pair)            // or sys.ProcessAllContext(ctx, ds)
//	label, proba := sys.PredictRecord(rec)
//	ex := sys.ExplainRecord(rec)        // no second tokenize/embed pass
//
// Predict followed by Explain on the same pair costs two full processing
// passes; Process + PredictRecord + ExplainRecord costs one. The batch
// form, ProcessAllContext, additionally quarantines records whose
// processing panics (nil entry + RecordError) instead of failing the
// batch, and honors context cancellation.
