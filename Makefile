GO ?= go

.PHONY: check build vet test race bench bench-json

## check: the pre-merge gate — vet, build, race-enabled tests, short benchmarks.
check: vet build race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# cmd/wym alone needs ~10 min under the race detector on one core.
race:
	$(GO) test -race -timeout 30m ./...

## bench: short benchmark pass over the hot-path packages (sanity, not a
## baseline — use bench-json for comparable numbers).
bench:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=10x \
		./internal/units ./internal/embed ./internal/assignment ./internal/nn

## bench-json: regenerate the perf snapshot (see BENCH_baseline.json).
bench-json:
	$(GO) run ./cmd/benchmark -bench-json BENCH_baseline.json
