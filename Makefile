GO ?= go

.PHONY: check build vet fmt-check test race serve-race train-race model-race router-race match-race label-race audit-race fuzz-smoke bench bench-json bench-guard cover

## check: the pre-merge gate — formatting, vet (must be clean for every
## package, internal/serve included), build, the serving-layer race gate,
## the fault-tolerant-training race gate, the model-format race gate, the
## fleet-routing chaos gate, the crash-safe-matching race gate, the
## online-learning crash gate, the audit-trail crash gate, a fuzz smoke
## pass over CSV ingest, arena parsing, blocking, the feedback journal,
## and the audit log, full race-enabled tests, short benchmarks, and the
## coverage ratchet.
check: fmt-check vet build serve-race train-race model-race router-race match-race label-race audit-race fuzz-smoke race bench cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt-check: fail if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# cmd/wym alone needs ~10 min under the race detector on one core.
race:
	$(GO) test -race -timeout 30m ./...

## serve-race: the serving stack's lifecycle and fault-injection tests
## under the race detector — concurrent predict vs hot reload, load
## shedding, SIGTERM draining. Fast enough to run on every change.
serve-race:
	$(GO) test -race -timeout 10m ./internal/serve/... ./cmd/wym-server/...

## train-race: the fault-tolerant-training suite under the race detector —
## cancellation at every stage boundary, checkpoint resume (byte-identical
## golden predictions), checkpoint integrity rejection, per-record worker
## panic quarantine, and the CLI's checkpoint/resume/lenient-ingest paths.
train-race:
	$(GO) test -race -timeout 20m \
		-run 'TestResume|TestTrainCancellation|TestTrainQuarantines|TestProcessAllContext|TestCheckpoint|TestRunCheckpoint|TestRunCanceled|TestRunLenient' \
		./internal/core ./cmd/wym

## model-race: the zero-copy model-format suite under the race detector —
## concurrent arena mmap hot reload vs batch prediction (use-after-munmap
## would segfault here), FastNN scorer determinism under concurrency, and
## the arena/gob prediction-equivalence goldens.
model-race:
	$(GO) test -race -timeout 15m \
		-run 'TestArenaHotReloadUnderLoad|TestModelRefSwapDuringPredictAll|TestFastNNConcurrentScore|TestArenaPredictionEquivalence|TestLoadFileCorruptArenas' \
		./cmd/wym-server ./internal/relevance ./internal/core

## router-race: the fleet-routing chaos suites under the race detector —
## the ring/breaker/backoff/pool unit tests, the stub-fleet chaos harness
## (replica kill mid-load, slow-replica timeout, panic recovery, rolling
## reload — zero client-visible 5xx throughout), and the real-3-replica
## fleet e2e in cmd/wym-server.
router-race:
	$(GO) test -race -timeout 10m \
		./internal/cluster/... ./cmd/wym-router/...
	$(GO) test -race -timeout 10m -run 'TestFleet' ./cmd/wym-server

## match-race: the crash-safe table-matching suite under the race
## detector — mid-job SIGKILL with byte-identical resume, SIGTERM
## draining the in-flight chunk, corrupt-segment recomputation, and
## manifest fingerprint rejection.
match-race:
	$(GO) test -race -timeout 20m \
		-run 'TestMatchKillResume|TestMatchSigtermDrains|TestInterruptAndResume|TestResumeRecomputes|TestResumeRejects|TestRetryOnceOnQuarantine' \
		./cmd/wym ./internal/matchjob

## label-race: the online-learning suite under the race detector — the
## ApplyFeedback order-invariance goldens, the active-labeling quality
## gate, the serving feedback endpoints (apply + journal + atomic swap
## vs concurrent predict load), startup journal replay, and the SIGKILL
## crash e2e (fingerprint-identical replay after an unclean death).
label-race:
	$(GO) test -race -timeout 30m \
		-run 'TestApplyFeedback|TestSelector|TestFeedback|TestJournal|TestLabel|TestGoldenLabelAuto' \
		./internal/feedback ./internal/core ./cmd/wym-server ./cmd/wym

## audit-race: the prediction-audit-trail suite under the race detector —
## the append/rotate/retention property tests, the deterministic-sampler
## properties, exact counter/record accounting through a live audited
## server, the mid-load SIGKILL recovery e2e, the audit CLI goldens, and
## the audit-show/live-explain parity gate.
audit-race:
	$(GO) test -race -timeout 15m \
		-run 'TestAudit|TestGoldenAudit' \
		./internal/audit ./cmd/wym-server ./cmd/wym

## fuzz-smoke: a short native-fuzz pass over the untrusted-input
## surfaces — both CSV ingest readers, the arena (.wyma) parser, the
## blocking candidate generator, the feedback journal reader, and the
## audit log reader must never panic on arbitrary bytes.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzReadCSV$$' -fuzztime=5s ./internal/data
	$(GO) test -fuzz='^FuzzReadCSVLenient$$' -fuzztime=5s ./internal/data
	$(GO) test -fuzz='^FuzzLoadArena$$' -fuzztime=5s ./internal/arena
	$(GO) test -fuzz='^FuzzBlockingCandidates$$' -fuzztime=5s ./internal/blocking
	$(GO) test -fuzz='^FuzzFeedbackJournal$$' -fuzztime=5s ./internal/feedback
	$(GO) test -fuzz='^FuzzAuditLog$$' -fuzztime=5s ./internal/audit

## bench: short benchmark pass over the hot-path packages (sanity, not a
## baseline — use bench-json for comparable numbers).
bench:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=10x \
		./internal/units ./internal/embed ./internal/assignment ./internal/nn

## bench-json: regenerate the perf snapshot (see BENCH_baseline.json).
bench-json:
	$(GO) run ./cmd/benchmark -bench-json BENCH_baseline.json

## bench-guard: re-time the hot pipeline paths and fail if any regressed
## more than 25% (ns/op or allocs/op) against the committed baseline.
bench-guard:
	$(GO) run ./cmd/benchmark -bench-guard BENCH_baseline.json

## cover: run the full test suite with coverage and enforce the ratchet —
## total statement coverage must not drop below the committed floor in
## COVERAGE_floor. Raise the floor (never lower it) when new tests push
## coverage up; that is the ratchet.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	floor=$$(cat COVERAGE_floor); \
	echo "coverage: $$total% (floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage ratchet: total $$total% fell below the committed floor $$floor%"; exit 1; }
