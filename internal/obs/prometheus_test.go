package obs

// The Prometheus text exposition format emitted by WritePrometheus is a
// wire contract: external scrapers parse it. These tests pin the format
// with a standalone parser — rendering a registry and re-reading it must
// reproduce the registered values exactly (round trip), including under
// concurrent writes (where per-scrape invariants replace exact values).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promFamily is one parsed metric family with its metadata lines.
type promFamily struct {
	name    string
	typ     string
	help    string
	samples []promSample
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parsePrometheus is a strict parser for the subset of the text format
// the registry emits. It fails the test on any malformed line, on
// samples appearing before their TYPE, and on sample names that do not
// belong to a declared family.
func parsePrometheus(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var current *promFamily
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP line %q", ln+1, line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			current = &promFamily{name: name, help: help}
			fams[name] = current
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if current == nil || current.name != fields[0] {
				t.Fatalf("line %d: TYPE %s without preceding HELP", ln+1, fields[0])
			}
			current.typ = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			s := parseSampleLine(t, ln+1, line)
			fam := familyOf(fams, s.name)
			if fam == nil || fam.typ == "" {
				t.Fatalf("line %d: sample %s before its TYPE declaration", ln+1, s.name)
			}
			fam.samples = append(fam.samples, s)
		}
	}
	return fams
}

// familyOf resolves a sample name to its family, stripping the histogram
// suffixes.
func familyOf(fams map[string]*promFamily, name string) *promFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, ok := fams[base]; ok && f.typ == "histogram" {
				return f
			}
		}
	}
	return nil
}

// parseSampleLine parses `name{label="value",...} value` with the text
// format's label escaping.
func parseSampleLine(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: malformed sample %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !promNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", ln, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=\"")
			if eq < 0 {
				t.Fatalf("line %d: malformed labels in %q", ln, line)
			}
			lname := rest[:eq]
			if !promNameRe.MatchString(lname) {
				t.Fatalf("line %d: bad label name %q", ln, lname)
			}
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: unknown escape \\%c", ln, rest[1])
					}
					rest = rest[2:]
					continue
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			s.labels[lname] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = strings.TrimPrefix(rest, "}")
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(strings.TrimSuffix(rest, " "), 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value in %q: %v", ln, line, err)
	}
	s.value = v
	return s
}

// sampleBy finds the one sample matching the name and label subset.
func sampleBy(t *testing.T, f *promFamily, name string, labels map[string]string) promSample {
	t.Helper()
	var found []promSample
	for _, s := range f.samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			found = append(found, s)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one sample %s%v, got %d", name, labels, len(found))
	}
	return found[0]
}

// TestPrometheusRoundTrip pins the exposition format: a registry with
// every metric kind (and escaping-hostile label values) renders to text
// that the strict parser reads back to the exact registered values.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_requests_total", "Requests served.", L("route", "/predict"), L("code", "2xx")).Add(42)
	reg.Counter("rt_requests_total", "Requests served.", L("route", "/predict"), L("code", "5xx")).Add(3)
	reg.Gauge("rt_inflight", "In-flight requests.").Set(7)
	reg.Counter("rt_escapes_total", "Escaping test.", L("path", "a\\b\"c\nd")).Inc()
	h := reg.Histogram("rt_latency_seconds", "Latency.", []float64{0.1, 1, 10}, L("route", "/predict"))
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())

	req := fams["rt_requests_total"]
	if req == nil || req.typ != "counter" {
		t.Fatalf("rt_requests_total family = %+v", req)
	}
	if v := sampleBy(t, req, "rt_requests_total", map[string]string{"code": "2xx"}).value; v != 42 {
		t.Fatalf("2xx = %g, want 42", v)
	}
	if v := sampleBy(t, req, "rt_requests_total", map[string]string{"code": "5xx"}).value; v != 3 {
		t.Fatalf("5xx = %g, want 3", v)
	}
	if v := sampleBy(t, fams["rt_inflight"], "rt_inflight", nil).value; v != 7 {
		t.Fatalf("gauge = %g, want 7", v)
	}
	esc := sampleBy(t, fams["rt_escapes_total"], "rt_escapes_total", nil)
	if esc.labels["path"] != "a\\b\"c\nd" {
		t.Fatalf("escaped label round-tripped to %q", esc.labels["path"])
	}

	hist := fams["rt_latency_seconds"]
	if hist == nil || hist.typ != "histogram" {
		t.Fatalf("histogram family = %+v", hist)
	}
	wantCum := map[string]float64{"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
	var prev float64
	for _, le := range []string{"0.1", "1", "10", "+Inf"} {
		s := sampleBy(t, hist, "rt_latency_seconds_bucket", map[string]string{"le": le})
		if s.value != wantCum[le] {
			t.Fatalf("bucket le=%s = %g, want %g", le, s.value, wantCum[le])
		}
		if s.value < prev {
			t.Fatalf("bucket le=%s not cumulative: %g < %g", le, s.value, prev)
		}
		prev = s.value
	}
	if v := sampleBy(t, hist, "rt_latency_seconds_count", nil).value; v != 5 {
		t.Fatalf("_count = %g, want 5", v)
	}
	if v := sampleBy(t, hist, "rt_latency_seconds_sum", nil).value; math.Abs(v-56.05) > 1e-9 {
		t.Fatalf("_sum = %g, want 56.05", v)
	}

	// The JSON rendering reports the same values.
	var js bytes.Buffer
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var fjs []FamilyJSON
	if err := json.Unmarshal(js.Bytes(), &fjs); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	byName := map[string]FamilyJSON{}
	for _, f := range fjs {
		byName[f.Name] = f
	}
	if f := byName["rt_latency_seconds"]; len(f.Series) != 1 || *f.Series[0].Count != 5 {
		t.Fatalf("JSON histogram = %+v", f)
	}
	if f := byName["rt_inflight"]; *f.Series[0].Value != 7 {
		t.Fatalf("JSON gauge = %+v", f)
	}
}

// TestRegistryConcurrentScrapes is the registry's own race suite:
// parallel writers hammer a counter, a gauge and a histogram while
// concurrent scrapers render and parse the text format, asserting that
// counters are monotonic scrape-over-scrape and that the histogram's
// +Inf cumulative bucket equals its _count sample in every scrape.
func TestRegistryConcurrentScrapes(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 2000
		scrapers   = 4
		scrapeIter = 40
	)
	reg := NewRegistry()
	ctr := reg.Counter("cc_ops_total", "ops")
	gauge := reg.Gauge("cc_inflight", "inflight")
	hist := reg.Histogram("cc_latency_seconds", "lat", []float64{0.001, 0.01, 0.1, 1})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				gauge.Inc()
				ctr.Inc()
				hist.Observe(float64(i%2000) / 1000.0)
				gauge.Dec()
			}
		}(w)
	}
	errs := make(chan error, scrapers)
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastCtr, lastCount float64
			for i := 0; i < scrapeIter; i++ {
				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					errs <- err
					return
				}
				fams := parsePrometheus(t, buf.String())
				c := sampleBy(t, fams["cc_ops_total"], "cc_ops_total", nil).value
				if c < lastCtr {
					errs <- fmt.Errorf("counter went backwards: %g -> %g", lastCtr, c)
					return
				}
				lastCtr = c
				count := sampleBy(t, fams["cc_latency_seconds"], "cc_latency_seconds_count", nil).value
				inf := sampleBy(t, fams["cc_latency_seconds"], "cc_latency_seconds_bucket",
					map[string]string{"le": "+Inf"}).value
				if count != inf {
					errs <- fmt.Errorf("histogram count %g != +Inf cumulative bucket %g", count, inf)
					return
				}
				if count < lastCount {
					errs <- fmt.Errorf("histogram count went backwards: %g -> %g", lastCount, count)
					return
				}
				lastCount = count
				// JSON scrapes race the same atomics.
				if err := reg.WriteJSON(&bytes.Buffer{}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	const total = writers * perWriter
	if got := ctr.Value(); got != total {
		t.Fatalf("final counter = %d, want %d", got, total)
	}
	snap := hist.Snapshot()
	if snap.Count != total {
		t.Fatalf("final histogram count = %d, want %d", snap.Count, total)
	}
	var bucketSum uint64
	for _, c := range snap.Counts {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
	if got := gauge.Value(); got != 0 {
		t.Fatalf("final gauge = %d, want 0", got)
	}
}
