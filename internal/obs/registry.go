package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value dimension of a metric series. Order matters
// for series identity: register a series with its labels in a fixed
// order (the helpers below always do).
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metric kinds, doubling as Prometheus TYPE strings.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance of a metric family; exactly one of the
// value fields is set, per the family kind.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name string
	help string
	kind string

	mu     sync.Mutex
	bounds []float64          // histogram families: the shared bucket layout
	series map[string]*series // by label signature
	order  []string           // label signatures in registration order
}

// Registry holds metric families and renders them. Registration is
// memoized: asking for the same name+labels twice returns the same
// metric, so call sites can re-register cheaply instead of threading
// metric handles around. Registering one name with two different kinds
// (or histogram bucket layouts) panics — that is a programming error.
//
// The zero Registry is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName pins metric and label names to the Prometheus charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// signature renders the label set as its series key (and its final
// Prometheus form, minus histogram le merging).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getFamily finds or creates a family, enforcing kind consistency.
func (r *Registry) getFamily(name, help, kind string) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// getSeries finds or creates a labeled series within a family; build
// constructs the metric on first registration.
func (f *family) getSeries(labels []Label, build func() *series) *series {
	for _, l := range labels {
		if !validName(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
	}
	key := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = build()
		s.labels = append([]Label(nil), labels...)
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, kindCounter)
	return f.getSeries(labels, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, kindGauge)
	return f.getSeries(labels, func() *series { return &series{g: &Gauge{}} }).g
}

// Histogram registers (or finds) a histogram series. Every series of one
// family shares the same bucket bounds; registering the same name with a
// different layout panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.getFamily(name, help, kindHistogram)
	f.mu.Lock()
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
	} else if len(f.bounds) != len(bounds) || !equalBounds(f.bounds, bounds) {
		f.mu.Unlock()
		panic("obs: histogram " + name + " re-registered with different buckets")
	}
	f.mu.Unlock()
	return f.getSeries(labels, func() *series { return &series{h: NewHistogram(bounds)} }).h
}

func equalBounds(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedFamilies snapshots the family list in name order (deterministic
// scrape output) and each family's series in registration order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// snapshotSeries copies one family's series handles under its lock.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.series[key])
	}
	f.mu.Unlock()
	return out
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per family,
// then its series; histograms expand into cumulative _bucket series with
// le labels, plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.snapshotSeries() {
			sig := signature(s.labels)
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", sig, "", strconv.FormatUint(s.c.Value(), 10))
			case kindGauge:
				writeSample(&b, f.name, "", sig, "", strconv.FormatInt(s.g.Value(), 10))
			case kindHistogram:
				snap := s.h.Snapshot()
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatFloat(snap.Bounds[i])
					}
					writeSample(&b, f.name, "_bucket", sig, `le="`+le+`"`, strconv.FormatUint(cum, 10))
				}
				writeSample(&b, f.name, "_sum", sig, "", formatFloat(snap.Sum))
				writeSample(&b, f.name, "_count", sig, "", strconv.FormatUint(snap.Count, 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one sample line, merging the series labels with an
// optional extra label (the histogram le).
func writeSample(b *strings.Builder, name, suffix, sig, extra, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if sig != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		if sig != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// JSON rendering: one object per family, series with resolved labels,
// histograms with derived quantiles — the shape the benchmark snapshots
// and dashboards consume.

// SeriesJSON is one series in the JSON rendering.
type SeriesJSON struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`

	Count   *uint64   `json:"count,omitempty"`
	Sum     *float64  `json:"sum,omitempty"`
	P50     *float64  `json:"p50,omitempty"`
	P95     *float64  `json:"p95,omitempty"`
	P99     *float64  `json:"p99,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// FamilyJSON is one metric family in the JSON rendering.
type FamilyJSON struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []SeriesJSON `json:"series"`
}

// Snapshot renders the registry as JSON-ready family descriptors, in
// name order.
func (r *Registry) Snapshot() []FamilyJSON {
	var out []FamilyJSON
	for _, f := range r.sortedFamilies() {
		fj := FamilyJSON{Name: f.name, Type: f.kind, Help: f.help}
		for _, s := range f.snapshotSeries() {
			sj := SeriesJSON{}
			if len(s.labels) > 0 {
				sj.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					sj.Labels[l.Name] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				v := float64(s.c.Value())
				sj.Value = &v
			case kindGauge:
				v := float64(s.g.Value())
				sj.Value = &v
			case kindHistogram:
				snap := s.h.Snapshot()
				p50, p95, p99 := snap.Quantile(0.50), snap.Quantile(0.95), snap.Quantile(0.99)
				sj.Count, sj.Sum = &snap.Count, &snap.Sum
				sj.P50, sj.P95, sj.P99 = &p50, &p95, &p99
				sj.Bounds, sj.Buckets = snap.Bounds, snap.Counts
			}
			fj.Series = append(fj.Series, sj)
		}
		out = append(out, fj)
	}
	return out
}

// WriteJSON renders the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry over HTTP: Prometheus text format by
// default, JSON with ?format=json. This is the GET /metrics endpoint of
// the admin surface.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
