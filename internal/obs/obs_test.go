package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Inc()
	g.Add(10)
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}

	// Nil receivers must be safe: optional instrumentation sites rely on it.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	nc.Add(2)
	ng.Inc()
	ng.Dec()
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil metrics should read zero")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	want := []uint64{2, 1, 1, 1} // le=1: {0.5, 1}; le=2: {1.5}; le=4: {3}; +Inf: {100}
	for i, c := range snap.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, c, want[i], snap.Counts)
		}
	}
	if got := snap.Sum; math.Abs(got-106) > 1e-9 {
		t.Fatalf("sum = %g, want 106", got)
	}
	// Median rank 2.5 lands in the first bucket (cumulative 2 < 2.5 <= 3).
	if q := h.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %g, want in (1, 2]", q)
	}
	// The tail quantile clamps to the last finite bound.
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %g, want 4 (clamped)", q)
	}
	if q := (&Histogram{}).Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty-histogram quantile = %g, want 0", q)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryMemoization(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", L("route", "/a"))
	b := reg.Counter("x_total", "x", L("route", "/a"))
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	c := reg.Counter("x_total", "x", L("route", "/b"))
	if a == c {
		t.Fatal("different labels should return different counters")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		reg.Gauge("x_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bucket mismatch did not panic")
			}
		}()
		reg.Histogram("h_seconds", "h", []float64{1, 2})
		reg.Histogram("h_seconds", "h", []float64{1, 2, 3})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		reg.Counter("bad-name", "x")
	}()
}

func TestTracerTable(t *testing.T) {
	tr := NewTracer()
	done := tr.Start("embeddings/cooc")
	done()
	tr.Record(Span{Name: "units/train", Dur: 1500 * time.Microsecond})
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "embeddings/cooc" || spans[1].Name != "units/train" {
		t.Fatalf("spans = %+v", spans)
	}
	table := tr.Table()
	for _, want := range []string{"embeddings/cooc", "units/train", "total", "1.5ms"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// Rows are aligned: every line has the duration starting at the same
	// column family (two-space separator after the padded name).
	for _, line := range strings.Split(strings.TrimRight(table, "\n"), "\n") {
		if !strings.HasPrefix(line, "  ") {
			t.Fatalf("table row %q lost its indent", line)
		}
	}

	var nilTr *Tracer
	nilTr.Record(Span{Name: "x"})
	nilTr.Start("y")()
	nilTr.Import([]Span{{Name: "z"}})
	if nilTr.Table() != "" || nilTr.Spans() != nil {
		t.Fatal("nil tracer should be inert")
	}
}
