package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one completed named span of a traced run: a pipeline stage, a
// sub-stage, anything with a beginning and an end. Spans are plain data
// (exported fields, no behavior) so they gob-encode into checkpoint and
// model metadata.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// Tracer collects named spans in completion order. It is safe for
// concurrent use and nil-safe: every method no-ops on a nil *Tracer, so
// instrumented code paths need no guards when tracing is off.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start opens a span and returns the function that closes it. Typical
// use:
//
//	done := tr.Start("embeddings/cooc")
//	... stage work ...
//	done()
func (t *Tracer) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		t.Record(Span{Name: name, Start: start, Dur: time.Since(start)})
	}
}

// Record appends an already-measured span.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Import appends a batch of spans (e.g. restored from checkpoint
// metadata) in order.
func (t *Tracer) Import(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Table renders the spans as an aligned two-column wall-clock table with
// a trailing total row — the `wym train -v` stage-timing report. Spans
// render in completion order; durations are rounded to 10µs so the table
// stays readable without hiding sub-millisecond stages.
func (t *Tracer) Table() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	width := len("total")
	for _, s := range spans {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	var b strings.Builder
	var total time.Duration
	for _, s := range spans {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, s.Name, s.Dur.Round(10*time.Microsecond))
		total += s.Dur
	}
	fmt.Fprintf(&b, "  %-*s  %s\n", width, "total", total.Round(10*time.Microsecond))
	return b.String()
}
