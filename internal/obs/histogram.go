package obs

import (
	"sort"
)

// DefaultLatencyBuckets spans 10µs to 10s in a roughly logarithmic
// 1-2.5-5 progression — wide enough for both the per-record engine paths
// (tens of microseconds) and whole HTTP requests (milliseconds to
// seconds). Values are seconds, matching the Prometheus convention for
// *_seconds histograms.
var DefaultLatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf overflow bucket. Writes are lock-free atomics. The observation
// count is derived from the buckets at read time, so a concurrent scrape
// always sees count == sum of bucket counts — the invariant the registry
// tests pin.
type Histogram struct {
	bounds  []float64 // sorted ascending upper bounds; +Inf implicit
	buckets []Counter // len(bounds)+1, non-cumulative
	sum     atomicFloat
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be sorted strictly ascending and non-empty. Most callers want
// Registry.Histogram instead, which also registers the result.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be sorted strictly ascending")
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]Counter, len(bounds)+1),
	}
	return h
}

// Observe records one value. Nil-safe and safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) if none
	h.buckets[i].Inc()
	h.sum.add(v)
}

// Count returns the total number of observations, derived by summing the
// buckets so it is consistent with any concurrently rendered bucket view.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Value()
	}
	return n
}

// Sum returns the sum of all observed values. Under concurrent writes it
// may trail Count by in-flight observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// HistogramSnapshot is a point-in-time copy of a histogram: the upper
// bounds, the per-bucket (non-cumulative) counts with the +Inf overflow
// bucket last, the derived total count, and the value sum.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state. The snapshot's Count
// always equals the sum of its Counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		c := h.buckets[i].Value()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.value()
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the target bucket, mirroring
// Prometheus's histogram_quantile. Observations in the +Inf bucket clamp
// to the highest finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile estimates the q-th quantile from the snapshot; see
// Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp to the last finite bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		// Position of the target rank inside this bucket's count.
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}
