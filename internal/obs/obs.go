// Package obs is the runtime observability core of the system: atomic
// counters and gauges, fixed-bucket latency histograms with quantile
// estimation, a registry that renders both Prometheus text format and
// JSON, and a named-span stage tracer for long pipelines.
//
// The package is dependency-free (standard library only) and layer
// agnostic: the pipeline engine, the serving stack and the trainer each
// define their own metric bundles over these primitives. All write paths
// are lock-free atomics, so instrumenting a hot loop costs a handful of
// nanoseconds per record; scrapes read the same atomics without pausing
// writers.
//
// Not to be confused with internal/eval, which measures matching
// *quality* (F1, precision, recall, explanation sufficiency). This
// package measures the *runtime*: request rates, latencies, quarantine
// counts, stage timings.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and nil-safe, so
// optional instrumentation sites need no guards.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (in-flight requests, queue
// depths). The zero value is ready to use; all methods are safe for
// concurrent use and nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat accumulates a float64 sum with a CAS loop; histograms use
// it for their _sum series.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 {
	return math.Float64frombits(f.bits.Load())
}
