package audit

import "hash/fnv"

// Sampled reports whether the request with this ID is audited at the
// given sampling rate. The verdict is a pure function of (requestID,
// rate): FNV-64a of the ID mapped to [0,1) and compared against the
// rate. Properties the serving layer relies on:
//
//   - Deterministic across replicas: every server that sees the same
//     request ID makes the same sampling decision, so a fleet's audit
//     logs agree on which requests exist.
//   - Monotone in rate: a request sampled at rate r is sampled at every
//     r' >= r, so raising the rate only adds records.
//   - Uniform: over many distinct IDs the observed rate converges to
//     the configured rate.
func Sampled(requestID string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(requestID))
	// FNV alone is visibly biased on short sequential IDs; run the sum
	// through a 64-bit mix finalizer so the top bits are uniform.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	// Upper 53 bits -> an exact float64 in [0,1).
	u := float64(x>>11) / (1 << 53)
	return u < rate
}
