package audit

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Segment layout: numbered files (000000.wymaud, 000001.wymaud, …),
// each starting with an 8-byte magic and holding length-prefixed,
// CRC-32C-checked records — one gob-encoded Record each, framed with a
// fresh encoder so records are independently decodable.
//
// Crash model: appends are buffered and fsync'd on the flush interval
// (or per append with FlushEvery zero), so a crash loses at most the
// unflushed tail of the newest segment. Open repairs that tail by
// truncating back to the last whole record; a CRC or framing failure
// anywhere else is real corruption and fails the open. The tolerant
// reader (Scan) instead recovers the longest valid prefix of every
// segment — querying a log must work even when the writer would refuse
// it.

const (
	segmentMagic = "WYMAUD1\n"
	segmentExt   = ".wymaud"

	// recordHeaderLen is the framing overhead per record:
	// u32le payload length + u32le CRC-32C of the payload.
	recordHeaderLen = 8

	// maxRecordLen bounds a single record so a corrupt length prefix
	// cannot drive a huge allocation during replay. Audit records are a
	// pair of entities plus an explanation — a few KiB; 16 MiB is
	// generous.
	maxRecordLen = 16 << 20

	// DefaultSegmentBytes rotates segments at 8 MiB.
	DefaultSegmentBytes = 8 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks log damage that tail-truncation cannot repair: a bad
// magic, a segment sequence gap, or a CRC/framing failure before the
// final record of the final segment.
var ErrCorrupt = errors.New("audit: log corrupt")

// Options tunes a Log. The zero value is usable: default segment size,
// unbounded retention, and an fsync per append.
type Options struct {
	// SegmentBytes is the rotation threshold (default 8 MiB). A record
	// must fit a single segment; oversized appends are rejected.
	SegmentBytes int64
	// RetainBytes caps the log's total on-disk size (0 = unbounded).
	// At rotation, the oldest sealed segments are pruned until the
	// sealed total fits RetainBytes minus one full segment, so
	// sealed + active never exceeds the cap and the active segment is
	// never deleted. Must be at least 2*SegmentBytes when set.
	RetainBytes int64
	// FlushEvery batches fsyncs: appended records become durable at the
	// next interval tick, on rotation, on Sync, and on Close. Zero
	// flushes and fsyncs every append (the feedback journal's
	// discipline — right for tests and low-rate batch jobs, too slow
	// for serving).
	FlushEvery time.Duration
}

// Log is an append-only audit log writer. Append is safe for
// concurrent use.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File      // newest segment, append position at EOF
	w        *bufio.Writer // buffers appends between fsyncs
	seg      int           // index of the newest segment
	oldest   int           // index of the oldest retained segment
	segBytes int64         // bytes written to the newest segment
	sealed   map[int]int64 // sizes of sealed (rotated-out) segments
	dirty    bool          // buffered or unsynced bytes exist
	records  int64         // records appended this session

	done chan struct{} // closes the background flusher
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the audit log in dir, repairing a
// torn tail on the newest segment. Unlike the feedback journal, Open
// does not return the replayed records — audit logs are queried with
// Scan, not replayed into memory.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes == 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.SegmentBytes < int64(len(segmentMagic))+recordHeaderLen {
		return nil, fmt.Errorf("audit: segment limit %d too small", opt.SegmentBytes)
	}
	if opt.RetainBytes > 0 && opt.RetainBytes < 2*opt.SegmentBytes {
		return nil, fmt.Errorf("audit: retention cap %d must be at least two segments (%d)",
			opt.RetainBytes, 2*opt.SegmentBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, sealed: make(map[int]int64)}
	for i, seg := range segs {
		path := segmentPath(dir, seg)
		last := i == len(segs)-1
		if !last {
			st, err := os.Stat(path)
			if err != nil {
				return nil, err
			}
			// Sealed segments must be intact end to end; verify frames.
			if _, err := scanSegment(path, false, nil); err != nil {
				return nil, err
			}
			l.sealed[seg] = st.Size()
			continue
		}
		validLen, err := scanSegment(path, true, nil)
		if err != nil {
			return nil, err
		}
		// Repair the torn tail by truncating to the last whole record.
		// The truncation is fsync'd through the same handle later
		// appends use, so a second crash cannot resurrect torn bytes
		// under newly appended records.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.seg, l.segBytes = f, seg, validLen
	}
	if len(segs) == 0 {
		if err := l.startSegment(0); err != nil {
			return nil, err
		}
	} else {
		l.oldest = segs[0]
		l.w = bufio.NewWriter(l.f)
	}
	if opt.FlushEvery > 0 {
		l.done = make(chan struct{})
		l.wg.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// Append frames, checksums, and writes one record. With a flush
// interval configured the write is buffered — durable at the next tick,
// Sync, rotation, or Close; without one it is fsync'd before returning.
// Append never blocks on an interval fsync in progress for longer than
// the fsync itself (one mutex guards the log).
func (l *Log) Append(rec Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		return err
	}
	framed := int64(recordHeaderLen + payload.Len())
	if payload.Len() > maxRecordLen ||
		framed > l.opt.SegmentBytes-int64(len(segmentMagic)) {
		return fmt.Errorf("audit: record %q encodes to %d bytes, exceeds a segment", rec.RequestID, payload.Len())
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("audit: log closed")
	}
	if l.segBytes+framed > l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload.Bytes(), castagnoli))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload.Bytes()); err != nil {
		return err
	}
	l.segBytes += framed
	l.records++
	l.dirty = true
	if l.opt.FlushEvery <= 0 {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the active segment: when it
// returns nil, every previously acknowledged Append survives power
// loss. Batch jobs call it at chunk boundaries.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("audit: log closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// Records returns the number of records appended this session.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs, and releases the segment handle. The flusher
// goroutine (if any) is stopped first.
func (l *Log) Close() error {
	if l.done != nil {
		close(l.done)
		l.wg.Wait()
		l.done = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// flushLoop fsyncs dirty buffers every FlushEvery until Close.
func (l *Log) flushLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			l.mu.Lock()
			if l.f != nil {
				// A failed interval fsync leaves dirty set; the error
				// surfaces on the next Sync/Close or a later retry.
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// rotate seals the active segment (flush + fsync + close), starts the
// next one, and prunes sealed segments past the retention cap. Called
// with the mutex held.
func (l *Log) rotate() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed[l.seg] = l.segBytes
	if err := l.startSegment(l.seg + 1); err != nil {
		return err
	}
	return l.pruneLocked()
}

// pruneLocked deletes the oldest sealed segments until the sealed
// total fits RetainBytes minus one full segment — so sealed + active
// never exceeds the cap, whatever the active segment grows to. The
// active segment is never a candidate.
func (l *Log) pruneLocked() error {
	if l.opt.RetainBytes <= 0 {
		return nil
	}
	budget := l.opt.RetainBytes - l.opt.SegmentBytes
	for l.sealedTotalLocked() > budget && l.oldest < l.seg {
		if err := os.Remove(segmentPath(l.dir, l.oldest)); err != nil && !os.IsNotExist(err) {
			return err
		}
		delete(l.sealed, l.oldest)
		l.oldest++
	}
	return nil
}

func (l *Log) sealedTotalLocked() int64 {
	var total int64
	for _, n := range l.sealed {
		total += n
	}
	return total
}

func (l *Log) startSegment(seg int) error {
	f, err := os.OpenFile(segmentPath(l.dir, seg), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seg, l.segBytes = f, seg, int64(len(segmentMagic))
	l.w = bufio.NewWriter(f)
	l.dirty = false
	return nil
}

// syncDir fsyncs the directory so a freshly created segment file's
// directory entry is durable too.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func segmentPath(dir string, seg int) string {
	return filepath.Join(dir, fmt.Sprintf("%06d%s", seg, segmentExt))
}

// listSegments returns the segment indices in dir, ascending. The
// sequence must be contiguous but need not start at zero — retention
// pruning removes segments from the front.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != segmentExt {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "%06d"+segmentExt, &n); err != nil {
			return nil, fmt.Errorf("%w: unrecognized segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, fmt.Errorf("%w: segment sequence gap (%06d then %06d)", ErrCorrupt, segs[i-1], segs[i])
		}
	}
	return segs, nil
}

// scanSegment walks one segment's frames, calling fn (when non-nil) per
// decoded record, and returns the length of the valid prefix. With
// repairTail, a torn or corrupt tail is not an error — the valid length
// reports where to truncate; without it any damage is ErrCorrupt.
func scanSegment(path string, repairTail bool, fn func(Record) error) (validLen int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(raw) < len(segmentMagic) || string(raw[:len(segmentMagic)]) != segmentMagic {
		if repairTail && len(raw) < len(segmentMagic) && bytes.HasPrefix([]byte(segmentMagic), raw) {
			// Crash during segment creation: a partial magic is a torn
			// tail too. Repair to a valid empty segment.
			return repairEmptyMagic(path)
		}
		return 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	off := int64(len(segmentMagic))
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			return off, nil
		}
		rec, n, rerr := decodeRecord(rest)
		if rerr != nil {
			if repairTail {
				return off, nil
			}
			return 0, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, filepath.Base(path), off, rerr)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += n
	}
}

// repairEmptyMagic rewrites a segment whose magic itself was torn by a
// crash during creation: the file becomes a valid empty segment,
// fsync'd so a crash right after repair cannot resurrect the partial
// magic.
func repairEmptyMagic(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return int64(len(segmentMagic)), nil
}

// decodeRecord parses one framed record from the front of b, returning
// the record and the bytes consumed. Any shortfall, CRC mismatch, or
// gob failure is an error (the caller decides whether it is a
// repairable tail).
func decodeRecord(b []byte) (Record, int64, error) {
	var rec Record
	if len(b) < recordHeaderLen {
		return rec, 0, io.ErrUnexpectedEOF
	}
	plen := binary.LittleEndian.Uint32(b[0:])
	want := binary.LittleEndian.Uint32(b[4:])
	if plen > maxRecordLen {
		return rec, 0, fmt.Errorf("record length %d exceeds limit", plen)
	}
	if uint32(len(b)-recordHeaderLen) < plen {
		return rec, 0, io.ErrUnexpectedEOF
	}
	payload := b[recordHeaderLen : recordHeaderLen+int(plen)]
	if crc32.Checksum(payload, castagnoli) != want {
		return rec, 0, errors.New("crc mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return rec, 0, err
	}
	return rec, recordHeaderLen + int64(plen), nil
}
