package audit

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// randomRecord draws one record with adversarial strings (unicode,
// separators, empties) and a variable-length unit list.
func randomRecord(rng *rand.Rand, i int) Record {
	pool := []string{"sony", "café", "münchen", "молоко", "抹茶", "", "a,b\nc", strings.Repeat("x", 200)}
	pick := func() string { return pool[rng.Intn(len(pool))] }
	rec := Record{
		RequestID:    fmt.Sprintf("req-%06d", i),
		TimeNanos:    rng.Int63(),
		Route:        "/predict",
		Model:        "default",
		ArtifactFP:   fmt.Sprintf("fnv64:%016x", rng.Uint64()),
		FeedbackFP:   fmt.Sprintf("fnv64:%016x", rng.Uint64()),
		Left:         []string{pick(), pick(), pick()},
		Right:        []string{pick(), pick(), pick()},
		Prediction:   rng.Intn(2),
		Proba:        rng.Float64(),
		Threshold:    0.5,
		LatencyNanos: rng.Int63n(int64(time.Second)),
	}
	for u := rng.Intn(6); u > 0; u-- {
		rec.Units = append(rec.Units, Unit{
			Left: pick(), Right: pick(),
			Kind: rng.Intn(3), Attr: rng.Intn(4),
			Relevance: rng.Float64()*2 - 1, Impact: rng.Float64()*2 - 1,
		})
	}
	return rec
}

// TestAuditRoundTrip is the core property: every appended record reads
// back field-identical, across a close/reopen boundary.
func TestAuditRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var want []Record
	for i := 0; i < 60; i++ {
		rec := randomRecord(rng, i)
		if err := l.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, rec)
		if i == 29 { // reopen mid-stream: replay + append must compose
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if l, err = Open(dir, Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated != 0 {
		t.Fatalf("clean log scanned with %d truncated segments", stats.Truncated)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d diverged:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestAuditFlushBatching verifies the fsync-batching contract: with a
// long flush interval, appends stay buffered (invisible to a reader)
// until Sync makes them durable.
func TestAuditFlushBatching(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FlushEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{RequestID: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, _, _ := ReadAll(dir); len(got) != 0 {
		t.Fatalf("buffered records visible before flush: %d", len(got))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("after Sync read %d records, want 5", len(got))
	}
}

// TestAuditTornTailRepair simulates a crash mid-record: garbage or a
// partial frame at the tail is dropped on Open, everything before it
// survives, and the repaired log accepts new appends.
func TestAuditTornTailRepair(t *testing.T) {
	for _, tear := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"garbage-suffix", func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef) }},
		{"partial-record", func(b []byte) []byte { return b[:len(b)-3] }},
		{"partial-header", func(b []byte) []byte { return append(b, 0x10, 0x00) }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if err := l.Append(Record{RequestID: fmt.Sprintf("r%d", i)}); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			seg := segmentPath(dir, 0)
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tear.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			l, err = Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after torn tail: %v", err)
			}
			if err := l.Append(Record{RequestID: "post-repair"}); err != nil {
				t.Fatal(err)
			}
			l.Close()
			got, _, err := ReadAll(dir)
			if err != nil {
				t.Fatal(err)
			}
			var ids []string
			for _, r := range got {
				ids = append(ids, r.RequestID)
			}
			want := "r0 r1 r2 r3 post-repair"
			if tear.name == "partial-record" {
				want = "r0 r1 r2 post-repair"
			}
			if strings.Join(ids, " ") != want {
				t.Fatalf("recovered %q, want %q", strings.Join(ids, " "), want)
			}
		})
	}
}

// TestAuditCorruptMiddle: a bit flip in a sealed segment is
// unrepairable damage for the writer (ErrCorrupt — only the active
// tail may be torn), while the tolerant reader still recovers the
// longest valid prefix.
func TestAuditCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 512}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("p", 100)
	for i := 0; i < 12; i++ { // enough to seal segment 0 and move on
		if err := l.Append(Record{RequestID: fmt.Sprintf("r%d", i), Left: []string{payload}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	clean, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := segmentPath(dir, 0)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, opt); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("writer open on sealed-segment corruption: err=%v, want ErrCorrupt", err)
	}
	stats, err := Scan(dir, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", stats.Truncated)
	}
	if stats.Records == 0 || stats.Records >= len(clean) {
		t.Fatalf("recovered %d records, want a strict non-empty prefix of %d", stats.Records, len(clean))
	}
}

// TestAuditRotationRetention holds the retention invariants under a
// tiny segment limit: the on-disk total never exceeds the cap, the
// active (newest) segment is never deleted, and what survives is a
// contiguous suffix of what was appended.
func TestAuditRotationRetention(t *testing.T) {
	dir := t.TempDir()
	const segBytes, retain = 4096, 8192
	l, err := Open(dir, Options{SegmentBytes: segBytes, RetainBytes: retain})
	if err != nil {
		t.Fatal(err)
	}
	var appended []string
	payload := strings.Repeat("p", 150)
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("req-%06d", i)
		if err := l.Append(Record{RequestID: id, Left: []string{payload}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		appended = append(appended, id)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		newest := ""
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
			if e.Name() > newest {
				newest = e.Name()
			}
		}
		if total > retain {
			t.Fatalf("after append %d: on-disk total %d exceeds cap %d", i, total, retain)
		}
		if newest == "" {
			t.Fatalf("after append %d: active segment missing", i)
		}
	}
	l.Close()

	// Reopen must succeed on the pruned directory (first segment > 0).
	l, err = Open(dir, Options{SegmentBytes: segBytes, RetainBytes: retain})
	if err != nil {
		t.Fatalf("reopen pruned log: %v", err)
	}
	l.Close()

	got, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(appended) {
		t.Fatalf("retained %d of %d records; want a proper non-empty suffix", len(got), len(appended))
	}
	suffix := appended[len(appended)-len(got):]
	for i, r := range got {
		if r.RequestID != suffix[i] {
			t.Fatalf("retained record %d = %s, want suffix element %s", i, r.RequestID, suffix[i])
		}
	}
}

// TestAuditRetentionTooSmall: a cap under two segments is a config
// error, not a log that silently deletes its active segment.
func TestAuditRetentionTooSmall(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{SegmentBytes: 4096, RetainBytes: 4096}); err == nil {
		t.Fatal("Open accepted a retention cap smaller than two segments")
	}
}

// TestAuditOversizedRecord: a record that cannot fit one segment is
// rejected up front (the retention invariant depends on it).
func TestAuditOversizedRecord(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = l.Append(Record{RequestID: "big", Left: []string{strings.Repeat("x", 2048)}})
	if err == nil {
		t.Fatal("oversized record accepted")
	}
}

// TestAuditConcurrentAppend drives parallel appends through the flush
// loop — the serving configuration — and checks nothing is lost or torn.
func TestAuditConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(Record{RequestID: fmt.Sprintf("w%d-%d", w, i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*per || stats.Truncated != 0 {
		t.Fatalf("read %d records (%d truncated segments), want %d intact", len(got), stats.Truncated, workers*per)
	}
	if n := l.Records(); n != workers*per {
		t.Fatalf("Records() = %d, want %d", n, workers*per)
	}
}

// TestAuditSamplerProperties: determinism, rate monotonicity, and
// observed-rate convergence over 1e5 request IDs.
func TestAuditSamplerProperties(t *testing.T) {
	rates := []float64{0.1, 0.3, 0.5, 0.9}
	const n = 100000
	counts := make([]int, len(rates))
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("req-%d", i)
		prev := false
		for ri := range rates { // ascending rates: sampled set must only grow
			s := Sampled(id, rates[ri])
			if s != Sampled(id, rates[ri]) {
				t.Fatalf("verdict for %q at rate %g is unstable", id, rates[ri])
			}
			if prev && !s {
				t.Fatalf("monotonicity violated for %q: sampled at %g but not %g", id, rates[ri-1], rates[ri])
			}
			prev = s
			if s {
				counts[ri]++
			}
		}
	}
	for ri, rate := range rates {
		observed := float64(counts[ri]) / n
		if diff := observed - rate; diff < -0.02 || diff > 0.02 {
			t.Fatalf("rate %g observed %.4f over %d ids (tolerance 0.02)", rate, observed, n)
		}
	}
	if Sampled("anything", 0) {
		t.Fatal("rate 0 sampled a request")
	}
	if !Sampled("anything", 1) {
		t.Fatal("rate 1 skipped a request")
	}
}

// TestAuditExplanationRoundTrip: the compact unit form converts to and
// from pipeline.Explanation without loss.
func TestAuditExplanationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rec := randomRecord(rng, 0)
	ex := rec.Explanation()
	if ex.Prediction != rec.Prediction || ex.Proba != rec.Proba || len(ex.Units) != len(rec.Units) {
		t.Fatalf("Explanation() lost fields: %+v vs %+v", ex, rec)
	}
	back := CompactUnits(ex)
	if !reflect.DeepEqual(back, rec.Units) {
		t.Fatalf("CompactUnits round trip diverged:\n got %+v\nwant %+v", back, rec.Units)
	}
}

// TestAuditScanMissingDir: scanning a directory that does not exist is
// an error (the CLI reports it), not a panic or empty success.
func TestAuditScanMissingDir(t *testing.T) {
	if _, err := Scan(filepath.Join(t.TempDir(), "nope"), func(Record) error { return nil }); err == nil {
		t.Fatal("Scan of a missing directory succeeded")
	}
}
