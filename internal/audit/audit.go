// Package audit is the prediction audit trail: an append-only,
// crash-safe log of served match decisions, each stored with enough
// context to re-render its decision-unit explanation after the fact —
// request identity, model provenance (artifact and feedback
// fingerprints), both entity sides, the prediction with score and
// threshold, the compact explanation, and latency.
//
// The on-disk WYMAUD segment format follows the feedback journal's
// framing conventions (internal/feedback): a directory of numbered
// segments, each starting with an 8-byte magic and holding
// length-prefixed, CRC-32C-checked gob records. Where the journal
// fsyncs every append (labels are few and each must survive power
// loss), the audit log batches fsyncs on a configurable flush interval
// — prediction traffic is orders of magnitude hotter, and the crash
// contract is "lose at most the unflushed tail", never a torn file.
// Segments rotate at a size limit and old segments are pruned against a
// retention cap; the active segment is never deleted.
package audit

import (
	"wym/internal/pipeline"
	"wym/internal/units"
)

// Unit is one decision unit of a stored explanation — the compact
// serialized form of pipeline.UnitExplanation.
type Unit struct {
	Left, Right string // token texts; empty for the absent side
	Kind        int    // units.Kind
	Attr        int    // schema attribute index
	Relevance   float64
	Impact      float64
}

// Record is one audited decision. TimeNanos and LatencyNanos are set by
// the caller (unix nanos / nanoseconds) so tests can pin them.
type Record struct {
	RequestID string
	TimeNanos int64
	Route     string // serving route pattern, or "match"/"dedup" for batch jobs

	Model      string // registry name or artifact path
	ArtifactFP string // model artifact fingerprint ("fnv64:...")
	FeedbackFP string // folded-feedback fingerprint ("" when none)

	Left, Right []string // the entity sides, one value per schema attribute

	Prediction int // data.Match / data.NonMatch
	Proba      float64
	Threshold  float64 // decision threshold the prediction was taken at

	Units        []Unit // the decision-unit explanation
	LatencyNanos int64
}

// CompactUnits converts an engine explanation's units to the stored
// form.
func CompactUnits(ex pipeline.Explanation) []Unit {
	if len(ex.Units) == 0 {
		return nil
	}
	out := make([]Unit, len(ex.Units))
	for i, u := range ex.Units {
		out[i] = Unit{
			Left: u.Left, Right: u.Right,
			Kind: int(u.Kind), Attr: u.Attr,
			Relevance: u.Relevance, Impact: u.Impact,
		}
	}
	return out
}

// Explanation reassembles the stored explanation in the engine's type,
// so a stored record renders through the same code path as a live
// explain.
func (r *Record) Explanation() pipeline.Explanation {
	ex := pipeline.Explanation{Prediction: r.Prediction, Proba: r.Proba}
	for _, u := range r.Units {
		ex.Units = append(ex.Units, pipeline.UnitExplanation{
			Left: u.Left, Right: u.Right,
			Kind: units.Kind(u.Kind), Attr: u.Attr,
			Relevance: u.Relevance, Impact: u.Impact,
		})
	}
	return ex
}
