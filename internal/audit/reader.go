package audit

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ScanStats summarizes one Scan pass.
type ScanStats struct {
	Segments  int // segment files visited
	Records   int // records decoded and delivered
	Truncated int // segments whose tail (or entirety) was unreadable
}

// Scan reads every decodable record in dir, oldest segment first,
// calling fn per record. It is the tolerant reader: each segment is
// recovered to its longest valid prefix — a bad magic, torn tail,
// bit-flipped frame, or sequence gap never fails the scan, it just
// bounds what that segment contributes (and bumps Truncated). A non-nil
// error from fn aborts the scan and is returned; IO errors reading the
// directory are returned as-is.
func Scan(dir string, fn func(Record) error) (ScanStats, error) {
	var stats ScanStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		return stats, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == segmentExt {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		stats.Segments++
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return stats, err
		}
		n, ok, ferr := scanBytes(raw, func(rec Record) error {
			stats.Records++
			return fn(rec)
		})
		if ferr != nil {
			return stats, ferr
		}
		if !ok || n != int64(len(raw)) {
			stats.Truncated++
		}
	}
	return stats, nil
}

// scanBytes decodes the longest valid prefix of one segment's bytes,
// calling fn per record. ok is false when the magic itself is invalid.
// Only an fn error is returned; framing damage just ends the prefix.
func scanBytes(raw []byte, fn func(Record) error) (validLen int64, ok bool, err error) {
	if len(raw) < len(segmentMagic) || string(raw[:len(segmentMagic)]) != segmentMagic {
		return 0, false, nil
	}
	off := int64(len(segmentMagic))
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			return off, true, nil
		}
		if len(rest) < recordHeaderLen {
			return off, true, nil
		}
		plen := binary.LittleEndian.Uint32(rest[0:])
		want := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxRecordLen || uint32(len(rest)-recordHeaderLen) < plen {
			return off, true, nil
		}
		payload := rest[recordHeaderLen : recordHeaderLen+int(plen)]
		if crc32.Checksum(payload, castagnoli) != want {
			return off, true, nil
		}
		rec, _, derr := decodeRecord(rest)
		if derr != nil {
			return off, true, nil
		}
		if err := fn(rec); err != nil {
			return off, true, err
		}
		off += recordHeaderLen + int64(plen)
	}
}

// ReadAll scans dir and returns every decodable record in append order
// — the convenience form for CLIs and tests; large logs should Scan.
func ReadAll(dir string) ([]Record, ScanStats, error) {
	var out []Record
	stats, err := Scan(dir, func(rec Record) error {
		out = append(out, rec)
		return nil
	})
	return out, stats, err
}
