package audit

import (
	"fmt"
	"os"
	"testing"
)

// FuzzAuditLog throws arbitrary damage at a WYMAUD segment — appended
// garbage, truncation, and bit flips, all derived from the fuzz input —
// and holds the recovery invariants: nothing panics, the tolerant
// reader recovers a prefix of the records that were appended, and the
// writer either repairs the directory on Open or fails with a clean
// error (never a half-open log).
func FuzzAuditLog(f *testing.F) {
	f.Add([]byte{3, 0, 0xFF, 0xA5})           // 3 records + tail garbage
	f.Add([]byte{5, 1, 7})                    // truncation
	f.Add([]byte{4, 2, 40, 0x80, 2, 9, 0xFF}) // bit flips
	f.Add([]byte{0, 1, 200})                  // empty log, deep truncate
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 64 {
			input = input[:64]
		}
		next := func() byte {
			if len(input) == 0 {
				return 0
			}
			b := input[0]
			input = input[1:]
			return b
		}

		// Build a known-good single-segment log with n records.
		dir := t.TempDir()
		n := int(next()) % 8
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, n)
		for i := 0; i < n; i++ {
			want[i] = fmt.Sprintf("req-%d", i)
			if err := l.Append(Record{RequestID: want[i], Proba: float64(i) / 8}); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		seg := segmentPath(dir, 0)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}

		// Damage it as the input dictates.
		switch next() % 3 {
		case 0: // arbitrary bytes appended after the valid prefix
			raw = append(raw, input...)
		case 1: // crash truncation
			cut := int(next())
			if cut > len(raw) {
				cut = len(raw)
			}
			raw = raw[:len(raw)-cut]
		case 2: // bit flips anywhere in the file
			for len(input) >= 2 && len(raw) > 0 {
				pos := int(next()) % len(raw)
				raw[pos] ^= next() | 1
			}
		}
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		// Tolerant reader: never panics, recovers a prefix.
		var got []string
		stats, err := Scan(dir, func(rec Record) error {
			got = append(got, rec.RequestID)
			return nil
		})
		if err != nil {
			t.Fatalf("Scan on damaged segment: %v", err)
		}
		_ = stats
		for i, id := range got {
			if i < n && id != want[i] {
				t.Fatalf("recovered record %d = %q, want prefix element %q", i, id, want[i])
			}
		}

		// Writer: Open either repairs (tail damage) or refuses cleanly.
		l2, err := Open(dir, Options{})
		if err != nil {
			return // unrepairable mid-file damage: a clean error is the contract
		}
		if err := l2.Append(Record{RequestID: "post-damage"}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		var last string
		if _, err := Scan(dir, func(rec Record) error { last = rec.RequestID; return nil }); err != nil {
			t.Fatalf("Scan after repair: %v", err)
		}
		if last != "post-damage" {
			t.Fatalf("record appended after repair not recovered (last = %q)", last)
		}
	})
}
