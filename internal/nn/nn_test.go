package nn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestActivations(t *testing.T) {
	tests := []struct {
		act  Activation
		in   float64
		want float64
	}{
		{ReLU, -1, 0},
		{ReLU, 2, 2},
		{Identity, -3, -3},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, tc := range tests {
		if got := tc.act.apply(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("act %v(%v) = %v, want %v", tc.act, tc.in, got, tc.want)
		}
	}
}

func TestActivationDerivatives(t *testing.T) {
	// Check analytic derivatives against finite differences through apply.
	const h = 1e-6
	for _, act := range []Activation{Identity, Tanh, Sigmoid} {
		for _, z := range []float64{-1.5, -0.2, 0.3, 2.0} {
			out := act.apply(z)
			numeric := (act.apply(z+h) - act.apply(z-h)) / (2 * h)
			analytic := act.derivative(out)
			if math.Abs(numeric-analytic) > 1e-4 {
				t.Errorf("act %v derivative at %v: analytic %v numeric %v", act, z, analytic, numeric)
			}
		}
	}
	// ReLU away from the kink.
	if ReLU.derivative(ReLU.apply(2)) != 1 || ReLU.derivative(ReLU.apply(-2)) != 0 {
		t.Error("ReLU derivative wrong")
	}
}

func TestNewTopology(t *testing.T) {
	n := New([]int{4, 8, 2}, []Activation{ReLU, Identity}, 1)
	if n.InputDim() != 4 || n.OutputDim() != 2 {
		t.Fatalf("dims = %d, %d", n.InputDim(), n.OutputDim())
	}
	if len(n.Layers) != 2 || len(n.Layers[0].W) != 8 || len(n.Layers[0].W[0]) != 4 {
		t.Fatalf("layer shapes wrong: %+v", n.Layers[0])
	}
}

func TestNewPanicsOnBadTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([]int{4}, nil, 1)
}

func TestForwardDeterministic(t *testing.T) {
	a := New([]int{3, 5, 1}, []Activation{ReLU, Tanh}, 7)
	b := New([]int{3, 5, 1}, []Activation{ReLU, Tanh}, 7)
	x := []float64{0.1, -0.2, 0.3}
	if !reflect.DeepEqual(a.Forward(x), b.Forward(x)) {
		t.Fatal("same seed should give identical networks")
	}
	c := New([]int{3, 5, 1}, []Activation{ReLU, Tanh}, 8)
	if reflect.DeepEqual(a.Forward(x), c.Forward(x)) {
		t.Fatal("different seeds should give different networks")
	}
}

func TestGradientCheck(t *testing.T) {
	// Compare backprop gradients to numeric finite differences for a tiny
	// network with smooth activations.
	n := New([]int{2, 3, 1}, []Activation{Tanh, Identity}, 3)
	x := []float64{0.4, -0.7}
	y := []float64{0.2}

	g := n.newGrads()
	n.backward(x, y, MSE, g)

	const h = 1e-6
	lossAt := func() float64 {
		out := n.Forward(x)
		d := out[0] - y[0]
		return d * d
	}
	for l := range n.Layers {
		for i := range n.Layers[l].W {
			for j := range n.Layers[l].W[i] {
				orig := n.Layers[l].W[i][j]
				n.Layers[l].W[i][j] = orig + h
				up := lossAt()
				n.Layers[l].W[i][j] = orig - h
				down := lossAt()
				n.Layers[l].W[i][j] = orig
				numeric := (up - down) / (2 * h)
				if math.Abs(numeric-g.w[l][i][j]) > 1e-4 {
					t.Fatalf("grad W[%d][%d][%d]: backprop %v numeric %v", l, i, j, g.w[l][i][j], numeric)
				}
			}
		}
		for i := range n.Layers[l].B {
			orig := n.Layers[l].B[i]
			n.Layers[l].B[i] = orig + h
			up := lossAt()
			n.Layers[l].B[i] = orig - h
			down := lossAt()
			n.Layers[l].B[i] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-g.b[l][i]) > 1e-4 {
				t.Fatalf("grad B[%d][%d]: backprop %v numeric %v", l, i, g.b[l][i], numeric)
			}
		}
	}
}

func TestGradientCheckLogLoss(t *testing.T) {
	n := New([]int{2, 3, 1}, []Activation{Tanh, Sigmoid}, 5)
	x := []float64{0.3, 0.9}
	y := []float64{1}

	g := n.newGrads()
	n.backward(x, y, LogLoss, g)

	const h = 1e-6
	lossAt := func() float64 {
		p := clampProb(n.Forward(x)[0])
		return -(y[0]*math.Log(p) + (1-y[0])*math.Log(1-p))
	}
	l, i, j := 0, 1, 0
	orig := n.Layers[l].W[i][j]
	n.Layers[l].W[i][j] = orig + h
	up := lossAt()
	n.Layers[l].W[i][j] = orig - h
	down := lossAt()
	n.Layers[l].W[i][j] = orig
	numeric := (up - down) / (2 * h)
	if math.Abs(numeric-g.w[l][i][j]) > 1e-4 {
		t.Fatalf("logloss grad: backprop %v numeric %v", g.w[l][i][j], numeric)
	}
}

func TestFitLearnsXOR(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {0}}
	n := New([]int{2, 8, 1}, []Activation{Tanh, Sigmoid}, 11)
	cfg := Config{Epochs: 800, BatchSize: 4, LR: 0.05, Loss: LogLoss, Seed: 2}
	if _, err := n.Fit(x, y, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		p := n.Forward(x[i])[0]
		if (p > 0.5) != (y[i][0] > 0.5) {
			t.Fatalf("XOR not learned: input %v -> %v, want %v", x[i], p, y[i][0])
		}
	}
}

func TestFitRegression(t *testing.T) {
	// y = 0.5*x1 - 0.3*x2, easily fit by an identity-output network.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y [][]float64
	for i := 0; i < 300; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b})
		y = append(y, []float64{0.5*a - 0.3*b})
	}
	n := New([]int{2, 8, 1}, []Activation{ReLU, Identity}, 1)
	loss, err := n.Fit(x, y, Config{Epochs: 120, BatchSize: 32, LR: 0.01, Loss: MSE, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("final loss = %v, want < 0.01", loss)
	}
}

func TestFitErrors(t *testing.T) {
	n := New([]int{2, 1}, []Activation{Identity}, 1)
	if _, err := n.Fit(nil, nil, Defaults()); err == nil {
		t.Fatal("expected error on empty training set")
	}
	if _, err := n.Fit([][]float64{{1, 2}}, [][]float64{}, Defaults()); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := n.Fit([][]float64{{1}}, [][]float64{{1}}, Defaults()); err == nil {
		t.Fatal("expected error on dimension mismatch")
	}
	bad := Defaults()
	bad.Epochs = 0
	if _, err := n.Fit([][]float64{{1, 2}}, [][]float64{{1}}, bad); err == nil {
		t.Fatal("expected error on invalid config")
	}
}

func TestFitDeterministic(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {0}}
	train := func() []float64 {
		n := New([]int{2, 4, 1}, []Activation{Tanh, Sigmoid}, 9)
		_, err := n.Fit(x, y, Config{Epochs: 50, BatchSize: 2, LR: 0.05, Loss: LogLoss, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return n.Forward([]float64{1, 0})
	}
	if !reflect.DeepEqual(train(), train()) {
		t.Fatal("training is not deterministic for a fixed seed")
	}
}

func TestPaperDefaults(t *testing.T) {
	cfg := PaperDefaults()
	if cfg.Epochs != 40 || cfg.BatchSize != 256 || cfg.LR != 3e-5 {
		t.Fatalf("paper defaults = %+v", cfg)
	}
}

func TestVerboseCallback(t *testing.T) {
	var epochs int
	n := New([]int{1, 1}, []Activation{Identity}, 1)
	cfg := Config{Epochs: 3, BatchSize: 1, LR: 0.01, Seed: 1, Verbose: func(int, float64) { epochs++ }}
	if _, err := n.Fit([][]float64{{1}}, [][]float64{{1}}, cfg); err != nil {
		t.Fatal(err)
	}
	if epochs != 3 {
		t.Fatalf("verbose called %d times, want 3", epochs)
	}
}
