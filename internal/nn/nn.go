// Package nn implements the small feed-forward neural networks WYM uses:
// the decision-unit relevance scorer (a 300/64/32 ReLU regression network,
// §4.2 of the paper) and the neural baselines. It provides dense layers,
// ReLU/tanh/sigmoid/identity activations, mean-squared-error and logistic
// losses, and mini-batch Adam — all deterministic given a seed.
package nn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's element-wise non-linearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
	Sigmoid
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivative computes da/dz given the activation output a = f(z).
func (a Activation) derivative(out float64) float64 {
	switch a {
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - out*out
	case Sigmoid:
		return out * (1 - out)
	default:
		return 1
	}
}

// Layer is a dense layer: out = act(W*x + b). Fields are exported so a
// fitted network can be serialized with encoding/gob or encoding/json.
type Layer struct {
	W   [][]float64 // [out][in]
	B   []float64   // [out]
	Act Activation
}

// Net is a feed-forward network: a stack of dense layers.
type Net struct {
	Layers []Layer
}

// New builds a network with the given layer sizes (sizes[0] is the input
// dimension) and per-layer activations (len(acts) == len(sizes)-1).
// Weights use scaled Glorot initialization from the given seed.
func New(sizes []int, acts []Activation, seed int64) *Net {
	if len(sizes) < 2 || len(acts) != len(sizes)-1 {
		panic(fmt.Sprintf("nn: bad topology sizes=%v acts=%v", sizes, acts))
	}
	rng := rand.New(rand.NewSource(seed))
	net := &Net{Layers: make([]Layer, len(acts))}
	for l := range net.Layers {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2 / float64(in+out))
		w := make([][]float64, out)
		for i := range w {
			w[i] = make([]float64, in)
			for j := range w[i] {
				w[i][j] = rng.NormFloat64() * scale
			}
		}
		net.Layers[l] = Layer{W: w, B: make([]float64, out), Act: acts[l]}
	}
	return net
}

// InputDim returns the expected input dimension.
func (n *Net) InputDim() int { return len(n.Layers[0].W[0]) }

// OutputDim returns the output dimension.
func (n *Net) OutputDim() int { return len(n.Layers[len(n.Layers)-1].B) }

// Forward runs the network on one input and returns the output activations.
func (n *Net) Forward(x []float64) []float64 {
	a := x
	for l := range n.Layers {
		a = n.Layers[l].forward(a)
	}
	return a
}

func (l *Layer) forward(x []float64) []float64 {
	out := make([]float64, len(l.B))
	for i, row := range l.W {
		s := l.B[i]
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = l.Act.apply(s)
	}
	return out
}

// Loss selects the training objective.
type Loss int

// Supported losses.
const (
	// MSE is mean squared error; the relevance scorer regresses targets
	// in [-1, 1] with it.
	MSE Loss = iota
	// LogLoss is binary cross-entropy over a single sigmoid output.
	LogLoss
)

// Config holds training hyper-parameters. The zero value is not usable;
// call Defaults or fill every field. The paper's relevance-scorer settings
// (40 epochs, batch 256, learning rate 3e-5) are exposed as PaperDefaults.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	L2        float64 // weight decay coefficient
	Loss      Loss
	Seed      int64 // shuffling seed
	// Verbose, when non-nil, receives the mean loss after each epoch.
	Verbose func(epoch int, loss float64)
}

// PaperDefaults returns the §4.2 hyper-parameters: 40 epochs, batch 256,
// learning rate 3e-5, MSE.
func PaperDefaults() Config {
	return Config{Epochs: 40, BatchSize: 256, LR: 3e-5, Loss: MSE, Seed: 1}
}

// Defaults returns fast, practical settings for the small synthetic
// datasets in this repo: fewer epochs at a higher Adam learning rate reach
// the same optimum as the paper's long low-rate schedule.
func Defaults() Config {
	return Config{Epochs: 30, BatchSize: 64, LR: 1e-3, Loss: MSE, Seed: 1}
}

// Fit trains the network on (X, Y) with mini-batch Adam. Y rows must match
// the output dimension. It returns the mean loss of the final epoch.
func (n *Net) Fit(x [][]float64, y [][]float64, cfg Config) (float64, error) {
	return n.FitCtx(context.Background(), x, y, cfg)
}

// FitCtx is Fit honoring a context: cancellation is checked before every
// epoch, so a SIGINT mid-training abandons the run at the next epoch
// boundary instead of spinning through the remaining schedule. The
// network's weights are left in their last-epoch state; callers that care
// about consistency must discard the network on error.
func (n *Net) FitCtx(ctx context.Context, x [][]float64, y [][]float64, cfg Config) (float64, error) {
	if len(x) == 0 {
		return 0, errors.New("nn: empty training set")
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("nn: %d inputs but %d targets", len(x), len(y))
	}
	if len(x[0]) != n.InputDim() {
		return 0, fmt.Errorf("nn: input dim %d, network expects %d", len(x[0]), n.InputDim())
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("nn: invalid config %+v", cfg)
	}

	opt := newAdam(n, cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(x))
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return lastLoss, fmt.Errorf("nn: training canceled at epoch %d: %w", epoch, err)
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			grads := n.newGrads()
			for _, idx := range batch {
				epochLoss += n.backward(x[idx], y[idx], cfg.Loss, grads)
			}
			scaleGrads(grads, 1/float64(len(batch)))
			if cfg.L2 > 0 {
				n.addWeightDecay(grads, cfg.L2)
			}
			opt.step(n, grads)
		}
		lastLoss = epochLoss / float64(len(order))
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// grads mirrors the network's parameter shapes.
type grads struct {
	w [][][]float64
	b [][]float64
}

func (n *Net) newGrads() *grads {
	g := &grads{w: make([][][]float64, len(n.Layers)), b: make([][]float64, len(n.Layers))}
	for l, layer := range n.Layers {
		g.w[l] = make([][]float64, len(layer.W))
		for i := range layer.W {
			g.w[l][i] = make([]float64, len(layer.W[i]))
		}
		g.b[l] = make([]float64, len(layer.B))
	}
	return g
}

func scaleGrads(g *grads, s float64) {
	for l := range g.w {
		for i := range g.w[l] {
			for j := range g.w[l][i] {
				g.w[l][i][j] *= s
			}
		}
		for i := range g.b[l] {
			g.b[l][i] *= s
		}
	}
}

func (n *Net) addWeightDecay(g *grads, l2 float64) {
	for l, layer := range n.Layers {
		for i := range layer.W {
			for j := range layer.W[i] {
				g.w[l][i][j] += l2 * layer.W[i][j]
			}
		}
	}
}

// backward accumulates gradients for one example and returns its loss.
func (n *Net) backward(x, target []float64, loss Loss, g *grads) float64 {
	// Forward pass, caching every layer's activations.
	acts := make([][]float64, len(n.Layers)+1)
	acts[0] = x
	for l := range n.Layers {
		acts[l+1] = n.Layers[l].forward(acts[l])
	}
	out := acts[len(acts)-1]

	// Output delta and loss value.
	delta := make([]float64, len(out))
	var lossVal float64
	switch loss {
	case LogLoss:
		// Assumes sigmoid output; dL/dz simplifies to (p - y).
		for i := range out {
			p := clampProb(out[i])
			lossVal += -(target[i]*math.Log(p) + (1-target[i])*math.Log(1-p))
			delta[i] = out[i] - target[i]
		}
	default: // MSE with activation derivative
		for i := range out {
			d := out[i] - target[i]
			lossVal += d * d
			delta[i] = 2 * d * n.Layers[len(n.Layers)-1].Act.derivative(out[i])
		}
	}

	// Backward pass.
	for l := len(n.Layers) - 1; l >= 0; l-- {
		layer := &n.Layers[l]
		in := acts[l]
		var prevDelta []float64
		if l > 0 {
			prevDelta = make([]float64, len(in))
		}
		for i := range layer.W {
			di := delta[i]
			g.b[l][i] += di
			row := layer.W[i]
			grow := g.w[l][i]
			for j := range row {
				grow[j] += di * in[j]
				if l > 0 {
					prevDelta[j] += di * row[j]
				}
			}
		}
		if l > 0 {
			prev := &n.Layers[l-1]
			for j := range prevDelta {
				prevDelta[j] *= prev.Act.derivative(in[j])
			}
			delta = prevDelta
		}
	}
	return lossVal
}

func clampProb(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// adam is the Adam optimizer state (β1=0.9, β2=0.999, ε=1e-8).
type adam struct {
	lr       float64
	t        int
	mW, vW   [][][]float64
	mB, vB   [][]float64
	b1, b2   float64
	epsAdamW float64
}

func newAdam(n *Net, lr float64) *adam {
	a := &adam{lr: lr, b1: 0.9, b2: 0.999, epsAdamW: 1e-8}
	a.mW = make([][][]float64, len(n.Layers))
	a.vW = make([][][]float64, len(n.Layers))
	a.mB = make([][]float64, len(n.Layers))
	a.vB = make([][]float64, len(n.Layers))
	for l, layer := range n.Layers {
		a.mW[l] = make([][]float64, len(layer.W))
		a.vW[l] = make([][]float64, len(layer.W))
		for i := range layer.W {
			a.mW[l][i] = make([]float64, len(layer.W[i]))
			a.vW[l][i] = make([]float64, len(layer.W[i]))
		}
		a.mB[l] = make([]float64, len(layer.B))
		a.vB[l] = make([]float64, len(layer.B))
	}
	return a
}

func (a *adam) step(n *Net, g *grads) {
	a.t++
	c1 := 1 - math.Pow(a.b1, float64(a.t))
	c2 := 1 - math.Pow(a.b2, float64(a.t))
	update := func(p *float64, grad float64, m, v *float64) {
		*m = a.b1**m + (1-a.b1)*grad
		*v = a.b2**v + (1-a.b2)*grad*grad
		mh := *m / c1
		vh := *v / c2
		*p -= a.lr * mh / (math.Sqrt(vh) + a.epsAdamW)
	}
	for l := range n.Layers {
		layer := &n.Layers[l]
		for i := range layer.W {
			for j := range layer.W[i] {
				update(&layer.W[i][j], g.w[l][i][j], &a.mW[l][i][j], &a.vW[l][i][j])
			}
		}
		for i := range layer.B {
			update(&layer.B[i], g.b[l][i], &a.mB[l][i], &a.vB[l][i])
		}
	}
}
