package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"wym/internal/data"
)

// Engine composes one instantiation of the architecture template —
// generator, scorer, matcher — and runs the process→score→match flow over
// single pairs and batches. Batch methods fan records out over
// GOMAXPROCS workers with a fully buffered job queue (the producer never
// rendezvouses with a worker) and preserve input order in every result.
//
// The scorer and matcher may be nil for generator-only engines (the
// Figure 4 unit-distribution experiment); calling Predict or Explain on
// such an engine panics with a descriptive message.
type Engine struct {
	gen     UnitGenerator
	scorer  RelevanceScorer
	matcher Matcher
	// metrics, when non-nil, receives per-record counters, latency
	// histograms and the in-flight gauge (see metrics.go). Attached via
	// SetMetrics before the engine is published to concurrent callers.
	metrics *Metrics
}

// New assembles an engine from one instantiation of each component.
// gen must be non-nil; scorer and matcher may be nil for engines that
// only generate units.
func New(gen UnitGenerator, scorer RelevanceScorer, matcher Matcher) *Engine {
	if gen == nil {
		panic("pipeline: New requires a UnitGenerator")
	}
	return &Engine{gen: gen, scorer: scorer, matcher: matcher}
}

// Generator returns the engine's unit generator.
func (e *Engine) Generator() UnitGenerator { return e.gen }

// Scorer returns the engine's relevance scorer (nil for generator-only
// engines).
func (e *Engine) Scorer() RelevanceScorer { return e.scorer }

// Matcher returns the engine's matcher (nil for generator-only engines).
func (e *Engine) Matcher() Matcher { return e.matcher }

// Process runs the generator on one record pair.
func (e *Engine) Process(p data.Pair) *Record { return e.generate(p) }

// scores runs the scorer, tolerating scorer-less instantiations.
func (e *Engine) scores(rec *Record) []float64 {
	if e.scorer == nil {
		return nil
	}
	return e.scorer.Score(rec)
}

func (e *Engine) mustMatcher() Matcher {
	if e.matcher == nil {
		panic("pipeline: engine has no matcher (generator-only instantiation)")
	}
	return e.matcher
}

// Predict processes one record pair and classifies it, returning the
// hard label and the match probability.
func (e *Engine) Predict(p data.Pair) (label int, proba float64) {
	if m := e.metrics; m != nil {
		start := time.Now()
		label, proba = e.PredictRecord(e.Process(p))
		m.PredictSeconds.Observe(time.Since(start).Seconds())
		return label, proba
	}
	return e.PredictRecord(e.Process(p))
}

// PredictRecord classifies an already-processed record, so callers that
// also need an explanation can Process once and reuse the record.
func (e *Engine) PredictRecord(rec *Record) (label int, proba float64) {
	return e.mustMatcher().MatchRecord(rec, e.scores(rec))
}

// Explain processes one record pair and attributes the decision to its
// units via the matcher's explanation path.
func (e *Engine) Explain(p data.Pair) Explanation {
	return e.ExplainRecord(e.Process(p))
}

// ExplainRecord explains an already-processed record.
func (e *Engine) ExplainRecord(rec *Record) Explanation {
	return e.mustMatcher().ExplainRecord(rec, e.scores(rec))
}

// ProcessAll runs the generator over a dataset concurrently, preserving
// order.
func (e *Engine) ProcessAll(d *data.Dataset) []*Record {
	n := d.Size()
	out := make([]*Record, n)
	workers := batchWorkers(n)
	if workers <= 1 {
		for i := range d.Pairs {
			out[i] = e.generate(d.Pairs[i])
		}
		return out
	}
	// Buffer the full job list up front: an unbuffered channel would make
	// the producer rendezvous with a worker per record, serializing the
	// fan-out; with the buffer, the producer finishes immediately and the
	// workers drain without ever blocking on the send side.
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	// One worker closure shared by every goroutine, allocated once —
	// hoisted out of the spawn loop.
	worker := func() {
		defer wg.Done()
		for i := range jobs {
			out[i] = e.generate(d.Pairs[i])
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return out
}

// BatchOptions tunes the fault-isolating batch runs.
type BatchOptions struct {
	// Hook, when non-nil, runs inside the per-record quarantine wrapper
	// before the generator; the fault-tolerance tests inject per-record
	// panics with it.
	Hook func(data.Pair)
	// Metrics, when non-nil, receives per-record process latencies and
	// the processed/quarantined counters for this batch. Engine batch
	// methods thread their attached bundle through automatically.
	Metrics *Metrics
}

// ProcessAllContext is ProcessAll with cancellation and per-record fault
// isolation: a worker that panics on a record quarantines that pair (nil
// entry in the result, a RecordError in the second return) and moves on.
// Cancellation stops the workers at the next record; the partial results
// are discarded and the context error returned.
func (e *Engine) ProcessAllContext(ctx context.Context, d *data.Dataset) ([]*Record, []RecordError, error) {
	return ProcessAllContext(ctx, e.gen, d, BatchOptions{Metrics: e.metrics})
}

// ProcessAllContext runs a bare generator over a dataset with the same
// cancellation and quarantine semantics as Engine.ProcessAllContext; the
// trainer uses it before the scorer and matcher stages exist.
func ProcessAllContext(ctx context.Context, g UnitGenerator, d *data.Dataset, opts BatchOptions) ([]*Record, []RecordError, error) {
	n := d.Size()
	out := make([]*Record, n)
	errs := make([]error, n)
	generate := func(i int) {
		out[i], errs[i] = observeGenerate(opts.Metrics, g, d.Pairs[i], opts.Hook)
	}
	workers := batchWorkers(n)
	if workers <= 1 {
		for i := range d.Pairs {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			generate(i)
		}
		return out, collectRecordErrors(d, errs), nil
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		for i := range jobs {
			if ctx.Err() != nil {
				return
			}
			generate(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return out, collectRecordErrors(d, errs), nil
}

// generateSafe runs the generator on one pair, converting a panic into an
// error so a single malformed record can be quarantined instead of
// killing the whole batch.
func generateSafe(g UnitGenerator, p data.Pair, hook func(data.Pair)) (rec *Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			rec, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	if hook != nil {
		hook(p)
	}
	return g.Generate(p), nil
}

// batchWorkers sizes the fan-out for n records.
func batchWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	return workers
}

// collectRecordErrors turns the per-index error slice into an ordered
// quarantine list — index order, so reports are deterministic regardless
// of worker scheduling.
func collectRecordErrors(d *data.Dataset, errs []error) []RecordError {
	var out []RecordError
	for i, err := range errs {
		if err != nil {
			out = append(out, RecordError{Index: i, ID: d.Pairs[i].ID, Err: err.Error()})
		}
	}
	return out
}

// PredictAll returns hard labels for a whole dataset: concurrent unit
// generation, then a sequential score→match pass (the scorer and matcher
// are cheap relative to generation, and a fixed pass order keeps results
// reproducible run to run).
func (e *Engine) PredictAll(d *data.Dataset) []int {
	recs := e.ProcessAll(d)
	out := make([]int, len(recs))
	for i, rec := range recs {
		out[i], _ = e.PredictRecord(rec)
	}
	return out
}

// Prediction is one item's outcome in a fault-isolated batch predict.
type Prediction struct {
	Label int
	Proba float64
	// Err is non-empty when the item was quarantined: its generator or
	// matcher panicked, or the batch was canceled before it ran.
	Err string
}

// PredictBatch predicts a slice of pairs with per-item fault isolation:
// an item whose processing panics fails alone (Err set, zero scores),
// never the batch. Items are fanned out over workers and results keep
// input order. Cancelling the context marks the not-yet-run items with
// the context error and returns what completed.
func (e *Engine) PredictBatch(ctx context.Context, pairs []data.Pair) []Prediction {
	n := len(pairs)
	out := make([]Prediction, n)
	predict := func(i int) {
		out[i] = e.predictSafe(pairs[i])
	}
	workers := batchWorkers(n)
	if workers <= 1 {
		for i := range pairs {
			if err := ctx.Err(); err != nil {
				out[i] = Prediction{Err: err.Error()}
				continue
			}
			predict(i)
		}
		return out
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				out[i] = Prediction{Err: err.Error()}
				continue
			}
			predict(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return out
}

// predictSafe runs one full predict with panic quarantine.
func (e *Engine) predictSafe(p data.Pair) (pred Prediction) {
	defer func() {
		if r := recover(); r != nil {
			e.metrics.quarantineInc()
			pred = Prediction{Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	label, proba := e.Predict(p)
	return Prediction{Label: label, Proba: proba}
}
