package pipeline

import (
	"context"
	"testing"

	"wym/internal/data"
	"wym/internal/obs"
)

func testMetrics() *Metrics { return NewMetrics(obs.NewRegistry()) }

func TestEngineMetricsCountProcessAndPredict(t *testing.T) {
	eng := testEngine()
	m := testMetrics()
	eng.SetMetrics(m)
	if eng.Metrics() != m {
		t.Fatal("Metrics() did not return the attached bundle")
	}

	d := dataset(8)
	eng.ProcessAll(d)
	if got := m.Processed.Value(); got != 8 {
		t.Fatalf("processed after ProcessAll = %d, want 8", got)
	}
	if got := m.ProcessSeconds.Count(); got != 8 {
		t.Fatalf("process histogram count = %d, want 8", got)
	}

	eng.Predict(data.Pair{ID: 2})
	if got := m.PredictSeconds.Count(); got != 1 {
		t.Fatalf("predict histogram count = %d, want 1", got)
	}
	if got := m.Processed.Value(); got != 9 {
		t.Fatalf("processed after Predict = %d, want 9", got)
	}
	if got := m.Quarantined.Value(); got != 0 {
		t.Fatalf("quarantined = %d, want 0", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge = %d, want 0 at rest", got)
	}
}

func TestEngineMetricsQuarantineCounting(t *testing.T) {
	// Generator panics on pairs 1 and 3: ProcessAllContext quarantines
	// them and the counter records both.
	eng := New(fakeGen{panicOn: map[int]bool{1: true, 3: true}}, fakeScorer{}, fakeMatcher{})
	m := testMetrics()
	eng.SetMetrics(m)
	d := dataset(5)
	recs, recErrs, err := eng.ProcessAllContext(context.Background(), d)
	if err != nil {
		t.Fatalf("ProcessAllContext: %v", err)
	}
	if len(recErrs) != 2 {
		t.Fatalf("record errors = %d, want 2", len(recErrs))
	}
	if recs[1] != nil || recs[3] != nil {
		t.Fatal("quarantined records should be nil")
	}
	if got := m.Quarantined.Value(); got != 2 {
		t.Fatalf("quarantined = %d, want 2", got)
	}
	// Quarantined pairs still count as processed (they entered the
	// generator), so processed covers the full batch.
	if got := m.Processed.Value(); got != 5 {
		t.Fatalf("processed = %d, want 5", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge = %d, want 0 after quarantine", got)
	}
}

func TestEngineMetricsPredictBatchQuarantine(t *testing.T) {
	eng := New(fakeGen{}, fakeScorer{}, fakeMatcher{panicOn: map[int]bool{2: true}})
	m := testMetrics()
	eng.SetMetrics(m)
	pairs := dataset(4).Pairs
	preds := eng.PredictBatch(context.Background(), pairs)
	if preds[2].Err == "" {
		t.Fatal("pair 2 should have been quarantined")
	}
	if got := m.Quarantined.Value(); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	// The three successful predicts land in the latency histogram; the
	// panicking one aborts before observation.
	if got := m.PredictSeconds.Count(); got != 3 {
		t.Fatalf("predict histogram count = %d, want 3", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge = %d, want 0 after batch", got)
	}
}

func TestEngineNilMetricsIsFree(t *testing.T) {
	eng := testEngine()
	// No bundle attached: every path must run without observation.
	eng.Process(data.Pair{ID: 1})
	eng.Predict(data.Pair{ID: 2})
	eng.ProcessAll(dataset(3))
	if _, _, err := eng.ProcessAllContext(context.Background(), dataset(3)); err != nil {
		t.Fatalf("ProcessAllContext: %v", err)
	}
	eng.PredictBatch(context.Background(), dataset(2).Pairs)
}
