package pipeline

import (
	"time"

	"wym/internal/data"
	"wym/internal/obs"
)

// Metrics is the engine's observability bundle. Every field is optional
// (obs metrics are nil-safe), but NewMetrics registers the full standard
// set. One bundle can be shared across engine rebuilds — the server
// re-attaches the same bundle after a hot model reload so counters and
// histograms accumulate across model generations.
type Metrics struct {
	// Processed counts record pairs run through the unit generator,
	// including quarantined ones.
	Processed *obs.Counter
	// Quarantined counts record pairs excluded after a worker panic
	// (generator or full-predict, quarantining batch paths only).
	Quarantined *obs.Counter
	// ProcessSeconds is the per-record unit-generation latency
	// (tokenize + embed + Algorithm 1).
	ProcessSeconds *obs.Histogram
	// PredictSeconds is the per-record end-to-end predict latency
	// (generation + scoring + matching).
	PredictSeconds *obs.Histogram
	// InFlight gauges records currently inside the generator or a
	// predict, across all workers.
	InFlight *obs.Gauge
}

// NewMetrics registers the engine's standard metric set on the registry
// and returns the bundle. Metric names are part of the observability
// contract documented in DESIGN.md §9.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Processed: reg.Counter("wym_engine_records_processed_total",
			"Record pairs run through the decision-unit generator."),
		Quarantined: reg.Counter("wym_engine_records_quarantined_total",
			"Record pairs quarantined after a per-record worker panic."),
		ProcessSeconds: reg.Histogram("wym_engine_process_seconds",
			"Per-record unit-generation latency (tokenize + embed + Algorithm 1).",
			obs.DefaultLatencyBuckets),
		PredictSeconds: reg.Histogram("wym_engine_predict_seconds",
			"Per-record end-to-end predict latency.",
			obs.DefaultLatencyBuckets),
		InFlight: reg.Gauge("wym_engine_inflight_records",
			"Records currently being processed or predicted."),
	}
}

// SetMetrics attaches (or, with nil, detaches) a metrics bundle. It must
// not race with serving calls: attach before the engine is published to
// request handlers — the server does it before ModelRef.Set on every
// load and reload. A nil bundle keeps the hot path at a single pointer
// check per record.
func (e *Engine) SetMetrics(m *Metrics) { e.metrics = m }

// Metrics returns the attached bundle (nil when uninstrumented).
func (e *Engine) Metrics() *Metrics { return e.metrics }

// generate runs the generator on one pair, recording process-side
// metrics when a bundle is attached. Every generator call inside the
// engine flows through here.
func (e *Engine) generate(p data.Pair) *Record {
	m := e.metrics
	if m == nil {
		return e.gen.Generate(p)
	}
	m.InFlight.Inc()
	// Dec via defer so a generator panic (quarantined by the safe batch
	// paths, propagated by the plain ones) cannot leak the gauge.
	defer m.InFlight.Dec()
	start := time.Now()
	rec := e.gen.Generate(p)
	m.ProcessSeconds.Observe(time.Since(start).Seconds())
	m.Processed.Inc()
	return rec
}

// quarantineInc bumps the quarantine counter; nil-safe on the bundle so
// panic-recovery paths need no guards.
func (m *Metrics) quarantineInc() {
	if m == nil {
		return
	}
	m.Quarantined.Inc()
}

// observeGenerate is the package-level counterpart of generate for batch
// runners that work on a bare UnitGenerator (BatchOptions.Metrics); a
// nil bundle is free.
func observeGenerate(m *Metrics, g UnitGenerator, p data.Pair, hook func(data.Pair)) (*Record, error) {
	if m == nil {
		return generateSafe(g, p, hook)
	}
	m.InFlight.Inc()
	defer m.InFlight.Dec()
	start := time.Now()
	rec, err := generateSafe(g, p, hook)
	m.ProcessSeconds.Observe(time.Since(start).Seconds())
	m.Processed.Inc()
	if err != nil {
		m.Quarantined.Inc()
	}
	return rec, err
}
