package pipeline

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"wym/internal/data"
)

// The engine tests run entirely on fake components: the contract under
// test is the template plumbing (ordering, fan-out, quarantine,
// cancellation), not any particular instantiation.

// fakeGen stamps the pair ID into the record so tests can verify order.
type fakeGen struct {
	panicOn map[int]bool // pair IDs whose processing "fails"
}

func (g fakeGen) Generate(p data.Pair) *Record {
	if g.panicOn[p.ID] {
		panic(fmt.Sprintf("bad record %d", p.ID))
	}
	return &Record{Pair: p}
}

// fakeScorer returns one score derived from the pair ID.
type fakeScorer struct{}

func (fakeScorer) Score(rec *Record) []float64 {
	return []float64{float64(rec.Pair.ID) / 100}
}

// fakeMatcher labels even IDs as matches and folds the scores into the
// probability so tests can see that the scorer output reached it.
type fakeMatcher struct{ panicOn map[int]bool }

func (m fakeMatcher) MatchRecord(rec *Record, scores []float64) (int, float64) {
	if m.panicOn[rec.Pair.ID] {
		panic(fmt.Sprintf("bad match %d", rec.Pair.ID))
	}
	proba := 0.0
	for _, s := range scores {
		proba += s
	}
	if rec.Pair.ID%2 == 0 {
		return 1, proba
	}
	return 0, proba
}

func (m fakeMatcher) ExplainRecord(rec *Record, scores []float64) Explanation {
	label, proba := m.MatchRecord(rec, scores)
	return Explanation{Prediction: label, Proba: proba}
}

func dataset(n int) *data.Dataset {
	d := &data.Dataset{Schema: data.Schema{"a"}}
	for i := 0; i < n; i++ {
		d.Pairs = append(d.Pairs, data.Pair{ID: i, Left: []string{fmt.Sprint(i)}, Right: []string{fmt.Sprint(i)}})
	}
	return d
}

func testEngine() *Engine {
	return New(fakeGen{}, fakeScorer{}, fakeMatcher{})
}

func TestNewRequiresGenerator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil, ...) did not panic")
		}
	}()
	New(nil, fakeScorer{}, fakeMatcher{})
}

func TestGeneratorOnlyEnginePanicsOnPredict(t *testing.T) {
	eng := New(fakeGen{}, nil, nil)
	if rec := eng.Process(data.Pair{ID: 7}); rec.Pair.ID != 7 {
		t.Fatalf("Process = %+v", rec)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Predict on a generator-only engine did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "no matcher") {
			t.Fatalf("panic = %v, want it to name the missing matcher", r)
		}
	}()
	eng.Predict(data.Pair{ID: 1})
}

func TestPredictUsesScorerOutput(t *testing.T) {
	eng := testEngine()
	label, proba := eng.Predict(data.Pair{ID: 50})
	if label != 1 || proba != 0.5 {
		t.Fatalf("Predict = (%d, %v), want (1, 0.5)", label, proba)
	}
	// A nil scorer is legal: the matcher then sees no scores.
	noScorer := New(fakeGen{}, nil, fakeMatcher{})
	if _, proba := noScorer.Predict(data.Pair{ID: 50}); proba != 0 {
		t.Fatalf("scorer-less proba = %v, want 0", proba)
	}
}

func TestProcessOnceRecordReuse(t *testing.T) {
	eng := testEngine()
	p := data.Pair{ID: 12}
	rec := eng.Process(p)
	wantLabel, wantProba := eng.Predict(p)
	gotLabel, gotProba := eng.PredictRecord(rec)
	if gotLabel != wantLabel || gotProba != wantProba {
		t.Fatalf("PredictRecord = (%d, %v), Predict = (%d, %v)", gotLabel, gotProba, wantLabel, wantProba)
	}
	if ex := eng.ExplainRecord(rec); ex.Prediction != wantLabel || ex.Proba != wantProba {
		t.Fatalf("ExplainRecord = %+v, want prediction %d proba %v", ex, wantLabel, wantProba)
	}
}

func TestProcessAllPreservesOrder(t *testing.T) {
	// Enough records to exercise the worker fan-out.
	d := dataset(257)
	recs := testEngine().ProcessAll(d)
	if len(recs) != d.Size() {
		t.Fatalf("len = %d, want %d", len(recs), d.Size())
	}
	for i, rec := range recs {
		if rec.Pair.ID != i {
			t.Fatalf("recs[%d].Pair.ID = %d, want %d (order not preserved)", i, rec.Pair.ID, i)
		}
	}
}

func TestProcessAllContextQuarantine(t *testing.T) {
	d := dataset(100)
	gen := fakeGen{panicOn: map[int]bool{13: true, 77: true}}
	eng := New(gen, nil, nil)
	recs, errs, err := eng.ProcessAllContext(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 || errs[0].Index != 13 || errs[1].Index != 77 {
		t.Fatalf("errs = %+v, want indices 13 and 77 in order", errs)
	}
	if !strings.Contains(errs[0].Err, "bad record 13") {
		t.Fatalf("errs[0] = %+v, want the panic message preserved", errs[0])
	}
	for i, rec := range recs {
		quarantined := i == 13 || i == 77
		if (rec == nil) != quarantined {
			t.Fatalf("recs[%d] = %v, quarantined = %v", i, rec, quarantined)
		}
	}
}

func TestProcessAllContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := testEngine().ProcessAllContext(ctx, dataset(50))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPredictAllMatchesPerPairPredict(t *testing.T) {
	d := dataset(64)
	eng := testEngine()
	got := eng.PredictAll(d)
	for i, p := range d.Pairs {
		want, _ := eng.Predict(p)
		if got[i] != want {
			t.Fatalf("PredictAll[%d] = %d, Predict = %d", i, got[i], want)
		}
	}
}

func TestPredictBatchIsolatesFailures(t *testing.T) {
	d := dataset(40)
	eng := New(fakeGen{panicOn: map[int]bool{3: true}}, fakeScorer{},
		fakeMatcher{panicOn: map[int]bool{21: true}})
	preds := eng.PredictBatch(context.Background(), d.Pairs)
	if len(preds) != 40 {
		t.Fatalf("len = %d, want 40", len(preds))
	}
	for i, pred := range preds {
		switch i {
		case 3, 21:
			if pred.Err == "" {
				t.Fatalf("preds[%d] = %+v, want a quarantined item", i, pred)
			}
			if !strings.Contains(pred.Err, "panic:") {
				t.Fatalf("preds[%d].Err = %q, want the panic surfaced", i, pred.Err)
			}
		default:
			if pred.Err != "" {
				t.Fatalf("preds[%d] = %+v, want success", i, pred)
			}
			if want := i % 2; want == 0 && pred.Label != 1 || want != 0 && pred.Label != 0 {
				t.Fatalf("preds[%d].Label = %d for ID %d", i, pred.Label, i)
			}
		}
	}
}

func TestPredictBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	preds := testEngine().PredictBatch(ctx, dataset(10).Pairs)
	for i, pred := range preds {
		if pred.Err != context.Canceled.Error() {
			t.Fatalf("preds[%d].Err = %q, want the context error", i, pred.Err)
		}
	}
}

func TestVerbatimAndNoScores(t *testing.T) {
	p := data.Pair{ID: 5, Left: []string{"x"}, Right: []string{"y"}}
	rec := Verbatim{}.Generate(p)
	if rec.Pair.ID != 5 || len(rec.Units) != 0 {
		t.Fatalf("Verbatim record = %+v, want the bare pair and no units", rec)
	}
	if s := (NoScores{}).Score(rec); s != nil {
		t.Fatalf("NoScores.Score = %v, want nil", s)
	}
}
