// Package pipeline defines the paper's three-component architecture
// template as explicit, pluggable interfaces — a decision-unit generator,
// a relevance scorer and an explainable matcher — plus the batched,
// context-aware Engine that composes one instantiation of each into a
// ready-to-serve matching system.
//
// The WYM system of the paper (internal/core) is one instantiation: its
// generator tokenizes, contextually embeds and runs Algorithm 1; its
// scorer is the trained relevance network (or the Table 4 ablations); its
// matcher is the statistical feature space plus an interpretable
// classifier with the inverse impact transformation. The simulated black
// boxes of Table 3 (internal/baselines) are alternative instantiations:
// a pass-through generator, no relevance scorer, and a feature-model
// matcher that produces predictions without decision units. Every caller
// — the CLI, the server, the benchmark harness and the experiments — runs
// through the same Engine, so swapping a component never forks the
// process→score→match control flow.
package pipeline

import (
	"wym/internal/data"
	"wym/internal/relevance"
	"wym/internal/units"
)

// Record is one record pair flowing through the engine: the raw input
// pair plus the generator's processed view (tokens, contextual embeddings
// and decision units). Instantiations that do not build decision units
// (the baseline black boxes) leave the embedded relevance.Record zero and
// work from Pair alone.
type Record struct {
	// Pair is the raw input the generator consumed.
	Pair data.Pair
	// Record is the unit-level view: decision units plus the token
	// embeddings they index. Its fields (Units, Left, Right, ...) promote,
	// so unit-aware code reads rec.Units directly.
	relevance.Record
}

// Rel returns the unit-level view as the *relevance.Record the substrate
// packages (relevance, eval, checkpointing) consume.
func (r *Record) Rel() *relevance.Record { return &r.Record }

// UnitGenerator is the first template component: it turns a raw record
// pair into a processed Record. Implementations must be safe for
// concurrent use — the Engine fans batch generation out over workers.
type UnitGenerator interface {
	Generate(p data.Pair) *Record
}

// RelevanceScorer is the second template component: one relevance score
// in [-1, 1] per decision unit of a record. Implementations must be safe
// for concurrent use.
type RelevanceScorer interface {
	Score(rec *Record) []float64
}

// Matcher is the third template component: the final decision over a
// processed, scored record, and the interpretable explanation of that
// decision. scores is the RelevanceScorer output for rec (nil when the
// engine has no scorer). Implementations must be safe for concurrent use.
type Matcher interface {
	MatchRecord(rec *Record, scores []float64) (label int, proba float64)
	ExplainRecord(rec *Record, scores []float64) Explanation
}

// UnitScores adapts a unit-level relevance.Scorer (the trained network,
// or the Binary/Cosine ablations of Table 4) to the pipeline's
// RelevanceScorer interface.
type UnitScores struct {
	S relevance.Scorer
}

// Score implements RelevanceScorer.
func (u UnitScores) Score(rec *Record) []float64 { return u.S.Score(rec.Rel()) }

// NoScores is the RelevanceScorer of instantiations whose matcher works
// directly on the raw pair (the baseline black boxes): every record
// scores nil.
type NoScores struct{}

// Score implements RelevanceScorer.
func (NoScores) Score(*Record) []float64 { return nil }

// Verbatim is the pass-through UnitGenerator: it wraps the pair without
// tokenizing or discovering units. Matchers that featurize the raw pair
// (the baseline black boxes) pair it with NoScores.
type Verbatim struct{}

// Generate implements UnitGenerator.
func (Verbatim) Generate(p data.Pair) *Record { return &Record{Pair: p} }

// UnitExplanation is one row of an explanation: a decision unit with its
// rendered tokens, relevance and impact scores.
type UnitExplanation struct {
	Left, Right string // token texts; empty string for the absent side
	Kind        units.Kind
	Attr        int
	Relevance   float64
	Impact      float64
}

// Explanation is the full interpretable output for one record pair.
// Positive impacts push toward match, negative toward non-match. A
// matcher without decision units returns the prediction with no Units.
type Explanation struct {
	Prediction int
	Proba      float64
	Units      []UnitExplanation
}

// AttributeImpact aggregates an explanation's impacts per schema
// attribute: the CERTA-style attribute-level view the related work
// discusses. The returned slice is aligned with the schema; units whose
// attribute falls outside the schema are ignored.
func AttributeImpact(schema data.Schema, ex Explanation) []float64 {
	out := make([]float64, len(schema))
	for _, u := range ex.Units {
		if u.Attr >= 0 && u.Attr < len(out) {
			out[u.Attr] += u.Impact
		}
	}
	return out
}

// RecordError is one record pair quarantined during batch processing: a
// worker recovered a panic (or a validation failure) on it and excluded
// it from the run instead of crashing the whole batch.
type RecordError struct {
	Index int    // position in the dataset's pair slice
	ID    int    // the pair's ID
	Err   string // the recovered panic or error text
}
