package datagen

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"wym/internal/data"
)

func TestScenarioUnknownKey(t *testing.T) {
	if _, err := GenerateScenario("nope", 100, 1); err == nil {
		t.Fatal("unknown scenario key succeeded")
	}
}

// TestScenarioDeterministic: the same (key, n, seed) always produces a
// byte-identical CSV file; a different seed produces a different one.
func TestScenarioDeterministic(t *testing.T) {
	dir := t.TempDir()
	for _, key := range ScenarioKeys() {
		var bytes [][]byte
		for run, seed := range []int64{7, 7, 8} {
			d, err := GenerateScenario(key, 120, seed)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, key+"-"+string(rune('a'+run))+".csv")
			if err := data.SaveFile(path, d); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			bytes = append(bytes, raw)
		}
		if !reflect.DeepEqual(bytes[0], bytes[1]) {
			t.Fatalf("%s: same seed produced different CSV bytes", key)
		}
		if reflect.DeepEqual(bytes[0], bytes[2]) {
			t.Fatalf("%s: different seeds produced identical CSV bytes", key)
		}
	}
}

// TestScenarioShape: every pack delivers the requested size, the shared
// match rate, non-empty entities over its schema, and valid UTF-8.
func TestScenarioShape(t *testing.T) {
	for _, key := range ScenarioKeys() {
		d, err := GenerateScenario(key, 400, 3)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != key || len(d.Pairs) != 400 {
			t.Fatalf("%s: name=%q size=%d", key, d.Name, len(d.Pairs))
		}
		if r := d.MatchRate(); math.Abs(r-scenarioMatchRate) > 0.02 {
			t.Fatalf("%s: match rate %v, want ~%v", key, r, scenarioMatchRate)
		}
		for i, p := range d.Pairs {
			for _, e := range []data.Entity{p.Left, p.Right} {
				if len(e) != len(d.Schema) {
					t.Fatalf("%s pair %d: %d attrs over schema %v", key, i, len(e), d.Schema)
				}
				nonEmpty := false
				for _, v := range e {
					if !utf8.ValidString(v) {
						t.Fatalf("%s pair %d: invalid UTF-8 %q", key, i, v)
					}
					if v != "" {
						nonEmpty = true
					}
				}
				if !nonEmpty {
					t.Fatalf("%s pair %d: fully empty entity", key, i)
				}
			}
		}
	}
}

// TestScenarioUnicodePreservesEncoding: the pack that exists to stress
// multi-byte text must never emit a token with a broken encoding, and
// must actually exercise non-ASCII on both sides.
func TestScenarioUnicodePreservesEncoding(t *testing.T) {
	d, err := GenerateScenario("unicode", 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	multibyte := 0
	for _, p := range d.Pairs {
		for _, e := range []data.Entity{p.Left, p.Right} {
			for _, v := range e {
				if len(v) != utf8.RuneCountInString(v) {
					multibyte++
				}
			}
		}
	}
	if multibyte < len(d.Pairs) {
		t.Fatalf("only %d multi-byte values across %d pairs", multibyte, len(d.Pairs))
	}
}

func TestRuneTypoKeepsValidUTF8(t *testing.T) {
	rng := newTestRng()
	for _, tok := range []string{"crème", "молоко", "抹茶そば", "jalapeño", "smörgås"} {
		for i := 0; i < 200; i++ {
			got := runeTypo(rng, tok)
			if !utf8.ValidString(got) {
				t.Fatalf("runeTypo(%q) = %q: invalid UTF-8", tok, got)
			}
		}
	}
}

func TestFoldDiacritics(t *testing.T) {
	for in, want := range map[string]string{
		"crème brûlée": "creme brulee",
		"jalapeño":     "jalapeno",
		"süß":          "suss",
		"молоко":       "молоко", // non-Latin passes through
		"plain":        "plain",
	} {
		if got := foldDiacritics(in); got != want {
			t.Fatalf("foldDiacritics(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestScenarioHeteroSchemaFlattens: every right-hand row is the
// flattened single-title view — brand column blank, brand token folded
// into the name — regardless of label, so flattening can't leak it.
func TestScenarioHeteroSchemaFlattens(t *testing.T) {
	d, err := GenerateScenario("hetero-schema", 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range d.Pairs {
		if p.Right[1] != "" {
			t.Fatalf("pair %d: right brand column %q not blanked", i, p.Right[1])
		}
		if p.Left[1] == "" || p.Left[2] == "" {
			t.Fatalf("pair %d: left source lost a column: %v", i, p.Left)
		}
		if !strings.Contains(p.Right[0], " ") {
			t.Fatalf("pair %d: right title %q did not absorb the brand", i, p.Right[0])
		}
	}
}

// TestScenarioDriftTemporalOrder: no shuffle — IDs are arrival order —
// every prefix window stays near the global match rate, and the late
// suffix visibly carries the drift (DriftToken doubles a letter, so
// drifted entities show adjacent repeated runes far more often than the
// raw early regime).
func TestScenarioDriftTemporalOrder(t *testing.T) {
	const n = 500
	d, err := GenerateScenario("drift-temporal", n, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range d.Pairs {
		if p.ID != i {
			t.Fatalf("pair %d has ID %d: stream was shuffled", i, p.ID)
		}
	}
	for _, cut := range []int{n * 3 / 10, n * 6 / 10, n} {
		matches := 0
		for _, p := range d.Pairs[:cut] {
			if p.Label == data.Match {
				matches++
			}
		}
		if r := float64(matches) / float64(cut); math.Abs(r-scenarioMatchRate) > 0.03 {
			t.Fatalf("prefix [0,%d): match rate %v, want ~%v", cut, r, scenarioMatchRate)
		}
	}
	driftFrom := n * 6 / 10
	hasDouble := func(e data.Entity) bool {
		for _, attr := range e {
			for _, tok := range strings.Fields(attr) {
				runes := []rune(tok)
				for i := 1; i < len(runes); i++ {
					if runes[i] == runes[i-1] {
						return true
					}
				}
			}
		}
		return false
	}
	frac := func(pairs []data.Pair) float64 {
		c := 0
		for _, p := range pairs {
			if hasDouble(p.Right) {
				c++
			}
		}
		return float64(c) / float64(len(pairs))
	}
	early, late := frac(d.Pairs[:driftFrom]), frac(d.Pairs[driftFrom:])
	if late < early+0.1 {
		t.Fatalf("late suffix shows no drift: doubled-rune fraction early=%.3f late=%.3f", early, late)
	}
}

// TestScenarioCustomer360Sources: the source column always disagrees
// inside a pair (a profile never needs matching against its own feed)
// and each feed's formatting convention shows up.
func TestScenarioCustomer360Sources(t *testing.T) {
	d, err := GenerateScenario("customer360", 400, 13)
	if err != nil {
		t.Fatal(err)
	}
	conventions := map[string]int{}
	for i, p := range d.Pairs {
		ls, rs := p.Left[4], p.Right[4]
		if ls == rs {
			t.Fatalf("pair %d: both sides from source %q", i, ls)
		}
		for _, e := range []data.Entity{p.Left, p.Right} {
			switch e[4] {
			case "crm":
				if strings.Contains(e[0], ", ") && strings.HasPrefix(e[2], "(") {
					conventions["crm"]++
				}
			case "web":
				if strings.Count(e[2], "-") == 2 {
					conventions["web"]++
				}
			case "store":
				if !strings.Contains(e[2], " ") && !strings.Contains(e[2], "-") {
					conventions["store"]++
				}
			}
		}
	}
	for _, src := range []string{"crm", "web", "store"} {
		if conventions[src] < 50 {
			t.Fatalf("source %s convention seen only %d times", src, conventions[src])
		}
	}
}
