package datagen

import (
	"reflect"
	"testing"
)

func TestGenerateTablesShape(t *testing.T) {
	p, ok := ProfileByKey("S-FZ")
	if !ok {
		t.Fatal("profile S-FZ missing")
	}
	tp := GenerateTables(p, 500, 0.25)
	if len(tp.Left) != 500 || len(tp.Right) != 500 {
		t.Fatalf("tables %dx%d, want 500x500", len(tp.Left), len(tp.Right))
	}
	if len(tp.Truth) != 125 {
		t.Fatalf("truth has %d pairs, want 125", len(tp.Truth))
	}
	for i, pr := range tp.Truth {
		if pr[0] != i {
			t.Fatalf("truth not sorted by left index at %d: %v", i, pr)
		}
		if pr[1] < 0 || pr[1] >= 500 {
			t.Fatalf("truth right index out of range: %v", pr)
		}
	}
	// Matches must not be index-aligned (the permutation must do work).
	aligned := 0
	for _, pr := range tp.Truth {
		if pr[0] == pr[1] {
			aligned++
		}
	}
	if aligned == len(tp.Truth) {
		t.Fatal("right table not permuted")
	}
	for _, row := range tp.Left {
		if len(row) != len(tp.Schema) {
			t.Fatalf("row arity %d, schema arity %d", len(row), len(tp.Schema))
		}
	}
	// A true match pair should share tokens; spot-check the first.
	pr := tp.Truth[0]
	if tp.Left[pr[0]][0] == "" || tp.Right[pr[1]][0] == "" {
		t.Fatalf("empty head attribute in match pair %v", pr)
	}
}

func TestGenerateTablesDeterministic(t *testing.T) {
	p, _ := ProfileByKey("S-AG")
	a := GenerateTables(p, 200, 0.3)
	b := GenerateTables(p, 200, 0.3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateTables not deterministic")
	}
	c := GenerateTables(p, 201, 0.3)
	if reflect.DeepEqual(a.Left, c.Left) {
		t.Fatal("row count not mixed into the seed")
	}
}

func TestGenerateTablesEdgeRates(t *testing.T) {
	p, _ := ProfileByKey("S-FZ")
	if tp := GenerateTables(p, 50, 0); len(tp.Truth) != 0 {
		t.Fatalf("match rate 0 produced %d truth pairs", len(tp.Truth))
	}
	if tp := GenerateTables(p, 50, 1); len(tp.Truth) != 50 {
		t.Fatalf("match rate 1 produced %d truth pairs", len(tp.Truth))
	}
	if tp := GenerateTables(p, 0, 0.5); len(tp.Left) != 1 {
		t.Fatalf("zero rows not clamped: %d", len(tp.Left))
	}
	if tp := GenerateTables(p, 10, 7); len(tp.Truth) != 10 {
		t.Fatalf("match rate clamp failed: %d", len(tp.Truth))
	}
}

func BenchmarkGenerateTables(b *testing.B) {
	p, _ := ProfileByKey("S-FZ")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateTables(p, 10000, 0.2)
	}
}
