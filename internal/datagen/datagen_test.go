package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"wym/internal/data"
	"wym/internal/textsim"
)

func TestBenchmarkProfiles(t *testing.T) {
	profiles := Benchmark()
	if len(profiles) != 12 {
		t.Fatalf("benchmark has %d profiles, want 12", len(profiles))
	}
	// Table 2 sizes and match rates.
	want := map[string]struct {
		size int
		rate float64
	}{
		"S-DG": {28707, 0.1863}, "S-DA": {12363, 0.1796},
		"S-AG": {11460, 0.1018}, "S-WA": {10242, 0.0939},
		"S-BR": {450, 0.1511}, "S-IA": {539, 0.2449},
		"S-FZ": {946, 0.1163}, "T-AB": {9575, 0.1074},
		"D-IA": {539, 0.2449}, "D-DA": {12363, 0.1796},
		"D-DG": {28707, 0.1863}, "D-WA": {10242, 0.0939},
	}
	for _, p := range profiles {
		w, ok := want[p.Key]
		if !ok {
			t.Fatalf("unexpected profile %q", p.Key)
		}
		if p.Size != w.size || math.Abs(p.MatchRate-w.rate) > 1e-9 {
			t.Fatalf("%s: size/rate = %d/%v, want %d/%v", p.Key, p.Size, p.MatchRate, w.size, w.rate)
		}
	}
}

func TestProfileByKey(t *testing.T) {
	p, ok := ProfileByKey("S-AG")
	if !ok || p.Name != "Amazon-Google" {
		t.Fatalf("ProfileByKey = %+v, %v", p, ok)
	}
	if _, ok := ProfileByKey("NOPE"); ok {
		t.Fatal("unknown key should return false")
	}
}

func TestGenerateSizeAndRate(t *testing.T) {
	p, _ := ProfileByKey("S-DA")
	d := Generate(p, 0.05)
	wantN := int(float64(p.Size) * 0.05)
	if d.Size() != wantN {
		t.Fatalf("size = %d, want %d", d.Size(), wantN)
	}
	if math.Abs(d.MatchRate()-p.MatchRate) > 0.02 {
		t.Fatalf("match rate = %v, want ~%v", d.MatchRate(), p.MatchRate)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateFloor(t *testing.T) {
	p, _ := ProfileByKey("S-DA")
	d := Generate(p, 0.0001)
	if d.Size() != 60 {
		t.Fatalf("tiny scale size = %d, want floor 60", d.Size())
	}
	// Small datasets keep their true size even when it is below the floor
	// times anything.
	br, _ := ProfileByKey("S-BR")
	d = Generate(br, 1.0)
	if d.Size() != 450 {
		t.Fatalf("S-BR size = %d, want 450", d.Size())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByKey("S-AG")
	a := Generate(p, 0.02)
	b := Generate(p, 0.02)
	if !reflect.DeepEqual(a.Pairs, b.Pairs) {
		t.Fatal("generation is not deterministic")
	}
}

func TestGenerateMatchesAreSimilar(t *testing.T) {
	// Across profiles, matching pairs must be substantially more token-
	// similar than non-matching pairs — otherwise no matcher could work.
	for _, key := range []string{"S-DA", "S-AG", "S-FZ", "T-AB", "D-WA"} {
		p, _ := ProfileByKey(key)
		d := Generate(p, 0.05)
		var simMatch, simNon float64
		var nMatch, nNon int
		for _, pair := range d.Pairs {
			s := pairSim(pair)
			if pair.Label == data.Match {
				simMatch += s
				nMatch++
			} else {
				simNon += s
				nNon++
			}
		}
		if nMatch == 0 || nNon == 0 {
			t.Fatalf("%s: degenerate label distribution", key)
		}
		mm, mn := simMatch/float64(nMatch), simNon/float64(nNon)
		if mm <= mn+0.1 {
			t.Fatalf("%s: matches not separable: match sim %v vs non-match %v", key, mm, mn)
		}
	}
}

func TestDifficultyOrdering(t *testing.T) {
	// The match/non-match similarity gap must be wider on the easy
	// datasets than on the hard ones.
	gap := func(key string) float64 {
		p, _ := ProfileByKey(key)
		d := Generate(p, 0.05)
		var m, n float64
		var cm, cn int
		for _, pair := range d.Pairs {
			s := pairSim(pair)
			if pair.Label == data.Match {
				m += s
				cm++
			} else {
				n += s
				cn++
			}
		}
		return m/float64(cm) - n/float64(cn)
	}
	easy := gap("S-FZ")
	hard := gap("S-AG")
	if easy <= hard {
		t.Fatalf("difficulty inverted: S-FZ gap %v <= S-AG gap %v", easy, hard)
	}
}

func TestDirtyProfilesMisplaceValues(t *testing.T) {
	p, _ := ProfileByKey("D-DA")
	d := Generate(p, 0.05)
	var blanks int
	for _, pair := range d.Pairs {
		for _, e := range []data.Entity{pair.Left, pair.Right} {
			for _, v := range e[1:] {
				if v == "" {
					blanks++
				}
			}
		}
	}
	if blanks == 0 {
		t.Fatal("dirty dataset has no misplaced attribute values")
	}
	// The clean counterpart must have none.
	clean, _ := ProfileByKey("S-DA")
	d = Generate(clean, 0.05)
	for _, pair := range d.Pairs {
		for _, v := range pair.Left[1:] {
			if v == "" {
				t.Fatal("clean dataset has blank attributes")
			}
		}
	}
}

func TestTextualProfileSchemaAndLength(t *testing.T) {
	p, _ := ProfileByKey("T-AB")
	d := Generate(p, 0.02)
	if !reflect.DeepEqual(d.Schema, data.Schema{"name", "description", "price"}) {
		t.Fatalf("textual schema = %v", d.Schema)
	}
	var totalDesc int
	for _, pair := range d.Pairs {
		totalDesc += len(strings.Fields(pair.Left[1]))
	}
	if avg := float64(totalDesc) / float64(d.Size()); avg < 6 {
		t.Fatalf("textual descriptions too short: avg %v tokens", avg)
	}
}

func TestHardNegativesShareBrand(t *testing.T) {
	p, _ := ProfileByKey("S-AG") // HardNeg = 0.7
	d := Generate(p, 0.05)
	var shared, nonMatches int
	for _, pair := range d.Pairs {
		if pair.Label != data.NonMatch {
			continue
		}
		nonMatches++
		if pair.Left[1] == pair.Right[1] && pair.Left[1] != "" {
			shared++
		}
	}
	frac := float64(shared) / float64(nonMatches)
	if frac < 0.4 {
		t.Fatalf("hard negative fraction = %v, want >= 0.4", frac)
	}
}

func TestSynonymSubstitution(t *testing.T) {
	// substituteSynonym must map in both directions and leave unknown
	// tokens alone.
	rng := newTestRng()
	if got := substituteSynonym(rng, "laptop"); got != "notebook" {
		t.Fatalf("laptop -> %q", got)
	}
	if got := substituteSynonym(rng, "notebook"); got != "laptop" {
		t.Fatalf("notebook -> %q", got)
	}
	if got := substituteSynonym(rng, "xyzzy"); got != "xyzzy" {
		t.Fatalf("unknown token changed: %q", got)
	}
}

func TestMutateCodeKeepsPrefix(t *testing.T) {
	m := mutateCode("abc123x")
	if m == "abc123x" {
		t.Fatal("mutateCode returned the same code")
	}
	if !strings.HasPrefix(m, "abc") || !strings.HasSuffix(m, "x") {
		t.Fatalf("mutateCode mangled the letters: %q", m)
	}
}

func TestTypoChangesToken(t *testing.T) {
	rng := newTestRng()
	for i := 0; i < 50; i++ {
		out := typo(rng, "camera")
		if len(out) < 5 || len(out) > 6 {
			t.Fatalf("typo produced %q", out)
		}
	}
}

func TestJitterNumber(t *testing.T) {
	rng := newTestRng()
	out := jitterNumber(rng, "100", 0.1)
	var v float64
	if _, err := sscan(out, &v); err != nil {
		t.Fatalf("jitterNumber produced non-number %q", out)
	}
	if v < 85 || v > 115 {
		t.Fatalf("jitter out of range: %v", v)
	}
	if got := jitterNumber(rng, "notanumber", 0.1); got != "notanumber" {
		t.Fatalf("non-number changed: %q", got)
	}
}

// pairSim is a crude record similarity for separability checks.
func pairSim(p data.Pair) float64 {
	var l, r []string
	for _, v := range p.Left {
		l = append(l, strings.Fields(v)...)
	}
	for _, v := range p.Right {
		r = append(r, strings.Fields(v)...)
	}
	return textsim.Jaccard(l, r)
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(5)) }

func sscan(s string, v *float64) (int, error) { return fmt.Sscanf(s, "%f", v) }
