package datagen

// Vocabulary pools for the synthetic benchmark. The words are chosen to
// mimic the Magellan domains: consumer products (Amazon-Google,
// Walmart-Amazon, Abt-Buy), bibliography (DBLP-ACM, DBLP-GoogleScholar),
// music (iTunes-Amazon), beer (BeerAdvo-RateBeer) and restaurants
// (Fodors-Zagats).

var brands = []string{
	"sony", "samsung", "panasonic", "canon", "nikon", "microsoft", "apple",
	"logitech", "philips", "toshiba", "lenovo", "asus", "acer", "dell",
	"garmin", "kodak", "olympus", "sandisk", "netgear", "belkin",
}

var categories = []string{
	"camera", "laptop", "keyboard", "monitor", "printer", "router",
	"speaker", "headphones", "projector", "television", "tablet", "phone",
	"drive", "mouse", "scanner", "charger", "adapter", "microphone",
}

var adjectives = []string{
	"digital", "wireless", "portable", "compact", "professional", "ultra",
	"premium", "slim", "rugged", "smart", "optical", "ergonomic",
	"rechargeable", "waterproof", "foldable", "advanced",
}

var materials = []string{
	"black", "silver", "white", "leather", "aluminum", "carbon", "glass",
	"steel", "titanium", "graphite",
}

var fillers = []string{
	"includes", "bundle", "pack", "edition", "series", "model", "featuring",
	"designed", "high", "performance", "quality", "original", "genuine",
	"warranty", "accessory", "replacement",
}

// synonyms maps a token to interchangeable surface forms. The benchmark
// uses them to create matching records whose token overlap is semantic
// rather than syntactic — the case where embedding-based pairing must beat
// Jaro–Winkler (Table 4).
var synonyms = map[string][]string{
	"laptop":       {"notebook"},
	"television":   {"tv"},
	"headphones":   {"earphones", "headset"},
	"phone":        {"smartphone", "handset"},
	"wireless":     {"cordless"},
	"portable":     {"mobile"},
	"compact":      {"mini"},
	"drive":        {"disk"},
	"speaker":      {"loudspeaker"},
	"charger":      {"adapter"},
	"premium":      {"deluxe"},
	"professional": {"pro"},
}

// bibliography pools (DBLP-style titles).
var paperTopics = []string{
	"entity", "matching", "query", "optimization", "indexing", "streaming",
	"transactional", "distributed", "relational", "graph", "temporal",
	"probabilistic", "schema", "integration", "clustering", "learning",
	"approximate", "parallel", "adaptive", "scalable",
}

var paperNouns = []string{
	"databases", "systems", "processing", "evaluation", "models", "joins",
	"algorithms", "architectures", "semantics", "workloads", "storage",
	"networks", "warehouses", "pipelines", "frameworks",
}

var authorFirst = []string{
	"andrea", "marco", "laura", "wei", "yuliang", "anhai", "erhard", "divesh",
	"paolo", "nan", "francesco", "matteo", "sofia", "peter", "felix", "maria",
}

var authorLast = []string{
	"baraldi", "guerra", "li", "doan", "rahm", "srivastava", "merialdo",
	"tang", "paganelli", "vincini", "koudas", "firmani", "christen", "naumann",
}

var venues = []string{
	"sigmod", "vldb", "edbt", "icde", "cikm", "kdd", "www", "tkde",
}

// music pools (iTunes-style songs).
var songWords = []string{
	"midnight", "summer", "river", "golden", "echoes", "horizon", "neon",
	"velvet", "thunder", "paradise", "gravity", "wildfire", "aurora",
	"shadows", "diamonds", "satellite",
}

var artistNames = []string{
	"the wanderers", "luna gray", "static bloom", "harbor lights",
	"crimson tide", "paper planes", "night owls", "silver arcade",
}

var genres = []string{"pop", "rock", "jazz", "electronic", "folk", "indie", "soul"}

// beer pools.
var beerWords = []string{
	"hoppy", "amber", "imperial", "golden", "dark", "wild", "old", "double",
	"session", "rustic",
}

var beerStyles = []string{
	"ipa", "stout", "porter", "lager", "pilsner", "saison", "ale", "witbier",
}

var breweries = []string{
	"stone brewing", "founders", "sierra nevada", "ballast point",
	"dogfish head", "bells brewery", "harpoon", "odell brewing",
}

// restaurant pools.
var restaurantWords = []string{
	"golden", "blue", "royal", "little", "grand", "old", "corner", "garden",
}

var restaurantTypes = []string{
	"bistro", "trattoria", "grill", "diner", "cafe", "kitchen", "tavern",
	"brasserie",
}

var cities = []string{
	"new york", "los angeles", "san francisco", "chicago", "boston",
	"seattle", "austin", "portland",
}

var streets = []string{
	"main st", "oak ave", "5th ave", "broadway", "market st", "elm st",
	"sunset blvd", "park ave",
}
