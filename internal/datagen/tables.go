package datagen

import (
	"math/rand"

	"wym/internal/data"
)

// TablePair is a pair of unlabeled entity tables with ground truth — the
// input of a full-table matching job plus the answer key the e2e harness
// scores against.
type TablePair struct {
	Schema data.Schema
	Left   []data.Entity
	Right  []data.Entity
	// Truth lists the true match pairs as (left index, right index),
	// sorted by left index.
	Truth [][2]int
}

// GenerateTables materializes two entity tables of the given row count
// from the profile: matchRate of the left rows have a perturbed
// counterpart in the right table, the rest are unrelated entities on both
// sides. The right table is deterministically permuted so matches are not
// index-aligned. Generation is O(rows) — scaling to 10^6-row tables is a
// single linear pass — and deterministic in (Profile, rows, matchRate).
func GenerateTables(p Profile, rows int, matchRate float64) *TablePair {
	if rows < 1 {
		rows = 1
	}
	if matchRate < 0 {
		matchRate = 0
	}
	if matchRate > 1 {
		matchRate = 1
	}
	rng := rand.New(rand.NewSource(p.Seed*1000003 + int64(rows)))
	schema := p.Domain.Schema()
	if p.Textual {
		schema = data.Schema{"name", "description", "price"}
	}
	tp := &TablePair{
		Schema: schema,
		Left:   make([]data.Entity, 0, rows),
		Right:  make([]data.Entity, 0, rows),
	}
	nMatch := int(float64(rows)*matchRate + 0.5)
	if nMatch > rows {
		nMatch = rows
	}
	for i := 0; i < rows; i++ {
		if i < nMatch {
			pair := p.genMatch(rng)
			tp.Left = append(tp.Left, pair.Left)
			tp.Right = append(tp.Right, pair.Right)
			continue
		}
		// Unrelated rows: independent entities on each side; the right
		// copy goes through the same source-style drift as matches so
		// perturbation statistics don't leak match status.
		tp.Left = append(tp.Left, p.render(rng, p.genProto(rng)))
		tp.Right = append(tp.Right, p.render(rng, p.perturb(rng, p.genProto(rng))))
	}
	// Permute the right table so a matcher can't cheat on row alignment.
	perm := rng.Perm(rows)
	right := make([]data.Entity, rows)
	for i, j := range perm {
		right[j] = tp.Right[i]
	}
	tp.Right = right
	for i := 0; i < nMatch; i++ {
		tp.Truth = append(tp.Truth, [2]int{i, perm[i]})
	}
	return tp
}
