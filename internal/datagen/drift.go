package datagen

import (
	"encoding/binary"
	"hash/fnv"
	"strings"
	"unicode"

	"wym/internal/data"
)

// Vocabulary drift (ROADMAP item 4's temporal-drift scenario, seeded
// here for the online-learning loop): a fraction of the vocabulary
// changes surface form after training — a supplier renames fields, a
// feed starts abbreviating differently — and a model trained on the old
// forms starts missing matches. Drift selects tokens deterministically
// by hash (the same token always drifts the same way for a given seed)
// and perturbs them with a single character edit, so a drifted token
// stays recognizably similar (high n-gram overlap) but no longer
// identical — exactly the gap the feedback loop's contrastive updates
// can close, and a reproducible demo for `wym label`.

// DriftToken returns the drifted form of token, or token unchanged when
// it is not selected. Selection and the applied edit depend only on
// (token, rate, seed): deterministic, stateless, side-effect free.
// Tokens shorter than 3 runes and tokens containing non-letters
// (product codes, numbers) never drift.
func DriftToken(token string, rate float64, seed int64) string {
	if rate <= 0 {
		return token
	}
	runes := []rune(token)
	if len(runes) < 3 {
		return token
	}
	for _, r := range runes {
		if !unicode.IsLetter(r) {
			return token
		}
	}
	h := fnv.New64a()
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], uint64(seed))
	h.Write(sb[:])
	h.Write([]byte(token))
	sum := h.Sum64()
	if float64(sum%10000)/10000 >= rate {
		return token
	}
	// Single deterministic edit: double the letter at a hash-chosen
	// position ("lager" -> "lagger"). Keeps the trigram profile close.
	// Positions are rune offsets so multi-byte letters ("café",
	// "münchen") are duplicated whole, never split mid-encoding.
	p := int((sum / 10000) % uint64(len(runes)))
	return string(runes[:p+1]) + string(runes[p]) + string(runes[p+1:])
}

// DriftEntity drifts every whitespace-separated token of every
// attribute value.
func DriftEntity(e data.Entity, rate float64, seed int64) data.Entity {
	out := make(data.Entity, len(e))
	for i, attr := range e {
		fields := strings.Fields(attr)
		for j, f := range fields {
			fields[j] = DriftToken(f, rate, seed)
		}
		out[i] = strings.Join(fields, " ")
	}
	return out
}

// DriftTable drifts every entity of a table in place-order, returning a
// new slice. cmd/datagen applies it to the right-hand table so the
// drifted pair simulates one source changing under a trained model.
func DriftTable(rows []data.Entity, rate float64, seed int64) []data.Entity {
	out := make([]data.Entity, len(rows))
	for i, e := range rows {
		out[i] = DriftEntity(e, rate, seed)
	}
	return out
}
