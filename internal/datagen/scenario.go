package datagen

// Scenario packs: four deterministic stress datasets beyond the Magellan
// reproduction, each targeting a failure mode the benchmark's clean
// ASCII pairs cannot exercise — multilingual text, schema heterogeneity,
// post-deployment vocabulary drift, and multi-source identity
// resolution. Each pack ships with a committed expected-quality floor
// (testdata/scenario_floors.json at the repo root) so a regression in
// tokenization, unit discovery, or feature engineering that only shows
// up under one of these distributions fails a test instead of a user.

import (
	"fmt"
	"math/rand"
	"strings"

	"wym/internal/data"
)

// ScenarioKeys lists the available scenario packs in stable order.
func ScenarioKeys() []string {
	return []string{"unicode", "hetero-schema", "drift-temporal", "customer360"}
}

// scenarioMatchRate is shared by all packs: high enough that small
// quality-gate datasets still carry a usable positive class.
const scenarioMatchRate = 0.30

// GenerateScenario materializes one scenario pack with n labeled pairs.
// The result is deterministic in (key, n, seed): the same call always
// produces byte-identical CSV output. n is floored at 60 so tiny
// requests stay splittable.
func GenerateScenario(key string, n int, seed int64) (*data.Dataset, error) {
	if n < 60 {
		n = 60
	}
	rng := rand.New(rand.NewSource(seed))
	switch key {
	case "unicode":
		return genUnicode(rng, n), nil
	case "hetero-schema":
		return genHeteroSchema(rng, n), nil
	case "drift-temporal":
		return genDriftTemporal(rng, n, seed), nil
	case "customer360":
		return genCustomer360(rng, n), nil
	default:
		return nil, fmt.Errorf("datagen: unknown scenario %q (want one of %s)",
			key, strings.Join(ScenarioKeys(), ", "))
	}
}

// shuffleLabeled fills d with nMatch matches then non-matches from the
// two generators and shuffles, mirroring Generate's construction.
func shuffleLabeled(rng *rand.Rand, d *data.Dataset, n int,
	genMatch, genNonMatch func() data.Pair) {
	nMatch := int(float64(n)*scenarioMatchRate + 0.5)
	for i := 0; i < n; i++ {
		var p data.Pair
		if i < nMatch {
			p = genMatch()
			p.Label = data.Match
		} else {
			p = genNonMatch()
			p.Label = data.NonMatch
		}
		d.Pairs = append(d.Pairs, p)
	}
	rng.Shuffle(len(d.Pairs), func(i, j int) { d.Pairs[i], d.Pairs[j] = d.Pairs[j], d.Pairs[i] })
	for i := range d.Pairs {
		d.Pairs[i].ID = i
	}
}

// ---------------------------------------------------------------------
// unicode: multilingual specialty-food catalog. Tokens are accented
// Latin, Cyrillic, and CJK; matching copies go through rune-safe edits
// and — half the time — an ASCII-only feed that folds diacritics
// ("crème brûlée" -> "creme brulee"). Byte-oriented perturbation would
// corrupt these tokens mid-encoding; the pack exists to keep every
// stage of the pipeline UTF-8 clean.

var uniAdjectives = []string{
	"süß", "épicé", "świeży", "натуральный", "特選", "crémeux", "würzig",
	"geröstet", "ahumado", "røkt", "kräftig", "doux",
}

var uniFoods = []string{
	"café", "crème", "smörgås", "pierogi", "молоко", "抹茶", "açaí",
	"crêpe", "jalapeño", "pâté", "köttbullar", "пирожки", "餃子", "bánh",
	"brûlée", "żurek", "halloumi", "gnocchi",
}

var uniOrigins = []string{
	"münchen", "kraków", "москва", "東京", "são paulo", "reykjavík",
	"istanbul", "zürich", "montréal", "kyōto", "göteborg", "córdoba",
}

// diacriticFold maps accented Latin runes to their ASCII folding; runes
// outside the map (ASCII, Cyrillic, CJK) pass through unchanged.
var diacriticFold = map[rune]string{
	'é': "e", 'è': "e", 'ê': "e", 'ë': "e", 'ę': "e",
	'á': "a", 'à': "a", 'â': "a", 'ä': "a", 'å': "a", 'ã': "a", 'ā': "a", 'ą': "a",
	'í': "i", 'î': "i", 'ï': "i", 'ı': "i",
	'ó': "o", 'ô': "o", 'ö': "o", 'õ': "o", 'ø': "o", 'ō': "o",
	'ú': "u", 'û': "u", 'ü': "u", 'ū': "u",
	'ç': "c", 'č': "c", 'ñ': "n", 'ß': "ss",
	'ż': "z", 'ź': "z", 'ž': "z", 'ś': "s", 'š': "s", 'ł': "l", 'ř': "r",
	'ý': "y",
}

// foldDiacritics applies diacriticFold per rune.
func foldDiacritics(s string) string {
	var b strings.Builder
	for _, r := range s {
		if f, ok := diacriticFold[r]; ok {
			b.WriteString(f)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// runeTypo applies one rune-safe edit: deletion, transposition, or
// duplication. Unlike typo it never substitutes raw bytes, so
// multi-byte runes are moved or doubled whole, never split.
func runeTypo(rng *rand.Rand, tok string) string {
	runes := []rune(tok)
	if len(runes) < 3 {
		return tok
	}
	i := rng.Intn(len(runes))
	switch rng.Intn(3) {
	case 0: // deletion
		runes = append(runes[:i], runes[i+1:]...)
	case 1: // transposition
		if i+1 < len(runes) {
			runes[i], runes[i+1] = runes[i+1], runes[i]
		}
	default: // duplication
		runes = append(runes[:i+1], append([]rune{runes[i]}, runes[i+1:]...)...)
	}
	return string(runes)
}

func genUnicode(rng *rand.Rand, n int) *data.Dataset {
	d := &data.Dataset{Name: "unicode", Schema: data.Schema{"name", "origin", "price"}}
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	proto := func() data.Entity {
		name := pick(uniAdjectives) + " " + pick(uniFoods)
		if rng.Float64() < 0.4 {
			name += " " + pick(uniFoods)
		}
		price := fmt.Sprintf("%d.%02d", 2+rng.Intn(40), rng.Intn(100))
		return data.Entity{name, pick(uniOrigins), price}
	}
	perturb := func(e data.Entity) data.Entity {
		out := make(data.Entity, len(e))
		copy(out, e)
		toks := strings.Fields(out[0])
		var kept []string
		for _, tok := range toks {
			switch {
			case rng.Float64() < 0.10 && len(toks) > 1:
				continue
			case rng.Float64() < 0.15:
				tok = runeTypo(rng, tok)
			}
			kept = append(kept, tok)
		}
		if len(kept) == 0 {
			kept = toks[:1]
		}
		out[0] = strings.Join(kept, " ")
		// Half the matching copies come from an ASCII-only feed.
		if rng.Float64() < 0.5 {
			out[0] = foldDiacritics(out[0])
			out[1] = foldDiacritics(out[1])
		}
		return out
	}
	genMatch := func() data.Pair {
		left := proto()
		return data.Pair{Left: left, Right: perturb(left)}
	}
	genNonMatch := func() data.Pair {
		a, b := proto(), proto()
		if rng.Float64() < 0.5 { // hard negative: same origin, shared token
			b[1] = a[1]
			at := strings.Fields(a[0])
			bt := strings.Fields(b[0])
			bt[0] = at[0]
			b[0] = strings.Join(bt, " ")
		}
		return data.Pair{Left: a, Right: perturb(b)}
	}
	shuffleLabeled(rng, d, n, genMatch, genNonMatch)
	return d
}

// ---------------------------------------------------------------------
// hetero-schema: the left source keeps a clean four-column product
// schema; the right source is a single free-text title feed that folds
// brand and category into the name and blanks the columns. Matching
// must survive values migrating across attributes — a harder form of
// the Magellan "dirty" construction, applied to every right-hand row so
// the flattening itself carries no label signal.

func genHeteroSchema(rng *rand.Rand, n int) *data.Dataset {
	d := &data.Dataset{Name: "hetero-schema", Schema: data.Schema{"name", "brand", "category", "price"}}
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	proto := func() data.Entity {
		name := pick(adjectives) + " " + pick(materials) + " " + randomCode(rng)
		price := fmt.Sprintf("%d.%02d", 10+rng.Intn(490), rng.Intn(100))
		return data.Entity{name, pick(brands), pick(categories), price}
	}
	// flatten renders the right-source view: brand and (usually) category
	// move into the title, their columns go blank.
	flatten := func(e data.Entity) data.Entity {
		out := make(data.Entity, len(e))
		copy(out, e)
		out[0] = out[1] + " " + out[0]
		out[1] = ""
		if rng.Float64() < 0.7 {
			out[0] = out[0] + " " + out[2]
			out[2] = ""
		}
		return out
	}
	perturb := func(e data.Entity) data.Entity {
		out := make(data.Entity, len(e))
		copy(out, e)
		toks := strings.Fields(out[0])
		for i, tok := range toks {
			if rng.Float64() < 0.12 && len(tok) > 2 {
				toks[i] = typo(rng, tok)
			} else if rng.Float64() < 0.15 {
				toks[i] = substituteSynonym(rng, tok)
			}
		}
		out[0] = strings.Join(toks, " ")
		out[3] = jitterNumber(rng, out[3], 0.03)
		return out
	}
	genMatch := func() data.Pair {
		left := proto()
		return data.Pair{Left: left, Right: flatten(perturb(left))}
	}
	genNonMatch := func() data.Pair {
		a, b := proto(), proto()
		if rng.Float64() < 0.55 { // hard negative: same brand and category
			b[1], b[2] = a[1], a[2]
		}
		return data.Pair{Left: a, Right: flatten(perturb(b))}
	}
	shuffleLabeled(rng, d, n, genMatch, genNonMatch)
	return d
}

// ---------------------------------------------------------------------
// drift-temporal: a product stream in arrival order — no final shuffle.
// From the 60% mark on, the right-hand source drifts its vocabulary
// (the same deterministic DriftEntity edits `wym label -drift` demos),
// so a model trained on the early prefix faces shifted surface forms in
// the late suffix. Labels interleave by Bresenham error accumulation,
// keeping every prefix near the global match rate so temporal splits
// stay class-balanced without shuffling.

// driftTemporalRate is the vocabulary drift applied to the late suffix.
const driftTemporalRate = 0.35

func genDriftTemporal(rng *rand.Rand, n int, seed int64) *data.Dataset {
	p := Profile{
		Key: "drift-temporal", Domain: Products,
		Typo: 0.05, Drop: 0.08, Synonym: 0.12, Abbrev: 0.05,
		HardNeg: 0.5, NumberJitter: 0.02,
	}
	d := &data.Dataset{Name: "drift-temporal", Schema: p.Domain.Schema()}
	driftFrom := n * 6 / 10
	acc := 0.0
	for i := 0; i < n; i++ {
		var pair data.Pair
		acc += scenarioMatchRate
		if acc >= 1 {
			acc--
			pair = p.genMatch(rng)
			pair.Label = data.Match
		} else {
			pair = p.genNonMatch(rng)
			pair.Label = data.NonMatch
		}
		if i >= driftFrom {
			pair.Right = DriftEntity(pair.Right, driftTemporalRate, seed)
		}
		pair.ID = i
		d.Pairs = append(d.Pairs, pair)
	}
	return d
}

// ---------------------------------------------------------------------
// customer360: one person observed by three feeds with different
// formatting conventions — a CRM ("Last, First", parenthesized phone),
// a web signup (lowercase, dashed phone, sometimes a nickname mailbox),
// and a store loyalty list (initialed first name, bare digits, often no
// email). Matching copies are the same person seen by two different
// feeds; hard negatives share a surname and city, or a mailbox domain.

var custFirst = []string{
	"maria", "james", "wei", "fatima", "lucas", "aiko", "nina", "omar",
	"petra", "diego", "hanna", "ravi", "claire", "tomas", "ingrid", "samuel",
}

var custLast = []string{
	"almeida", "kowalski", "tanaka", "haddad", "johansson", "rossi",
	"novak", "okafor", "dubois", "keller", "ivanova", "murphy",
}

var custDomains = []string{
	"example.com", "mailbox.org", "fastpost.net", "homenet.io",
}

// custPerson is the ground-truth identity behind the feed views.
type custPerson struct {
	first, last, domain, city string
	phone                     [10]byte
}

func genCustPerson(rng *rand.Rand) custPerson {
	p := custPerson{
		first:  custFirst[rng.Intn(len(custFirst))],
		last:   custLast[rng.Intn(len(custLast))],
		domain: custDomains[rng.Intn(len(custDomains))],
		city:   cities[rng.Intn(len(cities))],
	}
	p.phone[0] = byte('2' + rng.Intn(7))
	for i := 1; i < 10; i++ {
		p.phone[i] = byte('0' + rng.Intn(10))
	}
	return p
}

// renderCust is one feed's view of a person.
func renderCust(rng *rand.Rand, p custPerson, source string) data.Entity {
	ph := string(p.phone[:])
	name := p.first + " " + p.last
	email := p.first + "." + p.last + "@" + p.domain
	phone := ph[:3] + " " + ph[3:6] + " " + ph[6:]
	switch source {
	case "crm":
		name = p.last + ", " + p.first
		phone = "(" + ph[:3] + ") " + ph[3:6] + "-" + ph[6:]
	case "web":
		phone = ph[:3] + "-" + ph[3:6] + "-" + ph[6:]
		if rng.Float64() < 0.4 { // nickname mailbox, same domain
			email = p.first[:1] + p.last + "@" + p.domain
		}
	case "store":
		name = p.first[:1] + ". " + p.last
		phone = ph
		if rng.Float64() < 0.5 {
			email = ""
		}
	}
	if rng.Float64() < 0.1 && len(name) > 2 {
		name = typo(rng, name)
	}
	return data.Entity{name, email, phone, p.city, source}
}

func genCustomer360(rng *rand.Rand, n int) *data.Dataset {
	d := &data.Dataset{Name: "customer360", Schema: data.Schema{"full_name", "email", "phone", "city", "source"}}
	sources := []string{"crm", "web", "store"}
	twoSources := func() (string, string) {
		i := rng.Intn(len(sources))
		j := rng.Intn(len(sources) - 1)
		if j >= i {
			j++
		}
		return sources[i], sources[j]
	}
	genMatch := func() data.Pair {
		p := genCustPerson(rng)
		a, b := twoSources()
		return data.Pair{Left: renderCust(rng, p, a), Right: renderCust(rng, p, b)}
	}
	genNonMatch := func() data.Pair {
		p, q := genCustPerson(rng), genCustPerson(rng)
		if rng.Float64() < 0.5 { // hard negative: family member or namesake
			q.last, q.city = p.last, p.city
			if rng.Float64() < 0.5 {
				q.domain = p.domain
			}
		}
		a, b := twoSources()
		return data.Pair{Left: renderCust(rng, p, a), Right: renderCust(rng, q, b)}
	}
	shuffleLabeled(rng, d, n, genMatch, genNonMatch)
	return d
}
