// Package datagen generates the synthetic Magellan-like benchmark used by
// the experiments (DESIGN.md §1 documents the substitution). Each of the
// paper's 12 datasets is reproduced as a Profile with the same schema
// family, Table-2 size and match rate, and a difficulty calibration
// (perturbation intensity, hard-negative fraction, dirtiness, periphrasis)
// chosen so the comparative results keep the paper's shape: S-FZ/S-IA/S-DA
// nearly separable, S-AG/T-AB/D-WA hard.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"wym/internal/data"
)

// Domain selects the schema family and vocabulary of a dataset.
type Domain int

// Domains.
const (
	Products Domain = iota
	Bibliography
	Music
	Beer
	Restaurants
)

// Schema returns the attribute names of the domain.
func (d Domain) Schema() data.Schema {
	switch d {
	case Bibliography:
		return data.Schema{"title", "authors", "venue", "year"}
	case Music:
		return data.Schema{"song", "artist", "album", "genre", "price"}
	case Beer:
		return data.Schema{"beer_name", "brewery", "style", "abv"}
	case Restaurants:
		return data.Schema{"name", "address", "city", "phone"}
	default:
		return data.Schema{"name", "manufacturer", "price"}
	}
}

// Profile describes one synthetic dataset: identity, size and the
// difficulty calibration.
type Profile struct {
	Key       string // short id, e.g. "S-AG"
	Name      string // long name, e.g. "Amazon-Google"
	Domain    Domain
	Size      int     // number of record pairs at scale 1.0 (Table 2)
	MatchRate float64 // fraction of matching pairs (Table 2)

	// Perturbation rates applied to the matching copy of an entity.
	Typo    float64 // per-token character mutation
	Drop    float64 // per-token deletion
	Synonym float64 // per-token synonym substitution (periphrasis)
	Abbrev  float64 // per-token abbreviation

	// HardNeg is the fraction of non-matching pairs that share their
	// brand/category (or venue/artist/...) with the other entity.
	HardNeg float64
	// NumberJitter is the relative perturbation of numeric attributes in
	// matching pairs.
	NumberJitter float64
	// CodeNoise makes the product-code channel imperfect: with this
	// probability a matching copy carries a revised code (suffix change)
	// and a hard negative keeps the identical code while differing in the
	// rest of the name — the code-confusion cases of the paper's error
	// analysis (§5.1.1).
	CodeNoise float64

	// Dirty moves attribute values into the head attribute (the Magellan
	// "dirty" variants). Textual collapses the record into a long
	// description with filler words (Abt-Buy).
	Dirty   bool
	Textual bool

	Seed int64
}

// Generate materializes the profile at the given scale (0 < scale <= 1 for
// sub-sampling; the floor is 60 pairs so tiny scales stay usable). The
// result is deterministic in (Profile, scale).
func Generate(p Profile, scale float64) *data.Dataset {
	n := int(float64(p.Size) * scale)
	if n < 60 {
		n = 60
	}
	if p.Size < 60 { // the small S-BR / S-IA datasets keep their true size
		n = p.Size
	}
	rng := rand.New(rand.NewSource(p.Seed))
	schema := p.Domain.Schema()
	if p.Textual {
		schema = data.Schema{"name", "description", "price"}
	}
	d := &data.Dataset{Name: p.Key, Schema: schema}

	nMatch := int(float64(n)*p.MatchRate + 0.5)
	for i := 0; i < n; i++ {
		var pair data.Pair
		if i < nMatch {
			pair = p.genMatch(rng)
			pair.Label = data.Match
		} else {
			pair = p.genNonMatch(rng)
			pair.Label = data.NonMatch
		}
		pair.ID = i
		d.Pairs = append(d.Pairs, pair)
	}
	// Shuffle so splits see both labels everywhere.
	rng.Shuffle(len(d.Pairs), func(i, j int) { d.Pairs[i], d.Pairs[j] = d.Pairs[j], d.Pairs[i] })
	return d
}

// proto is an entity prototype: token lists per attribute of the domain
// schema, prior to rendering and transforms.
type proto struct {
	attrs [][]string
}

func (p Profile) genMatch(rng *rand.Rand) data.Pair {
	base := p.genProto(rng)
	left := base.clone()
	right := p.perturb(rng, base)
	// A revised code on the matching copy (model refresh, regional SKU):
	// the code channel must help but not decide the task alone.
	if p.Domain == Products && rng.Float64() < p.CodeNoise && len(right.attrs[0]) > 3 {
		right.attrs[0][3] = reviseCode(right.attrs[0][3])
	}
	return data.Pair{Left: p.render(rng, left), Right: p.render(rng, right)}
}

// reviseCode flips the trailing letter of a code, modeling product
// revisions that keep the model number.
func reviseCode(code string) string {
	if code == "" {
		return code
	}
	b := []byte(code)
	last := len(b) - 1
	if b[last] >= 'a' && b[last] <= 'z' {
		b[last] = 'a' + (b[last]-'a'+1)%26
	} else {
		b[last] = '0' + (b[last]-'0'+1)%10
	}
	return string(b)
}

func (p Profile) genNonMatch(rng *rand.Rand) data.Pair {
	a := p.genProto(rng)
	b := p.genProto(rng)
	if rng.Float64() < p.HardNeg {
		p.shareComponents(rng, a, b)
	}
	// The right-hand description goes through the same source-style drift
	// as matching copies; otherwise perturbation statistics (drops, typos)
	// would leak the label.
	bp := p.perturb(rng, b)
	return data.Pair{Left: p.render(rng, a), Right: p.render(rng, bp)}
}

// genProto draws a fresh entity prototype for the domain.
func (p Profile) genProto(rng *rand.Rand) *proto {
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	switch p.Domain {
	case Bibliography:
		title := []string{pick(paperTopics), pick(paperTopics), pick(paperNouns)}
		if rng.Float64() < 0.5 {
			title = append(title, "for", pick(paperNouns))
		}
		authors := []string{pick(authorFirst), pick(authorLast), pick(authorFirst), pick(authorLast)}
		year := fmt.Sprintf("%d", 1995+rng.Intn(28))
		return &proto{attrs: [][]string{title, authors, {pick(venues)}, {year}}}
	case Music:
		song := []string{pick(songWords), pick(songWords)}
		album := []string{pick(songWords), "album"}
		price := fmt.Sprintf("%d.%02d", 1+rng.Intn(12), rng.Intn(100))
		return &proto{attrs: [][]string{song, strings.Fields(pick(artistNames)), album, {pick(genres)}, {price}}}
	case Beer:
		name := []string{pick(beerWords), pick(beerWords), pick(beerStyles)}
		abv := fmt.Sprintf("%d.%d", 4+rng.Intn(8), rng.Intn(10))
		return &proto{attrs: [][]string{name, strings.Fields(pick(breweries)), {pick(beerStyles)}, {abv}}}
	case Restaurants:
		name := []string{"the", pick(restaurantWords), pick(restaurantTypes)}
		addr := append([]string{fmt.Sprintf("%d", 10+rng.Intn(990))}, strings.Fields(pick(streets))...)
		phone := fmt.Sprintf("%03d %03d %04d", 200+rng.Intn(700), rng.Intn(1000), rng.Intn(10000))
		return &proto{attrs: [][]string{name, addr, strings.Fields(pick(cities)), {phone}}}
	default: // Products
		code := randomCode(rng)
		name := []string{pick(adjectives), pick(categories), pick(materials), code}
		price := fmt.Sprintf("%d.%02d", 10+rng.Intn(990), rng.Intn(100))
		return &proto{attrs: [][]string{name, {pick(brands)}, {price}}}
	}
}

// shareComponents copies the "identity-adjacent" parts of a into b to
// build a hard negative: same brand and product category, same venue and
// year, same artist, same brewery, or same city.
func (p Profile) shareComponents(rng *rand.Rand, a, b *proto) {
	switch p.Domain {
	case Bibliography:
		b.attrs[2] = cloneTokens(a.attrs[2]) // venue
		b.attrs[3] = cloneTokens(a.attrs[3]) // year
		// Hard bibliographic negatives also share a title topic word.
		if len(a.attrs[0]) > 0 && len(b.attrs[0]) > 0 {
			b.attrs[0][0] = a.attrs[0][0]
		}
	case Music:
		b.attrs[1] = cloneTokens(a.attrs[1]) // artist
		b.attrs[3] = cloneTokens(a.attrs[3]) // genre
	case Beer:
		b.attrs[1] = cloneTokens(a.attrs[1]) // brewery
		b.attrs[2] = cloneTokens(a.attrs[2]) // style
	case Restaurants:
		b.attrs[2] = cloneTokens(a.attrs[2]) // city
	default: // Products
		if len(a.attrs[0]) < 4 || len(b.attrs[0]) < 4 {
			return
		}
		// Same catalogue segment: brand and category always match, the
		// material sometimes — the confusable same-line negatives of the
		// Amazon-Google and Walmart-Amazon datasets. The adjective, code
		// and price stay the other entity's own, so the difference is
		// spread over several tokens rather than concentrated in one.
		b.attrs[1] = cloneTokens(a.attrs[1]) // brand
		b.attrs[0][1] = a.attrs[0][1]        // category
		if rng.Float64() < 0.5 {
			b.attrs[0][2] = a.attrs[0][2] // material
		}
		switch {
		case rng.Float64() < p.CodeNoise:
			// Coincidental identical code on a different product — the
			// channel actively misleads (§5.1.1 error analysis).
			b.attrs[0][3] = a.attrs[0][3]
		case rng.Float64() < 0.5:
			// Similar-looking code: same prefix, different digits.
			b.attrs[0][3] = mutateCode(a.attrs[0][3])
		}
		// Same-line products are priced together: copy the price with a
		// wider spread than matching copies get, so the numeric channel
		// separates softly rather than deterministically.
		if len(a.attrs) > 2 && len(b.attrs) > 2 && len(a.attrs[2]) > 0 {
			b.attrs[2] = []string{jitterNumber(rng, a.attrs[2][0], 0.3)}
		}
	}
}

// perturb applies the profile's full perturbation to a matching copy.
func (p Profile) perturb(rng *rand.Rand, src *proto) *proto {
	out := src.clone()
	for ai, toks := range out.attrs {
		if isNumeric(toks) {
			out.attrs[ai] = p.jitterNumbers(rng, toks)
			continue
		}
		var kept []string
		for _, tok := range toks {
			switch {
			case rng.Float64() < p.Drop && len(toks) > 1:
				continue // dropped
			case rng.Float64() < p.Synonym:
				tok = substituteSynonym(rng, tok)
			case rng.Float64() < p.Abbrev && len(tok) > 4:
				tok = tok[:3+rng.Intn(2)]
			case rng.Float64() < p.Typo && len(tok) > 2:
				tok = typo(rng, tok)
			}
			kept = append(kept, tok)
		}
		if len(kept) == 0 {
			kept = cloneTokens(toks[:1])
		}
		out.attrs[ai] = kept
	}
	return out
}

func (p Profile) jitterNumbers(rng *rand.Rand, toks []string) []string {
	if p.NumberJitter == 0 {
		return cloneTokens(toks)
	}
	out := make([]string, len(toks))
	for i, tok := range toks {
		out[i] = jitterNumber(rng, tok, p.NumberJitter)
	}
	return out
}

// render turns a prototype into an entity over the profile's schema,
// applying the dirty or textual transform.
func (p Profile) render(rng *rand.Rand, pr *proto) data.Entity {
	if p.Textual {
		return p.renderTextual(rng, pr)
	}
	e := make(data.Entity, len(pr.attrs))
	for i, toks := range pr.attrs {
		e[i] = strings.Join(toks, " ")
	}
	if p.Dirty {
		// Move a random non-head attribute's value into the head attribute
		// and blank the source — the Magellan dirty construction.
		if rng.Float64() < 0.5 && len(e) > 1 {
			j := 1 + rng.Intn(len(e)-1)
			if e[j] != "" {
				e[0] = e[0] + " " + e[j]
				e[j] = ""
			}
		}
	}
	return e
}

// renderTextual collapses the prototype into (name, description, price):
// the description interleaves all tokens with filler words, modeling the
// long Abt-Buy descriptions where periphrasis defeats token alignment.
func (p Profile) renderTextual(rng *rand.Rand, pr *proto) data.Entity {
	name := strings.Join(pr.attrs[0], " ")
	var desc []string
	for _, toks := range pr.attrs[:len(pr.attrs)-1] {
		desc = append(desc, toks...)
	}
	nFill := 3 + rng.Intn(4)
	for i := 0; i < nFill; i++ {
		desc = append(desc, fillers[rng.Intn(len(fillers))])
	}
	rng.Shuffle(len(desc), func(i, j int) { desc[i], desc[j] = desc[j], desc[i] })
	price := pr.attrs[len(pr.attrs)-1]
	return data.Entity{name, strings.Join(desc, " "), strings.Join(price, " ")}
}

func (pr *proto) clone() *proto {
	out := &proto{attrs: make([][]string, len(pr.attrs))}
	for i, toks := range pr.attrs {
		out.attrs[i] = cloneTokens(toks)
	}
	return out
}

func cloneTokens(toks []string) []string {
	out := make([]string, len(toks))
	copy(out, toks)
	return out
}

func substituteSynonym(rng *rand.Rand, tok string) string {
	if alts, ok := synonyms[tok]; ok {
		return alts[rng.Intn(len(alts))]
	}
	// Reverse lookup: the token may itself be a synonym form.
	for base, alts := range synonyms {
		for _, a := range alts {
			if a == tok {
				return base
			}
		}
	}
	return tok
}

func typo(rng *rand.Rand, tok string) string {
	b := []byte(tok)
	i := rng.Intn(len(b))
	switch rng.Intn(3) {
	case 0: // substitution
		b[i] = byte('a' + rng.Intn(26))
	case 1: // deletion
		b = append(b[:i], b[i+1:]...)
	default: // transposition
		if i+1 < len(b) {
			b[i], b[i+1] = b[i+1], b[i]
		}
	}
	return string(b)
}

func randomCode(rng *rand.Rand) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	var b strings.Builder
	for i := 0; i < 3; i++ {
		b.WriteByte(letters[rng.Intn(26)])
	}
	fmt.Fprintf(&b, "%03d", rng.Intn(1000))
	b.WriteByte(letters[rng.Intn(26)])
	return b.String()
}

// mutateCode changes the digits of a code while keeping its letter prefix,
// producing the confusable near-duplicate codes of hard negatives.
func mutateCode(code string) string {
	b := []byte(code)
	for i := range b {
		if b[i] >= '0' && b[i] <= '9' {
			b[i] = '0' + (b[i]-'0'+3)%10
		}
	}
	return string(b)
}

func isNumeric(toks []string) bool {
	for _, t := range toks {
		for _, r := range t {
			if (r < '0' || r > '9') && r != '.' && r != ' ' {
				return false
			}
		}
	}
	return len(toks) > 0
}

func jitterNumber(rng *rand.Rand, tok string, rel float64) string {
	var v float64
	if _, err := fmt.Sscanf(tok, "%f", &v); err != nil {
		return tok
	}
	v *= 1 + (rng.Float64()*2-1)*rel
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
