package datagen

import (
	"strings"
	"testing"
	"unicode/utf8"

	"wym/internal/data"
)

func TestDriftTokenDeterministic(t *testing.T) {
	a := DriftToken("porter", 1.0, 7)
	b := DriftToken("porter", 1.0, 7)
	if a != b {
		t.Fatalf("non-deterministic: %q vs %q", a, b)
	}
	if a == "porter" {
		t.Fatal("rate 1.0 should drift every eligible token")
	}
	if len(a) != len("porter")+1 {
		t.Fatalf("drift %q should be a single doubled letter", a)
	}
	if DriftToken("porter", 1.0, 8) == a && DriftToken("stout", 1.0, 7) == DriftToken("stout", 1.0, 8) {
		t.Fatal("seed has no effect")
	}
}

func TestDriftTokenSkipsIneligible(t *testing.T) {
	for _, tok := range []string{"ab", "x", "a1b2", "12345", "xps-13", ""} {
		if got := DriftToken(tok, 1.0, 1); got != tok {
			t.Fatalf("ineligible token %q drifted to %q", tok, got)
		}
	}
	if got := DriftToken("porter", 0, 1); got != "porter" {
		t.Fatalf("rate 0 drifted: %q", got)
	}
}

func TestDriftTokenMultiByteStaysValidUTF8(t *testing.T) {
	for _, tok := range []string{"café", "münchen", "señor", "crème", "größe", "日本語词"} {
		runes := utf8.RuneCountInString(tok)
		var drifted bool
		// Sweep seeds so every edit position gets exercised regardless of
		// where the hash lands.
		for seed := int64(0); seed < 64; seed++ {
			got := DriftToken(tok, 1.0, seed)
			if !utf8.ValidString(got) {
				t.Fatalf("DriftToken(%q, seed %d) = %q: invalid UTF-8", tok, seed, got)
			}
			if got == tok {
				t.Fatalf("rate 1.0 left eligible token %q unchanged (seed %d)", tok, seed)
			}
			if utf8.RuneCountInString(got) != runes+1 {
				t.Fatalf("DriftToken(%q, seed %d) = %q: want exactly one duplicated rune", tok, seed, got)
			}
			drifted = true
		}
		if !drifted {
			t.Fatalf("no seed drifted %q", tok)
		}
	}
	// The 3-rune floor counts runes, not bytes: a 2-rune multi-byte token
	// is ineligible even though it is ≥ 3 bytes long.
	if got := DriftToken("éà", 1.0, 1); got != "éà" {
		t.Fatalf("2-rune token drifted to %q", got)
	}
}

func TestDriftTokenRateIsApproximate(t *testing.T) {
	words := []string{"amber", "stout", "porter", "lager", "pilsner", "wheat",
		"saison", "tripel", "dunkel", "helles", "barrel", "hoppy", "citrus",
		"roasted", "malty", "crisp", "golden", "copper", "barley", "yeast"}
	var drifted int
	for _, w := range words {
		if DriftToken(w, 0.5, 3) != w {
			drifted++
		}
	}
	if drifted == 0 || drifted == len(words) {
		t.Fatalf("rate 0.5 drifted %d/%d tokens", drifted, len(words))
	}
}

func TestDriftEntityAndTable(t *testing.T) {
	e := data.Entity{"oatmeal stout dark", "129"}
	d := DriftEntity(e, 1.0, 5)
	if len(d) != len(e) {
		t.Fatal("attribute count changed")
	}
	if d[1] != "129" {
		t.Fatalf("numeric attribute drifted: %q", d[1])
	}
	if fields := strings.Fields(d[0]); len(fields) != 3 {
		t.Fatalf("token count changed: %q", d[0])
	}
	if d[0] == e[0] {
		t.Fatal("rate 1.0 left the text attribute unchanged")
	}

	rows := []data.Entity{e, {"pale ale", "7"}}
	dr := DriftTable(rows, 1.0, 5)
	if len(dr) != 2 || dr[0][0] != d[0] {
		t.Fatal("DriftTable disagrees with DriftEntity")
	}
	if rows[0][0] != e[0] {
		t.Fatal("DriftTable mutated its input")
	}
}
