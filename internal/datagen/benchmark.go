package datagen

// Benchmark returns the 12 dataset profiles of Table 2, keyed and sized as
// in the paper, with per-dataset difficulty calibrations chosen to
// reproduce the comparative shape of the evaluation (easy: S-FZ, S-IA,
// S-DA, D-DA; medium: S-DG, D-DG, S-BR, D-IA, S-WA; hard: S-AG, T-AB,
// D-WA).
func Benchmark() []Profile {
	return []Profile{
		{
			Key: "S-DG", Name: "DBLP-GoogleScholar", Domain: Bibliography,
			Size: 28707, MatchRate: 0.1863,
			Typo: 0.06, Drop: 0.10, Abbrev: 0.08, HardNeg: 0.30,
			Seed: 101,
		},
		{
			Key: "S-DA", Name: "DBLP-ACM", Domain: Bibliography,
			Size: 12363, MatchRate: 0.1796,
			Typo: 0.02, Drop: 0.04, Abbrev: 0.03, HardNeg: 0.15,
			Seed: 102,
		},
		{
			Key: "S-AG", Name: "Amazon-Google", Domain: Products,
			Size: 11460, MatchRate: 0.1018,
			Typo: 0.09, Drop: 0.18, Synonym: 0.22, Abbrev: 0.12,
			HardNeg: 0.62, NumberJitter: 0.15, CodeNoise: 0.18,
			Seed: 103,
		},
		{
			Key: "S-WA", Name: "Walmart-Amazon", Domain: Products,
			Size: 10242, MatchRate: 0.0939,
			Typo: 0.08, Drop: 0.14, Synonym: 0.15, Abbrev: 0.10,
			HardNeg: 0.50, NumberJitter: 0.12, CodeNoise: 0.12,
			Seed: 104,
		},
		{
			Key: "S-BR", Name: "BeerAdvo-RateBeer", Domain: Beer,
			Size: 450, MatchRate: 0.1511,
			Typo: 0.08, Drop: 0.12, Abbrev: 0.10, HardNeg: 0.35,
			Seed: 105,
		},
		{
			Key: "S-IA", Name: "iTunes-Amazon", Domain: Music,
			Size: 539, MatchRate: 0.2449,
			Typo: 0.03, Drop: 0.05, Abbrev: 0.04, HardNeg: 0.20,
			NumberJitter: 0.05,
			Seed:         106,
		},
		{
			Key: "S-FZ", Name: "Fodors-Zagats", Domain: Restaurants,
			Size: 946, MatchRate: 0.1163,
			Typo: 0.02, Drop: 0.04, Abbrev: 0.03, HardNeg: 0.10,
			Seed: 107,
		},
		{
			Key: "T-AB", Name: "Abt-Buy", Domain: Products,
			Size: 9575, MatchRate: 0.1074,
			Typo: 0.09, Drop: 0.18, Synonym: 0.25, Abbrev: 0.12,
			HardNeg: 0.60, NumberJitter: 0.15, CodeNoise: 0.16,
			Textual: true,
			Seed:    108,
		},
		{
			Key: "D-IA", Name: "iTunes-Amazon (dirty)", Domain: Music,
			Size: 539, MatchRate: 0.2449,
			Typo: 0.03, Drop: 0.05, Abbrev: 0.04, HardNeg: 0.20,
			NumberJitter: 0.05,
			Dirty:        true,
			Seed:         109,
		},
		{
			Key: "D-DA", Name: "DBLP-ACM (dirty)", Domain: Bibliography,
			Size: 12363, MatchRate: 0.1796,
			Typo: 0.02, Drop: 0.04, Abbrev: 0.03, HardNeg: 0.15,
			Dirty: true,
			Seed:  110,
		},
		{
			Key: "D-DG", Name: "DBLP-GoogleScholar (dirty)", Domain: Bibliography,
			Size: 28707, MatchRate: 0.1863,
			Typo: 0.06, Drop: 0.10, Abbrev: 0.08, HardNeg: 0.30,
			Dirty: true,
			Seed:  111,
		},
		{
			Key: "D-WA", Name: "Walmart-Amazon (dirty)", Domain: Products,
			Size: 10242, MatchRate: 0.0939,
			Typo: 0.10, Drop: 0.20, Synonym: 0.20, Abbrev: 0.14,
			HardNeg: 0.60, NumberJitter: 0.18, CodeNoise: 0.14,
			Dirty: true,
			Seed:  112,
		},
	}
}

// ProfileByKey returns the named profile from Benchmark, or false.
func ProfileByKey(key string) (Profile, bool) {
	for _, p := range Benchmark() {
		if p.Key == key {
			return p, true
		}
	}
	return Profile{}, false
}
