package units

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wym/internal/tokenize"
)

// The property tests run Discover over hundreds of random records (via
// SimOverride, so no embedding stack is needed) and check the invariants
// Algorithm 1 promises: full token coverage with no paired/unpaired
// overlap (CheckInvariants), per-stage similarity thresholds, stage-1/2
// one-to-one matching, stage-3 anchoring against already-paired tokens,
// and deterministic output.

// randomRecord builds a random Input whose similarity is a fixed random
// L×R matrix, returning the input and the matrix lookup.
func randomRecord(rng *rand.Rand) (Input, func(l, r int) float64) {
	numAttrs := 1 + rng.Intn(3)
	mkToks := func(n int) []tokenize.Token {
		toks := make([]tokenize.Token, n)
		for i := range toks {
			toks[i] = tokenize.Token{Text: fmt.Sprintf("t%d", i), Attr: rng.Intn(numAttrs), Pos: i}
		}
		return toks
	}
	left := mkToks(rng.Intn(10))
	right := mkToks(rng.Intn(10))
	L, R := len(left), len(right)
	mat := make([]float64, L*R)
	for i := range mat {
		mat[i] = rng.Float64()
	}
	sim := func(l, r int) float64 { return mat[l*R+r] }
	return Input{Left: left, Right: right, NumAttrs: numAttrs, SimOverride: sim}, sim
}

func TestDiscoverRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	th := PaperThresholds
	for trial := 0; trial < 300; trial++ {
		in, sim := randomRecord(rng)
		L, R := len(in.Left), len(in.Right)
		us := Discover(in, th)

		// Structural invariants of §3.1.1: every token covered, none both
		// paired and unpaired, indices in range.
		if err := CheckInvariants(us, L, R); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// earlyL/earlyR: tokens paired by stages 1–2, i.e. the anchor sets
		// stage 3 is allowed to chain onto.
		earlyL := make(map[int]bool)
		earlyR := make(map[int]bool)
		for _, u := range us {
			if u.Kind == Paired && (u.Stage == StageIntraAttr || u.Stage == StageInterAttr) {
				if earlyL[u.Left] {
					t.Fatalf("trial %d: left token %d paired twice in stages 1-2", trial, u.Left)
				}
				if earlyR[u.Right] {
					t.Fatalf("trial %d: right token %d paired twice in stages 1-2", trial, u.Right)
				}
				earlyL[u.Left], earlyR[u.Right] = true, true
			}
		}

		laterL := make(map[int]bool)
		laterR := make(map[int]bool)
		for i, u := range us {
			if u.Kind != Paired {
				continue
			}
			// The recorded similarity is the true one.
			if got := sim(u.Left, u.Right); u.Sim != got {
				t.Fatalf("trial %d unit %d: Sim %v, matrix says %v", trial, i, u.Sim, got)
			}
			switch u.Stage {
			case StageIntraAttr:
				if u.Sim < th.Theta {
					t.Fatalf("trial %d unit %d: stage-1 sim %v below θ=%v", trial, i, u.Sim, th.Theta)
				}
				// Stage 1 only pairs tokens of the same attribute.
				la, ra := in.Left[u.Left].Attr, in.Right[u.Right].Attr
				if la != ra || u.Attr != la {
					t.Fatalf("trial %d unit %d: stage-1 attrs %d/%d (unit says %d)", trial, i, la, ra, u.Attr)
				}
			case StageInterAttr:
				if u.Sim < th.Eta {
					t.Fatalf("trial %d unit %d: stage-2 sim %v below η=%v", trial, i, u.Sim, th.Eta)
				}
			case StageOneToMany:
				if u.Sim < th.Epsilon {
					t.Fatalf("trial %d unit %d: stage-3 sim %v below ε=%v", trial, i, u.Sim, th.Epsilon)
				}
				// Stage 3 pairs a still-free token with an anchor that
				// stages 1-2 already paired (the anchor is multiply
				// assigned by design); each free token chains once.
				freeLeft := !earlyL[u.Left] && earlyR[u.Right]
				freeRight := !earlyR[u.Right] && earlyL[u.Left]
				if !freeLeft && !freeRight {
					t.Fatalf("trial %d unit %d: stage-3 pair %+v has no stage-1/2 anchor", trial, i, u)
				}
				if freeLeft {
					if laterL[u.Left] {
						t.Fatalf("trial %d unit %d: free left token %d chained twice", trial, i, u.Left)
					}
					laterL[u.Left] = true
				} else {
					if laterR[u.Right] {
						t.Fatalf("trial %d unit %d: free right token %d chained twice", trial, i, u.Right)
					}
					laterR[u.Right] = true
				}
			default:
				t.Fatalf("trial %d unit %d: paired unit with stage %v", trial, i, u.Stage)
			}
		}

		// Reproducibility: the record always yields the same units.
		if again := Discover(in, th); !reflect.DeepEqual(us, again) {
			t.Fatalf("trial %d: Discover is not deterministic:\n%v\n%v", trial, us, again)
		}
	}
}

func TestDiscoverCodeExactProperty(t *testing.T) {
	// With CodeExact on, a token flagged as a product code may only pair
	// with an exactly equal text, regardless of the embedding similarity.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		in, _ := randomRecord(rng)
		in.CodeExact = true
		// A tiny alphabet and random code flags force both equal and
		// unequal code-token encounters.
		for i := range in.Left {
			in.Left[i].Text = string(rune('a' + rng.Intn(3)))
			in.Left[i].Code = rng.Intn(2) == 0
		}
		for i := range in.Right {
			in.Right[i].Text = string(rune('a' + rng.Intn(3)))
			in.Right[i].Code = rng.Intn(2) == 0
		}
		us := Discover(in, PaperThresholds)
		if err := CheckInvariants(us, len(in.Left), len(in.Right)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, u := range us {
			if u.Kind != Paired {
				continue
			}
			lt, rt := in.Left[u.Left], in.Right[u.Right]
			if (lt.Code || rt.Code) && lt.Text != rt.Text {
				t.Fatalf("trial %d unit %d: code token paired with unequal text: %q vs %q",
					trial, i, lt.Text, rt.Text)
			}
		}
	}
}

func TestDiscoverEmptySides(t *testing.T) {
	// Degenerate records: one or both sides empty must still satisfy the
	// invariants (everything unpaired, nothing out of range).
	sim := func(l, r int) float64 { return 1 }
	toks := []tokenize.Token{{Text: "a", Attr: 0}, {Text: "b", Attr: 0}}
	cases := []struct{ left, right []tokenize.Token }{
		{nil, nil},
		{toks, nil},
		{nil, toks},
	}
	for i, c := range cases {
		in := Input{Left: c.left, Right: c.right, NumAttrs: 1, SimOverride: sim}
		us := Discover(in, PaperThresholds)
		if err := CheckInvariants(us, len(c.left), len(c.right)); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for _, u := range us {
			if u.Kind == Paired {
				t.Fatalf("case %d: paired unit %v with an empty side", i, u)
			}
		}
	}
}
