package units

import (
	"math/rand"
	"strings"
	"testing"

	"wym/internal/embed"
	"wym/internal/tokenize"
)

// buildInput tokenizes two entities over the same schema and embeds the
// tokens with the hash source (no context mixing, for test determinism).
func buildInput(left, right []string, codeExact bool) Input {
	src := embed.NewHash()
	lt := tokenize.Entity(left, tokenize.Default)
	rt := tokenize.Entity(right, tokenize.Default)
	return Input{
		Left:      lt,
		Right:     rt,
		LeftVecs:  embed.Contextualize(src, tokenize.Texts(lt), 0),
		RightVecs: embed.Contextualize(src, tokenize.Texts(rt), 0),
		NumAttrs:  len(left),
		CodeExact: codeExact,
	}
}

func TestDiscoverIdenticalEntities(t *testing.T) {
	in := buildInput(
		[]string{"digital camera", "sony"},
		[]string{"digital camera", "sony"},
		false,
	)
	us := Discover(in, PaperThresholds)
	if err := CheckInvariants(us, len(in.Left), len(in.Right)); err != nil {
		t.Fatal(err)
	}
	c := Count(us)
	if c.Paired != 3 || c.Unpaired != 0 {
		t.Fatalf("identical entities: %+v, want 3 paired / 0 unpaired", c)
	}
	for _, u := range us {
		if u.Sim < 0.99 {
			t.Fatalf("identical tokens should pair with sim ~1: %v", u)
		}
		if u.Stage != StageIntraAttr {
			t.Fatalf("identical tokens should pair intra-attribute: %v", u)
		}
	}
}

func TestDiscoverDisjointEntities(t *testing.T) {
	in := buildInput(
		[]string{"espresso machine", "delonghi"},
		[]string{"wireless keyboard", "logitech"},
		false,
	)
	us := Discover(in, PaperThresholds)
	if err := CheckInvariants(us, len(in.Left), len(in.Right)); err != nil {
		t.Fatal(err)
	}
	c := Count(us)
	if c.Paired != 0 {
		t.Fatalf("disjoint entities paired %d units", c.Paired)
	}
	if c.Unpaired != len(in.Left)+len(in.Right) {
		t.Fatalf("unpaired = %d, want %d", c.Unpaired, len(in.Left)+len(in.Right))
	}
}

func TestDiscoverInterAttributeRescue(t *testing.T) {
	// "sony" sits in the name attribute on the left but in the brand
	// attribute on the right — the dirty-data case stage 2 handles.
	in := buildInput(
		[]string{"camera sony", ""},
		[]string{"camera", "sony"},
		false,
	)
	us := Discover(in, PaperThresholds)
	if err := CheckInvariants(us, len(in.Left), len(in.Right)); err != nil {
		t.Fatal(err)
	}
	var foundInter bool
	for _, u := range us {
		if u.Kind == Paired && u.Stage == StageInterAttr {
			l, r := Texts(u, in.Left, in.Right)
			if l == "sony" && r == "sony" {
				foundInter = true
			}
		}
	}
	if !foundInter {
		t.Fatalf("misplaced token not rescued by stage 2: %v", us)
	}
}

func TestDiscoverOneToMany(t *testing.T) {
	// "camera" appears twice on the left but once on the right: the second
	// occurrence must chain onto the already-paired right token (stage 3).
	in := buildInput(
		[]string{"camera camera", ""},
		[]string{"camera", ""},
		false,
	)
	us := Discover(in, PaperThresholds)
	if err := CheckInvariants(us, len(in.Left), len(in.Right)); err != nil {
		t.Fatal(err)
	}
	c := Count(us)
	if c.Paired != 2 || c.Unpaired != 0 {
		t.Fatalf("one-to-many chain missing: %+v (%v)", c, us)
	}
	var oneToMany bool
	for _, u := range us {
		if u.Stage == StageOneToMany {
			oneToMany = true
		}
	}
	if !oneToMany {
		t.Fatalf("expected a stage-3 unit: %v", us)
	}
}

func TestDiscoverOneToManyRightSide(t *testing.T) {
	in := buildInput(
		[]string{"camera", ""},
		[]string{"camera camera", ""},
		false,
	)
	us := Discover(in, PaperThresholds)
	if err := CheckInvariants(us, len(in.Left), len(in.Right)); err != nil {
		t.Fatal(err)
	}
	if c := Count(us); c.Paired != 2 || c.Unpaired != 0 {
		t.Fatalf("right-side chain missing: %+v", c)
	}
}

func TestDiscoverCodeExactHeuristic(t *testing.T) {
	// Two near-identical codes must NOT pair under the heuristic...
	in := buildInput(
		[]string{"dslra200w"},
		[]string{"dslra300w"},
		true,
	)
	us := Discover(in, PaperThresholds)
	if c := Count(us); c.Paired != 0 {
		t.Fatalf("different codes paired under CodeExact: %v", us)
	}
	// ... while equal codes must pair with similarity 1.
	in = buildInput([]string{"dslra200w"}, []string{"dslra200w"}, true)
	us = Discover(in, PaperThresholds)
	if c := Count(us); c.Paired != 1 || us[0].Sim != 1 {
		t.Fatalf("equal codes should pair exactly: %v", us)
	}
	// Without the heuristic, codes sharing almost all character n-grams
	// do pair — the failure mode the paper's error analysis describes.
	in = buildInput([]string{"39400416"}, []string{"39400417"}, false)
	us = Discover(in, PaperThresholds)
	if c := Count(us); c.Paired != 1 {
		t.Fatalf("near-identical codes should pair without the heuristic: %v", us)
	}
	in = buildInput([]string{"39400416"}, []string{"39400417"}, true)
	us = Discover(in, PaperThresholds)
	if c := Count(us); c.Paired != 0 {
		t.Fatalf("CodeExact should forbid unequal codes: %v", us)
	}
}

func TestDiscoverSimOverride(t *testing.T) {
	in := buildInput([]string{"abc"}, []string{"abd"}, false)
	in.SimOverride = func(l, r int) float64 { return 0 } // forbid all pairs
	us := Discover(in, PaperThresholds)
	if c := Count(us); c.Paired != 0 {
		t.Fatalf("SimOverride ignored: %v", us)
	}
	in.SimOverride = func(l, r int) float64 { return 1 } // force pairing
	us = Discover(in, PaperThresholds)
	if c := Count(us); c.Paired != 1 {
		t.Fatalf("SimOverride ignored: %v", us)
	}
}

func TestDiscoverEmptyEntities(t *testing.T) {
	in := buildInput([]string{""}, []string{""}, false)
	us := Discover(in, PaperThresholds)
	if len(us) != 0 {
		t.Fatalf("empty entities should produce no units: %v", us)
	}
	if err := CheckInvariants(us, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverInvariantsProperty(t *testing.T) {
	// Random small entities over a shared vocabulary: the invariants must
	// hold for every outcome of Algorithm 1.
	vocab := []string{"camera", "cameras", "sony", "nikon", "lens", "zoom",
		"digital", "kit", "dslra200w", "5811", "black", "case"}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		mk := func() []string {
			attrs := make([]string, 2)
			for a := range attrs {
				n := rng.Intn(5)
				words := make([]string, n)
				for i := range words {
					words[i] = vocab[rng.Intn(len(vocab))]
				}
				attrs[a] = strings.Join(words, " ")
			}
			return attrs
		}
		in := buildInput(mk(), mk(), rng.Intn(2) == 0)
		us := Discover(in, PaperThresholds)
		if err := CheckInvariants(us, len(in.Left), len(in.Right)); err != nil {
			t.Fatalf("trial %d: %v\nunits: %v", trial, err, us)
		}
	}
}

func TestDiscoverPairSimsAboveThresholds(t *testing.T) {
	in := buildInput(
		[]string{"digital camera lens kit", "sony"},
		[]string{"digital cameras leather case", "nikon"},
		false,
	)
	us := Discover(in, PaperThresholds)
	for _, u := range us {
		if u.Kind != Paired {
			continue
		}
		var min float64
		switch u.Stage {
		case StageIntraAttr:
			min = PaperThresholds.Theta
		case StageInterAttr:
			min = PaperThresholds.Eta
		case StageOneToMany:
			min = PaperThresholds.Epsilon
		}
		if u.Sim < min {
			t.Fatalf("unit %v below its stage threshold %v", u, min)
		}
	}
}

func TestKeySymmetry(t *testing.T) {
	left := tokenize.Entity([]string{"camera sony"}, tokenize.Default)
	right := tokenize.Entity([]string{"sony camera"}, tokenize.Default)
	// (camera, sony) from left->right and (sony, camera) must share a key.
	u1 := Unit{Kind: Paired, Left: 0, Right: 0} // camera, sony
	u2 := Unit{Kind: Paired, Left: 1, Right: 1} // sony, camera
	if Key(u1, left, right) != Key(u2, left, right) {
		t.Fatal("Key must be order-invariant for paired units")
	}
}

func TestKeyUnpaired(t *testing.T) {
	left := tokenize.Entity([]string{"eng"}, tokenize.Default)
	u := Unit{Kind: UnpairedLeft, Left: 0, Right: -1}
	if k := Key(u, left, nil); !strings.Contains(k, "[UNP]") {
		t.Fatalf("unpaired key = %q", k)
	}
}

func TestDescribe(t *testing.T) {
	in := buildInput([]string{"exch"}, []string{"exch"}, false)
	us := Discover(in, PaperThresholds)
	if got := Describe(us[0], &in); got != "(exch, exch)" {
		t.Fatalf("Describe = %q", got)
	}
	un := Unit{Kind: UnpairedLeft, Left: 0, Right: -1}
	if got := Describe(un, &in); got != "(exch, —)" {
		t.Fatalf("Describe unpaired = %q", got)
	}
}

func TestCheckInvariantsDetectsViolations(t *testing.T) {
	cases := []struct {
		name   string
		us     []Unit
		nl, nr int
	}{
		{"uncovered token", nil, 1, 0},
		{"double membership", []Unit{
			{Kind: Paired, Left: 0, Right: 0},
			{Kind: UnpairedLeft, Left: 0, Right: -1},
		}, 1, 1},
		{"out of range", []Unit{{Kind: Paired, Left: 5, Right: 0}}, 1, 1},
		{"bad unpaired shape", []Unit{{Kind: UnpairedLeft, Left: 0, Right: 2}}, 1, 1},
		{"duplicate unpaired", []Unit{
			{Kind: UnpairedLeft, Left: 0, Right: -1},
			{Kind: UnpairedLeft, Left: 0, Right: -1},
		}, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckInvariants(tc.us, tc.nl, tc.nr); err == nil {
				t.Fatal("expected invariant violation")
			}
		})
	}
}

func TestUnitString(t *testing.T) {
	u := Unit{Kind: Paired, Left: 1, Right: 2, Sim: 0.9, Attr: 0, Stage: StageIntraAttr}
	if s := u.String(); !strings.Contains(s, "paired(L1,R2") {
		t.Fatalf("String = %q", s)
	}
	u = Unit{Kind: UnpairedRight, Left: -1, Right: 3}
	if s := u.String(); !strings.Contains(s, "unpaired(R3") {
		t.Fatalf("String = %q", s)
	}
}

// TestDiscoverNormalizedVecsMatchesCosine: on normalized embeddings the
// dot-product fast path must discover exactly the units of the cosine
// path, across random records (the in-package complement of the
// end-to-end golden test in internal/core).
func TestDiscoverNormalizedVecsMatchesCosine(t *testing.T) {
	vocab := []string{"camera", "cameras", "sony", "nikon", "lens", "zoom",
		"digital", "kit", "dslra200w", "5811", "black", "case"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		mk := func() []string {
			attrs := make([]string, 2)
			for a := range attrs {
				n := rng.Intn(6)
				words := make([]string, n)
				for i := range words {
					words[i] = vocab[rng.Intn(len(vocab))]
				}
				attrs[a] = strings.Join(words, " ")
			}
			return attrs
		}
		in := buildInput(mk(), mk(), rng.Intn(2) == 0)
		cos := Discover(in, PaperThresholds)
		in.NormalizedVecs = true
		dot := Discover(in, PaperThresholds)
		if len(cos) != len(dot) {
			t.Fatalf("trial %d: %d units (cosine) != %d units (dot)", trial, len(cos), len(dot))
		}
		for j := range cos {
			c, d := cos[j], dot[j]
			if c.Kind != d.Kind || c.Left != d.Left || c.Right != d.Right ||
				c.Stage != d.Stage || c.Attr != d.Attr {
				t.Fatalf("trial %d unit %d: %+v != %+v", trial, j, c, d)
			}
			if diff := c.Sim - d.Sim; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("trial %d unit %d: sim %v != %v", trial, j, c.Sim, d.Sim)
			}
		}
	}
}

func BenchmarkDiscover(b *testing.B) {
	in := buildInput(
		[]string{"sony digital camera with lens kit dslra200w zoom black", "sony", "37.63"},
		[]string{"digital camera leather case 5811 black zoom", "nikon", "36.11"},
		false,
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discover(in, PaperThresholds)
	}
}

// BenchmarkDiscoverNormalized measures the production configuration: the
// dot-product fast path over the pooled similarity matrix.
func BenchmarkDiscoverNormalized(b *testing.B) {
	in := buildInput(
		[]string{"sony digital camera with lens kit dslra200w zoom black", "sony", "37.63"},
		[]string{"digital camera leather case 5811 black zoom", "nikon", "36.11"},
		false,
	)
	in.NormalizedVecs = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discover(in, PaperThresholds)
	}
}
