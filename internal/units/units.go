// Package units implements decision units — the paper's core abstraction —
// and Algorithm 1 (DecisionUnitDiscovery). A decision unit is either a pair
// of semantically similar tokens drawn from the two entity descriptions of
// an EM record (a paired unit) or a token with no counterpart (an unpaired
// unit). Units form the feature space on which the interpretable matcher
// is trained, replacing raw token features.
package units

import (
	"fmt"
	"strings"

	"wym/internal/assignment"
	"wym/internal/tokenize"
	"wym/internal/vec"
)

// Kind distinguishes paired from unpaired units.
type Kind int

// Unit kinds.
const (
	Paired Kind = iota
	UnpairedLeft
	UnpairedRight
)

// Stage records which phase of Algorithm 1 produced a unit; tests and
// explanations use it as provenance.
type Stage int

// Discovery stages.
const (
	StageIntraAttr Stage = iota // matching-attribute search space (θ)
	StageInterAttr              // cross-attribute search space (η)
	StageOneToMany              // unpaired-vs-already-paired space (ε)
	StageUnpaired               // never paired
)

// Unit is one decision unit of a record. Left and Right index the record's
// left and right token slices; the absent side of an unpaired unit is -1.
type Unit struct {
	Kind  Kind
	Left  int
	Right int
	Sim   float64 // similarity that formed the pair; 0 for unpaired units
	Stage Stage
	Attr  int // attribute provenance (left token's attribute when paired)
}

// Thresholds are the three similarity thresholds of Algorithm 1.
type Thresholds struct {
	Theta   float64 // intra-attribute
	Eta     float64 // inter-attribute
	Epsilon float64 // one-to-many
}

// PaperThresholds are the values used in the paper's experiments (§5):
// θ=0.6, η=0.65, ε=0.7 — increasing with the breadth of the search space.
var PaperThresholds = Thresholds{Theta: 0.6, Eta: 0.65, Epsilon: 0.7}

// Input is one record prepared for unit discovery: the two token lists,
// their (contextualized) embeddings, and the schema size.
type Input struct {
	Left, Right         []tokenize.Token
	LeftVecs, RightVecs [][]float64
	NumAttrs            int
	// CodeExact enables the domain-knowledge heuristic from the paper's
	// error analysis (§5.1.1): tokens flagged as product codes may only
	// pair with an exactly equal token.
	CodeExact bool
	// SimOverride, when non-nil, replaces the embedding cosine as the
	// token similarity (the Table 4 Jaro–Winkler ablation uses it). It is
	// still subject to the CodeExact heuristic.
	SimOverride func(l, r int) float64
}

// sim computes the similarity between left token l and right token r.
func (in *Input) sim(l, r int) float64 {
	if in.CodeExact {
		lc, rc := in.Left[l].Code, in.Right[r].Code
		if lc || rc {
			if in.Left[l].Text == in.Right[r].Text {
				return 1
			}
			return -1 // below any threshold: codes never pair unless equal
		}
	}
	if in.SimOverride != nil {
		return in.SimOverride(l, r)
	}
	return vec.Cosine(in.LeftVecs[l], in.RightVecs[r])
}

// Discover runs Algorithm 1 and returns the record's decision units:
// paired units from the three staged search spaces, then the remaining
// tokens as unpaired units. The output order is deterministic: paired
// units in stage order (each stage sorted by token indices), then unpaired
// left tokens, then unpaired right tokens.
func Discover(in Input, th Thresholds) []Unit {
	if len(in.Left) != len(in.LeftVecs) && in.SimOverride == nil {
		panic(fmt.Sprintf("units: %d left tokens but %d vectors", len(in.Left), len(in.LeftVecs)))
	}
	if len(in.Right) != len(in.RightVecs) && in.SimOverride == nil {
		panic(fmt.Sprintf("units: %d right tokens but %d vectors", len(in.Right), len(in.RightVecs)))
	}

	var out []Unit
	pairedL := make([]bool, len(in.Left))
	pairedR := make([]bool, len(in.Right))

	// Stage 1: intra-attribute correspondences under θ. The schema bounds
	// the search space: only tokens of the same (matching) attribute are
	// compared.
	for attr := 0; attr < in.NumAttrs; attr++ {
		li := indicesOfAttr(in.Left, attr)
		ri := indicesOfAttr(in.Right, attr)
		pairs := assignment.Match(len(li), len(ri), func(x, y int) float64 {
			return in.sim(li[x], ri[y])
		}, th.Theta)
		for _, p := range pairs {
			l, r := li[p.X], ri[p.Y]
			out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
				Stage: StageIntraAttr, Attr: attr})
			pairedL[l], pairedR[r] = true, true
		}
	}

	// Stage 2: inter-attribute correspondences under η between the tokens
	// both stages so far left unpaired. This absorbs dirty/misaligned
	// attribute content (challenge R2).
	freeL := unset(pairedL)
	freeR := unset(pairedR)
	pairs := assignment.Match(len(freeL), len(freeR), func(x, y int) float64 {
		return in.sim(freeL[x], freeR[y])
	}, th.Eta)
	for _, p := range pairs {
		l, r := freeL[p.X], freeR[p.Y]
		out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
			Stage: StageInterAttr, Attr: in.Left[l].Attr})
		pairedL[l], pairedR[r] = true, true
	}

	// Stage 3: one-to-many correspondences under ε — remaining unpaired
	// tokens against the *already paired* tokens of the other entity,
	// forming chains that model repetition and periphrasis.
	freeL = unset(pairedL)
	anchorsR := set(pairedR)
	pairsL := assignment.Match(len(freeL), len(anchorsR), func(x, y int) float64 {
		return in.sim(freeL[x], anchorsR[y])
	}, th.Epsilon)
	freeR = unset(pairedR)
	anchorsL := set(pairedL)
	pairsR := assignment.Match(len(freeR), len(anchorsL), func(x, y int) float64 {
		return in.sim(anchorsL[y], freeR[x])
	}, th.Epsilon)
	for _, p := range pairsL {
		l, r := freeL[p.X], anchorsR[p.Y]
		out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
			Stage: StageOneToMany, Attr: in.Left[l].Attr})
		pairedL[l] = true // r stays multiply assigned by design
	}
	for _, p := range pairsR {
		r, l := freeR[p.X], anchorsL[p.Y]
		out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
			Stage: StageOneToMany, Attr: in.Left[l].Attr})
		pairedR[r] = true
	}

	// Remaining tokens become unpaired units.
	for _, l := range unset(pairedL) {
		out = append(out, Unit{Kind: UnpairedLeft, Left: l, Right: -1,
			Stage: StageUnpaired, Attr: in.Left[l].Attr})
	}
	for _, r := range unset(pairedR) {
		out = append(out, Unit{Kind: UnpairedRight, Left: -1, Right: r,
			Stage: StageUnpaired, Attr: in.Right[r].Attr})
	}
	return out
}

// Describe renders a unit as a human-readable string such as
// "(exch, exch)" or "(eng, —)".
func Describe(u Unit, in *Input) string {
	switch u.Kind {
	case Paired:
		return "(" + in.Left[u.Left].Text + ", " + in.Right[u.Right].Text + ")"
	case UnpairedLeft:
		return "(" + in.Left[u.Left].Text + ", —)"
	default:
		return "(—, " + in.Right[u.Right].Text + ")"
	}
}

// Texts returns the token texts of the unit; the absent side of an
// unpaired unit is the empty string.
func Texts(u Unit, left, right []tokenize.Token) (l, r string) {
	if u.Left >= 0 {
		l = left[u.Left].Text
	}
	if u.Right >= 0 {
		r = right[u.Right].Text
	}
	return l, r
}

// Key returns an order-invariant identity for the unit's token contents,
// used to aggregate relevance targets across the dataset (Equation 3).
func Key(u Unit, left, right []tokenize.Token) string {
	l, r := Texts(u, left, right)
	if u.Kind != Paired {
		t := l
		if t == "" {
			t = r
		}
		return t + "\x00[UNP]"
	}
	if r < l {
		l, r = r, l
	}
	return l + "\x00" + r
}

// Counts summarizes a record's units for the Figure 4 statistics.
type Counts struct{ Paired, Unpaired int }

// Count tallies paired and unpaired units.
func Count(us []Unit) Counts {
	var c Counts
	for _, u := range us {
		if u.Kind == Paired {
			c.Paired++
		} else {
			c.Unpaired++
		}
	}
	return c
}

// CheckInvariants verifies the structural constraints of §3.1.1 over a
// record's units: every token belongs to at least one unit; no token is in
// both a paired and an unpaired unit; paired units join tokens of opposite
// descriptions; unpaired units reference exactly one token. It returns a
// descriptive error on the first violation.
func CheckInvariants(us []Unit, nLeft, nRight int) error {
	pairedL := make([]bool, nLeft)
	pairedR := make([]bool, nRight)
	unpairedL := make([]bool, nLeft)
	unpairedR := make([]bool, nRight)
	for i, u := range us {
		switch u.Kind {
		case Paired:
			if u.Left < 0 || u.Left >= nLeft || u.Right < 0 || u.Right >= nRight {
				return fmt.Errorf("unit %d: paired indices out of range: %+v", i, u)
			}
			pairedL[u.Left] = true
			pairedR[u.Right] = true
		case UnpairedLeft:
			if u.Left < 0 || u.Left >= nLeft || u.Right != -1 {
				return fmt.Errorf("unit %d: bad unpaired-left unit: %+v", i, u)
			}
			if unpairedL[u.Left] {
				return fmt.Errorf("unit %d: left token %d unpaired twice", i, u.Left)
			}
			unpairedL[u.Left] = true
		case UnpairedRight:
			if u.Right < 0 || u.Right >= nRight || u.Left != -1 {
				return fmt.Errorf("unit %d: bad unpaired-right unit: %+v", i, u)
			}
			if unpairedR[u.Right] {
				return fmt.Errorf("unit %d: right token %d unpaired twice", i, u.Right)
			}
			unpairedR[u.Right] = true
		default:
			return fmt.Errorf("unit %d: unknown kind %v", i, u.Kind)
		}
	}
	for t := 0; t < nLeft; t++ {
		if pairedL[t] && unpairedL[t] {
			return fmt.Errorf("left token %d is both paired and unpaired", t)
		}
		if !pairedL[t] && !unpairedL[t] {
			return fmt.Errorf("left token %d belongs to no unit", t)
		}
	}
	for t := 0; t < nRight; t++ {
		if pairedR[t] && unpairedR[t] {
			return fmt.Errorf("right token %d is both paired and unpaired", t)
		}
		if !pairedR[t] && !unpairedR[t] {
			return fmt.Errorf("right token %d belongs to no unit", t)
		}
	}
	return nil
}

func indicesOfAttr(toks []tokenize.Token, attr int) []int {
	var out []int
	for i, t := range toks {
		if t.Attr == attr {
			out = append(out, i)
		}
	}
	return out
}

// unset returns the indices where the flag slice is false.
func unset(flags []bool) []int {
	var out []int
	for i, f := range flags {
		if !f {
			out = append(out, i)
		}
	}
	return out
}

// set returns the indices where the flag slice is true.
func set(flags []bool) []int {
	var out []int
	for i, f := range flags {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// String implements fmt.Stringer for debugging.
func (u Unit) String() string {
	var b strings.Builder
	switch u.Kind {
	case Paired:
		fmt.Fprintf(&b, "paired(L%d,R%d sim=%.2f", u.Left, u.Right, u.Sim)
	case UnpairedLeft:
		fmt.Fprintf(&b, "unpaired(L%d", u.Left)
	default:
		fmt.Fprintf(&b, "unpaired(R%d", u.Right)
	}
	fmt.Fprintf(&b, " attr=%d stage=%d)", u.Attr, u.Stage)
	return b.String()
}
