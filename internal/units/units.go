// Package units implements decision units — the paper's core abstraction —
// and Algorithm 1 (DecisionUnitDiscovery). A decision unit is either a pair
// of semantically similar tokens drawn from the two entity descriptions of
// an EM record (a paired unit) or a token with no counterpart (an unpaired
// unit). Units form the feature space on which the interpretable matcher
// is trained, replacing raw token features.
package units

import (
	"fmt"
	"strings"
	"sync"

	"wym/internal/assignment"
	"wym/internal/tokenize"
	"wym/internal/vec"
)

// Kind distinguishes paired from unpaired units.
type Kind int

// Unit kinds.
const (
	Paired Kind = iota
	UnpairedLeft
	UnpairedRight
)

// Stage records which phase of Algorithm 1 produced a unit; tests and
// explanations use it as provenance.
type Stage int

// Discovery stages.
const (
	StageIntraAttr Stage = iota // matching-attribute search space (θ)
	StageInterAttr              // cross-attribute search space (η)
	StageOneToMany              // unpaired-vs-already-paired space (ε)
	StageUnpaired               // never paired
)

// Unit is one decision unit of a record. Left and Right index the record's
// left and right token slices; the absent side of an unpaired unit is -1.
type Unit struct {
	Kind  Kind
	Left  int
	Right int
	Sim   float64 // similarity that formed the pair; 0 for unpaired units
	Stage Stage
	Attr  int // attribute provenance (left token's attribute when paired)
}

// Thresholds are the three similarity thresholds of Algorithm 1.
type Thresholds struct {
	Theta   float64 // intra-attribute
	Eta     float64 // inter-attribute
	Epsilon float64 // one-to-many
}

// PaperThresholds are the values used in the paper's experiments (§5):
// θ=0.6, η=0.65, ε=0.7 — increasing with the breadth of the search space.
var PaperThresholds = Thresholds{Theta: 0.6, Eta: 0.65, Epsilon: 0.7}

// Input is one record prepared for unit discovery: the two token lists,
// their (contextualized) embeddings, and the schema size.
type Input struct {
	Left, Right         []tokenize.Token
	LeftVecs, RightVecs [][]float64
	NumAttrs            int
	// CodeExact enables the domain-knowledge heuristic from the paper's
	// error analysis (§5.1.1): tokens flagged as product codes may only
	// pair with an exactly equal token.
	CodeExact bool
	// SimOverride, when non-nil, replaces the embedding cosine as the
	// token similarity (the Table 4 Jaro–Winkler ablation uses it). It is
	// still subject to the CodeExact heuristic.
	SimOverride func(l, r int) float64
	// NormalizedVecs declares that every vector in LeftVecs/RightVecs is
	// unit-L2 or all-zero (the embed.NormalizedSource contract; records
	// embedded through embed.Contextualize qualify). When set, token
	// similarity is the raw dot product — equal to the cosine for such
	// vectors, including the zero-vector → 0 convention — skipping the
	// redundant norm computations of vec.Cosine on the hottest loop of
	// the pipeline.
	NormalizedVecs bool
}

// Check validates the structural preconditions of Discover: every token
// must have an embedding vector (unless a SimOverride replaces the
// embedding similarity entirely). Discover panics on violation — a
// mis-built Input is a programming error on the happy path — but the
// fault-tolerant training pipeline calls Check first so a corrupt record
// can be quarantined with a descriptive error instead of a panic trace.
func (in *Input) Check() error {
	if in.SimOverride != nil {
		return nil
	}
	if len(in.Left) != len(in.LeftVecs) {
		return fmt.Errorf("units: %d left tokens but %d vectors", len(in.Left), len(in.LeftVecs))
	}
	if len(in.Right) != len(in.RightVecs) {
		return fmt.Errorf("units: %d right tokens but %d vectors", len(in.Right), len(in.RightVecs))
	}
	return nil
}

// sim computes the similarity between left token l and right token r.
func (in *Input) sim(l, r int) float64 {
	if in.CodeExact {
		lc, rc := in.Left[l].Code, in.Right[r].Code
		if lc || rc {
			if in.Left[l].Text == in.Right[r].Text {
				return 1
			}
			return -1 // below any threshold: codes never pair unless equal
		}
	}
	if in.SimOverride != nil {
		return in.SimOverride(l, r)
	}
	if in.NormalizedVecs {
		return vec.DotUnit(in.LeftVecs[l], in.RightVecs[r])
	}
	return vec.Cosine(in.LeftVecs[l], in.RightVecs[r])
}

// discoverScratch is the reusable working memory of one Discover call:
// the flat L×R similarity matrix, the paired-token flags, and four index
// arenas for the staged search spaces. Unit discovery runs once per record
// pair across training and every Predict/Explain, so the buffers are in
// constant rotation; everything here is dead once Discover returns.
type discoverScratch struct {
	mat            []float64
	pairedL        []bool
	pairedR        []bool
	ia, ib, ic, id []int
}

var scratchPool = sync.Pool{New: func() any { return new(discoverScratch) }}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// simMatrix computes the record's full L×R similarity matrix in one pass.
// All three Algorithm-1 stages (and assignment.Match inside them) read
// from it, so each token-pair similarity — previously recomputed by every
// stage that revisited the pair — is evaluated exactly once.
func (in *Input) simMatrix(mat []float64, stride int) {
	// Fast path for the standard configuration (no code heuristic, no sim
	// override, normalized vectors): hoist the per-cell branching and the
	// left-vector load out of the inner loop.
	if !in.CodeExact && in.SimOverride == nil && in.NormalizedVecs {
		for l, lv := range in.LeftVecs {
			row := mat[l*stride : (l+1)*stride]
			for r, rv := range in.RightVecs {
				// vec.DotUnit, manually inlined: at the small embedding
				// dimensions used here the call overhead is a measurable
				// slice of the fill. Keep the accumulator grouping in sync
				// with DotUnit so both paths agree bit-for-bit.
				a, b := lv, rv[:len(lv)]
				var s0, s1, s2, s3 float64
				for len(a) >= 4 && len(b) >= 4 {
					s0 += a[0] * b[0]
					s1 += a[1] * b[1]
					s2 += a[2] * b[2]
					s3 += a[3] * b[3]
					a, b = a[4:], b[4:]
				}
				for i, v := range a {
					s0 += v * b[i]
				}
				s := (s0 + s1) + (s2 + s3)
				if s > 1 {
					s = 1
				} else if s < -1 {
					s = -1
				}
				row[r] = s
			}
		}
		return
	}
	for l := range in.Left {
		row := mat[l*stride : (l+1)*stride]
		for r := range row {
			row[r] = in.sim(l, r)
		}
	}
}

// Discover runs Algorithm 1 and returns the record's decision units:
// paired units from the three staged search spaces, then the remaining
// tokens as unpaired units. The output order is deterministic: paired
// units in stage order (each stage sorted by token indices), then unpaired
// left tokens, then unpaired right tokens.
func Discover(in Input, th Thresholds) []Unit {
	if err := in.Check(); err != nil {
		panic(err.Error())
	}

	L, R := len(in.Left), len(in.Right)
	// Every token ends up in at least one unit and each paired unit
	// consumes at least one previously free token, so L+R bounds the
	// output size.
	out := make([]Unit, 0, L+R)
	sc := scratchPool.Get().(*discoverScratch)
	defer scratchPool.Put(sc)
	pairedL := growBools(sc.pairedL, L)
	pairedR := growBools(sc.pairedR, R)
	sc.pairedL, sc.pairedR = pairedL, pairedR

	// One flat L×R similarity matrix, reused from the pool, serves every
	// stage below: the staged search spaces are overlapping subsets of the
	// full cross product, so the per-stage closures of the old code
	// recomputed most similarities two or three times.
	var mat []float64
	if L > 0 && R > 0 {
		sc.mat = growFloats(sc.mat, L*R)
		mat = sc.mat
		in.simMatrix(mat, R)
	}

	// Stage 1: intra-attribute correspondences under θ. The schema bounds
	// the search space: only tokens of the same (matching) attribute are
	// compared.
	for attr := 0; attr < in.NumAttrs; attr++ {
		li := indicesOfAttr(sc.ia, in.Left, attr)
		ri := indicesOfAttr(sc.ib, in.Right, attr)
		sc.ia, sc.ib = li, ri
		pairs := assignment.Match(len(li), len(ri),
			assignment.SubMatrixSim(mat, R, li, ri), th.Theta)
		for _, p := range pairs {
			l, r := li[p.X], ri[p.Y]
			out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
				Stage: StageIntraAttr, Attr: attr})
			pairedL[l], pairedR[r] = true, true
		}
	}

	// Stage 2: inter-attribute correspondences under η between the tokens
	// both stages so far left unpaired. This absorbs dirty/misaligned
	// attribute content (challenge R2).
	freeL := unset(sc.ia, pairedL)
	freeR := unset(sc.ib, pairedR)
	sc.ia, sc.ib = freeL, freeR
	pairs := assignment.Match(len(freeL), len(freeR),
		assignment.SubMatrixSim(mat, R, freeL, freeR), th.Eta)
	for _, p := range pairs {
		l, r := freeL[p.X], freeR[p.Y]
		out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
			Stage: StageInterAttr, Attr: in.Left[l].Attr})
		pairedL[l], pairedR[r] = true, true
	}

	// Stage 3: one-to-many correspondences under ε — remaining unpaired
	// tokens against the *already paired* tokens of the other entity,
	// forming chains that model repetition and periphrasis.
	freeL = unset(sc.ia, pairedL)
	anchorsR := set(sc.ib, pairedR)
	freeR = unset(sc.ic, pairedR)
	anchorsL := set(sc.id, pairedL)
	sc.ia, sc.ib, sc.ic, sc.id = freeL, anchorsR, freeR, anchorsL
	pairsL := assignment.Match(len(freeL), len(anchorsR),
		assignment.SubMatrixSim(mat, R, freeL, anchorsR), th.Epsilon)
	pairsR := assignment.Match(len(freeR), len(anchorsL), func(x, y int) float64 {
		return mat[anchorsL[y]*R+freeR[x]]
	}, th.Epsilon)
	for _, p := range pairsL {
		l, r := freeL[p.X], anchorsR[p.Y]
		out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
			Stage: StageOneToMany, Attr: in.Left[l].Attr})
		pairedL[l] = true // r stays multiply assigned by design
	}
	for _, p := range pairsR {
		r, l := freeR[p.X], anchorsL[p.Y]
		out = append(out, Unit{Kind: Paired, Left: l, Right: r, Sim: p.Sim,
			Stage: StageOneToMany, Attr: in.Left[l].Attr})
		pairedR[r] = true
	}

	// Remaining tokens become unpaired units.
	for l, p := range pairedL {
		if !p {
			out = append(out, Unit{Kind: UnpairedLeft, Left: l, Right: -1,
				Stage: StageUnpaired, Attr: in.Left[l].Attr})
		}
	}
	for r, p := range pairedR {
		if !p {
			out = append(out, Unit{Kind: UnpairedRight, Left: -1, Right: r,
				Stage: StageUnpaired, Attr: in.Right[r].Attr})
		}
	}
	return out
}

// Describe renders a unit as a human-readable string such as
// "(exch, exch)" or "(eng, —)".
func Describe(u Unit, in *Input) string {
	switch u.Kind {
	case Paired:
		return "(" + in.Left[u.Left].Text + ", " + in.Right[u.Right].Text + ")"
	case UnpairedLeft:
		return "(" + in.Left[u.Left].Text + ", —)"
	default:
		return "(—, " + in.Right[u.Right].Text + ")"
	}
}

// Texts returns the token texts of the unit; the absent side of an
// unpaired unit is the empty string.
func Texts(u Unit, left, right []tokenize.Token) (l, r string) {
	if u.Left >= 0 {
		l = left[u.Left].Text
	}
	if u.Right >= 0 {
		r = right[u.Right].Text
	}
	return l, r
}

// Key returns an order-invariant identity for the unit's token contents,
// used to aggregate relevance targets across the dataset (Equation 3).
func Key(u Unit, left, right []tokenize.Token) string {
	l, r := Texts(u, left, right)
	if u.Kind != Paired {
		t := l
		if t == "" {
			t = r
		}
		return t + "\x00[UNP]"
	}
	if r < l {
		l, r = r, l
	}
	return l + "\x00" + r
}

// Counts summarizes a record's units for the Figure 4 statistics.
type Counts struct{ Paired, Unpaired int }

// Count tallies paired and unpaired units.
func Count(us []Unit) Counts {
	var c Counts
	for _, u := range us {
		if u.Kind == Paired {
			c.Paired++
		} else {
			c.Unpaired++
		}
	}
	return c
}

// CheckInvariants verifies the structural constraints of §3.1.1 over a
// record's units: every token belongs to at least one unit; no token is in
// both a paired and an unpaired unit; paired units join tokens of opposite
// descriptions; unpaired units reference exactly one token. It returns a
// descriptive error on the first violation.
func CheckInvariants(us []Unit, nLeft, nRight int) error {
	pairedL := make([]bool, nLeft)
	pairedR := make([]bool, nRight)
	unpairedL := make([]bool, nLeft)
	unpairedR := make([]bool, nRight)
	for i, u := range us {
		switch u.Kind {
		case Paired:
			if u.Left < 0 || u.Left >= nLeft || u.Right < 0 || u.Right >= nRight {
				return fmt.Errorf("unit %d: paired indices out of range: %+v", i, u)
			}
			pairedL[u.Left] = true
			pairedR[u.Right] = true
		case UnpairedLeft:
			if u.Left < 0 || u.Left >= nLeft || u.Right != -1 {
				return fmt.Errorf("unit %d: bad unpaired-left unit: %+v", i, u)
			}
			if unpairedL[u.Left] {
				return fmt.Errorf("unit %d: left token %d unpaired twice", i, u.Left)
			}
			unpairedL[u.Left] = true
		case UnpairedRight:
			if u.Right < 0 || u.Right >= nRight || u.Left != -1 {
				return fmt.Errorf("unit %d: bad unpaired-right unit: %+v", i, u)
			}
			if unpairedR[u.Right] {
				return fmt.Errorf("unit %d: right token %d unpaired twice", i, u.Right)
			}
			unpairedR[u.Right] = true
		default:
			return fmt.Errorf("unit %d: unknown kind %v", i, u.Kind)
		}
	}
	for t := 0; t < nLeft; t++ {
		if pairedL[t] && unpairedL[t] {
			return fmt.Errorf("left token %d is both paired and unpaired", t)
		}
		if !pairedL[t] && !unpairedL[t] {
			return fmt.Errorf("left token %d belongs to no unit", t)
		}
	}
	for t := 0; t < nRight; t++ {
		if pairedR[t] && unpairedR[t] {
			return fmt.Errorf("right token %d is both paired and unpaired", t)
		}
		if !pairedR[t] && !unpairedR[t] {
			return fmt.Errorf("right token %d belongs to no unit", t)
		}
	}
	return nil
}

// indicesOfAttr appends the positions of attr's tokens to dst[:0]; the
// Discover scratch arenas are threaded through dst so steady-state calls
// allocate nothing.
func indicesOfAttr(dst []int, toks []tokenize.Token, attr int) []int {
	dst = dst[:0]
	for i, t := range toks {
		if t.Attr == attr {
			dst = append(dst, i)
		}
	}
	return dst
}

// unset appends the indices where the flag slice is false to dst[:0].
func unset(dst []int, flags []bool) []int {
	dst = dst[:0]
	for i, f := range flags {
		if !f {
			dst = append(dst, i)
		}
	}
	return dst
}

// set appends the indices where the flag slice is true to dst[:0].
func set(dst []int, flags []bool) []int {
	dst = dst[:0]
	for i, f := range flags {
		if f {
			dst = append(dst, i)
		}
	}
	return dst
}

// String implements fmt.Stringer for debugging.
func (u Unit) String() string {
	var b strings.Builder
	switch u.Kind {
	case Paired:
		fmt.Fprintf(&b, "paired(L%d,R%d sim=%.2f", u.Left, u.Right, u.Sim)
	case UnpairedLeft:
		fmt.Fprintf(&b, "unpaired(L%d", u.Left)
	default:
		fmt.Fprintf(&b, "unpaired(R%d", u.Right)
	}
	fmt.Fprintf(&b, " attr=%d stage=%d)", u.Attr, u.Stage)
	return b.String()
}
