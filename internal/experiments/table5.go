package experiments

import (
	"fmt"

	"wym/internal/classify"
	"wym/internal/eval"
	"wym/internal/vec"
)

// Table5Classifiers is the paper's column order.
var Table5Classifiers = []string{"LR", "LDA", "KNN", "DT", "NB", "SVM", "AB", "GBM", "RF", "ET"}

// Table5Row is one dataset's test F1 for every classifier in the pool,
// fitted on the WYM-engineered features.
type Table5Row struct {
	Key    string
	Scores map[string]float64
}

// Table5 trains the WYM pipeline once per dataset, then fits every
// classifier of the pool on the engineered training features and evaluates
// it on the test features.
func Table5(cfg RunConfig) ([]Table5Row, error) {
	var rows []Table5Row
	for _, key := range cfg.keys() {
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		xTrain := ts.sys.Featurize(ts.train)
		xTest := ts.sys.Featurize(ts.test)
		scores := map[string]float64{}
		for _, c := range classify.NewPool(cfg.Seed) {
			if err := c.Fit(xTrain, ts.train.Labels()); err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", c.Name(), key, err)
			}
			scores[c.Name()] = eval.F1Score(classify.PredictAll(c, xTest), ts.test.Labels())
		}
		rows = append(rows, Table5Row{Key: key, Scores: scores})
	}
	return rows, nil
}

// FormatTable5 renders the classifier table with the paper's marginal
// statistics: per-dataset average and standard deviation (last columns)
// and per-classifier average and standard deviation (last rows).
func FormatTable5(rows []Table5Row) string {
	var t tableBuilder
	t.line("Table 5: Classifiers used as Explainable Matchers (F1).")
	header := append([]string{"Dataset"}, Table5Classifiers...)
	header = append(header, "Avg.", "S.D.")
	t.row(header...)

	perClassifier := map[string][]float64{}
	for _, r := range rows {
		cells := []string{r.Key}
		var vals []float64
		for _, name := range Table5Classifiers {
			v := r.Scores[name]
			cells = append(cells, fmt.Sprintf("%.3f", v))
			vals = append(vals, v)
			perClassifier[name] = append(perClassifier[name], v)
		}
		m, sd := vec.MeanStd(vals)
		cells = append(cells, fmt.Sprintf("%.3f", m), fmt.Sprintf("%.3f", sd))
		t.row(cells...)
	}
	avgCells := []string{"Avg."}
	sdCells := []string{"S.D."}
	for _, name := range Table5Classifiers {
		m, sd := vec.MeanStd(perClassifier[name])
		avgCells = append(avgCells, fmt.Sprintf("%.3f", m))
		sdCells = append(sdCells, fmt.Sprintf("%.3f", sd))
	}
	t.row(avgCells...)
	t.row(sdCells...)
	return t.String()
}
