package experiments

import (
	"fmt"

	"wym/internal/core"
)

// Table4Variants is the column order of the ablation study: the full WYM
// system, the generator variants, the scorer variants, and the matcher
// variant — the paper's Table 4 columns.
var Table4Variants = []string{
	"WYM", "j-w dist.", "BERT-pt", "BERT-ft",
	"bin.scr.", "cos.sim.", "bin j-w", "smp.feat.",
}

// table4Config returns the configuration for the named variant.
func table4Config(variant string, seed int64) core.Config {
	cfg := CoreConfig(seed)
	switch variant {
	case "j-w dist.":
		cfg.Embedding = core.JaroWinkler
	case "BERT-pt":
		cfg.Embedding = core.BERTPretrained
	case "BERT-ft":
		cfg.Embedding = core.BERTFinetuned
	case "bin.scr.":
		cfg.Scorer = core.ScorerBinary
	case "cos.sim.":
		cfg.Scorer = core.ScorerCosine
	case "bin j-w":
		cfg.Embedding = core.JaroWinkler
		cfg.Scorer = core.ScorerBinary
	case "smp.feat.":
		cfg.Features = core.FeaturesSimplified
	}
	return cfg
}

// Table4Row is one dataset's ablation scores.
type Table4Row struct {
	Key    string
	Scores map[string]float64
	Ranks  map[string]int
}

// Table4 trains every component variant on every dataset.
func Table4(cfg RunConfig) ([]Table4Row, error) {
	var rows []Table4Row
	for _, key := range cfg.keys() {
		sp, err := makeSplits(key, cfg)
		if err != nil {
			return nil, err
		}
		scores := map[string]float64{}
		for _, variant := range Table4Variants {
			sys, err := core.Train(sp.train, sp.valid, table4Config(variant, cfg.Seed))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", key, variant, err)
			}
			scores[variant] = testF1(sys, sp.test)
		}
		values := make([]float64, len(Table4Variants))
		for i, v := range Table4Variants {
			values[i] = scores[v]
		}
		ranks := ranksOf(values)
		rankMap := map[string]int{}
		for i, v := range Table4Variants {
			rankMap[v] = ranks[i]
		}
		rows = append(rows, Table4Row{Key: key, Scores: scores, Ranks: rankMap})
	}
	return rows, nil
}

// FormatTable4 renders the ablation table.
func FormatTable4(rows []Table4Row) string {
	var t tableBuilder
	t.line("Table 4: Effectiveness (F1) varying the component implementations.")
	t.line("Columns: full WYM | generator: j-w dist., BERT-pt, BERT-ft | scorer: bin.scr., cos.sim., bin j-w | matcher: smp.feat.")
	header := append([]string{"Dataset"}, Table4Variants...)
	t.row(header...)
	avg := map[string]float64{}
	avgRank := map[string]float64{}
	for _, r := range rows {
		cells := []string{r.Key}
		for _, v := range Table4Variants {
			cells = append(cells, cell(r.Scores[v], r.Ranks[v]))
			avg[v] += r.Scores[v]
			avgRank[v] += float64(r.Ranks[v])
		}
		t.row(cells...)
	}
	n := float64(len(rows))
	cells := []string{"AVG"}
	for _, v := range Table4Variants {
		cells = append(cells, fmt.Sprintf("%.2f (%.1f)", avg[v]/n, avgRank[v]/n))
	}
	t.row(cells...)
	return t.String()
}
