package experiments

import (
	"fmt"

	"wym/internal/eval"
	"wym/internal/rules"
)

// ExtensionRulesRow quantifies the paper's §6 future-work direction —
// external knowledge as rules over decision units — on one dataset:
// F1 of the bare model vs the model screened by the code rules, plus the
// number of overridden decisions.
type ExtensionRulesRow struct {
	Key       string
	BareF1    float64
	RulesF1   float64
	Overrides int
	TestSize  int
}

// ExtensionRules evaluates the code-conflict/code-agreement rule engine on
// top of the trained matcher.
func ExtensionRules(cfg RunConfig) ([]ExtensionRulesRow, error) {
	engine := rules.NewEngine(rules.CodeConflict{}, rules.CodeAgreement{})
	var rows []ExtensionRulesRow
	for _, key := range cfg.keys() {
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		recs := ts.sys.ProcessAll(ts.test)
		bare := make([]int, len(recs))
		ruled := make([]int, len(recs))
		var overrides int
		for i, rec := range recs {
			ex := ts.sys.ExplainRecord(rec)
			bare[i] = ex.Prediction
			d := engine.Apply(ts.test.Pairs[i], ex)
			ruled[i] = d.Prediction
			if d.Overridden {
				overrides++
			}
		}
		rows = append(rows, ExtensionRulesRow{
			Key:       key,
			BareF1:    eval.F1Score(bare, ts.test.Labels()),
			RulesF1:   eval.F1Score(ruled, ts.test.Labels()),
			Overrides: overrides,
			TestSize:  ts.test.Size(),
		})
	}
	return rows, nil
}

// FormatExtensionRules renders the comparison.
func FormatExtensionRules(rows []ExtensionRulesRow) string {
	var t tableBuilder
	t.line("Extension (§6 future work): decision-unit rules on top of WYM (F1).")
	t.row("Dataset", "bare", "with rules", "Δ", "overrides")
	var bareAvg, rulesAvg float64
	for _, r := range rows {
		t.row(r.Key,
			f3(r.BareF1), f3(r.RulesF1),
			fsigned(r.RulesF1-r.BareF1),
			itoa(r.Overrides))
		bareAvg += r.BareF1
		rulesAvg += r.RulesF1
	}
	if n := float64(len(rows)); n > 0 {
		t.row("AVG", f3(bareAvg/n), f3(rulesAvg/n), fsigned((rulesAvg-bareAvg)/n), "")
	}
	return t.String()
}

func f3(v float64) string      { return fmt.Sprintf("%.3f", v) }
func fsigned(v float64) string { return fmt.Sprintf("%+.3f", v) }
func itoa(v int) string        { return fmt.Sprintf("%d", v) }
