package experiments

import (
	"fmt"

	"wym/internal/core"
	"wym/internal/data"
	"wym/internal/datagen"
	"wym/internal/units"
)

// Table2Row is one row of the benchmark-statistics table.
type Table2Row struct {
	Key      string
	Name     string
	Type     string // Structured / Textual / Dirty
	Size     int
	PctMatch float64
}

// Table2 regenerates the benchmark and reports each dataset's statistics
// at the configured scale.
func Table2(cfg RunConfig) ([]Table2Row, error) {
	var rows []Table2Row
	for _, key := range cfg.keys() {
		p, ok := datagen.ProfileByKey(key)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown dataset %q", key)
		}
		d := datagen.Generate(p, cfg.Scale)
		typ := "Structured"
		if p.Textual {
			typ = "Textual"
		}
		if p.Dirty {
			typ = "Dirty"
		}
		rows = append(rows, Table2Row{
			Key: p.Key, Name: p.Name, Type: typ,
			Size:     d.Size(),
			PctMatch: 100 * d.MatchRate(),
		})
	}
	return rows, nil
}

// FormatTable2 renders the rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var t tableBuilder
	t.line("Table 2: The benchmark used in the experiments.")
	t.row("Dataset", "Type", "Size", "% Match")
	for _, r := range rows {
		t.row(r.Key, r.Type, fmt.Sprintf("%d", r.Size), fmt.Sprintf("%.2f", r.PctMatch))
	}
	return t.String()
}

// Figure4Row is the average decision-unit distribution of one dataset,
// split by record label.
type Figure4Row struct {
	Key              string
	MatchPaired      float64
	MatchUnpaired    float64
	NonMatchPaired   float64
	NonMatchUnpaired float64
}

// Figure4 computes the average number of paired and unpaired units per
// record for matching and non-matching records of each dataset.
func Figure4(cfg RunConfig) ([]Figure4Row, error) {
	var rows []Figure4Row
	for _, key := range cfg.keys() {
		p, ok := datagen.ProfileByKey(key)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown dataset %q", key)
		}
		d := datagen.Generate(p, cfg.Scale)
		gen := core.NewUnitGenerator(d, CoreConfig(cfg.Seed))
		recs := gen.ProcessAll(d)
		row := Figure4Row{Key: key}
		var nMatch, nNon int
		for i, rec := range recs {
			c := units.Count(rec.Units)
			if d.Pairs[i].Label == data.Match {
				row.MatchPaired += float64(c.Paired)
				row.MatchUnpaired += float64(c.Unpaired)
				nMatch++
			} else {
				row.NonMatchPaired += float64(c.Paired)
				row.NonMatchUnpaired += float64(c.Unpaired)
				nNon++
			}
		}
		if nMatch > 0 {
			row.MatchPaired /= float64(nMatch)
			row.MatchUnpaired /= float64(nMatch)
		}
		if nNon > 0 {
			row.NonMatchPaired /= float64(nNon)
			row.NonMatchUnpaired /= float64(nNon)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure4 renders the distribution as a table (the paper uses a bar
// chart; the series are the same).
func FormatFigure4(rows []Figure4Row) string {
	var t tableBuilder
	t.line("Figure 4: Average distribution of the decision units (units/record).")
	t.row("Dataset", "M paired", "M unpaired", "N paired", "N unpaired")
	for _, r := range rows {
		t.row(r.Key,
			fmt.Sprintf("%.2f", r.MatchPaired),
			fmt.Sprintf("%.2f", r.MatchUnpaired),
			fmt.Sprintf("%.2f", r.NonMatchPaired),
			fmt.Sprintf("%.2f", r.NonMatchUnpaired))
	}
	return t.String()
}
