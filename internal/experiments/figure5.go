package experiments

import (
	"fmt"

	"wym/internal/core"
	"wym/internal/data"
	"wym/internal/eval"
)

// Figure5SmallDatasets are excluded from the learning curves, as in the
// paper: their training and test sets are too small for a reliable
// evaluation.
var Figure5SmallDatasets = map[string]bool{
	"S-BR": true, "S-IA": true, "S-FZ": true, "D-IA": true,
}

// Figure5Series is one dataset's learning curve.
type Figure5Series struct {
	Key    string
	Points []eval.LearningPoint
}

// Figure5Sizes are the paper's training subset sizes (500, 1K, 2K; the
// full training set is always appended). Sizes that exceed a scaled
// dataset's training split are skipped automatically.
var Figure5Sizes = []int{500, 1000, 2000}

// Figure5 computes learning curves with pre-trained (not fine-tuned)
// embeddings, as in the paper's setup.
func Figure5(cfg RunConfig) ([]Figure5Series, error) {
	var out []Figure5Series
	for _, key := range cfg.keys() {
		if Figure5SmallDatasets[key] {
			continue
		}
		sp, err := makeSplits(key, cfg)
		if err != nil {
			return nil, err
		}
		// Smaller subsets first so the curve starts below the paper's 500
		// even on heavily scaled benchmarks.
		sizes := append([]int{100, 250}, Figure5Sizes...)
		coreCfg := CoreConfig(cfg.Seed)
		coreCfg.Embedding = core.BERTPretrained
		run := func(sample *data.Dataset) float64 {
			sys, err := core.Train(sample, sp.valid, coreCfg)
			if err != nil {
				return 0
			}
			return testF1(sys, sp.test)
		}
		out = append(out, Figure5Series{
			Key:    key,
			Points: eval.LearningCurve(sp.train, sizes, run, cfg.Seed),
		})
	}
	return out, nil
}

// FormatFigure5 renders each curve as size→F1 rows.
func FormatFigure5(series []Figure5Series) string {
	var t tableBuilder
	t.line("Figure 5: Learning curves (training-set size vs F1), pre-trained embeddings.")
	for _, s := range series {
		line := fmt.Sprintf("%-6s", s.Key)
		for _, p := range s.Points {
			line += fmt.Sprintf("  %d:%.3f", p.TrainSize, p.F1)
		}
		t.line(line)
	}
	return t.String()
}
