package experiments

import (
	"fmt"

	"wym/internal/baselines"
	"wym/internal/eval"
)

// Table3Systems is the column order of the effectiveness comparison.
var Table3Systems = []string{"WYM", "DM+", "AutoML", "CorDEL", "DITTO"}

// Table3Row is one dataset's F1 for every compared system.
type Table3Row struct {
	Key    string
	Scores map[string]float64 // system name -> F1
	Ranks  map[string]int
}

// Table3 trains WYM and the four baselines on every dataset and reports
// test F1 with per-dataset ranks.
func Table3(cfg RunConfig) ([]Table3Row, error) {
	var rows []Table3Row
	for _, key := range cfg.keys() {
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		scores := map[string]float64{"WYM": testF1(ts.sys, ts.test)}

		for _, m := range []baselines.Matcher{
			baselines.NewDMPlus(),
			baselines.NewAutoML(cfg.Seed),
			baselines.NewCorDEL(cfg.Seed),
			baselines.NewDITTO(cfg.Seed),
		} {
			if err := m.Train(ts.train, ts.valid); err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", m.Name(), key, err)
			}
			scores[m.Name()] = eval.F1Score(baselines.PredictAll(m, ts.test), ts.test.Labels())
		}

		values := make([]float64, len(Table3Systems))
		for i, name := range Table3Systems {
			values[i] = scores[name]
		}
		ranks := ranksOf(values)
		rankMap := map[string]int{}
		for i, name := range Table3Systems {
			rankMap[name] = ranks[i]
		}
		rows = append(rows, Table3Row{Key: key, Scores: scores, Ranks: rankMap})
	}
	return rows, nil
}

// FormatTable3 renders the comparison with per-dataset ranks, averages and
// the WYM deltas, mirroring the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var t tableBuilder
	t.line("Table 3: Effectiveness (F1), with per-dataset rank in brackets.")
	header := []string{"Dataset"}
	header = append(header, Table3Systems...)
	for _, s := range Table3Systems[1:] {
		header = append(header, "Δ"+s+"(%)")
	}
	t.row(header...)

	avg := map[string]float64{}
	avgRank := map[string]float64{}
	for _, r := range rows {
		cells := []string{r.Key}
		for _, name := range Table3Systems {
			cells = append(cells, cell(r.Scores[name], r.Ranks[name]))
			avg[name] += r.Scores[name]
			avgRank[name] += float64(r.Ranks[name])
		}
		for _, name := range Table3Systems[1:] {
			cells = append(cells, fmt.Sprintf("%+.1f", 100*(r.Scores["WYM"]-r.Scores[name])))
		}
		t.row(cells...)
	}
	n := float64(len(rows))
	cells := []string{"AVG"}
	for _, name := range Table3Systems {
		cells = append(cells, fmt.Sprintf("%.3f (%.1f)", avg[name]/n, avgRank[name]/n))
	}
	t.row(cells...)
	return t.String()
}
