package experiments

import (
	"fmt"
	"time"

	"wym/internal/baselines"
	"wym/internal/eval"
)

// TimingRow is one dataset's §5.3 measurement: training time, prediction
// and explanation throughput (records/second), the explanation share of
// the pipeline, and DITTO's training/prediction throughput for reference.
type TimingRow struct {
	Key string

	TrainSeconds     float64
	TrainThroughput  float64 // records trained / second
	PredictPerSecond float64
	ExplainPerSecond float64
	ExplainShare     float64 // fraction of per-record pipeline spent explaining

	DITTOTrainSeconds  float64
	DITTOPredictPerSec float64
}

// Section53 measures training and explanation throughput over the
// configured datasets.
func Section53(cfg RunConfig) ([]TimingRow, error) {
	var rows []TimingRow
	for _, key := range cfg.keys() {
		sp, err := makeSplits(key, cfg)
		if err != nil {
			return nil, err
		}
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		row := TimingRow{Key: key}
		row.TrainSeconds = ts.sys.TrainingTiming().Total().Seconds()
		if row.TrainSeconds > 0 {
			row.TrainThroughput = float64(sp.train.Size()+sp.valid.Size()) / row.TrainSeconds
		}

		sample := sampleTest(sp.test, cfg.sampleRecords(), cfg.Seed)
		start := time.Now()
		for _, p := range sample.Pairs {
			ts.sys.Predict(p)
		}
		predictDur := time.Since(start)

		start = time.Now()
		for _, p := range sample.Pairs {
			ts.sys.Explain(p)
		}
		explainDur := time.Since(start)

		n := float64(sample.Size())
		if predictDur > 0 {
			row.PredictPerSecond = n / predictDur.Seconds()
		}
		if explainDur > 0 {
			row.ExplainPerSecond = n / explainDur.Seconds()
		}
		if explainDur+predictDur > 0 {
			// Explain runs the predict pipeline plus attribution; the extra
			// attribution time over the shared pipeline is the explanation
			// share of the full explain call.
			extra := explainDur - predictDur
			if extra < 0 {
				extra = 0
			}
			row.ExplainShare = extra.Seconds() / explainDur.Seconds()
		}

		ditto := baselines.NewDITTO(cfg.Seed)
		start = time.Now()
		if err := ditto.Train(sp.train, sp.valid); err != nil {
			return nil, err
		}
		row.DITTOTrainSeconds = time.Since(start).Seconds()
		start = time.Now()
		for _, p := range sample.Pairs {
			ditto.Predict(p)
		}
		if d := time.Since(start); d > 0 {
			row.DITTOPredictPerSec = n / d.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSection53 renders the throughput table.
func FormatSection53(rows []TimingRow) string {
	var t tableBuilder
	t.line("Section 5.3: Time performance (records/second unless noted).")
	t.row("Dataset", "train s", "train r/s", "pred r/s", "expl r/s", "expl %", "DITTO tr s", "DITTO r/s")
	var explPerHour float64
	for _, r := range rows {
		t.row(r.Key,
			fmt.Sprintf("%.1f", r.TrainSeconds),
			fmt.Sprintf("%.1f", r.TrainThroughput),
			fmt.Sprintf("%.1f", r.PredictPerSecond),
			fmt.Sprintf("%.1f", r.ExplainPerSecond),
			fmt.Sprintf("%.0f%%", 100*r.ExplainShare),
			fmt.Sprintf("%.1f", r.DITTOTrainSeconds),
			fmt.Sprintf("%.1f", r.DITTOPredictPerSec))
		explPerHour += r.ExplainPerSecond * 3600
	}
	if len(rows) > 0 {
		t.line(fmt.Sprintf("Average explanations/hour: %.0f", explPerHour/float64(len(rows))))
	}
	return t.String()
}

// Section54 runs the simulated user study (§5.4).
func Section54(cfg RunConfig) eval.StudyResult {
	study := eval.DefaultStudyConfig()
	return eval.SimulateUserStudy(study)
}

// FormatSection54 renders the study summary.
func FormatSection54(res eval.StudyResult) string {
	var t tableBuilder
	t.line("Section 5.4: Simulated user study (15 raters, 9 statements, 3 pair types).")
	t.line(fmt.Sprintf("Prefer decision-unit explanations: %.0f%% of answers", 100*res.PreferUnitsShare))
	t.line(fmt.Sprintf("Fleiss' kappa: %.3f (paper: 0.787)", res.Kappa))
	return t.String()
}
