package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"wym/internal/baselines"
	"wym/internal/core"
	"wym/internal/data"
	"wym/internal/eval"
	"wym/internal/explain"
	"wym/internal/relevance"
)

// ---------- Figure 6: conciseness ----------

// Figure6Grid is the fraction-of-units grid of the Pareto analysis.
var Figure6Grid = []float64{0.03, 0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.0}

// Figure6Series is one dataset's conciseness curve.
type Figure6Series struct {
	Key    string
	Points []eval.ParetoPoint
}

// Figure6 computes the cumulative-impact Pareto curves over test records.
func Figure6(cfg RunConfig) ([]Figure6Series, error) {
	var out []Figure6Series
	for _, key := range cfg.keys() {
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		sample := sampleTest(ts.test, cfg.sampleRecords(), cfg.Seed)
		var impacts [][]float64
		for _, rec := range ts.sys.ProcessAll(sample) {
			ex := ts.sys.ExplainRecord(rec)
			row := make([]float64, len(ex.Units))
			for i, u := range ex.Units {
				row[i] = u.Impact
			}
			impacts = append(impacts, row)
		}
		out = append(out, Figure6Series{Key: key, Points: eval.ParetoCurve(impacts, Figure6Grid)})
	}
	return out, nil
}

// FormatFigure6 renders each curve as fraction→share rows.
func FormatFigure6(series []Figure6Series) string {
	var t tableBuilder
	t.line("Figure 6: Conciseness of the explanations (cumulative |impact| share of top units).")
	for _, s := range series {
		line := fmt.Sprintf("%-6s", s.Key)
		for _, p := range s.Points {
			line += fmt.Sprintf("  %.0f%%:%.2f", 100*p.Fraction, p.Share)
		}
		t.line(line)
	}
	return t.String()
}

// ---------- Figure 7: sufficiency (post-hoc accuracy) ----------

// Figure7Settings are the four compared explanation pipelines.
var Figure7Settings = []string{"WYM", "WYM+LIME", "DITTO+LIME", "DITTO+LEMON"}

// Figure7Row is one dataset's post-hoc accuracy per setting and v.
type Figure7Row struct {
	Key string
	// Acc[setting][v-1] is the Equation 4 accuracy using the top v units.
	Acc map[string][]float64
}

// Figure7MaxV is the largest explanation prefix evaluated (the paper uses
// the top 1..5 units).
const Figure7MaxV = 5

// Figure7 computes the post-hoc accuracy of WYM as its own explainer
// against the post-hoc pipelines (LIME on WYM, LIME and LEMON on DITTO).
func Figure7(cfg RunConfig) ([]Figure7Row, error) {
	var rows []Figure7Row
	for _, key := range cfg.keys() {
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		ditto := baselines.NewDITTO(cfg.Seed)
		if err := ditto.Train(ts.train, ts.valid); err != nil {
			return nil, fmt.Errorf("experiments: DITTO on %s: %w", key, err)
		}
		sample := sampleTest(ts.test, cfg.sampleRecords()/2, cfg.Seed)

		wymPredict := func(p data.Pair) int { l, _ := ts.sys.Predict(p); return l }
		wymProba := func(p data.Pair) float64 { _, pr := ts.sys.Predict(p); return pr }
		dittoPredict := func(p data.Pair) int { l, _ := ditto.Predict(p); return l }
		dittoProba := func(p data.Pair) float64 { _, pr := ditto.Predict(p); return pr }

		limeCfg := explain.DefaultConfig()
		limeCfg.Samples = 60 // enough for ranking stability at this scale
		limeCfg.Seed = cfg.Seed

		reducers := map[string]struct {
			predict func(data.Pair) int
			reduce  eval.Reducer
		}{
			"WYM":         {wymPredict, wymUnitReducer(ts.sys)},
			"WYM+LIME":    {wymPredict, tokenReducer(wymProba, explain.LIME, limeCfg)},
			"DITTO+LIME":  {dittoPredict, tokenReducer(dittoProba, explain.LIME, limeCfg)},
			"DITTO+LEMON": {dittoPredict, tokenReducer(dittoProba, explain.LEMON, limeCfg)},
		}

		row := Figure7Row{Key: key, Acc: map[string][]float64{}}
		for name, r := range reducers {
			accs := make([]float64, Figure7MaxV)
			for v := 1; v <= Figure7MaxV; v++ {
				accs[v-1] = eval.PostHocAccuracy(r.predict, sample.Pairs, r.reduce, v)
			}
			row.Acc[name] = accs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// wymUnitReducer reduces a pair to the tokens of its top-v impact units.
func wymUnitReducer(sys *core.System) eval.Reducer {
	return func(p data.Pair, v int) data.Pair {
		rec := sys.Process(p)
		ex := sys.ExplainRecord(rec)
		impacts := make([]float64, len(ex.Units))
		for i, u := range ex.Units {
			impacts[i] = u.Impact
		}
		order := eval.RankUnits(impacts)
		if v > len(order) {
			v = len(order)
		}
		return eval.PairFromUnits(rec.Rel(), order[:v], len(sys.Schema()))
	}
}

// tokenReducer reduces a pair to its top-v attributed tokens under a
// post-hoc explainer.
func tokenReducer(f explain.ProbaFunc,
	explainer func(explain.ProbaFunc, data.Pair, explain.Config) []explain.Attribution,
	cfg explain.Config) eval.Reducer {
	return func(p data.Pair, v int) data.Pair {
		attribs := explainer(f, p, cfg)
		top := explain.TopTokens(attribs, v)
		refs := explain.Enumerate(p)
		keep := make([]bool, len(refs))
		for i, ref := range refs {
			for _, a := range top {
				if a.Side == ref.Side && a.Attr == ref.Attr && a.Pos == ref.Pos {
					keep[i] = true
					break
				}
			}
		}
		return explain.Mask(p, refs, keep)
	}
}

// FormatFigure7 renders the sufficiency accuracies.
func FormatFigure7(rows []Figure7Row) string {
	var t tableBuilder
	t.line("Figure 7: Sufficiency (post-hoc accuracy) using the top 1..5 explanation elements.")
	for _, r := range rows {
		t.line(r.Key + ":")
		for _, name := range Figure7Settings {
			line := fmt.Sprintf("  %-12s", name)
			for v, acc := range r.Acc[name] {
				line += fmt.Sprintf("  v=%d:%.2f", v+1, acc)
			}
			t.line(line)
		}
	}
	return t.String()
}

// ---------- Figure 8: MoRF / LeRF / Random removal ----------

// Figure8Strategies in presentation order.
var Figure8Strategies = []eval.RemovalStrategy{eval.MoRF, eval.LeRF, eval.Random}

// Figure8MaxK is the number of removed units evaluated (1..K).
const Figure8MaxK = 5

// Figure8Row is one dataset's F1 after removing k units per strategy.
type Figure8Row struct {
	Key      string
	Baseline float64                            // F1 with no removal
	F1       map[eval.RemovalStrategy][]float64 // strategy -> F1 at k=1..MaxK
}

// Figure8 perturbs test records by removing decision units in MoRF, LeRF
// and random order and re-evaluates WYM's F1.
func Figure8(cfg RunConfig) ([]Figure8Row, error) {
	var rows []Figure8Row
	for _, key := range cfg.keys() {
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		sample := sampleTest(ts.test, cfg.sampleRecords(), cfg.Seed)
		recs := ts.sys.ProcessAll(sample)
		type explained struct {
			rec     *relevance.Record
			impacts []float64
			pred    int
		}
		items := make([]explained, len(recs))
		basePred := make([]int, len(recs))
		for i, rec := range recs {
			ex := ts.sys.ExplainRecord(rec)
			impacts := make([]float64, len(ex.Units))
			for j, u := range ex.Units {
				impacts[j] = u.Impact
			}
			items[i] = explained{rec: rec.Rel(), impacts: impacts, pred: ex.Prediction}
			basePred[i] = ex.Prediction
		}
		row := Figure8Row{
			Key:      key,
			Baseline: eval.F1Score(basePred, sample.Labels()),
			F1:       map[eval.RemovalStrategy][]float64{},
		}
		for _, strategy := range Figure8Strategies {
			f1s := make([]float64, Figure8MaxK)
			for k := 1; k <= Figure8MaxK; k++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
				pred := make([]int, len(items))
				for i, it := range items {
					order := eval.RemovalOrder(it.impacts, it.pred, strategy, rng)
					kept := eval.RemoveTopK(order, k)
					reduced := eval.PairFromUnits(it.rec, kept, len(ts.sys.Schema()))
					pred[i], _ = ts.sys.Predict(reduced)
				}
				f1s[k-1] = eval.F1Score(pred, sample.Labels())
			}
			row.F1[strategy] = f1s
		}
		rows = append(rows, row)
	}
	return rows, nil
}

var strategyNames = map[eval.RemovalStrategy]string{
	eval.MoRF: "MoRF", eval.LeRF: "LeRF", eval.Random: "Random",
}

// FormatFigure8 renders the removal curves.
func FormatFigure8(rows []Figure8Row) string {
	var t tableBuilder
	t.line("Figure 8: F1 after removing the k most (MoRF) / least (LeRF) / random units.")
	for _, r := range rows {
		t.line(fmt.Sprintf("%s (baseline F1 %.3f):", r.Key, r.Baseline))
		for _, s := range Figure8Strategies {
			line := fmt.Sprintf("  %-7s", strategyNames[s])
			for k, f1 := range r.F1[s] {
				line += fmt.Sprintf("  k=%d:%.3f", k+1, f1)
			}
			t.line(line)
		}
	}
	return t.String()
}

// ---------- Figure 9: correlation with Landmark ----------

// Figure9Row is one dataset's Pearson correlation distribution between
// WYM impacts and Landmark attributions, split by record label.
type Figure9Row struct {
	Key                           string
	MatchMean, MatchMedian        float64
	NonMatchMean, NonMatchMedian  float64
	MatchRecords, NonMatchRecords int
}

// Figure9 compares WYM's impact scores with Landmark explanations on a
// balanced sample: Landmark's token weights are merged onto WYM's decision
// units and correlated per record.
func Figure9(cfg RunConfig) ([]Figure9Row, error) {
	var rows []Figure9Row
	for _, key := range cfg.keys() {
		ts, err := trainWYM(key, cfg)
		if err != nil {
			return nil, err
		}
		sample := sampleTest(ts.test, cfg.sampleRecords(), cfg.Seed)
		wymProba := func(p data.Pair) float64 { _, pr := ts.sys.Predict(p); return pr }
		lmCfg := explain.DefaultConfig()
		lmCfg.Samples = 100 // the paper's 100 perturbations per entity
		lmCfg.Seed = cfg.Seed

		var matchCorrs, nonCorrs []float64
		for _, pair := range sample.Pairs {
			rec := ts.sys.Process(pair)
			if len(rec.Units) < 2 {
				continue
			}
			ex := ts.sys.ExplainRecord(rec)
			impacts := make([]float64, len(ex.Units))
			for i, u := range ex.Units {
				impacts[i] = u.Impact
			}
			aligned := landmarkOnUnits(wymProba, pair, rec.Rel(), lmCfg)
			corr := eval.Pearson(impacts, aligned)
			if pair.Label == data.Match {
				matchCorrs = append(matchCorrs, corr)
			} else {
				nonCorrs = append(nonCorrs, corr)
			}
		}
		rows = append(rows, Figure9Row{
			Key:             key,
			MatchMean:       mean(matchCorrs),
			MatchMedian:     medianOf(matchCorrs),
			NonMatchMean:    mean(nonCorrs),
			NonMatchMedian:  medianOf(nonCorrs),
			MatchRecords:    len(matchCorrs),
			NonMatchRecords: len(nonCorrs),
		})
	}
	return rows, nil
}

// landmarkOnUnits runs the Landmark explainer and merges its token weights
// onto the record's decision units (the paper post-processes Landmark's
// token scores the same way).
func landmarkOnUnits(f explain.ProbaFunc, pair data.Pair, rec *relevance.Record,
	cfg explain.Config) []float64 {
	attribs := explain.Landmark(f, pair, cfg)
	// Token positions in explain refer to whitespace fields of the raw
	// attribute values; map them onto the tokenizer's (attr, pos) space by
	// matching texts in order per attribute.
	leftW := matchTokenWeights(attribs, explain.Left, rec.LeftTexts())
	rightW := matchTokenWeights(attribs, explain.Right, rec.RightTexts())
	return eval.AlignTokenWeights(rec, leftW, rightW)
}

// matchTokenWeights assigns each tokenizer token (in order) the weight of
// the first unconsumed attribution with the same text on the same side.
func matchTokenWeights(attribs []explain.Attribution, side explain.Side, texts []string) map[int]float64 {
	used := make([]bool, len(attribs))
	out := map[int]float64{}
	for ti, text := range texts {
		for ai, a := range attribs {
			if used[ai] || a.Side != side || a.Text != text {
				continue
			}
			out[ti] = a.Weight
			used[ai] = true
			break
		}
	}
	return out
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64{}, xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// FormatFigure9 renders the correlation summary.
func FormatFigure9(rows []Figure9Row) string {
	var t tableBuilder
	t.line("Figure 9: Pearson correlation between WYM impacts and Landmark explanations.")
	t.row("Dataset", "match mean", "match med", "non mean", "non med")
	for _, r := range rows {
		t.row(r.Key,
			fmt.Sprintf("%.3f", r.MatchMean),
			fmt.Sprintf("%.3f", r.MatchMedian),
			fmt.Sprintf("%.3f", r.NonMatchMean),
			fmt.Sprintf("%.3f", r.NonMatchMedian))
	}
	return t.String()
}
