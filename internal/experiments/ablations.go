package experiments

import (
	"fmt"

	"wym/internal/core"
	"wym/internal/units"
)

// The paper fixes θ = 0.6, η = 0.65, ε = 0.7 experimentally and argues the
// thresholds should increase with the breadth of the search space. These
// ablations probe the two design choices DESIGN.md calls out: the
// threshold triple and the record-context mixing weight of the embedding
// substitution.

// ThresholdSetting is one swept configuration.
type ThresholdSetting struct {
	Label string
	T     units.Thresholds
}

// ThresholdSweep is the default grid: the paper's increasing triple, a
// flat triple, a permissive and a strict one, and an inverted ordering.
var ThresholdSweep = []ThresholdSetting{
	{"paper (0.60/0.65/0.70)", units.Thresholds{Theta: 0.60, Eta: 0.65, Epsilon: 0.70}},
	{"flat (0.65)", units.Thresholds{Theta: 0.65, Eta: 0.65, Epsilon: 0.65}},
	{"permissive (0.45/0.50/0.55)", units.Thresholds{Theta: 0.45, Eta: 0.50, Epsilon: 0.55}},
	{"strict (0.75/0.80/0.85)", units.Thresholds{Theta: 0.75, Eta: 0.80, Epsilon: 0.85}},
	{"inverted (0.70/0.65/0.60)", units.Thresholds{Theta: 0.70, Eta: 0.65, Epsilon: 0.60}},
}

// AblationRow is one dataset's F1 per swept setting.
type AblationRow struct {
	Key    string
	Scores map[string]float64 // label -> F1
	Labels []string           // presentation order
}

// AblationThresholds sweeps the θ/η/ε triple.
func AblationThresholds(cfg RunConfig) ([]AblationRow, error) {
	var rows []AblationRow
	for _, key := range cfg.keys() {
		sp, err := makeSplits(key, cfg)
		if err != nil {
			return nil, err
		}
		row := AblationRow{Key: key, Scores: map[string]float64{}}
		for _, setting := range ThresholdSweep {
			c := CoreConfig(cfg.Seed)
			c.Thresholds = setting.T
			sys, err := core.Train(sp.train, sp.valid, c)
			if err != nil {
				return nil, fmt.Errorf("experiments: thresholds %s on %s: %w", setting.Label, key, err)
			}
			row.Scores[setting.Label] = testF1(sys, sp.test)
			row.Labels = append(row.Labels, setting.Label)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GammaSweep is the context-mixing grid: 0 disables contextualization (a
// purely static embedding space), the repo default is 0.15, and larger
// values blur token identity.
var GammaSweep = []float64{0, 0.15, 0.30, 0.50}

// AblationContext sweeps the record-context mixing weight γ.
func AblationContext(cfg RunConfig) ([]AblationRow, error) {
	var rows []AblationRow
	for _, key := range cfg.keys() {
		sp, err := makeSplits(key, cfg)
		if err != nil {
			return nil, err
		}
		row := AblationRow{Key: key, Scores: map[string]float64{}}
		for _, gamma := range GammaSweep {
			label := fmt.Sprintf("γ=%.2f", gamma)
			c := CoreConfig(cfg.Seed)
			c.ContextGamma = gamma
			sys, err := core.Train(sp.train, sp.valid, c)
			if err != nil {
				return nil, fmt.Errorf("experiments: gamma %v on %s: %w", gamma, key, err)
			}
			row.Scores[label] = testF1(sys, sp.test)
			row.Labels = append(row.Labels, label)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders a sweep result.
func FormatAblation(title string, rows []AblationRow) string {
	var t tableBuilder
	t.line(title)
	if len(rows) == 0 {
		return t.String()
	}
	header := append([]string{"Dataset"}, rows[0].Labels...)
	t.row(header...)
	avg := map[string]float64{}
	for _, r := range rows {
		cells := []string{r.Key}
		for _, label := range r.Labels {
			cells = append(cells, fmt.Sprintf("%.3f", r.Scores[label]))
			avg[label] += r.Scores[label]
		}
		t.row(cells...)
	}
	cells := []string{"AVG"}
	for _, label := range rows[0].Labels {
		cells = append(cells, fmt.Sprintf("%.3f", avg[label]/float64(len(rows))))
	}
	t.row(cells...)
	return t.String()
}
