// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5). Every driver consumes a RunConfig — most
// importantly a Scale that shrinks the Table-2 dataset sizes so a full
// reproduction fits on a laptop — and returns structured rows plus a
// paper-style textual rendering. cmd/benchmark and the repository's
// bench_test.go are thin wrappers over these drivers.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wym/internal/core"
	"wym/internal/data"
	"wym/internal/datagen"
	"wym/internal/eval"
	"wym/internal/nn"
	"wym/internal/relevance"
)

// RunConfig is shared by all experiment drivers.
type RunConfig struct {
	// Scale is the fraction of each dataset's Table-2 size to generate
	// (1.0 = the paper's sizes). Small scales keep the full benchmark
	// tractable; 0.05 reproduces every shape in minutes.
	Scale float64
	// Datasets restricts the run to the given keys (nil = all 12).
	Datasets []string
	// Seed drives every stochastic component.
	Seed int64
	// SampleRecords caps per-record experiments (Figures 6-9); 0 = 100.
	SampleRecords int
}

// DefaultRunConfig returns a configuration that reproduces every
// experiment shape at laptop scale.
func DefaultRunConfig() RunConfig {
	return RunConfig{Scale: 0.05, Seed: 1, SampleRecords: 100}
}

func (c RunConfig) keys() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	var keys []string
	for _, p := range datagen.Benchmark() {
		keys = append(keys, p.Key)
	}
	return keys
}

func (c RunConfig) sampleRecords() int {
	if c.SampleRecords > 0 {
		return c.SampleRecords
	}
	return 100
}

// CoreConfig returns the WYM configuration used across the experiments: a
// compact scorer network sized for the synthetic benchmark, everything
// else paper-default.
func CoreConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.ScorerNN = relevance.NNConfig{
		Hidden: []int{64, 32},
		Train:  nn.Config{Epochs: 20, BatchSize: 64, LR: 1e-3, Seed: seed},
		Seed:   seed,
	}
	cfg.MaxFineTunePairs = 1000
	return cfg
}

// splits carries one dataset's generated splits.
type splits struct {
	key                string
	train, valid, test *data.Dataset
}

// makeSplits generates and splits one dataset.
func makeSplits(key string, cfg RunConfig) (splits, error) {
	p, ok := datagen.ProfileByKey(key)
	if !ok {
		return splits{}, fmt.Errorf("experiments: unknown dataset %q", key)
	}
	d := datagen.Generate(p, cfg.Scale)
	train, valid, test, err := d.Split(0.6, 0.2, cfg.Seed)
	if err != nil {
		return splits{}, err
	}
	return splits{key: key, train: train, valid: valid, test: test}, nil
}

// trainedSystem caches one trained WYM system per dataset so the
// interpretability experiments (Figures 6-9, §5.3) don't retrain.
type trainedSystem struct {
	splits
	sys *core.System
}

var (
	sysCacheMu sync.Mutex
	sysCache   = map[string]trainedSystem{}
)

// trainWYM returns a trained system for the dataset, cached per
// (key, scale, seed).
func trainWYM(key string, cfg RunConfig) (trainedSystem, error) {
	cacheKey := fmt.Sprintf("%s@%v@%d", key, cfg.Scale, cfg.Seed)
	sysCacheMu.Lock()
	got, ok := sysCache[cacheKey]
	sysCacheMu.Unlock()
	if ok {
		return got, nil
	}
	sp, err := makeSplits(key, cfg)
	if err != nil {
		return trainedSystem{}, err
	}
	sys, err := core.Train(sp.train, sp.valid, CoreConfig(cfg.Seed))
	if err != nil {
		return trainedSystem{}, fmt.Errorf("experiments: training on %s: %w", key, err)
	}
	ts := trainedSystem{splits: sp, sys: sys}
	sysCacheMu.Lock()
	sysCache[cacheKey] = ts
	sysCacheMu.Unlock()
	return ts, nil
}

// ResetCache clears the per-dataset system cache (benchmarks use it to
// measure cold runs).
func ResetCache() {
	sysCacheMu.Lock()
	sysCache = map[string]trainedSystem{}
	sysCacheMu.Unlock()
}

// testF1 evaluates a system on the test split.
func testF1(sys *core.System, test *data.Dataset) float64 {
	return eval.F1Score(sys.PredictAll(test), test.Labels())
}

// sampleTest returns up to n test records, balanced between matches and
// non-matches where possible (the Figure 9 protocol).
func sampleTest(test *data.Dataset, n int, seed int64) *data.Dataset {
	if test.Size() <= n {
		return test
	}
	return test.Sample(n, seed)
}

// rankHeader renders "0.936 (5)"-style cells.
func cell(v float64, rank int) string {
	return fmt.Sprintf("%.3f (%d)", v, rank)
}

// ranksOf returns the 1-based descending rank of each value (ties share
// the better rank, as in the paper's tables).
func ranksOf(values []float64) []int {
	type kv struct {
		idx int
		v   float64
	}
	order := make([]kv, len(values))
	for i, v := range values {
		order[i] = kv{i, v}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].v > order[b].v })
	ranks := make([]int, len(values))
	for pos, o := range order {
		rank := pos + 1
		if pos > 0 && o.v == order[pos-1].v {
			rank = ranks[order[pos-1].idx]
		}
		ranks[o.idx] = rank
	}
	return ranks
}

// tableBuilder accumulates fixed-width rows.
type tableBuilder struct {
	b strings.Builder
}

func (t *tableBuilder) row(cells ...string) {
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(&t.b, "%-8s", c)
			continue
		}
		fmt.Fprintf(&t.b, "  %12s", c)
	}
	t.b.WriteByte('\n')
}

func (t *tableBuilder) line(s string) {
	t.b.WriteString(s)
	t.b.WriteByte('\n')
}

func (t *tableBuilder) String() string { return t.b.String() }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
