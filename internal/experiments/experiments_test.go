package experiments

import (
	"math"
	"strings"
	"testing"

	"wym/internal/eval"
)

// tinyConfig keeps every driver fast: one small dataset, floor-sized.
func tinyConfig() RunConfig {
	return RunConfig{Scale: 0.05, Datasets: []string{"S-FZ"}, Seed: 1, SampleRecords: 20}
}

func TestTable2(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"S-FZ", "S-AG"}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Key != "S-FZ" || rows[0].Type != "Structured" {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[0].Size <= 0 || rows[0].PctMatch <= 0 {
		t.Fatalf("degenerate stats: %+v", rows[0])
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "S-AG") {
		t.Fatalf("format output missing dataset: %s", out)
	}
}

func TestTable2UnknownDataset(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"NOPE"}
	if _, err := Table2(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestFigure4(t *testing.T) {
	rows, err := Figure4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The paper's Figure 4 shape: non-matching records carry more unpaired
	// units than matching ones, and matching records more paired units
	// than non-matching ones.
	if r.NonMatchUnpaired <= r.MatchUnpaired {
		t.Fatalf("unpaired distribution inverted: %+v", r)
	}
	if r.MatchPaired <= r.NonMatchPaired {
		t.Fatalf("paired distribution inverted: %+v", r)
	}
	if !strings.Contains(FormatFigure4(rows), "S-FZ") {
		t.Fatal("format output missing dataset")
	}
}

func TestTable3ShapeOnEasyDataset(t *testing.T) {
	rows, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.Scores) != 5 {
		t.Fatalf("systems = %d", len(r.Scores))
	}
	for name, f1 := range r.Scores {
		if f1 < 0.5 {
			t.Fatalf("%s F1 = %v on the easy dataset", name, f1)
		}
	}
	for _, name := range Table3Systems {
		if r.Ranks[name] < 1 || r.Ranks[name] > 5 {
			t.Fatalf("rank out of range: %v", r.Ranks)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "AVG") {
		t.Fatal("format output missing averages")
	}
}

func TestFigure5(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"S-DA"}
	cfg.Scale = 0.03
	series, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) < 2 {
		t.Fatalf("series = %+v", series)
	}
	// Sizes must be increasing and end at the full training set.
	pts := series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].TrainSize <= pts[i-1].TrainSize {
			t.Fatalf("sizes not increasing: %+v", pts)
		}
	}
	if !strings.Contains(FormatFigure5(series), "S-DA") {
		t.Fatal("format output missing dataset")
	}
}

func TestFigure5ExcludesSmallDatasets(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"S-BR", "S-IA"}
	series, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 0 {
		t.Fatalf("small datasets should be excluded: %+v", series)
	}
}

func TestTable4(t *testing.T) {
	rows, err := Table4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.Scores) != len(Table4Variants) {
		t.Fatalf("variants = %d", len(r.Scores))
	}
	for v, f1 := range r.Scores {
		if f1 < 0 || f1 > 1 || math.IsNaN(f1) {
			t.Fatalf("%s F1 = %v", v, f1)
		}
	}
	if !strings.Contains(FormatTable4(rows), "smp.feat.") {
		t.Fatal("format output missing variant")
	}
}

func TestTable5(t *testing.T) {
	rows, err := Table5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Scores) != 10 {
		t.Fatalf("classifiers = %d", len(rows[0].Scores))
	}
	if !strings.Contains(FormatTable5(rows), "GBM") {
		t.Fatal("format output missing classifier")
	}
}

func TestFigure6(t *testing.T) {
	series, err := Figure6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	if len(pts) != len(Figure6Grid) {
		t.Fatalf("points = %d", len(pts))
	}
	// Cumulative shares must be non-decreasing and end at 1.
	for i := 1; i < len(pts); i++ {
		if pts[i].Share+1e-9 < pts[i-1].Share {
			t.Fatalf("Pareto curve decreasing: %+v", pts)
		}
	}
	if math.Abs(pts[len(pts)-1].Share-1) > 1e-9 {
		t.Fatalf("full share = %v, want 1", pts[len(pts)-1].Share)
	}
}

func TestFigure7(t *testing.T) {
	cfg := tinyConfig()
	cfg.SampleRecords = 10
	rows, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	for _, name := range Figure7Settings {
		accs, ok := r.Acc[name]
		if !ok || len(accs) != Figure7MaxV {
			t.Fatalf("missing accuracies for %s: %+v", name, r.Acc)
		}
		for _, a := range accs {
			if a < 0 || a > 1 {
				t.Fatalf("%s accuracy out of range: %v", name, a)
			}
		}
	}
	if !strings.Contains(FormatFigure7(rows), "DITTO+LEMON") {
		t.Fatal("format output missing setting")
	}
}

func TestFigure8(t *testing.T) {
	rows, err := Figure8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	for _, s := range Figure8Strategies {
		if len(r.F1[s]) != Figure8MaxK {
			t.Fatalf("strategy %v has %d points", s, len(r.F1[s]))
		}
	}
	// The central claim: removing the most relevant units (MoRF) hurts at
	// least as much as removing the least relevant (LeRF).
	morfK5 := r.F1[eval.MoRF][Figure8MaxK-1]
	lerfK5 := r.F1[eval.LeRF][Figure8MaxK-1]
	if morfK5 > lerfK5 {
		t.Fatalf("MoRF (%v) should hurt at least as much as LeRF (%v)", morfK5, lerfK5)
	}
	if !strings.Contains(FormatFigure8(rows), "MoRF") {
		t.Fatal("format output missing strategy")
	}
}

func TestFigure9(t *testing.T) {
	cfg := tinyConfig()
	cfg.SampleRecords = 16
	rows, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	for _, v := range []float64{r.MatchMean, r.NonMatchMean, r.MatchMedian, r.NonMatchMedian} {
		if v < -1 || v > 1 || math.IsNaN(v) {
			t.Fatalf("correlation out of range: %+v", r)
		}
	}
	if r.MatchRecords == 0 && r.NonMatchRecords == 0 {
		t.Fatal("no records correlated")
	}
	if !strings.Contains(FormatFigure9(rows), "S-FZ") {
		t.Fatal("format output missing dataset")
	}
}

func TestSection53(t *testing.T) {
	cfg := tinyConfig()
	cfg.SampleRecords = 10
	rows, err := Section53(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TrainSeconds <= 0 || r.PredictPerSecond <= 0 || r.ExplainPerSecond <= 0 {
		t.Fatalf("degenerate timing: %+v", r)
	}
	// Explaining includes prediction plus attribution, so it should not be
	// dramatically faster. The margin is wide: wall-clock throughput on a
	// loaded CI machine is noisy.
	if r.ExplainPerSecond > r.PredictPerSecond*3 {
		t.Fatalf("explain (%v/s) implausibly faster than predict (%v/s)", r.ExplainPerSecond, r.PredictPerSecond)
	}
	if !strings.Contains(FormatSection53(rows), "explanations/hour") {
		t.Fatal("format output missing summary")
	}
}

func TestSection54(t *testing.T) {
	res := Section54(tinyConfig())
	if res.Kappa < 0.6 {
		t.Fatalf("kappa = %v", res.Kappa)
	}
	out := FormatSection54(res)
	if !strings.Contains(out, "kappa") {
		t.Fatalf("format output = %s", out)
	}
}

func TestRanksOf(t *testing.T) {
	ranks := ranksOf([]float64{0.9, 0.5, 0.9, 0.7})
	if ranks[0] != 1 || ranks[2] != 1 {
		t.Fatalf("tied best should share rank 1: %v", ranks)
	}
	if ranks[3] != 3 || ranks[1] != 4 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestCoreConfigDefaults(t *testing.T) {
	cfg := CoreConfig(7)
	if cfg.Seed != 7 || cfg.ScorerNN.Seed != 7 {
		t.Fatalf("seeds not threaded: %+v", cfg)
	}
}

func TestResetCache(t *testing.T) {
	if _, err := trainWYM("S-FZ", tinyConfig()); err != nil {
		t.Fatal(err)
	}
	sysCacheMu.Lock()
	n := len(sysCache)
	sysCacheMu.Unlock()
	if n == 0 {
		t.Fatal("cache empty after training")
	}
	ResetCache()
	sysCacheMu.Lock()
	n = len(sysCache)
	sysCacheMu.Unlock()
	if n != 0 {
		t.Fatal("cache not cleared")
	}
}

func TestAblationThresholds(t *testing.T) {
	cfg := tinyConfig()
	rows, err := AblationThresholds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.Scores) != len(ThresholdSweep) {
		t.Fatalf("settings = %d", len(r.Scores))
	}
	for label, f1 := range r.Scores {
		if f1 < 0 || f1 > 1 {
			t.Fatalf("%s F1 = %v", label, f1)
		}
	}
	out := FormatAblation("thresholds", rows)
	if !strings.Contains(out, "paper") || !strings.Contains(out, "AVG") {
		t.Fatalf("format output = %s", out)
	}
}

func TestAblationContext(t *testing.T) {
	rows, err := AblationContext(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Scores) != len(GammaSweep) {
		t.Fatalf("settings = %d", len(rows[0].Scores))
	}
}

func TestFormatAblationEmpty(t *testing.T) {
	if out := FormatAblation("empty", nil); !strings.Contains(out, "empty") {
		t.Fatalf("output = %q", out)
	}
}

func TestExtensionRules(t *testing.T) {
	rows, err := ExtensionRules(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TestSize == 0 {
		t.Fatal("empty test set")
	}
	for _, f1 := range []float64{r.BareF1, r.RulesF1} {
		if f1 < 0 || f1 > 1 {
			t.Fatalf("F1 out of range: %+v", r)
		}
	}
	if !strings.Contains(FormatExtensionRules(rows), "overrides") {
		t.Fatal("format output missing overrides column")
	}
}
