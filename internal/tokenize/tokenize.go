// Package tokenize turns entity descriptions into provenance-tracking
// tokens. It mirrors the featurization step of the paper (§4.1.1): attribute
// values are tokenized, lowercased and stripped of stop words; an optional
// word-piece mode splits long alphanumeric tokens into sub-word pieces,
// which reproduces the product-code failure mode the paper's error analysis
// discusses; and a product-code heuristic marks code-like tokens so that
// the domain-knowledge fix (only equal codes may pair) can be applied.
package tokenize

import (
	"sync"
	"unicode"
	"unicode/utf8"
)

// Token is a single feature extracted from an entity description, together
// with its provenance: the attribute it came from and its position within
// that attribute's value.
type Token struct {
	Text string
	Attr int // index into the dataset schema
	Pos  int // 0-based position within the attribute value
	// Code reports that the token looks like a product/model code (mixed
	// letters and digits, or a long digit run). The decision-unit
	// generator's domain heuristic (§5.1.1) uses it to restrict pairing of
	// codes to exact equality.
	Code bool
	// Piece reports that the token is a word piece produced by splitting a
	// longer token (word-piece mode only).
	Piece bool
}

// Options configures tokenization.
type Options struct {
	// StopWords removes common English stop words. The paper applies stop
	// word removal after word-piece tokenization.
	StopWords bool
	// WordPiece splits tokens longer than WordPieceLen into fixed-size
	// pieces, approximating BERT's sub-word tokenizer. Off by default:
	// the paper's error analysis shows it hurts product codes.
	WordPiece    bool
	WordPieceLen int // piece size; defaults to 4 when WordPiece is set
	// MaxTokensPerAttr caps the number of tokens kept per attribute value
	// (0 = unlimited). Long textual descriptions (the Abt-Buy dataset)
	// otherwise dominate running time quadratically in the pairing step.
	MaxTokensPerAttr int
}

// Default are the options used by the WYM implementation in the paper:
// stop-word removal on, word-piece splitting off.
var Default = Options{StopWords: true}

// stopWords is a compact English stop-word list; entity descriptions in EM
// benchmarks are short and noun-heavy, so a small list suffices.
var stopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "in": true, "is": true, "it": true,
	"its": true, "of": true, "on": true, "or": true, "that": true,
	"the": true, "this": true, "to": true, "was": true, "were": true,
	"will": true, "with": true, "you": true, "your": true, "s": true,
	"t": true, "nan": true, "null": true, "none": true,
}

// IsStopWord reports whether w (already lowercased) is on the stop list.
func IsStopWord(w string) bool { return stopWords[w] }

// Attribute tokenizes a single attribute value, assigning the given
// attribute index to every produced token.
func Attribute(value string, attr int, opts Options) []Token {
	return AppendAttribute(nil, value, attr, opts)
}

// splitScratch pools the transient slices of word splitting: the split
// headers, the run byte buffer, the run end offsets and the per-run code
// verdicts. Token texts escape into the output (as substrings of one arena
// string per value or entity); these headers never do.
type splitScratch struct {
	words   []string
	buf     []byte
	offs    []int
	codes   []bool
	attrEnd []int // Entity only: offs index where each attribute's runs end
}

var splitPool = sync.Pool{New: func() any { return new(splitScratch) }}

// arenaWords converts the accumulated runs into word strings sharing one
// backing allocation, appending the headers to words[:0].
func arenaWords(words []string, buf []byte, offs []int) []string {
	words = words[:0]
	if len(offs) == 0 {
		return words
	}
	arena := string(buf)
	start := 0
	for _, end := range offs {
		words = append(words, arena[start:end])
		start = end
	}
	return words
}

// AppendAttribute is Attribute appending to dst, so callers tokenizing a
// whole schema (see Entity) fill one slice instead of concatenating
// per-attribute ones.
func AppendAttribute(dst []Token, value string, attr int, opts Options) []Token {
	sc := splitPool.Get().(*splitScratch)
	defer splitPool.Put(sc)
	sc.buf, sc.offs, sc.codes = splitRuns(sc.buf[:0], sc.offs[:0], sc.codes[:0], value)
	sc.words = arenaWords(sc.words, sc.buf, sc.offs)
	words := sc.words
	if n := len(words); cap(dst)-len(dst) < n {
		dst = growTokens(dst, n)
	}
	return emitTokens(dst, words, sc.codes, attr, opts)
}

// emitTokens appends the tokens of one attribute value, given its words and
// their precomputed code verdicts. Positions start at 0 and count emitted
// (post-stop-word) tokens, as the paper's provenance scheme requires.
func emitTokens(dst []Token, words []string, codes []bool, attr int, opts Options) []Token {
	pos := 0
	emit := func(text string, code, piece bool) {
		if opts.StopWords && stopWords[text] {
			return
		}
		if opts.MaxTokensPerAttr > 0 && pos >= opts.MaxTokensPerAttr {
			return
		}
		dst = append(dst, Token{
			Text:  text,
			Attr:  attr,
			Pos:   pos,
			Code:  code,
			Piece: piece,
		})
		pos++
	}
	for wi, w := range words {
		if opts.WordPiece {
			n := opts.WordPieceLen
			if n <= 0 {
				n = 4
			}
			if len(w) > n {
				for i := 0; i < len(w); i += n {
					end := i + n
					if end > len(w) {
						end = len(w)
					}
					emit(w[i:end], LooksLikeCode(w[i:end]), true)
				}
				continue
			}
		}
		emit(w, codes[wi], false)
	}
	return dst
}

// Entity tokenizes all attribute values of an entity description, given as
// a slice aligned with the dataset schema. The result preserves attribute
// order; token positions restart at 0 within each attribute.
//
// Unlike repeated AppendAttribute calls, Entity splits every value before
// materializing anything, so all token texts share a single entity-wide
// arena string and the output slice is allocated once at its exact upper
// bound — two allocations per entity on the hot path.
func Entity(values []string, opts Options) []Token {
	sc := splitPool.Get().(*splitScratch)
	defer splitPool.Put(sc)
	buf, offs, codes := sc.buf[:0], sc.offs[:0], sc.codes[:0]
	attrEnd := sc.attrEnd[:0]
	for _, v := range values {
		buf, offs, codes = splitRuns(buf, offs, codes, v)
		attrEnd = append(attrEnd, len(offs))
	}
	sc.buf, sc.offs, sc.codes, sc.attrEnd = buf, offs, codes, attrEnd
	sc.words = arenaWords(sc.words, buf, offs)
	words := sc.words
	if len(words) == 0 {
		return nil
	}
	// Word-piece splitting can emit more tokens than words; everything else
	// only drops, so len(words) caps the output exactly.
	var toks []Token
	if !opts.WordPiece {
		toks = make([]Token, 0, len(words))
	}
	start := 0
	for attr, end := range attrEnd {
		toks = emitTokens(toks, words[start:end], codes[start:end], attr, opts)
		start = end
	}
	return toks
}

// growTokens ensures room for n more appends; it grows at least
// geometrically so a sequence of short appends does not reallocate each
// time.
func growTokens(dst []Token, n int) []Token {
	want := len(dst) + n
	if c := 2 * cap(dst); c > want {
		want = c
	}
	out := make([]Token, len(dst), want)
	copy(out, dst)
	return out
}

// SplitWords lowercases s and splits it into maximal runs of letters and
// digits. Mixed alphanumeric runs (product codes such as "dslra200w") stay
// whole; punctuation and whitespace are separators.
func SplitWords(s string) []string {
	buf, offs, _ := splitRuns(nil, nil, nil, s)
	if len(offs) == 0 {
		return nil
	}
	return arenaWords(make([]string, 0, len(offs)), buf, offs)
}

// splitRuns appends every maximal letter/digit run of s — lowercased — to
// buf, recording each run's end offset in offs and its LooksLikeCode
// verdict in codes (tallied from the letter/digit counts the scan already
// tracks, sparing a second pass per token). All words of a value share one
// arena string (see arenaWords): a single allocation instead of one per
// word. The common all-ASCII case bypasses the rune decoder.
func splitRuns(buf []byte, offs []int, codes []bool, s string) ([]byte, []int, []bool) {
	lastEnd := len(buf)
	var letters, digits int
	flush := func() {
		if len(buf) > lastEnd {
			offs = append(offs, len(buf))
			codes = append(codes, digits > 0 && (letters > 0 || digits >= 4))
			lastEnd = len(buf)
		}
		letters, digits = 0, 0
	}
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if '0' <= c && c <= '9' {
				buf = append(buf, c)
				digits++
			} else if 'a' <= c && c <= 'z' {
				buf = append(buf, c)
				letters++
			} else if 'A' <= c && c <= 'Z' {
				buf = append(buf, c+'a'-'A')
				letters++
			} else {
				flush()
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		r = unicode.ToLower(r)
		if unicode.IsDigit(r) {
			buf = utf8.AppendRune(buf, r)
			digits++
		} else if unicode.IsLetter(r) {
			buf = utf8.AppendRune(buf, r)
			letters++
		} else {
			flush()
		}
	}
	flush()
	return buf, offs, codes
}

// LooksLikeCode reports whether a token resembles a product or model code:
// it mixes letters and digits, or is a digit run of at least four
// characters. The paper's domain-knowledge heuristic restricts such tokens
// to exact-equality pairing, which raised T-AB F1 from 0.645 to 0.754.
func LooksLikeCode(tok string) bool {
	var letters, digits int
	for _, r := range tok {
		switch {
		case unicode.IsDigit(r):
			digits++
		case unicode.IsLetter(r):
			letters++
		}
	}
	if digits == 0 {
		return false
	}
	if letters > 0 {
		return true // mixed alphanumeric, e.g. "dslra200w"
	}
	return digits >= 4 // long digit run, e.g. "39400416"
}

// Texts returns just the token texts, in order. Baselines and explainers
// that work at plain-string granularity use it.
func Texts(toks []Token) []string {
	return AppendTexts(make([]string, 0, len(toks)), toks)
}

// AppendTexts is Texts appending to dst, for callers that pool the
// transient text slice (the embedding hot path reads it and lets go).
func AppendTexts(dst []string, toks []Token) []string {
	for _, t := range toks {
		dst = append(dst, t.Text)
	}
	return dst
}

// ByAttr groups token indices by attribute, returning a map from attribute
// index to the positions (indices into toks) of its tokens.
func ByAttr(toks []Token) map[int][]int {
	m := make(map[int][]int)
	for i, t := range toks {
		m[t.Attr] = append(m[t.Attr], i)
	}
	return m
}
