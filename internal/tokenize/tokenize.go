// Package tokenize turns entity descriptions into provenance-tracking
// tokens. It mirrors the featurization step of the paper (§4.1.1): attribute
// values are tokenized, lowercased and stripped of stop words; an optional
// word-piece mode splits long alphanumeric tokens into sub-word pieces,
// which reproduces the product-code failure mode the paper's error analysis
// discusses; and a product-code heuristic marks code-like tokens so that
// the domain-knowledge fix (only equal codes may pair) can be applied.
package tokenize

import (
	"strings"
	"unicode"
)

// Token is a single feature extracted from an entity description, together
// with its provenance: the attribute it came from and its position within
// that attribute's value.
type Token struct {
	Text string
	Attr int // index into the dataset schema
	Pos  int // 0-based position within the attribute value
	// Code reports that the token looks like a product/model code (mixed
	// letters and digits, or a long digit run). The decision-unit
	// generator's domain heuristic (§5.1.1) uses it to restrict pairing of
	// codes to exact equality.
	Code bool
	// Piece reports that the token is a word piece produced by splitting a
	// longer token (word-piece mode only).
	Piece bool
}

// Options configures tokenization.
type Options struct {
	// StopWords removes common English stop words. The paper applies stop
	// word removal after word-piece tokenization.
	StopWords bool
	// WordPiece splits tokens longer than WordPieceLen into fixed-size
	// pieces, approximating BERT's sub-word tokenizer. Off by default:
	// the paper's error analysis shows it hurts product codes.
	WordPiece    bool
	WordPieceLen int // piece size; defaults to 4 when WordPiece is set
	// MaxTokensPerAttr caps the number of tokens kept per attribute value
	// (0 = unlimited). Long textual descriptions (the Abt-Buy dataset)
	// otherwise dominate running time quadratically in the pairing step.
	MaxTokensPerAttr int
}

// Default are the options used by the WYM implementation in the paper:
// stop-word removal on, word-piece splitting off.
var Default = Options{StopWords: true}

// stopWords is a compact English stop-word list; entity descriptions in EM
// benchmarks are short and noun-heavy, so a small list suffices.
var stopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "in": true, "is": true, "it": true,
	"its": true, "of": true, "on": true, "or": true, "that": true,
	"the": true, "this": true, "to": true, "was": true, "were": true,
	"will": true, "with": true, "you": true, "your": true, "s": true,
	"t": true, "nan": true, "null": true, "none": true,
}

// IsStopWord reports whether w (already lowercased) is on the stop list.
func IsStopWord(w string) bool { return stopWords[w] }

// Attribute tokenizes a single attribute value, assigning the given
// attribute index to every produced token.
func Attribute(value string, attr int, opts Options) []Token {
	words := SplitWords(value)
	toks := make([]Token, 0, len(words))
	pos := 0
	emit := func(text string, piece bool) {
		if opts.StopWords && stopWords[text] {
			return
		}
		if opts.MaxTokensPerAttr > 0 && len(toks) >= opts.MaxTokensPerAttr {
			return
		}
		toks = append(toks, Token{
			Text:  text,
			Attr:  attr,
			Pos:   pos,
			Code:  LooksLikeCode(text),
			Piece: piece,
		})
		pos++
	}
	for _, w := range words {
		if opts.WordPiece {
			n := opts.WordPieceLen
			if n <= 0 {
				n = 4
			}
			if len(w) > n {
				for i := 0; i < len(w); i += n {
					end := i + n
					if end > len(w) {
						end = len(w)
					}
					emit(w[i:end], true)
				}
				continue
			}
		}
		emit(w, false)
	}
	return toks
}

// Entity tokenizes all attribute values of an entity description, given as
// a slice aligned with the dataset schema. The result preserves attribute
// order; token positions restart at 0 within each attribute.
func Entity(values []string, opts Options) []Token {
	var toks []Token
	for attr, v := range values {
		toks = append(toks, Attribute(v, attr, opts)...)
	}
	return toks
}

// SplitWords lowercases s and splits it into maximal runs of letters and
// digits. Mixed alphanumeric runs (product codes such as "dslra200w") stay
// whole; punctuation and whitespace are separators.
func SplitWords(s string) []string {
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return words
}

// LooksLikeCode reports whether a token resembles a product or model code:
// it mixes letters and digits, or is a digit run of at least four
// characters. The paper's domain-knowledge heuristic restricts such tokens
// to exact-equality pairing, which raised T-AB F1 from 0.645 to 0.754.
func LooksLikeCode(tok string) bool {
	var letters, digits int
	for _, r := range tok {
		switch {
		case unicode.IsDigit(r):
			digits++
		case unicode.IsLetter(r):
			letters++
		}
	}
	if digits == 0 {
		return false
	}
	if letters > 0 {
		return true // mixed alphanumeric, e.g. "dslra200w"
	}
	return digits >= 4 // long digit run, e.g. "39400416"
}

// Texts returns just the token texts, in order. Baselines and explainers
// that work at plain-string granularity use it.
func Texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// ByAttr groups token indices by attribute, returning a map from attribute
// index to the positions (indices into toks) of its tokens.
func ByAttr(toks []Token) map[int][]int {
	m := make(map[int][]int)
	for i, t := range toks {
		m[t.Attr] = append(m[t.Attr], i)
	}
	return m
}
