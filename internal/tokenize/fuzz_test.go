package tokenize

import (
	"testing"
	"unicode"
)

// FuzzSplitWords checks the tokenizer's core invariants on arbitrary
// input: no empty tokens, only letters/digits, lowercasing idempotent.
func FuzzSplitWords(f *testing.F) {
	for _, seed := range []string{
		"", "digital camera", "exch srvr ext-sa/eng 39400416",
		"price: $37.63", "é漢字 mixed ASCII", "a\x00b", "ALL CAPS",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, w := range SplitWords(s) {
			if w == "" {
				t.Fatal("empty token")
			}
			for _, r := range w {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("non-alphanumeric rune %q in token %q", r, w)
				}
				if unicode.ToLower(r) != r {
					t.Fatalf("non-lowercased rune %q in token %q", r, w)
				}
			}
		}
	})
}

// FuzzAttribute checks that tokenization with every option combination
// never panics and respects the per-attribute cap.
func FuzzAttribute(f *testing.F) {
	f.Add("the digital camera dslra200w", true, true, 3)
	f.Add("", false, false, 0)
	f.Fuzz(func(t *testing.T, s string, stop, piece bool, maxTok int) {
		if maxTok < 0 || maxTok > 1000 {
			return
		}
		opts := Options{StopWords: stop, WordPiece: piece, MaxTokensPerAttr: maxTok}
		toks := Attribute(s, 0, opts)
		if maxTok > 0 && len(toks) > maxTok {
			t.Fatalf("cap ignored: %d > %d", len(toks), maxTok)
		}
		for i, tok := range toks {
			if tok.Pos != i {
				t.Fatalf("positions not sequential: %+v", toks)
			}
		}
	})
}
