package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
	"unicode"
)

func TestSplitWords(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Digital Camera", []string{"digital", "camera"}},
		{"exch srvr ext-sa/eng 39400416", []string{"exch", "srvr", "ext", "sa", "eng", "39400416"}},
		{"dslra200w", []string{"dslra200w"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"", nil},
		{"!!!", nil},
		{"price: $37.63", []string{"price", "37", "63"}},
	}
	for _, tc := range tests {
		if got := SplitWords(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitWords(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSplitWordsLowercasesProperty(t *testing.T) {
	f := func(s string) bool {
		for _, w := range SplitWords(s) {
			if w == "" {
				return false
			}
			for _, r := range w {
				// Some Unicode upper-case letters (e.g. mathematical
				// alphanumerics) have no lower-case mapping, so the check
				// is "lowercasing is idempotent", not "no upper case".
				if unicode.ToLower(r) != r {
					return false
				}
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAttributeStopWords(t *testing.T) {
	toks := Attribute("the digital camera with a lens", 2, Default)
	got := Texts(toks)
	want := []string{"digital", "camera", "lens"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i, tok := range toks {
		if tok.Attr != 2 {
			t.Fatalf("token %d attr = %d, want 2", i, tok.Attr)
		}
		if tok.Pos != i {
			t.Fatalf("token %d pos = %d, want %d", i, tok.Pos, i)
		}
	}
}

func TestAttributeNoStopWords(t *testing.T) {
	toks := Attribute("the camera", 0, Options{})
	if got := Texts(toks); !reflect.DeepEqual(got, []string{"the", "camera"}) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestWordPieceSplitting(t *testing.T) {
	opts := Options{WordPiece: true, WordPieceLen: 4}
	toks := Attribute("dslra200w", 0, opts)
	got := Texts(toks)
	want := []string{"dslr", "a200", "w"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pieces = %v, want %v", got, want)
	}
	for _, tok := range toks {
		if !tok.Piece {
			t.Fatalf("token %q should be marked as a piece", tok.Text)
		}
	}
	// Short tokens stay whole and unmarked.
	toks = Attribute("sony", 0, opts)
	if len(toks) != 1 || toks[0].Piece {
		t.Fatalf("short token handling = %+v", toks)
	}
}

func TestWordPieceDefaultLen(t *testing.T) {
	toks := Attribute("abcdefgh", 0, Options{WordPiece: true})
	if got := Texts(toks); !reflect.DeepEqual(got, []string{"abcd", "efgh"}) {
		t.Fatalf("default piece len tokens = %v", got)
	}
}

func TestMaxTokensPerAttr(t *testing.T) {
	toks := Attribute("one two three four five", 0, Options{MaxTokensPerAttr: 3})
	if len(toks) != 3 {
		t.Fatalf("len = %d, want 3", len(toks))
	}
}

func TestEntity(t *testing.T) {
	toks := Entity([]string{"digital camera", "sony", "37.63"}, Default)
	want := []string{"digital", "camera", "sony", "37", "63"}
	if got := Texts(toks); !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	if toks[0].Attr != 0 || toks[2].Attr != 1 || toks[3].Attr != 2 {
		t.Fatalf("attribute provenance wrong: %+v", toks)
	}
	// Positions restart per attribute.
	if toks[3].Pos != 0 || toks[4].Pos != 1 {
		t.Fatalf("positions should restart per attribute: %+v", toks[3:])
	}
}

func TestLooksLikeCode(t *testing.T) {
	tests := []struct {
		tok  string
		want bool
	}{
		{"dslra200w", true},
		{"39400416", true},
		{"a4", true},
		{"123", false}, // short digit runs are prices/quantities, not codes
		{"sony", false},
		{"camera", false},
		{"", false},
	}
	for _, tc := range tests {
		if got := LooksLikeCode(tc.tok); got != tc.want {
			t.Errorf("LooksLikeCode(%q) = %v, want %v", tc.tok, got, tc.want)
		}
	}
}

func TestCodeFlagOnTokens(t *testing.T) {
	toks := Attribute("exch 39400416", 0, Default)
	if toks[0].Code {
		t.Fatal("exch should not be a code")
	}
	if !toks[1].Code {
		t.Fatal("39400416 should be a code")
	}
}

func TestByAttr(t *testing.T) {
	toks := Entity([]string{"a b", "c"}, Options{})
	groups := ByAttr(toks)
	if !reflect.DeepEqual(groups[0], []int{0, 1}) || !reflect.DeepEqual(groups[1], []int{2}) {
		t.Fatalf("groups = %v", groups)
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") || IsStopWord("camera") {
		t.Fatal("stop word classification wrong")
	}
}
