// Package baselines implements the four black-box matchers WYM is compared
// against in Table 3 — DeepMatcher+ (DM+), AutoML, CorDEL and DITTO — as
// feature-based simulations over the same substrate (DESIGN.md §1).
//
// The simulations reproduce the comparative *shape* of the paper, not the
// original architectures: the four systems differ in feature richness and
// model capacity. DM+ is a linear model over coarse per-attribute
// similarities; AutoML runs the classifier pool over the same mid-level
// features; CorDEL adds contrastive shared/unique-term features and a
// neural classifier; DITTO combines the richest cross-attribute feature
// set (including corpus-embedding alignment) with a larger boosted
// ensemble, and plays the "accurate but uninterpretable oracle" role in
// the interpretability experiments.
package baselines

import (
	"fmt"
	"strings"

	"wym/internal/classify"
	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/pipeline"
	"wym/internal/textsim"
	"wym/internal/tokenize"
	"wym/internal/vec"
)

// Matcher is a trainable black-box EM system: the Table 3 competitors and
// the subjects of the post-hoc explainers (Figures 7 and 9). Train
// assembles each matcher into a pipeline.Engine (see engine.go); Predict
// and PredictAll run through it.
type Matcher interface {
	Name() string
	Train(train, valid *data.Dataset) error
	// Predict returns the hard label and the match probability.
	Predict(p data.Pair) (label int, proba float64)
	// Engine returns the matcher's pipeline instantiation (nil before
	// Train).
	Engine() *pipeline.Engine
}

// PredictAll applies the matcher to a whole dataset through its engine's
// order-preserving batch fan-out.
func PredictAll(m Matcher, d *data.Dataset) []int {
	return m.Engine().PredictAll(d)
}

// attrTokens tokenizes one attribute value into plain strings.
func attrTokens(v string) []string { return tokenize.SplitWords(v) }

// pairFeatures computes the mid-level per-attribute similarity block
// shared by AutoML, CorDEL and DITTO: Jaccard, symmetric Monge–Elkan,
// number similarity and length difference per attribute, plus record-level
// overlap.
func pairFeatures(p data.Pair) []float64 {
	var out []float64
	var allL, allR []string
	for a := range p.Left {
		lt := attrTokens(p.Left[a])
		rt := attrTokens(p.Right[a])
		allL = append(allL, lt...)
		allR = append(allR, rt...)
		me := (textsim.MongeElkan(lt, rt) + textsim.MongeElkan(rt, lt)) / 2
		out = append(out,
			textsim.Jaccard(lt, rt),
			me,
			textsim.NumberSim(strings.TrimSpace(p.Left[a]), strings.TrimSpace(p.Right[a])),
			lengthDiff(lt, rt),
		)
	}
	out = append(out,
		textsim.Jaccard(allL, allR),
		textsim.Overlap(allL, allR),
		textsim.TokenCosine(allL, allR),
		lengthDiff(allL, allR),
	)
	return out
}

// coarseFeatures is the weaker DM+ block: Jaccard and normalized edit
// similarity per attribute only.
func coarseFeatures(p data.Pair) []float64 {
	var out []float64
	for a := range p.Left {
		lt := attrTokens(p.Left[a])
		rt := attrTokens(p.Right[a])
		out = append(out,
			textsim.Jaccard(lt, rt),
			textsim.LevenshteinSim(strings.Join(lt, " "), strings.Join(rt, " ")),
		)
	}
	return out
}

func lengthDiff(a, b []string) float64 {
	la, lb := float64(len(a)), float64(len(b))
	mx := la
	if lb > mx {
		mx = lb
	}
	if mx == 0 {
		return 0
	}
	return 1 - (absf(la-lb) / mx)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DMPlus simulates DeepMatcher+: a logistic regression over the mid-level
// attribute-similarity block plus the coarse per-attribute similarities —
// the lowest-capacity model in the comparison.
type DMPlus struct {
	engineHolder
	model classify.Classifier
}

// NewDMPlus returns an untrained DM+ matcher.
func NewDMPlus() *DMPlus { return &DMPlus{} }

// Name implements Matcher.
func (m *DMPlus) Name() string { return "DM+" }

// Train implements Matcher.
func (m *DMPlus) Train(train, _ *data.Dataset) error {
	x := make([][]float64, train.Size())
	for i, p := range train.Pairs {
		x[i] = m.features(p)
	}
	m.model = classify.NewStandardized(classify.NewLogisticRegression())
	if err := m.model.Fit(x, train.Labels()); err != nil {
		return fmt.Errorf("baselines: DM+: %w", err)
	}
	m.assemble(m.features, m.model)
	return nil
}

func (m *DMPlus) features(p data.Pair) []float64 {
	out := append(pairFeatures(p), coarseFeatures(p)...)
	return append(out, codeAgreement(p)...)
}

// Predict implements Matcher.
func (m *DMPlus) Predict(p data.Pair) (int, float64) {
	return m.eng.Predict(p)
}

// AutoML simulates the AutoML-for-EM adapter: the full classifier pool is
// fitted on the mid-level feature block and the best validation model is
// kept.
type AutoML struct {
	engineHolder
	seed  int64
	model classify.Classifier
}

// NewAutoML returns an untrained AutoML matcher.
func NewAutoML(seed int64) *AutoML { return &AutoML{seed: seed} }

// Name implements Matcher.
func (m *AutoML) Name() string { return "AutoML" }

// Train implements Matcher.
func (m *AutoML) Train(train, valid *data.Dataset) error {
	xt := make([][]float64, train.Size())
	for i, p := range train.Pairs {
		xt[i] = pairFeatures(p)
	}
	xv := make([][]float64, valid.Size())
	for i, p := range valid.Pairs {
		xv[i] = pairFeatures(p)
	}
	best, _, err := classify.SelectBest(classify.NewPool(m.seed), xt, train.Labels(), xv, valid.Labels())
	if err != nil {
		return fmt.Errorf("baselines: AutoML: %w", err)
	}
	m.model = best
	m.assemble(pairFeatures, m.model)
	return nil
}

// Predict implements Matcher.
func (m *AutoML) Predict(p data.Pair) (int, float64) {
	return m.eng.Predict(p)
}

// CorDEL simulates the contrastive CorDEL model: the mid-level block is
// extended with shared/unique-term contrastive statistics (per attribute
// and per record) and classified by a boosted ensemble of moderate
// capacity — stronger than AutoML's generic pool on contrast-heavy
// datasets, weaker than DITTO's embedding-aware model.
type CorDEL struct {
	engineHolder
	seed  int64
	model *classify.GBM
}

// NewCorDEL returns an untrained CorDEL matcher.
func NewCorDEL(seed int64) *CorDEL { return &CorDEL{seed: seed} }

// Name implements Matcher.
func (m *CorDEL) Name() string { return "CorDEL" }

func (m *CorDEL) features(p data.Pair) []float64 {
	out := pairFeatures(p)
	// Per-attribute contrastive counts: shared and unique tokens within
	// each aligned attribute.
	for a := range p.Left {
		lt := attrTokens(p.Left[a])
		rt := attrTokens(p.Right[a])
		setL := map[string]bool{}
		for _, t := range lt {
			setL[t] = true
		}
		setR := map[string]bool{}
		for _, t := range rt {
			setR[t] = true
		}
		var sh, un float64
		for t := range setL {
			if setR[t] {
				sh++
			} else {
				un++
			}
		}
		for t := range setR {
			if !setL[t] {
				un++
			}
		}
		out = append(out, sh, un)
	}
	// Contrastive block: per record, statistics of the shared multiset and
	// of each side's unique terms — the "similarity and dissimilarity
	// components" of the CorDEL design.
	var allL, allR []string
	for a := range p.Left {
		allL = append(allL, attrTokens(p.Left[a])...)
		allR = append(allR, attrTokens(p.Right[a])...)
	}
	setR := make(map[string]bool, len(allR))
	for _, t := range allR {
		setR[t] = true
	}
	setL := make(map[string]bool, len(allL))
	for _, t := range allL {
		setL[t] = true
	}
	var shared, uniqueL, uniqueR int
	for t := range setL {
		if setR[t] {
			shared++
		} else {
			uniqueL++
		}
	}
	for t := range setR {
		if !setL[t] {
			uniqueR++
		}
	}
	total := float64(shared + uniqueL + uniqueR)
	if total == 0 {
		total = 1
	}
	out = append(out,
		float64(shared), float64(uniqueL), float64(uniqueR),
		float64(shared)/total,
		float64(uniqueL+uniqueR)/total,
	)
	out = append(out, codeAgreement(p)...)
	return out
}

// Train implements Matcher.
func (m *CorDEL) Train(train, _ *data.Dataset) error {
	x := make([][]float64, train.Size())
	for i, p := range train.Pairs {
		x[i] = m.features(p)
	}
	m.model = classify.NewGBM(m.seed)
	m.model.NTrees = 100
	m.model.MaxDepth = 3
	if err := m.model.Fit(x, train.Labels()); err != nil {
		return fmt.Errorf("baselines: CorDEL: %w", err)
	}
	m.assemble(m.features, m.model)
	return nil
}

// Predict implements Matcher.
func (m *CorDEL) Predict(p data.Pair) (int, float64) {
	return m.eng.Predict(p)
}

// DITTO simulates the state-of-the-art DITTO matcher: the mid-level block
// plus corpus-embedding alignment features, classified by a deep boosted
// ensemble. It is the strongest and least interpretable model in the pool.
type DITTO struct {
	engineHolder
	seed   int64
	source embed.Source
	model  *classify.GBM
}

// NewDITTO returns an untrained DITTO matcher.
func NewDITTO(seed int64) *DITTO { return &DITTO{seed: seed} }

// Name implements Matcher.
func (m *DITTO) Name() string { return "DITTO" }

func (m *DITTO) features(p data.Pair) []float64 {
	out := pairFeatures(p)
	// Embedding block: per attribute, cosine of the mean token embedding
	// and the mean best-alignment similarity — a cheap proxy for the
	// cross-attention DITTO's transformer computes.
	for a := range p.Left {
		lt := attrTokens(p.Left[a])
		rt := attrTokens(p.Right[a])
		out = append(out, m.meanCosine(lt, rt), m.alignScore(lt, rt))
	}
	// Identifier block: exact agreement and conflict counts over code-like
	// tokens — the injected domain knowledge DITTO gets from its
	// serialization heuristics, decisive on product datasets.
	out = append(out, codeAgreement(p)...)
	return out
}

// codeAgreement counts code-like tokens shared exactly by both entities
// and code-like tokens present on one side with no exact partner.
func codeAgreement(p data.Pair) []float64 {
	codes := func(e data.Entity) map[string]int {
		m := map[string]int{}
		for _, v := range e {
			for _, t := range attrTokens(v) {
				if tokenize.LooksLikeCode(t) {
					m[t]++
				}
			}
		}
		return m
	}
	cl, cr := codes(p.Left), codes(p.Right)
	var shared, only float64
	for t := range cl {
		if cr[t] > 0 {
			shared++
		} else {
			only++
		}
	}
	for t := range cr {
		if cl[t] == 0 {
			only++
		}
	}
	return []float64{shared, only}
}

func (m *DITTO) meanCosine(lt, rt []string) float64 {
	lv := m.meanVec(lt)
	rv := m.meanVec(rt)
	if lv == nil || rv == nil {
		return 0
	}
	return vec.Cosine(lv, rv)
}

func (m *DITTO) meanVec(toks []string) []float64 {
	if len(toks) == 0 {
		return nil
	}
	acc := make([]float64, m.source.Dim())
	for _, t := range toks {
		vec.Add(acc, m.source.Vector(t))
	}
	vec.Scale(acc, 1/float64(len(toks)))
	return acc
}

func (m *DITTO) alignScore(lt, rt []string) float64 {
	if len(lt) == 0 || len(rt) == 0 {
		return 0
	}
	var total float64
	for _, l := range lt {
		best := 0.0
		lv := m.source.Vector(l)
		for _, r := range rt {
			if s := vec.Cosine(lv, m.source.Vector(r)); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(lt))
}

// Train implements Matcher.
func (m *DITTO) Train(train, valid *data.Dataset) error {
	var corpus [][]string
	for _, p := range train.Pairs {
		for a := range p.Left {
			corpus = append(corpus, attrTokens(p.Left[a]), attrTokens(p.Right[a]))
		}
	}
	coocCfg := embed.DefaultCoocConfig()
	coocCfg.Seed = m.seed
	m.source = embed.NewCache(embed.NewConcat(embed.NewHash(), embed.TrainCooc(corpus, coocCfg)))

	x := make([][]float64, 0, train.Size()+valid.Size())
	y := make([]int, 0, train.Size()+valid.Size())
	for _, d := range []*data.Dataset{train, valid} {
		for _, p := range d.Pairs {
			x = append(x, m.features(p))
			y = append(y, p.Label)
		}
	}
	m.model = classify.NewGBM(m.seed)
	m.model.NTrees = 150
	m.model.MaxDepth = 4
	if err := m.model.Fit(x, y); err != nil {
		return fmt.Errorf("baselines: DITTO: %w", err)
	}
	m.assemble(m.features, m.model)
	return nil
}

// Predict implements Matcher.
func (m *DITTO) Predict(p data.Pair) (int, float64) {
	return m.eng.Predict(p)
}

func hard(proba float64) int {
	if proba >= 0.5 {
		return data.Match
	}
	return data.NonMatch
}
