package baselines

import (
	"wym/internal/data"
	"wym/internal/pipeline"
)

// The simulated black boxes are instantiations of the same architecture
// template WYM fills (internal/pipeline): a pass-through unit generator
// (they never build decision units), no relevance scorer, and a matcher
// that featurizes the raw pair and classifies it. Assembling them into a
// pipeline.Engine gives every baseline the engine's batched, fault-
// isolated serving surface for free and keeps the comparison honest —
// Table 3 runs WYM and its competitors through one code path.

// probaModel is the slice of the classifier API the baseline matchers
// need; both classify.Classifier and *classify.GBM satisfy it.
type probaModel interface {
	PredictProba(x []float64) float64
}

// featureMatcher implements pipeline.Matcher over a pair-level feature
// function and a fitted model — the shared shape of the simulated black
// boxes. It ignores relevance scores (the baselines have none) and
// explains decisions with a bare prediction: no decision units, which is
// exactly the interpretability gap the paper measures them against.
type featureMatcher struct {
	feats func(data.Pair) []float64
	model probaModel
}

// MatchRecord implements pipeline.Matcher.
func (m featureMatcher) MatchRecord(rec *pipeline.Record, _ []float64) (int, float64) {
	proba := m.model.PredictProba(m.feats(rec.Pair))
	return hard(proba), proba
}

// ExplainRecord implements pipeline.Matcher: black boxes predict without
// explaining, so the explanation carries the decision and no units.
func (m featureMatcher) ExplainRecord(rec *pipeline.Record, _ []float64) pipeline.Explanation {
	label, proba := m.MatchRecord(rec, nil)
	return pipeline.Explanation{Prediction: label, Proba: proba}
}

// engineHolder carries a baseline's assembled engine; the concrete
// matchers embed it and call assemble at the end of Train.
type engineHolder struct {
	eng *pipeline.Engine
}

// Engine returns the assembled pipeline engine (nil before Train).
func (h *engineHolder) Engine() *pipeline.Engine { return h.eng }

// assemble plugs the fitted feature model into the template.
func (h *engineHolder) assemble(feats func(data.Pair) []float64, model probaModel) {
	h.eng = pipeline.New(pipeline.Verbatim{}, pipeline.NoScores{}, featureMatcher{feats: feats, model: model})
}
