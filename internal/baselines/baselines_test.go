package baselines

import (
	"math"
	"testing"

	"wym/internal/data"
	"wym/internal/datagen"
)

func splitOf(t *testing.T, key string, scale float64) (train, valid, test *data.Dataset) {
	t.Helper()
	p, ok := datagen.ProfileByKey(key)
	if !ok {
		t.Fatalf("unknown profile %q", key)
	}
	return datagen.Generate(p, scale).MustSplit(0.6, 0.2, 1)
}

func f1Of(pred, labels []int) float64 {
	var tp, fp, fn int
	for i := range labels {
		switch {
		case pred[i] == 1 && labels[i] == 1:
			tp++
		case pred[i] == 1 && labels[i] == 0:
			fp++
		case pred[i] == 0 && labels[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

func allMatchers() []Matcher {
	return []Matcher{NewDMPlus(), NewAutoML(1), NewCorDEL(1), NewDITTO(1)}
}

func TestAllBaselinesLearnEasyDataset(t *testing.T) {
	train, valid, test := splitOf(t, "S-FZ", 1.0)
	for _, m := range allMatchers() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			if err := m.Train(train, valid); err != nil {
				t.Fatal(err)
			}
			f1 := f1Of(PredictAll(m, test), test.Labels())
			if f1 < 0.85 {
				t.Fatalf("F1 = %v, want >= 0.85", f1)
			}
		})
	}
}

func TestBaselineProbabilitiesValid(t *testing.T) {
	train, valid, test := splitOf(t, "S-FZ", 1.0)
	for _, m := range allMatchers() {
		if err := m.Train(train, valid); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, p := range test.Pairs[:20] {
			label, proba := m.Predict(p)
			if proba < 0 || proba > 1 || math.IsNaN(proba) {
				t.Fatalf("%s: proba = %v", m.Name(), proba)
			}
			if (label == data.Match) != (proba >= 0.5) {
				t.Fatalf("%s: label/proba inconsistent", m.Name())
			}
		}
	}
}

func TestDITTOBeatsDMPlusOnHardDataset(t *testing.T) {
	// Table 3's central shape: the richest model wins on hard datasets.
	train, valid, test := splitOf(t, "S-AG", 0.06)
	ditto := NewDITTO(1)
	dm := NewDMPlus()
	if err := ditto.Train(train, valid); err != nil {
		t.Fatal(err)
	}
	if err := dm.Train(train, valid); err != nil {
		t.Fatal(err)
	}
	fD := f1Of(PredictAll(ditto, test), test.Labels())
	fM := f1Of(PredictAll(dm, test), test.Labels())
	if fD <= fM {
		t.Fatalf("DITTO (%v) should beat DM+ (%v) on S-AG", fD, fM)
	}
}

func TestCoarseFeaturesShape(t *testing.T) {
	p := data.Pair{
		Left:  data.Entity{"digital camera", "sony", "37.63"},
		Right: data.Entity{"digital camera kit", "sony", "39.99"},
	}
	if got := len(coarseFeatures(p)); got != 6 {
		t.Fatalf("coarse features = %d, want 6 (2 per attribute)", got)
	}
	if got := len(pairFeatures(p)); got != 3*4+4 {
		t.Fatalf("pair features = %d, want 16", got)
	}
}

func TestPairFeaturesIdenticalVsDisjoint(t *testing.T) {
	same := data.Pair{
		Left:  data.Entity{"digital camera", "sony"},
		Right: data.Entity{"digital camera", "sony"},
	}
	diff := data.Pair{
		Left:  data.Entity{"digital camera", "sony"},
		Right: data.Entity{"espresso machine", "delonghi"},
	}
	fs, fd := pairFeatures(same), pairFeatures(diff)
	var sumS, sumD float64
	for i := range fs {
		sumS += fs[i]
		sumD += fd[i]
	}
	if sumS <= sumD {
		t.Fatalf("identical pair features (%v) should dominate disjoint (%v)", sumS, sumD)
	}
}

func TestLengthDiff(t *testing.T) {
	if got := lengthDiff([]string{"a", "b"}, []string{"c", "d"}); got != 1 {
		t.Fatalf("equal lengths = %v", got)
	}
	if got := lengthDiff(nil, nil); got != 0 {
		t.Fatalf("both empty = %v", got)
	}
	if got := lengthDiff([]string{"a", "b", "c", "d"}, []string{"x"}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("4 vs 1 = %v, want 0.25", got)
	}
}

func TestCorDELContrastiveFeatures(t *testing.T) {
	m := NewCorDEL(1)
	p := data.Pair{
		Left:  data.Entity{"alpha beta gamma"},
		Right: data.Entity{"alpha beta delta"},
	}
	f := m.features(p)
	// Layout: pairFeatures | per-attribute (shared, unique) | record-level
	// (shared, uniqueL, uniqueR, sharedFrac, uniqueFrac) | code block.
	base := len(pairFeatures(p)) + 2*len(p.Left)
	shared, uniqueL, uniqueR := f[base], f[base+1], f[base+2]
	if shared != 2 || uniqueL != 1 || uniqueR != 1 {
		t.Fatalf("contrastive counts = %v/%v/%v, want 2/1/1", shared, uniqueL, uniqueR)
	}
}

func TestDITTOEmbeddingFeatures(t *testing.T) {
	train, valid, _ := splitOf(t, "S-FZ", 1.0)
	m := NewDITTO(1)
	if err := m.Train(train, valid); err != nil {
		t.Fatal(err)
	}
	same := data.Pair{
		Left:  train.Pairs[0].Left,
		Right: train.Pairs[0].Left,
	}
	f := m.features(same)
	base := len(pairFeatures(same))
	// Identical entities: alignment features must be ~1 per attribute.
	for a := 0; a < len(same.Left); a++ {
		if f[base+2*a] < 0.99 || f[base+2*a+1] < 0.99 {
			t.Fatalf("identical-entity embedding features = %v", f[base:])
		}
	}
}
