// Package embed is the word-embedding substrate that stands in for BERT in
// this reproduction (see DESIGN.md §1). It provides:
//
//   - Hash: character n-gram hashing embeddings — surface-similar tokens
//     (typos, abbreviations, inflections) get similar vectors;
//   - Cooc: distributional embeddings trained on the dataset corpus via
//     windowed co-occurrence with PPMI weighting and a signed random
//     projection — tokens used in similar contexts (synonyms, periphrasis)
//     get similar vectors;
//   - Concat: concatenation of sources (the default WYM space combines
//     Hash and Cooc);
//   - Hebbian: a closed-form contrastive fine-tune of any base source,
//     standing in for SBERT/task fine-tuning;
//   - Contextualize: record-level mixing that gives the same token a
//     slightly different vector in different records, standing in for
//     BERT's contextualized hidden states (challenge R4);
//   - Cache: memoization wrapper.
//
// All sources are deterministic given their construction parameters.
package embed

import (
	"hash/fnv"
	"sync"

	"wym/internal/vec"
)

// Source provides static (context-free) token embeddings. Vector must be
// deterministic and must return a slice of length Dim; implementations
// return a zero vector for tokens they cannot embed.
type Source interface {
	Vector(token string) []float64
	Dim() int
}

// Hash embeds a token as the normalized signed sum of hashed character
// n-grams (with ^/$ boundary markers), in the spirit of fastText's subword
// vectors. Two tokens sharing many n-grams land close in cosine space.
type Hash struct {
	D          int // embedding dimension
	NMin, NMax int // n-gram length range, inclusive
}

// NewHash returns a Hash source with the repo defaults: 48 dimensions,
// 3..5-character n-grams.
func NewHash() *Hash { return &Hash{D: 48, NMin: 3, NMax: 5} }

// Dim implements Source.
func (h *Hash) Dim() int { return h.D }

// Vector implements Source. The empty token embeds to the zero vector.
func (h *Hash) Vector(token string) []float64 {
	out := make([]float64, h.D)
	if token == "" {
		return out
	}
	s := "^" + token + "$"
	for n := h.NMin; n <= h.NMax; n++ {
		if n > len(s) {
			break
		}
		for i := 0; i+n <= len(s); i++ {
			h.addNGram(out, s[i:i+n])
		}
	}
	// Very short tokens may have no n-gram of the minimum length; fall
	// back to the whole marked token so they still embed.
	if vec.Norm(out) == 0 {
		h.addNGram(out, s)
	}
	return vec.Normalize(out)
}

func (h *Hash) addNGram(out []float64, g string) {
	f := fnv.New64a()
	f.Write([]byte(g)) // hash.Write never fails
	v := f.Sum64()
	idx := int(v % uint64(h.D))
	sign := 1.0
	if (v>>32)&1 == 1 {
		sign = -1
	}
	out[idx] += sign
}

// Concat concatenates the vectors of several sources and re-normalizes.
// Each part is weighted equally after per-part normalization, so no single
// source dominates the cosine.
type Concat struct {
	Parts []Source
	dim   int
}

// NewConcat builds a Concat over the given parts.
func NewConcat(parts ...Source) *Concat {
	c := &Concat{Parts: parts}
	for _, p := range parts {
		c.dim += p.Dim()
	}
	return c
}

// Dim implements Source.
func (c *Concat) Dim() int { return c.dim }

// Vector implements Source.
func (c *Concat) Vector(token string) []float64 {
	out := make([]float64, 0, c.dim)
	for _, p := range c.Parts {
		part := vec.Clone(p.Vector(token))
		vec.Normalize(part)
		out = append(out, part...)
	}
	return vec.Normalize(out)
}

// Cache memoizes another source. It is safe for concurrent use.
type Cache struct {
	Base Source

	mu sync.RWMutex
	m  map[string][]float64
}

// NewCache wraps base with memoization.
func NewCache(base Source) *Cache {
	return &Cache{Base: base, m: make(map[string][]float64)}
}

// Dim implements Source.
func (c *Cache) Dim() int { return c.Base.Dim() }

// Vector implements Source. Returned slices are shared; callers must not
// mutate them.
func (c *Cache) Vector(token string) []float64 {
	c.mu.RLock()
	v, ok := c.m[token]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = c.Base.Vector(token)
	c.mu.Lock()
	c.m[token] = v
	c.mu.Unlock()
	return v
}

// Contextualize embeds each token of one record and mixes in the record's
// mean vector: v' = normalize((1-gamma)*v + gamma*mean). gamma = 0 yields
// the static embedding; the WYM default is a light mixing (0.15) that keeps
// token identity dominant while making vectors record-dependent, standing
// in for BERT's contextualized hidden states.
func Contextualize(src Source, tokens []string, gamma float64) [][]float64 {
	if len(tokens) == 0 {
		return nil
	}
	base := make([][]float64, len(tokens))
	for i, t := range tokens {
		base[i] = src.Vector(t)
	}
	if gamma == 0 {
		out := make([][]float64, len(base))
		for i := range base {
			out[i] = vec.Clone(base[i])
		}
		return out
	}
	mean := vec.MeanOf(base)
	out := make([][]float64, len(base))
	for i := range base {
		v := vec.Scaled(base[i], 1-gamma)
		vec.AXPY(v, gamma, mean)
		out[i] = vec.Normalize(v)
	}
	return out
}

// Zero returns a Source whose every vector is zero. The relevance scorer
// uses it to embed the [UNP] placeholder of unpaired units (challenge R5).
type Zero struct{ D int }

// Dim implements Source.
func (z Zero) Dim() int { return z.D }

// Vector implements Source.
func (z Zero) Vector(string) []float64 { return make([]float64, z.D) }
