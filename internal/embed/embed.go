// Package embed is the word-embedding substrate that stands in for BERT in
// this reproduction (see DESIGN.md §1). It provides:
//
//   - Hash: character n-gram hashing embeddings — surface-similar tokens
//     (typos, abbreviations, inflections) get similar vectors;
//   - Cooc: distributional embeddings trained on the dataset corpus via
//     windowed co-occurrence with PPMI weighting and a signed random
//     projection — tokens used in similar contexts (synonyms, periphrasis)
//     get similar vectors;
//   - Concat: concatenation of sources (the default WYM space combines
//     Hash and Cooc);
//   - Hebbian: a closed-form contrastive fine-tune of any base source,
//     standing in for SBERT/task fine-tuning;
//   - Contextualize: record-level mixing that gives the same token a
//     slightly different vector in different records, standing in for
//     BERT's contextualized hidden states (challenge R4);
//   - Cache: memoization wrapper.
//
// All sources are deterministic given their construction parameters.
package embed

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"wym/internal/vec"
)

// Source provides static (context-free) token embeddings. Vector must be
// deterministic and must return a slice of length Dim; implementations
// return a zero vector for tokens they cannot embed.
type Source interface {
	Vector(token string) []float64
	Dim() int
}

// NormalizedSource marks a Source whose Vector output is always either a
// unit-L2 vector or the all-zero vector. Downstream hot paths rely on this
// contract to replace cosine similarity with a raw dot product
// (vec.DotUnit): for unit vectors the two are equal, and a dot with the
// zero vector is 0 — exactly the zero-vector convention of vec.Cosine.
//
// Every source in this package satisfies the contract: Hash, Cooc, Concat
// and Hebbian normalize their non-zero outputs at construction, Zero emits
// only zero vectors, and Cache/wrappers inherit it from their base.
type NormalizedSource interface {
	Source
	// Normalized reports whether the contract holds. It exists so wrapper
	// sources can delegate the answer to their base at runtime.
	Normalized() bool
}

// IsNormalized reports whether src guarantees unit-or-zero vectors.
func IsNormalized(src Source) bool {
	ns, ok := src.(NormalizedSource)
	return ok && ns.Normalized()
}

// InlineSource is a Source that can write a token's embedding directly
// into a caller-provided buffer. Sources backed by flat storage (the
// arena) implement it so the contextualization hot path fills record
// rows without one allocation per token; map-backed sources skip it and
// keep their zero-copy shared-slice behavior.
type InlineSource interface {
	Source
	// VectorInto writes the token's embedding into dst, which must have
	// length Dim(). It overwrites dst entirely.
	VectorInto(token string, dst []float64)
}

// Hash embeds a token as the normalized signed sum of hashed character
// n-grams (with ^/$ boundary markers), in the spirit of fastText's subword
// vectors. Two tokens sharing many n-grams land close in cosine space.
type Hash struct {
	D          int // embedding dimension
	NMin, NMax int // n-gram length range, inclusive
}

// NewHash returns a Hash source with the repo defaults: 48 dimensions,
// 3..5-character n-grams.
func NewHash() *Hash { return &Hash{D: 48, NMin: 3, NMax: 5} }

// Dim implements Source.
func (h *Hash) Dim() int { return h.D }

// Normalized implements NormalizedSource: Vector output is unit-or-zero.
func (h *Hash) Normalized() bool { return true }

// Vector implements Source. The empty token embeds to the zero vector.
func (h *Hash) Vector(token string) []float64 {
	out := make([]float64, h.D)
	h.vectorInto(token, out)
	return out
}

// vectorInto writes the token's hash embedding into out (len h.D),
// overwriting it. The arena source uses it to compute out-of-vocabulary
// fallbacks without allocating.
func (h *Hash) vectorInto(token string, out []float64) {
	clear(out)
	if token == "" {
		return
	}
	s := "^" + token + "$"
	for n := h.NMin; n <= h.NMax; n++ {
		if n > len(s) {
			break
		}
		for i := 0; i+n <= len(s); i++ {
			h.addNGram(out, s[i:i+n])
		}
	}
	// Very short tokens may have no n-gram of the minimum length; fall
	// back to the whole marked token so they still embed.
	if vec.Norm(out) == 0 {
		h.addNGram(out, s)
	}
	vec.Normalize(out)
}

func (h *Hash) addNGram(out []float64, g string) {
	f := fnv.New64a()
	f.Write([]byte(g)) // hash.Write never fails
	v := f.Sum64()
	idx := int(v % uint64(h.D))
	sign := 1.0
	if (v>>32)&1 == 1 {
		sign = -1
	}
	out[idx] += sign
}

// Concat concatenates the vectors of several sources and re-normalizes.
// Each part is weighted equally after per-part normalization, so no single
// source dominates the cosine.
type Concat struct {
	Parts []Source
	dim   int
}

// NewConcat builds a Concat over the given parts.
func NewConcat(parts ...Source) *Concat {
	c := &Concat{Parts: parts}
	for _, p := range parts {
		c.dim += p.Dim()
	}
	return c
}

// Dim implements Source.
func (c *Concat) Dim() int { return c.dim }

// Normalized implements NormalizedSource: the concatenation is normalized
// before it is returned.
func (c *Concat) Normalized() bool { return true }

// Vector implements Source. Parts that satisfy the NormalizedSource
// contract are appended as-is — their vectors already have unit (or zero)
// norm, so the historical clone + re-normalize per part was redundant work.
// Only parts without the guarantee are normalized, on a copy, since a
// part's returned slice may be shared (e.g. a Cache entry).
func (c *Concat) Vector(token string) []float64 {
	out := make([]float64, 0, c.dim)
	for _, p := range c.Parts {
		part := p.Vector(token)
		if !IsNormalized(p) {
			part = vec.Normalize(vec.Clone(part))
		}
		out = append(out, part...)
	}
	return vec.Normalize(out)
}

// cacheShards is the number of independently locked cache segments. A
// power of two so the shard index is a mask of the token hash; 32 shards
// keep lock contention negligible for any realistic worker count.
const cacheShards = 32

// cacheShard is one locked segment of the overflow cache.
type cacheShard struct {
	mu sync.RWMutex
	m  map[string][]float64
}

// Cache memoizes another source. It is safe for concurrent use.
//
// The cache has two tiers. Lookups first hit a lock-free read-only map of
// the frozen vocabulary (populated by Freeze after training); tokens
// outside it fall through to a small sharded overflow keyed by token hash,
// so concurrent misses on distinct shards never serialize — the old
// single-RWMutex design made every ProcessAll worker queue on one lock.
type Cache struct {
	Base Source

	frozen map[string][]float64 // immutable after Freeze; nil before
	shards [cacheShards]cacheShard
}

// NewCache wraps base with memoization.
func NewCache(base Source) *Cache {
	c := &Cache{Base: base}
	for i := range c.shards {
		c.shards[i].m = make(map[string][]float64)
	}
	return c
}

// Dim implements Source.
func (c *Cache) Dim() int { return c.Base.Dim() }

// Normalized implements NormalizedSource by delegating to the base source.
func (c *Cache) Normalized() bool { return IsNormalized(c.Base) }

// Vector implements Source. Returned slices are shared; callers must not
// mutate them.
func (c *Cache) Vector(token string) []float64 {
	if v, ok := c.frozen[token]; ok {
		return v
	}
	sh := &c.shards[shardIndex(token)]
	sh.mu.RLock()
	v, ok := sh.m[token]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	v = c.Base.Vector(token)
	sh.mu.Lock()
	if prev, ok := sh.m[token]; ok {
		v = prev // another goroutine won the race; keep one shared slice
	} else {
		sh.m[token] = v
	}
	sh.mu.Unlock()
	return v
}

// Freeze converts everything cached so far into the lock-free read-only
// tier and empties the overflow shards. Call it once the known vocabulary
// has been fully embedded (core.Train does, after unit generation): from
// then on, lookups of known-corpus tokens touch no lock at all, and only
// genuinely unseen predict-time tokens pay for shard synchronization.
//
// Freeze is NOT safe to call concurrently with Vector; it belongs to the
// single-threaded end of a training run. Reads after Freeze are safe from
// any number of goroutines.
func (c *Cache) Freeze() {
	frozen := make(map[string][]float64, c.FrozenSize()+c.overflowSize())
	for t, v := range c.frozen {
		frozen[t] = v
	}
	for i := range c.shards {
		sh := &c.shards[i]
		for t, v := range sh.m {
			frozen[t] = v
		}
		sh.m = make(map[string][]float64)
	}
	c.frozen = frozen
}

// FrozenSize returns the number of tokens in the read-only tier.
func (c *Cache) FrozenSize() int { return len(c.frozen) }

// overflowSize returns the number of tokens in the sharded overflow tier.
func (c *Cache) overflowSize() int {
	var n int
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// shardIndex hashes a token to its overflow shard with inline FNV-1a.
func shardIndex(token string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(token); i++ {
		h ^= uint64(token[i])
		h *= prime64
	}
	return uint32(h) & (cacheShards - 1)
}

// Contextualize embeds each token of one record and mixes in the record's
// mean vector: v' = normalize((1-gamma)*v + gamma*mean). gamma = 0 yields
// the static embedding; the WYM default is a light mixing (0.15) that keeps
// token identity dominant while making vectors record-dependent, standing
// in for BERT's contextualized hidden states.
// Contextualize output vectors are backed by one flat allocation per
// record rather than one per token; because Contextualize normalizes its
// non-zero outputs (and copies unit-or-zero source vectors when gamma is
// 0 over a NormalizedSource), records embedded from the package's sources
// always satisfy the unit-or-zero contract of NormalizedSource.
func Contextualize(src Source, tokens []string, gamma float64) [][]float64 {
	if len(tokens) == 0 {
		return nil
	}
	return ContextualizeInto(src, tokens, gamma, make([]float64, len(tokens)*src.Dim()))
}

// meanPool recycles the record-mean accumulator of ContextualizeInto; it
// is transient per call.
var meanPool = sync.Pool{New: func() any { return new([]float64) }}

// ContextualizeInto is Contextualize writing into a caller-provided flat
// buffer of length len(tokens)*src.Dim(); the returned rows alias it.
// Callers that retain records must hand over a fresh buffer; transient
// consumers may pool and reuse buffers between calls.
func ContextualizeInto(src Source, tokens []string, gamma float64, flat []float64) [][]float64 {
	n := len(tokens)
	if n == 0 {
		return nil
	}
	d := src.Dim()
	if len(flat) != n*d {
		panic(fmt.Sprintf("embed: buffer len %d, want %d", len(flat), n*d))
	}
	out := make([][]float64, n)
	inline, isInline := src.(InlineSource)
	if gamma == 0 {
		if isInline {
			for i, t := range tokens {
				row := flat[i*d : (i+1)*d : (i+1)*d]
				inline.VectorInto(t, row)
				out[i] = row
			}
			return out
		}
		for i, t := range tokens {
			row := flat[i*d : (i+1)*d : (i+1)*d]
			copy(row, src.Vector(t))
			out[i] = row
		}
		return out
	}
	// Fused mixing: the mean rides the borrow loop (the vector is already
	// in cache from the lookup), then each mixed row is written together
	// with its squared norm and rescaled in one more pass — the same
	// scale/axpy/normalize arithmetic as the separate vec calls (two
	// statements per element below, so no FMA contraction), at a third of
	// the memory passes. The four squared-norm accumulators break the
	// serial float-add dependency chain of the normalization; their
	// summation order differs from vec.Norm by ulps, which every
	// downstream consumer of contextualized vectors tolerates.
	mp := meanPool.Get().(*[]float64)
	defer meanPool.Put(mp)
	if cap(*mp) < d {
		*mp = make([]float64, d)
	}
	mean := (*mp)[:d]
	clear(mean)
	if isInline {
		// Inline sources write each token straight into its output row;
		// the mixing pass below then reads and rewrites the row in place,
		// which is safe because every element is read before it is
		// written. Same arithmetic as the borrowed-slice path.
		for i, t := range tokens {
			row := flat[i*d : (i+1)*d : (i+1)*d]
			inline.VectorInto(t, row)
			out[i] = row
			m := mean[:len(row)]
			for j, x := range row {
				m[j] += x
			}
		}
	} else {
		for i, t := range tokens {
			v := src.Vector(t)
			out[i] = v
			m := mean[:len(v)] // equal lengths: elide the m[j] bounds checks
			for j, x := range v {
				m[j] += x
			}
		}
	}
	scale := 1 / float64(n)
	for j := range mean {
		mean[j] *= scale
	}
	g1 := 1 - gamma
	for i, v := range out {
		row := flat[i*d : (i+1)*d : (i+1)*d]
		m, r := mean[:len(v)], row[:len(v)]
		var s0, s1, s2, s3 float64
		for len(v) >= 4 && len(m) >= 4 && len(r) >= 4 {
			y0 := v[0] * g1
			y0 += gamma * m[0]
			r[0] = y0
			s0 += y0 * y0
			y1 := v[1] * g1
			y1 += gamma * m[1]
			r[1] = y1
			s1 += y1 * y1
			y2 := v[2] * g1
			y2 += gamma * m[2]
			r[2] = y2
			s2 += y2 * y2
			y3 := v[3] * g1
			y3 += gamma * m[3]
			r[3] = y3
			s3 += y3 * y3
			v, m, r = v[4:], m[4:], r[4:]
		}
		for j, x := range v {
			y := x * g1
			y += gamma * m[j]
			r[j] = y
			s0 += y * y
		}
		if norm := math.Sqrt((s0 + s1) + (s2 + s3)); norm != 0 {
			inv := 1 / norm
			for j := range row {
				row[j] *= inv
			}
		}
		out[i] = row
	}
	return out
}

// Zero returns a Source whose every vector is zero. The relevance scorer
// uses it to embed the [UNP] placeholder of unpaired units (challenge R5).
type Zero struct{ D int }

// Dim implements Source.
func (z Zero) Dim() int { return z.D }

// Vector implements Source.
func (z Zero) Vector(string) []float64 { return make([]float64, z.D) }

// Normalized implements NormalizedSource: the zero vector is explicitly
// allowed by the unit-or-zero contract.
func (z Zero) Normalized() bool { return true }
