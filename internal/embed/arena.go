package embed

import (
	"fmt"
	"math"
	"sort"

	"wym/internal/arena"
	"wym/internal/vec"
)

// Arena is a Source backed by an opened .wyma arena (DESIGN §10): the
// zero-copy serving representation of a trained embedding stack. Vocab
// lookups binary-search the file's sorted key index and decode straight
// out of the contiguous float32 (or int8) vector arena; out-of-vocabulary
// tokens are recomputed exactly the way the original stack embeds them —
// hash n-grams, concat-normalize, optional fine-tune matrix — and then
// memoized in a sharded cache.
//
// The compile step (CompileArena) only stores the co-occurrence
// vocabulary: every other token has a zero distributional part, so its
// embedding is fully determined by the hash configuration and fine-tune
// matrix the arena carries, and the OOV path reproduces the gob stack's
// float64 arithmetic bit for bit. In-vocabulary vectors round through
// float32 (or int8); the golden equivalence suite in internal/core pins
// that error.
//
// Arena satisfies NormalizedSource (unit-or-zero output) and
// InlineSource (allocation-free row fills), and is safe for concurrent
// use.
type Arena struct {
	f    *arena.File
	hash Hash

	// oov memoizes computed out-of-vocabulary embeddings; same sharding
	// scheme as Cache's overflow tier.
	oov [cacheShards]cacheShard
}

// NewArena wraps an opened arena file as an embedding source.
func NewArena(f *arena.File) (*Arena, error) {
	if f.HashDim <= 0 || f.HashDim > f.Dim {
		return nil, fmt.Errorf("embed: arena %s: hash dim %d incompatible with dim %d", f.Path, f.HashDim, f.Dim)
	}
	a := &Arena{f: f, hash: Hash{D: f.HashDim, NMin: f.NMin, NMax: f.NMax}}
	for i := range a.oov {
		a.oov[i].m = make(map[string][]float64)
	}
	return a, nil
}

// File returns the backing arena file.
func (a *Arena) File() *arena.File { return a.f }

// Dim implements Source.
func (a *Arena) Dim() int { return a.f.Dim }

// Normalized implements NormalizedSource: stored vectors were unit at
// compile time (int8 ones are re-normalized after dequantization) and the
// OOV path normalizes like the original stack.
func (a *Arena) Normalized() bool { return true }

// VocabSize returns the number of vectors stored in the arena.
func (a *Arena) VocabSize() int { return a.f.VocabN }

// Quantized reports whether the arena stores int8-quantized vectors.
func (a *Arena) Quantized() bool { return a.f.Int8() }

// Vector implements Source.
func (a *Arena) Vector(token string) []float64 {
	out := make([]float64, a.f.Dim)
	a.VectorInto(token, out)
	return out
}

// VectorInto implements InlineSource: the serving hot path, free of
// per-token allocation for in-vocabulary and cached-OOV tokens.
func (a *Arena) VectorInto(token string, dst []float64) {
	d := a.f.Dim
	if len(dst) != d {
		panic(fmt.Sprintf("embed: buffer len %d, want %d", len(dst), d))
	}
	if i := a.f.Lookup(token); i >= 0 {
		if a.f.Int8() {
			vec.Dequant8(dst, a.f.VecI8[i*d:(i+1)*d], float64(a.f.Scales[i]))
			vec.Normalize(dst)
		} else {
			vec.Widen(dst, a.f.VecF32[i*d:(i+1)*d])
		}
		return
	}
	sh := &a.oov[shardIndex(token)]
	sh.mu.RLock()
	v, ok := sh.m[token]
	sh.mu.RUnlock()
	if !ok {
		v = a.computeOOV(token)
		sh.mu.Lock()
		if prev, ok := sh.m[token]; ok {
			v = prev
		} else {
			sh.m[token] = v
		}
		sh.mu.Unlock()
	}
	copy(dst, v)
}

// computeOOV reproduces the original stack's embedding of a token with a
// zero distributional part: hash-embed, concat-normalize, then apply the
// fine-tune matrix when present. Each step runs the same float64
// operations in the same order as the gob-loaded stack, so the result is
// bit-identical to it.
func (a *Arena) computeOOV(token string) []float64 {
	d := a.f.Dim
	v := make([]float64, d)
	if token == "" {
		return v
	}
	a.hash.vectorInto(token, v[:a.f.HashDim])
	// Concat-level normalization over the full vector (the zero
	// distributional tail contributes exact zeros to the norm).
	vec.Normalize(v)
	if a.f.Matrix == nil || vec.Norm(v) == 0 {
		return v
	}
	// Fine-tune map: only the first HashDim columns can contribute, the
	// rest multiply exact zeros — same accumulation order as the full
	// matrix-vector product.
	mv := make([]float64, d)
	hd := a.f.HashDim
	for i := 0; i < d; i++ {
		row := a.f.Matrix[i*d : i*d+hd]
		mv[i] = vec.Dot(row, v[:hd])
	}
	return vec.Normalize(mv)
}

// CompileOptions configures CompileArena.
type CompileOptions struct {
	// Int8 selects the quantized arena variant: each vector stored as
	// int8 with one float32 scale (max|v|/127), trading ~0.4% vector
	// error for 4x smaller vector storage.
	Int8 bool
}

// CompileArena flattens a trained embedding stack into the writer-side
// arena parts: the sorted co-occurrence vocabulary with its vectors
// converted to float32 (or int8 + scales), the hash configuration, and
// the fine-tune matrix when present. Supported stacks are the shapes
// core builds — Cache(Concat(Hash, Cooc)) with an optional Hebbian layer
// between — plus an already-arena-backed source (re-quantization).
func CompileArena(src Source, opts CompileOptions) (*arena.Build, error) {
	if a, ok := src.(*Arena); ok {
		return recompileArena(a, opts)
	}
	root := src
	if c, ok := root.(*Cache); ok {
		root = c.Base
	}
	var matrix []float64
	if h, ok := root.(*Hebbian); ok {
		if h.m.Rows != h.Dim() || h.m.Cols != h.Dim() {
			return nil, fmt.Errorf("embed: fine-tune matrix is %dx%d, dim %d", h.m.Rows, h.m.Cols, h.Dim())
		}
		matrix = append([]float64(nil), h.m.Data...)
		root = h.Base
	}
	concat, ok := root.(*Concat)
	if !ok || len(concat.Parts) != 2 {
		return nil, fmt.Errorf("embed: cannot compile source stack %T into an arena", root)
	}
	hash, ok := concat.Parts[0].(*Hash)
	if !ok {
		return nil, fmt.Errorf("embed: cannot compile: first concat part is %T, want *Hash", concat.Parts[0])
	}
	cooc, ok := concat.Parts[1].(*Cooc)
	if !ok {
		return nil, fmt.Errorf("embed: cannot compile: second concat part is %T, want *Cooc", concat.Parts[1])
	}

	keys := make([]string, 0, len(cooc.vectors))
	for t := range cooc.vectors {
		keys = append(keys, t)
	}
	sort.Strings(keys)

	b := &arena.Build{
		Dim: src.Dim(), HashDim: hash.D, NMin: hash.NMin, NMax: hash.NMax,
		Keys: keys, Matrix: matrix,
	}
	// Embed every vocabulary token through the full original stack — the
	// exact float64 pipeline — then narrow.
	fill := newQuantizer(b, opts, len(keys))
	for i, t := range keys {
		fill(i, src.Vector(t))
	}
	return b, nil
}

// recompileArena rebuilds arena parts from an already-opened arena —
// used to derive an int8 artifact from a float32 one (or vice versa).
func recompileArena(a *Arena, opts CompileOptions) (*arena.Build, error) {
	f := a.f
	keys := make([]string, f.VocabN)
	for i := range keys {
		// Key views alias the mapping; clone so the build outlives it.
		keys[i] = string([]byte(f.Key(i)))
	}
	var matrix []float64
	if f.Matrix != nil {
		matrix = append([]float64(nil), f.Matrix...)
	}
	b := &arena.Build{
		Dim: f.Dim, HashDim: f.HashDim, NMin: f.NMin, NMax: f.NMax,
		Keys: keys, Matrix: matrix,
	}
	fill := newQuantizer(b, opts, len(keys))
	row := make([]float64, f.Dim)
	for i, t := range keys {
		a.VectorInto(t, row)
		fill(i, row)
	}
	return b, nil
}

// newQuantizer allocates the build's vector storage and returns the
// per-vector fill function for the selected precision.
func newQuantizer(b *arena.Build, opts CompileOptions, n int) func(i int, v []float64) {
	if !opts.Int8 {
		b.VecF32 = make([]float32, n*b.Dim)
		return func(i int, v []float64) {
			row := b.VecF32[i*b.Dim : (i+1)*b.Dim]
			for j, x := range v {
				row[j] = float32(x)
			}
		}
	}
	b.VecI8 = make([]int8, n*b.Dim)
	b.Scales = make([]float32, n)
	return func(i int, v []float64) {
		var maxAbs float64
		for _, x := range v {
			if ax := math.Abs(x); ax > maxAbs {
				maxAbs = ax
			}
		}
		if maxAbs == 0 {
			return // zero vector: q stays 0, scale stays 0
		}
		scale := maxAbs / 127
		b.Scales[i] = float32(scale)
		row := b.VecI8[i*b.Dim : (i+1)*b.Dim]
		inv := 1 / scale
		for j, x := range v {
			q := math.RoundToEven(x * inv)
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			row[j] = int8(q)
		}
	}
}
