package embed

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"wym/internal/vec"
)

// Cooc holds distributional token embeddings trained from a corpus of
// token sequences (one sequence per entity description). Tokens that occur
// in similar contexts — synonyms, abbreviations of the same product line,
// periphrasis — receive similar vectors. It is the stand-in for the
// "pre-trained language model" half of BERT: the semantics it captures are
// those of the benchmark corpus itself.
//
// Training computes windowed co-occurrence counts, reweights them with
// positive pointwise mutual information (PPMI), and compresses each
// token's PPMI context row through a shared signed random projection.
type Cooc struct {
	d       int
	vectors map[string][]float64
}

// CoocConfig parametrizes TrainCooc. The zero value is not usable; start
// from DefaultCoocConfig.
type CoocConfig struct {
	Dim    int   // output dimensionality
	Window int   // symmetric context window size
	MinCnt int   // discard tokens rarer than this
	Seed   int64 // random projection seed
}

// DefaultCoocConfig returns the repo defaults: 48 dimensions, window 4,
// minimum count 2.
func DefaultCoocConfig() CoocConfig {
	return CoocConfig{Dim: 48, Window: 4, MinCnt: 2, Seed: 1}
}

// TrainCooc builds distributional embeddings from a corpus. Each corpus
// element is the token sequence of one entity description; the window
// never crosses sequence boundaries.
func TrainCooc(corpus [][]string, cfg CoocConfig) *Cooc {
	c, _ := TrainCoocCtx(context.Background(), corpus, cfg)
	return c
}

// coocCancelStride is how many corpus sequences (or vocabulary rows) are
// processed between cancellation checks; small enough that a SIGINT lands
// within milliseconds, large enough that the check never shows in profiles.
const coocCancelStride = 512

// TrainCoocCtx is TrainCooc honoring a context: the counting and
// projection loops poll for cancellation every coocCancelStride items and
// return ctx.Err() with a nil source when interrupted.
func TrainCoocCtx(ctx context.Context, corpus [][]string, cfg CoocConfig) (*Cooc, error) {
	if cfg.Dim <= 0 || cfg.Window <= 0 {
		cfg = DefaultCoocConfig()
	}
	// Vocabulary with frequency filter. Iteration order must be stable for
	// determinism, so sort the kept tokens.
	freq := make(map[string]int)
	for _, seq := range corpus {
		for _, t := range seq {
			freq[t]++
		}
	}
	var vocabList []string
	for t, c := range freq {
		if c >= cfg.MinCnt {
			vocabList = append(vocabList, t)
		}
	}
	sort.Strings(vocabList)
	vocab := make(map[string]int, len(vocabList))
	for i, t := range vocabList {
		vocab[t] = i
	}

	c := &Cooc{d: cfg.Dim, vectors: make(map[string][]float64, len(vocab))}
	if len(vocab) == 0 {
		return c, nil
	}

	// Windowed co-occurrence counts, stored sparsely per target token.
	co := make([]map[int]float64, len(vocab))
	for i := range co {
		co[i] = make(map[int]float64)
	}
	ctxTotal := make([]float64, len(vocab))
	var grandTotal float64
	for seqNo, seq := range corpus {
		if seqNo%coocCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ids := make([]int, 0, len(seq))
		for _, t := range seq {
			if id, ok := vocab[t]; ok {
				ids = append(ids, id)
			}
		}
		for i, a := range ids {
			lo := i - cfg.Window
			if lo < 0 {
				lo = 0
			}
			hi := i + cfg.Window
			if hi >= len(ids) {
				hi = len(ids) - 1
			}
			for j := lo; j <= hi; j++ {
				if j == i {
					continue
				}
				b := ids[j]
				co[a][b]++
				ctxTotal[b]++
				grandTotal++
			}
		}
	}
	if grandTotal == 0 {
		return c, nil
	}

	// Shared signed random projection: context id -> dim-sized ±1 row.
	rng := rand.New(rand.NewSource(cfg.Seed))
	proj := make([][]float64, len(vocab))
	for i := range proj {
		row := make([]float64, cfg.Dim)
		for j := range row {
			if rng.Int63()&1 == 0 {
				row[j] = 1
			} else {
				row[j] = -1
			}
		}
		proj[i] = row
	}

	// PPMI( target, context ) = max(0, log( p(t,c) / (p(t) p(c)) )).
	tgtTotal := make([]float64, len(vocab))
	for a := range co {
		for _, cnt := range co[a] {
			tgtTotal[a] += cnt
		}
	}
	for a := range co {
		if a%coocCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v := make([]float64, cfg.Dim)
		// Iterate contexts in sorted order: float accumulation is not
		// associative, so map order would make training nondeterministic.
		ctxIDs := make([]int, 0, len(co[a]))
		for b := range co[a] {
			ctxIDs = append(ctxIDs, b)
		}
		sort.Ints(ctxIDs)
		for _, b := range ctxIDs {
			cnt := co[a][b]
			pmi := math.Log((cnt * grandTotal) / (tgtTotal[a] * ctxTotal[b]))
			if pmi <= 0 {
				continue
			}
			vec.AXPY(v, pmi, proj[b])
		}
		c.vectors[vocabList[a]] = vec.Normalize(v)
	}
	return c, nil
}

// Dim implements Source.
func (c *Cooc) Dim() int { return c.d }

// Normalized implements NormalizedSource: trained vectors are normalized
// at construction and OOV tokens embed to zero.
func (c *Cooc) Normalized() bool { return true }

// Vector implements Source. Out-of-vocabulary tokens get the zero vector;
// combine Cooc with Hash (via Concat) so such tokens still embed.
func (c *Cooc) Vector(token string) []float64 {
	if v, ok := c.vectors[token]; ok {
		return vec.Clone(v)
	}
	return make([]float64, c.d)
}

// VocabSize returns the number of embedded tokens.
func (c *Cooc) VocabSize() int { return len(c.vectors) }
