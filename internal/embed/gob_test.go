package embed

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func sourceRoundTrip(t *testing.T, s Source) Source {
	t.Helper()
	var buf bytes.Buffer
	holder := struct{ S Source }{S: s}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		t.Fatal(err)
	}
	var out struct{ S Source }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.S
}

func TestGobRoundTripSources(t *testing.T) {
	cooc := TrainCooc(testCorpus(), DefaultCoocConfig())
	base := NewConcat(NewHash(), cooc)
	ft := FineTune(base, []PairSample{{"laptop", "notebook"}}, []PairSample{{"sony", "warranty"}},
		DefaultFineTuneConfig())
	sources := map[string]Source{
		"hash":    NewHash(),
		"cooc":    cooc,
		"concat":  base,
		"hebbian": ft,
		"cache":   NewCache(base),
		"zero":    Zero{D: 8},
	}
	for name, src := range sources {
		src := src
		t.Run(name, func(t *testing.T) {
			restored := sourceRoundTrip(t, src)
			if restored.Dim() != src.Dim() {
				t.Fatalf("dim = %d, want %d", restored.Dim(), src.Dim())
			}
			for _, tok := range []string{"laptop", "warranty", "unseen-token", ""} {
				if !reflect.DeepEqual(restored.Vector(tok), src.Vector(tok)) {
					t.Fatalf("vector for %q diverged", tok)
				}
			}
		})
	}
}

func TestGobCacheDropsMemo(t *testing.T) {
	c := NewCache(NewHash())
	c.Vector("warm") // populate the overflow tier
	c.Freeze()       // move it to the frozen tier
	c.Vector("late") // and populate the overflow tier again
	restored := sourceRoundTrip(t, c).(*Cache)
	if n := restored.FrozenSize() + restored.overflowSize(); n != 0 {
		t.Fatalf("cache memo survived serialization: %d entries", n)
	}
	// The restored cache must still memoize.
	v1 := restored.Vector("warm")
	v2 := restored.Vector("warm")
	if &v1[0] != &v2[0] {
		t.Fatal("restored cache does not memoize")
	}
}
