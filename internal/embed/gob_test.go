package embed

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func sourceRoundTrip(t *testing.T, s Source) Source {
	t.Helper()
	var buf bytes.Buffer
	holder := struct{ S Source }{S: s}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		t.Fatal(err)
	}
	var out struct{ S Source }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.S
}

func TestGobRoundTripSources(t *testing.T) {
	cooc := TrainCooc(testCorpus(), DefaultCoocConfig())
	base := NewConcat(NewHash(), cooc)
	ft := FineTune(base, []PairSample{{"laptop", "notebook"}}, []PairSample{{"sony", "warranty"}},
		DefaultFineTuneConfig())
	sources := map[string]Source{
		"hash":    NewHash(),
		"cooc":    cooc,
		"concat":  base,
		"hebbian": ft,
		"cache":   NewCache(base),
		"zero":    Zero{D: 8},
	}
	for name, src := range sources {
		src := src
		t.Run(name, func(t *testing.T) {
			restored := sourceRoundTrip(t, src)
			if restored.Dim() != src.Dim() {
				t.Fatalf("dim = %d, want %d", restored.Dim(), src.Dim())
			}
			for _, tok := range []string{"laptop", "warranty", "unseen-token", ""} {
				if !reflect.DeepEqual(restored.Vector(tok), src.Vector(tok)) {
					t.Fatalf("vector for %q diverged", tok)
				}
			}
		})
	}
}

func TestGobCacheDropsMemo(t *testing.T) {
	c := NewCache(NewHash())
	c.Vector("warm") // populate the memo
	restored := sourceRoundTrip(t, c).(*Cache)
	restored.mu.RLock()
	n := len(restored.m)
	restored.mu.RUnlock()
	if n != 0 {
		t.Fatalf("cache memo survived serialization: %d entries", n)
	}
}
