package embed

import (
	"bytes"
	"encoding/gob"

	"wym/internal/vec"
)

// Gob support so fitted systems can be persisted (core.System.Save/Load).
// Hash and Zero serialize through their exported fields; the types below
// round-trip unexported state through snapshot structs.

func init() {
	gob.Register(&Hash{})
	gob.Register(&Cooc{})
	gob.Register(&Concat{})
	gob.Register(&Cache{})
	gob.Register(&Hebbian{})
	gob.Register(Zero{})
}

func encodeSnap(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeSnap(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

type coocSnapshot struct {
	D       int
	Vectors map[string][]float64
}

// GobEncode implements gob.GobEncoder.
func (c *Cooc) GobEncode() ([]byte, error) {
	return encodeSnap(coocSnapshot{D: c.d, Vectors: c.vectors})
}

// GobDecode implements gob.GobDecoder.
func (c *Cooc) GobDecode(data []byte) error {
	var s coocSnapshot
	if err := decodeSnap(data, &s); err != nil {
		return err
	}
	c.d, c.vectors = s.D, s.Vectors
	if c.vectors == nil {
		c.vectors = map[string][]float64{}
	}
	return nil
}

type concatSnapshot struct {
	Parts []Source
	Dim   int
}

// GobEncode implements gob.GobEncoder.
func (c *Concat) GobEncode() ([]byte, error) {
	return encodeSnap(concatSnapshot{Parts: c.Parts, Dim: c.dim})
}

// GobDecode implements gob.GobDecoder.
func (c *Concat) GobDecode(data []byte) error {
	var s concatSnapshot
	if err := decodeSnap(data, &s); err != nil {
		return err
	}
	c.Parts, c.dim = s.Parts, s.Dim
	return nil
}

// GobEncode implements gob.GobEncoder. The memoized vectors — frozen tier
// and overflow shards alike — are dropped: they are a pure cache and
// rebuild on demand.
func (c *Cache) GobEncode() ([]byte, error) {
	return encodeSnap(struct{ Base Source }{Base: c.Base})
}

// GobDecode implements gob.GobDecoder.
func (c *Cache) GobDecode(data []byte) error {
	var s struct{ Base Source }
	if err := decodeSnap(data, &s); err != nil {
		return err
	}
	c.Base = s.Base
	c.frozen = nil
	for i := range c.shards {
		c.shards[i].m = make(map[string][]float64)
	}
	return nil
}

// hebbianSnapshot carries the fine-tune pairs alongside the compiled map
// so decoded models stay incrementally updatable (Apply). Gob tolerates
// absent fields, so artifacts written before pair retention decode with
// HasPairs=false — they serve normally but Apply refuses them.
type hebbianSnapshot struct {
	Base         Source
	M            *vec.Matrix
	Cfg          FineTuneConfig
	Pos, Neg     []PairSample
	FbPos, FbNeg []PairSample
	HasPairs     bool
}

// GobEncode implements gob.GobEncoder.
func (h *Hebbian) GobEncode() ([]byte, error) {
	return encodeSnap(hebbianSnapshot{
		Base: h.Base, M: h.m, Cfg: h.cfg,
		Pos: h.pos, Neg: h.neg,
		FbPos: h.fbPos, FbNeg: h.fbNeg,
		HasPairs: h.hasPairs,
	})
}

// GobDecode implements gob.GobDecoder.
func (h *Hebbian) GobDecode(data []byte) error {
	var s hebbianSnapshot
	if err := decodeSnap(data, &s); err != nil {
		return err
	}
	h.Base, h.m, h.cfg = s.Base, s.M, s.Cfg
	h.pos, h.neg = s.Pos, s.Neg
	h.fbPos, h.fbNeg = s.FbPos, s.FbNeg
	h.hasPairs = s.HasPairs
	return nil
}
