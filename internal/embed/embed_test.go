package embed

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"wym/internal/vec"
)

func TestHashDeterministicAndNormalized(t *testing.T) {
	h := NewHash()
	a := h.Vector("camera")
	b := h.Vector("camera")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Hash.Vector is not deterministic")
	}
	if math.Abs(vec.Norm(a)-1) > 1e-9 {
		t.Fatalf("norm = %v, want 1", vec.Norm(a))
	}
	if len(a) != h.Dim() {
		t.Fatalf("dim = %d, want %d", len(a), h.Dim())
	}
}

func TestHashEmptyToken(t *testing.T) {
	h := NewHash()
	if vec.Norm(h.Vector("")) != 0 {
		t.Fatal("empty token should embed to zero")
	}
}

func TestHashShortToken(t *testing.T) {
	h := NewHash()
	// One-character tokens have no 3-gram beyond "^a$"; they must still
	// embed to something non-zero.
	if vec.Norm(h.Vector("a")) == 0 {
		t.Fatal("short token embedded to zero")
	}
}

func TestHashSurfaceSimilarity(t *testing.T) {
	h := NewHash()
	similar := vec.Cosine(h.Vector("camera"), h.Vector("cameras"))
	dissimilar := vec.Cosine(h.Vector("camera"), h.Vector("printer"))
	if similar <= dissimilar {
		t.Fatalf("surface similarity broken: sim(camera,cameras)=%v <= sim(camera,printer)=%v",
			similar, dissimilar)
	}
	if similar < 0.5 {
		t.Fatalf("inflected form similarity too low: %v", similar)
	}
}

func TestHashPropertyBounds(t *testing.T) {
	h := NewHash()
	f := func(tok string) bool {
		v := h.Vector(tok)
		if len(v) != h.Dim() {
			return false
		}
		n := vec.Norm(v)
		return n == 0 || math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testCorpus() [][]string {
	// "laptop" and "notebook" appear in interchangeable contexts, as do
	// "tv" and "television"; "warranty" appears in unrelated contexts.
	var corpus [][]string
	for i := 0; i < 30; i++ {
		corpus = append(corpus,
			[]string{"acer", "laptop", "15", "inch", "intel", "fast"},
			[]string{"acer", "notebook", "15", "inch", "intel", "fast"},
			[]string{"samsung", "tv", "55", "inch", "oled", "screen"},
			[]string{"samsung", "television", "55", "inch", "oled", "screen"},
			[]string{"extended", "warranty", "two", "years", "support"},
		)
	}
	return corpus
}

func TestCoocSynonymsClose(t *testing.T) {
	c := TrainCooc(testCorpus(), DefaultCoocConfig())
	syn := vec.Cosine(c.Vector("laptop"), c.Vector("notebook"))
	unrel := vec.Cosine(c.Vector("laptop"), c.Vector("warranty"))
	if syn <= unrel {
		t.Fatalf("distributional similarity broken: syn=%v unrel=%v", syn, unrel)
	}
	if syn < 0.5 {
		t.Fatalf("synonym similarity too low: %v", syn)
	}
}

func TestCoocOOVIsZero(t *testing.T) {
	c := TrainCooc(testCorpus(), DefaultCoocConfig())
	if vec.Norm(c.Vector("nonexistent")) != 0 {
		t.Fatal("OOV token should embed to zero")
	}
}

func TestCoocDeterministic(t *testing.T) {
	a := TrainCooc(testCorpus(), DefaultCoocConfig())
	b := TrainCooc(testCorpus(), DefaultCoocConfig())
	if !reflect.DeepEqual(a.Vector("laptop"), b.Vector("laptop")) {
		t.Fatal("TrainCooc is not deterministic")
	}
}

func TestCoocMinCount(t *testing.T) {
	cfg := DefaultCoocConfig()
	cfg.MinCnt = 100
	c := TrainCooc(testCorpus(), cfg)
	if c.VocabSize() != 0 {
		t.Fatalf("min count filter kept %d tokens", c.VocabSize())
	}
}

func TestCoocEmptyCorpus(t *testing.T) {
	c := TrainCooc(nil, DefaultCoocConfig())
	if c.VocabSize() != 0 || vec.Norm(c.Vector("x")) != 0 {
		t.Fatal("empty corpus should produce an empty model")
	}
}

func TestConcat(t *testing.T) {
	h := NewHash()
	c := TrainCooc(testCorpus(), DefaultCoocConfig())
	cc := NewConcat(h, c)
	if cc.Dim() != h.Dim()+c.Dim() {
		t.Fatalf("dim = %d", cc.Dim())
	}
	v := cc.Vector("laptop")
	if len(v) != cc.Dim() {
		t.Fatalf("len = %d", len(v))
	}
	if math.Abs(vec.Norm(v)-1) > 1e-9 {
		t.Fatalf("norm = %v", vec.Norm(v))
	}
	// OOV for cooc still embeds through the hash part.
	if vec.Norm(cc.Vector("zzzunseen")) == 0 {
		t.Fatal("concat should embed OOV tokens via the hash part")
	}
}

func TestCacheReturnsSameValues(t *testing.T) {
	h := NewHash()
	c := NewCache(h)
	if !reflect.DeepEqual(c.Vector("x100"), h.Vector("x100")) {
		t.Fatal("cache changed the embedding")
	}
	// Second read hits the cache and must be identical.
	v1 := c.Vector("x100")
	v2 := c.Vector("x100")
	if &v1[0] != &v2[0] {
		t.Fatal("cache should return the memoized slice")
	}
	if c.Dim() != h.Dim() {
		t.Fatal("cache dim mismatch")
	}
}

func TestCacheFreeze(t *testing.T) {
	h := NewHash()
	c := NewCache(h)
	warm := c.Vector("camera")
	c.Freeze()
	if c.FrozenSize() != 1 {
		t.Fatalf("frozen size = %d, want 1", c.FrozenSize())
	}
	// Frozen lookups return the very slice cached before the freeze.
	v := c.Vector("camera")
	if &v[0] != &warm[0] {
		t.Fatal("freeze must keep the memoized slice")
	}
	// Unknown tokens fall through to the overflow tier and still memoize.
	o1 := c.Vector("overflow-token")
	o2 := c.Vector("overflow-token")
	if &o1[0] != &o2[0] {
		t.Fatal("overflow tier does not memoize")
	}
	if c.FrozenSize() != 1 {
		t.Fatal("overflow tokens must not mutate the frozen tier")
	}
	// A second freeze folds the overflow into the frozen tier.
	c.Freeze()
	if c.FrozenSize() != 2 {
		t.Fatalf("frozen size after refreeze = %d, want 2", c.FrozenSize())
	}
	if !reflect.DeepEqual(c.Vector("overflow-token"), h.Vector("overflow-token")) {
		t.Fatal("refrozen vector diverged from the base source")
	}
}

func TestCacheConcurrentMixedTiers(t *testing.T) {
	c := NewCache(NewHash())
	c.Vector("frozen-a")
	c.Vector("frozen-b")
	c.Freeze()
	tokens := []string{"frozen-a", "frozen-b", "x1", "x2", "x3", "x4", "x5",
		"y1", "y2", "y3", "y4", "y5"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tok := tokens[(w+i)%len(tokens)]
				if len(c.Vector(tok)) != c.Dim() {
					t.Errorf("bad vector for %q", tok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every goroutine must have observed one shared slice per token.
	for _, tok := range tokens {
		a, b := c.Vector(tok), c.Vector(tok)
		if &a[0] != &b[0] {
			t.Fatalf("token %q not memoized to a single slice", tok)
		}
	}
}

func TestNormalizedSourceContract(t *testing.T) {
	cooc := TrainCooc(testCorpus(), DefaultCoocConfig())
	base := NewConcat(NewHash(), cooc)
	sources := map[string]Source{
		"hash":    NewHash(),
		"cooc":    cooc,
		"concat":  base,
		"hebbian": FineTune(base, []PairSample{{"laptop", "notebook"}}, nil, DefaultFineTuneConfig()),
		"cache":   NewCache(base),
		"zero":    Zero{D: 8},
	}
	for name, src := range sources {
		if !IsNormalized(src) {
			t.Fatalf("%s must satisfy the NormalizedSource contract", name)
		}
		for _, tok := range []string{"laptop", "warranty", "zzz-unseen", ""} {
			n := vec.Norm(src.Vector(tok))
			if n != 0 && math.Abs(n-1) > 1e-9 {
				t.Fatalf("%s vector for %q has norm %v, want unit or zero", name, tok, n)
			}
		}
	}
	// A source without the marker must not be reported as normalized.
	if IsNormalized(unnormalizedSource{}) {
		t.Fatal("IsNormalized must be false for plain Sources")
	}
}

// unnormalizedSource is a plain Source without the contract marker.
type unnormalizedSource struct{}

func (unnormalizedSource) Vector(string) []float64 { return []float64{2, 0} }
func (unnormalizedSource) Dim() int                { return 2 }

func TestConcatNormalizesUnmarkedParts(t *testing.T) {
	// A part that returns non-unit vectors and lacks the marker must still
	// be normalized (on a copy) before concatenation.
	c := NewConcat(unnormalizedSource{}, NewHash())
	v := c.Vector("camera")
	if math.Abs(vec.Norm(v)-1) > 1e-9 {
		t.Fatalf("norm = %v, want 1", vec.Norm(v))
	}
	// The unnormalized part occupies the first 2 dims; after per-part
	// normalization both parts contribute equally, so the first component
	// is 1/sqrt(2).
	if math.Abs(v[0]-1/math.Sqrt2) > 1e-9 {
		t.Fatalf("unmarked part not normalized before concat: v[0] = %v", v[0])
	}
}

func TestContextualizeInto(t *testing.T) {
	h := NewHash()
	tokens := []string{"digital", "camera"}
	want := Contextualize(h, tokens, 0.15)
	flat := make([]float64, len(tokens)*h.Dim())
	got := ContextualizeInto(h, tokens, 0.15, flat)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ContextualizeInto diverged from Contextualize")
	}
	// Rows must alias the caller's buffer.
	if &got[0][0] != &flat[0] {
		t.Fatal("rows do not alias the provided buffer")
	}
	// Wrong buffer size is a programmer error.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong buffer length")
		}
	}()
	ContextualizeInto(h, tokens, 0.15, make([]float64, 1))
}

func TestContextualizeOutputNormalized(t *testing.T) {
	h := NewHash()
	for _, gamma := range []float64{0, 0.15, 0.5} {
		out := Contextualize(h, []string{"digital", "camera", ""}, gamma)
		for i, v := range out {
			n := vec.Norm(v)
			if n != 0 && math.Abs(n-1) > 1e-9 {
				t.Fatalf("gamma=%v token %d: norm %v, want unit or zero", gamma, i, n)
			}
		}
	}
}

func TestContextualize(t *testing.T) {
	h := NewHash()
	tokens := []string{"digital", "camera", "sony"}
	static := Contextualize(h, tokens, 0)
	for i, tok := range tokens {
		if !reflect.DeepEqual(static[i], h.Vector(tok)) {
			t.Fatalf("gamma=0 must reproduce static embeddings (token %q)", tok)
		}
	}
	ctx := Contextualize(h, tokens, 0.15)
	if len(ctx) != 3 {
		t.Fatalf("len = %d", len(ctx))
	}
	// Context mixing must change the vector but keep it close to the
	// static one (token identity dominates).
	for i := range tokens {
		cos := vec.Cosine(static[i], ctx[i])
		if cos > 0.999999 {
			t.Fatalf("token %d unchanged by contextualization", i)
		}
		if cos < 0.8 {
			t.Fatalf("token %d drifted too far: cos=%v", i, cos)
		}
	}
	// The same token in different records gets different vectors (R4).
	other := Contextualize(h, []string{"digital", "printer", "hp"}, 0.15)
	if reflect.DeepEqual(ctx[0], other[0]) {
		t.Fatal("contextualization is not record-dependent")
	}
	if Contextualize(h, nil, 0.15) != nil {
		t.Fatal("empty token list should yield nil")
	}
}

func TestZeroSource(t *testing.T) {
	z := Zero{D: 8}
	if z.Dim() != 8 || vec.Norm(z.Vector("anything")) != 0 {
		t.Fatal("Zero source wrong")
	}
}

func TestFineTunePullsPositivesTogether(t *testing.T) {
	h := NewHash()
	pos := []PairSample{{"laptop", "notebook"}}
	before := vec.Cosine(h.Vector("laptop"), h.Vector("notebook"))
	ft := FineTune(h, pos, nil, DefaultFineTuneConfig())
	after := vec.Cosine(ft.Vector("laptop"), ft.Vector("notebook"))
	if after <= before {
		t.Fatalf("fine-tune did not increase positive-pair similarity: %v -> %v", before, after)
	}
}

func TestFineTunePushesNegativesApart(t *testing.T) {
	h := NewHash()
	neg := []PairSample{{"sony", "nikon"}}
	before := vec.Cosine(h.Vector("sony"), h.Vector("nikon"))
	ft := FineTune(h, nil, neg, FineTuneConfig{Alpha: 0, Beta: 0.5})
	after := vec.Cosine(ft.Vector("sony"), ft.Vector("nikon"))
	if after >= before {
		t.Fatalf("fine-tune did not decrease negative-pair similarity: %v -> %v", before, after)
	}
}

func TestFineTuneIdentityWhenEmpty(t *testing.T) {
	h := NewHash()
	ft := FineTune(h, nil, nil, DefaultFineTuneConfig())
	a := h.Vector("camera")
	b := ft.Vector("camera")
	if vec.Cosine(a, b) < 0.999999 {
		t.Fatal("empty fine-tune should be the identity map")
	}
	if ft.Dim() != h.Dim() {
		t.Fatal("dim mismatch")
	}
}

func TestFineTuneZeroVectorStaysZero(t *testing.T) {
	z := Zero{D: 4}
	ft := FineTune(z, []PairSample{{"a", "b"}}, nil, DefaultFineTuneConfig())
	if vec.Norm(ft.Vector("a")) != 0 {
		t.Fatal("zero vectors must stay zero through fine-tuning")
	}
}

// BenchmarkContextualize measures record-level contextual embedding on a
// warmed cache — the per-record embedding cost inside core.Process.
func BenchmarkContextualize(b *testing.B) {
	src := NewCache(NewConcat(NewHash(), TrainCooc(testCorpus(), DefaultCoocConfig())))
	tokens := []string{"acer", "laptop", "15", "inch", "intel", "fast",
		"extended", "warranty", "two", "years"}
	for _, t := range tokens {
		src.Vector(t) // warm the cache: steady-state measurement
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contextualize(src, tokens, 0.15)
	}
}

func BenchmarkHashVector(b *testing.B) {
	h := NewHash()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Vector("dslra200w")
	}
}

func BenchmarkCoocTrain(b *testing.B) {
	corpus := testCorpus()
	cfg := DefaultCoocConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainCooc(corpus, cfg)
	}
}
