package embed

import (
	"context"

	"wym/internal/vec"
)

// Hebbian fine-tunes a base embedding space for the EM task with a
// closed-form contrastive update, standing in for SBERT's siamese
// fine-tuning (§4.1.1 of the paper). It applies a linear map
//
//	M = I + alpha * Σ_{(x,y) ∈ pos} (v_x v_y^T + v_y v_x^T)/|pos|
//	      - beta  * Σ_{(x,y) ∈ neg} (v_x v_y^T + v_y v_x^T)/|neg|
//
// to every base vector and re-normalizes. Positive pairs (tokens aligned
// inside matching records) pull each other's directions together; negative
// pairs push apart. The symmetric construction keeps the map well behaved
// and the whole fine-tune deterministic and cheap — the properties the
// ablation (Table 4, BERT-ft / SBERT columns) actually exercises.
type Hebbian struct {
	Base Source
	m    *vec.Matrix
}

// PairSample is one contrastive training pair of token strings.
type PairSample struct {
	A, B string
}

// FineTuneConfig holds the contrastive strengths. The defaults (0.5, 0.25)
// bias toward consolidation: matching-record evidence is cleaner than
// non-matching evidence, which often contains legitimately shared tokens
// (challenge R1).
type FineTuneConfig struct {
	Alpha, Beta float64
}

// DefaultFineTuneConfig returns the repo defaults.
func DefaultFineTuneConfig() FineTuneConfig { return FineTuneConfig{Alpha: 0.5, Beta: 0.25} }

// FineTune builds the Hebbian map from positive and negative token pairs.
// Either list may be empty; with both empty the result is the identity map
// over the base source.
func FineTune(base Source, pos, neg []PairSample, cfg FineTuneConfig) *Hebbian {
	h, _ := FineTuneCtx(context.Background(), base, pos, neg, cfg)
	return h
}

// FineTuneCtx is FineTune honoring a context: the contrastive accumulation
// polls for cancellation every few dozen pairs and returns ctx.Err() with
// a nil source when interrupted.
func FineTuneCtx(ctx context.Context, base Source, pos, neg []PairSample, cfg FineTuneConfig) (*Hebbian, error) {
	d := base.Dim()
	m := vec.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		m.Set(i, i, 1)
	}
	accumulate := func(pairs []PairSample, scale float64) error {
		if len(pairs) == 0 || scale == 0 {
			return nil
		}
		s := scale / float64(len(pairs))
		for n, p := range pairs {
			if n%64 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			vx := base.Vector(p.A)
			vy := base.Vector(p.B)
			for i := 0; i < d; i++ {
				if vx[i] == 0 && vy[i] == 0 {
					continue
				}
				for j := 0; j < d; j++ {
					m.AddAt(i, j, s*(vx[i]*vy[j]+vy[i]*vx[j]))
				}
			}
		}
		return nil
	}
	if err := accumulate(pos, cfg.Alpha); err != nil {
		return nil, err
	}
	if err := accumulate(neg, -cfg.Beta); err != nil {
		return nil, err
	}
	return &Hebbian{Base: base, m: m}, nil
}

// Dim implements Source.
func (h *Hebbian) Dim() int { return h.Base.Dim() }

// Normalized implements NormalizedSource: mapped vectors are re-normalized
// and zero vectors stay zero.
func (h *Hebbian) Normalized() bool { return true }

// Vector implements Source.
func (h *Hebbian) Vector(token string) []float64 {
	v := h.Base.Vector(token)
	if vec.Norm(v) == 0 {
		return v
	}
	return vec.Normalize(h.m.MulVec(v))
}
