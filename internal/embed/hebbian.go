package embed

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"wym/internal/vec"
)

// Hebbian fine-tunes a base embedding space for the EM task with a
// closed-form contrastive update, standing in for SBERT's siamese
// fine-tuning (§4.1.1 of the paper). It applies a linear map
//
//	M = I + alpha * Σ_{(x,y) ∈ pos} (v_x v_y^T + v_y v_x^T)/|pos|
//	      - beta  * Σ_{(x,y) ∈ neg} (v_x v_y^T + v_y v_x^T)/|neg|
//
// to every base vector and re-normalizes. Positive pairs (tokens aligned
// inside matching records) pull each other's directions together; negative
// pairs push apart. The symmetric construction keeps the map well behaved
// and the whole fine-tune deterministic and cheap — the properties the
// ablation (Table 4, BERT-ft / SBERT columns) actually exercises.
//
// Because the update is closed-form over a pair multiset, it is also
// incrementally updatable: the Hebbian retains the pairs it was built
// from, and Apply folds new feedback pairs into the same sums and
// recompiles the map — see Apply for the exact equivalence contract.
type Hebbian struct {
	Base Source
	m    *vec.Matrix
	cfg  FineTuneConfig

	// pos and neg are the contrastive pairs of the original fine-tune, in
	// collection order; fbPos and fbNeg are the pairs folded in by Apply,
	// kept canonically sorted so the compiled map is independent of the
	// order feedback arrived in. hasPairs distinguishes a pair-retaining
	// model from one decoded out of a pre-retention artifact, which can
	// serve but not accept incremental updates.
	pos, neg     []PairSample
	fbPos, fbNeg []PairSample
	hasPairs     bool
}

// PairSample is one contrastive training pair of token strings.
type PairSample struct {
	A, B string
}

// FineTuneConfig holds the contrastive strengths. The defaults (0.5, 0.25)
// bias toward consolidation: matching-record evidence is cleaner than
// non-matching evidence, which often contains legitimately shared tokens
// (challenge R1).
type FineTuneConfig struct {
	Alpha, Beta float64
}

// DefaultFineTuneConfig returns the repo defaults.
func DefaultFineTuneConfig() FineTuneConfig { return FineTuneConfig{Alpha: 0.5, Beta: 0.25} }

// ErrInvalidConfig is the sentinel every fine-tune configuration
// rejection wraps: errors.Is(err, ErrInvalidConfig) catches them all
// (mirroring blocking.Config.Validate). A NaN or negative strength used
// to propagate silently into the contrastive map and poison every
// mapped vector; validation turns that operator error into a named
// failure at the boundary instead.
var ErrInvalidConfig = errors.New("embed: invalid fine-tune config")

// Validate checks the contrastive strengths: both must be finite and
// non-negative (zero disables the corresponding term). Every rejection
// wraps ErrInvalidConfig.
func (cfg FineTuneConfig) Validate() error {
	if math.IsNaN(cfg.Alpha) || math.IsInf(cfg.Alpha, 0) {
		return fmt.Errorf("%w: Alpha %v is not finite", ErrInvalidConfig, cfg.Alpha)
	}
	if math.IsNaN(cfg.Beta) || math.IsInf(cfg.Beta, 0) {
		return fmt.Errorf("%w: Beta %v is not finite", ErrInvalidConfig, cfg.Beta)
	}
	if cfg.Alpha < 0 {
		return fmt.Errorf("%w: negative Alpha %v", ErrInvalidConfig, cfg.Alpha)
	}
	if cfg.Beta < 0 {
		return fmt.Errorf("%w: negative Beta %v", ErrInvalidConfig, cfg.Beta)
	}
	return nil
}

// FineTune builds the Hebbian map from positive and negative token pairs.
// Either list may be empty; with both empty the result is the identity map
// over the base source. An invalid config yields a nil Hebbian (use
// FineTuneCtx to see the error).
func FineTune(base Source, pos, neg []PairSample, cfg FineTuneConfig) *Hebbian {
	h, _ := FineTuneCtx(context.Background(), base, pos, neg, cfg)
	return h
}

// FineTuneCtx is FineTune honoring a context: the contrastive accumulation
// polls for cancellation every few dozen pairs and returns ctx.Err() with
// a nil source when interrupted. The configuration is validated up front;
// rejections wrap ErrInvalidConfig.
func FineTuneCtx(ctx context.Context, base Source, pos, neg []PairSample, cfg FineTuneConfig) (*Hebbian, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := compileMap(ctx, base, pos, neg, cfg)
	if err != nil {
		return nil, err
	}
	return &Hebbian{
		Base:     base,
		m:        m,
		cfg:      cfg,
		pos:      clonePairs(pos),
		neg:      clonePairs(neg),
		hasPairs: true,
	}, nil
}

// compileMap accumulates the contrastive map over the given pair lists in
// order: identity, then the positive pairs scaled by alpha/|pos|, then the
// negative pairs scaled by -beta/|neg|. Every compilation path — initial
// fine-tune and incremental Apply alike — runs through this one function,
// which is what makes the incremental path bit-exactly equivalent to a
// single fine-tune over the concatenated pair lists.
func compileMap(ctx context.Context, base Source, pos, neg []PairSample, cfg FineTuneConfig) (*vec.Matrix, error) {
	d := base.Dim()
	m := vec.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		m.Set(i, i, 1)
	}
	accumulate := func(pairs []PairSample, scale float64) error {
		if len(pairs) == 0 || scale == 0 {
			return nil
		}
		s := scale / float64(len(pairs))
		for n, p := range pairs {
			if n%64 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			vx := base.Vector(p.A)
			vy := base.Vector(p.B)
			for i := 0; i < d; i++ {
				if vx[i] == 0 && vy[i] == 0 {
					continue
				}
				for j := 0; j < d; j++ {
					m.AddAt(i, j, s*(vx[i]*vy[j]+vy[i]*vx[j]))
				}
			}
		}
		return nil
	}
	if err := accumulate(pos, cfg.Alpha); err != nil {
		return nil, err
	}
	if err := accumulate(neg, -cfg.Beta); err != nil {
		return nil, err
	}
	return m, nil
}

// Apply folds new contrastive pairs into the fine-tune incrementally: the
// feedback pairs join the retained pair multiset and the map is recompiled
// with the same closed form over the enlarged sets (the per-pair weight
// alpha/|pos| re-balances automatically because the denominator grows).
//
// Equivalence contract: after any sequence of Apply calls, the compiled
// map is byte-identical to a single FineTune over the original pairs
// followed by the union of all applied pairs — independent of how the
// feedback was batched or ordered. Apply keeps the feedback pairs in a
// canonical sort order and recompiles through the same accumulation code
// path as FineTune, so the float operation sequence is literally the same.
//
// Apply fails on a Hebbian decoded from an artifact that predates pair
// retention (it cannot reconstruct the sums) and on an invalid config.
func (h *Hebbian) Apply(pos, neg []PairSample) error {
	return h.ApplyCtx(context.Background(), pos, neg)
}

// ApplyCtx is Apply honoring a context during the map recompilation. On
// error (including cancellation) the Hebbian is unchanged.
func (h *Hebbian) ApplyCtx(ctx context.Context, pos, neg []PairSample) error {
	if !h.hasPairs {
		return fmt.Errorf("embed: model predates incremental fine-tune (no retained pairs); retrain to enable feedback")
	}
	if err := h.cfg.Validate(); err != nil {
		return err
	}
	if len(pos) == 0 && len(neg) == 0 {
		return nil
	}
	fbPos := mergeSorted(h.fbPos, pos)
	fbNeg := mergeSorted(h.fbNeg, neg)
	m, err := compileMap(ctx, h.Base,
		concatPairs(h.pos, fbPos), concatPairs(h.neg, fbNeg), h.cfg)
	if err != nil {
		return err
	}
	h.fbPos, h.fbNeg, h.m = fbPos, fbNeg, m
	return nil
}

// WithApplied returns a new Hebbian equal to h with the given pairs
// applied, leaving h untouched — the copy-on-write form serving paths use
// so in-flight readers of the old model never observe a partial update.
func (h *Hebbian) WithApplied(ctx context.Context, pos, neg []PairSample) (*Hebbian, error) {
	nh := &Hebbian{
		Base:     h.Base,
		m:        h.m,
		cfg:      h.cfg,
		pos:      h.pos,
		neg:      h.neg,
		fbPos:    h.fbPos,
		fbNeg:    h.fbNeg,
		hasPairs: h.hasPairs,
	}
	if err := nh.ApplyCtx(ctx, pos, neg); err != nil {
		return nil, err
	}
	return nh, nil
}

// SupportsApply reports whether this Hebbian retains its training pairs
// and can therefore accept incremental updates.
func (h *Hebbian) SupportsApply() bool { return h.hasPairs }

// Config returns the contrastive strengths the map was compiled with.
func (h *Hebbian) Config() FineTuneConfig { return h.cfg }

// FeedbackPairs returns the number of positive and negative pairs folded
// in by Apply since the original fine-tune.
func (h *Hebbian) FeedbackPairs() (pos, neg int) { return len(h.fbPos), len(h.fbNeg) }

// Fingerprint hashes the applied feedback pairs (FNV-64a over the
// canonically sorted multiset). Two models built from the same base
// fine-tune converge to the same fingerprint whenever the same feedback
// set was folded in, in any order or batching — the property the
// crash-replay e2e asserts. A Hebbian with no feedback reports 0.
func (h *Hebbian) Fingerprint() uint64 {
	if len(h.fbPos) == 0 && len(h.fbNeg) == 0 {
		return 0
	}
	f := fnv.New64a()
	hashPairs := func(tag byte, pairs []PairSample) {
		for _, p := range pairs {
			f.Write([]byte{tag})
			f.Write([]byte(p.A))
			f.Write([]byte{0})
			f.Write([]byte(p.B))
			f.Write([]byte{1})
		}
	}
	hashPairs('P', h.fbPos)
	hashPairs('N', h.fbNeg)
	return f.Sum64()
}

// clonePairs copies a pair list (defensive: callers may reuse theirs).
func clonePairs(pairs []PairSample) []PairSample {
	if len(pairs) == 0 {
		return nil
	}
	return append([]PairSample(nil), pairs...)
}

// concatPairs returns a ++ b in a fresh slice.
func concatPairs(a, b []PairSample) []PairSample {
	out := make([]PairSample, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}

// mergeSorted merges new pairs into an already-sorted multiset, keeping
// the canonical (A, B) order; duplicates are retained — the closed form
// weighs a pair seen twice twice.
func mergeSorted(sorted, add []PairSample) []PairSample {
	if len(add) == 0 {
		return sorted
	}
	out := concatPairs(sorted, add)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Dim implements Source.
func (h *Hebbian) Dim() int { return h.Base.Dim() }

// Normalized implements NormalizedSource: mapped vectors are re-normalized
// and zero vectors stay zero.
func (h *Hebbian) Normalized() bool { return true }

// Vector implements Source.
func (h *Hebbian) Vector(token string) []float64 {
	v := h.Base.Vector(token)
	if vec.Norm(v) == 0 {
		return v
	}
	return vec.Normalize(h.m.MulVec(v))
}
