package embed

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// fbPosPairs / fbNegPairs are a feedback workload over real-ish product
// vocab; the hash source gives every token a non-zero vector.
var fbPosPairs = []PairSample{
	{"laptop", "notebook"}, {"cellphone", "smartphone"},
	{"tv", "television"}, {"photo", "picture"},
}

var fbNegPairs = []PairSample{
	{"laptop", "printer"}, {"sony", "warranty"}, {"tv", "fridge"},
}

func matricesEqual(a, b *Hebbian) bool {
	return a.m.Rows == b.m.Rows && a.m.Cols == b.m.Cols &&
		reflect.DeepEqual(a.m.Data, b.m.Data)
}

// TestApplyEquivalentToFineTuneOverUnion pins the tentpole contract:
// incremental Apply, in any batching and any order, compiles the exact
// same matrix as one FineTune over original ++ sorted(feedback).
func TestApplyEquivalentToFineTuneOverUnion(t *testing.T) {
	base := NewHash()
	origPos := []PairSample{{"camera", "cam"}, {"lens", "optics"}}
	origNeg := []PairSample{{"camera", "tripod"}}

	// Reference: one-shot fine-tune over the union, feedback canonically
	// sorted after the original pairs (the documented equivalence target).
	refPos := concatPairs(origPos, mergeSorted(nil, fbPosPairs))
	refNeg := concatPairs(origNeg, mergeSorted(nil, fbNegPairs))
	ref := FineTune(base, refPos, refNeg, DefaultFineTuneConfig())

	// Incremental, three different batchings/orders.
	batchings := [][][2][]PairSample{
		{{fbPosPairs, fbNegPairs}}, // one batch
		{{fbPosPairs[:2], fbNegPairs[:1]}, {fbPosPairs[2:], fbNegPairs[1:]}}, // two batches
		{{fbPosPairs[2:], fbNegPairs[1:]}, {fbPosPairs[:2], fbNegPairs[:1]}}, // reversed order
	}
	for bi, batches := range batchings {
		h := FineTune(base, origPos, origNeg, DefaultFineTuneConfig())
		for _, b := range batches {
			if err := h.Apply(b[0], b[1]); err != nil {
				t.Fatalf("batching %d: Apply: %v", bi, err)
			}
		}
		if !matricesEqual(h, ref) {
			t.Fatalf("batching %d: incremental matrix differs from one-shot union", bi)
		}
		if v := h.Vector("laptop"); !reflect.DeepEqual(v, ref.Vector("laptop")) {
			t.Fatalf("batching %d: vectors differ", bi)
		}
	}
}

func TestApplyFingerprintOrderInvariant(t *testing.T) {
	base := NewHash()
	a := FineTune(base, nil, nil, DefaultFineTuneConfig())
	b := FineTune(base, nil, nil, DefaultFineTuneConfig())
	if a.Fingerprint() != 0 {
		t.Fatal("fresh model should have zero feedback fingerprint")
	}
	if err := a.Apply(fbPosPairs, fbNegPairs); err != nil {
		t.Fatal(err)
	}
	// Same pairs, reversed batching order.
	if err := b.Apply(fbPosPairs[2:], fbNegPairs[1:]); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(fbPosPairs[:2], fbNegPairs[:1]); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprint order-dependent: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == 0 {
		t.Fatal("fingerprint should be non-zero after feedback")
	}
	p, n := a.FeedbackPairs()
	if p != len(fbPosPairs) || n != len(fbNegPairs) {
		t.Fatalf("FeedbackPairs = %d, %d", p, n)
	}
}

func TestWithAppliedCopyOnWrite(t *testing.T) {
	base := NewHash()
	h := FineTune(base, []PairSample{{"a", "b"}}, nil, DefaultFineTuneConfig())
	before := h.m.Clone()
	nh, err := h.WithApplied(context.Background(), fbPosPairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.m.Data, before.Data) {
		t.Fatal("WithApplied mutated the receiver")
	}
	if p, _ := h.FeedbackPairs(); p != 0 {
		t.Fatal("receiver gained feedback pairs")
	}
	if p, _ := nh.FeedbackPairs(); p != len(fbPosPairs) {
		t.Fatal("clone missing feedback pairs")
	}
	if reflect.DeepEqual(nh.m.Data, before.Data) {
		t.Fatal("clone map unchanged by feedback")
	}
}

func TestApplyEmptyIsNoop(t *testing.T) {
	h := FineTune(NewHash(), fbPosPairs, nil, DefaultFineTuneConfig())
	before := h.m.Clone()
	if err := h.Apply(nil, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.m.Data, before.Data) {
		t.Fatal("empty Apply changed the map")
	}
}

func TestApplyRejectsLegacyModel(t *testing.T) {
	// Simulate a model decoded from a pre-retention artifact.
	h := FineTune(NewHash(), fbPosPairs, nil, DefaultFineTuneConfig())
	h.hasPairs = false
	h.pos, h.neg = nil, nil
	if h.SupportsApply() {
		t.Fatal("legacy model claims SupportsApply")
	}
	if err := h.Apply(fbPosPairs, nil); err == nil {
		t.Fatal("Apply on legacy model should fail")
	}
}

func TestApplyCancellationLeavesModelUnchanged(t *testing.T) {
	h := FineTune(NewHash(), fbPosPairs, fbNegPairs, DefaultFineTuneConfig())
	before := h.m.Clone()
	fp := h.Fingerprint()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := h.ApplyCtx(ctx, []PairSample{{"x", "y"}}, nil); err == nil {
		t.Fatal("canceled ApplyCtx should fail")
	}
	if !reflect.DeepEqual(h.m.Data, before.Data) || h.Fingerprint() != fp {
		t.Fatal("failed Apply left partial state behind")
	}
}

func TestFineTuneConfigValidate(t *testing.T) {
	bad := []FineTuneConfig{
		{Alpha: math.NaN(), Beta: 0.25},
		{Alpha: 0.5, Beta: math.NaN()},
		{Alpha: math.Inf(1), Beta: 0.25},
		{Alpha: 0.5, Beta: math.Inf(-1)},
		{Alpha: -0.1, Beta: 0.25},
		{Alpha: 0.5, Beta: -1},
	}
	for _, cfg := range bad {
		err := cfg.Validate()
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("Validate(%+v) = %v, want ErrInvalidConfig", cfg, err)
		}
		if _, ferr := FineTuneCtx(context.Background(), NewHash(), nil, nil, cfg); !errors.Is(ferr, ErrInvalidConfig) {
			t.Fatalf("FineTuneCtx(%+v) = %v, want ErrInvalidConfig", cfg, ferr)
		}
		if FineTune(NewHash(), nil, nil, cfg) != nil {
			t.Fatalf("FineTune(%+v) should return nil", cfg)
		}
	}
	good := []FineTuneConfig{DefaultFineTuneConfig(), {Alpha: 0, Beta: 0}}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
}

func TestHebbianGobRoundTripKeepsApply(t *testing.T) {
	base := NewHash()
	h := FineTune(base, []PairSample{{"a", "b"}}, []PairSample{{"c", "d"}},
		DefaultFineTuneConfig())
	if err := h.Apply(fbPosPairs[:1], nil); err != nil {
		t.Fatal(err)
	}
	data, err := h.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Hebbian
	if err := back.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if !back.SupportsApply() {
		t.Fatal("round-trip lost pair retention")
	}
	if back.Fingerprint() != h.Fingerprint() {
		t.Fatal("round-trip changed fingerprint")
	}
	if !matricesEqual(&back, h) {
		t.Fatal("round-trip changed the compiled map")
	}
	// And the decoded model must accept further feedback equivalently.
	if err := back.Apply(fbPosPairs[1:], fbNegPairs); err != nil {
		t.Fatal(err)
	}
	if err := h.Apply(fbPosPairs[1:], fbNegPairs); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != h.Fingerprint() || !matricesEqual(&back, h) {
		t.Fatal("post-round-trip Apply diverged from in-memory Apply")
	}
}
