package embed

import (
	"math"
	"path/filepath"
	"testing"

	"wym/internal/arena"
	"wym/internal/vec"
)

// trainedStack builds the full production stack — Cache(Hebbian(Concat(
// Hash, Cooc))) — on a small corpus, mirroring core.buildSourceCtx.
func trainedStack(tb testing.TB) (*Cache, [][]string) {
	tb.Helper()
	corpus := [][]string{
		{"apple", "iphone", "12", "pro", "256gb", "black"},
		{"apple", "iphone", "12", "pro", "max", "256gb"},
		{"samsung", "galaxy", "s21", "ultra", "128gb", "black"},
		{"samsung", "galaxy", "s21", "5g", "128gb"},
		{"google", "pixel", "6", "pro", "128gb", "stormy", "black"},
		{"google", "pixel", "6", "128gb"},
	}
	cfg := DefaultCoocConfig()
	cooc := TrainCooc(corpus, cfg)
	if cooc.VocabSize() == 0 {
		tb.Fatal("empty cooc vocabulary")
	}
	base := NewConcat(NewHash(), cooc)
	ft := FineTune(base, []PairSample{{A: "iphone", B: "apple"}, {A: "galaxy", B: "samsung"}},
		[]PairSample{{A: "apple", B: "samsung"}}, DefaultFineTuneConfig())
	return NewCache(ft), corpus
}

func compileToFile(tb testing.TB, src Source, opts CompileOptions) *arena.File {
	tb.Helper()
	b, err := CompileArena(src, opts)
	if err != nil {
		tb.Fatalf("CompileArena: %v", err)
	}
	path := filepath.Join(tb.TempDir(), "embed.wyma")
	if err := arena.WriteFile(path, b); err != nil {
		tb.Fatalf("WriteFile: %v", err)
	}
	f, err := arena.Open(path)
	if err != nil {
		tb.Fatalf("Open: %v", err)
	}
	tb.Cleanup(func() { f.Close() })
	return f
}

func TestArenaMatchesStackFloat32(t *testing.T) {
	src, corpus := trainedStack(t)
	f := compileToFile(t, src, CompileOptions{})
	a, err := NewArena(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dim() != src.Dim() || !a.Normalized() || a.Quantized() {
		t.Fatalf("arena shape wrong: dim=%d quant=%v", a.Dim(), a.Quantized())
	}
	// In-vocabulary tokens: equal within float32 rounding.
	for _, seq := range corpus {
		for _, tok := range seq {
			want := src.Vector(tok)
			got := a.Vector(tok)
			for j := range want {
				if d := math.Abs(got[j] - want[j]); d > 1e-6 {
					t.Fatalf("token %q dim %d: |%g - %g| = %g", tok, j, got[j], want[j], d)
				}
			}
		}
	}
	// Out-of-vocabulary tokens (typos, unseen strings, the empty token):
	// the fallback reruns the float64 pipeline, so results are identical.
	for _, tok := range []string{"iphnoe", "unseen-token", "xyzzy", "a", ""} {
		want := src.Vector(tok)
		got := a.Vector(tok)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("OOV token %q dim %d: arena %g != stack %g", tok, j, got[j], want[j])
			}
		}
		// Second lookup hits the OOV cache and must agree.
		again := a.Vector(tok)
		for j := range want {
			if again[j] != got[j] {
				t.Fatalf("OOV cache for %q changed the vector", tok)
			}
		}
	}
}

func TestArenaMatchesStackInt8(t *testing.T) {
	src, corpus := trainedStack(t)
	f := compileToFile(t, src, CompileOptions{Int8: true})
	a, err := NewArena(f)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Quantized() {
		t.Fatal("int8 arena not quantized")
	}
	for _, seq := range corpus {
		for _, tok := range seq {
			want := src.Vector(tok)
			got := a.Vector(tok)
			// int8 quantization: per-coordinate error bounded by roughly
			// scale/2 ≈ maxAbs/254 plus renormalization drift.
			if cos := vec.Cosine(got, want); vec.Norm(want) > 0 && cos < 0.999 {
				t.Fatalf("token %q: cosine %g after int8 round-trip", tok, cos)
			}
			if n := vec.Norm(got); n != 0 && math.Abs(n-1) > 1e-12 {
				t.Fatalf("token %q: dequantized norm %g not unit", tok, n)
			}
		}
	}
	// OOV stays exact regardless of vector quantization.
	want := src.Vector("iphnoe")
	got := a.Vector("iphnoe")
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("int8 OOV dim %d: %g != %g", j, got[j], want[j])
		}
	}
}

func TestArenaWithoutFineTune(t *testing.T) {
	// The BERT-pretrained variant has no Hebbian layer; the arena then
	// carries no matrix and the OOV fallback is hash + concat-normalize.
	corpus := [][]string{{"red", "shoe", "size", "42"}, {"red", "boot", "size", "43"}}
	src := NewCache(NewConcat(NewHash(), TrainCooc(corpus, DefaultCoocConfig())))
	f := compileToFile(t, src, CompileOptions{})
	if f.Matrix != nil {
		t.Fatal("arena has a matrix for a stack without fine-tune")
	}
	a, err := NewArena(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []string{"red", "shoe", "unseen"} {
		want := src.Vector(tok)
		got := a.Vector(tok)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-6 {
				t.Fatalf("token %q dim %d: %g != %g", tok, j, got[j], want[j])
			}
		}
	}
}

func TestRecompileArenaToInt8(t *testing.T) {
	src, _ := trainedStack(t)
	f32 := compileToFile(t, src, CompileOptions{})
	a32, err := NewArena(f32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileArena(a32, CompileOptions{Int8: true})
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	path := filepath.Join(t.TempDir(), "re.wyma")
	if err := arena.WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	f8, err := arena.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f8.Close()
	a8, err := NewArena(f8)
	if err != nil {
		t.Fatal(err)
	}
	if f8.VocabN != f32.VocabN || !a8.Quantized() {
		t.Fatalf("recompiled arena: vocab %d vs %d, quant %v", f8.VocabN, f32.VocabN, a8.Quantized())
	}
	if cos := vec.Cosine(a8.Vector("apple"), a32.Vector("apple")); cos < 0.999 {
		t.Fatalf("recompiled vector drifted: cosine %g", cos)
	}
}

func TestCompileArenaRejectsUnsupportedStacks(t *testing.T) {
	for _, src := range []Source{NewHash(), Zero{D: 8}, NewCache(NewHash())} {
		if _, err := CompileArena(src, CompileOptions{}); err == nil {
			t.Fatalf("CompileArena accepted %T", src)
		}
	}
}

func TestContextualizeInlineMatchesMapPath(t *testing.T) {
	src, corpus := trainedStack(t)
	f := compileToFile(t, src, CompileOptions{})
	a, err := NewArena(f)
	if err != nil {
		t.Fatal(err)
	}
	tokens := append(append([]string{}, corpus[0]...), "iphnoe", "unseen")
	for _, gamma := range []float64{0, 0.15} {
		viaMap := Contextualize(src, tokens, gamma)
		viaArena := Contextualize(a, tokens, gamma)
		for i := range viaMap {
			for j := range viaMap[i] {
				if d := math.Abs(viaMap[i][j] - viaArena[i][j]); d > 1e-6 {
					t.Fatalf("gamma=%g token %d dim %d: map %g arena %g", gamma, i, j, viaMap[i][j], viaArena[i][j])
				}
			}
			if gamma != 0 {
				if n := vec.Norm(viaArena[i]); n != 0 && math.Abs(n-1) > 1e-9 {
					t.Fatalf("contextualized arena row %d has norm %g", i, n)
				}
			}
		}
	}
}

func TestArenaVectorIntoAllocFree(t *testing.T) {
	src, _ := trainedStack(t)
	f := compileToFile(t, src, CompileOptions{})
	a, err := NewArena(f)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, a.Dim())
	a.VectorInto("iphnoe", dst) // warm the OOV cache
	allocs := testing.AllocsPerRun(200, func() {
		a.VectorInto("apple", dst)  // in-vocab
		a.VectorInto("iphnoe", dst) // cached OOV
	})
	if allocs != 0 {
		t.Fatalf("VectorInto allocates %v times per op", allocs)
	}
}
