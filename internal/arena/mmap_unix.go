//go:build unix

package arena

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. It reports whether the returned bytes are
// an mmap (true) or an in-memory copy (false, used when the filesystem
// refuses the mapping).
func mapFile(path string) ([]byte, bool, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, false, fmt.Errorf("file too small: %d bytes, header needs %d", size, headerSize)
	}
	if size > 1<<40 {
		return nil, false, fmt.Errorf("file too large to map: %d bytes", size)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Some filesystems cannot mmap; fall back to a plain read.
		return readAligned(path)
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
