//go:build !unix

package arena

// Platforms without a wired-up mmap read the whole file into an aligned
// buffer; cold start loses the zero-copy win but keeps identical
// semantics.
func mapFile(path string) ([]byte, bool, error) { return readAligned(path) }

func unmapFile(data []byte) error { return nil }
