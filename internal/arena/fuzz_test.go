package arena

import (
	"bytes"
	"testing"
)

// FuzzLoadArena drives the header/offset decoder with arbitrary bytes:
// whatever the input, parsing must either succeed or return an error —
// never panic, never index out of bounds. Seeds cover the empty input, a
// valid arena, and targeted corruptions of each header region.
func FuzzLoadArena(f *testing.F) {
	img, err := Encode(testBuild(f))
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(img)
	f.Add(img[:headerSize])
	f.Add(img[:len(img)-8])
	for _, off := range []int{8, 12, 16, 32, 36, 64, 64 + 16*secVectors, headerSize + 3} {
		mutated := append([]byte(nil), img...)
		if off < len(mutated) {
			mutated[off] ^= 0xA5
		}
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := FromBytes("fuzz.wyma", data)
		if err != nil {
			return
		}
		// A parse that succeeds must yield a self-consistent arena:
		// exercise the accessors that index the views.
		if parsed.VocabN > 0 {
			_ = parsed.Key(0)
			_ = parsed.Key(parsed.VocabN - 1)
			_ = parsed.Lookup("probe")
		}
		if !bytes.Equal(parsed.Meta, parsed.Meta) {
			t.Fatal("unreachable")
		}
	})
}
