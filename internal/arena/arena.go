// Package arena implements the .wyma zero-copy model container (DESIGN
// §10): a flat, mmap-able file holding a trained WYM model's embedding
// vectors as one contiguous float32 (or int8-quantized) arena, an
// offset-indexed sorted vocabulary, the optional embedding fine-tune
// matrix, the relevance-scorer weights in padded float32 layout, and an
// opaque metadata blob for the owning package (internal/core).
//
// The gob snapshot stays the interchange format; an arena is a compiled
// artifact derived from it (`wym model convert`). Opening one is O(ms):
// mmap, header validation and a CRC-32C payload check — no decode, no
// per-vector allocation. All views returned by Open alias the mapping
// and stay valid until the File is garbage collected (a finalizer
// unmaps), so hot-swapped models keep serving in-flight requests.
//
// Layout (all integers little-endian; every section 64-byte aligned):
//
//	[0:8)    magic "WYMARENA"
//	[8:12)   format version (currently 1)
//	[12:16)  flags: bit0 int8 vectors, bit1 fine-tune matrix, bit2 scorer
//	[16:20)  dim — embedding dimensionality
//	[20:24)  hashDim, [24:28) hashNMin, [28:32) hashNMax — OOV hash config
//	[32:36)  vocabN — number of vocabulary entries
//	[36:40)  CRC-32C (Castagnoli) over everything from byte 64 onward
//	[40:64)  reserved, must be zero
//	[64:192) section table: 8 × {offset u64, length u64}
//	[192:)   sections: meta, keyData, keyOffs, vectors, scales, matrix,
//	         scorer, reserved
package arena

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"unsafe"
)

// Magic identifies a .wyma arena file; it doubles as the sniff prefix
// core.LoadFile uses to auto-detect the format.
const Magic = "WYMARENA"

// Version is the current arena format version. Readers reject any other
// value: the format evolves by bumping the version, never by silently
// reinterpreting fields.
const Version = 1

// HeaderSize is the fixed on-disk header length. A file carrying the
// Magic but fewer bytes than this is structurally truncated — callers
// can reject it before mapping.
const HeaderSize = headerSize

// Format flags.
const (
	FlagInt8   = 1 << 0 // vectors are int8 with per-vector scales
	FlagMatrix = 1 << 1 // fine-tune matrix section present
	FlagScorer = 1 << 2 // relevance-scorer section present
)

const (
	headerSize  = 192
	sectionN    = 8
	secMeta     = 0
	secKeyData  = 1
	secKeyOffs  = 2
	secVectors  = 3
	secScales   = 4
	secMatrix   = 5
	secScorer   = 6
	secReserved = 7

	// Sanity caps: reject absurd counts before any multiplication or
	// allocation, so corrupt headers fail fast instead of OOMing.
	maxVocab = 1 << 26
	maxDim   = 1 << 16
	maxLayer = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Activation identifiers for scorer layers. They mirror internal/nn but
// are pinned independently here: the file format must not drift if the
// nn package reorders its enum.
const (
	ActIdentity = 0
	ActReLU     = 1
	ActTanh     = 2
	ActSigmoid  = 3
)

// ScorerLayer is one dense layer of the arena scorer: weights stored
// row-major with each row zero-padded from In to InPadded floats so the
// SIMD kernels can run full 8-wide blocks without a scalar tail.
type ScorerLayer struct {
	In, Out  int
	InPadded int
	Act      uint32
	W        []float32 // len Out*InPadded
	B        []float32 // len Out
}

// Scorer is the relevance network in arena layout.
type Scorer struct {
	Layers []ScorerLayer
}

// File is an opened arena. All slice fields alias the underlying mapping
// (or one aligned copy for non-mmap opens) — they are read-only and stay
// valid until the File is garbage collected or Close is called. Close
// must only be called once no views are referenced anymore; long-lived
// consumers (the serving path) simply keep the File reachable and let
// the finalizer unmap it.
type File struct {
	Path    string
	Flags   uint32
	Dim     int
	HashDim int
	NMin    int
	NMax    int
	VocabN  int
	CRC     uint32

	Meta    []byte
	keyData []byte
	keyOffs []uint32  // VocabN+1 monotone offsets into keyData
	VecF32  []float32 // len VocabN*Dim; nil when Int8()
	VecI8   []int8    // len VocabN*Dim; nil unless Int8()
	Scales  []float32 // len VocabN; nil unless Int8()
	Matrix  []float64 // len Dim*Dim; nil when absent
	Scorer  *Scorer   // nil when absent

	data   []byte
	mapped bool
}

// Int8 reports whether the vector arena is int8-quantized.
func (f *File) Int8() bool { return f.Flags&FlagInt8 != 0 }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Key returns vocabulary entry i as a zero-copy string view into the
// arena. The string aliases the mapping: valid while the File is.
func (f *File) Key(i int) string {
	lo, hi := f.keyOffs[i], f.keyOffs[i+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&f.keyData[lo], int(hi-lo))
}

// Lookup binary-searches the sorted vocabulary for token and returns its
// index, or -1 when absent.
func (f *File) Lookup(token string) int {
	lo, hi := 0, f.VocabN
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.Key(mid) < token {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < f.VocabN && f.Key(lo) == token {
		return lo
	}
	return -1
}

// FromBytes parses an arena from an in-memory image, copying it into an
// 8-byte-aligned buffer so the typed views are safe on any input. name
// qualifies error messages the way Open's path does.
func FromBytes(name string, b []byte) (*File, error) {
	// Back the copy with a []uint64 allocation: byte slices carry no
	// alignment guarantee, and the float64 matrix view needs 8 bytes.
	backing := make([]uint64, (len(b)+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(backing))), len(b))
	copy(data, b)
	return parse(name, data, false)
}

// Open maps path and validates it. On platforms without mmap support it
// falls back to reading the file into memory. The returned File carries
// a finalizer that unmaps it when it becomes unreachable.
func Open(path string) (*File, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("arena %s: %w", path, err)
	}
	f, err := parse(path, data, mapped)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, err
	}
	return f, nil
}

func parse(path string, data []byte, mapped bool) (*File, error) {
	fail := func(format string, args ...any) (*File, error) {
		return nil, fmt.Errorf("arena %s: %s", path, fmt.Sprintf(format, args...))
	}
	if len(data) < headerSize {
		return fail("file too small: %d bytes, header needs %d", len(data), headerSize)
	}
	if string(data[0:8]) != Magic {
		return fail("bad magic %q, want %q", data[0:8], Magic)
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	if v := u32(8); v != Version {
		return fail("unsupported format version %d (reader supports %d)", v, Version)
	}
	f := &File{
		Path:    path,
		Flags:   u32(12),
		Dim:     int(u32(16)),
		HashDim: int(u32(20)),
		NMin:    int(u32(24)),
		NMax:    int(u32(28)),
		VocabN:  int(u32(32)),
		CRC:     u32(36),
		data:    data,
		mapped:  mapped,
	}
	if f.Flags&^uint32(FlagInt8|FlagMatrix|FlagScorer) != 0 {
		return fail("unknown flag bits %#x", f.Flags)
	}
	if f.Dim <= 0 || f.Dim > maxDim {
		return fail("implausible dim %d", f.Dim)
	}
	if f.HashDim < 0 || f.HashDim > f.Dim || f.NMin <= 0 || f.NMax < f.NMin || f.NMax > 64 {
		return fail("implausible hash config dim=%d n=[%d,%d]", f.HashDim, f.NMin, f.NMax)
	}
	if f.VocabN < 0 || f.VocabN > maxVocab {
		return fail("implausible vocab size %d", f.VocabN)
	}
	if got := crc32.Checksum(data[64:], castagnoli); got != f.CRC {
		return fail("checksum mismatch: header says %#08x, payload is %#08x", f.CRC, got)
	}

	// Section table. Each entry must lie inside the file past the header
	// and match the exact length implied by the header counts.
	type section struct{ off, n uint64 }
	var secs [sectionN]section
	for i := range secs {
		base := 64 + 16*i
		secs[i] = section{binary.LittleEndian.Uint64(data[base:]), binary.LittleEndian.Uint64(data[base+8:])}
		s := secs[i]
		if s.n == 0 {
			continue
		}
		if s.off < headerSize || s.off > uint64(len(data)) || s.n > uint64(len(data))-s.off {
			return fail("section %d out of bounds: off=%d len=%d file=%d", i, s.off, s.n, len(data))
		}
	}
	want := func(i int, n uint64, what string) error {
		if secs[i].n != n {
			return fmt.Errorf("arena %s: %s section length %d, want %d", path, what, secs[i].n, n)
		}
		return nil
	}
	vocabN, dim := uint64(f.VocabN), uint64(f.Dim)
	if err := want(secKeyOffs, 4*(vocabN+1), "vocab offsets"); err != nil {
		return nil, err
	}
	vecLen := vocabN * dim * 4
	if f.Int8() {
		vecLen = vocabN * dim
	}
	if err := want(secVectors, vecLen, "vector arena"); err != nil {
		return nil, err
	}
	scaleLen := uint64(0)
	if f.Int8() {
		scaleLen = 4 * vocabN
	}
	if err := want(secScales, scaleLen, "quantization scales"); err != nil {
		return nil, err
	}
	matLen := uint64(0)
	if f.Flags&FlagMatrix != 0 {
		matLen = 8 * dim * dim
	}
	if err := want(secMatrix, matLen, "fine-tune matrix"); err != nil {
		return nil, err
	}
	if f.Flags&FlagScorer != 0 && secs[secScorer].n == 0 {
		return fail("scorer flag set but scorer section empty")
	}
	if f.Flags&FlagScorer == 0 && secs[secScorer].n != 0 {
		return fail("scorer section present without scorer flag")
	}
	for _, a := range [...]struct {
		sec   int
		align uint64
	}{{secKeyOffs, 4}, {secVectors, 4}, {secScales, 4}, {secMatrix, 8}, {secScorer, 4}} {
		if secs[a.sec].n != 0 && secs[a.sec].off%a.align != 0 {
			return fail("section %d misaligned: off=%d needs %d-byte alignment", a.sec, secs[a.sec].off, a.align)
		}
	}

	f.Meta = data[secs[secMeta].off : secs[secMeta].off+secs[secMeta].n]
	f.keyData = data[secs[secKeyData].off : secs[secKeyData].off+secs[secKeyData].n]
	f.keyOffs = viewU32(data, secs[secKeyOffs].off, vocabN+1)
	if f.Int8() {
		f.VecI8 = viewI8(data, secs[secVectors].off, vocabN*dim)
		f.Scales = viewF32(data, secs[secScales].off, vocabN)
	} else {
		f.VecF32 = viewF32(data, secs[secVectors].off, vocabN*dim)
	}
	if matLen != 0 {
		f.Matrix = viewF64(data, secs[secMatrix].off, dim*dim)
	}

	// Vocabulary offsets: monotone, starting at 0, ending at len(keyData),
	// keys strictly ascending (binary search depends on it).
	if f.keyOffs[0] != 0 {
		return fail("vocab offsets must start at 0, got %d", f.keyOffs[0])
	}
	for i := 0; i < f.VocabN; i++ {
		if f.keyOffs[i+1] < f.keyOffs[i] {
			return fail("vocab offset %d decreases: %d -> %d", i+1, f.keyOffs[i], f.keyOffs[i+1])
		}
	}
	if last := f.keyOffs[f.VocabN]; uint64(last) != uint64(len(f.keyData)) {
		return fail("vocab offsets end at %d, key data is %d bytes", last, len(f.keyData))
	}
	for i := 1; i < f.VocabN; i++ {
		if f.Key(i-1) >= f.Key(i) {
			return fail("vocabulary not strictly sorted at entry %d (%q >= %q)", i, f.Key(i-1), f.Key(i))
		}
	}

	if f.Flags&FlagScorer != 0 {
		sc, err := parseScorer(data[secs[secScorer].off : secs[secScorer].off+secs[secScorer].n])
		if err != nil {
			return fail("scorer section: %v", err)
		}
		f.Scorer = sc
	}
	registerCleanup(f)
	return f, nil
}

func parseScorer(b []byte) (*Scorer, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("truncated: %d bytes", len(b))
	}
	l := int(binary.LittleEndian.Uint32(b))
	if l <= 0 || l > 64 {
		return nil, fmt.Errorf("implausible layer count %d", l)
	}
	headLen := 4 + 16*l
	if len(b) < headLen {
		return nil, fmt.Errorf("truncated layer table: %d bytes, want %d", len(b), headLen)
	}
	sc := &Scorer{Layers: make([]ScorerLayer, l)}
	off := uint64(headLen)
	for i := range sc.Layers {
		base := 4 + 16*i
		in := int(binary.LittleEndian.Uint32(b[base:]))
		out := int(binary.LittleEndian.Uint32(b[base+4:]))
		act := binary.LittleEndian.Uint32(b[base+8:])
		pad := int(binary.LittleEndian.Uint32(b[base+12:]))
		if in <= 0 || in > maxLayer || out <= 0 || out > maxLayer || pad < in || pad > maxLayer {
			return nil, fmt.Errorf("layer %d implausible shape in=%d out=%d padded=%d", i, in, out, pad)
		}
		if act > ActSigmoid {
			return nil, fmt.Errorf("layer %d unknown activation %d", i, act)
		}
		wN, bN := uint64(out)*uint64(pad), uint64(out)
		need := 4 * (wN + bN)
		if uint64(len(b))-off < need {
			return nil, fmt.Errorf("layer %d weights truncated: need %d bytes at offset %d of %d", i, need, off, len(b))
		}
		sc.Layers[i] = ScorerLayer{
			In: in, Out: out, InPadded: pad, Act: act,
			W: viewF32(b, off, wN),
			B: viewF32(b, off+4*wN, bN),
		}
		off += need
	}
	if off != uint64(len(b)) {
		return nil, fmt.Errorf("%d trailing bytes after layers", uint64(len(b))-off)
	}
	return sc, nil
}

func viewF32(data []byte, off, n uint64) []float32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&data[off])), n)
}

func viewF64(data []byte, off, n uint64) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[off])), n)
}

func viewU32(data []byte, off, n uint64) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&data[off])), n)
}

func viewI8(data []byte, off, n uint64) []int8 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&data[off])), n)
}

// registerCleanup arranges for mmap'd arenas to be unmapped when the
// File becomes unreachable. This is what makes hot reload safe: the old
// model's mapping survives exactly as long as something (an in-flight
// request, a swapped-out System) still references it.
func registerCleanup(f *File) {
	if f.mapped {
		runtime.SetFinalizer(f, finalizeFile)
	}
}

func finalizeFile(f *File) { _ = unmapFile(f.data) }

// Close releases the arena eagerly. It must only be called once no view
// into the file (vectors, keys, scorer weights, meta) is referenced
// anymore; long-lived consumers should instead drop the File and let the
// finalizer unmap it.
func (f *File) Close() error {
	var err error
	if f.mapped {
		runtime.SetFinalizer(f, nil)
		f.mapped = false
		err = unmapFile(f.data)
	}
	f.data, f.Meta, f.keyData = nil, nil, nil
	f.keyOffs, f.VecF32, f.VecI8, f.Scales, f.Matrix, f.Scorer = nil, nil, nil, nil, nil, nil
	return err
}

// readAligned reads path into an 8-byte-aligned buffer (the mmap
// fallback; a plain []byte allocation guarantees no alignment for the
// float64 matrix view).
func readAligned(path string) ([]byte, bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	backing := make([]uint64, (len(b)+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(backing))), len(b))
	copy(data, b)
	return data, false, nil
}

// Build is the writer-side description of an arena. Exactly one of
// VecF32 / (VecI8, Scales) must be populated.
type Build struct {
	Dim     int
	HashDim int
	NMin    int
	NMax    int
	Keys    []string  // strictly ascending
	VecF32  []float32 // len(Keys)*Dim
	VecI8   []int8    // len(Keys)*Dim
	Scales  []float32 // len(Keys)
	Matrix  []float64 // nil or Dim*Dim
	Meta    []byte
	Scorer  *Scorer
}

// Encode serializes b into the on-disk arena image.
func Encode(b *Build) ([]byte, error) {
	n := len(b.Keys)
	if b.Dim <= 0 || b.Dim > maxDim {
		return nil, fmt.Errorf("arena: bad dim %d", b.Dim)
	}
	if n > maxVocab {
		return nil, fmt.Errorf("arena: vocab too large: %d", n)
	}
	if !sort.SliceIsSorted(b.Keys, func(i, j int) bool { return b.Keys[i] < b.Keys[j] }) {
		return nil, fmt.Errorf("arena: keys not sorted")
	}
	for i := 1; i < n; i++ {
		if b.Keys[i-1] == b.Keys[i] {
			return nil, fmt.Errorf("arena: duplicate key %q", b.Keys[i])
		}
	}
	var flags uint32
	switch {
	case b.VecI8 != nil:
		flags |= FlagInt8
		if len(b.VecI8) != n*b.Dim || len(b.Scales) != n {
			return nil, fmt.Errorf("arena: int8 arena shape mismatch: %d vectors dim %d, %d values %d scales",
				n, b.Dim, len(b.VecI8), len(b.Scales))
		}
	case len(b.VecF32) == n*b.Dim:
	default:
		return nil, fmt.Errorf("arena: float32 arena shape mismatch: %d vectors dim %d, %d values",
			n, b.Dim, len(b.VecF32))
	}
	if b.Matrix != nil {
		if len(b.Matrix) != b.Dim*b.Dim {
			return nil, fmt.Errorf("arena: matrix is %d values, want %d", len(b.Matrix), b.Dim*b.Dim)
		}
		flags |= FlagMatrix
	}
	if b.Scorer != nil {
		flags |= FlagScorer
	}

	keyData := make([]byte, 0, 16*n)
	keyOffs := make([]uint32, n+1)
	for i, k := range b.Keys {
		keyOffs[i] = uint32(len(keyData))
		keyData = append(keyData, k...)
	}
	keyOffs[n] = uint32(len(keyData))

	var scorerBlob []byte
	if b.Scorer != nil {
		var err error
		if scorerBlob, err = encodeScorer(b.Scorer); err != nil {
			return nil, err
		}
	}

	var buf bytes.Buffer
	buf.WriteString(Magic)
	le := binary.LittleEndian
	put32 := func(v uint32) { var t [4]byte; le.PutUint32(t[:], v); buf.Write(t[:]) }
	put32(Version)
	put32(flags)
	put32(uint32(b.Dim))
	put32(uint32(b.HashDim))
	put32(uint32(b.NMin))
	put32(uint32(b.NMax))
	put32(uint32(n))
	put32(0) // CRC placeholder, patched below
	buf.Write(make([]byte, 64-buf.Len()))

	type pending struct{ payload []byte }
	secs := make([]pending, sectionN)
	secs[secMeta] = pending{b.Meta}
	secs[secKeyData] = pending{keyData}
	secs[secKeyOffs] = pending{u32Bytes(keyOffs)}
	if flags&FlagInt8 != 0 {
		secs[secVectors] = pending{i8Bytes(b.VecI8)}
		secs[secScales] = pending{f32Bytes(b.Scales)}
	} else {
		secs[secVectors] = pending{f32Bytes(b.VecF32)}
	}
	if b.Matrix != nil {
		secs[secMatrix] = pending{f64Bytes(b.Matrix)}
	}
	secs[secScorer] = pending{scorerBlob}

	// Lay sections out 64-byte aligned and fill the table.
	table := make([]byte, 16*sectionN)
	off := uint64(headerSize)
	var body bytes.Buffer
	for i, s := range secs {
		if len(s.payload) == 0 {
			continue
		}
		if pad := (64 - off%64) % 64; pad != 0 {
			body.Write(make([]byte, pad))
			off += pad
		}
		le.PutUint64(table[16*i:], off)
		le.PutUint64(table[16*i+8:], uint64(len(s.payload)))
		body.Write(s.payload)
		off += uint64(len(s.payload))
	}
	buf.Write(table)
	buf.Write(body.Bytes())

	out := buf.Bytes()
	le.PutUint32(out[36:], crc32.Checksum(out[64:], castagnoli))
	return out, nil
}

// WriteFile encodes b and writes it to path atomically (temp file in the
// same directory, fsync, rename), matching the checkpoint writer idiom.
func WriteFile(path string, b *Build) error {
	img, err := Encode(b)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wyma-*")
	if err != nil {
		return fmt.Errorf("arena %s: %w", path, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		return fmt.Errorf("arena %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("arena %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("arena %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("arena %s: %w", path, err)
	}
	return nil
}

func encodeScorer(s *Scorer) ([]byte, error) {
	if len(s.Layers) == 0 || len(s.Layers) > 64 {
		return nil, fmt.Errorf("arena: scorer has %d layers", len(s.Layers))
	}
	var buf bytes.Buffer
	le := binary.LittleEndian
	put32 := func(v uint32) { var t [4]byte; le.PutUint32(t[:], v); buf.Write(t[:]) }
	put32(uint32(len(s.Layers)))
	for i, l := range s.Layers {
		if l.In <= 0 || l.Out <= 0 || l.InPadded < l.In ||
			len(l.W) != l.Out*l.InPadded || len(l.B) != l.Out || l.Act > ActSigmoid {
			return nil, fmt.Errorf("arena: scorer layer %d malformed", i)
		}
		put32(uint32(l.In))
		put32(uint32(l.Out))
		put32(l.Act)
		put32(uint32(l.InPadded))
	}
	for _, l := range s.Layers {
		buf.Write(f32Bytes(l.W))
		buf.Write(f32Bytes(l.B))
	}
	return buf.Bytes(), nil
}

func u32Bytes(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

func f32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func f64Bytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func i8Bytes(v []int8) []byte {
	out := make([]byte, len(v))
	for i, x := range v {
		out[i] = byte(x)
	}
	return out
}
