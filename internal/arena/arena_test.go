package arena

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testBuild returns a small but fully featured arena: float32 vectors,
// fine-tune matrix, scorer, meta blob.
func testBuild(tb testing.TB) *Build {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	const dim, n = 6, 5
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	vecs := make([]float32, n*dim)
	for i := range vecs {
		vecs[i] = float32(rng.NormFloat64())
	}
	mat := make([]float64, dim*dim)
	for i := range mat {
		mat[i] = rng.NormFloat64()
	}
	sc := &Scorer{Layers: []ScorerLayer{
		{In: 2 * dim, Out: 3, InPadded: 16, Act: ActReLU,
			W: make([]float32, 3*16), B: []float32{0.1, -0.2, 0.3}},
		{In: 3, Out: 1, InPadded: 8, Act: ActTanh,
			W: make([]float32, 8), B: []float32{0.05}},
	}}
	for i := range sc.Layers[0].W {
		sc.Layers[0].W[i] = float32(rng.NormFloat64())
	}
	return &Build{
		Dim: dim, HashDim: 3, NMin: 3, NMax: 5,
		Keys: keys, VecF32: vecs, Matrix: mat,
		Meta:   []byte("opaque-meta-blob"),
		Scorer: sc,
	}
}

func writeTemp(tb testing.TB, b *Build) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "model.wyma")
	if err := WriteFile(path, b); err != nil {
		tb.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	b := testBuild(t)
	path := writeTemp(t, b)
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()

	if f.Dim != b.Dim || f.HashDim != b.HashDim || f.NMin != b.NMin || f.NMax != b.NMax {
		t.Fatalf("header mismatch: %+v", f)
	}
	if f.VocabN != len(b.Keys) {
		t.Fatalf("VocabN = %d, want %d", f.VocabN, len(b.Keys))
	}
	if f.Int8() {
		t.Fatal("float32 arena reported as int8")
	}
	for i, k := range b.Keys {
		if got := f.Key(i); got != k {
			t.Fatalf("Key(%d) = %q, want %q", i, got, k)
		}
		if idx := f.Lookup(k); idx != i {
			t.Fatalf("Lookup(%q) = %d, want %d", k, idx, i)
		}
	}
	if f.Lookup("zulu") != -1 || f.Lookup("") != -1 {
		t.Fatal("Lookup of absent token did not return -1")
	}
	for i, v := range b.VecF32 {
		if f.VecF32[i] != v {
			t.Fatalf("vector value %d mismatch", i)
		}
	}
	for i, v := range b.Matrix {
		if f.Matrix[i] != v {
			t.Fatalf("matrix value %d mismatch", i)
		}
	}
	if string(f.Meta) != string(b.Meta) {
		t.Fatalf("meta = %q", f.Meta)
	}
	if f.Scorer == nil || len(f.Scorer.Layers) != 2 {
		t.Fatalf("scorer = %+v", f.Scorer)
	}
	l0 := f.Scorer.Layers[0]
	if l0.In != 12 || l0.Out != 3 || l0.InPadded != 16 || l0.Act != ActReLU {
		t.Fatalf("layer 0 = %+v", l0)
	}
	for i, w := range b.Scorer.Layers[0].W {
		if l0.W[i] != w {
			t.Fatalf("layer 0 weight %d mismatch", i)
		}
	}
	if f.Scorer.Layers[1].B[0] != 0.05 {
		t.Fatal("layer 1 bias mismatch")
	}
	if f.Size() <= headerSize {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestRoundTripInt8(t *testing.T) {
	b := testBuild(t)
	n := len(b.Keys)
	b.VecI8 = make([]int8, n*b.Dim)
	b.Scales = make([]float32, n)
	for i := range b.VecI8 {
		b.VecI8[i] = int8(i%255 - 127)
	}
	for i := range b.Scales {
		b.Scales[i] = float32(i+1) / 128
	}
	b.VecF32 = nil
	path := writeTemp(t, b)
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if !f.Int8() {
		t.Fatal("int8 arena not flagged")
	}
	if f.VecF32 != nil {
		t.Fatal("int8 arena exposes float32 view")
	}
	for i, v := range b.VecI8 {
		if f.VecI8[i] != v {
			t.Fatalf("int8 value %d mismatch", i)
		}
	}
	for i, s := range b.Scales {
		if f.Scales[i] != s {
			t.Fatalf("scale %d mismatch", i)
		}
	}
}

func TestFromBytesMatchesOpen(t *testing.T) {
	b := testBuild(t)
	img, err := Encode(b)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	f, err := FromBytes("mem.wyma", img)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if f.VocabN != len(b.Keys) || f.Key(0) != "alpha" {
		t.Fatalf("parsed arena wrong: %+v", f)
	}
}

// TestCorruptArenas is the corrupt-ingest suite: every class of damage
// must produce a path-qualified error, never a panic.
func TestCorruptArenas(t *testing.T) {
	img, err := Encode(testBuild(t))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	recrc := func(b []byte) { // keep the checksum valid so deeper checks are reached
		binary.LittleEndian.PutUint32(b[36:], 0)
		binary.LittleEndian.PutUint32(b[36:], crc32Of(b[64:]))
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"bad magic", func(b []byte) []byte {
			copy(b, "NOTWYMA!")
			return b
		}, "bad magic"},
		{"unsupported version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			return b
		}, "unsupported format version 99"},
		{"truncated header", func(b []byte) []byte {
			return b[:100]
		}, "file too small"},
		{"truncated arena", func(b []byte) []byte {
			// Re-sign the truncated payload so the failure surfaces as the
			// section bounds check, not merely the checksum.
			b = b[:len(b)-64]
			recrc(b)
			return b
		}, "out of bounds"},
		{"truncated arena bad crc", func(b []byte) []byte {
			return b[:len(b)-64]
		}, "checksum mismatch"},
		{"checksum mismatch", func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}, "checksum mismatch"},
		{"implausible dim", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 0)
			recrc(b)
			return b
		}, "implausible dim"},
		{"unknown flags", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 1<<31)
			recrc(b)
			return b
		}, "unknown flag bits"},
		{"section out of bounds", func(b []byte) []byte {
			// Point the vector section past EOF.
			binary.LittleEndian.PutUint64(b[64+16*secVectors:], uint64(len(b)+4096))
			recrc(b)
			return b
		}, "out of bounds"},
		{"wrong vector length", func(b []byte) []byte {
			off := 64 + 16*secVectors + 8
			binary.LittleEndian.PutUint64(b[off:], binary.LittleEndian.Uint64(b[off:])-4)
			recrc(b)
			return b
		}, "vector arena section length"},
		{"out-of-bounds vocab offsets", func(b []byte) []byte {
			// Last key offset must equal len(keyData); bump it.
			offsOff := binary.LittleEndian.Uint64(b[64+16*secKeyOffs:])
			n := binary.LittleEndian.Uint64(b[64+16*secKeyOffs+8:]) / 4
			last := offsOff + 4*(n-1)
			binary.LittleEndian.PutUint32(b[last:], binary.LittleEndian.Uint32(b[last:])+7)
			recrc(b)
			return b
		}, "vocab offsets end at"},
		{"decreasing vocab offsets", func(b []byte) []byte {
			offsOff := binary.LittleEndian.Uint64(b[64+16*secKeyOffs:])
			binary.LittleEndian.PutUint32(b[offsOff+4:], ^uint32(0)>>1)
			recrc(b)
			return b
		}, "vocab offset"},
		{"unsorted vocabulary", func(b []byte) []byte {
			// Swap the first bytes of "alpha" and "bravo" in key data.
			keyOff := binary.LittleEndian.Uint64(b[64+16*secKeyData:])
			b[keyOff], b[keyOff+5] = 'z', 'a'
			recrc(b)
			return b
		}, "not strictly sorted"},
		{"scorer truncated", func(b []byte) []byte {
			off := 64 + 16*secScorer + 8
			binary.LittleEndian.PutUint64(b[off:], 6)
			recrc(b)
			return b
		}, "scorer section"},
		{"scorer bad activation", func(b []byte) []byte {
			scOff := binary.LittleEndian.Uint64(b[64+16*secScorer:])
			binary.LittleEndian.PutUint32(b[scOff+4+8:], 77)
			recrc(b)
			return b
		}, "unknown activation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked: %v", r)
				}
			}()
			mutated := tc.mutate(append([]byte(nil), img...))
			path := filepath.Join(t.TempDir(), "corrupt.wyma")
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(path)
			if err == nil {
				t.Fatalf("Open accepted corrupt arena (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error not path-qualified: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestOpenMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.wyma")
	_, err := Open(path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeRejectsBadBuilds(t *testing.T) {
	good := testBuild(t)
	cases := []struct {
		name   string
		mutate func(*Build)
	}{
		{"unsorted keys", func(b *Build) { b.Keys[0], b.Keys[1] = b.Keys[1], b.Keys[0] }},
		{"duplicate keys", func(b *Build) { b.Keys[1] = b.Keys[0] }},
		{"bad dim", func(b *Build) { b.Dim = 0 }},
		{"vector shape", func(b *Build) { b.VecF32 = b.VecF32[:1] }},
		{"matrix shape", func(b *Build) { b.Matrix = b.Matrix[:3] }},
		{"int8 shape", func(b *Build) { b.VecF32 = nil; b.VecI8 = make([]int8, 1); b.Scales = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := testBuild(t)
			tc.mutate(b)
			if _, err := Encode(b); err == nil {
				t.Fatal("Encode accepted malformed build")
			}
		})
	}
	if _, err := Encode(good); err != nil {
		t.Fatalf("Encode rejected good build: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	path := writeTemp(t, testBuild(t))
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestQuantizationHelpersExact(t *testing.T) {
	// Dequantizing a max-magnitude int8 value must reproduce scale*127
	// bit-exactly in float64.
	scale := 0.0123
	if got := scale * float64(int8(127)); math.Abs(got-scale*127) != 0 {
		t.Fatalf("dequant drift: %v", got)
	}
}

func crc32Of(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }
