package blocking

import (
	"container/heap"
	"fmt"
	"sort"

	"wym/internal/data"
	"wym/internal/textsim"
	"wym/internal/tokenize"
)

// Streaming candidate generation: the batch Candidates API materializes
// the full candidate list and holds the whole right-table inverted index
// resident, which is fine for benchmark-sized tables and fatal for
// table-scale matching. The Streamer instead
//
//   - builds the inverted index incrementally and seals a shard whenever
//     the resident index would exceed a configurable memory budget — only
//     one shard's postings are ever live, and the peak resident estimate
//     is tracked and reported;
//   - emits candidates through a pull-based iterator, chunk by chunk over
//     the left table, capping each left record at its TopK strongest
//     candidates (most shared tokens, ties to the lowest right index)
//     instead of materializing the cross product.
//
// Because every right record's postings live in exactly one shard, a
// pair's shared-token count is computed entirely when that shard is
// probed: the candidate set is independent of the budget (and therefore
// of how the job is sharded), which is what makes checkpointed match
// jobs byte-reproducible across different machines and interruptions.

// StreamConfig extends Config with the streaming controls.
type StreamConfig struct {
	Config
	// MemoryBudget caps the estimated resident bytes of the inverted
	// index; when adding the next right record would exceed it, the
	// current shard is sealed and a fresh one started. 0 = unlimited
	// (single shard). A single record's postings always fit: the budget
	// bounds the shard at >= one record.
	MemoryBudget int64
	// TopK caps the candidates kept per left record (0 = unlimited).
	// Survivors are the TopK with the most shared tokens; ties keep the
	// lower right index. Dropped candidates are counted as pruned.
	TopK int
	// Self enables dedup mode: left and right are the same table, and
	// only pairs with Left < Right are emitted (no self-pairs, each
	// unordered pair once).
	Self bool
}

// DefaultStreamConfig returns practical streaming defaults: the batch
// defaults plus a 64 MiB index budget and a top-50 per-record cap.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Config: DefaultConfig(), MemoryBudget: 64 << 20, TopK: 50}
}

// StreamStats summarizes a streamer's work so far.
type StreamStats struct {
	// Shards is the number of index shards built for the most recent
	// chunk (identical across chunks — the shard plan depends only on the
	// right table and the budget).
	Shards int
	// Emitted and Pruned count candidates handed to the caller and
	// candidates dropped by the TopK cap, across all chunks so far.
	Emitted, Pruned int64
	// PeakIndexBytes is the largest estimated resident index size seen.
	PeakIndexBytes int64
}

// Streamer generates candidates for chunks of a left table against a
// right table under a memory budget. Build one per job with NewStreamer,
// then call Chunk for each left-row range. Not safe for concurrent use.
type Streamer struct {
	cfg      StreamConfig
	left     []data.Entity
	right    []data.Entity
	maxLeft  int
	maxRight int
	dfLeft   map[string]int
	dfRight  map[string]int
	// rightTokens caches the tokenized right rows (the tables themselves
	// are already resident; token lists are the same order of memory).
	// Only the inverted index — the structure that is rebuilt per probe
	// and grows with posting lists — is governed by the budget.
	rightTokens [][]string
	stats       StreamStats
}

// NewStreamer validates the configuration, tokenizes the right table
// once, and computes both tables' document frequencies (the MaxDF pruning
// is global, exactly as in the batch path). For Self mode pass the same
// slice as left and right.
func NewStreamer(left, right []data.Entity, cfg StreamConfig) (*Streamer, error) {
	if err := cfg.Validate(numAttrsOf(left, right)); err != nil {
		return nil, err
	}
	if cfg.MinShared == 0 {
		cfg.MinShared = 1
	}
	if cfg.MemoryBudget < 0 {
		return nil, fmt.Errorf("%w: negative MemoryBudget %d", ErrInvalidConfig, cfg.MemoryBudget)
	}
	if cfg.TopK < 0 {
		return nil, fmt.Errorf("%w: negative TopK %d", ErrInvalidConfig, cfg.TopK)
	}
	s := &Streamer{cfg: cfg, left: left, right: right}
	s.rightTokens = make([][]string, len(right))
	for i, e := range right {
		s.rightTokens[i] = entityTokens(e, cfg.Attrs)
	}
	s.dfRight = docFreq(s.rightTokens)
	if cfg.Self {
		s.dfLeft = s.dfRight
	} else {
		s.dfLeft = make(map[string]int)
		scratch := map[string]bool{}
		for _, e := range left {
			toks := entityTokens(e, cfg.Attrs)
			clear(scratch)
			for _, t := range toks {
				if !scratch[t] {
					scratch[t] = true
					s.dfLeft[t]++
				}
			}
		}
	}
	s.maxLeft = dfCap(cfg.MaxDF, len(left))
	s.maxRight = dfCap(cfg.MaxDF, len(right))
	return s, nil
}

// dfCap converts a document-frequency fraction into an absolute cap with
// the batch path's floor of 1.
func dfCap(maxDF float64, n int) int {
	cap := int(maxDF * float64(n))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// entityTokens tokenizes one entity restricted to the configured
// attributes (the batch path's per-entity body, shared here).
func entityTokens(e data.Entity, attrs []int) []string {
	if len(attrs) == 0 {
		var toks []string
		for _, v := range e {
			toks = append(toks, tokenize.SplitWords(v)...)
		}
		return toks
	}
	var toks []string
	for _, a := range attrs {
		if a < len(e) {
			toks = append(toks, tokenize.SplitWords(e[a])...)
		}
	}
	return toks
}

// Stats returns the cumulative streaming statistics.
func (s *Streamer) Stats() StreamStats { return s.stats }

// shardIndex is one resident inverted-index shard over a contiguous run
// of right rows, with its estimated byte footprint.
type shardIndex struct {
	postings map[string][]int
	bytes    int64
}

// Per-entry cost estimates for the resident index: a map entry with a
// string key (header + bucket overhead) and one int per posting.
const (
	tokenEntryBytes = 64 // string header + map bucket amortized
	postingBytes    = 8
)

// rowIndexBytes estimates the index growth of adding one right row: its
// new tokens' entries plus one posting per unique indexable token.
func (s *Streamer) rowIndexBytes(sh *shardIndex, toks []string, seen map[string]bool) int64 {
	clear(seen)
	var b int64
	for _, t := range toks {
		if seen[t] || s.dfRight[t] > s.maxRight {
			continue
		}
		seen[t] = true
		if _, ok := sh.postings[t]; !ok {
			b += tokenEntryBytes + int64(len(t))
		}
		b += postingBytes
	}
	return b
}

// addRow inserts one right row's postings into the shard.
func (s *Streamer) addRow(sh *shardIndex, ri int, toks []string, seen map[string]bool) {
	clear(seen)
	for _, t := range toks {
		if seen[t] || s.dfRight[t] > s.maxRight {
			continue
		}
		seen[t] = true
		sh.postings[t] = append(sh.postings[t], ri)
	}
}

// CandidateStream is a pull-based candidate iterator for one left chunk.
// The resident state is bounded by chunkRows x TopK survivors (never the
// cross product); Next drains them in (Left, Right) order.
type CandidateStream struct {
	cands []Candidate
	pos   int
	stats *StreamStats
}

// Next returns the next candidate, or false when the chunk is drained.
func (cs *CandidateStream) Next() (Candidate, bool) {
	if cs.pos >= len(cs.cands) {
		return Candidate{}, false
	}
	c := cs.cands[cs.pos]
	cs.pos++
	cs.stats.Emitted++
	return c, true
}

// Remaining reports how many candidates are left to pull.
func (cs *CandidateStream) Remaining() int { return len(cs.cands) - cs.pos }

// Chunk generates the candidates for left rows [start, end) as a
// pull-based stream. Candidate indices are global: Left in [start, end),
// Right into the full right table. The right table is scanned shard by
// shard under the memory budget; per-left-record TopK heaps accumulate
// across shards, so the resident state never exceeds the sealed shard
// plus chunkRows x TopK survivors.
func (s *Streamer) Chunk(start, end int) (*CandidateStream, error) {
	if start < 0 || end < start || end > len(s.left) {
		return nil, fmt.Errorf("blocking: chunk [%d,%d) out of range for %d left rows", start, end, len(s.left))
	}
	rows := end - start
	leftTokens := make([][]string, rows)
	for i := 0; i < rows; i++ {
		leftTokens[i] = entityTokens(s.left[start+i], s.cfg.Attrs)
	}
	heaps := make([]candHeap, rows)

	seen := map[string]bool{}
	shards := 0
	probe := func(sh *shardIndex) {
		shards++
		if sh.bytes > s.stats.PeakIndexBytes {
			s.stats.PeakIndexBytes = sh.bytes
		}
		s.probeShard(sh, start, leftTokens, heaps, seen)
	}

	sh := &shardIndex{postings: map[string][]int{}}
	for ri, toks := range s.rightTokens {
		rb := s.rowIndexBytes(sh, toks, seen)
		if s.cfg.MemoryBudget > 0 && sh.bytes > 0 && sh.bytes+rb > s.cfg.MemoryBudget {
			probe(sh)
			sh = &shardIndex{postings: map[string][]int{}}
			rb = s.rowIndexBytes(sh, toks, seen)
		}
		s.addRow(sh, ri, toks, seen)
		sh.bytes += rb
	}
	if len(sh.postings) > 0 || shards == 0 {
		probe(sh)
	}
	s.stats.Shards = shards

	var out []Candidate
	for i := range heaps {
		from := len(out)
		for _, c := range heaps[i] {
			out = append(out, c)
		}
		sort.Slice(out[from:], func(a, b int) bool { return out[from+a].Right < out[from+b].Right })
	}
	return &CandidateStream{cands: out, stats: &s.stats}, nil
}

// probeShard runs every chunk row against one resident shard, applying
// MinShared, the Jaccard floor, Self filtering, and the TopK cap.
func (s *Streamer) probeShard(sh *shardIndex, start int, leftTokens [][]string, heaps []candHeap, seen map[string]bool) {
	shared := map[int]int{}
	for i, toks := range leftTokens {
		li := start + i
		clear(shared)
		clear(seen)
		for _, t := range toks {
			if seen[t] {
				continue
			}
			seen[t] = true
			if s.dfLeft[t] > s.maxLeft {
				continue
			}
			for _, ri := range sh.postings[t] {
				shared[ri]++
			}
		}
		// Deterministic probe order: right indices ascending, so the
		// TopK tie-break (first arrival wins on equal Shared) is stable.
		ris := make([]int, 0, len(shared))
		for ri := range shared {
			ris = append(ris, ri)
		}
		sort.Ints(ris)
		for _, ri := range ris {
			n := shared[ri]
			if n < s.cfg.MinShared {
				continue
			}
			if s.cfg.Self && li >= ri {
				continue
			}
			if s.cfg.JaccardFloor > 0 &&
				textsim.Jaccard(toks, s.rightTokens[ri]) < s.cfg.JaccardFloor {
				continue
			}
			s.push(&heaps[i], Candidate{Left: li, Right: ri, Shared: n})
		}
	}
}

// push offers a candidate to one left record's TopK heap, counting
// rejections and displacements as pruned.
func (s *Streamer) push(h *candHeap, c Candidate) {
	if s.cfg.TopK == 0 {
		*h = append(*h, c)
		return
	}
	if len(*h) < s.cfg.TopK {
		heap.Push(h, c)
		return
	}
	// Root is the weakest survivor: fewest shared tokens, highest right
	// index among equals. A newcomer must strictly beat it.
	root := (*h)[0]
	if c.Shared > root.Shared || (c.Shared == root.Shared && c.Right < root.Right) {
		(*h)[0] = c
		heap.Fix(h, 0)
		s.stats.Pruned++
		return
	}
	s.stats.Pruned++
}

// candHeap is a min-heap ordered worst-first: fewest shared tokens, and
// among equals the highest right index, so the weakest candidate sits at
// the root ready to be displaced.
type candHeap []Candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(a, b int) bool {
	if h[a].Shared != h[b].Shared {
		return h[a].Shared < h[b].Shared
	}
	return h[a].Right > h[b].Right
}
func (h candHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(Candidate)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
