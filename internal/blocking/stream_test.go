package blocking

import (
	"container/heap"
	"errors"
	"fmt"
	"testing"

	"wym/internal/data"
	"wym/internal/datagen"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"MaxDF zero", func(c *Config) { c.MaxDF = 0 }},
		{"MaxDF negative", func(c *Config) { c.MaxDF = -0.5 }},
		{"MaxDF above one", func(c *Config) { c.MaxDF = 1.5 }},
		{"negative MinShared", func(c *Config) { c.MinShared = -1 }},
		{"negative JaccardFloor", func(c *Config) { c.JaccardFloor = -0.1 }},
		{"JaccardFloor above one", func(c *Config) { c.JaccardFloor = 1.1 }},
		{"negative attr", func(c *Config) { c.Attrs = []int{-1} }},
		{"attr out of range", func(c *Config) { c.Attrs = []int{2} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate(2)
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate = %v, want ErrInvalidConfig", err)
			}
			// The batch entry point must surface the same rejection
			// instead of silently producing an empty candidate set.
			left := []data.Entity{{"a", "b"}}
			if _, err := Candidates(left, left, cfg); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Candidates = %v, want ErrInvalidConfig", err)
			}
		})
	}
	if err := DefaultConfig().Validate(2); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	// With an unknown attribute count the Attrs range check is skipped
	// but negative indices are still rejected.
	cfg := DefaultConfig()
	cfg.Attrs = []int{7}
	if err := cfg.Validate(0); err != nil {
		t.Fatalf("attrs with unknown arity rejected: %v", err)
	}
}

// drain pulls every candidate out of a stream.
func drain(t *testing.T, cs *CandidateStream) []Candidate {
	t.Helper()
	var out []Candidate
	for {
		c, ok := cs.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}

// streamAll runs the streamer over the whole left table in chunks of the
// given size and concatenates the candidates.
func streamAll(t *testing.T, s *Streamer, leftRows, chunk int) []Candidate {
	t.Helper()
	var out []Candidate
	for start := 0; start < leftRows; start += chunk {
		end := start + chunk
		if end > leftRows {
			end = leftRows
		}
		cs, err := s.Chunk(start, end)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, drain(t, cs)...)
	}
	return out
}

// TestStreamMatchesBatch pins the central invariant: with no TopK cap,
// the streaming path emits exactly the batch candidate set, regardless of
// the memory budget (shard count) and chunk size.
func TestStreamMatchesBatch(t *testing.T) {
	left, right, _ := tables(40, 160)
	cfg := DefaultConfig()
	cfg.MaxDF = 0.2
	want := mustCandidates(t, left, right, cfg)
	if len(want) == 0 {
		t.Fatal("batch produced no candidates; test tables broken")
	}
	for _, budget := range []int64{0, 1 << 12, 1 << 16} {
		for _, chunk := range []int{7, 50, len(left)} {
			s, err := NewStreamer(left, right, StreamConfig{Config: cfg, MemoryBudget: budget})
			if err != nil {
				t.Fatal(err)
			}
			got := streamAll(t, s, len(left), chunk)
			if len(got) != len(want) {
				t.Fatalf("budget %d chunk %d: %d candidates, want %d", budget, chunk, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("budget %d chunk %d: candidate %d = %+v, want %+v",
						budget, chunk, i, got[i], want[i])
				}
			}
			if budget > 0 && s.Stats().PeakIndexBytes > budget {
				t.Fatalf("peak index %d exceeds budget %d", s.Stats().PeakIndexBytes, budget)
			}
		}
	}
}

// TestStreamHonorsMemoryBudget asserts the resident index estimate stays
// under a tight budget that forces many shards.
func TestStreamHonorsMemoryBudget(t *testing.T) {
	left, right, truth := tables(60, 300)
	const budget = 8 << 10
	s, err := NewStreamer(left, right, StreamConfig{
		Config: Config{MaxDF: 0.2, MinShared: 1}, MemoryBudget: budget, TopK: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, s, len(left), 25)
	st := s.Stats()
	if st.Shards < 2 {
		t.Fatalf("budget %d built only %d shard(s); too loose to test", budget, st.Shards)
	}
	if st.PeakIndexBytes > budget {
		t.Fatalf("peak index %d bytes exceeds budget %d", st.PeakIndexBytes, budget)
	}
	if r := Recall(got, truth); r < 0.95 {
		t.Fatalf("sharded streaming recall = %v, want >= 0.95", r)
	}
}

func TestStreamTopKCapsAndPrunes(t *testing.T) {
	// One left record sharing tokens with many right records: TopK must
	// keep the strongest (most shared tokens, ties to lowest index).
	left := []data.Entity{{"alpha beta gamma delta"}}
	var right []data.Entity
	right = append(right, data.Entity{"alpha beta gamma"}) // 3 shared
	right = append(right, data.Entity{"alpha beta"})       // 2 shared
	for i := 0; i < 6; i++ {
		right = append(right, data.Entity{fmt.Sprintf("alpha filler%d", i)}) // 1 shared
	}
	s, err := NewStreamer(left, right, StreamConfig{
		Config: Config{MaxDF: 1.0}, TopK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Chunk(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cs)
	if len(got) != 3 {
		t.Fatalf("TopK=3 emitted %d candidates: %+v", len(got), got)
	}
	// Survivors: rights 0 (3 shared), 1 (2 shared), 2 (first 1-shared).
	want := []Candidate{{0, 0, 3}, {0, 1, 2}, {0, 2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if s.Stats().Pruned != 5 {
		t.Fatalf("pruned = %d, want 5", s.Stats().Pruned)
	}
	if s.Stats().Emitted != 3 {
		t.Fatalf("emitted = %d, want 3", s.Stats().Emitted)
	}
}

func TestStreamSelfMode(t *testing.T) {
	table := []data.Entity{
		{"digital camera x100", "fuji"},
		{"digital camera x-100", "fuji"},
		{"espresso maker", "delonghi"},
		{"digital camera x100 pro", "fuji"},
	}
	s, err := NewStreamer(table, table, StreamConfig{
		Config: Config{MaxDF: 1.0}, Self: true, MemoryBudget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, s, len(table), 2)
	if len(got) == 0 {
		t.Fatal("self mode produced no candidates")
	}
	seen := map[[2]int]bool{}
	for _, c := range got {
		if c.Left >= c.Right {
			t.Fatalf("self-pair or duplicate orientation: %+v", c)
		}
		key := [2]int{c.Left, c.Right}
		if seen[key] {
			t.Fatalf("pair %v emitted twice", key)
		}
		seen[key] = true
	}
	if !seen[[2]int{0, 1}] {
		t.Fatalf("duplicate cameras not candidates: %+v", got)
	}
}

func TestStreamChunkRange(t *testing.T) {
	left := []data.Entity{{"a"}}
	s, err := NewStreamer(left, left, StreamConfig{Config: Config{MaxDF: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 0}, {0, 2}, {1, 0}} {
		if _, err := s.Chunk(r[0], r[1]); err == nil {
			t.Fatalf("chunk %v accepted", r)
		}
	}
}

func TestStreamerRejectsBadConfig(t *testing.T) {
	left := []data.Entity{{"a"}}
	bad := []StreamConfig{
		{Config: Config{MaxDF: -1}},
		{Config: Config{MaxDF: 0.5}, MemoryBudget: -1},
		{Config: Config{MaxDF: 0.5}, TopK: -2},
	}
	for i, cfg := range bad {
		if _, err := NewStreamer(left, left, cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("case %d: err = %v, want ErrInvalidConfig", i, err)
		}
	}
}

// TestStreamRecallOnDatagenTables is the blocking-quality gate on the
// synthetic e2e tables: recall of blocking >= 0.95 under a budget that
// forces sharding.
func TestStreamRecallOnDatagenTables(t *testing.T) {
	p, _ := datagen.ProfileByKey("S-FZ")
	tp := datagen.GenerateTables(p, 800, 0.3)
	truth := map[int][]int{}
	for _, pr := range tp.Truth {
		truth[pr[0]] = append(truth[pr[0]], pr[1])
	}
	cfg := DefaultStreamConfig()
	cfg.MaxDF = 0.05
	cfg.MemoryBudget = 32 << 10
	s, err := NewStreamer(tp.Left, tp.Right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, s, len(tp.Left), 100)
	if r := Recall(got, truth); r < 0.95 {
		t.Fatalf("recall of blocking on datagen tables = %v, want >= 0.95", r)
	}
	if st := s.Stats(); st.PeakIndexBytes > cfg.MemoryBudget {
		t.Fatalf("peak index %d exceeds budget %d", st.PeakIndexBytes, cfg.MemoryBudget)
	}
}

// TestStreamAttrsSubset restricts blocking to one attribute and checks
// both paths (batch and stream) agree under the restriction — tokens in
// the excluded attribute must not create candidates.
func TestStreamAttrsSubset(t *testing.T) {
	left := []data.Entity{{"shared alpha", "only-left-one"}, {"unique beta", "shared-tail"}}
	right := []data.Entity{{"shared alpha", "different"}, {"gamma delta", "shared-tail"}}
	cfg := DefaultConfig()
	cfg.MaxDF = 1.0
	cfg.Attrs = []int{0}
	want := mustCandidates(t, left, right, cfg)
	if len(want) != 1 || want[0].Left != 0 || want[0].Right != 0 {
		t.Fatalf("attr-0 batch candidates = %+v", want)
	}
	s, err := NewStreamer(left, right, StreamConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, s, len(left), 1)
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("attr-0 stream candidates = %+v, want %+v", got, want)
	}
}

// TestStreamRemaining pins the Remaining countdown on a pull stream.
func TestStreamRemaining(t *testing.T) {
	left, right, _ := tables(5, 0)
	cfg := DefaultConfig()
	cfg.MaxDF = 1.0
	s, err := NewStreamer(left, right, StreamConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Chunk(0, len(left))
	if err != nil {
		t.Fatal(err)
	}
	total := cs.Remaining()
	if total == 0 {
		t.Fatal("no candidates to count")
	}
	for i := 0; ; i++ {
		if got := cs.Remaining(); got != total-i {
			t.Fatalf("after %d pulls Remaining = %d, want %d", i, got, total-i)
		}
		if _, ok := cs.Next(); !ok {
			break
		}
	}
	if cs.Remaining() != 0 {
		t.Fatalf("drained stream Remaining = %d", cs.Remaining())
	}
}

// TestCandHeapOrdering drives the top-k heap through the container/heap
// contract directly: pops come out worst-first — fewest shared tokens,
// ties broken toward the higher right index.
func TestCandHeapOrdering(t *testing.T) {
	h := &candHeap{}
	heap.Init(h)
	for _, c := range []Candidate{
		{Left: 0, Right: 3, Shared: 5},
		{Left: 0, Right: 1, Shared: 2},
		{Left: 0, Right: 2, Shared: 2},
		{Left: 0, Right: 0, Shared: 9},
	} {
		heap.Push(h, c)
	}
	want := []Candidate{
		{Left: 0, Right: 2, Shared: 2},
		{Left: 0, Right: 1, Shared: 2},
		{Left: 0, Right: 3, Shared: 5},
		{Left: 0, Right: 0, Shared: 9},
	}
	for i, w := range want {
		if got := heap.Pop(h).(Candidate); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}
