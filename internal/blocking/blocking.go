// Package blocking implements candidate-pair generation for entity
// matching at table scale. The paper's benchmark ships pre-blocked record
// pairs, but a deployed matcher must first cut the quadratic cross product
// of two entity tables down to a candidate set. This package provides the
// standard token-based approach: an inverted index over discriminative
// tokens with document-frequency pruning, plus an optional Jaccard
// pre-filter on the candidate pairs.
package blocking

import (
	"errors"
	"fmt"
	"sort"

	"wym/internal/data"
	"wym/internal/textsim"
	"wym/internal/tokenize"
)

// Config tunes the blocker.
type Config struct {
	// MaxDF prunes tokens appearing in more than this fraction of either
	// table: frequent tokens ("black", a shared brand) generate huge,
	// useless buckets. Default 0.1.
	MaxDF float64
	// MinShared is the number of shared index tokens required before a
	// pair becomes a candidate. Default 1.
	MinShared int
	// JaccardFloor drops candidates whose whole-record token Jaccard
	// similarity is below the floor (0 disables the filter).
	JaccardFloor float64
	// Attrs restricts indexing to the listed attribute indices
	// (nil = all attributes).
	Attrs []int
}

// DefaultConfig returns practical defaults.
func DefaultConfig() Config { return Config{MaxDF: 0.1, MinShared: 1} }

// ErrInvalidConfig is the sentinel every configuration rejection wraps:
// errors.Is(err, ErrInvalidConfig) catches them all. A bad blocker
// configuration used to degrade into a silently empty candidate set (an
// out-of-range attribute index simply indexes nothing); validation turns
// that class of operator error into a named failure instead.
var ErrInvalidConfig = errors.New("blocking: invalid config")

// Validate checks the configuration against the table schema. numAttrs is
// the attribute count of the tables to be blocked (0 skips the Attrs
// range check, for callers that validate before loading data). Every
// rejection wraps ErrInvalidConfig.
func (cfg Config) Validate(numAttrs int) error {
	if cfg.MaxDF <= 0 || cfg.MaxDF > 1 {
		return fmt.Errorf("%w: MaxDF %v outside (0,1]", ErrInvalidConfig, cfg.MaxDF)
	}
	if cfg.MinShared < 0 {
		return fmt.Errorf("%w: negative MinShared %d", ErrInvalidConfig, cfg.MinShared)
	}
	if cfg.JaccardFloor < 0 || cfg.JaccardFloor > 1 {
		return fmt.Errorf("%w: JaccardFloor %v outside [0,1]", ErrInvalidConfig, cfg.JaccardFloor)
	}
	for _, a := range cfg.Attrs {
		if a < 0 {
			return fmt.Errorf("%w: negative attribute index %d", ErrInvalidConfig, a)
		}
		if numAttrs > 0 && a >= numAttrs {
			return fmt.Errorf("%w: attribute index %d out of range (table has %d attributes)",
				ErrInvalidConfig, a, numAttrs)
		}
	}
	return nil
}

// numAttrsOf infers the attribute count from the first non-empty row of
// the given tables (0 when both are empty).
func numAttrsOf(tables ...[]data.Entity) int {
	for _, t := range tables {
		for _, e := range t {
			if len(e) > 0 {
				return len(e)
			}
		}
	}
	return 0
}

// Candidate is one generated pair: indices into the left and right tables
// with the number of shared index tokens.
type Candidate struct {
	Left, Right int
	Shared      int
}

// Candidates blocks two entity tables and returns candidate pairs sorted
// by (Left, Right). Both tables must share the schema's attribute order.
// An invalid configuration returns an error wrapping ErrInvalidConfig
// instead of silently producing an empty candidate set.
func Candidates(left, right []data.Entity, cfg Config) ([]Candidate, error) {
	if err := cfg.Validate(numAttrsOf(left, right)); err != nil {
		return nil, err
	}
	if cfg.MinShared == 0 {
		cfg.MinShared = 1
	}
	leftTokens := tokenized(left, cfg.Attrs)
	rightTokens := tokenized(right, cfg.Attrs)

	index := buildIndex(rightTokens)
	maxLeft := int(cfg.MaxDF * float64(len(left)))
	maxRight := int(cfg.MaxDF * float64(len(right)))
	if maxLeft < 1 {
		maxLeft = 1
	}
	if maxRight < 1 {
		maxRight = 1
	}
	dfLeft := docFreq(leftTokens)

	shared := make(map[[2]int]int)
	for li, toks := range leftTokens {
		seen := map[string]bool{}
		for _, t := range toks {
			if seen[t] {
				continue
			}
			seen[t] = true
			if dfLeft[t] > maxLeft {
				continue
			}
			bucket := index[t]
			if len(bucket) > maxRight {
				continue
			}
			for _, ri := range bucket {
				shared[[2]int{li, ri}]++
			}
		}
	}

	var out []Candidate
	for key, n := range shared {
		if n < cfg.MinShared {
			continue
		}
		if cfg.JaccardFloor > 0 {
			if textsim.Jaccard(leftTokens[key[0]], rightTokens[key[1]]) < cfg.JaccardFloor {
				continue
			}
		}
		out = append(out, Candidate{Left: key[0], Right: key[1], Shared: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out, nil
}

// Pairs materializes candidates as unlabeled record pairs ready for a
// matcher.
func Pairs(left, right []data.Entity, cands []Candidate) []data.Pair {
	out := make([]data.Pair, len(cands))
	for i, c := range cands {
		out[i] = data.Pair{ID: i, Left: left[c.Left], Right: right[c.Right]}
	}
	return out
}

// Stats summarizes a blocking run against the full cross product.
type Stats struct {
	LeftSize, RightSize int
	Candidates          int
	// Reduction is 1 - candidates/(|L|*|R|): the fraction of comparisons
	// saved.
	Reduction float64
}

// Summarize computes the reduction statistics.
func Summarize(left, right []data.Entity, cands []Candidate) Stats {
	s := Stats{LeftSize: len(left), RightSize: len(right), Candidates: len(cands)}
	total := float64(len(left) * len(right))
	if total > 0 {
		s.Reduction = 1 - float64(len(cands))/total
	}
	return s
}

// Recall computes the fraction of true pairs covered by the candidates.
// truth maps left indices to the matching right indices.
func Recall(cands []Candidate, truth map[int][]int) float64 {
	var total, found int
	covered := map[[2]int]bool{}
	for _, c := range cands {
		covered[[2]int{c.Left, c.Right}] = true
	}
	for li, ris := range truth {
		for _, ri := range ris {
			total++
			if covered[[2]int{li, ri}] {
				found++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(found) / float64(total)
}

func tokenized(es []data.Entity, attrs []int) [][]string {
	keep := map[int]bool{}
	for _, a := range attrs {
		keep[a] = true
	}
	out := make([][]string, len(es))
	for i, e := range es {
		var toks []string
		for a, v := range e {
			if len(attrs) > 0 && !keep[a] {
				continue
			}
			toks = append(toks, tokenize.SplitWords(v)...)
		}
		out[i] = toks
	}
	return out
}

func buildIndex(tokens [][]string) map[string][]int {
	index := make(map[string][]int)
	for i, toks := range tokens {
		seen := map[string]bool{}
		for _, t := range toks {
			if seen[t] {
				continue
			}
			seen[t] = true
			index[t] = append(index[t], i)
		}
	}
	return index
}

func docFreq(tokens [][]string) map[string]int {
	df := make(map[string]int)
	for _, toks := range tokens {
		seen := map[string]bool{}
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	return df
}

// SelfCandidates blocks one entity table against itself for deduplication,
// returning each unordered candidate pair once (Left < Right) and never
// pairing a record with itself.
func SelfCandidates(table []data.Entity, cfg Config) ([]Candidate, error) {
	raw, err := Candidates(table, table, cfg)
	if err != nil {
		return nil, err
	}
	out := raw[:0]
	for _, c := range raw {
		if c.Left < c.Right {
			out = append(out, c)
		}
	}
	return out, nil
}
