package blocking

import (
	"fmt"
	"math/rand"
	"testing"

	"wym/internal/data"
	"wym/internal/datagen"
)

// mustCandidates runs the batch blocker, failing the test on a
// configuration rejection.
func mustCandidates(t *testing.T, left, right []data.Entity, cfg Config) []Candidate {
	t.Helper()
	cands, err := Candidates(left, right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cands
}

// tables builds two entity tables with known ground truth: left[i] matches
// right[i] for i < nMatch (the rest are unrelated products).
func tables(nMatch, nNoise int) (left, right []data.Entity, truth map[int][]int) {
	truth = map[int][]int{}
	rng := rand.New(rand.NewSource(3))
	brands := []string{"sony", "canon", "dell", "acer", "asus"}
	kinds := []string{"camera", "laptop", "monitor", "printer", "router"}
	for i := 0; i < nMatch; i++ {
		code := fmt.Sprintf("md%04d", i)
		brand := brands[rng.Intn(len(brands))]
		kind := kinds[rng.Intn(len(kinds))]
		left = append(left, data.Entity{kind + " " + code, brand})
		right = append(right, data.Entity{kind + " pro " + code, brand})
		truth[i] = []int{i}
	}
	for i := 0; i < nNoise; i++ {
		left = append(left, data.Entity{fmt.Sprintf("widget wl%04d", i), "generic"})
		right = append(right, data.Entity{fmt.Sprintf("gadget gr%04d", i), "generic"})
	}
	return left, right, truth
}

func TestCandidatesCoverTruth(t *testing.T) {
	left, right, truth := tables(50, 200)
	cands := mustCandidates(t, left, right, DefaultConfig())
	if r := Recall(cands, truth); r < 0.99 {
		t.Fatalf("blocking recall = %v, want ~1", r)
	}
	stats := Summarize(left, right, cands)
	if stats.Reduction < 0.9 {
		t.Fatalf("reduction = %v, want >= 0.9 (candidates %d of %d)",
			stats.Reduction, stats.Candidates, stats.LeftSize*stats.RightSize)
	}
}

func TestCandidatesSorted(t *testing.T) {
	left, right, _ := tables(20, 50)
	cands := mustCandidates(t, left, right, DefaultConfig())
	for i := 1; i < len(cands); i++ {
		a, b := cands[i-1], cands[i]
		if a.Left > b.Left || (a.Left == b.Left && a.Right >= b.Right) {
			t.Fatalf("candidates not sorted at %d: %+v, %+v", i, a, b)
		}
	}
}

func TestMinShared(t *testing.T) {
	left := []data.Entity{{"alpha beta gamma"}}
	right := []data.Entity{{"alpha delta"}, {"alpha beta zeta"}}
	cfg := DefaultConfig()
	cfg.MaxDF = 1.0
	cfg.MinShared = 2
	cands := mustCandidates(t, left, right, cfg)
	if len(cands) != 1 || cands[0].Right != 1 {
		t.Fatalf("MinShared filter wrong: %+v", cands)
	}
}

func TestMaxDFDropsFrequentTokens(t *testing.T) {
	// Every record shares "common"; with a tight MaxDF it must not create
	// the cross product.
	var left, right []data.Entity
	for i := 0; i < 50; i++ {
		left = append(left, data.Entity{fmt.Sprintf("common l%04d", i)})
		right = append(right, data.Entity{fmt.Sprintf("common r%04d", i)})
	}
	cands := mustCandidates(t, left, right, DefaultConfig())
	if len(cands) != 0 {
		t.Fatalf("frequent token produced %d candidates", len(cands))
	}
}

func TestJaccardFloor(t *testing.T) {
	left := []data.Entity{{"alpha beta gamma delta"}}
	right := []data.Entity{{"alpha zzz yyy xxx www vvv"}}
	cfg := DefaultConfig()
	cfg.MaxDF = 1.0
	cands := mustCandidates(t, left, right, cfg)
	if len(cands) != 1 {
		t.Fatalf("expected 1 raw candidate, got %d", len(cands))
	}
	cfg.JaccardFloor = 0.3
	cands = mustCandidates(t, left, right, cfg)
	if len(cands) != 0 {
		t.Fatalf("Jaccard floor did not filter: %+v", cands)
	}
}

func TestAttrsRestriction(t *testing.T) {
	left := []data.Entity{{"unique1", "shared"}}
	right := []data.Entity{{"unique2", "shared"}}
	cfg := DefaultConfig()
	cfg.MaxDF = 1.0
	// Indexing only attribute 0: no shared tokens, no candidates.
	cfg.Attrs = []int{0}
	if cands := mustCandidates(t, left, right, cfg); len(cands) != 0 {
		t.Fatalf("attr restriction ignored: %+v", cands)
	}
	cfg.Attrs = []int{1}
	if cands := mustCandidates(t, left, right, cfg); len(cands) != 1 {
		t.Fatalf("attr 1 should block the pair: %+v", cands)
	}
}

func TestPairs(t *testing.T) {
	left := []data.Entity{{"a"}, {"b"}}
	right := []data.Entity{{"c"}}
	ps := Pairs(left, right, []Candidate{{Left: 1, Right: 0}})
	if len(ps) != 1 || ps[0].Left[0] != "b" || ps[0].Right[0] != "c" {
		t.Fatalf("pairs = %+v", ps)
	}
}

func TestRecallEdgeCases(t *testing.T) {
	if Recall(nil, nil) != 1 {
		t.Fatal("empty truth should give recall 1")
	}
	if Recall(nil, map[int][]int{0: {0}}) != 0 {
		t.Fatal("no candidates should give recall 0")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, nil, nil)
	if s.Reduction != 0 || s.Candidates != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestBlockingOnSyntheticBenchmark(t *testing.T) {
	// Split a benchmark dataset's matching pairs into two tables and check
	// the blocker recovers most true pairs.
	p, _ := datagen.ProfileByKey("S-DA")
	d := datagen.Generate(p, 0.05)
	var left, right []data.Entity
	truth := map[int][]int{}
	for _, pair := range d.Pairs {
		if pair.Label != data.Match {
			continue
		}
		truth[len(left)] = []int{len(right)}
		left = append(left, pair.Left)
		right = append(right, pair.Right)
	}
	cfg := DefaultConfig()
	cfg.MaxDF = 0.3 // small tables: allow more frequent tokens
	cands := mustCandidates(t, left, right, cfg)
	if r := Recall(cands, truth); r < 0.9 {
		t.Fatalf("benchmark blocking recall = %v", r)
	}
}

func BenchmarkCandidates(b *testing.B) {
	left, right, _ := tables(200, 800)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Candidates(left, right, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSelfCandidates(t *testing.T) {
	table := []data.Entity{
		{"digital camera x100", "fuji"},
		{"digital camera x-100", "fuji"},
		{"espresso maker", "delonghi"},
	}
	cfg := DefaultConfig()
	cfg.MaxDF = 1.0
	cands, err := SelfCandidates(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Left >= c.Right {
			t.Fatalf("self-pair or duplicate orientation: %+v", c)
		}
	}
	// The two camera rows must be a candidate.
	var found bool
	for _, c := range cands {
		if c.Left == 0 && c.Right == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate rows not candidates: %+v", cands)
	}
}
