package blocking

import (
	"errors"
	"strings"
	"testing"

	"wym/internal/data"
)

// FuzzBlockingCandidates throws arbitrary table contents and configuration
// knobs at the blocker. Invariants: never panic; an invalid configuration
// is reported via ErrInvalidConfig; on success every candidate is in-range,
// deduplicated, and sorted; and the streaming path agrees with the batch
// path when no TopK cap is set.
func FuzzBlockingCandidates(f *testing.F) {
	f.Add("camera x100 fuji\ncamera x-100 fuji", "espresso maker\ncamera x100", 0.5, 1, 0.0, int64(128))
	f.Add("a b c", "", 1.0, 0, 0.2, int64(0))
	f.Add("", "x", -0.3, -1, 1.5, int64(-5))
	f.Add("one\ntwo\nthree", "one two\nthree four", 0.9, 2, 0.1, int64(1))
	f.Fuzz(func(t *testing.T, leftRaw, rightRaw string, maxDF float64, minShared int, jaccard float64, budget int64) {
		left := fuzzTable(leftRaw)
		right := fuzzTable(rightRaw)
		cfg := Config{MaxDF: maxDF, MinShared: minShared, JaccardFloor: jaccard}

		cands, err := Candidates(left, right, cfg)
		if err != nil {
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return
		}
		seen := map[[2]int]bool{}
		for i, c := range cands {
			if c.Left < 0 || c.Left >= len(left) || c.Right < 0 || c.Right >= len(right) {
				t.Fatalf("candidate %d out of range: %+v (tables %dx%d)", i, c, len(left), len(right))
			}
			key := [2]int{c.Left, c.Right}
			if seen[key] {
				t.Fatalf("duplicate candidate %v", key)
			}
			seen[key] = true
			if i > 0 {
				p := cands[i-1]
				if p.Left > c.Left || (p.Left == c.Left && p.Right >= c.Right) {
					t.Fatalf("candidates unsorted at %d: %+v then %+v", i, p, c)
				}
			}
		}

		if budget < 0 {
			// Stream-only knobs have their own validation; a negative
			// budget must be rejected, then fuzz the positive mirror.
			if _, err := NewStreamer(left, right, StreamConfig{Config: cfg, MemoryBudget: budget}); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("negative budget accepted: %v", err)
			}
			budget = -budget
		}
		s, err := NewStreamer(left, right, StreamConfig{Config: cfg, MemoryBudget: budget})
		if err != nil {
			t.Fatalf("batch accepted config but streamer rejected it: %v", err)
		}
		var streamed []Candidate
		for start := 0; start < len(left); start += 2 {
			end := start + 2
			if end > len(left) {
				end = len(left)
			}
			cs, err := s.Chunk(start, end)
			if err != nil {
				t.Fatal(err)
			}
			for {
				c, ok := cs.Next()
				if !ok {
					break
				}
				streamed = append(streamed, c)
			}
		}
		if len(streamed) != len(cands) {
			t.Fatalf("stream emitted %d candidates, batch %d", len(streamed), len(cands))
		}
		for i := range streamed {
			if streamed[i] != cands[i] {
				t.Fatalf("stream candidate %d = %+v, batch %+v", i, streamed[i], cands[i])
			}
		}
	})
}

// fuzzTable parses newline-separated rows of space-separated attribute
// values into a single-attribute entity table.
func fuzzTable(raw string) []data.Entity {
	if raw == "" {
		return nil
	}
	lines := strings.Split(raw, "\n")
	out := make([]data.Entity, 0, len(lines))
	for _, l := range lines {
		out = append(out, data.Entity{l})
	}
	return out
}
