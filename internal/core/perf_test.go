package core

// Tests guarding the hot-path overhaul: concurrent Predict safety on a
// shared model (the wym-server serving pattern), and the golden-unit
// equivalence of the dot-product similarity matrix with the reference
// cosine-closure formulation of Algorithm 1.

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"wym/internal/units"
	"wym/internal/vec"
)

// TestPredictConcurrentSharedModel hammers one trained system with
// concurrent Predict and Explain calls — the wym-server usage pattern: a
// model is loaded once and serves every request goroutine. Run under
// `go test -race` this doubles as the data-race check for the frozen
// embedding cache, the scorer network and the classifier.
func TestPredictConcurrentSharedModel(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				p := test.Pairs[(w*31+i)%test.Size()]
				label, proba := sys.Predict(p)
				if proba < 0 || proba > 1 || math.IsNaN(proba) {
					t.Errorf("proba = %v", proba)
					return
				}
				if label != 0 && label != 1 {
					t.Errorf("label = %d", label)
					return
				}
				if i%8 == 0 {
					sys.Explain(p)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPredictConcurrentLoadedModel repeats the exercise on a system that
// went through Save/Load: a restored system starts with a cold, unfrozen
// embedding cache, so concurrent predictions drive the sharded overflow
// tier (writes included) rather than the read-only frozen tier.
func TestPredictConcurrentLoadedModel(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				p := test.Pairs[(w*17+i)%test.Size()]
				wantLabel, wantProba := sys.Predict(p)
				label, proba := loaded.Predict(p)
				if label != wantLabel || math.Abs(proba-wantProba) > 1e-12 {
					t.Errorf("loaded system diverged: (%d, %v) != (%d, %v)",
						label, proba, wantLabel, wantProba)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDiscoverGoldenDotVsCosine is the golden-unit equivalence check for
// the dot-product fast path: on real benchmark records, Algorithm 1 run on
// the raw-dot similarity matrix must produce exactly the units of the
// reference formulation that evaluates vec.Cosine pair by pair.
func TestDiscoverGoldenDotVsCosine(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	if test.Size() == 0 {
		t.Fatal("empty test split")
	}
	for i, p := range test.Pairs {
		rec := sys.Process(p) // production path: NormalizedVecs + matrix
		lv, rv := rec.LeftVecs, rec.RightVecs
		ref := units.Input{
			Left: rec.Left, Right: rec.Right,
			LeftVecs: lv, RightVecs: rv,
			NumAttrs: len(sys.Schema()),
			// Reference path: full cosine, norms recomputed per pair.
			SimOverride: func(l, r int) float64 { return vec.Cosine(lv[l], rv[r]) },
		}
		want := units.Discover(ref, sys.cfg.Thresholds)
		got := rec.Units
		if len(got) != len(want) {
			t.Fatalf("record %d: %d units != %d reference units", i, len(got), len(want))
		}
		for j := range got {
			g, w := got[j], want[j]
			if g.Kind != w.Kind || g.Left != w.Left || g.Right != w.Right ||
				g.Stage != w.Stage || g.Attr != w.Attr {
				t.Fatalf("record %d unit %d: %+v != reference %+v", i, j, g, w)
			}
			// The dot product of unit vectors and the cosine may differ in
			// the last ulp (the cosine divides by norms within rounding
			// error of 1); anything beyond that is a real bug.
			if math.Abs(g.Sim-w.Sim) > 1e-12 {
				t.Fatalf("record %d unit %d: sim %v != reference %v", i, j, g.Sim, w.Sim)
			}
		}
	}
}
