package core

import (
	"fmt"
	"math"
	"testing"

	"wym/internal/data"
	"wym/internal/datagen"
	"wym/internal/nn"
	"wym/internal/relevance"
	"wym/internal/units"
)

// fastConfig returns a configuration sized for tests: smaller scorer
// network and fewer fine-tune pairs, everything else paper-default.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ScorerNN = relevance.NNConfig{
		Hidden: []int{32, 16},
		Train:  nn.Config{Epochs: 15, BatchSize: 64, LR: 1e-3, Seed: 1},
		Seed:   1,
	}
	cfg.MaxFineTunePairs = 300
	return cfg
}

type trained struct {
	sys  *System
	test *data.Dataset
}

var trainCache = map[string]trained{}

// trainOn generates a scaled dataset, splits 60-20-20 and trains. Results
// for the default fastConfig are cached across tests to keep the suite
// quick; pass cache=false for variant configs.
func trainOn(t *testing.T, key string, scale float64, cfg Config) (*System, *data.Dataset) {
	t.Helper()
	cacheKey := fmt.Sprintf("%s@%v", key, scale)
	if got, ok := trainCache[cacheKey]; ok {
		return got.sys, got.test
	}
	p, ok := datagen.ProfileByKey(key)
	if !ok {
		t.Fatalf("unknown profile %q", key)
	}
	d := datagen.Generate(p, scale)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := Train(train, valid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainCache[cacheKey] = trained{sys, test}
	return sys, test
}

func f1Of(pred, labels []int) float64 {
	var tp, fp, fn int
	for i := range labels {
		switch {
		case pred[i] == 1 && labels[i] == 1:
			tp++
		case pred[i] == 1 && labels[i] == 0:
			fp++
		case pred[i] == 0 && labels[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

func TestTrainAndPredictEasyDataset(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	f1 := f1Of(sys.PredictAll(test), test.Labels())
	if f1 < 0.9 {
		t.Fatalf("S-FZ F1 = %v, want >= 0.9 (report: %+v)", f1, sys.Report())
	}
}

func TestTrainAndPredictMediumDataset(t *testing.T) {
	sys, test := trainOn(t, "S-DA", 0.08, fastConfig())
	f1 := f1Of(sys.PredictAll(test), test.Labels())
	if f1 < 0.8 {
		t.Fatalf("S-DA F1 = %v, want >= 0.8 (model %s)", f1, sys.ModelName())
	}
}

func TestTrainRejectsEmptySets(t *testing.T) {
	d := datagen.Generate(mustProfile(t, "S-FZ"), 1.0)
	if _, err := Train(nil, d, fastConfig()); err == nil {
		t.Fatal("expected error on nil training set")
	}
	if _, err := Train(d, &data.Dataset{}, fastConfig()); err == nil {
		t.Fatal("expected error on empty validation set")
	}
}

func mustProfile(t *testing.T, key string) datagen.Profile {
	t.Helper()
	p, ok := datagen.ProfileByKey(key)
	if !ok {
		t.Fatalf("unknown profile %q", key)
	}
	return p
}

func TestExplainStructure(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	for _, pair := range test.Pairs[:10] {
		ex := sys.Explain(pair)
		if ex.Proba < 0 || ex.Proba > 1 || math.IsNaN(ex.Proba) {
			t.Fatalf("proba = %v", ex.Proba)
		}
		if (ex.Prediction == data.Match) != (ex.Proba >= 0.5) {
			t.Fatalf("prediction/proba inconsistent: %d vs %v", ex.Prediction, ex.Proba)
		}
		if len(ex.Units) == 0 {
			t.Fatal("explanation has no units")
		}
		for _, u := range ex.Units {
			if u.Left == "" && u.Right == "" {
				t.Fatalf("unit with no tokens: %+v", u)
			}
			if u.Kind == units.Paired && (u.Left == "" || u.Right == "") {
				t.Fatalf("paired unit missing a side: %+v", u)
			}
			if u.Relevance < -1 || u.Relevance > 1 {
				t.Fatalf("relevance out of range: %v", u.Relevance)
			}
			if math.IsNaN(u.Impact) || math.IsInf(u.Impact, 0) {
				t.Fatalf("impact not finite: %v", u.Impact)
			}
		}
	}
}

func TestExplainImpactsAlignWithPrediction(t *testing.T) {
	// Summed impacts should correlate with the decision over the test set:
	// records predicted Match should have a higher total impact than
	// records predicted NonMatch.
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	var matchTotal, nonTotal float64
	var nMatch, nNon int
	for _, pair := range test.Pairs {
		ex := sys.Explain(pair)
		var sum float64
		for _, u := range ex.Units {
			sum += u.Impact
		}
		if ex.Prediction == data.Match {
			matchTotal += sum
			nMatch++
		} else {
			nonTotal += sum
			nNon++
		}
	}
	if nMatch == 0 || nNon == 0 {
		t.Fatal("degenerate predictions")
	}
	if matchTotal/float64(nMatch) <= nonTotal/float64(nNon) {
		t.Fatalf("impacts do not separate: match %v <= non %v",
			matchTotal/float64(nMatch), nonTotal/float64(nNon))
	}
}

func TestPredictConsistentWithExplain(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	for _, pair := range test.Pairs[:20] {
		label, proba := sys.Predict(pair)
		ex := sys.Explain(pair)
		if label != ex.Prediction || math.Abs(proba-ex.Proba) > 1e-12 {
			t.Fatalf("Predict and Explain disagree: %d/%v vs %d/%v",
				label, proba, ex.Prediction, ex.Proba)
		}
	}
}

func TestVariantsTrain(t *testing.T) {
	// Every Table 4 variant must train and produce a usable matcher.
	variants := map[string]func(*Config){
		"BERT-pt":       func(c *Config) { c.Embedding = BERTPretrained },
		"BERT-ft":       func(c *Config) { c.Embedding = BERTFinetuned },
		"JaroWinkler":   func(c *Config) { c.Embedding = JaroWinkler },
		"binary scorer": func(c *Config) { c.Scorer = ScorerBinary },
		"cosine scorer": func(c *Config) { c.Scorer = ScorerCosine },
		"binary JW":     func(c *Config) { c.Embedding = JaroWinkler; c.Scorer = ScorerBinary },
		"simplified":    func(c *Config) { c.Features = FeaturesSimplified },
		"code exact":    func(c *Config) { c.CodeExact = true },
	}
	p := mustProfile(t, "S-FZ")
	d := datagen.Generate(p, 1.0)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	for name, mutate := range variants {
		name, mutate := name, mutate
		t.Run(name, func(t *testing.T) {
			cfg := fastConfig()
			mutate(&cfg)
			sys, err := Train(train, valid, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if f1 := f1Of(sys.PredictAll(test), test.Labels()); f1 < 0.6 {
				t.Fatalf("variant F1 = %v, want >= 0.6", f1)
			}
		})
	}
}

func TestTimingRecorded(t *testing.T) {
	sys, _ := trainOn(t, "S-FZ", 1.0, fastConfig())
	timing := sys.TrainingTiming()
	if timing.Total() <= 0 {
		t.Fatalf("timing not recorded: %+v", timing)
	}
	if timing.UnitGen <= 0 || timing.ModelSelect <= 0 {
		t.Fatalf("stage timings missing: %+v", timing)
	}
}

func TestReportHasTenModels(t *testing.T) {
	sys, _ := trainOn(t, "S-FZ", 1.0, fastConfig())
	if len(sys.Report()) != 10 {
		t.Fatalf("report rows = %d, want 10", len(sys.Report()))
	}
	if sys.ModelName() == "" {
		t.Fatal("no model selected")
	}
}

func TestProcessAllPreservesOrder(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	recs := sys.ProcessAll(test)
	for i, rec := range recs {
		direct := sys.Process(test.Pairs[i])
		if len(rec.Units) != len(direct.Units) {
			t.Fatalf("record %d differs between ProcessAll and Process", i)
		}
	}
}

func TestDefaultThresholdsApplied(t *testing.T) {
	cfg := fastConfig()
	cfg.Thresholds = units.Thresholds{} // zero value must fall back to paper's
	p := mustProfile(t, "S-FZ")
	d := datagen.Generate(p, 1.0)
	train, valid, _ := d.MustSplit(0.6, 0.2, 1)
	if _, err := Train(train, valid, cfg); err != nil {
		t.Fatal(err)
	}
}

// fullDataset generates a full-scale dataset for a profile (test helper
// shared with the persistence tests).
func fullDataset(p datagen.Profile) *data.Dataset {
	return datagen.Generate(p, 1.0)
}

func TestPredictDegenerateRecords(t *testing.T) {
	// Records with blank or one-sided content must not panic and must
	// yield a valid probability.
	sys, _ := trainOn(t, "S-FZ", 1.0, fastConfig())
	schema := sys.Schema()
	blank := make(data.Entity, len(schema))
	full := data.Entity{"the blue bistro", "10 main st", "boston", "555 010 2030"}
	cases := []data.Pair{
		{Left: blank, Right: blank},
		{Left: full, Right: blank},
		{Left: blank, Right: full},
		{Left: full, Right: full},
	}
	for i, p := range cases {
		label, proba := sys.Predict(p)
		if proba < 0 || proba > 1 || math.IsNaN(proba) {
			t.Fatalf("case %d: proba = %v", i, proba)
		}
		if label != data.Match && label != data.NonMatch {
			t.Fatalf("case %d: label = %d", i, label)
		}
		ex := sys.Explain(p)
		for _, u := range ex.Units {
			if math.IsNaN(u.Impact) {
				t.Fatalf("case %d: NaN impact", i)
			}
		}
	}
	// Identical entities should lean strongly toward match.
	if label, proba := sys.Predict(data.Pair{Left: full, Right: full}); label != data.Match {
		t.Fatalf("identical entities predicted non-match (p=%v)", proba)
	}
}

func TestExplainRelevanceSymmetryEndToEnd(t *testing.T) {
	// Swapping left and right descriptions must keep paired-unit relevance
	// identical (challenge R3 verified through the whole pipeline).
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	for _, p := range test.Pairs[:10] {
		fwd := sys.Explain(p)
		rev := sys.Explain(data.Pair{Left: p.Right, Right: p.Left, Label: p.Label})
		fwdRel := map[string]float64{}
		for _, u := range fwd.Units {
			if u.Kind == units.Paired {
				fwdRel[pairKey(u.Left, u.Right)] = u.Relevance
			}
		}
		for _, u := range rev.Units {
			if u.Kind != units.Paired {
				continue
			}
			if want, ok := fwdRel[pairKey(u.Right, u.Left)]; ok {
				if math.Abs(u.Relevance-want) > 1e-9 {
					t.Fatalf("relevance asymmetry for (%s,%s): %v vs %v",
						u.Left, u.Right, u.Relevance, want)
				}
			}
		}
	}
}

func pairKey(a, b string) string { return a + "\x00" + b }

func TestTuneThresholds(t *testing.T) {
	p := mustProfile(t, "S-FZ")
	d := datagen.Generate(p, 1.0)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	grid := []units.Thresholds{
		{Theta: 0.55, Eta: 0.60, Epsilon: 0.65},
		{Theta: 0.60, Eta: 0.65, Epsilon: 0.70},
	}
	best, results, err := TuneThresholds(train, valid, fastConfig(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.ValidF1 < 0 || r.ValidF1 > 1 {
			t.Fatalf("valid F1 = %v", r.ValidF1)
		}
	}
	if f1 := f1Of(best.PredictAll(test), test.Labels()); f1 < 0.9 {
		t.Fatalf("tuned system F1 = %v", f1)
	}
}

func TestTuneThresholdsDefaultGrid(t *testing.T) {
	if len(DefaultThresholdGrid) == 0 {
		t.Fatal("empty default grid")
	}
	for _, th := range DefaultThresholdGrid {
		if !(th.Theta <= th.Eta && th.Eta <= th.Epsilon) {
			t.Fatalf("grid triple not increasing: %+v", th)
		}
	}
}

func TestAttributeImpact(t *testing.T) {
	schema := data.Schema{"name", "brand"}
	ex := Explanation{Units: []UnitExplanation{
		{Attr: 0, Impact: 0.3},
		{Attr: 0, Impact: -0.1},
		{Attr: 1, Impact: 0.5},
		{Attr: 9, Impact: 99}, // out of schema: ignored
	}}
	got := AttributeImpact(schema, ex)
	if math.Abs(got[0]-0.2) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("attribute impacts = %v", got)
	}
}
