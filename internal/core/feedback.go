package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"

	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/feedback"
	"wym/internal/tokenize"
	"wym/internal/vec"
)

// Online learning (DESIGN §13): confirmed/corrected pair labels fold
// into the fitted system without retraining, through two complementary
// deterministic updates.
//
// Geometry repair: each label is expanded into contrastive token pairs
// by best-similarity alignment against the *pre-fine-tune* base
// embeddings — so the derived pairs for a label never depend on what
// feedback was applied before it — and the Hebbian map is recompiled
// over the enlarged pair multiset (embed.Hebbian.Apply). This pulls
// drifted surface forms back toward their trained counterparts so unit
// discovery pairs them again.
//
// Decision recalibration: the match threshold on the classifier proba
// is re-fit over the full accumulated label multiset, scored through
// the updated embeddings. The relevance scorer and classifier were
// fitted to the training-time feature distribution; when the data
// drifts, true matches still separate from non-matches by proba but
// the 0.5 cutoff lands on the wrong side of them. Choosing the cutoff
// that maximizes F1 on the human-adjudicated labels converts a handful
// of labels directly into restored recall without touching the fitted
// (interpretable) model.
//
// Both updates are pure functions of the accumulated label *multiset*:
// any batching or ordering of the same labels converges to the same
// model, which is what lets a journal replay reproduce a served model
// fingerprint-for-fingerprint after a crash.

// ApplyFeedback returns a new System with the labeled pairs folded into
// the contrastive fine-tune. The receiver is never mutated — in-flight
// predictions against it stay consistent, and serving swaps the
// returned system in atomically (wym.ModelRef). The scorer, feature
// space, and classifier are shared with the receiver (they are
// read-only at serve time); the embedding source is replaced and the
// pipeline engine rebuilt through the standard rebuildEngine path.
//
// ApplyFeedback fails on untrained systems, on read-only arena-backed
// systems (fold feedback into the gob artifact and re-convert), on
// embedding variants without a fine-tuned layer (BERTPretrained,
// JaroWinkler), and on models saved before pair retention existed.
func (s *System) ApplyFeedback(ctx context.Context, labels []feedback.Label) (*System, error) {
	if s.model == nil || s.scorer == nil || s.source == nil {
		return nil, fmt.Errorf("core: cannot apply feedback to an untrained system")
	}
	if s.arena != nil {
		return nil, fmt.Errorf("core: arena-backed model (%s) is read-only; apply feedback to the gob artifact and re-convert", s.Format())
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("core: empty feedback batch")
	}
	h, err := s.hebbian()
	if err != nil {
		return nil, err
	}
	pos, neg, err := s.feedbackPairs(ctx, h.Base, labels)
	if err != nil {
		return nil, err
	}
	nh, err := h.WithApplied(ctx, pos, neg)
	if err != nil {
		return nil, err
	}
	ns := *s
	ns.source = embed.NewCache(nh)
	ns.fbLabels = mergeLabels(s.fbLabels, labels)
	ns.feedbackN = len(ns.fbLabels)
	// Recalibrate the decision threshold over the accumulated labels,
	// scored through the updated embeddings (threshold does not affect
	// probas, so building the engine before calibrating is sound).
	ns.fbThreshold = 0
	ns.rebuildEngine()
	ns.fbThreshold = calibrateThreshold(&ns, ns.fbLabels)
	ns.rebuildEngine()
	return &ns, nil
}

// DecisionThreshold returns the match cutoff on the classifier proba:
// 0.5 until feedback recalibrates it. calibrateThreshold only ever
// returns positive cutoffs, so 0 is a reliable "unset" sentinel here.
func (s *System) DecisionThreshold() float64 {
	if s.fbThreshold > 0 {
		return s.fbThreshold
	}
	return 0.5
}

// mergeLabels returns the canonical ordering of the union multiset:
// sorted by (left entity, right entity, polarity). Any batching of the
// same labels produces the same slice, making every downstream update a
// function of the label multiset alone.
func mergeLabels(old, add []feedback.Label) []feedback.Label {
	out := make([]feedback.Label, 0, len(old)+len(add))
	out = append(out, old...)
	out = append(out, add...)
	sort.SliceStable(out, func(i, j int) bool { return labelKey(out[i]) < labelKey(out[j]) })
	return out
}

// labelKey renders a label's canonical sort/hash key. Attribute values
// are delimited with bytes that cannot appear inside them after
// tokenization-safe joining (0x00/0x01 are not valid text).
func labelKey(lb feedback.Label) string {
	var b strings.Builder
	for _, a := range lb.Left {
		b.WriteString(a)
		b.WriteByte(0x00)
	}
	b.WriteByte(0x01)
	for _, a := range lb.Right {
		b.WriteString(a)
		b.WriteByte(0x00)
	}
	b.WriteByte(0x01)
	if lb.Match {
		b.WriteByte('M')
	} else {
		b.WriteByte('U')
	}
	return b.String()
}

// calibrateThreshold scores every accumulated label through the updated
// system and returns the cutoff maximizing F1 over them. Candidates are
// the observed probas plus the 0.5 default; ties prefer the candidate
// closest to (then, exactly) 0.5, so feedback that carries no signal —
// or no positive labels at all — leaves the default cutoff in place.
// Non-positive probas are excluded as candidates, so the returned
// threshold is always > 0 — fbThreshold == 0 therefore unambiguously
// means "never calibrated" (DecisionThreshold and the persisted
// FbThreshold/FeedbackThreshold fields rely on that invariant).
func calibrateThreshold(s *System, labels []feedback.Label) float64 {
	probas := make([]float64, len(labels))
	for i, lb := range labels {
		_, probas[i] = s.Predict(data.Pair{Left: lb.Left, Right: lb.Right})
	}
	cands := make([]float64, 0, len(probas)+1)
	for _, p := range probas {
		if p > 0 {
			cands = append(cands, p)
		}
	}
	cands = append(cands, 0.5)
	sort.Float64s(cands)
	f1At := func(t float64) float64 {
		var tp, fp, fn int
		for i, p := range probas {
			switch {
			case p >= t && labels[i].Match:
				tp++
			case p >= t:
				fp++
			case labels[i].Match:
				fn++
			}
		}
		if 2*tp+fp+fn == 0 {
			return 0
		}
		return float64(2*tp) / float64(2*tp+fp+fn)
	}
	best, bestF1 := 0.5, f1At(0.5)
	for _, c := range cands {
		if c == best {
			continue
		}
		f := f1At(c)
		if f > bestF1 ||
			(f == bestF1 && math.Abs(c-0.5) < math.Abs(best-0.5)) {
			best, bestF1 = c, f
		}
	}
	return best
}

// FeedbackCount returns the number of labels folded in by ApplyFeedback
// over this model's lifetime (carried through Save/Load and into arena
// conversions).
func (s *System) FeedbackCount() int { return s.feedbackN }

// FeedbackFingerprint identifies the feedback state of the model:
// "fnv64:%016x" over the canonically ordered feedback label multiset,
// or "" when no feedback has been applied. Replaying the same label set
// in any order reproduces the same fingerprint — the crash-recovery e2e
// asserts on it.
func (s *System) FeedbackFingerprint() string {
	if s.feedbackFP != "" {
		return s.feedbackFP // arena-backed: carried in metadata
	}
	if len(s.fbLabels) == 0 {
		return ""
	}
	h := fnv.New64a()
	for _, lb := range s.fbLabels {
		io.WriteString(h, labelKey(lb))
		h.Write([]byte{0x02})
	}
	return fmt.Sprintf("fnv64:%016x", h.Sum64())
}

// SupportsFeedback reports whether ApplyFeedback can work on this
// system: trained, gob-backed, with a pair-retaining fine-tuned layer.
func (s *System) SupportsFeedback() bool {
	if s.model == nil || s.scorer == nil || s.source == nil || s.arena != nil {
		return false
	}
	_, err := s.hebbian()
	return err == nil
}

// hebbian unwraps the fine-tuned layer of the embedding stack.
func (s *System) hebbian() (*embed.Hebbian, error) {
	src := s.source
	if c, ok := src.(*embed.Cache); ok {
		src = c.Base
	}
	h, ok := src.(*embed.Hebbian)
	if !ok {
		return nil, fmt.Errorf("core: embedding variant has no fine-tuned layer (feedback requires SBERT or BERTFinetuned)")
	}
	if !h.SupportsApply() {
		return nil, fmt.Errorf("core: model predates fine-tune pair retention; retrain to enable feedback")
	}
	return h, nil
}

// Feedback pair-derivation floors. Training's contrastivePairs only
// harvests Paired units, but on clean data those align identical token
// texts, which carry no fine-tuning signal (v·vᵀ along an existing
// direction) and are skipped — feedback through that lens would be a
// no-op exactly when it matters, on the drifted or perturbed vocabulary
// a human just adjudicated. Feedback labels instead use best-alignment
// extraction: a Match pulls each token toward its most similar
// same-attribute counterpart when they are strongly related
// (≥ feedbackPosFloor — drifted surface forms of one word align around
// 0.5-0.6 cosine, unrelated words below 0.4, so the floor separates
// genuine variant pairs from coincidental alignments), a NonMatch
// pushes apart only the confusable high-similarity alignments
// (≥ feedbackNegFloor) that plausibly caused the false match.
const (
	feedbackPosFloor = 0.50
	feedbackNegFloor = 0.60
)

// feedbackPairs expands labels into contrastive token pairs against the
// pre-fine-tune base source. Derivation is per-label and depends only on
// the frozen base, never on previously applied feedback — with the
// uncapped collection, that is what makes ApplyFeedback independent of
// batching and ordering.
func (s *System) feedbackPairs(ctx context.Context, base embed.Source, labels []feedback.Label) (pos, neg []embed.PairSample, err error) {
	for i, lb := range labels {
		if i%16 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		p, n := derivePairs(s.cfg, base, lb)
		pos = append(pos, p...)
		neg = append(neg, n...)
	}
	if s.cfg.Embedding == BERTFinetuned {
		neg = nil // task fine-tune: consolidation only, as in training
	}
	return pos, neg, nil
}

// derivePairs extracts the contrastive samples of one label: each left
// token is aligned to its highest-cosine right token within the same
// attribute; alignments to an identical text are skipped (no signal),
// and the rest contribute a sample when they clear the floor for the
// label's polarity. Samples are deduplicated within the label.
func derivePairs(cfg Config, base embed.Source, lb feedback.Label) (pos, neg []embed.PairSample) {
	lt := tokenize.Entity(lb.Left, cfg.Tokenize)
	rt := tokenize.Entity(lb.Right, cfg.Tokenize)
	if len(lt) == 0 || len(rt) == 0 {
		return nil, nil
	}
	lv := make([][]float64, len(lt))
	for i, tok := range lt {
		lv[i] = base.Vector(tok.Text)
	}
	rv := make([][]float64, len(rt))
	for i, tok := range rt {
		rv[i] = base.Vector(tok.Text)
	}
	floor := feedbackPosFloor
	if !lb.Match {
		floor = feedbackNegFloor
	}
	seen := map[embed.PairSample]bool{}
	for li, l := range lt {
		if vec.Norm(lv[li]) == 0 {
			continue
		}
		best, bestSim := -1, 0.0
		for ri, r := range rt {
			if r.Attr != l.Attr || vec.Norm(rv[ri]) == 0 {
				continue
			}
			if sim := vec.Cosine(lv[li], rv[ri]); best < 0 || sim > bestSim {
				best, bestSim = ri, sim
			}
		}
		if best < 0 || bestSim < floor {
			continue
		}
		sample := embed.PairSample{A: l.Text, B: rt[best].Text}
		if sample.A == sample.B || seen[sample] {
			continue // identical tokens carry no fine-tuning signal
		}
		seen[sample] = true
		if lb.Match {
			pos = append(pos, sample)
		} else {
			neg = append(neg, sample)
		}
	}
	return pos, neg
}
