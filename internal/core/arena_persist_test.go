package core

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wym/internal/arena"
	"wym/internal/embed"
)

// arenaTolerances mirrors testdata/arena_tolerances.json: the committed
// equivalence budget between the gob-f64 system and its compiled arenas.
type arenaTolerances struct {
	F32  arenaBudget `json:"f32"`
	Int8 arenaBudget `json:"int8"`
}

type arenaBudget struct {
	ProbaAbs      float64 `json:"proba_abs"`
	DecisionFlips int     `json:"decision_flips"`
}

func loadTolerances(t *testing.T) arenaTolerances {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "arena_tolerances.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tol arenaTolerances
	if err := json.Unmarshal(raw, &tol); err != nil {
		t.Fatalf("arena_tolerances.json: %v", err)
	}
	if tol.F32.ProbaAbs <= 0 || tol.Int8.ProbaAbs <= 0 {
		t.Fatal("arena_tolerances.json has zero budgets")
	}
	return tol
}

// saveArenas writes the system in both arena precisions and returns the
// paths.
func saveArenas(t *testing.T, sys *System) (f32Path, int8Path string) {
	t.Helper()
	dir := t.TempDir()
	f32Path = filepath.Join(dir, "model.f32.wyma")
	int8Path = filepath.Join(dir, "model.int8.wyma")
	if err := sys.SaveArenaFile(f32Path, ArenaOptions{}); err != nil {
		t.Fatalf("SaveArenaFile(f32): %v", err)
	}
	if err := sys.SaveArenaFile(int8Path, ArenaOptions{Int8: true}); err != nil {
		t.Fatalf("SaveArenaFile(int8): %v", err)
	}
	return f32Path, int8Path
}

// TestArenaPredictionEquivalence is the golden equivalence suite: on
// three seed datasets, the float32 and int8 arenas must reproduce the
// gob system's predictions within the committed budget — and never flip
// a match/no-match decision.
func TestArenaPredictionEquivalence(t *testing.T) {
	tol := loadTolerances(t)
	datasets := []struct {
		key   string
		scale float64
	}{
		{"S-FZ", 1.0},
		{"S-BR", 1.0},
		{"S-DA", 0.08},
	}
	for _, ds := range datasets {
		t.Run(ds.key, func(t *testing.T) {
			sys, test := trainOn(t, ds.key, ds.scale, fastConfig())
			f32Path, int8Path := saveArenas(t, sys)
			variants := []struct {
				path   string
				format string
				budget arenaBudget
			}{
				{f32Path, FormatArenaF32, tol.F32},
				{int8Path, FormatArenaInt8, tol.Int8},
			}
			for _, v := range variants {
				loaded, err := LoadFile(v.path)
				if err != nil {
					t.Fatalf("LoadFile(%s): %v", v.path, err)
				}
				if loaded.Format() != v.format {
					t.Fatalf("Format() = %q, want %q", loaded.Format(), v.format)
				}
				if loaded.ArenaFile() == nil {
					t.Fatal("ArenaFile() is nil for an arena-backed system")
				}
				var flips int
				var maxDelta float64
				for _, p := range test.Pairs {
					l1, p1 := sys.Predict(p)
					l2, p2 := loaded.Predict(p)
					if l1 != l2 {
						flips++
					}
					if d := math.Abs(p1 - p2); d > maxDelta {
						maxDelta = d
					}
				}
				t.Logf("%s %s: max |Δproba| = %g, decision flips = %d/%d",
					ds.key, v.format, maxDelta, flips, len(test.Pairs))
				if flips > v.budget.DecisionFlips {
					t.Errorf("%s: %d decision flips, budget %d", v.format, flips, v.budget.DecisionFlips)
				}
				if maxDelta > v.budget.ProbaAbs {
					t.Errorf("%s: max |Δproba| %g exceeds budget %g", v.format, maxDelta, v.budget.ProbaAbs)
				}
			}
		})
	}
}

func TestArenaRoundTripMetadata(t *testing.T) {
	sys, _ := trainOn(t, "S-FZ", 1.0, fastConfig())
	f32Path, _ := saveArenas(t, sys)
	loaded, err := LoadFile(f32Path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ModelName() != sys.ModelName() {
		t.Fatalf("model name = %q, want %q", loaded.ModelName(), sys.ModelName())
	}
	if len(loaded.Report()) != len(sys.Report()) {
		t.Fatal("report lost in arena round trip")
	}
	if len(loaded.StageSpans()) != len(sys.StageSpans()) {
		t.Fatal("stage spans lost in arena round trip")
	}
	if strings.Join(loaded.Schema(), ",") != strings.Join(sys.Schema(), ",") {
		t.Fatalf("schema = %v, want %v", loaded.Schema(), sys.Schema())
	}
	src, ok := loaded.Scorer().(interface{ Dim() int })
	if !ok {
		t.Fatalf("arena scorer is %T, want FastNN", loaded.Scorer())
	}
	if a, ok2 := loadedSource(loaded).(*embed.Arena); !ok2 {
		t.Fatalf("arena source is %T", loadedSource(loaded))
	} else if a.Dim() != src.Dim() {
		t.Fatalf("source dim %d != scorer dim %d", a.Dim(), src.Dim())
	}
}

func loadedSource(s *System) embed.Source { return s.source }

func TestArenaBackedSystemRefusesGobSave(t *testing.T) {
	sys, _ := trainOn(t, "S-FZ", 1.0, fastConfig())
	f32Path, _ := saveArenas(t, sys)
	loaded, err := LoadFile(f32Path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loaded.Save(&buf); err == nil {
		t.Fatal("gob Save succeeded on an arena-backed system")
	} else if !strings.Contains(err.Error(), "arena-backed") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// But re-compiling to a new arena (e.g. f32 -> int8) must work.
	rePath := filepath.Join(t.TempDir(), "re.wyma")
	if err := loaded.SaveArenaFile(rePath, ArenaOptions{Int8: true}); err != nil {
		t.Fatalf("re-compile to int8: %v", err)
	}
	re, err := LoadFile(rePath)
	if err != nil {
		t.Fatal(err)
	}
	if re.Format() != FormatArenaInt8 {
		t.Fatalf("recompiled format = %q", re.Format())
	}
}

func TestSaveArenaUntrained(t *testing.T) {
	if err := (&System{}).SaveArenaFile(filepath.Join(t.TempDir(), "x.wyma"), ArenaOptions{}); err == nil {
		t.Fatal("expected error saving an untrained system")
	}
}

// TestLoadFileCorruptArenas drives corrupt .wyma inputs through the
// public LoadFile entry point: every failure must name the offending
// file and never panic. Byte-level header/section corruption is
// exhaustively covered in internal/arena; these cases focus on the
// core-level layer (metadata gob, scorer wiring).
func TestLoadFileCorruptArenas(t *testing.T) {
	dir := t.TempDir()

	// A structurally valid arena whose metadata section is not a gob.
	write := func(name string, b *arena.Build) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := arena.WriteFile(p, b); err != nil {
			t.Fatal(err)
		}
		return p
	}
	minimal := func() *arena.Build {
		return &arena.Build{
			Dim: 2, HashDim: 1, NMin: 3, NMax: 5,
			Keys:   []string{"a", "b"},
			VecF32: []float32{1, 0, 0, 1},
		}
	}

	garbageMeta := minimal()
	garbageMeta.Meta = []byte("definitely not a gob stream")
	garbageMetaPath := write("garbage-meta.wyma", garbageMeta)

	emptyMeta := minimal() // decodes to a zero arenaMeta: no model, no space
	var emptyBuf bytes.Buffer
	if err := gob.NewEncoder(&emptyBuf).Encode(&arenaMeta{}); err != nil {
		t.Fatal(err)
	}
	emptyMeta.Meta = emptyBuf.Bytes()
	emptyMetaPath := write("empty-meta.wyma", emptyMeta)

	// Truncated arena: the checksum (or section bounds) must catch it.
	sys, _ := trainOn(t, "S-FZ", 1.0, fastConfig())
	goodPath, _ := saveArenas(t, sys)
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	truncPath := filepath.Join(dir, "truncated.wyma")
	if err := os.WriteFile(truncPath, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	flippedPath := filepath.Join(dir, "bitflip.wyma")
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(flippedPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, path, wantSub string
	}{
		{"metadata not gob", garbageMetaPath, "metadata"},
		{"metadata missing components", emptyMetaPath, "missing fitted components"},
		{"truncated arena", truncPath, ""},
		{"payload bit flip", flippedPath, "checksum"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := LoadFile(tc.path)
			if err == nil {
				t.Fatalf("LoadFile succeeded on %s (%v)", tc.name, sys)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Fatalf("error %q does not name the file %q", err, tc.path)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

// TestArenaScorerVariants pins the ablation scorers through the arena:
// Binary and Cosine carry no weights, only a kind tag.
func TestArenaScorerVariants(t *testing.T) {
	d := fullDataset(mustProfile(t, "S-FZ"))
	for _, kind := range []ScorerKind{ScorerBinary, ScorerCosine} {
		cfg := fastConfig()
		cfg.Scorer = kind
		train, valid, test := d.MustSplit(0.6, 0.2, 1)
		sys, err := Train(train, valid, cfg)
		if err != nil {
			t.Fatalf("scorer %d: %v", kind, err)
		}
		path := filepath.Join(t.TempDir(), "ablate.wyma")
		if err := sys.SaveArenaFile(path, ArenaOptions{}); err != nil {
			t.Fatalf("scorer %d save: %v", kind, err)
		}
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatalf("scorer %d load: %v", kind, err)
		}
		var flips int
		for _, p := range test.Pairs {
			l1, _ := sys.Predict(p)
			l2, _ := loaded.Predict(p)
			if l1 != l2 {
				flips++
			}
		}
		if flips > 0 {
			t.Fatalf("scorer %d: %d decision flips through the arena", kind, flips)
		}
	}
}
