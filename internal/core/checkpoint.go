package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/relevance"
)

// Stage checkpoints: after each completed pipeline stage the trainer
// persists a gob snapshot of that stage's output so an interrupted run can
// resume without redoing finished work. Every checkpoint carries a magic
// string, a format version, fingerprints of the training configuration and
// of both dataset splits, and a SHA-256 of its payload. A checkpoint is
// loaded only when all of those match — a checkpoint written by a
// different config, different data, or a truncated write is silently
// recomputed (with a warning in the TrainReport), never trusted.

const (
	checkpointMagic   = "WYMCKPT"
	checkpointVersion = 1
)

// checkpointEnvelope is the on-disk frame around a stage payload.
type checkpointEnvelope struct {
	Magic   string
	Version int
	Stage   string
	CfgSum  uint64
	DataSum uint64
	PaySum  [sha256.Size]byte
	Payload []byte
}

// checkpointer writes and validates the per-stage checkpoints of one
// training run.
type checkpointer struct {
	dir     string
	cfgSum  uint64
	dataSum uint64
}

// newCheckpointer creates the checkpoint directory and fingerprints the
// run's configuration and datasets.
func newCheckpointer(dir string, cfg Config, train, valid *data.Dataset) (*checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating checkpoint dir: %w", err)
	}
	return &checkpointer{
		dir:     dir,
		cfgSum:  fingerprintConfig(cfg),
		dataSum: fingerprintData(train, valid),
	}, nil
}

// fingerprintConfig hashes the persistable view of the configuration (the
// same shadow struct Save uses, so the Verbose callback is excluded).
func fingerprintConfig(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", shadowOf(cfg))
	return h.Sum64()
}

// fingerprintData hashes the content of both splits: schema, pair order,
// labels, and every attribute value. Resuming against different data must
// invalidate every checkpoint.
func fingerprintData(sets ...*data.Dataset) uint64 {
	h := fnv.New64a()
	for _, d := range sets {
		if d == nil {
			fmt.Fprint(h, "<nil>\x00")
			continue
		}
		fmt.Fprintf(h, "%q\x00", d.Schema)
		for _, p := range d.Pairs {
			fmt.Fprintf(h, "%d\x1f%d\x1f%q\x1f%q\x00", p.ID, p.Label, p.Left, p.Right)
		}
	}
	return h.Sum64()
}

// path returns the checkpoint file for a stage. The numeric prefix keeps
// directory listings in pipeline order.
func (ck *checkpointer) path(st Stage) string {
	return filepath.Join(ck.dir, fmt.Sprintf("stage%d-%s.ckpt", int(st), st))
}

// save gob-encodes the payload, wraps it in a verified envelope, and
// writes it atomically (temp file + rename) so a crash mid-write never
// leaves a half-checkpoint behind. A nil checkpointer is a no-op, which
// lets Train call save unconditionally.
func (ck *checkpointer) save(st Stage, payload any) error {
	if ck == nil {
		return nil
	}
	var pay bytes.Buffer
	if err := gob.NewEncoder(&pay).Encode(payload); err != nil {
		return fmt.Errorf("core: encoding %s checkpoint: %w", st, err)
	}
	env := checkpointEnvelope{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		Stage:   st.String(),
		CfgSum:  ck.cfgSum,
		DataSum: ck.dataSum,
		PaySum:  sha256.Sum256(pay.Bytes()),
		Payload: pay.Bytes(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return fmt.Errorf("core: encoding %s checkpoint envelope: %w", st, err)
	}
	dst := ck.path(st)
	tmp, err := os.CreateTemp(ck.dir, "."+filepath.Base(dst)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: writing %s checkpoint: %w", st, err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: writing %s checkpoint: %w", st, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: writing %s checkpoint: %w", st, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: writing %s checkpoint: %w", st, err)
	}
	return nil
}

// load reads and verifies a stage checkpoint into payload. The bool
// reports whether a valid checkpoint was loaded; an invalid one returns
// (false, reason) and the caller recomputes the stage.
func (ck *checkpointer) load(st Stage, payload any) (bool, string) {
	if ck == nil {
		return false, ""
	}
	raw, err := os.ReadFile(ck.path(st))
	if err != nil {
		if os.IsNotExist(err) {
			return false, ""
		}
		return false, fmt.Sprintf("%s checkpoint unreadable: %v", st, err)
	}
	var env checkpointEnvelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return false, fmt.Sprintf("%s checkpoint corrupt: %v", st, err)
	}
	switch {
	case env.Magic != checkpointMagic:
		return false, fmt.Sprintf("%s checkpoint has wrong magic %q", st, env.Magic)
	case env.Version != checkpointVersion:
		return false, fmt.Sprintf("%s checkpoint has version %d, want %d", st, env.Version, checkpointVersion)
	case env.Stage != st.String():
		return false, fmt.Sprintf("%s checkpoint labeled %q", st, env.Stage)
	case env.CfgSum != ck.cfgSum:
		return false, fmt.Sprintf("%s checkpoint was written by a different configuration", st)
	case env.DataSum != ck.dataSum:
		return false, fmt.Sprintf("%s checkpoint was written for different data", st)
	case env.PaySum != sha256.Sum256(env.Payload):
		return false, fmt.Sprintf("%s checkpoint payload fails its integrity check", st)
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(payload); err != nil {
		return false, fmt.Sprintf("%s checkpoint payload corrupt: %v", st, err)
	}
	return true, ""
}

// warn records a rejected-checkpoint reason on the report.
func warn(report *TrainReport, reason string) {
	if reason != "" {
		report.CheckpointWarnings = append(report.CheckpointWarnings, reason)
	}
}

// --- per-stage payloads ---------------------------------------------------

// embedPayload wraps the embedding source so the gob interface machinery
// (embed.Source concrete types are registered in embed/gob.go) applies.
type embedPayload struct {
	Source embed.Source
}

func (ck *checkpointer) saveEmbeddings(src embed.Source) error {
	return ck.save(StageEmbeddings, &embedPayload{Source: src})
}

func (ck *checkpointer) loadEmbeddings(report *TrainReport) (embed.Source, bool) {
	var p embedPayload
	ok, reason := ck.load(StageEmbeddings, &p)
	warn(report, reason)
	if !ok || p.Source == nil {
		return nil, false
	}
	return p.Source, true
}

// recsSnapshot stores one split's processed records. Quarantined entries
// are nil in the live slice, which gob cannot encode inside a pointer
// slice, so the snapshot keeps only the non-nil records plus their
// indices and rebuilds the sparse slice on load.
type recsSnapshot struct {
	N           int
	Indices     []int
	Recs        []*relevance.Record
	Quarantined []RecordError
}

func snapshotRecs(recs []*relevance.Record, quarantined []RecordError) recsSnapshot {
	snap := recsSnapshot{N: len(recs), Quarantined: quarantined}
	for i, rec := range recs {
		if rec != nil {
			snap.Indices = append(snap.Indices, i)
			snap.Recs = append(snap.Recs, rec)
		}
	}
	return snap
}

func (snap recsSnapshot) restore() []*relevance.Record {
	recs := make([]*relevance.Record, snap.N)
	for k, i := range snap.Indices {
		if i >= 0 && i < snap.N && k < len(snap.Recs) {
			recs[i] = snap.Recs[k]
		}
	}
	return recs
}

// unitsPayload stores both splits' processed records and quarantine lists.
type unitsPayload struct {
	Train recsSnapshot
	Valid recsSnapshot
}

func (ck *checkpointer) saveUnits(trainRecs, validRecs []*relevance.Record, report *TrainReport) error {
	return ck.save(StageUnits, &unitsPayload{
		Train: snapshotRecs(trainRecs, report.QuarantinedTrain),
		Valid: snapshotRecs(validRecs, report.QuarantinedValid),
	})
}

// loadUnits restores both splits' records; the checkpointed quarantine
// lists are merged into the report so a resumed run reports the same
// exclusions as the original.
func (ck *checkpointer) loadUnits(report *TrainReport) (trainRecs, validRecs []*relevance.Record, ok bool) {
	var p unitsPayload
	ok, reason := ck.load(StageUnits, &p)
	warn(report, reason)
	if !ok {
		return nil, nil, false
	}
	report.QuarantinedTrain = p.Train.Quarantined
	report.QuarantinedValid = p.Valid.Quarantined
	return p.Train.restore(), p.Valid.restore(), true
}

// scorerPayload wraps the fitted relevance scorer.
type scorerPayload struct {
	Scorer relevance.Scorer
}

func (ck *checkpointer) saveScorer(sc relevance.Scorer) error {
	return ck.save(StageScorer, &scorerPayload{Scorer: sc})
}

func (ck *checkpointer) loadScorer(report *TrainReport) (relevance.Scorer, bool) {
	var p scorerPayload
	ok, reason := ck.load(StageScorer, &p)
	warn(report, reason)
	if !ok || p.Scorer == nil {
		return nil, false
	}
	return p.Scorer, true
}

// saveModel checkpoints the fully fitted system — the same snapshot
// Save/Load use — so a finished run resumes in a single load.
func (ck *checkpointer) saveModel(s *System) error {
	if ck == nil {
		return nil
	}
	return ck.save(StageModel, &systemSnapshot{
		Cfg:    shadowOf(s.cfg),
		Schema: s.schema,
		Source: s.source,
		Scorer: s.scorer,
		Space:  s.space,
		Model:  s.model,
		Report: s.report,
		Timing: s.timing,
		Spans:  s.spans,
	})
}

func (ck *checkpointer) loadModel(report *TrainReport) (*System, bool) {
	var snap systemSnapshot
	ok, reason := ck.load(StageModel, &snap)
	warn(report, reason)
	if !ok || snap.Model == nil || snap.Scorer == nil || snap.Source == nil || snap.Space == nil {
		return nil, false
	}
	s := &System{
		cfg:    snap.Cfg.config(),
		schema: snap.Schema,
		source: snap.Source,
		scorer: snap.Scorer,
		space:  snap.Space,
		model:  snap.Model,
		report: snap.Report,
		timing: snap.Timing,
		spans:  snap.Spans,
	}
	s.rebuildEngine()
	return s, true
}
