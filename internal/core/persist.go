package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"wym/internal/arena"
	"wym/internal/classify"
	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/features"
	"wym/internal/feedback"
	"wym/internal/nn"
	"wym/internal/obs"
	"wym/internal/relevance"
	"wym/internal/tokenize"
	"wym/internal/units"
)

// Persistence: a fitted System serializes with encoding/gob so a matcher
// can be trained once and served from many processes. The nn.Config's
// Verbose callback cannot be encoded, so the configuration round-trips
// through a function-free shadow struct; everything else (embedding
// sources, scorer, classifier) carries its own gob support.

// trainShadow mirrors nn.Config without the Verbose callback.
type trainShadow struct {
	Epochs    int
	BatchSize int
	LR        float64
	L2        float64
	Loss      nn.Loss
	Seed      int64
}

// configShadow mirrors Config with the shadowed optimizer settings.
type configShadow struct {
	Thresholds       units.Thresholds
	Tokenize         tokenize.Options
	Embedding        EmbeddingKind
	Scorer           ScorerKind
	Features         FeatureKind
	CodeExact        bool
	ContextGamma     float64
	Targets          relevance.TargetConfig
	ScorerHidden     []int
	ScorerTrain      trainShadow
	ScorerSeed       int64
	MaxFineTunePairs int
	Seed             int64
}

func shadowOf(cfg Config) configShadow {
	t := cfg.ScorerNN.Train
	return configShadow{
		Thresholds:   cfg.Thresholds,
		Tokenize:     cfg.Tokenize,
		Embedding:    cfg.Embedding,
		Scorer:       cfg.Scorer,
		Features:     cfg.Features,
		CodeExact:    cfg.CodeExact,
		ContextGamma: cfg.ContextGamma,
		Targets:      cfg.Targets,
		ScorerHidden: cfg.ScorerNN.Hidden,
		ScorerTrain: trainShadow{
			Epochs: t.Epochs, BatchSize: t.BatchSize, LR: t.LR, L2: t.L2,
			Loss: t.Loss, Seed: t.Seed,
		},
		ScorerSeed:       cfg.ScorerNN.Seed,
		MaxFineTunePairs: cfg.MaxFineTunePairs,
		Seed:             cfg.Seed,
	}
}

func (s configShadow) config() Config {
	return Config{
		Thresholds:   s.Thresholds,
		Tokenize:     s.Tokenize,
		Embedding:    s.Embedding,
		Scorer:       s.Scorer,
		Features:     s.Features,
		CodeExact:    s.CodeExact,
		ContextGamma: s.ContextGamma,
		Targets:      s.Targets,
		ScorerNN: relevance.NNConfig{
			Hidden: s.ScorerHidden,
			Train: nn.Config{
				Epochs: s.ScorerTrain.Epochs, BatchSize: s.ScorerTrain.BatchSize,
				LR: s.ScorerTrain.LR, L2: s.ScorerTrain.L2,
				Loss: s.ScorerTrain.Loss, Seed: s.ScorerTrain.Seed,
			},
			Seed: s.ScorerSeed,
		},
		MaxFineTunePairs: s.MaxFineTunePairs,
		Seed:             s.Seed,
	}
}

// systemSnapshot is the on-disk form of a fitted System. Spans and the
// feedback fields were added after the first release; gob tolerates
// their absence, so older artifacts load with no stage-timing record
// and no feedback state rather than failing.
type systemSnapshot struct {
	Cfg       configShadow
	Schema    data.Schema
	Source    embed.Source
	Scorer    relevance.Scorer
	Space     *features.Space
	Model     classify.Classifier
	Report    []classify.Score
	Timing    Timing
	Spans     []obs.Span
	FeedbackN int
	// FbLabels is the accumulated label multiset in canonical order;
	// FbThreshold the decision cutoff recalibrated over it. Both ride
	// along so a loaded model keeps accepting feedback equivalently to
	// the in-memory one.
	FbLabels    []feedback.Label
	FbThreshold float64
}

// Save serializes the fitted system. It fails on an untrained system
// and on arena-backed systems, whose zero-copy components have no gob
// form — convert from the original gob artifact instead.
func (s *System) Save(w io.Writer) error {
	if s.model == nil || s.scorer == nil || s.source == nil {
		return fmt.Errorf("core: cannot save an untrained system")
	}
	if s.arena != nil {
		return fmt.Errorf("core: cannot gob-encode an arena-backed system (format %s); convert from the gob artifact", s.Format())
	}
	snap := systemSnapshot{
		Cfg:         shadowOf(s.cfg),
		Schema:      s.schema,
		Source:      s.source,
		Scorer:      s.scorer,
		Space:       s.space,
		Model:       s.model,
		Report:      s.report,
		Timing:      s.timing,
		Spans:       s.spans,
		FeedbackN:   s.feedbackN,
		FbLabels:    s.fbLabels,
		FbThreshold: s.fbThreshold,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: encoding system: %w", err)
	}
	return nil
}

// Load restores a system saved with Save.
func Load(r io.Reader) (*System, error) {
	var snap systemSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding system: %w", err)
	}
	if snap.Model == nil || snap.Scorer == nil || snap.Source == nil || snap.Space == nil {
		return nil, fmt.Errorf("core: snapshot is missing fitted components")
	}
	s := &System{
		cfg:         snap.Cfg.config(),
		schema:      snap.Schema,
		source:      snap.Source,
		scorer:      snap.Scorer,
		space:       snap.Space,
		model:       snap.Model,
		report:      snap.Report,
		timing:      snap.Timing,
		spans:       snap.Spans,
		feedbackN:   snap.FeedbackN,
		fbLabels:    snap.FbLabels,
		fbThreshold: snap.FbThreshold,
	}
	s.rebuildEngine()
	return s, nil
}

// SaveFile saves the system to a file.
func (s *System) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile restores a system from a file, auto-detecting the format:
// files starting with the arena magic load through the zero-copy mmap
// path (arena_persist.go), everything else through gob. Decode
// failures — a truncated or corrupt stream, an empty file, a gob
// holding some other type — are wrapped with the file path so
// operators can tell *which* artifact is bad when a reload fails.
// Obviously truncated files (zero bytes, or an arena magic with less
// than a full header behind it) are rejected up front with an explicit
// "truncated" error instead of whatever EOF the decoder would report.
func LoadFile(path string) (*System, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if st.Size() == 0 {
		return nil, fmt.Errorf("core: artifact %s is truncated: file is empty", path)
	}
	if sniffArena(path) {
		if st.Size() < arena.HeaderSize {
			return nil, fmt.Errorf("core: artifact %s is truncated: %d bytes, arena header needs %d",
				path, st.Size(), arena.HeaderSize)
		}
		return loadArenaFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	sys, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return sys, nil
}
