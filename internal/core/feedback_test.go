package core

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"wym/internal/data"
	"wym/internal/datagen"
	"wym/internal/embed"
	"wym/internal/eval"
	"wym/internal/feedback"
)

// driftRight returns pairs with the right-hand entity's vocabulary
// drifted — the post-train shift scenario the feedback loop repairs.
func driftRight(pairs []data.Pair, rate float64, seed int64) []data.Pair {
	out := make([]data.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = p
		out[i].Right = datagen.DriftEntity(p.Right, rate, seed)
	}
	return out
}

// labelsOf converts dataset pairs into feedback labels carrying the
// ground truth.
func labelsOf(pairs []data.Pair) []feedback.Label {
	out := make([]feedback.Label, len(pairs))
	for i, p := range pairs {
		out[i] = feedback.Label{Left: p.Left, Right: p.Right, Match: p.Label == data.Match}
	}
	return out
}

// probasG17 formats every test-pair probability with %.17g — the
// byte-identical comparison the acceptance criteria pin.
func probasG17(sys *System, test *data.Dataset) []string {
	out := make([]string, test.Size())
	for i, p := range test.Pairs {
		_, proba := sys.Predict(p)
		out[i] = fmt.Sprintf("%.17g", proba)
	}
	return out
}

// TestApplyFeedbackOrderInvariant pins the tentpole's incremental
// equivalence on both golden profiles: folding the same labels in any
// order and batching yields a model whose predictions are byte-identical
// (%.17g) to folding them in a single batch (which, by the embed-level
// equivalence tests, is itself a single FineTune over the union).
func TestApplyFeedbackOrderInvariant(t *testing.T) {
	for _, key := range []string{"S-FZ", "S-BR"} {
		t.Run(key, func(t *testing.T) {
			sys, test := trainOn(t, key, 1.0, fastConfig())
			// Drift the right side of the labeled pairs: the drifted-vs-clean
			// token alignments are what derives contrastive samples (identical
			// aligned tokens carry no fine-tuning signal and are skipped).
			labels := labelsOf(driftRight(test.Pairs[:12], 0.8, 11))
			ctx := context.Background()

			baseline := probasG17(sys, test)

			oneShot, err := sys.ApplyFeedback(ctx, labels)
			if err != nil {
				t.Fatal(err)
			}
			// Sequential small batches, forward order.
			fwd := sys
			for i := 0; i < len(labels); i += 4 {
				if fwd, err = fwd.ApplyFeedback(ctx, labels[i:i+4]); err != nil {
					t.Fatal(err)
				}
			}
			// Reverse batch order.
			rev := sys
			for i := len(labels); i > 0; i -= 4 {
				if rev, err = rev.ApplyFeedback(ctx, labels[i-4:i]); err != nil {
					t.Fatal(err)
				}
			}

			want := probasG17(oneShot, test)
			for name, got := range map[string][]string{
				"forward": probasG17(fwd, test), "reverse": probasG17(rev, test),
			} {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s order: pair %d proba %s != one-shot %s", name, i, got[i], want[i])
					}
				}
			}
			if fwd.FeedbackFingerprint() != oneShot.FeedbackFingerprint() ||
				rev.FeedbackFingerprint() != oneShot.FeedbackFingerprint() {
				t.Fatal("feedback fingerprints diverged across orders")
			}
			if oneShot.FeedbackFingerprint() == "" || !strings.HasPrefix(oneShot.FeedbackFingerprint(), "fnv64:") {
				t.Fatalf("fingerprint = %q", oneShot.FeedbackFingerprint())
			}
			if oneShot.FeedbackCount() != 12 || fwd.FeedbackCount() != 12 {
				t.Fatalf("FeedbackCount = %d / %d, want 12", oneShot.FeedbackCount(), fwd.FeedbackCount())
			}

			// Copy-on-write: the receiver must be untouched.
			if got := probasG17(sys, test); !equalStrings(got, baseline) {
				t.Fatal("ApplyFeedback mutated the receiver's predictions")
			}
			if sys.FeedbackCount() != 0 || sys.FeedbackFingerprint() != "" {
				t.Fatal("ApplyFeedback mutated the receiver's feedback state")
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApplyFeedbackPersistRoundTrip: a feedback-updated model survives
// gob Save/Load with byte-identical predictions, fingerprint, and count —
// and the loaded model accepts further feedback equivalently to the
// in-memory one.
func TestApplyFeedbackPersistRoundTrip(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	ctx := context.Background()
	labels := labelsOf(driftRight(test.Pairs[:8], 0.8, 11))
	upd, err := sys.ApplyFeedback(ctx, labels[:5])
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fb.wym")
	if err := upd.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FeedbackCount() != 5 {
		t.Fatalf("loaded FeedbackCount = %d, want 5", loaded.FeedbackCount())
	}
	if loaded.FeedbackFingerprint() != upd.FeedbackFingerprint() {
		t.Fatalf("fingerprint changed across save/load: %q vs %q",
			loaded.FeedbackFingerprint(), upd.FeedbackFingerprint())
	}
	if !equalStrings(probasG17(loaded, test), probasG17(upd, test)) {
		t.Fatal("loaded predictions differ from in-memory")
	}
	if !loaded.SupportsFeedback() {
		t.Fatal("loaded model lost feedback support")
	}

	more, err := loaded.ApplyFeedback(ctx, labels[5:])
	if err != nil {
		t.Fatal(err)
	}
	memMore, err := upd.ApplyFeedback(ctx, labels[5:])
	if err != nil {
		t.Fatal(err)
	}
	if more.FeedbackFingerprint() != memMore.FeedbackFingerprint() {
		t.Fatal("post-load feedback diverged from in-memory feedback")
	}
	if !equalStrings(probasG17(more, test), probasG17(memMore, test)) {
		t.Fatal("post-load predictions diverged from in-memory")
	}
}

// TestApplyFeedbackArenaReadOnly: arena conversions carry the feedback
// provenance but refuse further updates.
func TestApplyFeedbackArenaReadOnly(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	ctx := context.Background()
	upd, err := sys.ApplyFeedback(ctx, labelsOf(driftRight(test.Pairs[:6], 0.8, 11)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fb.wyma")
	if err := upd.SaveArenaFile(path, ArenaOptions{}); err != nil {
		t.Fatal(err)
	}
	ar, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.ArenaFile().Close()
	if ar.FeedbackCount() != 6 || ar.FeedbackFingerprint() != upd.FeedbackFingerprint() {
		t.Fatalf("arena lost feedback provenance: count=%d fp=%q",
			ar.FeedbackCount(), ar.FeedbackFingerprint())
	}
	if ar.SupportsFeedback() {
		t.Fatal("arena-backed system claims feedback support")
	}
	if _, err := ar.ApplyFeedback(ctx, labelsOf(test.Pairs[:1])); err == nil {
		t.Fatal("ApplyFeedback on arena-backed system should fail")
	}
}

func TestApplyFeedbackErrors(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	ctx := context.Background()
	if _, err := sys.ApplyFeedback(ctx, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	// An embedding stack without a fine-tuned layer cannot fold feedback.
	plain := &System{
		cfg:    sys.cfg,
		schema: sys.schema,
		source: embed.NewCache(embed.NewHash()),
		scorer: sys.scorer,
		space:  sys.space,
		model:  sys.model,
	}
	plain.rebuildEngine()
	if plain.SupportsFeedback() {
		t.Fatal("hash-only system claims feedback support")
	}
	if _, err := plain.ApplyFeedback(ctx, labelsOf(test.Pairs[:1])); err == nil {
		t.Fatal("ApplyFeedback without a Hebbian layer should fail")
	}
}

// TestSelectorQualityGate is the acceptance criterion for the active
// learner: on S-BR with 20% of the training truth held out as the
// labeling pool (vocabulary drifted post-train, the scenario the loop
// exists for), spending k labels on the lowest-margin pairs must raise
// test F1 at least as much as spending k labels at random.
func TestSelectorQualityGate(t *testing.T) {
	d := datagen.Generate(mustProfile(t, "S-BR"), 1.0)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	// Hold out 20% of the training truth as the labeling pool; drift the
	// pool and the test set the same way, simulating a source whose
	// vocabulary shifted after the model was trained.
	const driftRate, driftSeed = 0.6, 23
	cut := train.Size() * 8 / 10
	small := &data.Dataset{Name: train.Name, Schema: train.Schema, Pairs: train.Pairs[:cut]}
	pool := driftRight(train.Pairs[cut:], driftRate, driftSeed)
	test = &data.Dataset{Name: test.Name, Schema: test.Schema,
		Pairs: driftRight(test.Pairs, driftRate, driftSeed)}

	sys, err := Train(small, valid, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	truth := test.Labels()
	// A small labeling budget: the regime where choosing *which* pairs
	// to label matters (with a large budget random coverage catches up).
	k := len(pool) / 5
	if k < 5 {
		t.Fatalf("pool too small: %d", len(pool))
	}

	scores := make([]float64, len(pool))
	for i, p := range pool {
		_, scores[i] = sys.Predict(p)
	}
	var sel feedback.Selector
	topIdx := make([]int, 0, k)
	for _, r := range sel.TopK(scores, k) {
		topIdx = append(topIdx, r.Index)
	}
	applyIdx := func(idx []int) float64 {
		picked := make([]data.Pair, len(idx))
		for i, j := range idx {
			picked[i] = pool[j]
		}
		upd, err := sys.ApplyFeedback(ctx, labelsOf(picked))
		if err != nil {
			t.Fatal(err)
		}
		return eval.F1Score(upd.PredictAll(test), truth)
	}

	f1Top := applyIdx(topIdx)
	var f1RandSum float64
	const seeds = 5
	for s := int64(1); s <= seeds; s++ {
		rng := rand.New(rand.NewSource(s))
		f1RandSum += applyIdx(rng.Perm(len(pool))[:k])
	}
	f1Rand := f1RandSum / seeds
	f1Base := eval.F1Score(sys.PredictAll(test), truth)
	t.Logf("selector gate: f1(top-%d margin)=%.4f f1(random mean of %d)=%.4f baseline=%.4f",
		k, f1Top, seeds, f1Rand, f1Base)
	if f1Top < f1Rand {
		t.Fatalf("margin selection (%.4f) underperformed random labeling (%.4f)", f1Top, f1Rand)
	}
	if f1Top <= f1Base {
		t.Fatalf("feedback on margin-selected labels (%.4f) did not improve the drifted baseline (%.4f)", f1Top, f1Base)
	}
}
