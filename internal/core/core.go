// Package core implements WYM, the paper's instantiation of the
// three-component architecture template defined by internal/pipeline: a
// decision-unit generator (corpus-trained embeddings + Algorithm 1), a
// relevance scorer (the Equation 2/3 network, or the Table 4 ablations)
// and an explainable matcher (statistical feature engineering, a
// classifier pool, and the inverse transformation that yields per-unit
// impact scores). Training owns the end-to-end fit; once fitted, every
// prediction and explanation flows through the assembled pipeline.Engine.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wym/internal/arena"
	"wym/internal/classify"
	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/features"
	"wym/internal/feedback"
	"wym/internal/obs"
	"wym/internal/pipeline"
	"wym/internal/relevance"
	"wym/internal/textsim"
	"wym/internal/tokenize"
	"wym/internal/units"
)

// EmbeddingKind selects the decision-unit generator variant (Table 4).
type EmbeddingKind int

// Embedding variants.
const (
	// SBERT is the default: corpus embeddings contrastively fine-tuned
	// with both positive and negative pairs (the Sentence-BERT stand-in).
	SBERT EmbeddingKind = iota
	// BERTPretrained uses the corpus embeddings as-is.
	BERTPretrained
	// BERTFinetuned fine-tunes with positive pairs only (the "fine-tuned
	// on the EM task" stand-in).
	BERTFinetuned
	// JaroWinkler replaces the embedding similarity with the syntactic
	// Jaro–Winkler measure during unit discovery (the Table 4 baseline).
	// Relevance scoring still uses the corpus embeddings.
	JaroWinkler
)

// ScorerKind selects the relevance scorer variant (Table 4).
type ScorerKind int

// Scorer variants.
const (
	ScorerNN     ScorerKind = iota // the trained network (default)
	ScorerBinary                   // 1 paired / 0 unpaired
	ScorerCosine                   // raw embedding cosine
)

// FeatureKind selects the matcher feature space (Table 4).
type FeatureKind int

// Feature-space variants.
const (
	FeaturesFull       FeatureKind = iota // per-attribute + record scopes
	FeaturesSimplified                    // the 6-feature ablation
)

// Config assembles a WYM variant. DefaultConfig is the paper's system.
type Config struct {
	Thresholds   units.Thresholds
	Tokenize     tokenize.Options
	Embedding    EmbeddingKind
	Scorer       ScorerKind
	Features     FeatureKind
	CodeExact    bool    // product-code exact-pairing heuristic (§5.1.1)
	ContextGamma float64 // record-context mixing weight
	Targets      relevance.TargetConfig
	ScorerNN     relevance.NNConfig
	// MaxFineTunePairs caps the contrastive pairs collected for the
	// embedding fine-tune (0 = default cap).
	MaxFineTunePairs int
	Seed             int64
}

// DefaultConfig returns the paper-faithful configuration: θ/η/ε from §5,
// SBERT-style embeddings, the NN scorer and the full feature space.
func DefaultConfig() Config {
	return Config{
		Thresholds:   units.PaperThresholds,
		Tokenize:     tokenize.Default,
		Embedding:    SBERT,
		Scorer:       ScorerNN,
		Features:     FeaturesFull,
		ContextGamma: 0.15,
		Targets:      relevance.DefaultTargetConfig(),
		Seed:         1,
	}
}

// System is a fitted WYM matcher: the components of the architecture
// template plus the pipeline.Engine they are assembled into.
type System struct {
	cfg    Config
	schema data.Schema
	source embed.Source
	scorer relevance.Scorer
	space  *features.Space
	model  classify.Classifier
	engine *pipeline.Engine

	report []classify.Score
	timing Timing
	// tracer receives the per-stage spans during training; spans is the
	// frozen result, persisted with the model so `wym train -v` and the
	// checkpoint metadata can replay the stage-timing table later.
	tracer *obs.Tracer
	spans  []obs.Span

	// processHook, when non-nil, runs before unit generation inside the
	// quarantine wrapper of ProcessAllContext; the fault-tolerance tests
	// inject per-record panics with it.
	processHook func(data.Pair)

	// format and arena record the on-disk representation an arena-backed
	// system was loaded from; both are zero for trained and gob-loaded
	// systems. See arena_persist.go.
	format string
	arena  *arena.File

	// fbLabels is the accumulated feedback label multiset in canonical
	// order; fbThreshold the decision threshold recalibrated over it
	// (0 = default 0.5). feedbackN counts the labels folded in by
	// ApplyFeedback; feedbackFP carries the feedback fingerprint for
	// arena-backed systems, whose read-only metadata cannot recompute
	// it. See feedback.go.
	fbLabels    []feedback.Label
	fbThreshold float64
	feedbackN   int
	feedbackFP  string
}

// rebuildEngine assembles the pipeline instantiation from the fitted
// components: the WYM generator always, the scorer and matcher only once
// they exist (the trainer rebuilds after fitting; a generator-only system
// keeps a generator-only engine).
func (s *System) rebuildEngine() {
	gen := wymGenerator{s: s}
	var scorer pipeline.RelevanceScorer
	if s.scorer != nil {
		scorer = pipeline.UnitScores{S: s.scorer}
	}
	var matcher pipeline.Matcher
	if s.space != nil && s.model != nil {
		matcher = wymMatcher{space: s.space, model: s.model, threshold: s.DecisionThreshold()}
	}
	s.engine = pipeline.New(gen, scorer, matcher)
}

// Engine returns the system's assembled pipeline engine; every serving
// path (CLI, server, benchmarks) predicts through it.
func (s *System) Engine() *pipeline.Engine { return s.engine }

// Timing is the §5.3 pipeline breakdown recorded during training.
type Timing struct {
	Embeddings  time.Duration // corpus embedding training + fine-tuning
	UnitGen     time.Duration // tokenization + Algorithm 1 over the data
	ScorerTrain time.Duration
	Featurize   time.Duration
	ModelSelect time.Duration
}

// Total returns the summed training time.
func (t Timing) Total() time.Duration {
	return t.Embeddings + t.UnitGen + t.ScorerTrain + t.Featurize + t.ModelSelect
}

// Stage identifies one phase of the training pipeline, in execution order.
// The fault-tolerant trainer checkpoints after each completed stage and
// checks for cancellation before starting the next.
type Stage int

// Pipeline stages.
const (
	StageEmbeddings Stage = iota // corpus embeddings + fine-tune
	StageUnits                   // tokenization + Algorithm 1 over both splits
	StageScorer                  // relevance scorer training
	StageFeatures                // feature engineering (not checkpointed: transient)
	StageModel                   // classifier pool + selection
)

// String implements fmt.Stringer; the names double as checkpoint keys.
func (s Stage) String() string {
	switch s {
	case StageEmbeddings:
		return "embeddings"
	case StageUnits:
		return "units"
	case StageScorer:
		return "scorer"
	case StageFeatures:
		return "features"
	case StageModel:
		return "model"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// RecordError is one record pair quarantined during processing: a worker
// recovered a panic (or a validation failure) on it and excluded it from
// the run instead of crashing the whole pipeline.
type RecordError = pipeline.RecordError

// TrainReport describes what the fault-tolerant trainer did beyond the
// happy path: stages resumed from checkpoints, checkpoints it had to
// reject, and records it quarantined.
type TrainReport struct {
	// Resumed lists the stages loaded from checkpoints instead of trained.
	Resumed []Stage
	// CheckpointWarnings notes checkpoints that existed but were rejected
	// (corrupt payload, config or dataset mismatch, stale version).
	CheckpointWarnings []string
	// QuarantinedTrain and QuarantinedValid list record pairs excluded
	// from the run after a per-record worker panic.
	QuarantinedTrain []RecordError
	QuarantinedValid []RecordError
}

// Quarantined returns the total number of quarantined records.
func (r *TrainReport) Quarantined() int {
	return len(r.QuarantinedTrain) + len(r.QuarantinedValid)
}

// TrainOptions configures fault tolerance around TrainWithOptions.
type TrainOptions struct {
	// CheckpointDir, when non-empty, enables stage checkpointing: after
	// each completed stage a versioned, integrity-checked snapshot is
	// written there (atomically, via rename).
	CheckpointDir string
	// Resume loads the longest valid prefix of stage checkpoints from
	// CheckpointDir before training, skipping the stages they cover. A
	// checkpoint is valid only if its version, config fingerprint and
	// dataset fingerprint all match; anything else is recomputed.
	Resume bool
	// OnStage, when non-nil, is called after each stage completes (or is
	// resumed from a checkpoint) — progress reporting for long runs.
	OnStage func(stage Stage, took time.Duration, resumed bool)

	// Tracer, when non-nil, receives a named span per completed training
	// (sub)stage: embeddings/cooc, embeddings/finetune, units/train,
	// scorer/train, and so on. The trainer records the same spans into the
	// returned System either way (see System.StageSpans); passing a tracer
	// just lets callers render them live, e.g. `wym train -v`.
	Tracer *obs.Tracer

	// processHook is the fault-injection seam for the in-package tests: it
	// runs inside the per-record quarantine wrapper before each Process.
	processHook func(data.Pair)
}

// Train fits the full pipeline on the training split, selecting the
// classifier by F1 on the validation split.
func Train(train, valid *data.Dataset, cfg Config) (*System, error) {
	return TrainContext(context.Background(), train, valid, cfg)
}

// TrainContext is Train honoring a context: cancellation stops the run at
// the next stage boundary (and inside the record-processing and epoch
// loops of the long stages).
func TrainContext(ctx context.Context, train, valid *data.Dataset, cfg Config) (*System, error) {
	sys, _, err := TrainWithOptions(ctx, train, valid, cfg, TrainOptions{})
	return sys, err
}

// stageErr wraps a stage failure with its pipeline position.
func stageErr(st Stage, err error) error {
	return fmt.Errorf("core: %s stage: %w", st, err)
}

// relevanceRecords projects a batch of pipeline records onto their
// unit-level views, preserving quarantined (nil) slots; the scorer stage
// and the checkpoints consume this form.
func relevanceRecords(recs []*pipeline.Record) []*relevance.Record {
	out := make([]*relevance.Record, len(recs))
	for i, rec := range recs {
		if rec != nil {
			out[i] = rec.Rel()
		}
	}
	return out
}

// TrainWithOptions is the fault-tolerant trainer: TrainContext plus stage
// checkpointing, resume, and dirty-record quarantine. The returned report
// is non-nil whenever the input validation passed, even on error.
func TrainWithOptions(ctx context.Context, train, valid *data.Dataset, cfg Config, opts TrainOptions) (*System, *TrainReport, error) {
	if train == nil || train.Size() == 0 {
		return nil, nil, fmt.Errorf("core: empty training set")
	}
	if valid == nil || valid.Size() == 0 {
		return nil, nil, fmt.Errorf("core: empty validation set")
	}
	if err := train.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Thresholds == (units.Thresholds{}) {
		cfg.Thresholds = units.PaperThresholds
	}

	tr := opts.Tracer
	if tr == nil {
		// Always trace: spans end up in the fitted System (and its
		// checkpoint metadata) whether or not the caller watches live.
		tr = obs.NewTracer()
	}
	s := &System{cfg: cfg, schema: train.Schema, tracer: tr, processHook: opts.processHook}
	s.rebuildEngine()
	report := &TrainReport{}
	var ck *checkpointer
	if opts.CheckpointDir != "" {
		var err error
		ck, err = newCheckpointer(opts.CheckpointDir, cfg, train, valid)
		if err != nil {
			return nil, report, err
		}
	}
	done := func(st Stage, start time.Time, resumed bool) {
		if resumed {
			report.Resumed = append(report.Resumed, st)
		}
		if opts.OnStage != nil {
			opts.OnStage(st, time.Since(start), resumed)
		}
	}

	// A fully checkpointed run resumes to the final model in one load.
	if ck != nil && opts.Resume {
		if sys, ok := ck.loadModel(report); ok {
			for st := StageEmbeddings; st <= StageModel; st++ {
				done(st, time.Now(), true)
			}
			sys.cfg = cfg
			sys.rebuildEngine()
			// Replay the original run's stage spans into the caller's
			// tracer so the timing table survives a full-model resume.
			tr.Import(sys.spans)
			return sys, report, nil
		}
	}

	// Stage 1: embedding substrate, trained on the corpus of both splits'
	// entity descriptions (test data never reaches embedding training:
	// Predict embeds unseen tokens via the hash part).
	if err := ctx.Err(); err != nil {
		return nil, report, stageErr(StageEmbeddings, err)
	}
	start := time.Now()
	resumed := false
	if ck != nil && opts.Resume {
		if src, ok := ck.loadEmbeddings(report); ok {
			s.source, resumed = src, true
		}
	}
	if !resumed {
		src, err := s.buildSourceCtx(ctx, train, valid)
		if err != nil {
			return nil, report, stageErr(StageEmbeddings, err)
		}
		s.source = src
		if err := ck.saveEmbeddings(src); err != nil {
			return nil, report, err
		}
	}
	s.timing.Embeddings = time.Since(start)
	done(StageEmbeddings, start, resumed)

	// Stage 2: decision units for every training and validation record,
	// generated through the pipeline's quarantining batch runner. Worker
	// panics quarantine the offending pair (nil entry + report row)
	// instead of crashing the run.
	if err := ctx.Err(); err != nil {
		return nil, report, stageErr(StageUnits, err)
	}
	start = time.Now()
	var trainRecs, validRecs []*relevance.Record
	resumed = false
	if ck != nil && opts.Resume {
		if tr, vr, ok := ck.loadUnits(report); ok {
			trainRecs, validRecs, resumed = tr, vr, true
		}
	}
	if !resumed {
		batch := pipeline.BatchOptions{Hook: s.processHook}
		doneTrain := tr.Start("units/train")
		trainBatch, qt, err := pipeline.ProcessAllContext(ctx, s.engine.Generator(), train, batch)
		if err != nil {
			return nil, report, stageErr(StageUnits, err)
		}
		doneTrain()
		doneValid := tr.Start("units/valid")
		validBatch, qv, err := pipeline.ProcessAllContext(ctx, s.engine.Generator(), valid, batch)
		if err != nil {
			return nil, report, stageErr(StageUnits, err)
		}
		doneValid()
		trainRecs, report.QuarantinedTrain = relevanceRecords(trainBatch), qt
		validRecs, report.QuarantinedValid = relevanceRecords(validBatch), qv
		if err := ck.saveUnits(trainRecs, validRecs, report); err != nil {
			return nil, report, err
		}
	}
	s.timing.UnitGen = time.Since(start)
	done(StageUnits, start, resumed)

	// The corpus vocabulary is now fully embedded: freeze it into the
	// cache's lock-free read-only tier so every later lookup — scorer
	// training below and all concurrent Predict/Explain traffic — touches
	// no lock for known tokens. (On a resumed run the cache is cold; the
	// freeze is then a no-op and lookups warm the sharded overflow tier.)
	if c, ok := s.source.(*embed.Cache); ok {
		c.Freeze()
	}

	// Stage 3: relevance scorer.
	if err := ctx.Err(); err != nil {
		return nil, report, stageErr(StageScorer, err)
	}
	start = time.Now()
	resumed = false
	if ck != nil && opts.Resume {
		if sc, ok := ck.loadScorer(report); ok {
			s.scorer, resumed = sc, true
		}
	}
	if !resumed {
		doneScorer := tr.Start("scorer/train")
		switch cfg.Scorer {
		case ScorerBinary:
			s.scorer = relevance.Binary{}
		case ScorerCosine:
			s.scorer = relevance.Cosine{}
		default:
			ts := relevance.NewTrainingSet(cfg.Targets)
			for i, rec := range trainRecs {
				if rec == nil {
					continue // quarantined
				}
				ts.Add(rec, train.Pairs[i].Label)
			}
			nnCfg := cfg.ScorerNN
			if nnCfg.Seed == 0 {
				nnCfg.Seed = cfg.Seed
			}
			scorer, err := relevance.TrainNNCtx(ctx, ts, s.source.Dim(), nnCfg)
			if err != nil {
				return nil, report, stageErr(StageScorer, err)
			}
			s.scorer = scorer
		}
		doneScorer()
		if err := ck.saveScorer(s.scorer); err != nil {
			return nil, report, err
		}
	}
	s.timing.ScorerTrain = time.Since(start)
	done(StageScorer, start, resumed)

	// Stage 4: feature engineering. Quarantined records are dropped here,
	// together with their labels, so the matrices stay aligned.
	if err := ctx.Err(); err != nil {
		return nil, report, stageErr(StageFeatures, err)
	}
	start = time.Now()
	doneFeatures := tr.Start("features")
	if cfg.Features == FeaturesSimplified {
		s.space = features.NewSimplifiedSpace()
	} else {
		s.space = features.NewSpace(len(train.Schema))
	}
	xTrain, yTrain := s.featurizeLabeled(trainRecs, train)
	xValid, yValid := s.featurizeLabeled(validRecs, valid)
	doneFeatures()
	s.timing.Featurize = time.Since(start)
	done(StageFeatures, start, false)

	// Stage 5: classifier pool and model selection.
	if err := ctx.Err(); err != nil {
		return nil, report, stageErr(StageModel, err)
	}
	start = time.Now()
	doneModel := tr.Start("model/select")
	best, scores, err := classify.SelectBest(classify.NewPool(cfg.Seed),
		xTrain, yTrain, xValid, yValid)
	if err != nil {
		return nil, report, fmt.Errorf("core: model selection: %w", err)
	}
	s.model = best
	s.report = scores
	doneModel()
	s.timing.ModelSelect = time.Since(start)
	// Freeze the spans before the model checkpoint so the saved snapshot
	// carries the full stage-timing record.
	s.spans = tr.Spans()
	if err := ck.saveModel(s); err != nil {
		return nil, report, err
	}
	done(StageModel, start, false)
	// All three components are fitted: assemble the serving engine.
	s.rebuildEngine()
	return s, report, nil
}

// buildSource trains the embedding stack for the configured variant.
func (s *System) buildSource(train, valid *data.Dataset) embed.Source {
	src, err := s.buildSourceCtx(context.Background(), train, valid)
	if err != nil {
		// Unreachable: the background context never cancels and the ctx
		// variants have no other failure mode.
		panic(err)
	}
	return src
}

// buildSourceCtx trains the embedding stack, checking for cancellation
// inside corpus training, pair collection and the fine-tune.
func (s *System) buildSourceCtx(ctx context.Context, train, valid *data.Dataset) (embed.Source, error) {
	corpus := corpusOf(s.cfg.Tokenize, train, valid)
	coocCfg := embed.DefaultCoocConfig()
	coocCfg.Seed = s.cfg.Seed
	doneCooc := s.tracer.Start("embeddings/cooc")
	cooc, err := embed.TrainCoocCtx(ctx, corpus, coocCfg)
	if err != nil {
		return nil, err
	}
	doneCooc()
	base := embed.Source(embed.NewConcat(embed.NewHash(), cooc))

	switch s.cfg.Embedding {
	case SBERT, BERTFinetuned:
		donePairs := s.tracer.Start("embeddings/pairs")
		pos, neg, err := s.contrastivePairs(ctx, train, base)
		if err != nil {
			return nil, err
		}
		donePairs()
		if s.cfg.Embedding == BERTFinetuned {
			neg = nil // task fine-tune: consolidation only
		}
		doneFT := s.tracer.Start("embeddings/finetune")
		ft, err := embed.FineTuneCtx(ctx, base, pos, neg, embed.DefaultFineTuneConfig())
		if err != nil {
			return nil, err
		}
		doneFT()
		base = ft
	}
	return embed.NewCache(base), nil
}

// contrastivePairs aligns tokens inside training records with the base
// embeddings and collects paired units of matching records as positives
// and of non-matching records as negatives, capped for efficiency.
func (s *System) contrastivePairs(ctx context.Context, train *data.Dataset, base embed.Source) (pos, neg []embed.PairSample, err error) {
	limit := s.cfg.MaxFineTunePairs
	if limit <= 0 {
		limit = 2000
	}
	tmp := &System{cfg: s.cfg, schema: train.Schema, source: base}
	for i := range train.Pairs {
		if len(pos) >= limit && len(neg) >= limit {
			break
		}
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		rec := tmp.generate(train.Pairs[i])
		for _, u := range rec.Units {
			if u.Kind != units.Paired {
				continue
			}
			sample := embed.PairSample{
				A: rec.Left[u.Left].Text,
				B: rec.Right[u.Right].Text,
			}
			if sample.A == sample.B {
				continue // identical tokens carry no fine-tuning signal
			}
			if train.Pairs[i].Label == data.Match {
				if len(pos) < limit {
					pos = append(pos, sample)
				}
			} else if len(neg) < limit {
				neg = append(neg, sample)
			}
		}
	}
	return pos, neg, nil
}

// textsPool recycles the transient token-text slices of unit generation;
// the embedding source only reads them during the Contextualize call.
var textsPool = sync.Pool{New: func() any { return new([]string) }}

// wymGenerator is the paper's decision-unit generator as a
// pipeline.UnitGenerator: tokenization, contextual embedding, and
// Algorithm 1 unit discovery over one record pair.
type wymGenerator struct {
	s *System
}

// Generate implements pipeline.UnitGenerator.
func (g wymGenerator) Generate(p data.Pair) *pipeline.Record { return g.s.generate(p) }

// generate runs tokenization, contextual embedding and Algorithm 1 on one
// record pair.
func (s *System) generate(p data.Pair) *pipeline.Record {
	lt := tokenize.Entity(p.Left, s.cfg.Tokenize)
	rt := tokenize.Entity(p.Right, s.cfg.Tokenize)
	tp := textsPool.Get().(*[]string)
	texts := tokenize.AppendTexts((*tp)[:0], lt)
	lv := embed.Contextualize(s.source, texts, s.cfg.ContextGamma)
	texts = tokenize.AppendTexts(texts[:0], rt)
	rv := embed.Contextualize(s.source, texts, s.cfg.ContextGamma)
	*tp = texts
	textsPool.Put(tp)
	in := units.Input{
		Left: lt, Right: rt,
		LeftVecs: lv, RightVecs: rv,
		NumAttrs:  len(s.schema),
		CodeExact: s.cfg.CodeExact,
		// Contextualized embeddings of a normalized source are unit-or-zero
		// (and context mixing re-normalizes regardless), so unit discovery
		// may use the raw dot product instead of the full cosine.
		NormalizedVecs: s.cfg.ContextGamma != 0 || embed.IsNormalized(s.source),
	}
	if s.cfg.Embedding == JaroWinkler {
		in.SimOverride = func(l, r int) float64 {
			return textsim.JaroWinkler(lt[l].Text, rt[r].Text)
		}
	}
	rec := &pipeline.Record{Pair: p}
	rec.Record = relevance.Record{
		Units: units.Discover(in, s.cfg.Thresholds),
		Left:  lt, Right: rt,
		LeftVecs: lv, RightVecs: rv,
	}
	return rec
}

// Process runs the generator on one record pair; the returned record can
// be cached and fed to PredictRecord and ExplainRecord so the pair is
// tokenized and embedded once.
func (s *System) Process(p data.Pair) *pipeline.Record { return s.engine.Process(p) }

// ProcessAll runs Process over a dataset concurrently, preserving order.
func (s *System) ProcessAll(d *data.Dataset) []*pipeline.Record {
	return s.engine.ProcessAll(d)
}

// ProcessAllContext is ProcessAll with cancellation and per-record fault
// isolation: a worker that panics on a record quarantines that pair (nil
// entry in the result, a RecordError in the second return) and moves on.
// Cancellation stops the workers at the next record; the partial results
// are discarded and the context error returned.
func (s *System) ProcessAllContext(ctx context.Context, d *data.Dataset) ([]*pipeline.Record, []RecordError, error) {
	return pipeline.ProcessAllContext(ctx, s.engine.Generator(), d,
		pipeline.BatchOptions{Hook: s.processHook})
}

// wymMatcher is the paper's explainable matcher as a pipeline.Matcher:
// the statistical feature space, the selected interpretable classifier,
// and the inverse transformation from model coefficients to per-unit
// impact scores.
type wymMatcher struct {
	space *features.Space
	model classify.Classifier
	// threshold is the match-decision cutoff on the classifier proba:
	// 0.5 for freshly trained systems, possibly recalibrated by
	// ApplyFeedback over human-adjudicated labels (see feedback.go).
	threshold float64
}

// MatchRecord implements pipeline.Matcher.
func (m wymMatcher) MatchRecord(rec *pipeline.Record, scores []float64) (int, float64) {
	x := m.space.Vector(rec.Units, scores)
	proba := m.model.PredictProba(x)
	if proba >= m.threshold {
		return data.Match, proba
	}
	return data.NonMatch, proba
}

// ExplainRecord implements pipeline.Matcher.
func (m wymMatcher) ExplainRecord(rec *pipeline.Record, scores []float64) Explanation {
	x := m.space.Vector(rec.Units, scores)
	proba := m.model.PredictProba(x)
	impacts := m.space.Impacts(rec.Units, scores, m.model.Coefficients())

	ex := Explanation{Proba: proba, Prediction: data.NonMatch}
	if proba >= m.threshold {
		ex.Prediction = data.Match
	}
	for i, u := range rec.Units {
		l, r := units.Texts(u, rec.Left, rec.Right)
		ex.Units = append(ex.Units, UnitExplanation{
			Left: l, Right: r,
			Kind: u.Kind, Attr: u.Attr,
			Relevance: scores[i],
			Impact:    impacts[i],
		})
	}
	return ex
}

func (s *System) featurizeAll(recs []*pipeline.Record) [][]float64 {
	out := make([][]float64, len(recs))
	for i, rec := range recs {
		out[i] = s.space.Vector(rec.Units, s.scorer.Score(rec.Rel()))
	}
	return out
}

// featurizeLabeled featurizes the non-quarantined records of a split,
// returning the feature matrix and the aligned label vector.
func (s *System) featurizeLabeled(recs []*relevance.Record, d *data.Dataset) (x [][]float64, y []int) {
	x = make([][]float64, 0, len(recs))
	y = make([]int, 0, len(recs))
	for i, rec := range recs {
		if rec == nil {
			continue // quarantined
		}
		x = append(x, s.space.Vector(rec.Units, s.scorer.Score(rec)))
		y = append(y, d.Pairs[i].Label)
	}
	return x, y
}

// Predict classifies one record pair, returning the hard label and the
// match probability.
func (s *System) Predict(p data.Pair) (label int, proba float64) {
	return s.engine.Predict(p)
}

// PredictAll returns hard labels for a whole dataset.
func (s *System) PredictAll(d *data.Dataset) []int {
	return s.engine.PredictAll(d)
}

// UnitExplanation is one row of an explanation: a decision unit with its
// rendered tokens, relevance and impact scores.
type UnitExplanation = pipeline.UnitExplanation

// Explanation is the full interpretable output for one record pair.
type Explanation = pipeline.Explanation

// Explain predicts one record pair and attributes the decision to its
// units via the inverse feature transformation. Positive impacts push
// toward match, negative toward non-match.
func (s *System) Explain(p data.Pair) Explanation {
	return s.engine.Explain(p)
}

// ExplainRecord explains an already-processed record (the evaluation
// harness and record-caching callers reuse processed records).
func (s *System) ExplainRecord(rec *pipeline.Record) Explanation {
	return s.engine.ExplainRecord(rec)
}

// PredictRecord classifies an already-processed record.
func (s *System) PredictRecord(rec *pipeline.Record) (int, float64) {
	return s.engine.PredictRecord(rec)
}

// ModelName returns the selected classifier's name.
func (s *System) ModelName() string { return s.model.Name() }

// Report returns the validation scores of every pool member, best first.
func (s *System) Report() []classify.Score { return s.report }

// TrainingTiming returns the recorded pipeline breakdown.
func (s *System) TrainingTiming() Timing { return s.timing }

// StageSpans returns the per-(sub)stage wall-clock spans recorded during
// training, in completion order. The spans persist with the model
// (Save/Load and the model checkpoint), so a loaded system still reports
// how it was trained; render them with obs.Tracer.Table via Import.
func (s *System) StageSpans() []obs.Span { return append([]obs.Span(nil), s.spans...) }

// Schema returns the schema the system was trained on.
func (s *System) Schema() data.Schema { return s.schema }

// FeatureSpace exposes the fitted feature space (experiments inspect it).
func (s *System) FeatureSpace() *features.Space { return s.space }

// Scorer exposes the fitted relevance scorer.
func (s *System) Scorer() relevance.Scorer { return s.scorer }

// corpusOf collects the token sequences of every entity description for
// embedding training.
func corpusOf(opts tokenize.Options, sets ...*data.Dataset) [][]string {
	var corpus [][]string
	for _, d := range sets {
		if d == nil {
			continue
		}
		for _, p := range d.Pairs {
			corpus = append(corpus,
				tokenize.Texts(tokenize.Entity(p.Left, opts)),
				tokenize.Texts(tokenize.Entity(p.Right, opts)))
		}
	}
	return corpus
}

// NewUnitGenerator builds a System that can Process records (tokenize,
// embed, discover units) without training a scorer or matcher: its engine
// is the generator-only pipeline instantiation. The Figure 4
// unit-distribution experiment uses it. Predict/Explain must not be
// called on the result.
func NewUnitGenerator(d *data.Dataset, cfg Config) *System {
	if cfg.Thresholds == (units.Thresholds{}) {
		cfg.Thresholds = units.PaperThresholds
	}
	s := &System{cfg: cfg, schema: d.Schema}
	s.source = s.buildSource(d, nil)
	s.rebuildEngine()
	return s
}

// Featurize processes a dataset and returns the engineered feature matrix
// the matcher consumes; Table 5 fits the whole classifier pool on it.
func (s *System) Featurize(d *data.Dataset) [][]float64 {
	return s.featurizeAll(s.ProcessAll(d))
}

// AttributeImpact aggregates an explanation's impacts per schema
// attribute: the CERTA-style attribute-level view the related work
// discusses. It is pipeline.AttributeImpact, re-exported for callers of
// the core package.
func AttributeImpact(schema data.Schema, ex Explanation) []float64 {
	return pipeline.AttributeImpact(schema, ex)
}
