// Package core wires the three architectural components of the paper —
// decision-unit generator, relevance scorer, explainable matcher — into the
// trainable WYM system. It owns the end-to-end pipeline: corpus-trained
// embeddings, optional task fine-tuning, Algorithm 1 unit discovery,
// Equation 2/3 relevance training, feature engineering, classifier-pool
// selection, and the inverse transformation that yields per-unit impact
// scores.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"wym/internal/classify"
	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/features"
	"wym/internal/relevance"
	"wym/internal/textsim"
	"wym/internal/tokenize"
	"wym/internal/units"
)

// EmbeddingKind selects the decision-unit generator variant (Table 4).
type EmbeddingKind int

// Embedding variants.
const (
	// SBERT is the default: corpus embeddings contrastively fine-tuned
	// with both positive and negative pairs (the Sentence-BERT stand-in).
	SBERT EmbeddingKind = iota
	// BERTPretrained uses the corpus embeddings as-is.
	BERTPretrained
	// BERTFinetuned fine-tunes with positive pairs only (the "fine-tuned
	// on the EM task" stand-in).
	BERTFinetuned
	// JaroWinkler replaces the embedding similarity with the syntactic
	// Jaro–Winkler measure during unit discovery (the Table 4 baseline).
	// Relevance scoring still uses the corpus embeddings.
	JaroWinkler
)

// ScorerKind selects the relevance scorer variant (Table 4).
type ScorerKind int

// Scorer variants.
const (
	ScorerNN     ScorerKind = iota // the trained network (default)
	ScorerBinary                   // 1 paired / 0 unpaired
	ScorerCosine                   // raw embedding cosine
)

// FeatureKind selects the matcher feature space (Table 4).
type FeatureKind int

// Feature-space variants.
const (
	FeaturesFull       FeatureKind = iota // per-attribute + record scopes
	FeaturesSimplified                    // the 6-feature ablation
)

// Config assembles a WYM variant. DefaultConfig is the paper's system.
type Config struct {
	Thresholds   units.Thresholds
	Tokenize     tokenize.Options
	Embedding    EmbeddingKind
	Scorer       ScorerKind
	Features     FeatureKind
	CodeExact    bool    // product-code exact-pairing heuristic (§5.1.1)
	ContextGamma float64 // record-context mixing weight
	Targets      relevance.TargetConfig
	ScorerNN     relevance.NNConfig
	// MaxFineTunePairs caps the contrastive pairs collected for the
	// embedding fine-tune (0 = default cap).
	MaxFineTunePairs int
	Seed             int64
}

// DefaultConfig returns the paper-faithful configuration: θ/η/ε from §5,
// SBERT-style embeddings, the NN scorer and the full feature space.
func DefaultConfig() Config {
	return Config{
		Thresholds:   units.PaperThresholds,
		Tokenize:     tokenize.Default,
		Embedding:    SBERT,
		Scorer:       ScorerNN,
		Features:     FeaturesFull,
		ContextGamma: 0.15,
		Targets:      relevance.DefaultTargetConfig(),
		Seed:         1,
	}
}

// System is a fitted WYM matcher.
type System struct {
	cfg    Config
	schema data.Schema
	source embed.Source
	scorer relevance.Scorer
	space  *features.Space
	model  classify.Classifier

	report []classify.Score
	timing Timing
}

// Timing is the §5.3 pipeline breakdown recorded during training.
type Timing struct {
	Embeddings  time.Duration // corpus embedding training + fine-tuning
	UnitGen     time.Duration // tokenization + Algorithm 1 over the data
	ScorerTrain time.Duration
	Featurize   time.Duration
	ModelSelect time.Duration
}

// Total returns the summed training time.
func (t Timing) Total() time.Duration {
	return t.Embeddings + t.UnitGen + t.ScorerTrain + t.Featurize + t.ModelSelect
}

// Train fits the full pipeline on the training split, selecting the
// classifier by F1 on the validation split.
func Train(train, valid *data.Dataset, cfg Config) (*System, error) {
	if train == nil || train.Size() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if valid == nil || valid.Size() == 0 {
		return nil, fmt.Errorf("core: empty validation set")
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if cfg.Thresholds == (units.Thresholds{}) {
		cfg.Thresholds = units.PaperThresholds
	}

	s := &System{cfg: cfg, schema: train.Schema}

	// Stage 1: embedding substrate, trained on the corpus of both splits'
	// entity descriptions (test data never reaches embedding training:
	// Predict embeds unseen tokens via the hash part).
	start := time.Now()
	s.source = s.buildSource(train, valid)
	s.timing.Embeddings = time.Since(start)

	// Stage 2: decision units for every training and validation record.
	start = time.Now()
	trainRecs := s.ProcessAll(train)
	validRecs := s.ProcessAll(valid)
	s.timing.UnitGen = time.Since(start)

	// The corpus vocabulary is now fully embedded: freeze it into the
	// cache's lock-free read-only tier so every later lookup — scorer
	// training below and all concurrent Predict/Explain traffic — touches
	// no lock for known tokens.
	if c, ok := s.source.(*embed.Cache); ok {
		c.Freeze()
	}

	// Stage 3: relevance scorer.
	start = time.Now()
	switch cfg.Scorer {
	case ScorerBinary:
		s.scorer = relevance.Binary{}
	case ScorerCosine:
		s.scorer = relevance.Cosine{}
	default:
		ts := relevance.NewTrainingSet(cfg.Targets)
		for i, rec := range trainRecs {
			ts.Add(rec, train.Pairs[i].Label)
		}
		nnCfg := cfg.ScorerNN
		if nnCfg.Seed == 0 {
			nnCfg.Seed = cfg.Seed
		}
		scorer, err := relevance.TrainNN(ts, s.source.Dim(), nnCfg)
		if err != nil {
			return nil, fmt.Errorf("core: training relevance scorer: %w", err)
		}
		s.scorer = scorer
	}
	s.timing.ScorerTrain = time.Since(start)

	// Stage 4: feature engineering.
	start = time.Now()
	if cfg.Features == FeaturesSimplified {
		s.space = features.NewSimplifiedSpace()
	} else {
		s.space = features.NewSpace(len(train.Schema))
	}
	xTrain := s.featurizeAll(trainRecs)
	xValid := s.featurizeAll(validRecs)
	s.timing.Featurize = time.Since(start)

	// Stage 5: classifier pool and model selection.
	start = time.Now()
	best, report, err := classify.SelectBest(classify.NewPool(cfg.Seed),
		xTrain, train.Labels(), xValid, valid.Labels())
	if err != nil {
		return nil, fmt.Errorf("core: model selection: %w", err)
	}
	s.model = best
	s.report = report
	s.timing.ModelSelect = time.Since(start)
	return s, nil
}

// buildSource trains the embedding stack for the configured variant.
func (s *System) buildSource(train, valid *data.Dataset) embed.Source {
	corpus := corpusOf(s.cfg.Tokenize, train, valid)
	coocCfg := embed.DefaultCoocConfig()
	coocCfg.Seed = s.cfg.Seed
	base := embed.Source(embed.NewConcat(embed.NewHash(), embed.TrainCooc(corpus, coocCfg)))

	switch s.cfg.Embedding {
	case SBERT, BERTFinetuned:
		pos, neg := s.contrastivePairs(train, base)
		if s.cfg.Embedding == BERTFinetuned {
			neg = nil // task fine-tune: consolidation only
		}
		base = embed.FineTune(base, pos, neg, embed.DefaultFineTuneConfig())
	}
	return embed.NewCache(base)
}

// contrastivePairs aligns tokens inside training records with the base
// embeddings and collects paired units of matching records as positives
// and of non-matching records as negatives, capped for efficiency.
func (s *System) contrastivePairs(train *data.Dataset, base embed.Source) (pos, neg []embed.PairSample) {
	limit := s.cfg.MaxFineTunePairs
	if limit <= 0 {
		limit = 2000
	}
	tmp := &System{cfg: s.cfg, schema: train.Schema, source: base}
	for i := range train.Pairs {
		if len(pos) >= limit && len(neg) >= limit {
			break
		}
		rec := tmp.Process(train.Pairs[i])
		for _, u := range rec.Units {
			if u.Kind != units.Paired {
				continue
			}
			sample := embed.PairSample{
				A: rec.Left[u.Left].Text,
				B: rec.Right[u.Right].Text,
			}
			if sample.A == sample.B {
				continue // identical tokens carry no fine-tuning signal
			}
			if train.Pairs[i].Label == data.Match {
				if len(pos) < limit {
					pos = append(pos, sample)
				}
			} else if len(neg) < limit {
				neg = append(neg, sample)
			}
		}
	}
	return pos, neg
}

// textsPool recycles the transient token-text slices of Process; the
// embedding source only reads them during the Contextualize call.
var textsPool = sync.Pool{New: func() any { return new([]string) }}

// Process runs tokenization, contextual embedding and Algorithm 1 on one
// record pair.
func (s *System) Process(p data.Pair) *relevance.Record {
	lt := tokenize.Entity(p.Left, s.cfg.Tokenize)
	rt := tokenize.Entity(p.Right, s.cfg.Tokenize)
	tp := textsPool.Get().(*[]string)
	texts := tokenize.AppendTexts((*tp)[:0], lt)
	lv := embed.Contextualize(s.source, texts, s.cfg.ContextGamma)
	texts = tokenize.AppendTexts(texts[:0], rt)
	rv := embed.Contextualize(s.source, texts, s.cfg.ContextGamma)
	*tp = texts
	textsPool.Put(tp)
	in := units.Input{
		Left: lt, Right: rt,
		LeftVecs: lv, RightVecs: rv,
		NumAttrs:  len(s.schema),
		CodeExact: s.cfg.CodeExact,
		// Contextualized embeddings of a normalized source are unit-or-zero
		// (and context mixing re-normalizes regardless), so unit discovery
		// may use the raw dot product instead of the full cosine.
		NormalizedVecs: s.cfg.ContextGamma != 0 || embed.IsNormalized(s.source),
	}
	if s.cfg.Embedding == JaroWinkler {
		in.SimOverride = func(l, r int) float64 {
			return textsim.JaroWinkler(lt[l].Text, rt[r].Text)
		}
	}
	return &relevance.Record{
		Units: units.Discover(in, s.cfg.Thresholds),
		Left:  lt, Right: rt,
		LeftVecs: lv, RightVecs: rv,
	}
}

// ProcessAll runs Process over a dataset concurrently, preserving order.
func (s *System) ProcessAll(d *data.Dataset) []*relevance.Record {
	n := d.Size()
	out := make([]*relevance.Record, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range d.Pairs {
			out[i] = s.Process(d.Pairs[i])
		}
		return out
	}
	// Buffer the full job list up front: an unbuffered channel would make
	// the producer rendezvous with a worker per record, serializing the
	// fan-out; with the buffer, the producer finishes immediately and the
	// workers drain without ever blocking on the send side.
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	// One worker closure shared by every goroutine, allocated once —
	// hoisted out of the spawn loop.
	worker := func() {
		defer wg.Done()
		for i := range jobs {
			out[i] = s.Process(d.Pairs[i])
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return out
}

func (s *System) featurizeAll(recs []*relevance.Record) [][]float64 {
	out := make([][]float64, len(recs))
	for i, rec := range recs {
		out[i] = s.space.Vector(rec.Units, s.scorer.Score(rec))
	}
	return out
}

// Predict classifies one record pair, returning the hard label and the
// match probability.
func (s *System) Predict(p data.Pair) (label int, proba float64) {
	rec := s.Process(p)
	return s.predictRecord(rec)
}

func (s *System) predictRecord(rec *relevance.Record) (int, float64) {
	x := s.space.Vector(rec.Units, s.scorer.Score(rec))
	proba := s.model.PredictProba(x)
	if proba >= 0.5 {
		return data.Match, proba
	}
	return data.NonMatch, proba
}

// PredictAll returns hard labels for a whole dataset.
func (s *System) PredictAll(d *data.Dataset) []int {
	recs := s.ProcessAll(d)
	out := make([]int, len(recs))
	for i, rec := range recs {
		out[i], _ = s.predictRecord(rec)
	}
	return out
}

// UnitExplanation is one row of an explanation: a decision unit with its
// rendered tokens, relevance and impact scores.
type UnitExplanation struct {
	Left, Right string // token texts; empty string for the absent side
	Kind        units.Kind
	Attr        int
	Relevance   float64
	Impact      float64
}

// Explanation is the full interpretable output for one record pair.
type Explanation struct {
	Prediction int
	Proba      float64
	Units      []UnitExplanation
}

// Explain predicts one record pair and attributes the decision to its
// units via the inverse feature transformation. Positive impacts push
// toward match, negative toward non-match.
func (s *System) Explain(p data.Pair) Explanation {
	rec := s.Process(p)
	return s.explainRecord(rec)
}

func (s *System) explainRecord(rec *relevance.Record) Explanation {
	scores := s.scorer.Score(rec)
	x := s.space.Vector(rec.Units, scores)
	proba := s.model.PredictProba(x)
	impacts := s.space.Impacts(rec.Units, scores, s.model.Coefficients())

	ex := Explanation{Proba: proba, Prediction: data.NonMatch}
	if proba >= 0.5 {
		ex.Prediction = data.Match
	}
	for i, u := range rec.Units {
		l, r := units.Texts(u, rec.Left, rec.Right)
		ex.Units = append(ex.Units, UnitExplanation{
			Left: l, Right: r,
			Kind: u.Kind, Attr: u.Attr,
			Relevance: scores[i],
			Impact:    impacts[i],
		})
	}
	return ex
}

// ExplainRecord exposes explainRecord for callers that already hold a
// processed record (the evaluation harness re-uses processed records).
func (s *System) ExplainRecord(rec *relevance.Record) Explanation { return s.explainRecord(rec) }

// PredictRecord exposes predictRecord for processed records.
func (s *System) PredictRecord(rec *relevance.Record) (int, float64) {
	return s.predictRecord(rec)
}

// ModelName returns the selected classifier's name.
func (s *System) ModelName() string { return s.model.Name() }

// Report returns the validation scores of every pool member, best first.
func (s *System) Report() []classify.Score { return s.report }

// TrainingTiming returns the recorded pipeline breakdown.
func (s *System) TrainingTiming() Timing { return s.timing }

// Schema returns the schema the system was trained on.
func (s *System) Schema() data.Schema { return s.schema }

// FeatureSpace exposes the fitted feature space (experiments inspect it).
func (s *System) FeatureSpace() *features.Space { return s.space }

// Scorer exposes the fitted relevance scorer.
func (s *System) Scorer() relevance.Scorer { return s.scorer }

// corpusOf collects the token sequences of every entity description for
// embedding training.
func corpusOf(opts tokenize.Options, sets ...*data.Dataset) [][]string {
	var corpus [][]string
	for _, d := range sets {
		if d == nil {
			continue
		}
		for _, p := range d.Pairs {
			corpus = append(corpus,
				tokenize.Texts(tokenize.Entity(p.Left, opts)),
				tokenize.Texts(tokenize.Entity(p.Right, opts)))
		}
	}
	return corpus
}

// NewUnitGenerator builds a System that can Process records (tokenize,
// embed, discover units) without training a scorer or matcher. The Figure 4
// unit-distribution experiment uses it. Predict/Explain must not be called
// on the result.
func NewUnitGenerator(d *data.Dataset, cfg Config) *System {
	if cfg.Thresholds == (units.Thresholds{}) {
		cfg.Thresholds = units.PaperThresholds
	}
	s := &System{cfg: cfg, schema: d.Schema}
	s.source = s.buildSource(d, nil)
	return s
}

// Featurize processes a dataset and returns the engineered feature matrix
// the matcher consumes; Table 5 fits the whole classifier pool on it.
func (s *System) Featurize(d *data.Dataset) [][]float64 {
	return s.featurizeAll(s.ProcessAll(d))
}

// AttributeImpact aggregates an explanation's impacts per schema
// attribute: the CERTA-style attribute-level view the related work
// discusses. The returned slice is aligned with the schema; units whose
// attribute falls outside the schema are ignored.
func AttributeImpact(schema data.Schema, ex Explanation) []float64 {
	out := make([]float64, len(schema))
	for _, u := range ex.Units {
		if u.Attr >= 0 && u.Attr < len(out) {
			out[u.Attr] += u.Impact
		}
	}
	return out
}
