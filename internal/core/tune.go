package core

import (
	"fmt"

	"wym/internal/data"
	"wym/internal/eval"
	"wym/internal/units"
)

// The paper notes that the optimal θ/η/ε thresholds are dataset-dependent
// and "can only be experimentally determined" (§4.1.2). TuneThresholds
// automates that experiment: it trains one system per candidate triple and
// keeps the one with the best validation F1.

// DefaultThresholdGrid spans the useful band around the paper's values,
// keeping the increasing θ ≤ η ≤ ε ordering the paper argues for.
var DefaultThresholdGrid = []units.Thresholds{
	{Theta: 0.50, Eta: 0.55, Epsilon: 0.60},
	{Theta: 0.55, Eta: 0.60, Epsilon: 0.65},
	{Theta: 0.60, Eta: 0.65, Epsilon: 0.70}, // the paper's triple
	{Theta: 0.65, Eta: 0.70, Epsilon: 0.75},
	{Theta: 0.70, Eta: 0.75, Epsilon: 0.80},
}

// TuneResult is one grid point's outcome.
type TuneResult struct {
	Thresholds units.Thresholds
	ValidF1    float64
}

// TuneThresholds trains cfg once per grid triple (DefaultThresholdGrid if
// grid is nil) and returns the best system together with the full sweep,
// ordered as the grid. The validation split drives both the classifier
// selection inside each training run and the triple selection across runs.
func TuneThresholds(train, valid *data.Dataset, cfg Config, grid []units.Thresholds) (*System, []TuneResult, error) {
	if len(grid) == 0 {
		grid = DefaultThresholdGrid
	}
	var best *System
	bestF1 := -1.0
	results := make([]TuneResult, 0, len(grid))
	for _, th := range grid {
		c := cfg
		c.Thresholds = th
		sys, err := Train(train, valid, c)
		if err != nil {
			return nil, nil, fmt.Errorf("core: tuning %+v: %w", th, err)
		}
		f1 := eval.F1Score(sys.PredictAll(valid), valid.Labels())
		results = append(results, TuneResult{Thresholds: th, ValidF1: f1})
		if f1 > bestF1 {
			best, bestF1 = sys, f1
		}
	}
	return best, results, nil
}
