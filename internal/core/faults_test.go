package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wym/internal/data"
	"wym/internal/datagen"
)

// faultSplits generates a small dataset and splits it for the
// fault-tolerance tests (smaller than the accuracy suite: these tests
// train several times).
func faultSplits(t *testing.T) (train, valid, test *data.Dataset) {
	t.Helper()
	d := datagen.Generate(mustProfile(t, "S-FZ"), 0.5)
	return d.MustSplit(0.6, 0.2, 1)
}

// predictionFingerprint renders every test prediction with full float
// precision: byte equality means the two systems are indistinguishable.
func predictionFingerprint(sys *System, test *data.Dataset) []byte {
	var b bytes.Buffer
	for _, p := range test.Pairs {
		label, proba := sys.Predict(p)
		fmt.Fprintf(&b, "%d %x\n", label, math.Float64bits(proba))
	}
	return b.Bytes()
}

// TestResumeGoldenPredictions is the acceptance pin: interrupt a
// checkpointed run after unit discovery, resume it, and the resumed
// system's test predictions must be byte-identical to an uninterrupted
// run with the same seed.
func TestResumeGoldenPredictions(t *testing.T) {
	train, valid, test := faultSplits(t)
	cfg := fastConfig()

	// Run A: uninterrupted, no checkpoints — the golden reference.
	golden, _, err := TrainWithOptions(context.Background(), train, valid, cfg, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := predictionFingerprint(golden, test)

	// Run B: checkpointed, canceled right after the units stage completes.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err = TrainWithOptions(ctx, train, valid, cfg, TrainOptions{
		CheckpointDir: dir,
		OnStage: func(st Stage, _ time.Duration, _ bool) {
			if st == StageUnits {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	for _, st := range []Stage{StageEmbeddings, StageUnits} {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("stage%d-%s.ckpt", int(st), st))); err != nil {
			t.Fatalf("missing %s checkpoint after interrupt: %v", st, err)
		}
	}

	// Run C: resume — the first two stages must load, not retrain.
	resumed, report, err := TrainWithOptions(context.Background(), train, valid, cfg, TrainOptions{
		CheckpointDir: dir,
		Resume:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 2 || report.Resumed[0] != StageEmbeddings || report.Resumed[1] != StageUnits {
		t.Fatalf("resumed stages = %v, want [embeddings units]", report.Resumed)
	}
	if len(report.CheckpointWarnings) != 0 {
		t.Fatalf("unexpected checkpoint warnings: %v", report.CheckpointWarnings)
	}
	if got := predictionFingerprint(resumed, test); !bytes.Equal(got, want) {
		t.Fatal("resumed run's predictions differ from the uninterrupted run")
	}

	// Run D: resume again after full completion — one model load covers
	// every stage, and predictions still match.
	again, report, err := TrainWithOptions(context.Background(), train, valid, cfg, TrainOptions{
		CheckpointDir: dir,
		Resume:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 5 {
		t.Fatalf("full resume covered %d stages, want 5", len(report.Resumed))
	}
	if got := predictionFingerprint(again, test); !bytes.Equal(got, want) {
		t.Fatal("fully resumed run's predictions differ from the uninterrupted run")
	}
}

func TestTrainCancellation(t *testing.T) {
	train, valid, _ := faultSplits(t)
	cfg := fastConfig()

	// A context canceled up front fails at the first stage boundary.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainContext(ctx, train, valid, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled train: err = %v, want context.Canceled", err)
	}

	// Canceling after each stage stops the run at the next boundary with an
	// error naming a later stage.
	for _, at := range []Stage{StageEmbeddings, StageUnits, StageScorer, StageFeatures} {
		at := at
		t.Run(at.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_, _, err := TrainWithOptions(ctx, train, valid, cfg, TrainOptions{
				OnStage: func(st Stage, _ time.Duration, _ bool) {
					if st == at {
						cancel()
					}
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !strings.Contains(err.Error(), "stage") {
				t.Fatalf("error does not name a stage: %v", err)
			}
		})
	}
}

func TestTrainQuarantinesPanickingRecord(t *testing.T) {
	train, valid, test := faultSplits(t)
	cfg := fastConfig()
	// Poison one training pair: its worker panics, the run must survive
	// with that single pair quarantined.
	poisoned := train.Pairs[3].ID
	sys, report, err := TrainWithOptions(context.Background(), train, valid, cfg, TrainOptions{
		processHook: func(p data.Pair) {
			if p.ID == poisoned {
				panic("injected fault")
			}
		},
	})
	if err != nil {
		t.Fatalf("training with one poisoned record failed: %v", err)
	}
	if len(report.QuarantinedTrain) != 1 || len(report.QuarantinedValid) != 0 {
		t.Fatalf("quarantine = %d train / %d valid, want 1/0: %+v",
			len(report.QuarantinedTrain), len(report.QuarantinedValid), report)
	}
	q := report.QuarantinedTrain[0]
	if q.Index != 3 || q.ID != poisoned || !strings.Contains(q.Err, "injected fault") {
		t.Fatalf("quarantined record = %+v", q)
	}
	// The trained system still works (its own Process path has no hook).
	sys.processHook = nil
	if f1 := f1Of(sys.PredictAll(test), test.Labels()); f1 < 0.8 {
		t.Fatalf("quarantined run F1 = %v, want >= 0.8", f1)
	}
}

func TestProcessAllContextQuarantine(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	poisoned := map[int]bool{test.Pairs[1].ID: true, test.Pairs[7].ID: true}
	sys.processHook = func(p data.Pair) {
		if poisoned[p.ID] {
			panic("boom")
		}
	}
	defer func() { sys.processHook = nil }()
	recs, errs, err := sys.ProcessAllContext(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != len(poisoned) {
		t.Fatalf("quarantined %d records, want %d: %v", len(errs), len(poisoned), errs)
	}
	for _, re := range errs {
		if !poisoned[re.ID] || recs[re.Index] != nil || !strings.Contains(re.Err, "panic: boom") {
			t.Fatalf("bad quarantine entry %+v", re)
		}
	}
	healthy := 0
	for i, rec := range recs {
		if rec != nil {
			healthy++
		} else if !poisoned[test.Pairs[i].ID] {
			t.Fatalf("record %d dropped without a fault", i)
		}
	}
	if healthy != test.Size()-len(poisoned) {
		t.Fatalf("healthy records = %d, want %d", healthy, test.Size()-len(poisoned))
	}
}

func TestProcessAllContextCancel(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sys.ProcessAllContext(ctx, test); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCheckpointRejectsTampering(t *testing.T) {
	train, valid, _ := faultSplits(t)
	cfg := fastConfig()
	ck, err := newCheckpointer(t.TempDir(), cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	src, err := (&System{cfg: cfg, schema: train.Schema}).buildSourceCtx(context.Background(), train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.saveEmbeddings(src); err != nil {
		t.Fatal(err)
	}
	report := &TrainReport{}
	if _, ok := ck.loadEmbeddings(report); !ok || len(report.CheckpointWarnings) != 0 {
		t.Fatalf("pristine checkpoint rejected: %v", report.CheckpointWarnings)
	}

	path := ck.path(StageEmbeddings)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(t *testing.T, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		report := &TrainReport{}
		if _, ok := ck.loadEmbeddings(report); ok {
			t.Fatal("corrupt checkpoint accepted")
		}
		if len(report.CheckpointWarnings) == 0 {
			t.Fatal("rejection produced no warning")
		}
	}
	t.Run("truncated", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return b[:len(b)/2] })
	})
	t.Run("flipped byte", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { b[len(b)-10] ^= 0xff; return b })
	})
	t.Run("garbage", func(t *testing.T) {
		corrupt(t, func([]byte) []byte { return []byte("not a checkpoint") })
	})

	// Restore the pristine file: a different config or different data must
	// still reject it via the fingerprints.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Run("config mismatch", func(t *testing.T) {
		other := cfg
		other.Seed = cfg.Seed + 1
		ck2 := &checkpointer{dir: ck.dir, cfgSum: fingerprintConfig(other), dataSum: ck.dataSum}
		report := &TrainReport{}
		if _, ok := ck2.loadEmbeddings(report); ok {
			t.Fatal("checkpoint accepted under a different config")
		}
	})
	t.Run("data mismatch", func(t *testing.T) {
		ck2 := &checkpointer{dir: ck.dir, cfgSum: ck.cfgSum, dataSum: fingerprintData(valid, train)}
		report := &TrainReport{}
		if _, ok := ck2.loadEmbeddings(report); ok {
			t.Fatal("checkpoint accepted for different data")
		}
	})
}

// TestResumeRecoversFromCorruptCheckpoint: a damaged checkpoint must not
// abort a resume — the stage is recomputed and the run still completes.
func TestResumeRecoversFromCorruptCheckpoint(t *testing.T) {
	train, valid, test := faultSplits(t)
	cfg := fastConfig()
	dir := t.TempDir()

	golden, _, err := TrainWithOptions(context.Background(), train, valid, cfg,
		TrainOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Damage the model and scorer checkpoints: resume must fall back to the
	// embeddings+units prefix and retrain the rest to the same result.
	for _, st := range []Stage{StageModel, StageScorer} {
		path := filepath.Join(dir, fmt.Sprintf("stage%d-%s.ckpt", int(st), st))
		if err := os.WriteFile(path, []byte("damaged"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	resumed, report, err := TrainWithOptions(context.Background(), train, valid, cfg,
		TrainOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 2 {
		t.Fatalf("resumed stages = %v, want the embeddings+units prefix", report.Resumed)
	}
	if len(report.CheckpointWarnings) == 0 {
		t.Fatal("damaged checkpoints produced no warnings")
	}
	if !bytes.Equal(predictionFingerprint(resumed, test), predictionFingerprint(golden, test)) {
		t.Fatal("recovery run's predictions differ from the original")
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageEmbeddings: "embeddings",
		StageUnits:      "units",
		StageScorer:     "scorer",
		StageFeatures:   "features",
		StageModel:      "model",
		Stage(42):       "stage(42)",
	}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("Stage(%d).String() = %q, want %q", int(st), st.String(), s)
		}
	}
	r := &TrainReport{QuarantinedTrain: make([]RecordError, 2), QuarantinedValid: make([]RecordError, 1)}
	if r.Quarantined() != 3 {
		t.Fatalf("Quarantined() = %d", r.Quarantined())
	}
}
