package core

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wym/internal/arena"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions and probabilities must be identical on every test record.
	for _, p := range test.Pairs {
		l1, p1 := sys.Predict(p)
		l2, p2 := loaded.Predict(p)
		if l1 != l2 || p1 != p2 {
			t.Fatalf("prediction diverged after reload: %d/%v vs %d/%v", l1, p1, l2, p2)
		}
	}
	// Explanations must match too (scores flow through scorer + space +
	// model coefficients).
	ex1 := sys.Explain(test.Pairs[0])
	ex2 := loaded.Explain(test.Pairs[0])
	if len(ex1.Units) != len(ex2.Units) {
		t.Fatalf("unit counts differ: %d vs %d", len(ex1.Units), len(ex2.Units))
	}
	for i := range ex1.Units {
		if ex1.Units[i] != ex2.Units[i] {
			t.Fatalf("unit %d differs: %+v vs %+v", i, ex1.Units[i], ex2.Units[i])
		}
	}
	if loaded.ModelName() != sys.ModelName() {
		t.Fatalf("model name = %q, want %q", loaded.ModelName(), sys.ModelName())
	}
	if len(loaded.Report()) != len(sys.Report()) {
		t.Fatal("report lost")
	}
	// The stage-timing spans persist with the model.
	spans := loaded.StageSpans()
	if len(spans) == 0 || len(spans) != len(sys.StageSpans()) {
		t.Fatalf("spans = %d after reload, want %d (non-zero)", len(spans), len(sys.StageSpans()))
	}
	names := make(map[string]bool, len(spans))
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"embeddings/cooc", "units/train", "scorer/train", "features", "model/select"} {
		if !names[want] {
			t.Fatalf("reloaded spans missing %q (have %v)", want, names)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	sys, test := trainOn(t, "S-FZ", 1.0, fastConfig())
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := sys.Predict(test.Pairs[0])
	l2, _ := loaded.Predict(test.Pairs[0])
	if l1 != l2 {
		t.Fatal("file round trip changed predictions")
	}
}

func TestSaveUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := (&System{}).Save(&buf); err == nil {
		t.Fatal("expected error saving an untrained system")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadFileCorruptInputs(t *testing.T) {
	dir := t.TempDir()

	// A gob of an entirely different type: valid stream, wrong payload.
	wrongType := filepath.Join(dir, "wrong-type.gob")
	f, err := os.Create(wrongType)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(map[string]int{"not": 1, "a": 2, "system": 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cases := []struct {
		name  string
		want  string // required error substring beyond the path ("" = any)
		setup func(t *testing.T) string
	}{
		{"garbage bytes", "", func(t *testing.T) string {
			p := filepath.Join(dir, "garbage.gob")
			if err := os.WriteFile(p, []byte("\x00\xff definitely not a gob"), 0o644); err != nil {
				t.Fatal(err)
			}
			return p
		}},
		// The truncation preflight must call an empty artifact what it
		// is, not relay the decoder's bare EOF.
		{"zero-byte file", "truncated", func(t *testing.T) string {
			p := filepath.Join(dir, "empty.gob")
			if err := os.WriteFile(p, nil, 0o644); err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"arena magic only", "truncated", func(t *testing.T) string {
			p := filepath.Join(dir, "magic-only.wyma")
			if err := os.WriteFile(p, []byte(arena.Magic), 0o644); err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"partial arena header", "truncated", func(t *testing.T) string {
			p := filepath.Join(dir, "half-header.wyma")
			buf := make([]byte, arena.HeaderSize/2)
			copy(buf, arena.Magic)
			if err := os.WriteFile(p, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"wrong-type gob", "", func(t *testing.T) string { return wrongType }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := tc.setup(t)
			sys, err := LoadFile(path)
			if err == nil {
				t.Fatalf("LoadFile(%s) succeeded on corrupt input (%v)", path, sys)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error %q does not name the offending file %q", err, path)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLoadFileTruncated(t *testing.T) {
	// A prefix of a real snapshot must fail loudly, not yield a
	// half-initialized system.
	sys, _ := trainOn(t, "S-FZ", 1.0, fastConfig())
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truncated.gob")
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("expected error loading a truncated snapshot")
	} else if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the file", err)
	}
}

func TestSaveLoadAllVariants(t *testing.T) {
	// Every scorer and embedding variant must survive the round trip —
	// each exercises different gob-registered concrete types.
	d := fullDataset(mustProfile(t, "S-FZ"))
	variants := []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.Embedding = BERTPretrained },
		func(c *Config) { c.Scorer = ScorerBinary },
		func(c *Config) { c.Scorer = ScorerCosine },
		func(c *Config) { c.Features = FeaturesSimplified },
	}
	for i, mutate := range variants {
		cfg := fastConfig()
		mutate(&cfg)
		train, valid, test := d.MustSplit(0.6, 0.2, 1)
		sys, err := Train(train, valid, cfg)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := sys.Save(&buf); err != nil {
			t.Fatalf("variant %d save: %v", i, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("variant %d load: %v", i, err)
		}
		for _, pr := range test.Pairs[:10] {
			l1, p1 := sys.Predict(pr)
			l2, p2 := loaded.Predict(pr)
			if l1 != l2 || p1 != p2 {
				t.Fatalf("variant %d diverged after reload", i)
			}
		}
	}
}
