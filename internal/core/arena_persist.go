package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"wym/internal/arena"
	"wym/internal/classify"
	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/features"
	"wym/internal/obs"
	"wym/internal/relevance"
)

// Arena persistence (DESIGN §10): a fitted System compiles into a flat
// .wyma artifact — the embedding vocabulary as a contiguous float32 (or
// int8) vector arena, the relevance network in padded float32 layout,
// and everything gob can't lay out flat (config, schema, feature space,
// classifier, training report) gob-encoded into the arena's metadata
// section. Loading mmaps the file, validates the header and checksum,
// decodes only the small metadata blob, and wires the zero-copy
// embed.Arena source and relevance.FastNN scorer into the same
// pipeline engine a gob-loaded system uses. Gob remains the
// interchange and training format; the arena is the serving format.

// Model format identifiers reported by (*System).Format.
const (
	FormatGob       = "gob"
	FormatArenaF32  = "arena-f32"
	FormatArenaInt8 = "arena-int8"
)

// scorer kind tags stored in the arena metadata.
const (
	scorerTagNN     = "nn"
	scorerTagBinary = "binary"
	scorerTagCosine = "cosine"
)

// arenaMeta is the gob-encoded metadata section of a .wyma file: the
// systemSnapshot minus the two components the arena stores flat (the
// embedding source and the NN scorer weights).
type arenaMeta struct {
	Cfg        configShadow
	Schema     data.Schema
	Space      *features.Space
	Model      classify.Classifier
	Report     []classify.Score
	Timing     Timing
	Spans      []obs.Span
	ScorerKind string
	// FeedbackN/FeedbackFP/FeedbackThreshold carry the online-learning
	// provenance of the source model into the read-only arena (gob
	// tolerates their absence in pre-feedback artifacts). Arena systems
	// cannot accept further feedback; the count and fingerprint exist so
	// `wym model info` stays truthful, and the recalibrated threshold so
	// the arena serves the same decisions as its gob source.
	FeedbackN         int
	FeedbackFP        string
	FeedbackThreshold float64
}

// ArenaOptions configures SaveArenaFile.
type ArenaOptions struct {
	// Int8 stores vectors quantized to int8 with per-vector scales
	// (4x smaller vector storage, ~0.4% vector error).
	Int8 bool
}

// Format reports the on-disk representation this system was loaded
// from (or will save to): FormatGob for trained and gob-loaded
// systems, FormatArenaF32/FormatArenaInt8 for arena-backed ones.
func (s *System) Format() string {
	if s.format == "" {
		return FormatGob
	}
	return s.format
}

// ArenaFile returns the backing arena mapping for an arena-backed
// system, or nil for gob-backed and freshly trained systems.
func (s *System) ArenaFile() *arena.File { return s.arena }

// SaveArenaFile compiles the fitted system into a .wyma arena at path.
// It fails on an untrained system and on component variants the flat
// format cannot represent (exotic embedding stacks).
func (s *System) SaveArenaFile(path string, opts ArenaOptions) error {
	if s.model == nil || s.scorer == nil || s.source == nil {
		return fmt.Errorf("core: cannot save an untrained system")
	}
	build, err := embed.CompileArena(s.source, embed.CompileOptions{Int8: opts.Int8})
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	meta := arenaMeta{
		Cfg:               shadowOf(s.cfg),
		Schema:            s.schema,
		Space:             s.space,
		Model:             s.model,
		Report:            s.report,
		Timing:            s.timing,
		Spans:             s.spans,
		FeedbackN:         s.feedbackN,
		FeedbackFP:        s.FeedbackFingerprint(),
		FeedbackThreshold: s.fbThreshold,
	}
	switch sc := s.scorer.(type) {
	case *relevance.NN:
		fast, err := relevance.NewFastNN(sc)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		build.Scorer = fast.Spec()
		meta.ScorerKind = scorerTagNN
	case *relevance.FastNN:
		build.Scorer = sc.Spec()
		meta.ScorerKind = scorerTagNN
	case relevance.Binary:
		meta.ScorerKind = scorerTagBinary
	case relevance.Cosine:
		meta.ScorerKind = scorerTagCosine
	default:
		return fmt.Errorf("core: cannot compile scorer %T into an arena", s.scorer)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&meta); err != nil {
		return fmt.Errorf("core: encoding arena metadata: %w", err)
	}
	build.Meta = buf.Bytes()
	if err := arena.WriteFile(path, build); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// loadArenaFile opens a .wyma arena and assembles a serving System
// around its zero-copy views. Errors carry the file path, matching
// LoadFile's gob branch.
func loadArenaFile(path string) (*System, error) {
	f, err := arena.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sys, err := systemFromArena(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return sys, nil
}

// systemFromArena builds a System over an opened arena. On success the
// System owns f (kept alive via the embedding source and s.arena).
func systemFromArena(f *arena.File) (*System, error) {
	var meta arenaMeta
	if err := gob.NewDecoder(bytes.NewReader(f.Meta)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("core: decoding arena metadata: %w", err)
	}
	if meta.Model == nil || meta.Space == nil {
		return nil, fmt.Errorf("core: arena metadata is missing fitted components")
	}
	src, err := embed.NewArena(f)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var scorer relevance.Scorer
	switch meta.ScorerKind {
	case scorerTagNN:
		fast, err := relevance.FastNNFromSpec(f.Scorer)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		scorer = fast
	case scorerTagBinary:
		scorer = relevance.Binary{}
	case scorerTagCosine:
		scorer = relevance.Cosine{}
	default:
		return nil, fmt.Errorf("core: arena has unknown scorer kind %q", meta.ScorerKind)
	}
	format := FormatArenaF32
	if f.Int8() {
		format = FormatArenaInt8
	}
	s := &System{
		cfg:         meta.Cfg.config(),
		schema:      meta.Schema,
		source:      src,
		scorer:      scorer,
		space:       meta.Space,
		model:       meta.Model,
		report:      meta.Report,
		timing:      meta.Timing,
		spans:       meta.Spans,
		format:      format,
		arena:       f,
		feedbackN:   meta.FeedbackN,
		feedbackFP:  meta.FeedbackFP,
		fbThreshold: meta.FeedbackThreshold,
	}
	s.rebuildEngine()
	return s, nil
}

// sniffArena reports whether the file at path starts with the arena
// magic. Read errors are deferred to the format-specific loader.
func sniffArena(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [len(arena.Magic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == arena.Magic
}
