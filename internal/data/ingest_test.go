package data

import (
	"errors"
	"strings"
	"testing"
)

// dirtyCSV is the acceptance fixture: a 2-attribute dataset whose data
// rows exercise six distinct corruption kinds, each annotated with the
// 1-based line it starts on. Line 5's quoted field embeds a newline, so
// physical lines and row numbers diverge from there — the reported line
// numbers must still point at the start of each bad row.
const dirtyCSV = "label,left_name,left_brand,right_name,right_brand\n" + // line 1: header
	"1,camera x100,fuji,camera x-100,fuji\n" + // line 2: clean
	"1,lens 50mm,lens 50 mm\n" + // line 3: arity (3 fields)
	"2,printer a4,hp,printer a-4,hp\n" + // line 4: invalid label
	"0,\"tv\noled\",lg,tv oled,lg\n" + // line 5-6: clean, embedded newline
	"1,,sony,x200,\n" + // line 7: clean (partial blanks are fine)
	"0,,,,\n" + // line 8: both sides empty -> left reported first
	"1,camera x100,fuji,camera x-100,fuji\n" + // line 9: duplicate of line 2
	"0,phone 5g,moto,phone5g,moto\n" + // line 10: clean
	"\"broken quote,x,y,a,b\n" + // line 11: parse error (unterminated quote swallows the rest)
	" \n" // line 12: trailing blank line (never reached: the bare quote eats it)

func TestLenientIngestQuarantine(t *testing.T) {
	d, report, err := ReadCSVLenient(strings.NewReader(dirtyCSV), "dirty", LoadOptions{})
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if d.Size() != 4 {
		t.Fatalf("loaded %d clean rows, want 4: %+v", d.Size(), d.Pairs)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("loaded dataset invalid: %v", err)
	}
	if report.Loaded != 4 || report.Rows != 4+len(report.Quarantined) {
		t.Fatalf("report accounting off: %+v", report)
	}
	want := []struct {
		line int
		kind RowErrorKind
	}{
		{3, RowErrArity},
		{4, RowErrLabel},
		{8, RowErrEmptySide},
		{9, RowErrDuplicate},
		{11, RowErrParse},
	}
	if len(report.Quarantined) != len(want) {
		t.Fatalf("quarantined %d rows, want %d: %v", len(report.Quarantined), len(want), report.Quarantined)
	}
	for i, w := range want {
		got := report.Quarantined[i]
		if got.Line != w.line || got.Kind != w.kind {
			t.Errorf("quarantine %d = line %d [%s], want line %d [%s] (%s)",
				i, got.Line, got.Kind, w.line, w.kind, got.Msg)
		}
	}
	// The duplicate message must name the original row.
	if msg := report.Quarantined[3].Msg; !strings.Contains(msg, "line 2") {
		t.Errorf("duplicate message %q does not name line 2", msg)
	}
}

func TestLenientIngestBlankTrailingLine(t *testing.T) {
	in := "label,left_a,right_a\n1,x,y\n \n"
	d, report, err := ReadCSVLenient(strings.NewReader(in), "t", LoadOptions{})
	if err != nil || d.Size() != 1 {
		t.Fatalf("load: %v, size %d", err, d.Size())
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0].Kind != RowErrBlank ||
		report.Quarantined[0].Line != 3 {
		t.Fatalf("quarantine = %v, want blank line 3", report.Quarantined)
	}
	// Strict reader: same input is a hard error naming the line.
	if _, err := ReadCSV(strings.NewReader(in), "t"); err == nil ||
		!strings.Contains(err.Error(), "line 3") {
		t.Fatalf("strict read of blank line = %v, want line-3 error", err)
	}
}

func TestIngestBOMHeader(t *testing.T) {
	in := "\ufefflabel,left_a,right_a\n1,x,y\n"
	for _, mode := range []string{"strict", "lenient"} {
		var d *Dataset
		var err error
		if mode == "strict" {
			d, err = ReadCSV(strings.NewReader(in), "bom")
		} else {
			d, _, err = ReadCSVLenient(strings.NewReader(in), "bom", LoadOptions{})
		}
		if err != nil {
			t.Fatalf("%s: BOM header rejected: %v", mode, err)
		}
		if len(d.Schema) != 1 || d.Schema[0] != "a" || d.Size() != 1 {
			t.Fatalf("%s: schema %v size %d", mode, d.Schema, d.Size())
		}
	}
}

func TestIngestTruncatedFiles(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"header cut mid-column", "label,left_a,rig"},
		{"row cut mid-quote", "label,left_a,right_a\n1,\"unterminated"},
		{"row cut short", "label,left_a,right_a\n1,x,y\n0,z"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Strict: anything structurally broken is an error; a cut that
			// happens to parse (mid-column header cut) fails header checks.
			if _, err := ReadCSV(strings.NewReader(c.input), "t"); c.name != "row cut short" && err == nil {
				t.Fatalf("strict accepted %q", c.input)
			}
			// Lenient: must not panic; bad rows are quarantined, a bad
			// header is still an error.
			d, report, err := ReadCSVLenient(strings.NewReader(c.input), "t", LoadOptions{})
			if err == nil && d != nil {
				if vErr := d.Validate(); vErr != nil {
					t.Fatalf("lenient produced invalid dataset: %v", vErr)
				}
				if report == nil {
					t.Fatal("nil report without error")
				}
			}
		})
	}
}

func TestIngestQuotedNewlineLineNumbers(t *testing.T) {
	// Two multi-line rows before the bad row: naive row counting would
	// report line 4; the parser's position must say 8.
	in := "label,left_a,right_a\n" + // 1
		"1,\"a\nb\",ab\n" + // 2-3
		"0,\"c\nd\",cd\n" + // 4-5
		"9,x,y\n" + // 6: bad label
		"1,ok,ok\n" // 7
	_, report, err := ReadCSVLenient(strings.NewReader(in), "t", LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0].Line != 6 {
		t.Fatalf("quarantine = %v, want bad label at line 6", report.Quarantined)
	}
	if _, err := ReadCSV(strings.NewReader(in), "t"); err == nil ||
		!strings.Contains(err.Error(), "line 6") {
		t.Fatalf("strict error %v, want line 6", err)
	}
}

func TestIngestErrorBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("label,left_a,right_a\n")
	for i := 0; i < 10; i++ {
		b.WriteString("7,x,y\n") // every row has a bad label
	}
	_, report, err := ReadCSVLenient(strings.NewReader(b.String()), "t", LoadOptions{ErrorBudget: 3})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if len(report.Quarantined) != 4 {
		t.Fatalf("aborted after %d quarantines, want 4 (budget 3 + the straw)", len(report.Quarantined))
	}

	// Unlimited budget: the same file loads (to zero rows) without error.
	d, report, err := ReadCSVLenient(strings.NewReader(b.String()), "t", LoadOptions{ErrorBudget: -1})
	if err != nil || d.Size() != 0 || len(report.Quarantined) != 10 {
		t.Fatalf("unlimited budget: err=%v size=%d quarantined=%d", err, d.Size(), len(report.Quarantined))
	}
}

func TestIngestStrictOptionFailsFast(t *testing.T) {
	in := "label,left_a,right_a\n1,x,y\n9,z,w\n1,a,b\n"
	_, report, err := ReadCSVLenient(strings.NewReader(in), "t", LoadOptions{Strict: true})
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want fail-fast at line 3", err)
	}
	if len(report.Quarantined) != 1 {
		t.Fatalf("strict mode recorded %d rows, want 1", len(report.Quarantined))
	}
}

func TestStrictReadCSVArityFromHeader(t *testing.T) {
	// The old reader (FieldsPerRecord = -1 plus a manual check) and the new
	// one agree: short and long rows are rejected with their line number.
	for _, in := range []string{
		"label,left_a,right_a\n1,x\n",
		"label,left_a,right_a\n1,x,y,z\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in), "t"); err == nil ||
			!strings.Contains(err.Error(), "line 2") {
			t.Fatalf("input %q: err = %v, want line-2 arity error", in, err)
		}
	}
}

func TestLoadFileLenient(t *testing.T) {
	d, report, err := LoadFileLenient("/does/not/exist.csv", LoadOptions{})
	if err == nil || d != nil || report != nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadReportString(t *testing.T) {
	r := &LoadReport{Name: "x", Rows: 5, Loaded: 4,
		Quarantined: []RowError{{Line: 3, Kind: RowErrLabel, Msg: "invalid label \"9\""}}}
	if r.Clean() {
		t.Fatal("report with quarantined rows is not clean")
	}
	s := r.String()
	if !strings.Contains(s, "4/5") || !strings.Contains(s, "1 quarantined") {
		t.Fatalf("summary %q", s)
	}
}
