package data

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleDataset(nPos, nNeg int) *Dataset {
	d := &Dataset{Name: "test", Schema: Schema{"name", "brand"}}
	for i := 0; i < nPos; i++ {
		d.Pairs = append(d.Pairs, Pair{
			ID: len(d.Pairs), Label: Match,
			Left:  Entity{"camera x100", "sony"},
			Right: Entity{"camera x-100", "sony"},
		})
	}
	for i := 0; i < nNeg; i++ {
		d.Pairs = append(d.Pairs, Pair{
			ID: len(d.Pairs), Label: NonMatch,
			Left:  Entity{"camera x100", "sony"},
			Right: Entity{"printer p20", "hp"},
		})
	}
	return d
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{"name", "brand", "price"}
	if s.Index("brand") != 1 {
		t.Fatalf("Index(brand) = %d", s.Index("brand"))
	}
	if s.Index("missing") != -1 {
		t.Fatal("missing attribute should return -1")
	}
}

func TestEntityClone(t *testing.T) {
	e := Entity{"a", "b"}
	c := e.Clone()
	c[0] = "z"
	if e[0] != "a" {
		t.Fatal("Clone aliases the original")
	}
}

func TestCounts(t *testing.T) {
	d := sampleDataset(3, 7)
	if d.Size() != 10 || d.Matches() != 3 {
		t.Fatalf("size/matches = %d/%d", d.Size(), d.Matches())
	}
	if math.Abs(d.MatchRate()-0.3) > 1e-12 {
		t.Fatalf("match rate = %v", d.MatchRate())
	}
	empty := &Dataset{}
	if empty.MatchRate() != 0 {
		t.Fatal("empty match rate should be 0")
	}
	labels := d.Labels()
	if len(labels) != 10 || labels[0] != 1 || labels[9] != 0 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestSplitProportionsAndStratification(t *testing.T) {
	d := sampleDataset(100, 400)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	if train.Size() != 300 || valid.Size() != 100 || test.Size() != 100 {
		t.Fatalf("split sizes = %d/%d/%d", train.Size(), valid.Size(), test.Size())
	}
	for _, s := range []*Dataset{train, valid, test} {
		if math.Abs(s.MatchRate()-0.2) > 0.02 {
			t.Fatalf("split %s match rate = %v, want ~0.2", s.Name, s.MatchRate())
		}
	}
	// Splits must partition the dataset: no pair lost or duplicated.
	seen := map[int]int{}
	for _, s := range []*Dataset{train, valid, test} {
		for _, p := range s.Pairs {
			seen[p.ID]++
		}
	}
	if len(seen) != 500 {
		t.Fatalf("partition covers %d of 500 pairs", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("pair %d appears %d times", id, n)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := sampleDataset(20, 80)
	a1, _, _ := d.MustSplit(0.6, 0.2, 5)
	a2, _, _ := d.MustSplit(0.6, 0.2, 5)
	if !reflect.DeepEqual(a1.Pairs, a2.Pairs) {
		t.Fatal("same seed should give identical splits")
	}
	b, _, _ := d.MustSplit(0.6, 0.2, 6)
	if reflect.DeepEqual(a1.Pairs, b.Pairs) {
		t.Fatal("different seeds should differ")
	}
}

func TestSplitRejectsBadFractions(t *testing.T) {
	for _, frac := range [][2]float64{{0.8, 0.4}, {-0.1, 0.2}, {0.6, -0.2}} {
		if _, _, _, err := sampleDataset(1, 1).Split(frac[0], frac[1], 1); err == nil {
			t.Fatalf("fractions %v/%v: expected error", frac[0], frac[1])
		}
	}
	if _, _, _, err := sampleDataset(2, 2).Split(0.6, 0.2, 1); err != nil {
		t.Fatalf("valid fractions: %v", err)
	}
}

func TestMustSplitPanicsOnBadFractions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sampleDataset(1, 1).MustSplit(0.8, 0.4, 1)
}

func TestSampleStratified(t *testing.T) {
	d := sampleDataset(100, 400)
	s := d.Sample(50, 3)
	if s.Size() != 50 {
		t.Fatalf("sample size = %d", s.Size())
	}
	if math.Abs(s.MatchRate()-0.2) > 0.05 {
		t.Fatalf("sample match rate = %v", s.MatchRate())
	}
	// Oversampling returns everything.
	if d.Sample(10_000, 3).Size() != 500 {
		t.Fatal("oversample should return the full dataset")
	}
}

func TestSampleKeepsAtLeastOnePositive(t *testing.T) {
	d := sampleDataset(2, 198)
	s := d.Sample(10, 1)
	if s.Matches() < 1 {
		t.Fatal("stratified sample lost all positives")
	}
}

func TestValidate(t *testing.T) {
	d := sampleDataset(1, 1)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := &Dataset{Schema: Schema{"a", "b"}, Pairs: []Pair{{Left: Entity{"x"}, Right: Entity{"y", "z"}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected arity error")
	}
	bad2 := sampleDataset(1, 0)
	bad2.Pairs[0].Label = 7
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected label error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDataset(2, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Schema, d.Schema) {
		t.Fatalf("schema = %v", got.Schema)
	}
	if len(got.Pairs) != len(d.Pairs) {
		t.Fatalf("pairs = %d", len(got.Pairs))
	}
	for i := range d.Pairs {
		if !reflect.DeepEqual(got.Pairs[i].Left, d.Pairs[i].Left) ||
			!reflect.DeepEqual(got.Pairs[i].Right, d.Pairs[i].Right) ||
			got.Pairs[i].Label != d.Pairs[i].Label {
			t.Fatalf("pair %d differs: %+v vs %+v", i, got.Pairs[i], d.Pairs[i])
		}
	}
}

func TestCSVCommasAndQuotes(t *testing.T) {
	d := &Dataset{Name: "q", Schema: Schema{"name"}}
	d.Pairs = append(d.Pairs, Pair{
		Label: Match,
		Left:  Entity{`cable, "gold" 2m`},
		Right: Entity{`cable gold 2m`},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "q")
	if err != nil {
		t.Fatal(err)
	}
	if got.Pairs[0].Left[0] != `cable, "gold" 2m` {
		t.Fatalf("quoted value = %q", got.Pairs[0].Left[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad header", "x,left_a,right_a\n"},
		{"unbalanced", "label,left_a\n"},
		{"mismatched attrs", "label,left_a,right_b\n"},
		{"bad prefix", "label,l_a,right_a\n"},
		{"bad label", "label,left_a,right_a\n7,x,y\n"},
		{"short row", "label,left_a,right_a\n1,x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in), "bad"); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := sampleDataset(1, 2)
	path := filepath.Join(t.TempDir(), "round.csv")
	if err := SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "round" {
		t.Fatalf("name = %q", got.Name)
	}
	if got.Size() != 3 {
		t.Fatalf("size = %d", got.Size())
	}
}

func TestSubset(t *testing.T) {
	d := sampleDataset(2, 2)
	s := d.Subset("sub", []int{3, 0})
	if s.Size() != 2 || s.Pairs[0].ID != 3 || s.Pairs[1].ID != 0 {
		t.Fatalf("subset = %+v", s.Pairs)
	}
}
