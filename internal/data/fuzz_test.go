package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV reader: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	d := &Dataset{Name: "seed", Schema: Schema{"name", "brand"}}
	d.Pairs = append(d.Pairs, Pair{Label: Match,
		Left: Entity{"camera, \"x100\"", "fuji"}, Right: Entity{"camera x100", "fuji"}})
	if err := WriteCSV(&seed, d); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("label,left_a,right_a\n1,x,y\n")
	f.Add("not a csv at all")
	f.Add("label,left_a,right_a\n9,x\n")
	f.Add("\ufefflabel,left_a,right_a\n1,x,y\n \n")

	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadCSV(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, got); err != nil {
			t.Fatalf("rewriting accepted dataset: %v", err)
		}
		again, err := ReadCSV(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Size() != got.Size() {
			t.Fatalf("round trip changed size: %d vs %d", again.Size(), got.Size())
		}
	})
}

// FuzzReadCSVLenient feeds arbitrary bytes to the quarantining loader: it
// must never panic, anything it loads must validate, and its report must
// account for every row. Accepted rows must survive a write/read round
// trip — the only rows the second pass may drop are duplicates, which can
// appear when the csv layer normalizes line endings inside quoted fields.
func FuzzReadCSVLenient(f *testing.F) {
	f.Add("label,left_a,right_a\n1,x,y\n9,bad,label\n1,x\n1,x,y\n")
	f.Add("\ufefflabel,left_a,right_a\n0,\"multi\nline\",m\n \n")
	f.Add("label,left_a,right_a\n\"bare quote,x\n0,,\n")
	f.Add("not a csv at all")

	f.Fuzz(func(t *testing.T, input string) {
		opts := LoadOptions{ErrorBudget: -1}
		got, report, err := ReadCSVLenient(strings.NewReader(input), "fuzz", opts)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("loaded dataset fails validation: %v", err)
		}
		if report.Loaded != got.Size() || report.Rows != report.Loaded+len(report.Quarantined) {
			t.Fatalf("report does not account for every row: %+v vs %d pairs", report, got.Size())
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, got); err != nil {
			t.Fatalf("rewriting loaded dataset: %v", err)
		}
		again, report2, err := ReadCSVLenient(&buf, "fuzz2", opts)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		for _, q := range report2.Quarantined {
			if q.Kind != RowErrDuplicate {
				t.Fatalf("round trip quarantined a non-duplicate row: %v", q)
			}
		}
		if again.Size()+len(report2.Quarantined) != got.Size() {
			t.Fatalf("round trip lost rows: %d+%d vs %d",
				again.Size(), len(report2.Quarantined), got.Size())
		}
	})
}
