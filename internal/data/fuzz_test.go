package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV reader: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	d := &Dataset{Name: "seed", Schema: Schema{"name", "brand"}}
	d.Pairs = append(d.Pairs, Pair{Label: Match,
		Left: Entity{"camera, \"x100\"", "fuji"}, Right: Entity{"camera x100", "fuji"}})
	if err := WriteCSV(&seed, d); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("label,left_a,right_a\n1,x,y\n")
	f.Add("not a csv at all")
	f.Add("label,left_a,right_a\n9,x\n")

	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadCSV(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, got); err != nil {
			t.Fatalf("rewriting accepted dataset: %v", err)
		}
		again, err := ReadCSV(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Size() != got.Size() {
			t.Fatalf("round trip changed size: %d vs %d", again.Size(), got.Size())
		}
	})
}
