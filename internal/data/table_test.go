package data

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRoundTrip(t *testing.T) {
	want := &Table{
		Name:   "catalog",
		Schema: Schema{"name", "brand", "price"},
		Rows: []Entity{
			{"camera x100", "fuji", "499.00"},
			{"espresso, deluxe", "delonghi", ""},
			{"quoted \"pro\" model", "acme", "12.50"},
		},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf, "catalog")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Schema) != len(want.Schema) || len(got.Rows) != len(want.Rows) {
		t.Fatalf("round trip shape: %+v", got)
	}
	for i := range want.Schema {
		if got.Schema[i] != want.Schema[i] {
			t.Fatalf("schema[%d] = %q, want %q", i, got.Schema[i], want.Schema[i])
		}
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d col %d = %q, want %q", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func TestTableFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "left.csv")
	want := &Table{Schema: Schema{"a", "b"}, Rows: []Entity{{"1", "2"}}}
	if err := SaveTableFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "left" {
		t.Fatalf("name = %q, want left", got.Name)
	}
	if len(got.Rows) != 1 || got.Rows[0][1] != "2" {
		t.Fatalf("rows = %+v", got.Rows)
	}
}

func TestReadTableErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty input", ""},
		{"blank header column", "name,,price\na,b,c\n"},
		{"short row", "name,brand\nonly-one\n"},
		{"long row", "name,brand\na,b,c\n"},
		{"trailing blank line", "name,brand\na,b\n \n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTable(strings.NewReader(tc.in), "t"); err == nil {
				t.Fatal("accepted malformed table")
			}
		})
	}
}

func TestReadTableBOM(t *testing.T) {
	got, err := ReadTable(strings.NewReader("\ufeffname,brand\na,b\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema[0] != "name" {
		t.Fatalf("BOM not stripped: %q", got.Schema[0])
	}
}

func TestTruthRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "truth.csv")
	want := [][2]int{{0, 3}, {1, 0}, {5, 5}}
	if err := SaveTruthFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTruthFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadTruthErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"wrong header", "l,r\n0,1\n"},
		{"non-integer", "left,right\nzero,1\n"},
		{"negative index", "left,right\n-1,2\n"},
		{"wrong arity", "left,right\n1,2,3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTruth(strings.NewReader(tc.in)); err == nil {
				t.Fatal("accepted malformed truth file")
			}
		})
	}
}

// TestTableFileErrorPaths covers the save/load failure branches: an
// unwritable destination and a missing source must both surface errors.
func TestTableFileErrorPaths(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "not-a-dir", "deep", "t.csv")
	tab := &Table{Schema: Schema{"name"}, Rows: []Entity{{"a"}}}
	if err := SaveTableFile(bad, tab); err == nil {
		t.Fatal("SaveTableFile into a missing directory succeeded")
	}
	if err := SaveTruthFile(bad, [][2]int{{0, 0}}); err == nil {
		t.Fatal("SaveTruthFile into a missing directory succeeded")
	}
	if _, err := LoadTableFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("LoadTableFile on a missing file succeeded")
	}
	if _, err := LoadTruthFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("LoadTruthFile on a missing file succeeded")
	}
}
