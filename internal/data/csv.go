package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteCSV encodes the dataset in the Magellan-style layout: a header of
// "label, left_<attr>..., right_<attr>..." followed by one row per pair.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, 1+2*len(d.Schema))
	header = append(header, "label")
	for _, a := range d.Schema {
		header = append(header, "left_"+a)
	}
	for _, a := range d.Schema {
		header = append(header, "right_"+a)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing header: %w", err)
	}
	row := make([]string, len(header))
	for _, p := range d.Pairs {
		row[0] = strconv.Itoa(p.Label)
		copy(row[1:], p.Left)
		copy(row[1+len(d.Schema):], p.Right)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing pair %d: %w", p.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// readHeader reads and validates the header row, returning the recovered
// schema. The first cell tolerates a UTF-8 byte-order mark — spreadsheet
// exports routinely prepend one.
func readHeader(cr *csv.Reader) (Schema, error) {
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading header: %w", err)
	}
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\ufeff")
	}
	if len(header) < 3 || header[0] != "label" {
		return nil, fmt.Errorf("data: header must start with 'label', got %v", header)
	}
	if (len(header)-1)%2 != 0 {
		return nil, fmt.Errorf("data: unbalanced left/right columns (%d)", len(header)-1)
	}
	m := (len(header) - 1) / 2
	schema := make(Schema, m)
	for i := 0; i < m; i++ {
		l, r := header[1+i], header[1+m+i]
		if !strings.HasPrefix(l, "left_") || !strings.HasPrefix(r, "right_") {
			return nil, fmt.Errorf("data: column %d/%d not left_/right_ prefixed: %q/%q", 1+i, 1+m+i, l, r)
		}
		la, ra := strings.TrimPrefix(l, "left_"), strings.TrimPrefix(r, "right_")
		if la != ra {
			return nil, fmt.Errorf("data: mismatched attribute order: %q vs %q", la, ra)
		}
		schema[i] = la
	}
	return schema, nil
}

// rowLine returns the 1-based input line on which the most recent row
// started: for failed reads the parser's own position (multi-line quoted
// fields make naive row counting wrong), for successful ones the position
// of the row's first field.
func rowLine(cr *csv.Reader, err error) int {
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		return pe.StartLine
	}
	line, _ := cr.FieldPos(0)
	return line
}

// parseLabel validates the label column of one row.
func parseLabel(field string) (int, error) {
	label, err := strconv.Atoi(strings.TrimSpace(field))
	if err != nil || (label != Match && label != NonMatch) {
		return 0, fmt.Errorf("invalid label %q", field)
	}
	return label, nil
}

// ReadCSV decodes a dataset from the layout produced by WriteCSV. The
// schema is recovered from the left_*/right_* header columns, which must
// mirror each other in order. ReadCSV is strict: the header's column count
// is enforced on every row, and the first malformed row (wrong arity, CSV
// syntax error, invalid label, whitespace-only trailing line) aborts the
// load with its line number. Use ReadCSVLenient to quarantine bad rows
// instead.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	// FieldsPerRecord = 0: lock the arity to the header's column count so
	// the csv layer itself flags short/long rows (the old -1 setting
	// accepted any arity and deferred detection to a manual check).
	cr.FieldsPerRecord = 0
	schema, err := readHeader(cr)
	if err != nil {
		return nil, err
	}
	m := len(schema)
	d := &Dataset{Name: name, Schema: schema}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line := rowLine(cr, err)
		if err != nil {
			if errors.Is(err, csv.ErrFieldCount) {
				if isBlankRow(rec) {
					return nil, fmt.Errorf("data: line %d is blank", line)
				}
				return nil, fmt.Errorf("data: line %d has %d fields, want %d", line, len(rec), 1+2*m)
			}
			return nil, fmt.Errorf("data: line %d: %w", line, err)
		}
		label, err := parseLabel(rec[0])
		if err != nil {
			return nil, fmt.Errorf("data: line %d has %v", line, err)
		}
		p := Pair{
			ID:    len(d.Pairs),
			Left:  append(Entity{}, rec[1:1+m]...),
			Right: append(Entity{}, rec[1+m:]...),
			Label: label,
		}
		d.Pairs = append(d.Pairs, p)
	}
	return d, nil
}

// isBlankRow reports whether a row is a whitespace-only line — the classic
// trailing blank line a text editor appends.
func isBlankRow(rec []string) bool {
	return len(rec) == 1 && strings.TrimSpace(rec[0]) == ""
}

// SaveFile writes the dataset to path as CSV.
func SaveFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	if err := WriteCSV(f, d); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from a CSV file; the dataset name is the path's
// base name without extension.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, baseName(path))
}

// baseName strips the directory and extension from a path for use as a
// dataset name.
func baseName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}
