package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteCSV encodes the dataset in the Magellan-style layout: a header of
// "label, left_<attr>..., right_<attr>..." followed by one row per pair.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, 1+2*len(d.Schema))
	header = append(header, "label")
	for _, a := range d.Schema {
		header = append(header, "left_"+a)
	}
	for _, a := range d.Schema {
		header = append(header, "right_"+a)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing header: %w", err)
	}
	row := make([]string, len(header))
	for _, p := range d.Pairs {
		row[0] = strconv.Itoa(p.Label)
		copy(row[1:], p.Left)
		copy(row[1+len(d.Schema):], p.Right)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing pair %d: %w", p.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a dataset from the layout produced by WriteCSV. The
// schema is recovered from the left_*/right_* header columns, which must
// mirror each other in order.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading header: %w", err)
	}
	if len(header) < 3 || header[0] != "label" {
		return nil, fmt.Errorf("data: header must start with 'label', got %v", header)
	}
	if (len(header)-1)%2 != 0 {
		return nil, fmt.Errorf("data: unbalanced left/right columns (%d)", len(header)-1)
	}
	m := (len(header) - 1) / 2
	schema := make(Schema, m)
	for i := 0; i < m; i++ {
		l, r := header[1+i], header[1+m+i]
		if !strings.HasPrefix(l, "left_") || !strings.HasPrefix(r, "right_") {
			return nil, fmt.Errorf("data: column %d/%d not left_/right_ prefixed: %q/%q", 1+i, 1+m+i, l, r)
		}
		la, ra := strings.TrimPrefix(l, "left_"), strings.TrimPrefix(r, "right_")
		if la != ra {
			return nil, fmt.Errorf("data: mismatched attribute order: %q vs %q", la, ra)
		}
		schema[i] = la
	}

	d := &Dataset{Name: name, Schema: schema}
	for lineNo := 2; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("data: line %d has %d fields, want %d", lineNo, len(rec), len(header))
		}
		label, err := strconv.Atoi(strings.TrimSpace(rec[0]))
		if err != nil || (label != Match && label != NonMatch) {
			return nil, fmt.Errorf("data: line %d has invalid label %q", lineNo, rec[0])
		}
		p := Pair{
			ID:    len(d.Pairs),
			Left:  append(Entity{}, rec[1:1+m]...),
			Right: append(Entity{}, rec[1+m:]...),
			Label: label,
		}
		d.Pairs = append(d.Pairs, p)
	}
	return d, nil
}

// SaveFile writes the dataset to path as CSV.
func SaveFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	if err := WriteCSV(f, d); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from a CSV file; the dataset name is the path's
// base name without extension.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return ReadCSV(f, base)
}
