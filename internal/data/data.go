// Package data defines the dataset model for entity-matching benchmarks: a
// common schema, entity descriptions, labeled record pairs, stratified
// train/validation/test splits, and a CSV interchange format compatible
// with the Magellan benchmark layout (label, left_*, right_* columns).
package data

import (
	"fmt"
	"math/rand"
)

// Schema is the ordered list of attribute names shared by both entity
// descriptions of every record (the paper assumes aligned schemas; §4).
type Schema []string

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a == name {
			return i
		}
	}
	return -1
}

// Entity is one entity description: attribute values aligned with a Schema.
type Entity []string

// Clone returns a copy of the entity.
func (e Entity) Clone() Entity {
	out := make(Entity, len(e))
	copy(out, e)
	return out
}

// Label values for a record pair.
const (
	NonMatch = 0
	Match    = 1
)

// Pair is one EM record: two entity descriptions and a match label.
type Pair struct {
	ID          int
	Left, Right Entity
	Label       int
}

// Dataset is a named collection of labeled pairs over one schema.
type Dataset struct {
	Name   string
	Schema Schema
	Pairs  []Pair
}

// Size returns the number of record pairs.
func (d *Dataset) Size() int { return len(d.Pairs) }

// Matches returns the number of records labeled Match.
func (d *Dataset) Matches() int {
	var n int
	for _, p := range d.Pairs {
		if p.Label == Match {
			n++
		}
	}
	return n
}

// MatchRate returns the fraction of matching records (0 for an empty set).
func (d *Dataset) MatchRate() float64 {
	if len(d.Pairs) == 0 {
		return 0
	}
	return float64(d.Matches()) / float64(len(d.Pairs))
}

// Labels returns the label column as a slice.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Pairs))
	for i, p := range d.Pairs {
		out[i] = p.Label
	}
	return out
}

// Subset returns a dataset containing the pairs at the given indices; the
// schema is shared, pairs are copied by value.
func (d *Dataset) Subset(name string, idx []int) *Dataset {
	out := &Dataset{Name: name, Schema: d.Schema, Pairs: make([]Pair, len(idx))}
	for i, j := range idx {
		out.Pairs[i] = d.Pairs[j]
	}
	return out
}

// Sample returns a stratified random sample of n pairs (all pairs when n
// exceeds the dataset size), preserving the match rate as closely as the
// rounding allows. The learning-curve experiment (§5.1.2) uses it.
func (d *Dataset) Sample(n int, seed int64) *Dataset {
	if n >= len(d.Pairs) {
		return d.Subset(d.Name, seqIndices(len(d.Pairs)))
	}
	rng := rand.New(rand.NewSource(seed))
	pos, neg := d.byLabel()
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	nPos := int(float64(n)*d.MatchRate() + 0.5)
	if nPos > len(pos) {
		nPos = len(pos)
	}
	if nPos < 1 && len(pos) > 0 {
		nPos = 1
	}
	nNeg := n - nPos
	if nNeg > len(neg) {
		nNeg = len(neg)
	}
	idx := append(append([]int{}, pos[:nPos]...), neg[:nNeg]...)
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return d.Subset(fmt.Sprintf("%s[n=%d]", d.Name, n), idx)
}

// Split partitions the dataset into train/validation/test subsets with the
// given fractions (test receives the remainder), stratified by label so
// each split preserves the match rate. The paper uses 60-20-20. Invalid
// fractions (negative, or summing past 1) return an error — bad split
// parameters are operator input in a training pipeline, not a programming
// error, so they must not crash the process.
func (d *Dataset) Split(trainFrac, validFrac float64, seed int64) (train, valid, test *Dataset, err error) {
	if trainFrac < 0 || validFrac < 0 || trainFrac+validFrac > 1 {
		return nil, nil, nil, fmt.Errorf("data: invalid split fractions %v/%v", trainFrac, validFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	pos, neg := d.byLabel()
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	var trainIdx, validIdx, testIdx []int
	cut := func(idx []int) {
		nTrain := int(float64(len(idx)) * trainFrac)
		nValid := int(float64(len(idx)) * validFrac)
		trainIdx = append(trainIdx, idx[:nTrain]...)
		validIdx = append(validIdx, idx[nTrain:nTrain+nValid]...)
		testIdx = append(testIdx, idx[nTrain+nValid:]...)
	}
	cut(pos)
	cut(neg)
	rng.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	rng.Shuffle(len(validIdx), func(i, j int) { validIdx[i], validIdx[j] = validIdx[j], validIdx[i] })
	rng.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })
	return d.Subset(d.Name+"/train", trainIdx),
		d.Subset(d.Name+"/valid", validIdx),
		d.Subset(d.Name+"/test", testIdx),
		nil
}

// MustSplit is Split for callers with statically valid fractions (tests,
// examples, benchmarks); it panics on error.
func (d *Dataset) MustSplit(trainFrac, validFrac float64, seed int64) (train, valid, test *Dataset) {
	train, valid, test, err := d.Split(trainFrac, validFrac, seed)
	if err != nil {
		panic(err)
	}
	return train, valid, test
}

func (d *Dataset) byLabel() (pos, neg []int) {
	for i, p := range d.Pairs {
		if p.Label == Match {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	return pos, neg
}

// Validate checks structural invariants: every entity has exactly one value
// per schema attribute and labels are 0/1.
func (d *Dataset) Validate() error {
	for i, p := range d.Pairs {
		if len(p.Left) != len(d.Schema) || len(p.Right) != len(d.Schema) {
			return fmt.Errorf("data: pair %d has %d/%d values for %d attributes",
				i, len(p.Left), len(p.Right), len(d.Schema))
		}
		if p.Label != Match && p.Label != NonMatch {
			return fmt.Errorf("data: pair %d has label %d", i, p.Label)
		}
	}
	return nil
}

func seqIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
