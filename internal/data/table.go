package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Table is a plain entity table: the input side of full-table matching.
// Unlike Dataset (labeled record pairs in the Magellan layout), a table is
// just rows over a schema — what a deployment actually has before any
// pairing happens.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Entity
}

// WriteTable encodes the table as CSV with the schema as header row.
func WriteTable(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema); err != nil {
		return fmt.Errorf("data: writing table header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing table row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTable decodes a plain entity table: the header row names the
// attributes, every following row is one entity. The header's column count
// is enforced on every row; the first malformed row aborts the load with
// its line number.
func ReadTable(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading table header: %w", err)
	}
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\ufeff")
	}
	for i, h := range header {
		if strings.TrimSpace(h) == "" {
			return nil, fmt.Errorf("data: table header column %d is blank", i+1)
		}
	}
	t := &Table{Name: name, Schema: append(Schema{}, header...)}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line := rowLine(cr, err)
		if err != nil {
			if errors.Is(err, csv.ErrFieldCount) {
				if isBlankRow(rec) {
					return nil, fmt.Errorf("data: line %d is blank", line)
				}
				return nil, fmt.Errorf("data: line %d has %d fields, want %d", line, len(rec), len(header))
			}
			return nil, fmt.Errorf("data: line %d: %w", line, err)
		}
		t.Rows = append(t.Rows, append(Entity{}, rec...))
	}
	return t, nil
}

// SaveTableFile writes the table to path as CSV.
func SaveTableFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	if err := WriteTable(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadTableFile reads an entity table from a CSV file; the table name is
// the path's base name without extension.
func LoadTableFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	return ReadTable(f, baseName(path))
}

// WriteTruth encodes ground-truth match pairs as a two-column CSV
// ("left,right" header, 0-based row indices) — the format the e2e harness
// and eval use to score a matching run.
func WriteTruth(w io.Writer, pairs [][2]int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"left", "right"}); err != nil {
		return fmt.Errorf("data: writing truth header: %w", err)
	}
	for i, p := range pairs {
		if err := cw.Write([]string{strconv.Itoa(p[0]), strconv.Itoa(p[1])}); err != nil {
			return fmt.Errorf("data: writing truth pair %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTruth decodes the pair list written by WriteTruth.
func ReadTruth(r io.Reader) ([][2]int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading truth header: %w", err)
	}
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\ufeff")
	}
	if len(header) != 2 || header[0] != "left" || header[1] != "right" {
		return nil, fmt.Errorf("data: truth header must be left,right, got %v", header)
	}
	var out [][2]int
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line := rowLine(cr, err)
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %w", line, err)
		}
		li, err1 := strconv.Atoi(strings.TrimSpace(rec[0]))
		ri, err2 := strconv.Atoi(strings.TrimSpace(rec[1]))
		if err1 != nil || err2 != nil || li < 0 || ri < 0 {
			return nil, fmt.Errorf("data: line %d has invalid pair %v", line, rec)
		}
		out = append(out, [2]int{li, ri})
	}
	return out, nil
}

// SaveTruthFile writes ground-truth pairs to path.
func SaveTruthFile(path string, pairs [][2]int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	if err := WriteTruth(f, pairs); err != nil {
		return err
	}
	return f.Close()
}

// LoadTruthFile reads ground-truth pairs from path.
func LoadTruthFile(path string) ([][2]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	return ReadTruth(f)
}
