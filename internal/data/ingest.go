package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Lenient ingest: real-world EM feeds are messy — truncated uploads,
// spreadsheet exports with BOMs and trailing blank lines, rows with the
// wrong column count, free-text labels, duplicated records. The strict
// reader (ReadCSV) fails fast on the first defect; the lenient reader
// quarantines bad rows with their line numbers into a LoadReport and keeps
// loading, aborting only when the defects exceed a configurable error
// budget. Training on a 2-million-row feed should not die on row 7.

// RowErrorKind classifies why a row was quarantined.
type RowErrorKind string

// Quarantine reasons.
const (
	RowErrParse     RowErrorKind = "parse"      // CSV syntax error (bare quote, ...)
	RowErrArity     RowErrorKind = "arity"      // wrong number of fields
	RowErrBlank     RowErrorKind = "blank"      // whitespace-only line
	RowErrLabel     RowErrorKind = "label"      // label not 0/1
	RowErrEmptySide RowErrorKind = "empty-side" // one entity entirely empty
	RowErrDuplicate RowErrorKind = "duplicate"  // exact duplicate of an earlier row
)

// RowError is one quarantined input row.
type RowError struct {
	Line int // 1-based input line the row started on
	Kind RowErrorKind
	Msg  string
}

// Error implements error.
func (e RowError) Error() string {
	return fmt.Sprintf("line %d: %s [%s]", e.Line, e.Msg, e.Kind)
}

// DefaultErrorBudget is the quarantine cap applied when LoadOptions leaves
// ErrorBudget at zero.
const DefaultErrorBudget = 64

// LoadOptions configures lenient ingest.
type LoadOptions struct {
	// Strict fails on the first bad row instead of quarantining — the
	// fail-fast mode for feeds that are supposed to be machine-generated.
	Strict bool
	// ErrorBudget caps the quarantined rows: exceeding it aborts the load,
	// on the theory that a mostly-broken file signals a schema or export
	// problem rather than scattered dirt. 0 selects DefaultErrorBudget;
	// negative means unlimited.
	ErrorBudget int
}

// budget resolves the configured error budget.
func (o LoadOptions) budget() int {
	switch {
	case o.ErrorBudget < 0:
		return int(^uint(0) >> 1)
	case o.ErrorBudget == 0:
		return DefaultErrorBudget
	default:
		return o.ErrorBudget
	}
}

// LoadReport summarizes a lenient load: how many rows were seen, how many
// made it into the dataset, and every quarantined row with its line number
// and reason.
type LoadReport struct {
	Name        string
	Rows        int // data rows seen (header excluded)
	Loaded      int
	Quarantined []RowError
}

// Clean reports whether every row loaded.
func (r *LoadReport) Clean() bool { return len(r.Quarantined) == 0 }

// String renders a one-line summary.
func (r *LoadReport) String() string {
	return fmt.Sprintf("%s: %d/%d rows loaded, %d quarantined",
		r.Name, r.Loaded, r.Rows, len(r.Quarantined))
}

// ErrBudgetExceeded wraps the abort when quarantined rows exceed the
// error budget.
var ErrBudgetExceeded = errors.New("data: error budget exceeded")

// ReadCSVLenient decodes a dataset from the WriteCSV layout, quarantining
// malformed rows instead of aborting. A corrupt header is still a hard
// error — without a schema nothing can load. The returned report is
// non-nil whenever the header parsed, including on budget aborts, so
// callers can show operators exactly which rows were bad.
func ReadCSVLenient(r io.Reader, name string, opts LoadOptions) (*Dataset, *LoadReport, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0
	schema, err := readHeader(cr)
	if err != nil {
		return nil, nil, err
	}
	m := len(schema)
	d := &Dataset{Name: name, Schema: schema}
	report := &LoadReport{Name: name}
	budget := opts.budget()
	seen := make(map[string]int) // full row content -> first line

	quarantine := func(line int, kind RowErrorKind, msg string) error {
		re := RowError{Line: line, Kind: kind, Msg: msg}
		report.Quarantined = append(report.Quarantined, re)
		if opts.Strict {
			return fmt.Errorf("data: %w", re)
		}
		if len(report.Quarantined) > budget {
			return fmt.Errorf("%w after %d bad rows (last: %v)",
				ErrBudgetExceeded, len(report.Quarantined), re)
		}
		return nil
	}

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		report.Rows++
		line := rowLine(cr, err)
		if err != nil {
			var kind RowErrorKind
			var msg string
			switch {
			case !errors.Is(err, csv.ErrFieldCount):
				kind, msg = RowErrParse, err.Error()
			case isBlankRow(rec):
				kind, msg = RowErrBlank, "blank line"
			default:
				kind, msg = RowErrArity, fmt.Sprintf("%d fields, want %d", len(rec), 1+2*m)
			}
			if qerr := quarantine(line, kind, msg); qerr != nil {
				return nil, report, qerr
			}
			continue
		}
		label, err := parseLabel(rec[0])
		if err != nil {
			if qerr := quarantine(line, RowErrLabel, err.Error()); qerr != nil {
				return nil, report, qerr
			}
			continue
		}
		if side, empty := emptySide(rec, m); empty {
			if qerr := quarantine(line, RowErrEmptySide,
				side+" entity has no attribute values"); qerr != nil {
				return nil, report, qerr
			}
			continue
		}
		// Key on the parsed label plus raw fields so a row differing only
		// in label spelling (" 1" vs "1") still counts as a duplicate —
		// write/read round trips normalize the label column.
		key := fmt.Sprintf("%d\x1f%s", label, strings.Join(rec[1:], "\x1f"))
		if first, dup := seen[key]; dup {
			if qerr := quarantine(line, RowErrDuplicate,
				fmt.Sprintf("duplicate of line %d", first)); qerr != nil {
				return nil, report, qerr
			}
			continue
		}
		seen[key] = line
		d.Pairs = append(d.Pairs, Pair{
			ID:    len(d.Pairs),
			Left:  append(Entity{}, rec[1:1+m]...),
			Right: append(Entity{}, rec[1+m:]...),
			Label: label,
		})
		report.Loaded++
	}
	return d, report, nil
}

// emptySide reports whether the left or right entity of a full-width row
// is entirely empty (whitespace included): such a row carries no evidence
// for either label and usually marks a botched join.
func emptySide(rec []string, m int) (side string, empty bool) {
	if allBlank(rec[1 : 1+m]) {
		return "left", true
	}
	if allBlank(rec[1+m:]) {
		return "right", true
	}
	return "", false
}

func allBlank(fields []string) bool {
	for _, f := range fields {
		if strings.TrimSpace(f) != "" {
			return false
		}
	}
	return true
}

// LoadFileLenient reads a dataset from a CSV file with lenient ingest;
// the dataset name is derived as in LoadFile.
func LoadFileLenient(path string, opts LoadOptions) (*Dataset, *LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	d, report, err := ReadCSVLenient(f, baseName(path), opts)
	if err != nil {
		return nil, report, fmt.Errorf("%w (file %s)", err, path)
	}
	return d, report, nil
}
