// Package feedback is the online-learning substrate: a crash-safe label
// journal (WYMFBK segments) that persists confirmed/corrected pair
// verdicts as they arrive, and a margin-based active-learning selector
// that decides which candidate pairs are worth a human label.
//
// The journal is the source of truth for everything learned after
// training. A serving process folds each acknowledged label batch into
// the model's contrastive map (core.System.ApplyFeedback) only after the
// batch is fsync'd here, so a crash loses at most the unacknowledged
// tail and a restart replays the journal to a fingerprint-identical
// model — the same durability contract internal/matchjob gives match
// output.
package feedback

import "wym/internal/data"

// Label is one human verdict on an entity pair. The full entity values
// ride along (not IDs) so replay needs nothing but the journal and the
// base model.
type Label struct {
	Left, Right data.Entity
	Match       bool
}
