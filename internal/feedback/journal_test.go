package feedback

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wym/internal/data"
)

func lbl(l, r string, match bool) Label {
	return Label{Left: data.Entity{l}, Right: data.Entity{r}, Match: match}
}

func mustOpen(t *testing.T, dir string) (*Journal, []Label) {
	t.Helper()
	j, labels, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, labels
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, labels := mustOpen(t, dir)
	if len(labels) != 0 {
		t.Fatalf("fresh journal replayed %d labels", len(labels))
	}
	batches := [][]Label{
		{lbl("ipad", "ipad 2", true)},
		{lbl("ipad", "kindle", false), lbl("xps 13", "xps13", true)},
	}
	var want []Label
	for _, b := range batches {
		if err := j.Append(b); err != nil {
			t.Fatal(err)
		}
		want = append(want, b...)
	}
	if j.Labels() != 3 || j.Records() != 2 {
		t.Fatalf("Labels=%d Records=%d", j.Labels(), j.Records())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpen(t, dir)
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if j2.Labels() != 3 || j2.Records() != 2 {
		t.Fatalf("replayed Labels=%d Records=%d", j2.Labels(), j2.Records())
	}
}

func TestJournalRejectsEmptyBatch(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir())
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestJournalRotationAndReplayAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment limit: every batch forces a rotation.
	j, _, err := OpenLimit(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	var want []Label
	for i := 0; i < 5; i++ {
		b := []Label{lbl("left-entity-value", "right-entity-value", i%2 == 0)}
		if err := j.Append(b); err != nil {
			t.Fatal(err)
		}
		want = append(want, b...)
	}
	j.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segmentExt))
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	j2, got := mustOpen(t, dir)
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-segment replay mismatch: got %d labels, want %d", len(got), len(want))
	}
}

// TestJournalTornTailRepaired simulates a crash mid-record: every
// truncation point of the final record must replay to exactly the
// previously acknowledged batches, and the journal must stay appendable.
func TestJournalTornTailRepaired(t *testing.T) {
	// Measure the segment offsets once on a throwaway journal.
	probe := t.TempDir()
	j, _ := mustOpen(t, probe)
	if err := j.Append([]Label{lbl("a", "b", true)}); err != nil {
		t.Fatal(err)
	}
	durable := j.segBytes
	if err := j.Append([]Label{lbl("c", "d", false), lbl("e", "f", true)}); err != nil {
		t.Fatal(err)
	}
	full := j.segBytes
	j.Close()

	for cut := durable + 1; cut < full; cut += 3 {
		dir := t.TempDir()
		jw, _ := mustOpen(t, dir)
		jw.Append([]Label{lbl("a", "b", true)})
		jw.Append([]Label{lbl("c", "d", false), lbl("e", "f", true)})
		jw.Close()

		seg := segmentPath(dir, 0)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, labels, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(labels) != 1 || !labels[0].Match {
			t.Fatalf("cut=%d: replayed %+v, want just the first batch", cut, labels)
		}
		// Re-append after repair and confirm the tail is clean.
		if err := j2.Append([]Label{lbl("g", "h", true)}); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		j2.Close()
		_, labels2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(labels2) != 2 {
			t.Fatalf("cut=%d: got %d labels after repair+append", cut, len(labels2))
		}
	}
}

func TestJournalCorruptionInEarlierSegmentFails(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenLimit(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]Label{lbl("some-left-value", "some-right-value", true)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Flip a payload byte in the first segment (not the last).
	seg := segmentPath(dir, 0)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestJournalBadMagicFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segmentPath(dir, 0), []byte("NOTMAGIC and then some"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestJournalTornMagicRepaired(t *testing.T) {
	dir := t.TempDir()
	// Crash during segment creation: only half the magic landed.
	if err := os.WriteFile(segmentPath(dir, 0), []byte(segmentMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	j, labels, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	if len(labels) != 0 {
		t.Fatalf("replayed %d labels from torn-magic segment", len(labels))
	}
	if err := j.Append([]Label{lbl("a", "b", true)}); err != nil {
		t.Fatal(err)
	}
}

func TestJournalSegmentGapFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segmentPath(dir, 1), []byte(segmentMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}
