package feedback

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Journal layout: a directory of numbered segments (000000.wymfbk,
// 000001.wymfbk, …). Each segment starts with an 8-byte magic and holds
// length-prefixed, CRC-32C-checked records; each record is one appended
// label batch, gob-encoded with a fresh encoder so records are
// independently decodable. Append writes the record and fsyncs before
// returning — a returned nil error means the batch survives power loss.
//
// Crash model: a crash can tear only the record being written, which is
// always at the tail of the newest segment. Open repairs that by
// truncating the last segment back to its last whole record. A CRC or
// framing error anywhere else is real corruption and fails the open.

const (
	segmentMagic = "WYMFBK1\n"
	segmentExt   = ".wymfbk"

	// recordHeaderLen is the framing overhead per record:
	// u32le payload length + u32le CRC-32C of the payload.
	recordHeaderLen = 8

	// maxRecordLen bounds a single record so a corrupt length prefix
	// cannot drive a multi-GiB allocation during replay.
	maxRecordLen = 64 << 20

	// DefaultSegmentBytes rotates segments at 8 MiB — small enough that
	// tail-repair scans stay cheap, large enough that rotation is rare.
	DefaultSegmentBytes = 8 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks journal damage that tail-truncation cannot repair:
// a bad magic, or a CRC/framing failure before the final record of the
// final segment.
var ErrCorrupt = errors.New("feedback: journal corrupt")

// Journal is an append-only label log. It is not safe for concurrent
// Append; callers serialize writes (the server holds its feedback mutex).
type Journal struct {
	dir          string
	f            *os.File // newest segment, append position at EOF
	seg          int      // index of the newest segment
	segBytes     int64    // bytes written to the newest segment
	segmentLimit int64
	all          []Label // every label, replayed plus appended, in order
	records      int
}

// Open opens (creating if needed) the journal in dir, replays every
// record, repairs a torn tail, and returns the journal plus all labels
// in append order. Batches interrupted mid-write by a crash are dropped;
// everything acknowledged by a completed Append is returned.
func Open(dir string) (*Journal, []Label, error) {
	return OpenLimit(dir, DefaultSegmentBytes)
}

// OpenLimit is Open with an explicit segment rotation threshold
// (exported for tests that want many small segments).
func OpenLimit(dir string, segmentLimit int64) (*Journal, []Label, error) {
	if segmentLimit < int64(len(segmentMagic))+recordHeaderLen {
		return nil, nil, fmt.Errorf("feedback: segment limit %d too small", segmentLimit)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	j := &Journal{dir: dir, segmentLimit: segmentLimit}
	for i, seg := range segs {
		last := i == len(segs)-1
		labels, validLen, err := replaySegment(segmentPath(dir, seg), last)
		if err != nil {
			return nil, nil, err
		}
		if last {
			// Repair a torn tail by truncating to the last whole record.
			// The truncation is fsync'd through the same handle that
			// subsequent Appends use: if it were left buffered, a second
			// crash could resurrect the torn bytes under records appended
			// at the repaired length.
			f, err := os.OpenFile(segmentPath(dir, seg), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			if err := f.Truncate(validLen); err != nil {
				f.Close()
				return nil, nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, err
			}
			j.f, j.seg, j.segBytes = f, seg, validLen
		}
		for _, batch := range labels {
			j.all = append(j.all, batch...)
			j.records++
		}
	}
	if len(segs) == 0 {
		if err := j.startSegment(0); err != nil {
			return nil, nil, err
		}
	}
	return j, j.All(), nil
}

// Append durably writes one label batch: when Append returns nil the
// batch is framed, CRC'd, and fsync'd. Empty batches are rejected —
// an empty record would be indistinguishable from a no-op on replay
// counting, and callers never mean it.
func (j *Journal) Append(batch []Label) error {
	if j.f == nil {
		return errors.New("feedback: journal closed")
	}
	if len(batch) == 0 {
		return errors.New("feedback: empty label batch")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(batch); err != nil {
		return err
	}
	if payload.Len() > maxRecordLen {
		return fmt.Errorf("feedback: batch of %d labels encodes to %d bytes (limit %d)",
			len(batch), payload.Len(), maxRecordLen)
	}
	if j.segBytes+recordHeaderLen+int64(payload.Len()) > j.segmentLimit &&
		j.segBytes > int64(len(segmentMagic)) {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload.Bytes(), castagnoli))
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.f.Write(payload.Bytes()); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.segBytes += recordHeaderLen + int64(payload.Len())
	j.records++
	j.all = append(j.all, batch...)
	return nil
}

// Labels returns the total number of labels in the journal (replayed
// plus appended this session).
func (j *Journal) Labels() int { return len(j.all) }

// All returns a copy of every label in the journal, in append order —
// what a fresh replay of the directory would return. Model reloads use
// it to re-fold the journal into the new artifact.
func (j *Journal) All() []Label { return append([]Label(nil), j.all...) }

// Records returns the number of durable batches.
func (j *Journal) Records() int { return j.records }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close releases the segment handle. Appended batches are already
// durable; Close exists for tidy shutdown, not for flushing.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

func (j *Journal) rotate() error {
	if err := j.f.Close(); err != nil {
		return err
	}
	return j.startSegment(j.seg + 1)
}

func (j *Journal) startSegment(seg int) error {
	f, err := os.OpenFile(segmentPath(j.dir, seg), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f, j.seg, j.segBytes = f, seg, int64(len(segmentMagic))
	return nil
}

// syncDir fsyncs the directory so a freshly created segment file's
// directory entry is durable too.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func segmentPath(dir string, seg int) string {
	return filepath.Join(dir, fmt.Sprintf("%06d%s", seg, segmentExt))
}

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != segmentExt {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "%06d"+segmentExt, &n); err != nil {
			return nil, fmt.Errorf("%w: unrecognized segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	for i, n := range segs {
		if n != i {
			return nil, fmt.Errorf("%w: segment sequence gap (have %06d, want %06d)", ErrCorrupt, n, i)
		}
	}
	return segs, nil
}

// replaySegment decodes every record of one segment. For the final
// segment (repairTail) a torn or corrupt tail record is dropped and
// validLen reports where the segment should be truncated; for earlier
// segments any damage is ErrCorrupt.
func replaySegment(path string, repairTail bool) (batches [][]Label, validLen int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < len(segmentMagic) || string(raw[:len(segmentMagic)]) != segmentMagic {
		if repairTail && len(raw) < len(segmentMagic) && bytes.HasPrefix([]byte(segmentMagic), raw) {
			// Crash during segment creation: a partial magic is a torn
			// tail too. Treat as an empty segment.
			n, rerr := repairEmptyMagic(path)
			return nil, n, rerr
		}
		return nil, 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	off := int64(len(segmentMagic))
	data := raw
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return batches, off, nil
		}
		batch, n, rerr := decodeRecord(rest)
		if rerr != nil {
			if repairTail {
				// Torn tail: keep everything before it.
				return batches, off, nil
			}
			return nil, 0, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, filepath.Base(path), off, rerr)
		}
		batches = append(batches, batch)
		off += n
	}
}

// repairEmptyMagic rewrites a segment whose magic itself was torn by a
// crash during creation: the file becomes a valid empty segment. The
// rewrite is fsync'd so a crash right after repair cannot leave the
// partial magic on disk again.
func repairEmptyMagic(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return int64(len(segmentMagic)), nil
}

// decodeRecord parses one framed record from the front of b, returning
// the batch and the bytes consumed. Any shortfall, CRC mismatch, or gob
// failure is an error (the caller decides whether it is a repairable
// tail).
func decodeRecord(b []byte) ([]Label, int64, error) {
	if len(b) < recordHeaderLen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	plen := binary.LittleEndian.Uint32(b[0:])
	want := binary.LittleEndian.Uint32(b[4:])
	if plen > maxRecordLen {
		return nil, 0, fmt.Errorf("record length %d exceeds limit", plen)
	}
	if uint32(len(b)-recordHeaderLen) < plen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload := b[recordHeaderLen : recordHeaderLen+int(plen)]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, 0, errors.New("crc mismatch")
	}
	var batch []Label
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&batch); err != nil {
		return nil, 0, err
	}
	if len(batch) == 0 {
		return nil, 0, errors.New("empty record")
	}
	return batch, recordHeaderLen + int64(plen), nil
}
