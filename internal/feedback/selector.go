package feedback

import (
	"math"
	"sort"
)

// Selector implements margin-based active learning: among candidate
// pairs, the ones whose match score sits closest to the decision
// threshold θ are the ones the current model is least sure about, and a
// label there moves the decision boundary most. Rank orders candidates
// by |score − θ| ascending — the front of the list is what a labeling
// session should show first.
type Selector struct {
	// Theta is the decision threshold scores are measured against.
	// Zero means the matcher default of 0.5.
	Theta float64
}

// Ranked is one candidate's position in the labeling queue.
type Ranked struct {
	Index  int     // position in the caller's candidate list
	Score  float64 // the matcher's match probability
	Margin float64 // |Score − θ|; smaller = more informative
}

func (s Selector) theta() float64 {
	if s.Theta == 0 {
		return 0.5
	}
	return s.Theta
}

// Rank orders all candidates by margin ascending, ties broken by index
// so the ranking is deterministic. A NaN score (matcher failure) sorts
// last with an infinite margin.
func (s Selector) Rank(scores []float64) []Ranked {
	theta := s.theta()
	out := make([]Ranked, len(scores))
	for i, sc := range scores {
		m := math.Abs(sc - theta)
		if math.IsNaN(sc) {
			m = math.Inf(1)
		}
		out[i] = Ranked{Index: i, Score: sc, Margin: m}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Margin != out[b].Margin {
			return out[a].Margin < out[b].Margin
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// TopK returns the k lowest-margin candidates (all of them if k exceeds
// the candidate count; none if k <= 0).
func (s Selector) TopK(scores []float64, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	ranked := s.Rank(scores)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}
