package feedback

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"wym/internal/data"
)

// FuzzFeedbackJournal drives the journal through arbitrary sequences of
// appends, crash-truncations, and tail corruption decoded from the fuzz
// input. Invariants: no operation sequence panics; reopening always
// succeeds (tail damage is repairable by construction); and as long as
// only crash-truncation has occurred, the replayed labels are exactly a
// batch-granular prefix of the acknowledged appends.
func FuzzFeedbackJournal(f *testing.F) {
	f.Add([]byte{0, 4, 3, 0, 9, 1, 7, 3, 0, 2, 2, 0xFF, 0xA5, 3})
	f.Add([]byte{0, 0, 0, 1, 200, 3})
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 64 {
			input = input[:64]
		}
		dir := t.TempDir()
		const segLimit = 256 // tiny segments so rotation is exercised
		j, replayed, err := OpenLimit(dir, segLimit)
		if err != nil {
			t.Fatalf("initial open: %v", err)
		}
		if len(replayed) != 0 {
			t.Fatalf("fresh dir replayed %d labels", len(replayed))
		}
		var acked [][]Label // acknowledged batches, in append order
		tainted := false    // true once arbitrary bytes were written
		seq := 0

		next := func() byte {
			if len(input) == 0 {
				return 0
			}
			b := input[0]
			input = input[1:]
			return b
		}

		reopen := func(op string) {
			j.Close()
			var got []Label
			j, got, err = OpenLimit(dir, segLimit)
			if err != nil {
				t.Fatalf("%s: reopen: %v", op, err)
			}
			if tainted {
				return
			}
			// got must be a prefix of the acked batch concatenation.
			var all []Label
			for _, b := range acked {
				all = append(all, b...)
			}
			if len(got) > len(all) || (len(got) > 0 && !reflect.DeepEqual(got, all[:len(got)])) {
				t.Fatalf("%s: replay is not a prefix of acknowledged labels: got %d, acked %d",
					op, len(got), len(all))
			}
			// Batch granularity: the prefix must end on a batch boundary.
			n := len(got)
			for _, b := range acked {
				if n == 0 {
					break
				}
				if n < len(b) {
					t.Fatalf("%s: replay split a batch (%d labels into batch of %d)", op, n, len(b))
				}
				n -= len(b)
			}
			// Trim acked to what survived; further appends extend from here.
			survived := len(got)
			var kept [][]Label
			for _, b := range acked {
				if survived == 0 {
					break
				}
				kept = append(kept, b)
				survived -= len(b)
			}
			acked = kept
		}

		newestSegment := func() string {
			segs, _ := filepath.Glob(filepath.Join(dir, "*"+segmentExt))
			sort.Strings(segs)
			if len(segs) == 0 {
				return ""
			}
			return segs[len(segs)-1]
		}

		for len(input) > 0 {
			switch next() % 4 {
			case 0: // append a small batch derived from the input
				n := int(next())%3 + 1
				batch := make([]Label, n)
				for i := range batch {
					seq++
					batch[i] = Label{
						Left:  data.Entity{fmt.Sprintf("l%d-%d", seq, next())},
						Right: data.Entity{fmt.Sprintf("r%d", seq)},
						Match: next()%2 == 0,
					}
				}
				if err := j.Append(batch); err != nil {
					t.Fatalf("append: %v", err)
				}
				acked = append(acked, batch)
			case 1: // crash: truncate the newest segment by up to 255 bytes
				seg := newestSegment()
				if seg == "" {
					continue
				}
				cut := int64(next())
				st, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				size := st.Size() - cut
				if size < 0 {
					size = 0
				}
				j.Close()
				if err := os.Truncate(seg, size); err != nil {
					t.Fatal(err)
				}
				reopen("truncate")
			case 2: // corruption: overwrite tail bytes of the newest segment
				seg := newestSegment()
				if seg == "" {
					continue
				}
				raw, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				n := int(next())%8 + 1
				for i := 0; i < n && len(raw) > len(segmentMagic); i++ {
					raw[len(raw)-1-i%len(raw)] ^= next() | 1
				}
				j.Close()
				if err := os.WriteFile(seg, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				tainted = true
				// Tail corruption of the newest segment must stay repairable
				// unless the flipped bytes landed before the final record —
				// arbitrary flips can hit earlier records in this segment, so
				// a clean ErrCorrupt is acceptable; a panic is not.
				j2, _, err := OpenLimit(dir, segLimit)
				if err != nil {
					// Damaged beyond repair: reset the world and carry on.
					os.RemoveAll(dir)
					j2, _, err = OpenLimit(dir, segLimit)
					if err != nil {
						t.Fatalf("reset open: %v", err)
					}
					acked = nil
					tainted = false
				}
				j = j2
			case 3: // plain reopen
				reopen("reopen")
			}
		}
		j.Close()
	})
}
