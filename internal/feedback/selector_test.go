package feedback

import (
	"math"
	"testing"
)

func TestSelectorRankByMargin(t *testing.T) {
	s := Selector{}
	scores := []float64{0.9, 0.51, 0.1, 0.49, 0.5}
	ranked := s.Rank(scores)
	wantOrder := []int{4, 1, 3, 0, 2} // margins 0, .01, .01(tie→index), .4, .4(tie→index)
	// 0.51 and 0.49 both have margin 0.01; index 1 < 3. 0.9 and 0.1 both 0.4; 0 < 2.
	for i, w := range wantOrder {
		if ranked[i].Index != w {
			t.Fatalf("rank[%d].Index = %d, want %d (full: %+v)", i, ranked[i].Index, w, ranked)
		}
	}
	if ranked[0].Margin != 0 || ranked[0].Score != 0.5 {
		t.Fatalf("front of queue = %+v, want the exactly-ambiguous pair", ranked[0])
	}
}

func TestSelectorNaNRanksLast(t *testing.T) {
	s := Selector{}
	ranked := s.Rank([]float64{math.NaN(), 0.7})
	if ranked[0].Index != 1 || ranked[1].Index != 0 {
		t.Fatalf("NaN should rank last: %+v", ranked)
	}
	if !math.IsInf(ranked[1].Margin, 1) {
		t.Fatalf("NaN margin = %v, want +Inf", ranked[1].Margin)
	}
}

func TestSelectorCustomTheta(t *testing.T) {
	s := Selector{Theta: 0.8}
	ranked := s.Rank([]float64{0.5, 0.79})
	if ranked[0].Index != 1 {
		t.Fatalf("theta=0.8: %+v", ranked)
	}
}

func TestSelectorTopK(t *testing.T) {
	s := Selector{}
	scores := []float64{0.9, 0.5, 0.1}
	if got := s.TopK(scores, 1); len(got) != 1 || got[0].Index != 1 {
		t.Fatalf("TopK(1) = %+v", got)
	}
	if got := s.TopK(scores, 10); len(got) != 3 {
		t.Fatalf("TopK(10) len = %d", len(got))
	}
	if got := s.TopK(scores, 0); got != nil {
		t.Fatalf("TopK(0) = %+v, want nil", got)
	}
}
